open Mitos_tag
open Mitos

let net i = Tag.make Tag_type.Network i
let file i = Tag.make Tag_type.File i

let base_params ?(alpha = 1.5) ?(beta = 2.0) ?(tau = 1.0) ?(tau_scale = 1.0)
    ?(u = []) ?(o = []) () =
  Params.make ~alpha ~beta ~tau ~tau_scale ~u ~o ~total_tag_space:10_000
    ~mem_capacity:1_000 ()

let random_ty =
  QCheck.Gen.oneofl [ Tag_type.Network; Tag_type.File; Tag_type.Process ]

(* -- Params ------------------------------------------------------------ *)

let test_params_defaults () =
  let p = Params.default ~total_tag_space:100 ~mem_capacity:10 in
  Alcotest.(check (float 0.0)) "alpha" 1.5 p.Params.alpha;
  Alcotest.(check (float 0.0)) "beta" 2.0 p.Params.beta;
  Alcotest.(check (float 0.0)) "tau" 1.0 p.Params.tau;
  Alcotest.(check (float 0.0)) "u default" 1.0 (Params.u p Tag_type.Network);
  Alcotest.(check (float 0.0)) "tau_eff" 1e4 (Params.tau_effective p)

let test_params_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "alpha 0" true (bad (fun () -> base_params ~alpha:0.0 ()));
  Alcotest.(check bool) "beta < 1" true (bad (fun () -> base_params ~beta:0.5 ()));
  Alcotest.(check bool) "tau < 0" true (bad (fun () -> base_params ~tau:(-1.0) ()));
  Alcotest.(check bool) "zero weight" true
    (bad (fun () -> base_params ~u:[ (Tag_type.File, 0.0) ] ()));
  Alcotest.(check bool) "bad space" true
    (bad (fun () ->
         Params.make ~total_tag_space:0 ~mem_capacity:1 ()))

let test_params_with () =
  let p = base_params () in
  let p2 = Params.with_alpha p 2.0 in
  Alcotest.(check (float 0.0)) "with_alpha" 2.0 p2.Params.alpha;
  Alcotest.(check (float 0.0)) "original intact" 1.5 p.Params.alpha;
  let p3 = Params.with_u p Tag_type.File 5.0 in
  Alcotest.(check (float 0.0)) "with_u" 5.0 (Params.u p3 Tag_type.File);
  Alcotest.(check (float 0.0)) "other u intact" 1.0 (Params.u p3 Tag_type.Network);
  let p4 = Params.with_o p Tag_type.File 3.0 in
  Alcotest.(check (float 0.0)) "with_o" 3.0 (Params.o p4 Tag_type.File)

(* -- Cost ----------------------------------------------------------------- *)

let test_phi_values () =
  (* alpha = 2: phi(n) = n^-1 / 1 *)
  Alcotest.(check (float 1e-9)) "alpha 2" 0.25 (Cost.phi ~alpha:2.0 4.0);
  (* alpha = 1: log limit *)
  Alcotest.(check (float 1e-9)) "alpha 1" (-.log 4.0) (Cost.phi ~alpha:1.0 4.0);
  (* alpha = 0.5: n^0.5 / (-0.5) *)
  Alcotest.(check (float 1e-9)) "alpha 0.5" (-4.0) (Cost.phi ~alpha:0.5 4.0);
  Alcotest.(check bool) "n=0 alpha>1 diverges" true
    (Cost.phi ~alpha:1.5 0.0 = infinity)

let qcheck_phi_decreasing =
  QCheck.Test.make ~name:"phi monotone decreasing in n" ~count:300
    QCheck.(triple (float_range 0.3 4.0) (float_range 1.0 50.0) (float_range 0.1 10.0))
    (fun (alpha, n, dn) ->
      QCheck.assume (Float.abs (alpha -. 1.0) > 1e-6);
      Cost.phi ~alpha (n +. dn) <= Cost.phi ~alpha n +. 1e-12)

let qcheck_phi_convex =
  QCheck.Test.make ~name:"phi convex (second difference >= 0)" ~count:300
    QCheck.(pair (float_range 0.3 4.0) (float_range 1.0 50.0))
    (fun (alpha, n) ->
      QCheck.assume (Float.abs (alpha -. 1.0) > 1e-6);
      let h = 0.01 in
      let second =
        Cost.phi ~alpha (n +. h) +. Cost.phi ~alpha (n -. h)
        -. (2.0 *. Cost.phi ~alpha n)
      in
      second >= -1e-9)

let test_over_cost () =
  let p = base_params ~beta:2.0 ~tau:1.0 () in
  (* over = tau_eff * N_R * (P/N_R)^2 = 1 * 10000 * (100/10000)^2 = 1 *)
  Alcotest.(check (float 1e-9)) "quadratic" 1.0 (Cost.over_of_pollution p 100.0);
  let p3 = base_params ~beta:3.0 () in
  Alcotest.(check (float 1e-9)) "cubic" 0.01 (Cost.over_of_pollution p3 100.0)

let test_submarginals () =
  let p = base_params ~alpha:2.0 () in
  Alcotest.(check (float 1e-12)) "under at n=4" (-0.0625)
    (Cost.under_submarginal p Tag_type.Network ~n:4.0);
  Alcotest.(check bool) "under at n=0 is -inf" true
    (Cost.under_submarginal p Tag_type.Network ~n:0.0 = neg_infinity);
  (* over submarginal: tau_eff * beta * (P/N_R)^(beta-1) * o = 1*2*(100/10000) = 0.02 *)
  Alcotest.(check (float 1e-12)) "over" 0.02
    (Cost.over_submarginal p Tag_type.Network ~pollution:100.0);
  Alcotest.(check (float 1e-12)) "marginal is the sum" (-0.0425)
    (Cost.marginal p Tag_type.Network ~n:4.0 ~pollution:100.0)

let test_weights_in_marginal () =
  let p = base_params ~u:[ (Tag_type.Network, 10.0) ] ~o:[ (Tag_type.File, 3.0) ] () in
  let under_net = Cost.under_submarginal p Tag_type.Network ~n:2.0 in
  let under_file = Cost.under_submarginal p Tag_type.File ~n:2.0 in
  Alcotest.(check (float 1e-12)) "u scales under 10x" (under_file *. 10.0) under_net;
  let over_net = Cost.over_submarginal p Tag_type.Network ~pollution:50.0 in
  let over_file = Cost.over_submarginal p Tag_type.File ~pollution:50.0 in
  Alcotest.(check (float 1e-12)) "o scales over 3x" (over_net *. 3.0) over_file

let test_under_total_matches_manual () =
  let p = base_params ~alpha:2.0 () in
  let stats = Tag_stats.create () in
  for _ = 1 to 4 do Tag_stats.incr stats (net 1) done;
  for _ = 1 to 2 do Tag_stats.incr stats (file 1) done;
  (* phi(4) = 0.25, phi(2) = 0.5 *)
  Alcotest.(check (float 1e-9)) "under total" 0.75 (Cost.under_total p stats);
  Alcotest.(check (float 1e-9)) "pollution" 6.0 (Cost.weighted_pollution p stats);
  Alcotest.(check (float 1e-9)) "total = under + over"
    (Cost.under_total p stats +. Cost.over_total p stats)
    (Cost.total p stats)

let qcheck_over_submarginal_increasing =
  QCheck.Test.make ~name:"over submarginal nondecreasing in pollution" ~count:300
    QCheck.(pair (float_range 0.0 5000.0) (float_range 0.0 1000.0))
    (fun (pollution, dp) ->
      let p = base_params ~beta:2.5 () in
      Cost.over_submarginal p Tag_type.Network ~pollution:(pollution +. dp)
      >= Cost.over_submarginal p Tag_type.Network ~pollution -. 1e-12)

(* -- Decision ---------------------------------------------------------------- *)

let env_of counts pollution =
  let table = Hashtbl.create 8 in
  List.iter (fun (tag, n) -> Hashtbl.replace table tag n) counts;
  {
    Decision.count = (fun tag -> Option.value ~default:0 (Hashtbl.find_opt table tag));
    pollution;
  }

let test_alg1_first_copy_always_propagates () =
  let p = base_params () in
  let env = env_of [] 5000.0 in
  Alcotest.(check bool) "n=0 propagates despite pollution" true
    (Decision.alg1 p env (net 1) = Decision.Propagate)

let test_alg1_tau_zero_always_propagates () =
  let p = base_params ~tau:0.0 () in
  let env = env_of [ (net 1, 1_000_000) ] 9999.0 in
  Alcotest.(check bool) "tau=0" true
    (Decision.alg1 p env (net 1) = Decision.Propagate)

let test_alg1_blocks_overpropagated () =
  let p = base_params ~alpha:2.0 () in
  (* under = -1/n^2 tiny; over = 2*(P/N_R) big *)
  let env = env_of [ (net 1, 1000) ] 5000.0 in
  Alcotest.(check bool) "blocked" true
    (Decision.alg1 p env (net 1) = Decision.Block)

let test_alg2_respects_space () =
  let p = base_params ~tau:0.0 () in
  (* everything has negative marginal; space limits to 2 *)
  let env = env_of [] 0.0 in
  let accepted =
    Decision.alg2_accepted p env ~space:2 [ net 1; net 2; net 3; net 4 ]
  in
  Alcotest.(check int) "only 2 accepted" 2 (List.length accepted)

let test_alg2_ordering () =
  let p = base_params ~alpha:2.0 ~tau:0.0 () in
  (* marginals: n=10 -> -0.01, n=1 -> -1, n=3 -> -1/9 *)
  let env = env_of [ (net 1, 10); (net 2, 1); (net 3, 3) ] 0.0 in
  let ranked = Decision.alg2 p env ~space:3 [ net 1; net 2; net 3 ] in
  Alcotest.(check (list string)) "sorted by marginal increasingly"
    [ "network#2"; "network#3"; "network#1" ]
    (List.map (fun r -> Tag.to_string r.Decision.tag) ranked)

let test_alg2_pollution_recompute_blocks_later () =
  (* Construct a case where accepting the first tag pushes the second
     tag's recomputed marginal above zero. *)
  let p =
    base_params ~alpha:2.0 ~beta:2.0 ~tau:1.0
      ~o:[ (Tag_type.Network, 2000.0) ]
      ()
  in
  (* both tags at n=10: under = -0.01.
     initial pollution 0 -> over = 0 -> both initially negative.
     after accepting one: pollution += o = 2000 -> over = 2*2000/10000*2000
     ... = tau_eff*beta*(P/N_R)^(beta-1)*o = 1*2*0.2*2000 = 800 > 0.01. *)
  let env = env_of [ (net 1, 10); (net 2, 10) ] 0.0 in
  let ranked = Decision.alg2 p env ~space:5 [ net 1; net 2 ] in
  let verdicts = List.map (fun r -> r.Decision.verdict) ranked in
  Alcotest.(check bool) "first accepted, second blocked" true
    (verdicts = [ Decision.Propagate; Decision.Block ]);
  (* without recompute both pass *)
  let ranked' = Decision.alg2_no_recompute p env ~space:5 [ net 1; net 2 ] in
  Alcotest.(check bool) "no recompute: both pass" true
    (List.for_all (fun r -> r.Decision.verdict = Decision.Propagate) ranked')

let test_alg2_empty_and_negative_space () =
  let p = base_params () in
  let env = env_of [] 0.0 in
  Alcotest.(check int) "empty candidates" 0
    (List.length (Decision.alg2 p env ~space:3 []));
  Alcotest.(check bool) "negative space raises" true
    (try ignore (Decision.alg2 p env ~space:(-1) [ net 1 ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "zero space blocks all" 0
    (List.length (Decision.alg2_accepted p env ~space:0 [ net 1 ]))

let test_alg2_accepted_have_nonpositive_marginal () =
  let p = base_params ~alpha:1.5 () in
  let env = env_of [ (net 1, 2); (net 2, 50); (file 1, 7) ] 800.0 in
  let ranked = Decision.alg2 p env ~space:10 [ net 1; net 2; file 1 ] in
  List.iter
    (fun r ->
      if r.Decision.verdict = Decision.Propagate then
        Alcotest.(check bool) "accepted marginal <= 0" true
          (r.Decision.marginal <= 0.0))
    ranked

let test_alg2_paper_matches_homogeneous () =
  let p = base_params ~alpha:1.5 ~tau:0.5 () in
  let env = env_of [ (net 1, 3); (net 2, 40); (file 1, 7) ] 500.0 in
  let candidates = [ net 1; net 2; file 1 ] in
  let verdicts l =
    List.map
      (fun r -> (Tag.to_string r.Decision.tag, r.Decision.verdict))
      l
  in
  Alcotest.(check bool) "homogeneous o: literal = scanning variant" true
    (verdicts (Decision.alg2_paper p env ~space:3 candidates)
    = verdicts (Decision.alg2 p env ~space:3 candidates))

let test_alg2_paper_early_break () =
  (* heterogeneous o: the first acceptance (a heavily polluting
     network tag) pushes the next candidate's recomputed marginal
     positive; the literal while loop then stops for good *)
  let p =
    base_params ~alpha:2.0 ~beta:2.0 ~tau:1.0
      ~u:[ (Tag_type.Network, 500.0) ]
      ~o:[ (Tag_type.Network, 3000.0) ]
      ()
  in
  (* initial marginals at pollution 0: net#1 (n=1,u=500) -> -500;
     file#1 (n=1) -> -1; file#2 (n=2) -> -0.25.
     accepting net#1 adds 3000 pollution: over submarginal for files
     becomes 2*(3000/10000) = 0.6, so file#1 recomputes to -0.4
     (accepted, +1 pollution) and file#2 to > +0.35 (blocked). *)
  let env = env_of [ (net 1, 1); (file 1, 1); (file 2, 2) ] 0.0 in
  let literal = Decision.alg2_paper p env ~space:3 [ net 1; file 1; file 2 ] in
  let accepted =
    List.filter_map
      (fun r ->
        if r.Decision.verdict = Decision.Propagate then
          Some (Tag.to_string r.Decision.tag)
        else None)
      literal
  in
  Alcotest.(check (list string)) "stops at the first positive marginal"
    [ "network#1"; "file#1" ] accepted

let test_of_stats_env () =
  let p = base_params () in
  let stats = Tag_stats.create () in
  Tag_stats.incr stats (net 1);
  Tag_stats.incr stats (net 1);
  let env = Decision.of_stats p stats in
  Alcotest.(check int) "count" 2 (env.Decision.count (net 1));
  Alcotest.(check (float 1e-9)) "pollution" 2.0 env.Decision.pollution

(* -- Solver --------------------------------------------------------------------- *)

let solver_items p tys = Array.of_list (List.map (fun ty -> Solver.item p ty) tys)

let test_solver_kkt_constraints () =
  let p = base_params ~tau:1.0 () in
  let items = solver_items p [ Tag_type.Network; Tag_type.File; Tag_type.Process ] in
  let n = Solver.solve_kkt p items in
  Array.iteri
    (fun j x ->
      Alcotest.(check bool) "within box" true
        (x >= 0.0 && x <= float_of_int items.(j).Solver.cap))
    n;
  let total = Array.fold_left ( +. ) 0.0 n in
  Alcotest.(check bool) "within budget" true
    (total <= float_of_int p.Params.total_tag_space +. 1e-6)

let test_solver_kkt_stationarity () =
  let p = base_params ~tau:1.0 () in
  let items = solver_items p [ Tag_type.Network; Tag_type.File ] in
  let n = Solver.solve_kkt p items in
  let grad = Solver.gradient p items n in
  Array.iter
    (fun g ->
      Alcotest.(check bool) "gradient ~ 0 at interior optimum" true
        (Float.abs g < 1e-3))
    grad

let test_solver_kkt_weights_shift_allocation () =
  let p = base_params ~u:[ (Tag_type.Network, 8.0) ] () in
  let items = solver_items p [ Tag_type.Network; Tag_type.File ] in
  let n = Solver.solve_kkt p items in
  Alcotest.(check bool) "heavier u gets more copies" true (n.(0) > n.(1))

let test_solver_gradient_matches_kkt () =
  let p = base_params ~tau:1.0 () in
  let items = solver_items p [ Tag_type.Network; Tag_type.File ] in
  let kkt = Solver.solve_kkt p items in
  let gd = Solver.solve_gradient ~iterations:30_000 ~step:0.02 p items in
  let obj_kkt = Solver.objective p items kkt in
  let obj_gd = Solver.objective p items gd in
  Alcotest.(check bool) "objectives close" true
    (Float.abs (obj_kkt -. obj_gd) /. Float.abs obj_kkt < 0.05)

let test_solver_greedy_near_kkt () =
  let p = base_params ~tau:1.0 () in
  let items = solver_items p [ Tag_type.Network; Tag_type.File ] in
  let kkt = Solver.solve_kkt p items in
  let greedy = Solver.solve_greedy_integer p items in
  Array.iteri
    (fun j x ->
      Alcotest.(check bool) "greedy within 1 of relaxed optimum" true
        (Float.abs (float_of_int greedy.(j) -. x) <= 1.5))
    kkt

let test_solver_brute_force () =
  let p =
    Params.make ~tau:1.0 ~tau_scale:1.0 ~total_tag_space:100 ~mem_capacity:30 ()
  in
  let items = solver_items p [ Tag_type.Network; Tag_type.File ] in
  let brute = Solver.solve_brute_force ~max_n:30 p items in
  let greedy = Solver.solve_greedy_integer p items in
  let obj n = Solver.objective p items (Array.map float_of_int n) in
  Alcotest.(check bool) "greedy no better than brute-force optimum" true
    (obj brute <= obj greedy +. 1e-9);
  Alcotest.(check bool) "greedy within 5% of integer optimum" true
    (obj greedy <= obj brute +. (0.05 *. Float.abs (obj brute)));
  Alcotest.(check bool) "too-large space raises" true
    (try ignore (Solver.solve_brute_force ~max_n:1000 p
                   (solver_items p [ Tag_type.Network; Tag_type.File; Tag_type.Process ]));
       false
     with Invalid_argument _ -> true)

let test_branch_and_bound_matches_brute_force () =
  let p =
    Params.make ~tau:1.0 ~tau_scale:1.0 ~total_tag_space:100 ~mem_capacity:30 ()
  in
  let items = solver_items p [ Tag_type.Network; Tag_type.File ] in
  let brute = Solver.solve_brute_force ~max_n:30 p items in
  let bb, stats = Solver.solve_branch_and_bound p items in
  let obj n = Solver.objective p items (Array.map float_of_int n) in
  Alcotest.(check (float 1e-9)) "same optimum value" (obj brute) (obj bb);
  Alcotest.(check (float 1e-9)) "stats carry the optimum" (obj bb)
    stats.Solver.optimum;
  Alcotest.(check bool) "search did prune" true (stats.Solver.nodes_pruned > 0)

let qcheck_branch_and_bound_exact =
  QCheck.Test.make ~name:"B&B = brute force on random small instances"
    ~count:25
    QCheck.(
      make
        Gen.(
          triple
            (list_size (1 -- 3) random_ty)
            (float_range 0.5 2.5) (float_range 0.2 3.0)))
    (fun (tys, alpha, tau) ->
      let p =
        Params.make ~alpha ~tau ~tau_scale:1.0 ~total_tag_space:60
          ~mem_capacity:20 ()
      in
      let items = Array.of_list (List.map (fun ty -> Solver.item p ty) tys) in
      let brute = Solver.solve_brute_force ~max_n:20 p items in
      let bb, _ = Solver.solve_branch_and_bound p items in
      let obj n = Solver.objective p items (Array.map float_of_int n) in
      Float.abs (obj brute -. obj bb) < 1e-7)

let test_branch_and_bound_node_limit () =
  let p =
    Params.make ~tau:0.001 ~tau_scale:1.0 ~total_tag_space:1_000_000
      ~mem_capacity:100_000 ()
  in
  let items =
    solver_items p
      [ Tag_type.Network; Tag_type.File; Tag_type.Process; Tag_type.Kernel ]
  in
  (* even the root visit counts against the limit *)
  Alcotest.(check bool) "limit enforced" true
    (try ignore (Solver.solve_branch_and_bound ~node_limit:0 p items); false
     with Invalid_argument _ -> true)

let test_solver_budget_binds () =
  let p =
    Params.make ~tau:0.0001 ~tau_scale:1.0 ~total_tag_space:50 ~mem_capacity:40 ()
  in
  (* tiny over cost: unconstrained optimum wants the caps; budget 50 binds *)
  let items = solver_items p [ Tag_type.Network; Tag_type.File ] in
  let n = Solver.solve_kkt p items in
  let total = Array.fold_left ( +. ) 0.0 n in
  Alcotest.(check (float 1.0)) "budget binds" 50.0 total

(* property tests over random instances ---------------------------------- *)

let qcheck_kkt_feasible =
  QCheck.Test.make ~name:"KKT solution always feasible" ~count:60
    QCheck.(
      make
        Gen.(
          triple
            (list_size (1 -- 4) random_ty)
            (float_range 0.5 3.0) (float_range 0.1 10.0)))
    (fun (tys, alpha, tau) ->
      let p =
        Params.make ~alpha ~tau ~tau_scale:1.0 ~total_tag_space:5_000
          ~mem_capacity:500 ()
      in
      let items = Array.of_list (List.map (fun ty -> Solver.item p ty) tys) in
      let n = Solver.solve_kkt p items in
      let total = Array.fold_left ( +. ) 0.0 n in
      Array.for_all
        (fun x -> x >= -1e-9 && x <= float_of_int p.Params.mem_capacity +. 1e-6)
        n
      && total <= float_of_int p.Params.total_tag_space +. 1e-3)

let qcheck_greedy_never_beats_kkt =
  QCheck.Test.make
    ~name:"greedy integer objective >= relaxed optimum" ~count:40
    QCheck.(
      make Gen.(pair (list_size (1 -- 3) random_ty) (float_range 0.5 2.5)))
    (fun (tys, tau) ->
      let p =
        Params.make ~tau ~tau_scale:1.0 ~total_tag_space:2_000
          ~mem_capacity:200 ()
      in
      let items = Array.of_list (List.map (fun ty -> Solver.item p ty) tys) in
      let kkt = Solver.solve_kkt p items in
      let greedy = Solver.solve_greedy_integer p items in
      Solver.objective p items (Array.map float_of_int greedy)
      >= Solver.objective p items kkt -. 1e-6)

let qcheck_alg2_respects_space_and_order =
  QCheck.Test.make ~name:"alg2: bounded by space, sorted, criterion" ~count:200
    QCheck.(
      make
        Gen.(
          triple (int_range 0 6)
          (list_size (0 -- 8) (pair (int_range 1 30) (int_range 0 400)))
          (float_range 0.0 2.0)))
    (fun (space, candidates, tau) ->
      let p =
        Params.make ~tau ~tau_scale:10.0 ~total_tag_space:10_000
          ~mem_capacity:1_000 ()
      in
      let candidates =
        List.mapi (fun i (id, n) -> (Tag.make Tag_type.Network (id + (i * 100)), n))
          candidates
      in
      let table = Hashtbl.create 8 in
      List.iter (fun (tag, n) -> Hashtbl.replace table tag n) candidates;
      let env =
        {
          Decision.count =
            (fun tag -> Option.value ~default:0 (Hashtbl.find_opt table tag));
          pollution = 300.0;
        }
      in
      let ranked = Decision.alg2 p env ~space (List.map fst candidates) in
      let accepted =
        List.filter (fun r -> r.Decision.verdict = Decision.Propagate) ranked
      in
      (* bounded by space *)
      List.length accepted <= space
      (* every accepted tag had non-positive marginal at decision time *)
      && List.for_all (fun r -> r.Decision.marginal <= 0.0) accepted
      (* output covers exactly the candidates *)
      && List.length ranked = List.length candidates)

let qcheck_alg2_paper_equals_scanning_homogeneous =
  (* with homogeneous o the literal while-loop and the scanning variant
     are the same function *)
  QCheck.Test.make ~name:"alg2 literal = scanning when o homogeneous"
    ~count:200
    QCheck.(
      make
        Gen.(
          triple (int_range 0 6)
            (list_size (0 -- 8) (pair (int_range 1 40) (int_range 0 300)))
            (pair (float_range 0.2 3.0) (float_range 0.0 1000.0))))
    (fun (space, raw, (tau, pollution)) ->
      let p = base_params ~alpha:1.5 ~tau ~tau_scale:10.0 () in
      let candidates =
        List.mapi
          (fun i (id, n) -> (Tag.make Tag_type.Network (id + (i * 100)), n))
          raw
      in
      let table = Hashtbl.create 8 in
      List.iter (fun (tag, n) -> Hashtbl.replace table tag n) candidates;
      let env =
        {
          Decision.count =
            (fun tag -> Option.value ~default:0 (Hashtbl.find_opt table tag));
          pollution;
        }
      in
      let verdicts f =
        List.map
          (fun r -> (r.Decision.tag, r.Decision.verdict))
          (f p env ~space (List.map fst candidates))
      in
      verdicts Decision.alg2 = verdicts Decision.alg2_paper)

(* -- Decision fast path --------------------------------------------------------- *)

(* The fast path claims bit-identical results, so every comparison
   below is exact float equality — no tolerance. *)

let exact_float =
  Alcotest.testable
    (fun fmt f -> Format.fprintf fmt "%h" f)
    (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))

let fast_params_gen =
  QCheck.Gen.(
    map
      (fun ((alpha, tau), (u_net, o_net)) ->
        base_params ~alpha ~tau ~tau_scale:10.0
          ~u:[ (Tag_type.Network, u_net) ]
          ~o:[ (Tag_type.Network, o_net) ]
          ())
      (pair
         (pair (float_range 0.3 4.0) (float_range 0.0 2.0))
         (pair (float_range 0.1 20.0) (float_range 0.1 5.0))))

let qcheck_fast_marginal_equals_direct =
  (* table_size 64 with n up to 200 exercises both the table hit and
     the exact-formula fallback *)
  QCheck.Test.make ~name:"Cost.Fast.marginal = Cost.marginal (bit-exact)"
    ~count:500
    QCheck.(
      make
        Gen.(
          quad fast_params_gen random_ty (int_range 0 200)
            (float_range 0.0 2000.0)))
    (fun (p, ty, n, pollution) ->
      let fast = Cost.Fast.create ~table_size:64 p in
      let direct = Cost.marginal p ty ~n:(float_of_int n) ~pollution in
      let tabled = Cost.Fast.marginal fast ty ~n ~pollution in
      (* drive the caches through a second pollution value and back:
         the g-factor cache must not leak stale values *)
      ignore (Cost.Fast.marginal fast ty ~n ~pollution:(pollution +. 1.0));
      let again = Cost.Fast.marginal fast ty ~n ~pollution in
      Int64.equal (Int64.bits_of_float direct) (Int64.bits_of_float tabled)
      && Int64.equal (Int64.bits_of_float tabled) (Int64.bits_of_float again))

let fast_env_gen =
  QCheck.Gen.(
    quad fast_params_gen (int_range 0 6)
      (list_size (0 -- 8) (pair (int_range 1 40) (int_range 0 120)))
      (float_range 0.0 1500.0))

let qcheck_fast_alg_equals_direct =
  QCheck.Test.make
    ~name:"alg1_fast / alg2_fast = alg1 / alg2 (verdicts and marginals)"
    ~count:300
    QCheck.(make fast_env_gen)
    (fun (p, space, raw, pollution) ->
      let candidates =
        List.mapi
          (fun i (id, n) -> (Tag.make Tag_type.Network (id + (i * 100)), n))
          raw
      in
      let table = Hashtbl.create 8 in
      List.iter (fun (tag, n) -> Hashtbl.replace table tag n) candidates;
      let env =
        {
          Decision.count =
            (fun tag -> Option.value ~default:0 (Hashtbl.find_opt table tag));
          pollution;
        }
      in
      let fast = Decision.fast ~table_size:64 p in
      let tags = List.map fst candidates in
      let ranked_eq a b =
        List.length a = List.length b
        && List.for_all2
             (fun (x : Decision.ranked) (y : Decision.ranked) ->
               Tag.equal x.Decision.tag y.Decision.tag
               && x.Decision.verdict = y.Decision.verdict
               && Int64.equal
                    (Int64.bits_of_float x.Decision.marginal)
                    (Int64.bits_of_float y.Decision.marginal))
             a b
      in
      List.for_all
        (fun tag -> Decision.alg1 p env tag = Decision.alg1_fast fast env tag)
        tags
      && ranked_eq (Decision.alg2 p env ~space tags)
           (Decision.alg2_fast fast env ~space tags)
      && ranked_eq
           (Decision.alg2_no_recompute p env ~space tags)
           (Decision.alg2_fast_no_recompute fast env ~space tags)
      && List.equal Tag.equal
           (Decision.alg2_accepted p env ~space tags)
           (Decision.alg2_fast_accepted fast env ~space tags))

let test_fast_table_fallback_boundary () =
  (* exact agreement on both sides of the table edge *)
  let p = base_params ~alpha:1.5 ~tau:0.7 () in
  let fast = Cost.Fast.create ~table_size:8 p in
  List.iter
    (fun n ->
      Alcotest.check exact_float
        (Printf.sprintf "n=%d" n)
        (Cost.marginal p Tag_type.Network ~n:(float_of_int n)
           ~pollution:100.0)
        (Cost.Fast.marginal fast Tag_type.Network ~n ~pollution:100.0))
    [ 0; 1; 6; 7; 8; 9; 100 ]

let test_fast_update_reuses_or_rebuilds () =
  let p = base_params ~tau:1.0 () in
  let fast = Decision.fast ~table_size:32 p in
  let env n pollution = { Decision.count = (fun _ -> n); pollution } in
  (* tau-only change: the under table may be reused, results must
     track the new params either way *)
  let p2 = Params.with_tau p 0.25 in
  let fast2 = Decision.fast_update fast p2 in
  Alcotest.check exact_float "after tau change"
    (Cost.marginal p2 Tag_type.File ~n:3.0 ~pollution:50.0)
    (Decision.marginal_fast fast2 (env 3 50.0) (file 1));
  let p3 = Params.with_alpha p2 2.5 in
  let fast3 = Decision.fast_update fast2 p3 in
  Alcotest.check exact_float "after alpha change (table rebuilt)"
    (Cost.marginal p3 Tag_type.File ~n:3.0 ~pollution:50.0)
    (Decision.marginal_fast fast3 (env 3 50.0) (file 1));
  Alcotest.(check bool) "fast_params tracks" true
    (Params.equal p3 (Decision.fast_params fast3))

(* -- Analysis ----------------------------------------------------------------------- *)

let test_analysis_crossover_consistency () =
  (* alg1 must flip exactly at the closed-form threshold *)
  let p = base_params ~alpha:1.5 ~tau:1.0 () in
  let pollution = 250.0 in
  let nstar = Analysis.crossover_count p Tag_type.Network ~pollution in
  Alcotest.(check bool) "finite threshold" true (Float.is_finite nstar);
  let env_at n = env_of [ (net 1, n) ] pollution in
  let below = int_of_float (Float.floor nstar) in
  let above = int_of_float (Float.ceil nstar) + 1 in
  Alcotest.(check bool) "below threshold propagates" true
    (Decision.alg1 p (env_at below) (net 1) = Decision.Propagate);
  Alcotest.(check bool) "above threshold blocks" true
    (Decision.alg1 p (env_at above) (net 1) = Decision.Block)

let test_analysis_inverses () =
  let p = base_params ~alpha:1.5 ~beta:2.0 ~tau:0.7 () in
  let pollution = 400.0 and ty = Tag_type.File in
  let nstar = Analysis.crossover_count p ty ~pollution in
  Alcotest.(check (float 1e-6)) "pollution inverse" pollution
    (Analysis.pollution_ceiling p ty ~n:nstar);
  Alcotest.(check (float 1e-9)) "tau inverse" p.Params.tau
    (Analysis.tau_for_threshold p ty ~n:nstar ~pollution);
  Alcotest.(check (float 1e-9)) "u inverse" (Params.u p ty)
    (Analysis.u_for_threshold p ty ~n:nstar ~pollution)

let test_analysis_edges () =
  let p = base_params ~tau:0.0 () in
  Alcotest.(check bool) "tau=0: infinite threshold" true
    (Analysis.crossover_count p Tag_type.Network ~pollution:500.0 = infinity);
  let p = base_params ~tau:1.0 () in
  Alcotest.(check bool) "P=0: infinite threshold" true
    (Analysis.crossover_count p Tag_type.Network ~pollution:0.0 = infinity);
  Alcotest.(check bool) "n<=0 ceiling infinite" true
    (Analysis.pollution_ceiling p Tag_type.Network ~n:0.0 = infinity);
  Alcotest.(check int) "describe covers every type" Tag_type.count
    (List.length (Analysis.describe p ~pollution:100.0))

let test_analysis_monotone_in_u () =
  let p = base_params () in
  let boosted = Params.with_u p Tag_type.Network 50.0 in
  Alcotest.(check bool) "u boost raises the threshold" true
    (Analysis.crossover_count boosted Tag_type.Network ~pollution:300.0
    > Analysis.crossover_count p Tag_type.Network ~pollution:300.0)

(* -- Adaptive ----------------------------------------------------------------------- *)

let test_adaptive_raises_tau_on_overshoot () =
  let p = base_params ~tau:1.0 () in
  (* target fraction 1e-3 of N_R=10000 -> 10 copies *)
  let a = Adaptive.create ~target_pollution:1e-3 p in
  let tau0 = Adaptive.tau a in
  Adaptive.observe a ~pollution:100.0 (* fraction 1e-2, 10x over *);
  Alcotest.(check bool) "tau rises" true (Adaptive.tau a > tau0);
  Alcotest.(check int) "observation counted" 1 (Adaptive.observations a)

let test_adaptive_lowers_tau_on_headroom () =
  let p = base_params ~tau:1.0 () in
  let a = Adaptive.create ~target_pollution:1e-2 p in
  Adaptive.observe a ~pollution:1.0 (* far under budget *);
  Alcotest.(check bool) "tau falls" true (Adaptive.tau a < 1.0)

let test_adaptive_clamps () =
  let p = base_params ~tau:1.0 () in
  let a = Adaptive.create ~gain:100.0 ~min_tau:0.5 ~max_tau:2.0
      ~target_pollution:1e-3 p
  in
  Adaptive.observe a ~pollution:1e6;
  Alcotest.(check (float 1e-9)) "clamped above" 2.0 (Adaptive.tau a);
  Adaptive.observe a ~pollution:0.0;
  Adaptive.observe a ~pollution:0.0;
  Adaptive.observe a ~pollution:0.0;
  Alcotest.(check (float 1e-9)) "clamped below" 0.5 (Adaptive.tau a)

let test_adaptive_converges_roughly () =
  (* with a constant observed pollution, tau settles at a boundary or
     at equilibrium without oscillating off to the clamps *)
  let p = base_params ~tau:1.0 () in
  let a = Adaptive.create ~gain:0.2 ~target_pollution:1e-3 p in
  for _ = 1 to 200 do
    Adaptive.observe a ~pollution:10.0 (* exactly the target *)
  done;
  Alcotest.(check (float 1e-6)) "stays put at target" 1.0 (Adaptive.tau a)

let test_adaptive_validation () =
  let p = base_params () in
  Alcotest.(check bool) "bad target" true
    (try ignore (Adaptive.create ~target_pollution:0.0 p); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad clamp" true
    (try ignore (Adaptive.create ~min_tau:2.0 ~max_tau:1.0
                   ~target_pollution:1e-3 p);
       false
     with Invalid_argument _ -> true)

(* -- Fairness ----------------------------------------------------------------------- *)

let test_fairness_reports () =
  let r = Fairness.of_counts [| 4.0; 4.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mse equal" 0.0 r.Fairness.mse;
  Alcotest.(check (float 1e-9)) "jain equal" 1.0 r.Fairness.jain;
  Alcotest.(check int) "distinct" 3 r.Fairness.distinct;
  Alcotest.(check int) "total" 12 r.Fairness.total_copies;
  Alcotest.(check int) "max" 4 r.Fairness.max_copies

let test_fairness_improvement () =
  let unbalanced = Fairness.of_counts [| 1.0; 9.0 |] in
  let balanced = Fairness.of_counts [| 5.0; 6.0 |] in
  Alcotest.(check bool) "improvement > 1" true
    (Fairness.improvement ~baseline:unbalanced balanced > 1.0);
  let zero = Fairness.of_counts [| 3.0; 3.0 |] in
  Alcotest.(check (float 0.0)) "both zero -> 1" 1.0
    (Fairness.improvement ~baseline:zero zero);
  Alcotest.(check bool) "to zero -> infinite" true
    (Fairness.improvement ~baseline:unbalanced zero = infinity)

let test_fairness_of_stats () =
  let stats = Tag_stats.create () in
  for _ = 1 to 3 do Tag_stats.incr stats (net 1) done;
  Tag_stats.incr stats (file 1);
  let r = Fairness.of_stats stats in
  Alcotest.(check (float 1e-9)) "mse" 4.0 r.Fairness.mse;
  let rn = Fairness.of_stats_type stats Tag_type.Network in
  Alcotest.(check int) "per-type restriction" 1 rn.Fairness.distinct

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "mitos_core"
    [
      ( "params",
        [
          Alcotest.test_case "defaults" `Quick test_params_defaults;
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "with_*" `Quick test_params_with;
        ] );
      ( "cost",
        [
          Alcotest.test_case "phi values" `Quick test_phi_values;
          Alcotest.test_case "over cost" `Quick test_over_cost;
          Alcotest.test_case "submarginals (Eq. 8)" `Quick test_submarginals;
          Alcotest.test_case "weights" `Quick test_weights_in_marginal;
          Alcotest.test_case "totals" `Quick test_under_total_matches_manual;
          q qcheck_phi_decreasing;
          q qcheck_phi_convex;
          q qcheck_over_submarginal_increasing;
        ] );
      ( "decision",
        [
          Alcotest.test_case "first copy" `Quick test_alg1_first_copy_always_propagates;
          Alcotest.test_case "tau=0" `Quick test_alg1_tau_zero_always_propagates;
          Alcotest.test_case "blocks overpropagated" `Quick test_alg1_blocks_overpropagated;
          Alcotest.test_case "alg2 space" `Quick test_alg2_respects_space;
          Alcotest.test_case "alg2 ordering" `Quick test_alg2_ordering;
          Alcotest.test_case "alg2 recompute" `Quick test_alg2_pollution_recompute_blocks_later;
          Alcotest.test_case "alg2 degenerate" `Quick test_alg2_empty_and_negative_space;
          Alcotest.test_case "alg2 acceptance criterion" `Quick test_alg2_accepted_have_nonpositive_marginal;
          Alcotest.test_case "alg2 literal = scanning (homogeneous)" `Quick
            test_alg2_paper_matches_homogeneous;
          Alcotest.test_case "alg2 literal early break" `Quick
            test_alg2_paper_early_break;
          q qcheck_alg2_paper_equals_scanning_homogeneous;
          Alcotest.test_case "of_stats" `Quick test_of_stats_env;
        ] );
      ( "fast-path",
        [
          q qcheck_fast_marginal_equals_direct;
          q qcheck_fast_alg_equals_direct;
          Alcotest.test_case "table fallback boundary" `Quick
            test_fast_table_fallback_boundary;
          Alcotest.test_case "fast_update" `Quick
            test_fast_update_reuses_or_rebuilds;
        ] );
      ( "solver",
        [
          Alcotest.test_case "kkt constraints" `Quick test_solver_kkt_constraints;
          Alcotest.test_case "kkt stationarity" `Quick test_solver_kkt_stationarity;
          Alcotest.test_case "weights shift allocation" `Quick test_solver_kkt_weights_shift_allocation;
          Alcotest.test_case "gradient matches kkt" `Slow test_solver_gradient_matches_kkt;
          Alcotest.test_case "greedy near kkt" `Quick test_solver_greedy_near_kkt;
          Alcotest.test_case "brute force" `Quick test_solver_brute_force;
          Alcotest.test_case "budget binds" `Quick test_solver_budget_binds;
          Alcotest.test_case "B&B matches brute force" `Quick
            test_branch_and_bound_matches_brute_force;
          Alcotest.test_case "B&B node limit" `Quick
            test_branch_and_bound_node_limit;
          q qcheck_branch_and_bound_exact;
          q qcheck_kkt_feasible;
          q qcheck_greedy_never_beats_kkt;
          q qcheck_alg2_respects_space_and_order;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "crossover consistent with alg1" `Quick
            test_analysis_crossover_consistency;
          Alcotest.test_case "inverses" `Quick test_analysis_inverses;
          Alcotest.test_case "edges" `Quick test_analysis_edges;
          Alcotest.test_case "monotone in u" `Quick test_analysis_monotone_in_u;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "raises tau on overshoot" `Quick
            test_adaptive_raises_tau_on_overshoot;
          Alcotest.test_case "lowers tau on headroom" `Quick
            test_adaptive_lowers_tau_on_headroom;
          Alcotest.test_case "clamps" `Quick test_adaptive_clamps;
          Alcotest.test_case "stable at target" `Quick
            test_adaptive_converges_roughly;
          Alcotest.test_case "validation" `Quick test_adaptive_validation;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "reports" `Quick test_fairness_reports;
          Alcotest.test_case "improvement" `Quick test_fairness_improvement;
          Alcotest.test_case "of_stats" `Quick test_fairness_of_stats;
        ] );
    ]
