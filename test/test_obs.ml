open Mitos_obs

let check_float = Alcotest.(check (float 1e-9))

let string_contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* -- Obs_clock ------------------------------------------------------ *)

let test_logical_clock () =
  let c = Obs_clock.logical () in
  Alcotest.(check int) "starts at 0" 0 (Obs_clock.now c);
  Alcotest.(check int) "advances by one" 1 (Obs_clock.now c);
  Alcotest.(check int) "again" 2 (Obs_clock.now c);
  let c = Obs_clock.logical ~start:100 () in
  Alcotest.(check int) "custom start" 100 (Obs_clock.now c)

let test_of_fun_clock () =
  let source = ref 7 in
  let c = Obs_clock.of_fun (fun () -> !source) in
  Alcotest.(check int) "reads source" 7 (Obs_clock.now c);
  source := 42;
  Alcotest.(check int) "tracks source" 42 (Obs_clock.now c)

let test_real_clock_monotone () =
  let c = Obs_clock.real () in
  let a = Obs_clock.now c in
  let b = Obs_clock.now c in
  Alcotest.(check bool) "non-negative" true (a >= 0);
  Alcotest.(check bool) "non-decreasing" true (b >= a)

(* -- Histogram ------------------------------------------------------ *)

let test_histogram_bucket_boundaries () =
  (* lo=1, growth=2, 5 buckets: bounds 1, 2, 4, 8, +inf.
     Bucket i covers (ub(i-1), ub(i)]; bucket 0 also absorbs <= 1. *)
  let h = Histogram.create ~lo:1.0 ~growth:2.0 ~buckets:5 () in
  Alcotest.(check int) "num buckets" 5 (Histogram.num_buckets h);
  check_float "ub 0" 1.0 (Histogram.upper_bound h 0);
  check_float "ub 1" 2.0 (Histogram.upper_bound h 1);
  check_float "ub 2" 4.0 (Histogram.upper_bound h 2);
  check_float "ub 3" 8.0 (Histogram.upper_bound h 3);
  Alcotest.(check bool) "last is +inf" true
    (Histogram.upper_bound h 4 = infinity);
  let idx = Histogram.bucket_index h in
  Alcotest.(check int) "0.5 -> 0" 0 (idx 0.5);
  Alcotest.(check int) "1.0 -> 0 (inclusive ub)" 0 (idx 1.0);
  Alcotest.(check int) "1.5 -> 1" 1 (idx 1.5);
  Alcotest.(check int) "2.0 -> 1 (inclusive ub)" 1 (idx 2.0);
  Alcotest.(check int) "2.0001 -> 2" 2 (idx 2.0001);
  Alcotest.(check int) "4.0 -> 2" 2 (idx 4.0);
  Alcotest.(check int) "8.0 -> 3" 3 (idx 8.0);
  Alcotest.(check int) "9.0 -> overflow" 4 (idx 9.0);
  Alcotest.(check int) "1e12 -> overflow" 4 (idx 1e12)

let test_histogram_observe_counts () =
  let h = Histogram.create ~lo:1.0 ~growth:2.0 ~buckets:4 () in
  List.iter (Histogram.observe h) [ 0.5; 1.0; 3.0; 3.5; 100.0 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  check_float "sum" 108.0 (Histogram.sum h);
  check_float "min" 0.5 (Histogram.min_value h);
  check_float "max" 100.0 (Histogram.max_value h);
  check_float "mean" 21.6 (Histogram.mean h);
  Alcotest.(check int) "bucket 0" 2 (Histogram.bucket_count h 0);
  Alcotest.(check int) "bucket 1" 0 (Histogram.bucket_count h 1);
  Alcotest.(check int) "bucket 2" 2 (Histogram.bucket_count h 2);
  Alcotest.(check int) "overflow" 1 (Histogram.bucket_count h 3);
  let cum = Histogram.cumulative_buckets h in
  Alcotest.(check (list int)) "cumulative"
    [ 2; 2; 4; 5 ]
    (Array.to_list (Array.map snd cum))

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "count 0" 0 (Histogram.count h);
  Alcotest.(check bool) "min nan" true (Float.is_nan (Histogram.min_value h));
  Alcotest.(check bool) "max nan" true (Float.is_nan (Histogram.max_value h));
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Histogram.mean h));
  Alcotest.(check bool) "quantile nan" true (Float.is_nan (Histogram.quantile h 0.5))

let test_histogram_quantiles () =
  let h = Histogram.create ~lo:1.0 ~growth:2.0 ~buckets:10 () in
  (* 100 observations of 1..100 *)
  for i = 1 to 100 do
    Histogram.observe h (float_of_int i)
  done;
  check_float "q0 is exact min" 1.0 (Histogram.quantile h 0.0);
  check_float "q1 is exact max" 100.0 (Histogram.quantile h 1.0);
  (* the estimate should be within the bucket that holds the true
     quantile: median 50 lives in bucket (32, 64] *)
  let q50 = Histogram.quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "median in (32, 64], got %g" q50)
    true
    (q50 > 32.0 && q50 <= 64.0);
  let q90 = Histogram.quantile h 0.9 in
  Alcotest.(check bool)
    (Printf.sprintf "p90 in (64, 100], got %g" q90)
    true
    (q90 > 64.0 && q90 <= 100.0);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Histogram.quantile: q outside [0,1]") (fun () ->
      ignore (Histogram.quantile h 1.5))

let test_histogram_quantile_clamps () =
  (* All mass in one bucket: interpolation must clamp to [min, max]. *)
  let h = Histogram.create ~lo:1.0 ~growth:2.0 ~buckets:8 () in
  List.iter (Histogram.observe h) [ 5.0; 5.0; 5.0; 5.0 ];
  let q = Histogram.quantile h 0.5 in
  Alcotest.(check bool) "clamped to observed range" true (q = 5.0)

let test_histogram_quantile_edges () =
  (* single observation: every quantile lands on that value *)
  let h = Histogram.create ~lo:1.0 ~growth:2.0 ~buckets:4 () in
  Histogram.observe h 3.0;
  check_float "single q0" 3.0 (Histogram.quantile h 0.0);
  check_float "single q0.5" 3.0 (Histogram.quantile h 0.5);
  check_float "single q1" 3.0 (Histogram.quantile h 1.0);
  (* q0/q1 are the exact extremes, not bucket bounds *)
  let h = Histogram.create ~lo:1.0 ~growth:2.0 ~buckets:6 () in
  List.iter (Histogram.observe h) [ 1.25; 7.5; 30.0 ];
  check_float "q0 exact min" 1.25 (Histogram.quantile h 0.0);
  check_float "q1 exact max" 30.0 (Histogram.quantile h 1.0);
  (* all mass in the overflow bucket: no finite upper bound to
     interpolate against, so the estimate falls back to the max *)
  let h = Histogram.create ~lo:1.0 ~growth:2.0 ~buckets:3 () in
  List.iter (Histogram.observe h) [ 50.0; 70.0; 90.0 ];
  check_float "overflow q0.5 = max" 90.0 (Histogram.quantile h 0.5);
  check_float "overflow q0.99 = max" 90.0 (Histogram.quantile h 0.99);
  check_float "overflow q0 = min" 50.0 (Histogram.quantile h 0.0)

let test_histogram_reset () =
  let h = Histogram.create () in
  Histogram.observe h 3.0;
  Histogram.reset h;
  Alcotest.(check int) "count 0 after reset" 0 (Histogram.count h);
  check_float "sum 0 after reset" 0.0 (Histogram.sum h)

let test_histogram_validation () =
  Alcotest.check_raises "lo <= 0"
    (Invalid_argument "Histogram.create: lo must be positive") (fun () ->
      ignore (Histogram.create ~lo:0.0 ()));
  Alcotest.check_raises "growth <= 1"
    (Invalid_argument "Histogram.create: growth must exceed 1") (fun () ->
      ignore (Histogram.create ~growth:1.0 ()));
  Alcotest.check_raises "buckets < 2"
    (Invalid_argument "Histogram.create: need at least 2 buckets") (fun () ->
      ignore (Histogram.create ~buckets:1 ()))

(* -- Registry ------------------------------------------------------- *)

let test_registry_get_or_create () =
  let r = Registry.create () in
  let c1 = Registry.counter r "requests" in
  let c2 = Registry.counter r "requests" in
  Registry.incr c1;
  Registry.add c2 2;
  Alcotest.(check int) "same instrument" 3 (Registry.counter_value c1);
  let g = Registry.gauge r "depth" in
  Registry.set_gauge g 4.5;
  check_float "gauge" 4.5 (Registry.gauge_value (Registry.gauge r "depth"));
  (* distinct labels -> distinct instruments *)
  let a = Registry.counter r ~labels:[ ("ty", "net") ] "ifp" in
  let b = Registry.counter r ~labels:[ ("ty", "file") ] "ifp" in
  Registry.incr a;
  Alcotest.(check int) "label isolation" 0 (Registry.counter_value b)

let test_registry_kind_mismatch () =
  let r = Registry.create () in
  ignore (Registry.counter r "x");
  Alcotest.(check bool) "kind clash raises" true
    (try
       ignore (Registry.gauge r "x");
       false
     with Invalid_argument _ -> true)

let test_prometheus_rendering () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"Total records." "mitos_records_total" in
  Registry.add c 42;
  let g = Registry.gauge r "mitos_depth" in
  Registry.set_gauge g 3.0;
  let h =
    Registry.histogram r ~lo:1.0 ~growth:2.0 ~buckets:4 "mitos_latency_ticks"
  in
  List.iter (Histogram.observe h) [ 1.0; 3.0; 100.0 ];
  let expected =
    "# TYPE mitos_depth gauge\n\
     mitos_depth 3\n\
     # TYPE mitos_latency_ticks histogram\n\
     mitos_latency_ticks_bucket{le=\"1\"} 1\n\
     mitos_latency_ticks_bucket{le=\"2\"} 1\n\
     mitos_latency_ticks_bucket{le=\"4\"} 2\n\
     mitos_latency_ticks_bucket{le=\"+Inf\"} 3\n\
     mitos_latency_ticks{quantile=\"0.5\"} 3\n\
     mitos_latency_ticks{quantile=\"0.95\"} 100\n\
     mitos_latency_ticks{quantile=\"0.99\"} 100\n\
     mitos_latency_ticks_sum 104\n\
     mitos_latency_ticks_count 3\n\
     # HELP mitos_records_total Total records.\n\
     # TYPE mitos_records_total counter\n\
     mitos_records_total 42\n"
  in
  Alcotest.(check string) "byte-exact prometheus" expected
    (Registry.to_prometheus r)

let test_prometheus_labels_sorted () =
  let r = Registry.create () in
  (* insertion order must not matter *)
  Registry.incr (Registry.counter r ~labels:[ ("ty", "net"); ("v", "y") ] "c");
  Registry.incr (Registry.counter r ~labels:[ ("ty", "file"); ("v", "x") ] "c");
  let text = Registry.to_prometheus r in
  let pos_file =
    let rec find i =
      if String.sub text i 9 = "ty=\"file\"" then i else find (i + 1)
    in
    find 0
  in
  let pos_net =
    let rec find i =
      if String.sub text i 8 = "ty=\"net\"" then i else find (i + 1)
    in
    find 0
  in
  Alcotest.(check bool) "file before net" true (pos_file < pos_net)

let test_fmt_value () =
  Alcotest.(check string) "integer-valued" "42" (Registry.fmt_value 42.0);
  Alcotest.(check string) "fractional" "2.5" (Registry.fmt_value 2.5);
  Alcotest.(check string) "+Inf" "+Inf" (Registry.fmt_value infinity);
  Alcotest.(check string) "-Inf" "-Inf" (Registry.fmt_value neg_infinity);
  Alcotest.(check string) "NaN" "NaN" (Registry.fmt_value nan)

let test_json_string () =
  Alcotest.(check string) "plain" "\"abc\"" (Registry.json_string "abc");
  Alcotest.(check string) "escapes" "\"a\\\"b\\\\c\\n\""
    (Registry.json_string "a\"b\\c\n")

let test_registry_json () =
  let r = Registry.create () in
  Registry.add (Registry.counter r "c") 5;
  Registry.set_gauge (Registry.gauge r "g") 1.5;
  let js = Registry.to_json r in
  Alcotest.(check bool) "has counters" true (string_contains js "\"counters\"");
  Alcotest.(check bool) "has c" true (string_contains js "\"c\":5");
  Alcotest.(check bool) "has g" true (string_contains js "\"g\":1.5")

(* -- Tracer --------------------------------------------------------- *)

let test_span_nesting () =
  let t = Tracer.create ~clock:(Obs_clock.logical ()) () in
  Tracer.span_begin t "outer";
  Alcotest.(check int) "depth 1" 1 (Tracer.depth t);
  Tracer.span_begin t "inner";
  Alcotest.(check int) "depth 2" 2 (Tracer.depth t);
  Tracer.span_end t;
  Tracer.span_end t;
  Alcotest.(check int) "depth 0" 0 (Tracer.depth t);
  match Tracer.events t with
  | [| Begin { name = "outer"; ts = 0; _ }; Begin { name = "inner"; ts = 1; _ };
       End { ts = 2 }; End { ts = 3 } |] ->
    ()
  | evs -> Alcotest.failf "unexpected event stream (%d events)" (Array.length evs)

let test_unmatched_end () =
  let t = Tracer.create ~clock:(Obs_clock.logical ()) () in
  Tracer.span_end t;
  Tracer.span_begin t "a";
  Tracer.span_end t;
  Tracer.span_end t;
  Alcotest.(check int) "two unmatched" 2 (Tracer.unmatched_ends t);
  Alcotest.(check int) "one balanced pair retained" 2 (Tracer.length t)

let test_finish_closes_open_spans () =
  let t = Tracer.create ~clock:(Obs_clock.logical ()) () in
  Tracer.span_begin t "a";
  Tracer.span_begin t "b";
  Tracer.finish t;
  Alcotest.(check int) "depth 0 after finish" 0 (Tracer.depth t);
  Alcotest.(check int) "begins + synthesized ends" 4 (Tracer.length t);
  Tracer.finish t;
  Alcotest.(check int) "finish idempotent" 4 (Tracer.length t)

let test_with_span_on_raise () =
  let t = Tracer.create ~clock:(Obs_clock.logical ()) () in
  (try Tracer.with_span t "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span closed on raise" 0 (Tracer.depth t);
  Alcotest.(check int) "begin and end retained" 2 (Tracer.length t)

let test_capacity_keeps_stream_well_nested () =
  let t = Tracer.create ~capacity:4 ~clock:(Obs_clock.logical ()) () in
  (* Fill capacity with two whole spans, then open a third inside a
     fourth: their begins are dropped, so their ends must be too. *)
  Tracer.with_span t "a" (fun () -> ());
  Tracer.with_span t "b" (fun () -> ());
  Tracer.with_span t "c" (fun () -> Tracer.with_span t "d" (fun () -> ()));
  Alcotest.(check int) "capacity respected" 4 (Tracer.length t);
  Alcotest.(check bool) "drops counted" true (Tracer.dropped t > 0);
  (* the retained stream is well nested: running depth never < 0 and
     ends at 0 *)
  let depth = ref 0 in
  Array.iter
    (function
      | Tracer.Begin _ -> incr depth
      | Tracer.End _ ->
        decr depth;
        Alcotest.(check bool) "never negative" true (!depth >= 0)
      | _ -> ())
    (Tracer.events t);
  Alcotest.(check int) "balanced" 0 !depth

let test_capacity_keeps_end_of_retained_begin () =
  let t = Tracer.create ~capacity:1 ~clock:(Obs_clock.logical ()) () in
  Tracer.span_begin t "kept";
  Tracer.instant t "dropped-instant";
  Tracer.span_end t;
  (* the End of the retained Begin overshoots capacity by design *)
  Alcotest.(check int) "begin + its end" 2 (Tracer.length t);
  match Tracer.events t with
  | [| Begin { name = "kept"; _ }; End _ |] -> ()
  | _ -> Alcotest.fail "expected exactly Begin kept; End"

(* -- Chrome trace --------------------------------------------------- *)

let test_chrome_trace_rendering () =
  let t = Tracer.create ~clock:(Obs_clock.logical ()) () in
  Tracer.with_span t ~args:[ ("items", "3") ] "solve" (fun () ->
      Tracer.instant t "mark";
      Tracer.counter t "engine" [ ("depth", 2.0) ]);
  let expected =
    "{\"traceEvents\":["
    ^ "{\"name\":\"solve\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":1,\"args\":{\"items\":\"3\"}},"
    ^ "{\"name\":\"mark\",\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":1,\"s\":\"t\"},"
    ^ "{\"name\":\"engine\",\"ph\":\"C\",\"ts\":2,\"pid\":1,\"tid\":1,\"args\":{\"depth\":2}},"
    ^ "{\"ph\":\"E\",\"ts\":3,\"pid\":1,\"tid\":1}"
    ^ "],\"displayTimeUnit\":\"ms\"}"
  in
  Alcotest.(check string) "byte-exact chrome trace" expected
    (Chrome_trace.to_json t)

let test_chrome_trace_escaping () =
  let t = Tracer.create ~clock:(Obs_clock.logical ()) () in
  Tracer.with_span t
    ~args:[ ("k\"ey", "v\\al\nue") ]
    "na\"me" (fun () -> Tracer.instant t "tab\there\x01");
  let js = Chrome_trace.to_json t in
  Alcotest.(check bool) "quote in name escaped" true
    (string_contains js "\"name\":\"na\\\"me\"");
  Alcotest.(check bool) "arg key escaped" true
    (string_contains js "\"k\\\"ey\":");
  Alcotest.(check bool) "backslash and newline in value" true
    (string_contains js "\"v\\\\al\\nue\"");
  Alcotest.(check bool) "tab and control char" true
    (string_contains js "\"tab\\there\\u0001\"");
  Alcotest.(check bool) "no raw newline in output" true
    (not (String.contains js '\n'))

let test_chrome_trace_jsonl () =
  let t = Tracer.create ~clock:(Obs_clock.logical ()) () in
  Tracer.with_span t "s" (fun () -> ());
  let lines = String.split_on_char '\n' (String.trim (Chrome_trace.to_jsonl t)) in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is an object" true
        (String.length l > 0 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines

(* -- Audit ----------------------------------------------------------- *)

let test_audit_null_noop () =
  Alcotest.(check bool) "disabled" false (Audit.enabled Audit.null);
  Audit.record_note Audit.null "x";
  Audit.record_decision Audit.null ~algorithm:"alg1" ~space:1 ~pollution:0.0 [];
  Audit.record_eviction Audit.null ~at:"mem:1" ~victim:"a" ~incoming:"b" ();
  Audit.record_selection Audit.null ~policy:"p" ~flow:"f" ~candidates:[]
    ~chosen:[] ();
  Audit.set_context Audit.null ~step:9 ();
  Alcotest.(check int) "no ids consumed" 0 (Audit.next_id Audit.null);
  Alcotest.(check int) "empty" 0 (Audit.length Audit.null)

let test_audit_ring_and_sink () =
  let lines = ref [] in
  let a = Audit.create ~capacity:2 ~sink:(fun l -> lines := l :: !lines) () in
  Alcotest.(check bool) "enabled" true (Audit.enabled a);
  for i = 0 to 3 do
    Audit.record_note a (Printf.sprintf "n%d" i)
  done;
  Alcotest.(check int) "retained" 2 (Audit.length a);
  Alcotest.(check int) "dropped" 2 (Audit.dropped a);
  Alcotest.(check int) "ids keep flowing past the ring" 4 (Audit.next_id a);
  (match Audit.records a with
  | [| { Audit.id = 0; _ }; { Audit.id = 1; _ } |] -> ()
  | _ -> Alcotest.fail "keep-oldest ring should hold ids 0 and 1");
  (* the sink sees every record, including the ring-dropped ones *)
  Alcotest.(check int) "sink saw everything" 4 (List.length !lines);
  List.iter
    (fun l -> Alcotest.(check bool) "single line" true
        (not (String.contains l '\n')))
    !lines;
  Alcotest.check_raises "capacity validated"
    (Invalid_argument "Audit.create: non-positive capacity") (fun () ->
      ignore (Audit.create ~capacity:0 ()))

let test_audit_json () =
  let a = Audit.create () in
  Audit.set_context a ~step:7 ~pc:42 ~flow:"addr-dep" ();
  Audit.record_decision a ~algorithm:"alg1" ~space:3 ~pollution:12.5
    [
      { Audit.tag = "network#1"; under = -0.5; over = 0.25; marginal = -0.25;
        verdict = Audit.Propagate };
    ];
  Audit.record_eviction a ~at:"mem:291" ~victim:"file#2" ~incoming:"network#1"
    ();
  Audit.record_selection a ~step:8 ~policy:"mitos" ~flow:"ctrl-dep"
    ~candidates:[ "a\"b" ] ~chosen:[] ();
  Audit.record_note a "case:x";
  let expected =
    "{\"id\":0,\"kind\":\"decision\",\"step\":7,\"pc\":42,\"alg\":\"alg1\",\
     \"flow\":\"addr-dep\",\"space\":3,\"pollution\":12.5,\"tags\":[{\"tag\":\
     \"network#1\",\"under\":-0.5,\"over\":0.25,\"marginal\":-0.25,\
     \"verdict\":\"propagate\"}]}\n\
     {\"id\":1,\"kind\":\"eviction\",\"step\":7,\"pc\":42,\"at\":\"mem:291\",\
     \"victim\":\"file#2\",\"incoming\":\"network#1\"}\n\
     {\"id\":2,\"kind\":\"selection\",\"step\":8,\"pc\":42,\"policy\":\
     \"mitos\",\"flow\":\"ctrl-dep\",\"candidates\":[\"a\\\"b\"],\"chosen\":\
     []}\n\
     {\"id\":3,\"kind\":\"note\",\"step\":7,\"pc\":42,\"text\":\"case:x\"}\n"
  in
  Alcotest.(check string) "byte-exact jsonl" expected (Audit.to_jsonl a)

let test_audit_tracer_crosslink () =
  let tracer = Tracer.create ~clock:(Obs_clock.logical ()) () in
  let a = Audit.create () in
  Audit.record_note a "before-link";
  Audit.link_tracer a tracer;
  Audit.record_note a "after-link";
  let instants =
    Array.to_list (Tracer.events tracer)
    |> List.filter_map (function
         | Tracer.Instant { name = "audit"; args; _ } -> Some args
         | _ -> None)
  in
  Alcotest.(check int) "one instant after linking" 1 (List.length instants);
  Alcotest.(check (list (pair string string)))
    "instant carries id and kind"
    [ ("id", "1"); ("kind", "note") ]
    (List.hd instants)

(* -- Obs ------------------------------------------------------------ *)

let test_disabled_is_noop () =
  let o = Obs.disabled in
  Alcotest.(check bool) "disabled" false (Obs.enabled o);
  let ran = ref false in
  let r = Obs.with_span o "x" (fun () -> ran := true; 7) in
  Alcotest.(check int) "with_span passthrough" 7 r;
  Alcotest.(check bool) "function ran" true !ran;
  let h = Histogram.create () in
  ignore (Obs.time o h (fun () -> ()));
  Alcotest.(check int) "no observation" 0 (Histogram.count h);
  Alcotest.(check int) "no trace events" 0 (Tracer.length (Obs.tracer o))

let test_enabled_records () =
  let o = Obs.create () in
  Alcotest.(check bool) "enabled" true (Obs.enabled o);
  let h = Registry.histogram (Obs.registry o) "h" in
  ignore (Obs.time o h (fun () -> ()));
  Alcotest.(check int) "observed once" 1 (Histogram.count h);
  ignore (Obs.with_span o "s" (fun () -> ()));
  Alcotest.(check int) "span recorded" 2 (Tracer.length (Obs.tracer o))

let test_obs_determinism () =
  (* the acceptance property, at library scope: two identical runs on
     fresh logical-clock contexts render byte-identical exports *)
  let run () =
    let o = Obs.create () in
    let h =
      Registry.histogram (Obs.registry o) ~lo:1.0 ~growth:2.0 ~buckets:8
        "latency"
    in
    let c = Registry.counter (Obs.registry o) "records" in
    Obs.with_span o "replay" (fun () ->
        for i = 1 to 50 do
          Obs.with_span o "chunk" (fun () ->
              ignore (Obs.time o h (fun () -> ())));
          if i mod 10 = 0 then Registry.incr c
        done);
    (Obs.chrome_trace_json o, Obs.prometheus o, Obs.metrics_json o)
  in
  let t1, p1, j1 = run () in
  let t2, p2, j2 = run () in
  Alcotest.(check string) "trace byte-identical" t1 t2;
  Alcotest.(check string) "prometheus byte-identical" p1 p2;
  Alcotest.(check string) "json byte-identical" j1 j2

(* -- engine integration --------------------------------------------- *)

let test_engine_instrumentation () =
  let module W = Mitos_workload in
  let built = W.Netbench.build ~seed:3 ~chunks:1 () in
  let trace = W.Workload.record built in
  let obs = Obs.create () in
  let engine =
    W.Workload.replay ~obs ~sample_every:64
      ~policy:Mitos_dift.Policies.propagate_all
      (W.Netbench.build ~seed:3 ~chunks:1 ())
      trace
  in
  let counters = Mitos_dift.Engine.counters engine in
  let text = Obs.prometheus obs in
  Alcotest.(check bool) "records counter exported" true
    (string_contains text
       (Printf.sprintf "mitos_engine_records_total %d" counters.steps));
  Alcotest.(check bool) "latency histogram exported" true
    (string_contains text "mitos_engine_record_latency_ticks_count");
  Alcotest.(check bool) "replay throughput exported" true
    (string_contains text "mitos_replay_records_total");
  Alcotest.(check bool) "run-level sampler exported" true
    (string_contains text "mitos_run_tainted_bytes");
  Obs.finish obs;
  Alcotest.(check bool) "replay span traced" true
    (Array.exists
       (function Tracer.Begin { name = "replay"; _ } -> true | _ -> false)
       (Tracer.events (Obs.tracer obs)))

let test_engine_double_instrument_rejected () =
  let module W = Mitos_workload in
  let built = W.Netbench.build ~seed:3 ~chunks:1 () in
  let engine =
    W.Workload.engine_of ~policy:Mitos_dift.Policies.propagate_all built
  in
  let obs = Obs.create () in
  Mitos_dift.Engine.instrument engine obs;
  Alcotest.(check bool) "second instrument raises" true
    (try
       Mitos_dift.Engine.instrument engine obs;
       false
     with Invalid_argument _ -> true)

(* -- Health ---------------------------------------------------------- *)

let test_health_parse_rule () =
  let ok s expected =
    match Health.parse_rule s with
    | Error e -> Alcotest.fail (Printf.sprintf "%S rejected: %s" s e)
    | Ok r ->
      Alcotest.(check string) ("round-trip " ^ s) expected
        (Health.rule_to_string r)
  in
  ok "over_taint_ratio<=1" "over_taint_ratio<=1";
  ok "slo1:decision_p99_ticks<64" "slo1:decision_p99_ticks<64";
  ok "eviction_rate>=0.25" "eviction_rate>=0.25";
  ok "hot:tag_space_occupancy>0.9" "hot:tag_space_occupancy>0.9";
  let bad s =
    match Health.parse_rule s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s)
  in
  bad ""; bad "nocmp"; bad "x<="; bad "<=1"; bad "x<=notafloat";
  bad "x==1"

let test_health_pending_then_breach () =
  let r = Health.rule ~signal:"over_taint_ratio" ~cmp:Health.Le ~bound:0.5 () in
  let h = Health.create ~rules:[ r ] () in
  Alcotest.(check bool) "pending is healthy" true (Health.healthy h);
  Alcotest.(check int) "pending 200" 200 (Health.status_code h);
  Health.observe h ~at:1.0 [ ("over_taint_ratio", 0.4) ];
  Alcotest.(check bool) "within bound" true (Health.healthy h);
  Health.observe h ~at:2.0 [ ("over_taint_ratio", 0.9) ];
  Alcotest.(check bool) "breached" false (Health.healthy h);
  Alcotest.(check int) "503" 503 (Health.status_code h);
  Health.observe h ~at:3.0 [ ("over_taint_ratio", 0.91) ];
  Health.observe h ~at:4.0 [ ("over_taint_ratio", 0.3) ];
  Alcotest.(check bool) "recovered" true (Health.healthy h);
  Health.observe h ~at:5.0 [ ("over_taint_ratio", 0.99) ];
  (* only ok->breach transitions are history events: 2.0 and 5.0, the
     sustained 3.0 violation is not a second breach *)
  (match Health.breaches h with
  | [ b1; b2 ] ->
    check_float "first edge" 2.0 b1.Health.at;
    check_float "second edge" 5.0 b2.Health.at
  | bs -> Alcotest.fail (Printf.sprintf "expected 2 breaches, got %d"
                           (List.length bs)));
  Alcotest.(check bool) "render says BREACH" true
    (string_contains (Health.render h) "BREACH")

let test_health_window () =
  let r = Health.rule ~signal:"s" ~cmp:Health.Le ~bound:10.0 () in
  let h = Health.create ~window:4.0 ~rules:[ r ] () in
  Health.observe h ~at:0.0 [ ("s", 100.0) ];
  Alcotest.(check bool) "spike breaches" false (Health.healthy h);
  (* the spike ages out of the 4-step window; the trailing mean of the
     recent calm samples is what's judged *)
  Health.observe h ~at:2.0 [ ("s", 2.0) ];
  Health.observe h ~at:5.0 [ ("s", 4.0) ];
  Health.observe h ~at:6.0 [ ("s", 6.0) ];
  Alcotest.(check bool) "window mean ok" true (Health.healthy h);
  match Health.current_breaches h with
  | [] -> ()
  | _ -> Alcotest.fail "no current breach expected"

let test_health_tracer_instant () =
  let r = Health.rule ~signal:"s" ~cmp:Health.Lt ~bound:1.0 () in
  let h = Health.create ~rules:[ r ] () in
  let tracer = Tracer.create ~clock:(Obs_clock.logical ()) () in
  Health.link_tracer h tracer;
  Health.observe h ~at:1.0 [ ("s", 5.0) ];
  Alcotest.(check bool) "slo_breach instant emitted" true
    (Array.exists
       (function
         | Tracer.Instant { name = "slo_breach"; _ } -> true
         | _ -> false)
       (Tracer.events tracer))

(* -- Server ---------------------------------------------------------- *)

let ping_routes hits =
  [
    Server.route ~file:"ping.txt" ~describe:"ping" "/ping" (fun () ->
        incr hits;
        Server.text "pong\n");
    Server.route ~file:"boom.txt" ~describe:"raises" "/boom" (fun () ->
        failwith "payload exploded");
    Server.route ~file:"sick.txt" ~describe:"non-200 payload" "/sick"
      (fun () -> Server.text ~status:503 "unwell\n");
  ]

let test_server_serve_fetch_stop () =
  let hits = ref 0 in
  let server = Server.start (ping_routes hits) in
  let fetch path =
    Server.fetch ~host:"127.0.0.1" ~port:(Server.port server) ~path ()
  in
  (match fetch "/ping" with
  | Ok (200, body) -> Alcotest.(check string) "body" "pong\n" body
  | Ok (st, _) -> Alcotest.fail (Printf.sprintf "/ping status %d" st)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "payload thunk ran" 1 !hits;
  (match fetch "/ping?verbose=1" with
  | Ok (200, _) -> ()
  | _ -> Alcotest.fail "query string should be stripped");
  (match fetch "/" with
  | Ok (200, body) ->
    Alcotest.(check bool) "index lists routes" true
      (string_contains body "/ping")
  | _ -> Alcotest.fail "index fetch failed");
  (match fetch "/nope" with
  | Ok (404, _) -> ()
  | _ -> Alcotest.fail "expected 404");
  (match fetch "/boom" with
  | Ok (500, _) -> ()
  | _ -> Alcotest.fail "expected 500 from raising payload");
  (match fetch "/sick" with
  | Ok (503, body) -> Alcotest.(check string) "non-200 body" "unwell\n" body
  | _ -> Alcotest.fail "expected 503 pass-through");
  let port = Server.port server in
  Server.stop server;
  Server.stop server;
  (* idempotent *)
  match Server.fetch ~host:"127.0.0.1" ~port ~path:"/ping" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stopped server still answering"

let test_server_rejects_non_get () =
  let server = Server.start (ping_routes (ref 0)) in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let addr =
        Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server)
      in
      let sock = Unix.socket PF_INET SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect sock addr;
          let req = "POST /ping HTTP/1.0\r\n\r\n" in
          ignore (Unix.write_substring sock req 0 (String.length req));
          let buf = Bytes.create 64 in
          let n = Unix.read sock buf 0 64 in
          let status_line = Bytes.sub_string buf 0 n in
          Alcotest.(check bool) "405" true
            (string_contains status_line "405")))

let test_server_oneshot_deterministic () =
  let routes = ping_routes (ref 0) in
  (* /boom raises: oneshot must propagate, so drop it for this test *)
  let routes = List.filter (fun r -> r.Server.path <> "/boom") routes in
  let dir = Filename.temp_file "mitos_oneshot" "" in
  Sys.remove dir;
  let written = Server.oneshot ~dir routes in
  Alcotest.(check (list string)) "files in route order"
    [ "ping.txt"; "sick.txt" ]
    (List.map fst written);
  let slurp path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let first = List.map (fun (_, p) -> slurp p) written in
  let again = List.map (fun (_, p) -> slurp p) (Server.oneshot ~dir routes) in
  Alcotest.(check (list string)) "byte-identical on re-run" first again;
  Alcotest.(check string) "payload body written" "pong\n" (List.hd first);
  List.iter (fun (_, p) -> Sys.remove p) written;
  Unix.rmdir dir

let test_server_oneshot_propagates () =
  let dir = Filename.temp_file "mitos_oneshot" "" in
  Sys.remove dir;
  Alcotest.(check bool) "payload exception propagates" true
    (try
       ignore (Server.oneshot ~dir (ping_routes (ref 0)));
       false
     with Failure _ -> true);
  (* the routes before the raising one were written *)
  Sys.remove (Filename.concat dir "ping.txt");
  Unix.rmdir dir

let test_parse_url () =
  let ok s expected =
    match Server.parse_url s with
    | Ok got ->
      let render (h, p, path) = Printf.sprintf "%s|%d|%s" h p path in
      Alcotest.(check string) s (render expected) (render got)
    | Error e -> Alcotest.fail (Printf.sprintf "%S rejected: %s" s e)
  in
  ok "http://127.0.0.1:9100/metrics" ("127.0.0.1", 9100, "/metrics");
  ok "127.0.0.1:9100" ("127.0.0.1", 9100, "/");
  ok "localhost:80/healthz" ("localhost", 80, "/healthz");
  let bad s =
    match Server.parse_url s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
  in
  bad "no-port"; bad "host:notaport/x"; bad ""

(* -- escape_label round-trip ----------------------------------------- *)

let unescape_label s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '\\' && i + 1 < n then begin
        (match s.[i + 1] with
        | '\\' -> Buffer.add_char buf '\\'
        | '"' -> Buffer.add_char buf '"'
        | 'n' -> Buffer.add_char buf '\n'
        | c ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

(* -- Propagation ---------------------------------------------------- *)

let test_propagation_deterministic () =
  let mk () = Propagation.create ~seed:3 (Obs_clock.logical ()) in
  let a = Propagation.fresh (mk ()) and b = Propagation.fresh (mk ()) in
  Alcotest.(check string) "trace id is a clock/seed function"
    a.Propagation.trace_id b.Propagation.trace_id;
  Alcotest.(check string) "span id too" a.Propagation.span_id
    b.Propagation.span_id;
  let p = mk () in
  let c1 = Propagation.fresh p and c2 = Propagation.fresh p in
  Alcotest.(check bool) "consecutive traces distinct" true
    (c1.Propagation.trace_id <> c2.Propagation.trace_id)

let test_propagation_validity_and_child () =
  let p = Propagation.create (Obs_clock.logical ()) in
  let ctx = Propagation.fresh p in
  Alcotest.(check bool) "trace id valid" true
    (Propagation.is_valid_trace_id ctx.Propagation.trace_id);
  Alcotest.(check bool) "span id valid" true
    (Propagation.is_valid_span_id ctx.Propagation.span_id);
  let child = Propagation.child p ctx in
  Alcotest.(check string) "child keeps the trace" ctx.Propagation.trace_id
    child.Propagation.trace_id;
  Alcotest.(check bool) "child gets its own span" true
    (child.Propagation.span_id <> ctx.Propagation.span_id);
  Alcotest.(check bool) "bad ids rejected" false
    (Propagation.is_valid_trace_id (String.make 32 'g')
    || Propagation.is_valid_trace_id "abc"
    || Propagation.is_valid_span_id (String.make 17 'a'));
  match Propagation.to_args ctx with
  | [ ("trace_id", t); ("span_id", sp) ] ->
    Alcotest.(check string) "args trace" ctx.Propagation.trace_id t;
    Alcotest.(check string) "args span" ctx.Propagation.span_id sp
  | _ -> Alcotest.fail "to_args shape"

(* -- Contended ------------------------------------------------------ *)

let test_contended_counts () =
  let m = Contended.create "t_counts" in
  Contended.lock m;
  Contended.unlock m;
  Contended.with_lock m (fun () -> ());
  let st = Contended.stats m in
  Alcotest.(check int) "acquisitions" 2 st.Contended.acquisitions;
  Alcotest.(check int) "uncontended so far" 0 st.Contended.contended;
  Alcotest.(check bool) "hold accounted" true (st.Contended.hold_ns_total >= 0);
  Alcotest.(check bool) "max <= total" true
    (st.Contended.hold_ns_max <= max st.Contended.hold_ns_total 0
    || st.Contended.acquisitions = 0);
  Alcotest.(check string) "name" "t_counts" (Contended.name m)

let test_contended_contention_counted () =
  let m = Contended.create "t_contend" in
  Contended.lock m;
  let d =
    Domain.spawn (fun () -> Contended.with_lock m (fun () -> 42))
  in
  (* hold long enough that the domain's try_lock fast path fails *)
  Unix.sleepf 0.05;
  Contended.unlock m;
  Alcotest.(check int) "domain got the lock" 42 (Domain.join d);
  let st = Contended.stats m in
  Alcotest.(check int) "two acquisitions" 2 st.Contended.acquisitions;
  Alcotest.(check int) "one contended" 1 st.Contended.contended;
  Alcotest.(check bool) "wait time recorded" true
    (st.Contended.wait_ns_total > 0)

let test_contended_aggregate_and_wait () =
  let a1 = Contended.create "t_agg" and a2 = Contended.create "t_agg" in
  Contended.lock a1;
  Contended.unlock a1;
  Contended.lock a2;
  Contended.unlock a2;
  (match List.assoc_opt "t_agg" (Contended.aggregate ()) with
  | Some st -> Alcotest.(check int) "same-name stats summed" 2
                 st.Contended.acquisitions
  | None -> Alcotest.fail "aggregate missing t_agg");
  Alcotest.(check bool) "tracked in all ()" true
    (List.memq a1 (Contended.all ()) && List.memq a2 (Contended.all ()));
  (* Condition interop: wait releases and reacquires with accounting *)
  let m = Contended.create "t_wait" in
  let cond = Condition.create () in
  let ready = ref false in
  let d =
    Domain.spawn (fun () ->
        Contended.with_lock m (fun () ->
            while not !ready do
              Contended.wait m cond
            done;
            7))
  in
  Unix.sleepf 0.02;
  Contended.with_lock m (fun () ->
      ready := true;
      Condition.signal cond);
  Alcotest.(check int) "woken waiter finished" 7 (Domain.join d);
  let st = Contended.stats m in
  Alcotest.(check bool) "wakeup reacquisitions counted" true
    (st.Contended.acquisitions >= 3)

(* -- Profile -------------------------------------------------------- *)

(* a controllable clock: spans get exactly the ticks we set *)
let scripted_obs () =
  let t = ref 0 in
  (Obs.create ~clock:(Obs_clock.of_fun (fun () -> !t)) (), t)

let test_profile_fold_self_times () =
  let obs, t = scripted_obs () in
  Obs.with_span obs "outer" (fun () ->
      t := 2;
      Obs.with_span obs "inner" (fun () -> t := 7);
      t := 10);
  let rows = Profile.fold (Obs.tracer obs) in
  (match rows with
  | [ outer; inner ] ->
    Alcotest.(check (list string)) "outer stack" [ "outer" ] outer.Profile.stack;
    Alcotest.(check int) "outer self = total - child" 5 outer.Profile.self;
    Alcotest.(check int) "outer total" 10 outer.Profile.total;
    Alcotest.(check (list string)) "inner stack" [ "outer"; "inner" ]
      inner.Profile.stack;
    Alcotest.(check int) "inner self" 5 inner.Profile.self;
    Alcotest.(check int) "inner count" 1 inner.Profile.count
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
  Alcotest.(check string) "collapsed rendering, ns-scaled"
    "outer 5000\nouter;inner 5000\n"
    (Profile.collapse ~scale:1000 (Obs.tracer obs));
  (* a synthetic root merges tracers into one flamegraph namespace *)
  match Profile.fold ~root:"client" (Obs.tracer obs) with
  | { Profile.stack = "client" :: _; _ } :: _ -> ()
  | _ -> Alcotest.fail "root frame missing"

let test_profile_sanitizes_and_tops () =
  let obs, t = scripted_obs () in
  Obs.with_span obs "a b;c" (fun () -> t := 3);
  t := 10;
  Obs.with_span obs "heavy" (fun () -> t := 100);
  let rows = Profile.fold (Obs.tracer obs) in
  Alcotest.(check bool) "frame separators sanitized" true
    (List.exists (fun r -> r.Profile.stack = [ "a_b_c" ]) rows);
  match Profile.top ~n:1 rows with
  | [ r ] -> Alcotest.(check (list string)) "heaviest first" [ "heavy" ]
               r.Profile.stack
  | _ -> Alcotest.fail "top ~n:1 must return one row"

let test_tracer_complete_retrospective () =
  let obs, t = scripted_obs () in
  Obs.with_span obs "live" (fun () -> t := 4);
  Tracer.complete (Obs.tracer obs) ~ts0:4 ~ts1:9
    ~args:[ ("trace_id", String.make 32 'a') ]
    "server.decide";
  let rows = Profile.fold (Obs.tracer obs) in
  Alcotest.(check bool) "retrospective span folded" true
    (List.exists
       (fun r -> r.Profile.stack = [ "server.decide" ] && r.Profile.self = 5)
       rows);
  Alcotest.(check bool) "args land in the chrome trace" true
    (string_contains
       (Chrome_trace.to_jsonl (Obs.tracer obs))
       (String.make 32 'a'))

(* -- Runtime -------------------------------------------------------- *)

let test_runtime_sample_gauges () =
  let reg = Registry.create () in
  (* touch a lock so the lock gauges have something to export *)
  let m = Contended.create "t_runtime" in
  Contended.with_lock m (fun () -> ());
  Runtime.sample reg;
  let prom = Registry.to_prometheus reg in
  Alcotest.(check bool) "gc gauges exported" true
    (string_contains prom "mitos_gc_minor_collections"
    && string_contains prom "mitos_gc_heap_words");
  Alcotest.(check bool) "lock gauges exported with the lock label" true
    (string_contains prom "mitos_lock_acquisitions_total"
    && string_contains prom "lock=\"t_runtime\"");
  let sigs = Runtime.signals () in
  (match List.assoc_opt "lock_t_runtime_contention" sigs with
  | Some share ->
    Alcotest.(check bool) "contention share in [0,1]" true
      (share >= 0.0 && share <= 1.0)
  | None -> Alcotest.fail "contention signal missing");
  (* background sampler starts and stops cleanly *)
  let sampler = Runtime.start ~period:0.005 reg in
  Unix.sleepf 0.02;
  Runtime.stop sampler

(* -- Server query routing ------------------------------------------- *)

let test_server_route_q () =
  let echo =
    Server.route_q ~file:"echo.txt" "/echo" (fun query ->
        Server.text
          (String.concat ";"
             (List.map (fun (k, v) -> k ^ "=" ^ v) query)))
  in
  let server = Server.start [ echo ] in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let fetch path =
        Server.fetch ~host:"127.0.0.1" ~port:(Server.port server) ~path ()
      in
      (match fetch "/echo?a=1&b=2" with
      | Ok (200, body) -> Alcotest.(check string) "pairs in order" "a=1;b=2" body
      | _ -> Alcotest.fail "query fetch failed");
      (match fetch "/echo?flag" with
      | Ok (200, body) ->
        Alcotest.(check string) "bare key gets empty value" "flag=" body
      | _ -> Alcotest.fail "bare-key fetch failed");
      match fetch "/echo" with
      | Ok (200, body) -> Alcotest.(check string) "no query" "" body
      | _ -> Alcotest.fail "no-query fetch failed")

let qcheck_escape_label_roundtrip =
  QCheck.Test.make ~name:"escape_label round-trips through unescape"
    ~count:500 QCheck.string (fun s ->
      unescape_label (Registry.escape_label s) = s)

let qcheck_escape_label_no_raw_specials =
  QCheck.Test.make ~name:"escaped labels contain no raw quote/newline"
    ~count:500 QCheck.string (fun s ->
      let escaped = Registry.escape_label s in
      (* scan left to right: a quote or newline may only appear as
         part of a backslash escape *)
      let n = String.length escaped in
      let rec ok i =
        if i >= n then true
        else if escaped.[i] = '\\' then i + 1 < n && ok (i + 2)
        else if escaped.[i] = '"' || escaped.[i] = '\n' then false
        else ok (i + 1)
      in
      ok 0)

(* -- Histogram.merge ------------------------------------------------ *)

(* nan-safe structural fingerprint: OCaml [nan = nan] is false, so
   min/max of empty histograms go through a formatter instead *)
let hist_fingerprint h =
  Printf.sprintf "%s|%s|%d|%.17g|%.17g|%.17g"
    (String.concat ","
       (List.map (Printf.sprintf "%.17g")
          (Array.to_list (Histogram.bounds h))))
    (String.concat ","
       (List.map (fun (_, c) -> string_of_int c)
          (Array.to_list (Histogram.buckets h))))
    (Histogram.count h) (Histogram.sum h) (Histogram.min_value h)
    (Histogram.max_value h)

let merge_layout () = Histogram.create ~lo:1.0 ~growth:2.0 ~buckets:6 ()

let hist_of obs =
  let h = merge_layout () in
  List.iter (Histogram.observe h) obs;
  h

let test_histogram_merge () =
  let a = hist_of [ 0.5; 3.0; 100.0 ] and b = hist_of [ 1.0; 7.0 ] in
  let m = Histogram.merge a b in
  Alcotest.(check string) "merge = observing the union"
    (hist_fingerprint (hist_of [ 0.5; 3.0; 100.0; 1.0; 7.0 ]))
    (hist_fingerprint m);
  Alcotest.(check string) "inputs untouched"
    (hist_fingerprint (hist_of [ 0.5; 3.0; 100.0 ]))
    (hist_fingerprint a);
  (* one empty side: min/max come from the non-empty side *)
  let m' = Histogram.merge a (merge_layout ()) in
  Alcotest.(check string) "empty is identity" (hist_fingerprint a)
    (hist_fingerprint m');
  (match
     Histogram.merge a (Histogram.create ~lo:1.0 ~growth:2.0 ~buckets:5 ())
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "layout mismatch accepted")

(* finite magnitudes spanning every bucket including overflow (the
   last finite bound of the 6-bucket layout is 32); infinities are
   excluded because an observed +inf makes sums and interpolation
   against max_value meaningless *)
let obs_gen = QCheck.float_range 0.0 1e6
let obs_list_gen = QCheck.(list_of_size Gen.(0 -- 20) obs_gen)

(* like [hist_fingerprint] equality, but tolerant of float-addition
   rounding in [sum] — merge adds sums pairwise, so different
   association orders differ in the last bits *)
let hist_approx_equal a b =
  let sum_close =
    let sa = Histogram.sum a and sb = Histogram.sum b in
    sa = sb || Float.abs (sa -. sb) <= 1e-9 *. Float.max 1.0 (Float.abs sa)
  in
  Histogram.bounds a = Histogram.bounds b
  && Array.map snd (Histogram.buckets a) = Array.map snd (Histogram.buckets b)
  && Histogram.count a = Histogram.count b
  && sum_close
  && Printf.sprintf "%.17g" (Histogram.min_value a)
     = Printf.sprintf "%.17g" (Histogram.min_value b)
  && Printf.sprintf "%.17g" (Histogram.max_value a)
     = Printf.sprintf "%.17g" (Histogram.max_value b)

let qcheck_hist_merge_commutative =
  QCheck.Test.make ~name:"Histogram.merge commutative" ~count:200
    (QCheck.pair obs_list_gen obs_list_gen) (fun (xs, ys) ->
      let a () = hist_of xs and b () = hist_of ys in
      hist_fingerprint (Histogram.merge (a ()) (b ()))
      = hist_fingerprint (Histogram.merge (b ()) (a ())))

let qcheck_hist_merge_associative =
  QCheck.Test.make ~name:"Histogram.merge associative" ~count:200
    (QCheck.triple obs_list_gen obs_list_gen obs_list_gen)
    (fun (xs, ys, zs) ->
      let a () = hist_of xs and b () = hist_of ys and c () = hist_of zs in
      hist_approx_equal
        (Histogram.merge (Histogram.merge (a ()) (b ())) (c ()))
        (Histogram.merge (a ()) (Histogram.merge (b ()) (c ()))))

let qcheck_hist_merge_empty_identity =
  QCheck.Test.make ~name:"Histogram.merge empty identity" ~count:200
    obs_list_gen (fun xs ->
      hist_fingerprint (Histogram.merge (hist_of xs) (merge_layout ()))
      = hist_fingerprint (hist_of xs)
      && hist_fingerprint (Histogram.merge (merge_layout ()) (hist_of xs))
         = hist_fingerprint (hist_of xs))

let qcheck_hist_merge_quantile_envelope =
  (* a merged quantile can never leave the envelope of the per-part
     quantiles — the property that makes bucket-wise merging the
     correct way to get fleet percentiles (averaging per-node
     percentiles does violate this) *)
  QCheck.Test.make ~name:"Histogram.merge quantile envelope" ~count:200
    (QCheck.triple
       (QCheck.list_of_size QCheck.Gen.(1 -- 20) obs_gen)
       (QCheck.list_of_size QCheck.Gen.(1 -- 20) obs_gen)
       (QCheck.float_range 0.01 0.99))
    (fun (xs, ys, q) ->
      let qa = Histogram.quantile (hist_of xs) q
      and qb = Histogram.quantile (hist_of ys) q
      and qm = Histogram.quantile (Histogram.merge (hist_of xs) (hist_of ys)) q in
      let lo = Float.min qa qb and hi = Float.max qa qb in
      let eps = 1e-9 *. Float.max 1.0 hi in
      qm >= lo -. eps && qm <= hi +. eps)

(* -- Registry.Snapshot ---------------------------------------------- *)

module Snapshot = Registry.Snapshot

let sample_registry () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~labels:[ ("op", "decide") ] "requests_total" in
  Registry.add c 41;
  let g = Registry.gauge reg "occupancy" in
  Registry.set_gauge g 0.75;
  let h =
    Registry.histogram reg ~lo:1.0 ~growth:2.0 ~buckets:6 "latency_ns"
  in
  List.iter (Histogram.observe h) [ 0.5; 3.0; 9.0; 1e6 ];
  reg

let test_snapshot_codec_roundtrip () =
  let snap = Registry.snapshot (sample_registry ()) in
  let bytes = Snapshot.encode snap in
  let back = Snapshot.decode bytes in
  Alcotest.(check string) "encode . decode fixpoint" bytes
    (Snapshot.encode back);
  Alcotest.(check string) "prometheus text survives the wire"
    (Snapshot.to_prometheus snap)
    (Snapshot.to_prometheus back);
  Alcotest.(check string) "json text survives the wire"
    (Snapshot.to_json snap) (Snapshot.to_json back)

let test_snapshot_adversarial_decode () =
  let bytes = Snapshot.encode (Registry.snapshot (sample_registry ())) in
  let expect_malformed what s =
    match Snapshot.decode s with
    | exception Mitos_util.Codec.Malformed _ -> ()
    | _ -> Alcotest.fail (what ^ " accepted")
  in
  for cut = 1 to String.length bytes - 1 do
    expect_malformed
      (Printf.sprintf "truncation at %d" cut)
      (String.sub bytes 0 cut)
  done;
  expect_malformed "trailing garbage" (bytes ^ "\x00");
  (* value-kind tags are 0/1/2; 9 is undecodable wherever it lands as
     a tag, and elsewhere it corrupts a length or count that the
     histogram validator or the end-of-input check catches — accept
     either a raise or a clean decode (flips inside float payloads
     are legitimate value changes), but never a crash *)
  let flipped = Bytes.of_string bytes in
  Bytes.set flipped (String.length bytes / 2) '\x09';
  (match Snapshot.decode (Bytes.to_string flipped) with
  | _ -> ()
  | exception Mitos_util.Codec.Malformed _ -> ())

let test_snapshot_merge_semantics () =
  let part node =
    Registry.snapshot
      (let reg = Registry.create () in
       let c = Registry.counter reg "requests_total" in
       Registry.add c (if node = "a" then 10 else 32);
       let g = Registry.gauge reg "occupancy" in
       Registry.set_gauge g (if node = "a" then 0.25 else 0.5);
       let h =
         Registry.histogram reg ~lo:1.0 ~growth:2.0 ~buckets:6 "latency_ns"
       in
       Histogram.observe h (if node = "a" then 3.0 else 9.0);
       reg)
  in
  let merged = Snapshot.merge [ ("a", part "a"); ("b", part "b") ] in
  let find name pred =
    List.find_opt
      (fun (r : Snapshot.row) -> r.Snapshot.name = name && pred r)
      merged
  in
  (match find "requests_total" (fun r -> r.Snapshot.labels = []) with
  | Some { Snapshot.value = Snapshot.Counter 42; _ } -> ()
  | _ -> Alcotest.fail "counters did not sum to 42");
  (* gauges never fold: one node-labelled row per part *)
  (match
     find "occupancy" (fun r ->
         r.Snapshot.labels = [ ("node", "a") ])
   with
  | Some { Snapshot.value = Snapshot.Gauge g; _ } ->
    check_float "gauge a kept" 0.25 g
  | _ -> Alcotest.fail "per-node gauge a missing");
  (match
     find "occupancy" (fun r -> r.Snapshot.labels = [ ("node", "b") ])
   with
  | Some { Snapshot.value = Snapshot.Gauge g; _ } ->
    check_float "gauge b kept" 0.5 g
  | _ -> Alcotest.fail "per-node gauge b missing");
  (* same-layout histograms fold bucket-wise *)
  (match find "latency_ns" (fun r -> r.Snapshot.labels = []) with
  | Some { Snapshot.value = Snapshot.Hist h; _ } ->
    let m = Snapshot.to_histogram h in
    Alcotest.(check int) "merged count" 2 (Histogram.count m);
    check_float "merged min" 3.0 (Histogram.min_value m);
    check_float "merged max" 9.0 (Histogram.max_value m)
  | _ -> Alcotest.fail "merged histogram missing");
  (* merge is order-independent after the final sort *)
  Alcotest.(check string) "merge commutes"
    (Snapshot.encode merged)
    (Snapshot.encode (Snapshot.merge [ ("b", part "b"); ("a", part "a") ]))

let test_snapshot_merge_layout_clash () =
  let with_hist buckets v =
    let reg = Registry.create () in
    let h = Registry.histogram reg ~lo:1.0 ~growth:2.0 ~buckets "latency_ns" in
    Histogram.observe h v;
    Registry.snapshot reg
  in
  let merged =
    Snapshot.merge [ ("a", with_hist 6 3.0); ("b", with_hist 8 9.0) ]
  in
  let labelled node =
    List.exists
      (fun (r : Snapshot.row) ->
        r.Snapshot.name = "latency_ns"
        && r.Snapshot.labels = [ ("node", node) ])
      merged
  in
  Alcotest.(check bool) "layout clash keeps node a row" true (labelled "a");
  Alcotest.(check bool) "layout clash keeps node b row" true (labelled "b");
  Alcotest.(check bool) "no unlabelled latency row" false
    (List.exists
       (fun (r : Snapshot.row) ->
         r.Snapshot.name = "latency_ns" && r.Snapshot.labels = [])
       merged)

(* -- Health.parse_rule errors + windowed pending -------------------- *)

let test_health_parse_rule_errors () =
  let expect s msg =
    match Health.parse_rule s with
    | Error e -> Alcotest.(check string) ("error for " ^ s) msg e
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s)
  in
  (* bad comparator: '==' is not in the grammar, so nothing splits *)
  expect "x==1" "no comparison in SLO rule \"x==1\"";
  expect "nocomparison" "no comparison in SLO rule \"nocomparison\"";
  expect "" "no comparison in SLO rule \"\"";
  (* empty signal *)
  expect "<=1" "no signal in SLO rule \"<=1\"";
  expect "name:<=1" "no signal in SLO rule \"name:<=1\"";
  (* non-numeric bound *)
  expect "x<=notafloat" "bad bound in SLO rule \"x<=notafloat\"";
  expect "x<=" "bad bound in SLO rule \"x<=\""

let test_health_window_pending_signals () =
  (* a windowed rule whose signal never arrives stays pending — not
     breached, not counted as a judged value *)
  let r = Health.rule ~name:"lonely" ~signal:"never_emitted" ~cmp:Health.Le
      ~bound:1.0 ()
  in
  let present = Health.rule ~signal:"seen" ~cmp:Health.Le ~bound:10.0 () in
  let h = Health.create ~window:4.0 ~rules:[ r; present ] () in
  Alcotest.(check bool) "all pending is healthy" true (Health.healthy h);
  Health.observe h ~at:1.0 [ ("seen", 3.0) ];
  Health.observe h ~at:2.0 [ ("seen", 5.0) ];
  Alcotest.(check bool) "pending rule does not breach" true
    (Health.healthy h);
  Alcotest.(check int) "pending rule keeps 200" 200 (Health.status_code h);
  Alcotest.(check bool) "render marks it pending" true
    (string_contains (Health.render h) "pending");
  (* the moment the signal shows up breached, the verdict flips *)
  Health.observe h ~at:3.0 [ ("seen", 5.0); ("never_emitted", 2.0) ];
  Alcotest.(check bool) "late signal judged" false (Health.healthy h)

(* -- Fleet ----------------------------------------------------------- *)

let fleet_member ?(healthy = true) node mk_snapshot =
  let fetch () =
    Ok
      {
        Fleet.node;
        healthy;
        health = (if healthy then "status: ok\n" else "status: breach\n");
        snapshot = mk_snapshot ();
      }
  in
  (node, fetch)

let counting_snapshot requests () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~labels:[ ("op", "decide") ]
      "mitos_net_requests_total"
  in
  Registry.add c requests;
  Registry.snapshot reg

let test_fleet_scrape_and_signals () =
  let a = ref 10 and b = ref 30 in
  let fleet =
    Fleet.create
      [
        fleet_member "a" (fun () -> (counting_snapshot !a) ());
        fleet_member "b" (fun () -> (counting_snapshot !b) ());
      ]
  in
  Fleet.scrape fleet ~at:1.0;
  let signal name =
    match List.assoc_opt name (Fleet.signals fleet) with
    | Some v -> v
    | None -> Alcotest.fail ("missing signal " ^ name)
  in
  check_float "2 nodes" 2.0 (signal "fleet_nodes");
  check_float "2 up" 2.0 (signal "fleet_up");
  check_float "none unreachable" 0.0 (signal "fleet_unreachable");
  check_float "requests summed" 40.0 (signal "fleet_requests_total");
  check_float "skew = max/mean" 1.5 (signal "fleet_node_skew");
  Alcotest.(check bool) "healthy" true (Fleet.healthy fleet);
  (* second scrape: rates appear *)
  a := 30;
  b := 40;
  Fleet.scrape fleet ~at:3.0;
  (match Fleet.nodes fleet with
  | [ va; vb ] ->
    check_float "rate a" 10.0 va.Fleet.request_rate;
    check_float "rate b" 5.0 vb.Fleet.request_rate
  | _ -> Alcotest.fail "expected two node views");
  check_float "merged follows" 70.0 (signal "fleet_requests_total")

let test_fleet_unreachable_and_staleness () =
  let b_up = ref true in
  let fleet =
    Fleet.create ~stale_after:5.0
      ~health:(Health.create ~window:0.0 ~rules:Fleet.default_rules ())
      [
        fleet_member "a" (counting_snapshot 10);
        ( "b",
          fun () ->
            if !b_up then (snd (fleet_member "b" (counting_snapshot 20))) ()
            else Error "connection refused" );
      ]
  in
  Fleet.scrape fleet ~at:1.0;
  Alcotest.(check bool) "both up -> 200" true (Fleet.healthy fleet);
  Alcotest.(check int) "200" 200 (Fleet.status_code fleet);
  check_float "merged holds both" 30.0
    (List.assoc "fleet_requests_total" (Fleet.signals fleet));
  (* kill b: unreachable immediately, but its last snapshot still
     merges while fresh *)
  b_up := false;
  Fleet.scrape fleet ~at:2.0;
  Alcotest.(check bool) "one down -> breach" false (Fleet.healthy fleet);
  Alcotest.(check int) "503" 503 (Fleet.status_code fleet);
  Alcotest.(check bool) "healthz names node b" true
    (string_contains (Fleet.render_health fleet) "node b unreachable");
  check_float "one unreachable" 1.0
    (List.assoc "fleet_unreachable" (Fleet.signals fleet));
  check_float "stale merge keeps b's last snapshot" 30.0
    (List.assoc "fleet_requests_total" (Fleet.signals fleet));
  (match Fleet.nodes fleet with
  | [ _; vb ] ->
    Alcotest.(check bool) "b down" false vb.Fleet.up;
    Alcotest.(check bool) "b not yet stale" false vb.Fleet.stale;
    Alcotest.(check bool) "b error kept" true (vb.Fleet.last_error <> None)
  | _ -> Alcotest.fail "expected two node views");
  (* past stale_after: b's snapshot ages out of the merge *)
  Fleet.scrape fleet ~at:10.0;
  check_float "stale node dropped from merge" 10.0
    (List.assoc "fleet_requests_total" (Fleet.signals fleet));
  (match Fleet.nodes fleet with
  | [ _; vb ] -> Alcotest.(check bool) "b stale now" true vb.Fleet.stale
  | _ -> Alcotest.fail "expected two node views");
  (* recovery restores the clean verdict *)
  b_up := true;
  Fleet.scrape fleet ~at:11.0;
  Alcotest.(check bool) "recovered" true (Fleet.healthy fleet)

let test_fleet_node_breach_flips_healthz () =
  let b_healthy = ref true in
  let fleet =
    Fleet.create
      [
        fleet_member "a" (counting_snapshot 5);
        ( "b",
          fun () ->
            (snd (fleet_member ~healthy:!b_healthy "b" (counting_snapshot 5)))
              () );
      ]
  in
  Fleet.scrape fleet ~at:1.0;
  Alcotest.(check int) "all healthy -> 200" 200 (Fleet.status_code fleet);
  b_healthy := false;
  Fleet.scrape fleet ~at:2.0;
  Alcotest.(check int) "one SLO breach -> 503" 503 (Fleet.status_code fleet);
  Alcotest.(check bool) "offender named" true
    (string_contains (Fleet.render_health fleet) "node b breach")

let test_fleet_json_deterministic () =
  let mk () =
    let fleet =
      Fleet.create
        ~health:(Health.create ~window:0.0 ~rules:Fleet.default_rules ())
        [
          fleet_member "a" (counting_snapshot 10);
          fleet_member "b" (counting_snapshot 20);
        ]
    in
    Fleet.scrape fleet ~at:1.0;
    Fleet.scrape fleet ~at:2.0;
    fleet
  in
  let j1 = Fleet.fleet_json (mk ()) and j2 = Fleet.fleet_json (mk ()) in
  Alcotest.(check string) "fleet_json byte-deterministic" j1 j2;
  Alcotest.(check bool) "carries the verdict" true
    (string_contains j1 "\"healthy\":true");
  Alcotest.(check bool) "signals sorted and present" true
    (string_contains j1 "\"fleet_requests_total\":30");
  let fed = Snapshot.to_prometheus (Fleet.federated (mk ())) in
  Alcotest.(check bool) "federated series node-labelled" true
    (string_contains fed "node=\"a\"" && string_contains fed "node=\"b\"");
  Alcotest.(check bool) "meta series present" true
    (string_contains fed "mitos_fleet_scrapes_total 2"
    && string_contains fed "mitos_fleet_node_up{node=\"a\"} 1")

(* -- Tsdb ------------------------------------------------------------- *)

let test_tsdb_retention_and_clamp () =
  let db = Tsdb.create ~capacity:4 () in
  for i = 0 to 9 do
    Tsdb.add db "s" ~at:(float_of_int i) (float_of_int (i * i))
  done;
  (match Tsdb.series db "s" with
  | None -> Alcotest.fail "series missing"
  | Some ts ->
    Alcotest.(check int) "capacity enforced" 4
      (Mitos_util.Timeseries.length ts));
  Alcotest.(check (option (pair (float 0.0) (float 0.0)))) "newest kept"
    (Some (9.0, 81.0)) (Tsdb.latest db "s");
  (* a stale stamp is clamped forward to the newest time seen *)
  Tsdb.add db "s" ~at:2.0 7.0;
  Alcotest.(check (option (pair (float 0.0) (float 0.0)))) "clamped"
    (Some (9.0, 7.0)) (Tsdb.latest db "s");
  check_float "last_at tracks newest" 9.0 (Tsdb.last_at db);
  Tsdb.observe db ~at:10.0 [ ("s", 1.0); ("other", 2.0) ];
  Alcotest.(check (list string)) "first-observation order"
    [ "s"; "other" ] (Tsdb.names db);
  Alcotest.(check int) "observations counted" 1 (Tsdb.observations db)

let test_tsdb_rate_increase_quantile () =
  let db = Tsdb.create () in
  (* counter with a reset at t=3: 0 10 20 5 15 *)
  List.iteri
    (fun i v -> Tsdb.add db "c" ~at:(float_of_int i) v)
    [ 0.0; 10.0; 20.0; 5.0; 15.0 ];
  check_float "reset-aware increase" 35.0
    (Tsdb.increase db "c" ~at:4.0 ~window:10.0);
  check_float "rate = increase / span" (35.0 /. 4.0)
    (Tsdb.rate db "c" ~at:4.0 ~window:10.0);
  check_float "partial window" 10.0
    (Tsdb.increase db "c" ~at:4.0 ~window:1.0);
  check_float "single-sample rate" 0.0
    (Tsdb.rate db "c" ~at:4.0 ~window:0.0);
  (* nearest-rank quantile over the window's values *)
  let db2 = Tsdb.create () in
  List.iteri
    (fun i v -> Tsdb.add db2 "q" ~at:(float_of_int i) v)
    [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  check_float "p50 nearest rank" 3.0
    (Tsdb.window_quantile db2 "q" ~at:4.0 ~window:10.0 0.5);
  check_float "p100" 5.0 (Tsdb.window_quantile db2 "q" ~at:4.0 ~window:10.0 1.0);
  check_float "p0 clamps" 1.0
    (Tsdb.window_quantile db2 "q" ~at:4.0 ~window:10.0 0.0);
  Alcotest.(check bool) "empty window is nan" true
    (Float.is_nan (Tsdb.window_quantile db2 "missing" ~at:4.0 ~window:1.0 0.5));
  check_float "window mean" 3.0 (Tsdb.window_mean db2 "q" ~at:4.0 ~window:10.0);
  Alcotest.(check int) "window count" 3
    (Tsdb.window_count db2 "q" ~at:4.0 ~window:2.0)

let test_tsdb_query_json () =
  let db = Tsdb.create () in
  for i = 0 to 9 do
    Tsdb.add db "s" ~at:(float_of_int i) (float_of_int i)
  done;
  Alcotest.(check int) "raw query from 2" 8
    (Array.length (Tsdb.query db "s" ~from:2.0 ~step:0.0));
  (* step buckets: means stamped at bucket ends, empty buckets skipped *)
  let bucketed = Tsdb.query db "s" ~from:0.0 ~step:4.0 in
  Alcotest.(check int) "3 buckets" 3 (Array.length bucketed);
  (match bucketed with
  | [| (t0, v0); (t1, v1); (t2, v2) |] ->
    check_float "bucket 0 end" 4.0 t0;
    check_float "bucket 0 mean" 1.5 v0;
    check_float "bucket 1 end" 8.0 t1;
    check_float "bucket 1 mean" 5.5 v1;
    check_float "bucket 2 end" 12.0 t2;
    check_float "bucket 2 mean" 8.5 v2
  | _ -> Alcotest.fail "unexpected bucket shape");
  Alcotest.(check string) "canonical json"
    "{\"from\":8,\"samples\":[[8,8],[9,9]],\"signal\":\"s\",\"step\":0}"
    (Tsdb.query_json db "s" ~from:8.0 ~step:0.0);
  Alcotest.(check string) "unknown series queries empty"
    "{\"from\":0,\"samples\":[],\"signal\":\"nope\",\"step\":0}"
    (Tsdb.query_json db "nope" ~from:0.0 ~step:0.0)

let qcheck_tsdb_times_monotone =
  QCheck.Test.make ~name:"tsdb clamp keeps times monotone" ~count:200
    QCheck.(small_list (pair (float_range (-50.0) 50.0) (float_range (-5.0) 5.0)))
    (fun samples ->
      QCheck.assume (samples <> []);
      let db = Tsdb.create ~capacity:16 () in
      (* adversarial stamps: raw, possibly decreasing *)
      List.iter (fun (at, v) -> Tsdb.add db "s" ~at v) samples;
      match Tsdb.series db "s" with
      | None -> false
      | Some ts ->
        let times = Mitos_util.Timeseries.times ts in
        let ok = ref true in
        for i = 1 to Array.length times - 1 do
          if times.(i - 1) > times.(i) then ok := false
        done;
        !ok)

let qcheck_tsdb_counter_rate_non_negative =
  QCheck.Test.make ~name:"counter rate never negative (resets included)"
    ~count:200
    QCheck.(small_list (pair (float_range 0.0 5.0) (float_range 0.0 100.0)))
    (fun samples ->
      QCheck.assume (List.length samples >= 2);
      let db = Tsdb.create () in
      let t = ref 0.0 in
      List.iter
        (fun (dt, v) ->
          t := !t +. dt;
          Tsdb.add db "c" ~at:!t v)
        samples;
      Tsdb.rate db "c" ~at:!t ~window:(!t +. 1.0) >= 0.0
      && Tsdb.increase db "c" ~at:!t ~window:(!t +. 1.0) >= 0.0)

let qcheck_tsdb_newest_survives =
  QCheck.Test.make ~name:"tsdb retention keeps the newest sample" ~count:200
    QCheck.(
      pair (int_range 1 8)
        (small_list (pair (float_range 0.0 10.0) (float_range (-5.0) 5.0))))
    (fun (capacity, samples) ->
      QCheck.assume (samples <> []);
      let db = Tsdb.create ~capacity ~max_age:7.0 () in
      let t = ref 0.0 in
      let final = ref 0.0 in
      List.iter
        (fun (dt, v) ->
          t := !t +. dt;
          Tsdb.add db "s" ~at:!t v;
          final := v)
        samples;
      Tsdb.latest db "s" = Some (!t, !final))

(* -- Alerts ----------------------------------------------------------- *)

(* A rule judging a latency-style signal against objective <= 100,
   with a single tight window pair so small streams can trip it. *)
let mk_alert_rule ?name ?(budget = 0.1) ?(windows = 4.0) ?(burn = 2.0)
    ?(sev = Alerts.Page) ?(for_ = 0.0) ?(keep_firing = 0.0) () =
  Alerts.rule ?name ~budget
    ~windows:
      [ { Alerts.fast = windows; slow = windows *. 2.0; burn;
          pair_severity = sev } ]
    ~for_ ~keep_firing ~signal:"lat" ~cmp:Health.Le ~objective:100.0 ()

let drive alerts samples =
  List.iter (fun (at, v) -> Alerts.observe alerts ~at [ ("lat", v) ]) samples

let test_alerts_parse_roundtrip () =
  let r =
    mk_alert_rule ~name:"lat_burn" ~budget:0.05 ~for_:3.0 ~keep_firing:7.0 ()
  in
  let s = Alerts.rule_to_string r in
  (match Alerts.parse_rule s with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    Alcotest.(check string) "round-trips canonically" s
      (Alerts.rule_to_string r'));
  (match
     Alerts.parse_rule
       "p99:decision_p99_ns<=5e6;budget=0.05;windows=30/120@4@ticket;for=10"
   with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check string) "named" "p99" r.Alerts.alert_name;
    check_float "budget" 0.05 r.Alerts.budget;
    check_float "for" 10.0 r.Alerts.for_;
    (match r.Alerts.windows with
    | [ w ] ->
      check_float "fast" 30.0 w.Alerts.fast;
      Alcotest.(check bool) "ticket pair" true
        (w.Alerts.pair_severity = Alerts.Ticket)
    | _ -> Alcotest.fail "expected one pair"));
  let bad s =
    match Alerts.parse_rule s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s)
  in
  bad "no_comparison";
  bad "sig<=1;bogus=3";
  bad "sig<=1;windows=5/2@1";
  (* slow < fast *)
  bad "sig<=1;windows=abc";
  bad "sig<=1;budget=-1"

let test_alerts_pending_fires_at_exactly_for () =
  let a =
    Alerts.create ~rules:[ mk_alert_rule ~name:"lat" ~for_:2.0 () ] ()
  in
  drive a [ (1.0, 50.0) ];
  Alcotest.(check (option string)) "healthy start" (Some "ok")
    (Option.map
       (function Alerts.Inactive -> "ok" | _ -> "bad")
       (Alerts.phase_of a "lat"));
  (* all-bad samples: burn = (1.0 bad fraction)/0.1 = 10 >= 2 *)
  drive a [ (2.0, 500.0) ];
  (match Alerts.phase_of a "lat" with
  | Some (Alerts.Pending p) -> check_float "pending since" 2.0 p.since
  | _ -> Alcotest.fail "expected pending");
  Alcotest.(check bool) "pending does not fire" false (Alerts.any_firing a);
  drive a [ (3.0, 500.0) ];
  Alcotest.(check bool) "one tick early still pending" false
    (Alerts.any_firing a);
  drive a [ (4.0, 500.0) ];
  (* at - since = 2.0 = for_: fires on exactly the boundary *)
  (match Alerts.phase_of a "lat" with
  | Some (Alerts.Firing f) ->
    check_float "firing since boundary" 4.0 f.since;
    Alcotest.(check bool) "page severity" true (f.severity = Alerts.Page)
  | _ -> Alcotest.fail "expected firing");
  Alcotest.(check int) "severity code page" 2 (Alerts.severity_code a);
  Alcotest.(check string) "render_firing line"
    "firing: lat severity=page\n" (Alerts.render_firing a);
  let transitions =
    List.map (fun i -> Alerts.transition_to_string i.Alerts.transition)
      (Alerts.incidents a)
  in
  Alcotest.(check (list string)) "incident trail"
    [ "pending"; "firing" ] transitions

let test_alerts_cancelled_pending () =
  let a =
    Alerts.create
      ~rules:[ mk_alert_rule ~name:"lat" ~windows:2.0 ~for_:5.0 () ]
      ()
  in
  drive a [ (1.0, 500.0); (2.0, 500.0) ];
  (match Alerts.phase_of a "lat" with
  | Some (Alerts.Pending _) -> ()
  | _ -> Alcotest.fail "expected pending");
  (* recovery before [for_] elapses cancels without ever firing *)
  drive a
    [ (3.0, 10.0); (4.0, 10.0); (5.0, 10.0); (6.0, 10.0); (7.0, 10.0) ];
  (match Alerts.phase_of a "lat" with
  | Some Alerts.Inactive -> ()
  | _ -> Alcotest.fail "expected inactive");
  let transitions =
    List.map (fun i -> Alerts.transition_to_string i.Alerts.transition)
      (Alerts.incidents a)
  in
  Alcotest.(check (list string)) "pending then cancelled"
    [ "pending"; "cancelled" ] transitions;
  Alcotest.(check bool) "never fired" true
    (string_contains (Alerts.to_json a) "\"fired_total\":0")

let test_alerts_keep_firing_suppresses_flaps () =
  let a =
    Alerts.create
      ~rules:[ mk_alert_rule ~name:"lat" ~windows:2.0 ~keep_firing:4.0 () ]
      ()
  in
  (* breach: fires immediately (for_ = 0) *)
  drive a [ (1.0, 500.0); (2.0, 500.0) ];
  Alcotest.(check bool) "firing" true (Alerts.any_firing a);
  (* brief recovery flaps within keep_firing: stays firing *)
  drive a [ (3.0, 10.0); (4.0, 10.0); (5.0, 10.0); (6.0, 500.0) ];
  Alcotest.(check bool) "flap suppressed" true (Alerts.any_firing a);
  let transitions () =
    List.map (fun i -> Alerts.transition_to_string i.Alerts.transition)
      (Alerts.incidents a)
  in
  Alcotest.(check (list string)) "no resolve during flap"
    [ "pending"; "firing" ] (transitions ());
  (* a quiet spell of keep_firing resolves *)
  drive a
    [ (7.0, 10.0); (8.0, 10.0); (9.0, 10.0); (10.0, 10.0); (11.0, 10.0);
      (12.0, 10.0) ];
  Alcotest.(check bool) "resolved after quiet spell" false
    (Alerts.any_firing a);
  Alcotest.(check (list string)) "resolve recorded"
    [ "pending"; "firing"; "resolved" ] (transitions ());
  (* a fresh breach re-fires *)
  drive a [ (13.0, 500.0); (14.0, 500.0) ];
  Alcotest.(check bool) "refires" true (Alerts.any_firing a);
  Alcotest.(check bool) "fired twice" true
    (string_contains (Alerts.to_json a) "\"fired_total\":2")

(* The acceptance scenario: one signal stream through two burn-rate
   rules (a fast page pair and a slow ticket pair), full lifecycle,
   byte-identical /alerts JSON and incident JSONL at any parallelism
   degree — evaluation is a pure function of the stream, so pooled
   work running alongside must not perturb a single byte. *)
let alerts_lifecycle_run jobs =
  Mitos_parallel.Pool.with_pool ~jobs (fun pool ->
      let fast =
        mk_alert_rule ~name:"lat_page" ~windows:2.0 ~burn:2.0
          ~sev:Alerts.Page ~for_:1.0 ~keep_firing:2.0 ()
      in
      let slow =
        mk_alert_rule ~name:"lat_ticket" ~windows:6.0 ~burn:1.0
          ~sev:Alerts.Ticket ~for_:3.0 ~keep_firing:0.0 ()
      in
      let a = Alerts.create ~capacity:64 ~rules:[ fast; slow ] () in
      let stream =
        List.init 40 (fun i ->
            let at = float_of_int (i + 1) in
            (* healthy, breach long enough to fire both, recover *)
            let v = if i >= 8 && i < 24 then 500.0 else 10.0 in
            (at, v))
      in
      List.iter
        (fun (at, v) ->
          (* unrelated pooled work interleaved with evaluation *)
          ignore
            (Mitos_parallel.Pool.map pool ~f:(fun x -> x * x) [ 1; 2; 3 ]);
          Alerts.observe a ~at [ ("lat", v) ])
        stream;
      (Alerts.to_json a, Alerts.incidents_to_jsonl a))

let test_alerts_lifecycle_deterministic_across_jobs () =
  let j1, l1 = alerts_lifecycle_run 1 in
  let j2, l2 = alerts_lifecycle_run 2 in
  let j4, l4 = alerts_lifecycle_run 4 in
  Alcotest.(check string) "/alerts bytes jobs 1=2" j1 j2;
  Alcotest.(check string) "/alerts bytes jobs 1=4" j1 j4;
  Alcotest.(check string) "incident jsonl jobs 1=2" l1 l2;
  Alcotest.(check string) "incident jsonl jobs 1=4" l1 l4;
  (* the run actually exercised the whole lifecycle *)
  Alcotest.(check bool) "page fired" true
    (string_contains l1 "\"alert\":\"lat_page\",")
    ;
  Alcotest.(check bool) "ticket fired" true
    (string_contains l1 "\"alert\":\"lat_ticket\",");
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (string_contains l1 needle))
    [ "\"transition\":\"pending\""; "\"transition\":\"firing\"";
      "\"transition\":\"resolved\"" ];
  Alcotest.(check bool) "ends resolved" true
    (string_contains j1 "\"worst\":\"ok\"")

let alert_route a path pairs =
  match
    List.find_opt (fun r -> r.Server.path = path) (Alerts.routes a)
  with
  | Some r -> r.Server.payload pairs
  | None -> Alcotest.fail ("missing alert route " ^ path)

let test_alerts_tracer_and_routes () =
  let tracer = Tracer.create ~clock:(Obs_clock.logical ()) () in
  let a =
    Alerts.create ~rules:[ mk_alert_rule ~name:"lat" ~windows:2.0 () ] ()
  in
  Alerts.link_tracer a tracer;
  drive a [ (1.0, 500.0); (2.0, 500.0) ];
  let is_instant name = function
    | Tracer.Instant i -> i.name = name
    | _ -> false
  in
  Alcotest.(check bool) "firing instant traced" true
    (Array.exists (is_instant "alert_firing") (Tracer.events tracer));
  Alcotest.(check string) "/alerts is to_json" (Alerts.to_json a)
    (alert_route a "/alerts" []).Server.body;
  Alcotest.(check string) "/alertz is the incident ring"
    (Alerts.incidents_to_jsonl a)
    (alert_route a "/alertz" []).Server.body

let test_alerts_query_route () =
  let a = Alerts.create ~rules:[ mk_alert_rule ~name:"lat" () ] () in
  drive a [ (1.0, 10.0); (2.0, 20.0) ];
  let q pairs =
    let p = alert_route a "/query" pairs in
    (p.Server.status, p.Server.body)
  in
  let status, body = q [ ("signal", "lat") ] in
  Alcotest.(check int) "known signal 200" 200 status;
  Alcotest.(check string) "raw samples"
    "{\"from\":0,\"samples\":[[1,10],[2,20]],\"signal\":\"lat\",\"step\":0}"
    body;
  let status, body = q [] in
  Alcotest.(check int) "missing signal 400" 400 status;
  Alcotest.(check bool) "names known signals" true
    (string_contains body "\"lat\"");
  let status, _ = q [ ("signal", "nope") ] in
  Alcotest.(check int) "unknown signal 404" 404 status

(* -- Fleet alert attribution ----------------------------------------- *)

let test_fleet_alert_attribution () =
  (* node b's /healthz body carries a firing line (what a node running
     --burn-slo renders); the fleet must attribute it without any wire
     change *)
  let firing_body =
    "status: breach\nfiring: lat_burn severity=page\nrule lat<=100  value \
     500  BREACH\n"
  in
  let b_fetch () =
    Ok
      {
        Fleet.node = "b";
        healthy = false;
        health = firing_body;
        snapshot = (counting_snapshot 5) ();
      }
  in
  let fleet =
    Fleet.create
      ~alerts:
        (Alerts.create
           ~rules:
             [
               Alerts.rule ~name:"fleet_pages"
                 ~budget:0.5
                 ~windows:
                   [ { Alerts.fast = 2.0; slow = 4.0; burn = 1.0;
                       pair_severity = Alerts.Page } ]
                 ~signal:"fleet_nodes_firing" ~cmp:Health.Le ~objective:0.0
                 ();
             ]
           ())
      [ fleet_member "a" (counting_snapshot 5); ("b", b_fetch) ]
  in
  Fleet.scrape fleet ~at:1.0;
  Fleet.scrape fleet ~at:2.0;
  (* parse_firing round-trips the body lines *)
  Alcotest.(check bool) "parse_firing" true
    (Fleet.parse_firing firing_body = [ ("lat_burn", Alerts.Page) ]);
  (match Fleet.nodes fleet with
  | [ va; vb ] ->
    Alcotest.(check bool) "a clean" true (va.Fleet.node_firing = []);
    Alcotest.(check bool) "b attributed" true
      (vb.Fleet.node_firing = [ ("lat_burn", Alerts.Page) ])
  | _ -> Alcotest.fail "expected two node views");
  Alcotest.(check bool) "status line attributes the alert" true
    (string_contains (Fleet.render_health fleet)
       "status: breach (node b alert lat_burn)");
  Alcotest.(check bool) "healthz carries per-node firing line" true
    (string_contains (Fleet.render_health fleet)
       "firing: lat_burn severity=page node=b");
  (* federated exposition labels the firing alert with its node *)
  let fed = Snapshot.to_prometheus (Fleet.federated fleet) in
  Alcotest.(check bool) "firing gauge node-labelled" true
    (string_contains fed
       "mitos_fleet_alert_firing{alert=\"lat_burn\",node=\"b\"} 2");
  (* the fleet-level burn-rate rule over fleet_nodes_firing fires too *)
  Alcotest.(check bool) "fleet-level alert fires" true
    (match Fleet.alerts fleet with
    | Some a -> Alerts.any_firing a
    | None -> false);
  Alcotest.(check bool) "fleet verdict breached" false (Fleet.healthy fleet);
  Alcotest.(check bool) "fleet_json carries alerts" true
    (string_contains (Fleet.fleet_json fleet) "\"alerts\":{")

let () =
  Alcotest.run "mitos_obs"
    [
      ( "clock",
        [
          Alcotest.test_case "logical" `Quick test_logical_clock;
          Alcotest.test_case "of_fun" `Quick test_of_fun_clock;
          Alcotest.test_case "real monotone" `Quick test_real_clock_monotone;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick
            test_histogram_bucket_boundaries;
          Alcotest.test_case "observe counts" `Quick
            test_histogram_observe_counts;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "quantile clamps" `Quick
            test_histogram_quantile_clamps;
          Alcotest.test_case "quantile edges" `Quick
            test_histogram_quantile_edges;
          Alcotest.test_case "reset" `Quick test_histogram_reset;
          Alcotest.test_case "validation" `Quick test_histogram_validation;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          QCheck_alcotest.to_alcotest qcheck_hist_merge_commutative;
          QCheck_alcotest.to_alcotest qcheck_hist_merge_associative;
          QCheck_alcotest.to_alcotest qcheck_hist_merge_empty_identity;
          QCheck_alcotest.to_alcotest qcheck_hist_merge_quantile_envelope;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "codec round-trip" `Quick
            test_snapshot_codec_roundtrip;
          Alcotest.test_case "adversarial decode" `Quick
            test_snapshot_adversarial_decode;
          Alcotest.test_case "merge semantics" `Quick
            test_snapshot_merge_semantics;
          Alcotest.test_case "merge layout clash" `Quick
            test_snapshot_merge_layout_clash;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "scrape + signals" `Quick
            test_fleet_scrape_and_signals;
          Alcotest.test_case "unreachable + staleness" `Quick
            test_fleet_unreachable_and_staleness;
          Alcotest.test_case "node breach flips healthz" `Quick
            test_fleet_node_breach_flips_healthz;
          Alcotest.test_case "fleet_json deterministic" `Quick
            test_fleet_json_deterministic;
        ] );
      ( "registry",
        [
          Alcotest.test_case "get-or-create" `Quick test_registry_get_or_create;
          Alcotest.test_case "kind mismatch" `Quick test_registry_kind_mismatch;
          Alcotest.test_case "prometheus rendering" `Quick
            test_prometheus_rendering;
          Alcotest.test_case "labels sorted" `Quick test_prometheus_labels_sorted;
          Alcotest.test_case "fmt_value" `Quick test_fmt_value;
          Alcotest.test_case "json_string" `Quick test_json_string;
          Alcotest.test_case "json" `Quick test_registry_json;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "unmatched end" `Quick test_unmatched_end;
          Alcotest.test_case "finish closes spans" `Quick
            test_finish_closes_open_spans;
          Alcotest.test_case "with_span on raise" `Quick test_with_span_on_raise;
          Alcotest.test_case "capacity well-nested" `Quick
            test_capacity_keeps_stream_well_nested;
          Alcotest.test_case "retained begin keeps end" `Quick
            test_capacity_keeps_end_of_retained_begin;
        ] );
      ( "chrome-trace",
        [
          Alcotest.test_case "byte-exact json" `Quick
            test_chrome_trace_rendering;
          Alcotest.test_case "escaping" `Quick test_chrome_trace_escaping;
          Alcotest.test_case "jsonl" `Quick test_chrome_trace_jsonl;
        ] );
      ( "audit",
        [
          Alcotest.test_case "null no-op" `Quick test_audit_null_noop;
          Alcotest.test_case "ring and sink" `Quick test_audit_ring_and_sink;
          Alcotest.test_case "byte-exact jsonl" `Quick test_audit_json;
          Alcotest.test_case "tracer cross-link" `Quick
            test_audit_tracer_crosslink;
        ] );
      ( "obs",
        [
          Alcotest.test_case "disabled no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "enabled records" `Quick test_enabled_records;
          Alcotest.test_case "determinism" `Quick test_obs_determinism;
        ] );
      ( "integration",
        [
          Alcotest.test_case "engine instrumentation" `Quick
            test_engine_instrumentation;
          Alcotest.test_case "double instrument rejected" `Quick
            test_engine_double_instrument_rejected;
        ] );
      ( "health",
        [
          Alcotest.test_case "parse_rule" `Quick test_health_parse_rule;
          Alcotest.test_case "parse_rule errors" `Quick
            test_health_parse_rule_errors;
          Alcotest.test_case "pending/breach edges" `Quick
            test_health_pending_then_breach;
          Alcotest.test_case "window judgment" `Quick test_health_window;
          Alcotest.test_case "windowed pending signals" `Quick
            test_health_window_pending_signals;
          Alcotest.test_case "tracer instant" `Quick
            test_health_tracer_instant;
        ] );
      ( "server",
        [
          Alcotest.test_case "serve/fetch/stop" `Quick
            test_server_serve_fetch_stop;
          Alcotest.test_case "non-GET rejected" `Quick
            test_server_rejects_non_get;
          Alcotest.test_case "oneshot deterministic" `Quick
            test_server_oneshot_deterministic;
          Alcotest.test_case "oneshot propagates" `Quick
            test_server_oneshot_propagates;
          Alcotest.test_case "parse_url" `Quick test_parse_url;
          Alcotest.test_case "route_q query pairs" `Quick test_server_route_q;
          QCheck_alcotest.to_alcotest qcheck_escape_label_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_escape_label_no_raw_specials;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "deterministic ids" `Quick
            test_propagation_deterministic;
          Alcotest.test_case "validity + child" `Quick
            test_propagation_validity_and_child;
        ] );
      ( "contended",
        [
          Alcotest.test_case "counts" `Quick test_contended_counts;
          Alcotest.test_case "contention counted" `Quick
            test_contended_contention_counted;
          Alcotest.test_case "aggregate + wait" `Quick
            test_contended_aggregate_and_wait;
        ] );
      ( "profile",
        [
          Alcotest.test_case "fold self times" `Quick
            test_profile_fold_self_times;
          Alcotest.test_case "sanitize + top" `Quick
            test_profile_sanitizes_and_tops;
          Alcotest.test_case "tracer complete" `Quick
            test_tracer_complete_retrospective;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "sample gauges" `Quick test_runtime_sample_gauges;
        ] );
      ( "tsdb",
        [
          Alcotest.test_case "retention + clamp" `Quick
            test_tsdb_retention_and_clamp;
          Alcotest.test_case "rate/increase/quantile" `Quick
            test_tsdb_rate_increase_quantile;
          Alcotest.test_case "query + json" `Quick test_tsdb_query_json;
          QCheck_alcotest.to_alcotest qcheck_tsdb_times_monotone;
          QCheck_alcotest.to_alcotest qcheck_tsdb_counter_rate_non_negative;
          QCheck_alcotest.to_alcotest qcheck_tsdb_newest_survives;
        ] );
      ( "alerts",
        [
          Alcotest.test_case "parse round-trip" `Quick
            test_alerts_parse_roundtrip;
          Alcotest.test_case "pending fires at exactly for" `Quick
            test_alerts_pending_fires_at_exactly_for;
          Alcotest.test_case "cancelled pending" `Quick
            test_alerts_cancelled_pending;
          Alcotest.test_case "keep_firing suppresses flaps" `Quick
            test_alerts_keep_firing_suppresses_flaps;
          Alcotest.test_case "lifecycle deterministic across jobs" `Quick
            test_alerts_lifecycle_deterministic_across_jobs;
          Alcotest.test_case "tracer + routes" `Quick
            test_alerts_tracer_and_routes;
          Alcotest.test_case "query route" `Quick test_alerts_query_route;
          Alcotest.test_case "fleet attribution" `Quick
            test_fleet_alert_attribution;
        ] );
    ]
