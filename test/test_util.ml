open Mitos_util

let check_float = Alcotest.(check (float 1e-9))
let check_floatish msg = Alcotest.(check (float 1e-6)) msg

let string_contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* -- Rng ------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "0 <= x < 10" true (x >= 0 && x < 10)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_int_in () =
  let r = Rng.create 9 in
  for _ = 1 to 500 do
    let x = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (x >= -5 && x <= 5)
  done

let test_rng_float_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.float r 2.5 in
    Alcotest.(check bool) "0 <= x < 2.5" true (x >= 0.0 && x < 2.5)
  done

let test_rng_bernoulli_extremes () =
  let r = Rng.create 5 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always true" true (Rng.bernoulli r 1.0);
    Alcotest.(check bool) "p=0 always false" false (Rng.bernoulli r 0.0)
  done

let test_rng_geometric () =
  let r = Rng.create 5 in
  Alcotest.(check int) "p=1 -> 0" 0 (Rng.geometric r 1.0);
  for _ = 1 to 100 do
    Alcotest.(check bool) "non-negative" true (Rng.geometric r 0.3 >= 0)
  done

let test_rng_split_independent () =
  let a = Rng.create 42 in
  let b = Rng.split a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  Alcotest.(check bool) "split streams diverge" true (xa <> xb)

let test_rng_pick () =
  let r = Rng.create 11 in
  let arr = [| 1; 2; 3 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "picked member" true (Array.mem (Rng.pick r arr) arr)
  done;
  Alcotest.(check int) "pick_list singleton" 9 (Rng.pick_list r [ 9 ])

let test_rng_bytes () =
  let r = Rng.create 13 in
  Alcotest.(check int) "length" 32 (Bytes.length (Rng.bytes r 32))

let test_rng_weighted () =
  let r = Rng.create 17 in
  for _ = 1 to 100 do
    Alcotest.(check string) "all weight on b" "b"
      (Rng.weighted r [ (0.0, "a"); (5.0, "b") ])
  done;
  Alcotest.check_raises "no positive weight"
    (Invalid_argument "Rng.weighted: no positive weight") (fun () ->
      ignore (Rng.weighted r [ (0.0, "a") ]))

let qcheck_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:100
    QCheck.(pair small_int (small_list small_int))
    (fun (seed, l) ->
      let r = Rng.create seed in
      let arr = Array.of_list l in
      Rng.shuffle r arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

(* -- Stats ----------------------------------------------------------- *)

let test_stats_mean_variance () =
  check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  check_float "variance" (2.0 /. 3.0) (Stats.variance [| 1.0; 2.0; 3.0 |]);
  check_float "mean empty" 0.0 (Stats.mean [||]);
  check_float "variance single" 0.0 (Stats.variance [| 5.0 |])

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_float "p0" 10.0 (Stats.percentile xs 0.0);
  check_float "p100" 40.0 (Stats.percentile xs 100.0);
  check_float "median interpolated" 25.0 (Stats.median xs);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array")
    (fun () -> ignore (Stats.percentile [||] 50.0))

let test_stats_mse_pairwise () =
  check_float "equal values" 0.0 (Stats.mse_pairwise [| 4.0; 4.0; 4.0 |]);
  check_float "two values" 4.0 (Stats.mse_pairwise [| 1.0; 3.0 |]);
  check_float "short" 0.0 (Stats.mse_pairwise [| 1.0 |])

let test_stats_jain () =
  check_float "balanced" 1.0 (Stats.jain_index [| 2.0; 2.0; 2.0 |]);
  check_float "single flow dominates" 0.25
    (Stats.jain_index [| 1.0; 0.0; 0.0; 0.0 |]);
  check_float "empty convention" 1.0 (Stats.jain_index [||])

let test_stats_entropy () =
  check_floatish "uniform = log n" (log 4.0)
    (Stats.entropy [| 1.0; 1.0; 1.0; 1.0 |]);
  check_float "degenerate" 0.0 (Stats.entropy [| 5.0; 0.0 |]);
  check_float "normalized uniform" 1.0
    (Stats.entropy_normalized [| 3.0; 3.0; 3.0 |])

let test_stats_gini () =
  check_float "equal" 0.0 (Stats.gini [| 1.0; 1.0; 1.0 |]);
  Alcotest.(check bool) "concentrated > 0.5" true
    (Stats.gini [| 0.0; 0.0; 0.0; 10.0 |] > 0.5)

let test_stats_online_matches_batch () =
  let xs = [| 1.5; -2.0; 7.25; 0.0; 3.5 |] in
  let o = Stats.Online.create () in
  Array.iter (Stats.Online.add o) xs;
  check_floatish "mean" (Stats.mean xs) (Stats.Online.mean o);
  check_floatish "variance" (Stats.variance xs) (Stats.Online.variance o);
  check_float "min" (-2.0) (Stats.Online.min o);
  check_float "max" 7.25 (Stats.Online.max o);
  Alcotest.(check int) "count" 5 (Stats.Online.count o)

let test_stats_online_merge () =
  let xs = [| 1.0; 2.0; 3.0 |] and ys = [| 10.0; 20.0 |] in
  let a = Stats.Online.create () and b = Stats.Online.create () in
  Array.iter (Stats.Online.add a) xs;
  Array.iter (Stats.Online.add b) ys;
  let m = Stats.Online.merge a b in
  let all = Array.append xs ys in
  check_floatish "merged mean" (Stats.mean all) (Stats.Online.mean m);
  check_floatish "merged variance" (Stats.variance all)
    (Stats.Online.variance m)

let qcheck_jain_bounds =
  QCheck.Test.make ~name:"jain index in (0,1]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (float_bound_exclusive 100.0))
    (fun l ->
      let j = Stats.jain_index (Array.of_list l) in
      j > 0.0 && j <= 1.0 +. 1e-9)

let qcheck_entropy_normalized_bounds =
  QCheck.Test.make ~name:"normalized entropy in [0,1]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (float_bound_exclusive 100.0))
    (fun l ->
      let h = Stats.entropy_normalized (Array.of_list l) in
      h >= -1e-9 && h <= 1.0 +. 1e-9)

(* -- Codec ----------------------------------------------------------- *)

let roundtrip encode decode v =
  let enc = Codec.Enc.create () in
  encode enc v;
  let dec = Codec.Dec.of_string (Codec.Enc.contents enc) in
  let v' = decode dec in
  Codec.Dec.expect_end dec;
  v'

let test_codec_uint () =
  List.iter
    (fun n -> Alcotest.(check int) "uint roundtrip" n
        (roundtrip Codec.Enc.uint Codec.Dec.uint n))
    [ 0; 1; 127; 128; 300; 65535; 1 lsl 40 ];
  Alcotest.check_raises "negative" (Invalid_argument "Codec.Enc.uint: negative")
    (fun () -> Codec.Enc.uint (Codec.Enc.create ()) (-1))

let test_codec_int_zigzag () =
  List.iter
    (fun n -> Alcotest.(check int) "int roundtrip" n
        (roundtrip Codec.Enc.int Codec.Dec.int n))
    [ 0; -1; 1; -64; 64; -100000; 100000 ];
  (* zigzag keeps small negatives short *)
  let enc = Codec.Enc.create () in
  Codec.Enc.int enc (-1);
  Alcotest.(check int) "-1 is one byte" 1 (Codec.Enc.length enc)

let test_codec_float_string_bool () =
  check_float "float" 3.14159 (roundtrip Codec.Enc.float Codec.Dec.float 3.14159);
  Alcotest.(check bool) "nan" true
    (Float.is_nan (roundtrip Codec.Enc.float Codec.Dec.float Float.nan));
  Alcotest.(check string) "string" "hello\000world"
    (roundtrip Codec.Enc.string Codec.Dec.string "hello\000world");
  Alcotest.(check bool) "bool" true (roundtrip Codec.Enc.bool Codec.Dec.bool true)

let test_codec_containers () =
  let enc = Codec.Enc.create () in
  Codec.Enc.list enc (Codec.Enc.uint enc) [ 1; 2; 3 ];
  Codec.Enc.option enc (Codec.Enc.uint enc) (Some 9);
  Codec.Enc.option enc (Codec.Enc.uint enc) None;
  Codec.Enc.array enc (Codec.Enc.uint enc) [| 4; 5 |];
  let dec = Codec.Dec.of_string (Codec.Enc.contents enc) in
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Codec.Dec.list dec Codec.Dec.uint);
  Alcotest.(check (option int)) "some" (Some 9) (Codec.Dec.option dec Codec.Dec.uint);
  Alcotest.(check (option int)) "none" None (Codec.Dec.option dec Codec.Dec.uint);
  Alcotest.(check (array int)) "array" [| 4; 5 |] (Codec.Dec.array dec Codec.Dec.uint);
  Codec.Dec.expect_end dec

let test_codec_malformed () =
  let truncated = Codec.Dec.of_string "\x80" in
  Alcotest.(check bool) "truncated varint raises" true
    (try ignore (Codec.Dec.uint truncated); false with Codec.Malformed _ -> true);
  let enc = Codec.Enc.create () in
  Codec.Enc.uint enc 1;
  Codec.Enc.uint enc 2;
  let dec = Codec.Dec.of_string (Codec.Enc.contents enc) in
  ignore (Codec.Dec.uint dec);
  Alcotest.(check bool) "trailing bytes raise" true
    (try Codec.Dec.expect_end dec; false with Codec.Malformed _ -> true)

let qcheck_codec_int_roundtrip =
  QCheck.Test.make ~name:"codec int roundtrip" ~count:500 QCheck.int (fun n ->
      (* zigzag uses one bit; stay within representable range *)
      let n = n asr 1 in
      roundtrip Codec.Enc.int Codec.Dec.int n = n)

let qcheck_codec_string_roundtrip =
  QCheck.Test.make ~name:"codec string roundtrip" ~count:200
    QCheck.printable_string (fun s ->
      roundtrip Codec.Enc.string Codec.Dec.string s = s)

(* -- Table ----------------------------------------------------------- *)

let test_table_render () =
  let t = Table.create ~header:[ "name"; "value" ] () in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "longer-name" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true
    (string_contains s "name");
  Alcotest.(check bool) "contains cell" true
    (string_contains s "longer-name")

and test_table_too_many_cells () =
  let t = Table.create ~header:[ "a" ] () in
  Alcotest.check_raises "too many" (Invalid_argument "Table.add_row: too many cells")
    (fun () -> Table.add_row t [ "1"; "2" ])

let test_table_markdown () =
  let t = Table.create ~header:[ "a"; "b" ] () in
  Table.add_row t [ "1"; "2" ];
  let md = Table.render_markdown t in
  Alcotest.(check bool) "has separator" true
    (string_contains md ":--");
  Alcotest.(check int) "three lines" 3
    (List.length (String.split_on_char '\n' (String.trim md)))

let test_table_alignment_and_separator () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Center ]
      ~header:[ "l"; "rrr"; "ccc" ] ()
  in
  Table.add_row t [ "a"; "1"; "x" ];
  Table.add_separator t;
  Table.add_float_row t "f" [ 2.5 ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' (String.trim rendered) in
  (* box rules: top, header, post-header, separator, bottom *)
  let rules =
    List.length (List.filter (fun l -> String.length l > 0 && l.[0] = '+') lines)
  in
  Alcotest.(check int) "four rules with separator" 4 rules;
  Alcotest.(check bool) "right-aligned cell padded left" true
    (string_contains rendered "|   1 |");
  Alcotest.(check bool) "centered cell" true (string_contains rendered "|  x  |");
  Alcotest.(check bool) "float row formatted" true (string_contains rendered "2.5")

let test_rng_copy_independent () =
  let a = Rng.create 5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  ignore (Rng.bits64 a);
  (* now they diverge in position *)
  Alcotest.(check bool) "independent evolution" true
    (Rng.bits64 a <> Rng.bits64 b || true)

let test_rng_exponential () =
  let r = Rng.create 9 in
  for _ = 1 to 200 do
    Alcotest.(check bool) "exponential non-negative" true
      (Rng.exponential r 2.0 >= 0.0)
  done;
  Alcotest.(check bool) "bad rate" true
    (try ignore (Rng.exponential r 0.0); false with Invalid_argument _ -> true)

let test_timeseries_iter () =
  let ts = Timeseries.create () in
  Timeseries.add ts 1.0 10.0;
  Timeseries.add ts 2.0 20.0;
  let acc = ref [] in
  Timeseries.iter ts (fun t v -> acc := (t, v) :: !acc);
  Alcotest.(check int) "visited all" 2 (List.length !acc)

let test_table_formats () =
  Alcotest.(check string) "times" "1.65x" (Table.fmt_times 1.65);
  Alcotest.(check string) "pct" "40.0%" (Table.fmt_pct 0.4);
  Alcotest.(check string) "int float" "12" (Table.fmt_float 12.0)

(* -- Timeseries ------------------------------------------------------ *)

let test_timeseries_basics () =
  let ts = Timeseries.create ~name:"s" () in
  Alcotest.(check int) "empty" 0 (Timeseries.length ts);
  for i = 1 to 100 do
    Timeseries.add ts (float_of_int i) (float_of_int (i * i))
  done;
  Alcotest.(check int) "length" 100 (Timeseries.length ts);
  Alcotest.(check (option (pair (float 0.0) (float 0.0)))) "last"
    (Some (100.0, 10000.0)) (Timeseries.last ts);
  Alcotest.(check string) "name" "s" (Timeseries.name ts)

let test_timeseries_downsample () =
  let ts = Timeseries.create () in
  for i = 0 to 99 do
    Timeseries.add ts (float_of_int i) 1.0
  done;
  Alcotest.(check int) "10 buckets" 10 (Array.length (Timeseries.downsample ts 10));
  Alcotest.(check int) "more buckets than samples" 100
    (Array.length (Timeseries.downsample ts 500));
  Array.iter
    (fun (_, v) -> check_float "bucket mean of ones" 1.0 v)
    (Timeseries.downsample ts 7)

let test_timeseries_window_mean () =
  let ts = Timeseries.create () in
  Timeseries.add ts 0.0 10.0;
  Timeseries.add ts 5.0 20.0;
  Timeseries.add ts 10.0 30.0;
  check_float "from 5" 25.0 (Timeseries.window_mean ts ~from_time:5.0);
  check_float "empty window" 0.0 (Timeseries.window_mean ts ~from_time:99.0)

let test_timeseries_window_fold () =
  (* the health-watchdog pattern: a sliding window folded over the
     series as samples stream in — the trailing mean must track only
     the samples inside the window *)
  let ts = Timeseries.create () in
  let window = 10.0 in
  let expected t =
    (* mean of f(u) = u over [t - window, t] restricted to the sample
       grid 0, 2, 4, ... *)
    let lo = t -. window in
    let samples = ref [] in
    let u = ref 0.0 in
    while !u <= t do
      if !u >= lo then samples := !u :: !samples;
      u := !u +. 2.0
    done;
    List.fold_left ( +. ) 0.0 !samples /. float_of_int (List.length !samples)
  in
  let t = ref 0.0 in
  while !t <= 40.0 do
    Timeseries.add ts !t !t;
    check_float "trailing mean" (expected !t)
      (Timeseries.window_mean ts ~from_time:(!t -. window));
    t := !t +. 2.0
  done

let test_timeseries_empty_singleton () =
  let ts = Timeseries.create () in
  Alcotest.(check (option (pair (float 0.0) (float 0.0)))) "empty last"
    None (Timeseries.last ts);
  check_float "empty window mean" 0.0 (Timeseries.window_mean ts ~from_time:0.0);
  Alcotest.(check int) "empty downsample" 0
    (Array.length (Timeseries.downsample ts 4));
  Timeseries.add ts 3.0 7.0;
  Alcotest.(check int) "singleton length" 1 (Timeseries.length ts);
  check_float "singleton window covers" 7.0
    (Timeseries.window_mean ts ~from_time:0.0);
  check_float "singleton window boundary" 7.0
    (Timeseries.window_mean ts ~from_time:3.0);
  check_float "singleton window past" 0.0
    (Timeseries.window_mean ts ~from_time:3.5)

let qcheck_timeseries_window_mean_bounds =
  QCheck.Test.make ~name:"window mean within sample bounds (monotonic time)"
    ~count:200
    QCheck.(small_list (pair (float_bound_exclusive 100.0) (float_range (-5.0) 5.0)))
    (fun samples ->
      QCheck.assume (samples <> []);
      let ts = Timeseries.create () in
      (* enforce monotonic time by accumulating the (non-negative)
         deltas, matching how every producer in the tree calls add *)
      let t = ref 0.0 in
      List.iter
        (fun (dt, v) ->
          t := !t +. Float.abs dt;
          Timeseries.add ts !t v)
        samples;
      let values = List.map snd samples in
      let lo = List.fold_left Float.min infinity values in
      let hi = List.fold_left Float.max neg_infinity values in
      let m = Timeseries.window_mean ts ~from_time:0.0 in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let test_timeseries_capacity_retention () =
  let ts = Timeseries.create ~capacity:8 () in
  for i = 0 to 99 do
    Timeseries.add ts (float_of_int i) (float_of_int (i * 2))
  done;
  Alcotest.(check int) "length capped" 8 (Timeseries.length ts);
  Alcotest.(check int) "dropped counted" 92 (Timeseries.dropped ts);
  (* the survivors are exactly the newest 8, in order *)
  Alcotest.(check (option (pair (float 0.0) (float 0.0)))) "newest kept"
    (Some (99.0, 198.0)) (Timeseries.last ts);
  let times = Timeseries.times ts in
  Array.iteri
    (fun i t -> check_float "window of newest" (float_of_int (92 + i)) t)
    times

let test_timeseries_age_retention () =
  let ts = Timeseries.create ~max_age:10.0 () in
  for i = 0 to 99 do
    Timeseries.add ts (float_of_int i) 1.0
  done;
  (* retained: times within [99 - 10, 99] *)
  Alcotest.(check int) "aged out" 11 (Timeseries.length ts);
  check_float "oldest survivor" 89.0 (fst (Timeseries.get ts 0));
  Alcotest.(check int) "age drops counted" 89 (Timeseries.dropped ts);
  (* a huge time jump keeps the newest sample even though everything
     else (including itself, naively) is out of the age window *)
  Timeseries.add ts 1e9 7.0;
  Alcotest.(check int) "jump leaves newest" 1 (Timeseries.length ts);
  Alcotest.(check (option (pair (float 0.0) (float 0.0)))) "newest is jump"
    (Some (1e9, 7.0)) (Timeseries.last ts)

let test_timeseries_first_at_or_after () =
  let ts = Timeseries.create ~capacity:16 () in
  for i = 0 to 9 do
    Timeseries.add ts (float_of_int (i * 10)) 0.0
  done;
  Alcotest.(check int) "before all" 0 (Timeseries.first_at_or_after ts (-5.0));
  Alcotest.(check int) "exact hit" 3 (Timeseries.first_at_or_after ts 30.0);
  Alcotest.(check int) "between" 4 (Timeseries.first_at_or_after ts 31.0);
  Alcotest.(check int) "past the end" 10
    (Timeseries.first_at_or_after ts 1000.0);
  (* still correct once the ring has wrapped *)
  for i = 10 to 24 do
    Timeseries.add ts (float_of_int (i * 10)) 0.0
  done;
  Alcotest.(check int) "wrapped length" 16 (Timeseries.length ts);
  check_float "wrapped start" 90.0 (fst (Timeseries.get ts 0));
  Alcotest.(check int) "wrapped search" 1
    (Timeseries.first_at_or_after ts 95.0)

let test_timeseries_bad_retention_args () =
  let bad f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "capacity 0" true
    (bad (fun () -> Timeseries.create ~capacity:0 ()));
  Alcotest.(check bool) "max_age 0" true
    (bad (fun () -> Timeseries.create ~max_age:0.0 ()))

let qcheck_timeseries_retention_newest =
  QCheck.Test.make
    ~name:"retention never drops the newest sample (ring + age)" ~count:200
    QCheck.(
      triple (int_range 1 12)
        (small_list (pair (float_bound_exclusive 20.0) (float_range (-5.0) 5.0)))
        (float_range 0.5 50.0))
    (fun (capacity, samples, max_age) ->
      QCheck.assume (samples <> []);
      let ts = Timeseries.create ~capacity ~max_age () in
      let t = ref 0.0 in
      let last = ref (0.0, 0.0) in
      List.iter
        (fun (dt, v) ->
          t := !t +. Float.abs dt;
          Timeseries.add ts !t v;
          last := (!t, v))
        samples;
      Timeseries.length ts >= 1
      && Timeseries.length ts <= capacity
      && Timeseries.last ts = Some !last
      && Timeseries.dropped ts + Timeseries.length ts
         = List.length samples)

let qcheck_timeseries_times_sorted =
  QCheck.Test.make ~name:"retained times stay sorted under eviction"
    ~count:200
    QCheck.(
      pair (int_range 1 8)
        (small_list (pair (float_bound_exclusive 10.0) (float_range 0.0 1.0))))
    (fun (capacity, samples) ->
      QCheck.assume (samples <> []);
      let ts = Timeseries.create ~capacity ~max_age:15.0 () in
      let t = ref 0.0 in
      List.iter
        (fun (dt, v) ->
          t := !t +. Float.abs dt;
          Timeseries.add ts !t v)
        samples;
      let times = Timeseries.times ts in
      let sorted = ref true in
      for i = 1 to Array.length times - 1 do
        if times.(i - 1) > times.(i) then sorted := false
      done;
      !sorted)

let test_timeseries_sparkline () =
  let ts = Timeseries.create () in
  for i = 0 to 20 do
    Timeseries.add ts (float_of_int i) (float_of_int i)
  done;
  Alcotest.(check bool) "non-empty" true
    (String.length (Timeseries.sparkline ts 8) > 0);
  Alcotest.(check string) "empty series" ""
    (Timeseries.sparkline (Timeseries.create ()) 8)

(* -- Minijson -------------------------------------------------------- *)

let test_minijson_values () =
  Alcotest.(check bool) "null" true (Minijson.parse "null" = Minijson.Null);
  Alcotest.(check bool) "true" true (Minijson.parse "true" = Minijson.Bool true);
  Alcotest.(check bool) "false" true
    (Minijson.parse " false " = Minijson.Bool false);
  (match Minijson.parse "-12.5e1" with
  | Minijson.Num v -> check_float "number" (-125.0) v
  | _ -> Alcotest.fail "expected Num");
  (match Minijson.parse "[1, 2, 3]" with
  | Minijson.List [ Num a; Num b; Num c ] ->
    check_float "a" 1.0 a; check_float "b" 2.0 b; check_float "c" 3.0 c
  | _ -> Alcotest.fail "expected List of Num");
  Alcotest.(check bool) "empty obj" true (Minijson.parse "{}" = Minijson.Obj []);
  Alcotest.(check bool) "empty list" true
    (Minijson.parse "[]" = Minijson.List [])

let test_minijson_path () =
  let j = Minijson.parse {|{"a": {"b": [1, {"c": 2.5}]}, "d": "x"}|} in
  Alcotest.(check (option (float 0.0))) "to_float on missing" None
    (Option.bind (Minijson.path [ "a"; "z" ] j) Minijson.to_float);
  Alcotest.(check (option string)) "d" (Some "x")
    (Option.bind (Minijson.member "d" j) Minijson.to_string_opt);
  (match Minijson.path [ "a"; "b" ] j with
  | Some (Minijson.List [ _; inner ]) ->
    Alcotest.(check (option (float 0.0))) "a.b[1].c" (Some 2.5)
      (Option.bind (Minijson.member "c" inner) Minijson.to_float)
  | _ -> Alcotest.fail "expected a.b to be a 2-list");
  Alcotest.(check (option string)) "member on non-object" None
    (Option.bind
       (Minijson.member "x" (Minijson.parse "[1]"))
       Minijson.to_string_opt)

let test_minijson_strings () =
  (match Minijson.parse {|"a\"b\\c\n\tA"|} with
  | Minijson.Str s -> Alcotest.(check string) "escapes" "a\"b\\c\n\tA" s
  | _ -> Alcotest.fail "expected Str");
  match Minijson.parse {|{"k\"ey": 1}|} with
  | Minijson.Obj [ (k, _) ] -> Alcotest.(check string) "escaped key" "k\"ey" k
  | _ -> Alcotest.fail "expected single-field Obj"

let test_minijson_malformed () =
  let bad s =
    match Minijson.parse_result s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s)
  in
  bad ""; bad "{"; bad "[1,]"; bad "{\"a\":}"; bad "nul"; bad "1 2";
  bad "\"unterminated"; bad "{\"a\" 1}"; bad "[1 2]"; bad "+5"

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "mitos_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "geometric" `Quick test_rng_geometric;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          Alcotest.test_case "bytes" `Quick test_rng_bytes;
          Alcotest.test_case "weighted" `Quick test_rng_weighted;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "exponential" `Quick test_rng_exponential;
          q qcheck_shuffle_is_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/variance" `Quick test_stats_mean_variance;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "mse pairwise" `Quick test_stats_mse_pairwise;
          Alcotest.test_case "jain" `Quick test_stats_jain;
          Alcotest.test_case "entropy" `Quick test_stats_entropy;
          Alcotest.test_case "gini" `Quick test_stats_gini;
          Alcotest.test_case "online batch" `Quick test_stats_online_matches_batch;
          Alcotest.test_case "online merge" `Quick test_stats_online_merge;
          q qcheck_jain_bounds;
          q qcheck_entropy_normalized_bounds;
        ] );
      ( "codec",
        [
          Alcotest.test_case "uint" `Quick test_codec_uint;
          Alcotest.test_case "int zigzag" `Quick test_codec_int_zigzag;
          Alcotest.test_case "float/string/bool" `Quick test_codec_float_string_bool;
          Alcotest.test_case "containers" `Quick test_codec_containers;
          Alcotest.test_case "malformed" `Quick test_codec_malformed;
          q qcheck_codec_int_roundtrip;
          q qcheck_codec_string_roundtrip;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
          Alcotest.test_case "markdown" `Quick test_table_markdown;
          Alcotest.test_case "formats" `Quick test_table_formats;
          Alcotest.test_case "alignment/separator" `Quick
            test_table_alignment_and_separator;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "basics" `Quick test_timeseries_basics;
          Alcotest.test_case "downsample" `Quick test_timeseries_downsample;
          Alcotest.test_case "window mean" `Quick test_timeseries_window_mean;
          Alcotest.test_case "window fold" `Quick test_timeseries_window_fold;
          Alcotest.test_case "empty/singleton" `Quick
            test_timeseries_empty_singleton;
          Alcotest.test_case "sparkline" `Quick test_timeseries_sparkline;
          Alcotest.test_case "iter" `Quick test_timeseries_iter;
          Alcotest.test_case "capacity retention" `Quick
            test_timeseries_capacity_retention;
          Alcotest.test_case "age retention" `Quick
            test_timeseries_age_retention;
          Alcotest.test_case "first_at_or_after" `Quick
            test_timeseries_first_at_or_after;
          Alcotest.test_case "bad retention args" `Quick
            test_timeseries_bad_retention_args;
          q qcheck_timeseries_window_mean_bounds;
          q qcheck_timeseries_retention_newest;
          q qcheck_timeseries_times_sorted;
        ] );
      ( "minijson",
        [
          Alcotest.test_case "values" `Quick test_minijson_values;
          Alcotest.test_case "nesting and path" `Quick test_minijson_path;
          Alcotest.test_case "strings and escapes" `Quick
            test_minijson_strings;
          Alcotest.test_case "malformed" `Quick test_minijson_malformed;
        ] );
    ]
