module Cluster = Mitos_distrib.Cluster
module Estimator = Mitos_distrib.Estimator
module W = Mitos_workload

let params = Mitos_experiments.Calib.sensitivity_params ()

let small_nodes n =
  List.init n (fun i -> W.Netbench.build ~seed:(50 + i) ~chunks:6 ())

(* -- Estimator ----------------------------------------------------------- *)

let test_estimator_basics () =
  let e = Estimator.create ~nodes:3 () in
  Alcotest.(check (float 0.0)) "initially zero" 0.0 (Estimator.global e);
  Estimator.publish e ~node:0 10.0;
  Estimator.publish e ~node:2 5.0;
  Alcotest.(check (float 0.0)) "sum" 15.0 (Estimator.global e);
  Estimator.publish e ~node:0 1.0;
  Alcotest.(check (float 0.0)) "overwrite" 6.0 (Estimator.global e);
  Alcotest.(check (float 0.0)) "contribution" 5.0
    (Estimator.contribution e ~node:2);
  Alcotest.(check int) "nodes" 3 (Estimator.nodes e);
  Alcotest.(check int) "default one shard" 1 (Estimator.shards e);
  Alcotest.(check bool) "zero nodes rejected" true
    (try ignore (Estimator.create ~nodes:0 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero shards rejected" true
    (try ignore (Estimator.create ~shards:0 ~nodes:3 ()); false
     with Invalid_argument _ -> true);
  (* more shards than nodes clamps rather than leaving empty shards *)
  Alcotest.(check int) "shards clamped to nodes" 3
    (Estimator.shards (Estimator.create ~shards:8 ~nodes:3 ()))

let test_estimator_shard_partition () =
  (* every node maps to exactly one shard, shard ranges are contiguous
     and in node order — the property the fixed-order global fold
     depends on *)
  List.iter
    (fun (nodes, shards) ->
      let e = Estimator.create ~shards ~nodes () in
      let prev = ref 0 in
      for node = 0 to nodes - 1 do
        let s = Estimator.shard_of_node e node in
        Alcotest.(check bool) "shard in range" true
          (s >= 0 && s < Estimator.shards e);
        Alcotest.(check bool) "monotone in node index" true (s >= !prev);
        Alcotest.(check bool) "no gaps" true (s - !prev <= 1);
        prev := s
      done;
      Alcotest.(check int) "last shard reached" (Estimator.shards e - 1) !prev)
    [ (1, 1); (4, 4); (7, 3); (16, 4); (5, 2); (9, 8) ]

(* Satellite: publish keeps the incrementally-maintained global exact —
   after any publish/overwrite sequence, [global] equals the
   from-scratch fixed-order fold bit-for-bit, at every shard count. *)
let test_estimator_incremental_global_exact () =
  List.iter
    (fun shards ->
      let nodes = 7 in
      let e = Estimator.create ~shards ~nodes () in
      let mirror = Array.make nodes 0.0 in
      (* deterministic pseudo-random publish/overwrite stream with
         awkward magnitudes, so incremental-sum drift would show *)
      let state = ref 0x2545F491 in
      let next () =
        state := (!state * 1103515245) + 12345;
        !state land 0xFFFFFF
      in
      let expected () =
        (* per-shard left fold, shards in index order — the documented
           reduce contract *)
        let sums = Array.make (Estimator.shards e) 0.0 in
        Array.iteri
          (fun node v ->
            let s = Estimator.shard_of_node e node in
            sums.(s) <- sums.(s) +. v)
          mirror;
        Array.fold_left ( +. ) 0.0 sums
      in
      for _ = 1 to 500 do
        let node = next () mod nodes in
        let value = float_of_int (next ()) /. 1024.0 in
        Estimator.publish e ~node value;
        mirror.(node) <- value;
        if Estimator.global e <> expected () then
          Alcotest.failf "global drifted at %d shards: %.17g <> %.17g" shards
            (Estimator.global e) (expected ())
      done;
      (* and per-node contributions survived every overwrite *)
      Array.iteri
        (fun node v ->
          Alcotest.(check (float 0.0)) "contribution exact" v
            (Estimator.contribution e ~node))
        mirror)
    [ 1; 2; 3; 7 ]

(* Satellite: the sharded estimator is observationally identical to the
   unsharded one under random interleaved publish/read sequences. *)
let qcheck_estimator_sharded_equivalent =
  QCheck.Test.make
    ~name:"sharded estimator observationally equal to unsharded" ~count:50
    QCheck.(
      pair (2 -- 6)
        (list_of_size Gen.(1 -- 60)
           (pair (0 -- 9) (float_bound_exclusive 1000.0))))
    (fun (shards, ops) ->
      let nodes = 10 in
      let flat = Estimator.create ~nodes () in
      let sharded = Estimator.create ~shards ~nodes () in
      List.for_all
        (fun (node, value) ->
          Estimator.publish flat ~node value;
          Estimator.publish sharded ~node value;
          let close a b =
            (* the global folds group differently across shard counts;
               contributions must agree exactly *)
            Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a)
          in
          close (Estimator.global flat) (Estimator.global sharded)
          && List.for_all
               (fun n ->
                 Estimator.contribution flat ~node:n
                 = Estimator.contribution sharded ~node:n)
               (List.init nodes Fun.id))
        ops)

(* Satellite: 4-domain stress — concurrent publishes to a sharded
   estimator lose nothing: every slot holds its domain's last value. *)
let test_estimator_concurrent_no_lost_updates () =
  let domains_n = 4 and per_domain = 2 and rounds = 20_000 in
  let nodes = domains_n * per_domain in
  let e = Estimator.create ~shards:4 ~nodes () in
  let domains =
    List.init domains_n (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to rounds do
              for k = 0 to per_domain - 1 do
                let node = (d * per_domain) + k in
                Estimator.publish e ~node (float_of_int ((node * 1000) + i));
                ignore (Estimator.global e);
                ignore (Estimator.contribution e ~node)
              done
            done))
  in
  List.iter Domain.join domains;
  for node = 0 to nodes - 1 do
    Alcotest.(check (float 0.0)) "last publish survived"
      (float_of_int ((node * 1000) + rounds))
      (Estimator.contribution e ~node)
  done;
  (* and the incremental shard sums converged to the exact fold *)
  let expected =
    let sums = Array.make (Estimator.shards e) 0.0 in
    for node = 0 to nodes - 1 do
      let s = Estimator.shard_of_node e node in
      sums.(s) <- sums.(s) +. float_of_int ((node * 1000) + rounds)
    done;
    Array.fold_left ( +. ) 0.0 sums
  in
  Alcotest.(check (float 0.0)) "global exact after the race" expected
    (Estimator.global e);
  (* the per-shard locks took the traffic and are visible by name *)
  let stats = Estimator.shard_stats e in
  Alcotest.(check int) "one stats row per shard" 4 (List.length stats);
  List.iteri
    (fun i (name, (st : Mitos_obs.Contended.stats)) ->
      Alcotest.(check string) "shard lock name"
        (Printf.sprintf "estimator_shard_%d" i)
        name;
      Alcotest.(check bool) "shard lock saw publishes" true
        (st.acquisitions >= rounds))
    stats

(* The estimator's concurrency contract: cross-domain publishes to
   disjoint slots never tear, and the global is always the sum of the
   last value each node published — the coordinator serves it from
   worker domains while nodes keep publishing. *)
let qcheck_estimator_concurrent =
  QCheck.Test.make ~name:"estimator publishes race-free across domains"
    ~count:15
    QCheck.(
      list_of_size Gen.(2 -- 4)
        (list_of_size Gen.(1 -- 40) (float_bound_exclusive 100.0)))
    (fun per_node ->
      let e = Estimator.create ~nodes:(List.length per_node) () in
      let domains =
        List.mapi
          (fun node values ->
            Domain.spawn (fun () ->
                List.iter
                  (fun v ->
                    Estimator.publish e ~node v;
                    (* concurrent reads must neither tear nor deadlock *)
                    ignore (Estimator.global e))
                  values))
          per_node
      in
      List.iter Domain.join domains;
      (* same fold order as Estimator.global, so equality is exact *)
      let expected =
        List.fold_left
          (fun acc values -> acc +. List.nth values (List.length values - 1))
          0.0 per_node
      in
      Estimator.global e = expected)

(* -- Cluster --------------------------------------------------------------- *)

let test_cluster_runs_to_completion () =
  let c = Cluster.create ~params ~sync_period:10 (small_nodes 3) in
  let rounds = Cluster.run c in
  Alcotest.(check bool) "made progress" true (rounds > 100);
  Alcotest.(check int) "three nodes" 3 (Cluster.num_nodes c);
  Alcotest.(check int) "three summaries" 3 (List.length (Cluster.summaries c));
  Alcotest.(check bool) "decisions happened" true
    (Cluster.total_propagated c + Cluster.total_blocked c > 0)

let test_cluster_final_sync_zero_staleness () =
  let c = Cluster.create ~params ~sync_period:1000 (small_nodes 2) in
  ignore (Cluster.run c);
  (* each node publishes on halt, so the final estimate is exact *)
  Alcotest.(check (float 1e-9)) "no residual staleness" 0.0 (Cluster.staleness c)

let test_cluster_sync_counts () =
  let c1 = Cluster.create ~params ~sync_period:1 (small_nodes 2) in
  ignore (Cluster.run c1);
  let ck = Cluster.create ~params ~sync_period:100 (small_nodes 2) in
  ignore (Cluster.run ck);
  Alcotest.(check bool) "longer period -> far fewer syncs" true
    (Cluster.syncs_performed ck * 50 < Cluster.syncs_performed c1)

let test_cluster_global_estimate_reflects_all_nodes () =
  let c = Cluster.create ~params ~sync_period:1 (small_nodes 2) in
  ignore (Cluster.run c);
  let total =
    Cluster.local_pollution c ~node:0 +. Cluster.local_pollution c ~node:1
  in
  Alcotest.(check (float 1e-6)) "estimator sums node contributions" total
    (Estimator.global (Cluster.estimator c))

let test_cluster_staleness_shifts_decisions () =
  let run period =
    let c = Cluster.create ~params ~sync_period:period (small_nodes 2) in
    ignore (Cluster.run c);
    Cluster.total_propagated c
  in
  let tight = run 1 in
  let loose = run 50_000 in
  (* with a very stale (lower) pollution estimate, nodes propagate at
     least as much as with an up-to-date one *)
  Alcotest.(check bool) "stale estimate propagates >= fresh" true (loose >= tight)

let test_cluster_wide_detection () =
  (* one compromised machine among benign ones: the cluster's shared
     alarm must fire on exactly the attacked node *)
  let nodes =
    [
      W.Netbench.build ~seed:70 ~chunks:4 ();
      W.Attack.build W.Attack.Reverse_tcp ~seed:71 ();
      W.Netbench.build ~seed:72 ~chunks:4 ();
    ]
  in
  let c =
    Cluster.create
      ~watch:(Mitos_tag.Tag_type.Network, Mitos_tag.Tag_type.Export_table)
      ~params:Mitos_experiments.Calib.attack_params ~sync_period:100 nodes
  in
  ignore (Cluster.run c);
  (match Cluster.first_alert c with
  | Some (node, alert) ->
    Alcotest.(check int) "attacked node flagged" 1 node;
    Alcotest.(check bool) "alert in kernel area" true
      (Mitos_system.Layout.in_kernel_export alert.Mitos_dift.Engine.alert_addr)
  | None -> Alcotest.fail "cluster missed the attack");
  (* benign netbench nodes also hit netflow+export confluence via their
     simulated library loads, but node 1 carries the payload burst *)
  let node1_alerts =
    List.length (List.filter (fun (n, _) -> n = 1) (Cluster.alerts c))
  in
  Alcotest.(check bool) "payload-sized alert burst on node 1" true
    (node1_alerts >= W.Attack.payload_len)

let test_cluster_heterogeneous_params () =
  (* two identical workloads, opposite tau regimes: the permissive
     node must propagate more than the strict one, despite sharing the
     same global pollution scalar *)
  let strict = Mitos_experiments.Calib.sensitivity_params ~tau:1.0 () in
  let permissive = Mitos_experiments.Calib.sensitivity_params ~tau:0.01 () in
  let c =
    Cluster.create_heterogeneous ~sync_period:10
      [
        (W.Netbench.build ~seed:80 ~chunks:8 (), strict);
        (W.Netbench.build ~seed:80 ~chunks:8 (), permissive);
      ]
  in
  ignore (Cluster.run c);
  match Cluster.summaries c with
  | [ strict_s; permissive_s ] ->
    Alcotest.(check bool) "permissive node propagates more" true
      (permissive_s.Mitos_dift.Metrics.ifp_propagated
      > strict_s.Mitos_dift.Metrics.ifp_propagated * 2)
  | _ -> Alcotest.fail "expected two summaries"

let test_cluster_topology_restricts_visibility () =
  (* an isolated node never sees the others' pollution, so it
     propagates at least as much as a fully-connected one would *)
  let nodes () =
    List.map
      (fun (b, _) -> b)
      (List.init 3 (fun i -> (W.Netbench.build ~seed:(90 + i) ~chunks:8 (), ())))
  in
  let run topology =
    let pairs =
      List.map (fun b -> (b, params)) (nodes ())
    in
    let c =
      Cluster.create_heterogeneous ?topology ~sync_period:10 pairs
    in
    ignore (Cluster.run c);
    List.map
      (fun (s : Mitos_dift.Metrics.summary) -> s.Mitos_dift.Metrics.ifp_propagated)
      (Cluster.summaries c)
  in
  let full = run None in
  (* node 2 isolated; 0-1 connected *)
  let partial = run (Some [ (0, 1) ]) in
  (match (full, partial) with
  | [ _; _; full2 ], [ _; _; part2 ] ->
    Alcotest.(check bool) "isolated node propagates >= connected" true
      (part2 >= full2)
  | _ -> Alcotest.fail "expected three summaries");
  Alcotest.(check bool) "bad edge rejected" true
    (try
       ignore
         (Cluster.create_heterogeneous ~topology:[ (0, 9) ] ~sync_period:1
            (List.map (fun b -> (b, params)) (nodes ())));
       false
     with Invalid_argument _ -> true)

let test_cluster_validation () =
  Alcotest.(check bool) "empty nodes" true
    (try ignore (Cluster.create ~params ~sync_period:1 []); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad period" true
    (try ignore (Cluster.create ~params ~sync_period:0 (small_nodes 1)); false
     with Invalid_argument _ -> true)

let test_cluster_max_rounds () =
  let c = Cluster.create ~params ~sync_period:1 (small_nodes 1) in
  Alcotest.(check int) "bounded" 10 (Cluster.run ~max_rounds:10 c)

let () =
  Alcotest.run "mitos_distrib"
    [
      ( "estimator",
        [
          Alcotest.test_case "basics" `Quick test_estimator_basics;
          Alcotest.test_case "shard partition" `Quick
            test_estimator_shard_partition;
          Alcotest.test_case "incremental global exact" `Quick
            test_estimator_incremental_global_exact;
          Alcotest.test_case "4-domain no lost updates" `Quick
            test_estimator_concurrent_no_lost_updates;
          QCheck_alcotest.to_alcotest qcheck_estimator_concurrent;
          QCheck_alcotest.to_alcotest qcheck_estimator_sharded_equivalent;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "runs" `Quick test_cluster_runs_to_completion;
          Alcotest.test_case "final sync" `Quick test_cluster_final_sync_zero_staleness;
          Alcotest.test_case "sync counts" `Quick test_cluster_sync_counts;
          Alcotest.test_case "global estimate" `Quick test_cluster_global_estimate_reflects_all_nodes;
          Alcotest.test_case "staleness shifts decisions" `Slow test_cluster_staleness_shifts_decisions;
          Alcotest.test_case "cluster-wide detection" `Quick test_cluster_wide_detection;
          Alcotest.test_case "heterogeneous params" `Quick
            test_cluster_heterogeneous_params;
          Alcotest.test_case "topology visibility" `Quick
            test_cluster_topology_restricts_visibility;
          Alcotest.test_case "validation" `Quick test_cluster_validation;
          Alcotest.test_case "max rounds" `Quick test_cluster_max_rounds;
        ] );
    ]
