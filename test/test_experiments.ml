module E = Mitos_experiments
module W = Mitos_workload

(* Keep experiment-level tests cheap: a trimmed netbench trace shared
   across the checks. *)
let small_built = lazy (W.Netbench.build ~seed:5 ~chunks:10 ())
let small_trace = lazy (W.Workload.record (Lazy.force small_built))

(* -- Fig. 3 ---------------------------------------------------------------- *)

let strictly_monotone cmp series =
  let values = List.map snd series in
  List.for_all2 cmp
    (List.filteri (fun i _ -> i < List.length values - 1) values)
    (List.tl values)

let test_fig3_under_decreasing () =
  List.iter
    (fun alpha ->
      Alcotest.(check bool)
        (Printf.sprintf "under cost decreasing (alpha=%g)" alpha)
        true
        (strictly_monotone (fun a b -> a > b) (E.Fig3.under_series ~alpha)))
    E.Fig3.alphas

let test_fig3_over_increasing () =
  List.iter
    (fun beta ->
      Alcotest.(check bool)
        (Printf.sprintf "over cost increasing (beta=%g)" beta)
        true
        (strictly_monotone (fun a b -> a < b) (E.Fig3.over_series ~beta)))
    E.Fig3.betas

let test_fig3_alpha_steepness () =
  (* larger alpha -> the cost decays faster relative to its own scale:
     phi(1)/phi(2) = 2^(alpha-1) grows with alpha *)
  let decay alpha =
    match E.Fig3.under_series ~alpha with
    | (_, c1) :: (_, c2) :: _ -> c1 /. c2
    | _ -> 0.0
  in
  Alcotest.(check bool) "alpha=4 decays faster than alpha=1.5" true
    (decay 4.0 > decay 1.5);
  Alcotest.(check (float 1e-9)) "decay ratio is 2^(alpha-1)" 8.0 (decay 4.0)

(* -- Fig. 7 ----------------------------------------------------------------- *)

let test_fig7_tau_monotonicity () =
  let built = Lazy.force small_built and trace = Lazy.force small_trace in
  let propagated tau =
    let samples, _ = E.Fig7.replay_with_tau built trace ~tau in
    List.length (List.filter (fun s -> s.E.Fig7.propagated) samples)
  in
  let p1 = propagated 1.0 and p01 = propagated 0.1 and p001 = propagated 0.01 in
  Alcotest.(check bool) "tau=1 <= tau=0.1" true (p1 <= p01);
  Alcotest.(check bool) "tau=0.1 <= tau=0.01" true (p01 <= p001);
  Alcotest.(check bool) "gradient is non-trivial" true (p1 < p001)

let test_fig7_submarginal_signs () =
  let built = Lazy.force small_built and trace = Lazy.force small_trace in
  let samples, _ = E.Fig7.replay_with_tau built trace ~tau:0.1 in
  List.iter
    (fun s ->
      Alcotest.(check bool) "under <= 0" true (s.E.Fig7.under <= 0.0);
      Alcotest.(check bool) "over >= 0" true (s.E.Fig7.over >= 0.0))
    samples

let test_fig7_over_marginal_trends_up () =
  let built = Lazy.force small_built and trace = Lazy.force small_trace in
  let samples, _ = E.Fig7.replay_with_tau built trace ~tau:0.1 in
  match E.Fig7.bucketize samples ~buckets:4 with
  | (_, _, over_first, _, _) :: rest ->
    let _, _, over_last, _, _ = List.nth rest (List.length rest - 1) in
    Alcotest.(check bool) "pollution accumulates" true (over_last >= over_first)
  | [] -> Alcotest.fail "no samples"

let test_fig7_bucketize_math () =
  let mk step under over propagated = { E.Fig7.step; under; over; propagated } in
  let samples =
    [ mk 1 (-1.0) 0.5 true; mk 2 (-3.0) 1.5 false; mk 3 (-5.0) 2.5 true;
      mk 4 (-7.0) 3.5 true ]
  in
  (match E.Fig7.bucketize samples ~buckets:2 with
  | [ (s1, u1, o1, p1, b1); (s2, u2, o2, p2, b2) ] ->
    Alcotest.(check int) "bucket1 end step" 2 s1;
    Alcotest.(check (float 1e-9)) "bucket1 mean under" (-2.0) u1;
    Alcotest.(check (float 1e-9)) "bucket1 mean over" 1.0 o1;
    Alcotest.(check int) "bucket1 prop" 1 p1;
    Alcotest.(check int) "bucket1 block" 1 b1;
    Alcotest.(check int) "bucket2 end step" 4 s2;
    Alcotest.(check (float 1e-9)) "bucket2 mean under" (-6.0) u2;
    Alcotest.(check (float 1e-9)) "bucket2 mean over" 3.0 o2;
    Alcotest.(check int) "bucket2 prop" 2 p2;
    Alcotest.(check int) "bucket2 block" 0 b2
  | _ -> Alcotest.fail "expected 2 buckets");
  Alcotest.(check int) "empty samples" 0
    (List.length (E.Fig7.bucketize [] ~buckets:3))

(* -- Fig. 8 -------------------------------------------------------------------- *)

let test_fig8_alpha_improves_balance () =
  let built = Lazy.force small_built and trace = Lazy.force small_trace in
  let points = E.Fig8.sweep built trace in
  let mse alpha =
    let p = List.find (fun p -> p.E.Fig8.alpha = alpha) points in
    p.E.Fig8.fairness.Mitos.Fairness.mse
  in
  Alcotest.(check bool) "alpha=4 at least as balanced as alpha=0.5" true
    (mse 4.0 <= mse 0.5);
  Alcotest.(check int) "one point per alpha"
    (List.length E.Fig8.alphas) (List.length points)

(* -- Fig. 9 --------------------------------------------------------------------- *)

let test_fig9_u_boost_monotone () =
  let built = Lazy.force small_built and trace = Lazy.force small_trace in
  let points = E.Fig9.sweep built trace in
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "netflow propagation nondecreasing in u" true
        (a.E.Fig9.net_propagated <= b.E.Fig9.net_propagated);
      pairwise rest
    | _ -> ()
  in
  pairwise points;
  let first = List.hd points and last = List.nth points (List.length points - 1) in
  Alcotest.(check bool) "boost has real effect" true
    (last.E.Fig9.net_propagated > first.E.Fig9.net_propagated);
  Alcotest.(check bool) "export tags not accelerated" true
    (last.E.Fig9.export_propagated <= first.E.Fig9.export_propagated)

(* -- Table II -------------------------------------------------------------------- *)

let test_table2_single_variant_shape () =
  let row = E.Table2.run_variant Mitos_workload.Attack.Reverse_tcp_rc4 in
  Alcotest.(check int) "faros blind to substitution decode" 0
    row.E.Table2.faros.Mitos_dift.Metrics.detected_bytes;
  Alcotest.(check bool) "mitos detects the payload" true
    (row.E.Table2.mitos.Mitos_dift.Metrics.detected_bytes
    >= Mitos_workload.Attack.payload_len);
  Alcotest.(check bool) "mitos uses less shadow space" true
    (row.E.Table2.mitos.Mitos_dift.Metrics.footprint_bytes
    < row.E.Table2.faros.Mitos_dift.Metrics.footprint_bytes)

let test_table2_goldens () =
  (* everything is deterministic from the fixed seeds, so the headline
     reproduction numbers are pinned exactly; any unintended semantic
     drift in the substrate shows up here *)
  let result = E.Table2.run_all () in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 result.E.Table2.rows in
  Alcotest.(check int) "FAROS total detected bytes" 977
    (sum (fun r -> r.E.Table2.faros.Mitos_dift.Metrics.detected_bytes));
  Alcotest.(check int) "MITOS total detected bytes" 2340
    (sum (fun r -> r.E.Table2.mitos.Mitos_dift.Metrics.detected_bytes));
  (* the paper's simultaneous-improvement claim, as inequalities *)
  Alcotest.(check bool) "time improves" true
    (result.E.Table2.time_improvement > 1.05);
  Alcotest.(check bool) "space improves" true
    (result.E.Table2.space_improvement > 1.5);
  Alcotest.(check bool) "detection improves >2x" true
    (result.E.Table2.detection_improvement > 2.0)

let test_latency_variant_smoke () =
  let row = E.Latency.run_variant Mitos_workload.Attack.Reverse_tcp_rc4 in
  Alcotest.(check bool) "run completed" true (row.E.Latency.total_steps > 1000);
  Alcotest.(check (option int)) "faros never alarms on rc4" None
    (List.assoc "faros" row.E.Latency.alarm_step);
  (match List.assoc "mitos" row.E.Latency.alarm_step with
  | Some step ->
    Alcotest.(check bool) "mitos alarms before the run ends" true
      (step < row.E.Latency.total_steps)
  | None -> Alcotest.fail "mitos missed the rc4 shell")

let test_conformance_staircase () =
  (* each conformance column must dominate the one to its left *)
  let outcomes =
    List.map
      (fun (_, policy) -> Mitos_dift.Litmus.run policy)
      (E.Validation.policies ())
  in
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
      List.iter2
        (fun (oa : Mitos_dift.Litmus.outcome) (ob : Mitos_dift.Litmus.outcome) ->
          Alcotest.(check bool)
            (oa.Mitos_dift.Litmus.case.Mitos_dift.Litmus.case_name
            ^ ": staircase monotone")
            true
            ((not oa.Mitos_dift.Litmus.tainted) || ob.Mitos_dift.Litmus.tainted))
        a b;
      pairwise rest
    | _ -> ()
  in
  pairwise outcomes

(* -- Report ------------------------------------------------------------------------ *)

let test_report_rendering () =
  let r = E.Report.create ~title:"T" in
  E.Report.text r "hello";
  E.Report.textf r "x=%d" 42;
  let tbl = Mitos_util.Table.create ~header:[ "a" ] () in
  Mitos_util.Table.add_row tbl [ "1" ];
  E.Report.table r tbl;
  let section = E.Report.finish r in
  Alcotest.(check string) "title" "T" (E.Report.title section);
  let md = E.Report.to_markdown section in
  let has needle =
    let n = String.length needle and h = String.length md in
    let rec go i = i + n <= h && (String.sub md i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "markdown heading" true (has "## T");
  Alcotest.(check bool) "text kept" true (has "x=42");
  Alcotest.(check bool) "table rendered" true (has "| a |")

(* -- Calib ---------------------------------------------------------------------------- *)

let test_calib_params () =
  let p = E.Calib.sensitivity_params () in
  Alcotest.(check (float 0.0)) "paper alpha" 1.5 p.Mitos.Params.alpha;
  Alcotest.(check (float 0.0)) "paper beta" 2.0 p.Mitos.Params.beta;
  Alcotest.(check int) "paper N_R = 4GiB x 10" (4 * 1024 * 1024 * 1024 * 10)
    p.Mitos.Params.total_tag_space;
  let a = E.Calib.attack_params in
  List.iter
    (fun ty ->
      Alcotest.(check (float 0.0)) "boosted type weight" 50.0
        (Mitos.Params.u a ty))
    E.Calib.tag_type_u_boost;
  Alcotest.(check bool) "table2 routes direct flows" true
    E.Calib.attack_engine_config.Mitos_dift.Engine.route_direct_through_policy

(* -- audit / blame / flow graph ------------------------------------------- *)

module Audit = Mitos_obs.Audit
module Pool = Mitos_parallel.Pool

(* The acceptance property: on the litmus suite, every over- and
   under-tainted byte (vs. the faros / propagate-all oracle bounds)
   traces back to at least one audit record. Exercised from both
   sides: a propagate-leaning parameterization (over findings on
   Propagate records) and a block-leaning one (under findings on
   Block records / evictions). *)
let test_blame_litmus_full_attribution () =
  let check_full name params expect_dir =
    let s = E.Blame.litmus params in
    Alcotest.(check bool) (name ^ ": found differences") true (s.E.Blame.total > 0);
    Alcotest.(check int)
      (name ^ ": every byte attributed")
      s.E.Blame.total s.E.Blame.attributed;
    List.iter
      (fun (f : E.Blame.finding) ->
        Alcotest.(check bool)
          (name ^ ": expected direction")
          true
          (f.E.Blame.direction = expect_dir))
      s.E.Blame.findings
  in
  check_full "propagate-leaning"
    (E.Calib.sensitivity_params ())
    E.Blame.Over;
  check_full "block-leaning"
    (E.Calib.sensitivity_params ~tau:100.0 ~u_net:0.00001 ())
    E.Blame.Under

(* The audit JSONL and the blame summary must not depend on the pool
   width: the audited run is sequential and only the oracles fan
   out. *)
let test_blame_jobs_deterministic () =
  let params = E.Calib.sensitivity_params () in
  let run jobs =
    Pool.with_pool ~jobs (fun pool ->
        let s = E.Blame.litmus ~pool params in
        (Audit.to_jsonl s.E.Blame.audit, s.E.Blame.findings))
  in
  let jsonl1, findings1 = run 1 in
  let jsonl2, findings2 = run 2 in
  let jsonl4, findings4 = run 4 in
  Alcotest.(check string) "jsonl 1 = 2" jsonl1 jsonl2;
  Alcotest.(check string) "jsonl 1 = 4" jsonl1 jsonl4;
  Alcotest.(check bool) "findings 1 = 2" true (findings1 = findings2);
  Alcotest.(check bool) "findings 1 = 4" true (findings1 = findings4)

(* Same run, twice: flow-graph DOT and JSON exports are byte-stable. *)
let test_flowgraph_deterministic () =
  let run () =
    let audit = Audit.create () in
    Mitos.Decision.set_audit (Some audit);
    let engine =
      Fun.protect
        ~finally:(fun () -> Mitos.Decision.set_audit None)
        (fun () ->
          W.Workload.run_live ~audit
            ~policy:(Mitos_dift.Policies.mitos (E.Calib.sensitivity_params ()))
            (W.Netbench.build ~seed:5 ~chunks:10 ()))
    in
    let g =
      E.Flowgraph.build
        ~shadow:(Mitos_dift.Engine.shadow engine)
        (Audit.records audit)
    in
    (E.Flowgraph.to_dot g, E.Flowgraph.to_json g, List.length g.E.Flowgraph.edges)
  in
  let dot1, json1, edges1 = run () in
  let dot2, json2, _ = run () in
  Alcotest.(check string) "dot byte-identical" dot1 dot2;
  Alcotest.(check string) "json byte-identical" json1 json2;
  Alcotest.(check bool) "graph has edges" true (edges1 > 0)

(* The flow graph's verdict counts must agree with the audit log. *)
let test_flowgraph_counts () =
  let audit = Audit.create () in
  Audit.set_context audit ~step:1 ~pc:10 ~flow:"addr-dep" ();
  let td verdict =
    { Audit.tag = "network#1"; under = -0.1; over = 0.2; marginal = 0.1;
      verdict }
  in
  Audit.record_decision audit ~algorithm:"alg1" ~space:1 ~pollution:0.0
    [ td Audit.Propagate ];
  Audit.record_decision audit ~algorithm:"alg1" ~space:1 ~pollution:0.0
    [ td Audit.Block ];
  Audit.record_eviction audit ~at:"mem:4" ~victim:"file#1"
    ~incoming:"network#1" ();
  let g = E.Flowgraph.build (Audit.records audit) in
  (match List.find_opt (fun (t : E.Flowgraph.tag_node) -> t.tag = "network#1") g.E.Flowgraph.tags with
  | Some t ->
    Alcotest.(check int) "propagated" 1 t.E.Flowgraph.propagated;
    Alcotest.(check int) "blocked" 1 t.E.Flowgraph.blocked
  | None -> Alcotest.fail "network#1 node missing");
  Alcotest.(check int) "one site" 1 (List.length g.E.Flowgraph.sites);
  (match g.E.Flowgraph.evictions with
  | [ ev ] ->
    Alcotest.(check string) "incoming" "network#1" ev.E.Flowgraph.incoming;
    Alcotest.(check string) "victim" "file#1" ev.E.Flowgraph.victim;
    Alcotest.(check int) "count" 1 ev.E.Flowgraph.count
  | evs -> Alcotest.failf "expected one eviction edge, got %d" (List.length evs))

(* -- bench compare (perf-regression gate) ----------------------------- *)

let bench_json ?(schema = "mitos-bench-decisions/1") ?(fleet_mean = 450000.0)
    ~alg1_direct ~replay_rps () =
  Printf.sprintf
    {|{
  "schema": "%s",
  "alg1": { "direct_ns": %f, "fast_ns": 10.0 },
  "alg2_batch8_space4": { "direct_ns": 500.0, "fast_ns": 100.0 },
  "engine_replay": { "records_per_sec": %f, "audit_records_per_sec": 800000.0, "par_records_per_sec": 900000.0 },
  "pool": { "speedup_4x": 1.0 },
  "shadow_shards": { "imbalance": 1.05 },
  "net_decide_batch": { "p50_ns": 20000.0, "requests_per_sec": 50000.0, "par_requests_per_sec": 45000.0 },
  "fleet_scrape": { "mean_ns": %f },
  "fleet": { "requests_per_sec": 30000.0, "p99_virtual_ns": 1000000.0 },
  "alert_eval": { "ns_per_observation": 9000.0 },
  "lock_contention": { "uncontended_pair_ns": 40.0 },
  "gc_pressure": { "minor_words_per_record": 120.0 }
}|}
    schema alg1_direct replay_rps fleet_mean

let compare_exn ~tolerance_pct old_json new_json =
  match E.Bench_compare.of_json ~tolerance_pct ~old_json ~new_json with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_bench_compare_ok () =
  let old_json = bench_json ~alg1_direct:100.0 ~replay_rps:1e6 () in
  (* 10% slower alg1, 10% lower throughput: inside a 25% tolerance *)
  let new_json = bench_json ~alg1_direct:110.0 ~replay_rps:0.9e6 () in
  let r = compare_exn ~tolerance_pct:25.0 old_json new_json in
  Alcotest.(check bool) "ok" true (E.Bench_compare.ok r);
  Alcotest.(check int) "all gated metrics compared" 18
    (List.length r.E.Bench_compare.rows);
  Alcotest.(check (list string)) "nothing skipped" []
    r.E.Bench_compare.skipped;
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  Alcotest.(check bool) "render says ok" true
    (contains (E.Bench_compare.render r) "ok: no metric regressed")

let test_bench_compare_regression () =
  let old_json = bench_json ~alg1_direct:100.0 ~replay_rps:1e6 () in
  (* alg1 50% slower (Lower_better breach), throughput 40% down
     (Higher_better breach) *)
  let new_json = bench_json ~alg1_direct:150.0 ~replay_rps:0.6e6 () in
  let r = compare_exn ~tolerance_pct:25.0 old_json new_json in
  Alcotest.(check bool) "not ok" false (E.Bench_compare.ok r);
  let regressed =
    List.map
      (fun row -> row.E.Bench_compare.metric)
      (E.Bench_compare.regressions r)
  in
  Alcotest.(check (list string)) "both directions caught"
    [ "alg1.direct_ns"; "engine_replay.records_per_sec" ]
    regressed;
  (* an improvement is a negative change, never a regression *)
  let faster = bench_json ~alg1_direct:10.0 ~replay_rps:2e6 () in
  Alcotest.(check bool) "improvement is ok" true
    (E.Bench_compare.ok (compare_exn ~tolerance_pct:25.0 old_json faster))

let test_bench_compare_reports_all_regressions () =
  let old_json = bench_json ~alg1_direct:100.0 ~replay_rps:1e6 () in
  (* three independent breaches in one comparison — alg1 50% slower,
     replay 40% down, fleet scrape 2x slower — all must surface in a
     single pass, not first-failure-wins *)
  let new_json =
    bench_json ~alg1_direct:150.0 ~replay_rps:0.6e6 ~fleet_mean:900000.0 ()
  in
  let r = compare_exn ~tolerance_pct:25.0 old_json new_json in
  Alcotest.(check bool) "not ok" false (E.Bench_compare.ok r);
  let regressed =
    List.map
      (fun row -> row.E.Bench_compare.metric)
      (E.Bench_compare.regressions r)
  in
  Alcotest.(check (list string)) "every regressing row reported"
    [ "alg1.direct_ns"; "engine_replay.records_per_sec";
      "fleet_scrape.mean_ns" ]
    regressed;
  let rendered = E.Bench_compare.render r in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  List.iter
    (fun m ->
      Alcotest.(check bool) (m ^ " named in render") true
        (contains rendered m))
    regressed;
  Alcotest.(check bool) "summary counts 3" true
    (contains rendered "REGRESSION: 3 metric(s)")

let test_bench_compare_skipped_and_errors () =
  let old_json = bench_json ~alg1_direct:100.0 ~replay_rps:1e6 () in
  let partial =
    {|{ "schema": "mitos-bench-decisions/1", "alg1": { "direct_ns": 100.0 } }|}
  in
  let r = compare_exn ~tolerance_pct:25.0 old_json partial in
  Alcotest.(check bool) "partial file still ok" true (E.Bench_compare.ok r);
  Alcotest.(check int) "one row compared" 1
    (List.length r.E.Bench_compare.rows);
  Alcotest.(check int) "rest skipped" 17
    (List.length r.E.Bench_compare.skipped);
  let expect_error ~old_json ~new_json ~tolerance_pct =
    match E.Bench_compare.of_json ~tolerance_pct ~old_json ~new_json with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected Error"
  in
  expect_error ~tolerance_pct:25.0 ~old_json ~new_json:"not json{";
  expect_error ~tolerance_pct:25.0 ~old_json
    ~new_json:(bench_json ~schema:"other/9" ~alg1_direct:1.0 ~replay_rps:1.0 ());
  expect_error ~tolerance_pct:(-1.0) ~old_json ~new_json:old_json;
  match E.Bench_compare.of_files ~tolerance_pct:25.0 "/nonexistent-a.json"
          "/nonexistent-b.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error for missing files"

(* -- telemetry pilot --------------------------------------------------- *)

let test_telemetry_pilot_breach () =
  (* a rule no real run can satisfy forces the over-taint breach path:
     /healthz must flip to 503 and record the transition *)
  let forced =
    E.Telemetry.default_rules
    @ [
        Mitos_obs.Health.rule ~name:"forced" ~signal:"over_taint_ratio"
          ~cmp:Mitos_obs.Health.Le ~bound:0.01 ();
      ]
  in
  let p =
    E.Telemetry.pilot ~rules:forced ~sample_every:64
      ~build:(fun () -> W.Netbench.build ~seed:5 ~chunks:10 ())
      ()
  in
  p.E.Telemetry.replay ();
  let health = Option.get p.E.Telemetry.src.E.Telemetry.health in
  Alcotest.(check bool) "forced rule breached" false
    (Mitos_obs.Health.healthy health);
  Alcotest.(check int) "healthz 503" 503 (Mitos_obs.Health.status_code health);
  Alcotest.(check bool) "breach history non-empty" true
    (Mitos_obs.Health.breaches health <> []);
  (* the snapshot endpoint body is real JSON our own parser accepts *)
  let snapshot = E.Telemetry.snapshot_json p.E.Telemetry.src in
  let j = Mitos_util.Minijson.parse snapshot in
  let steps =
    Option.bind
      (Mitos_util.Minijson.path [ "progress"; "step" ] j)
      Mitos_util.Minijson.to_float
  in
  let progress = Mitos_dift.Engine.progress p.E.Telemetry.engine in
  Alcotest.(check (option (float 0.0))) "progress.step in snapshot"
    (Some (float_of_int progress.Mitos_dift.Engine.prog_step))
    steps;
  Alcotest.(check bool) "sweep gauges exported" true
    (let metrics = Mitos_obs.Obs.prometheus p.E.Telemetry.src.E.Telemetry.obs in
     let contains hay needle =
       let n = String.length needle and h = String.length hay in
       let rec go i =
         i + n <= h && (String.sub hay i n = needle || go (i + 1))
       in
       n = 0 || go 0
     in
     contains metrics "mitos_sweep_over_taint_bound"
     && contains metrics "mitos_engine_ifp_decisions_total")

let () =
  Alcotest.run "mitos_experiments"
    [
      ( "fig3",
        [
          Alcotest.test_case "under decreasing" `Quick test_fig3_under_decreasing;
          Alcotest.test_case "over increasing" `Quick test_fig3_over_increasing;
          Alcotest.test_case "alpha steepness" `Quick test_fig3_alpha_steepness;
        ] );
      ( "fig7",
        [
          Alcotest.test_case "tau monotonicity" `Slow test_fig7_tau_monotonicity;
          Alcotest.test_case "submarginal signs" `Slow test_fig7_submarginal_signs;
          Alcotest.test_case "over trends up" `Slow test_fig7_over_marginal_trends_up;
          Alcotest.test_case "bucketize math" `Quick test_fig7_bucketize_math;
        ] );
      ( "fig8",
        [ Alcotest.test_case "alpha improves balance" `Slow test_fig8_alpha_improves_balance ] );
      ( "fig9",
        [ Alcotest.test_case "u boost monotone" `Slow test_fig9_u_boost_monotone ] );
      ( "table2",
        [
          Alcotest.test_case "rc4 variant shape" `Slow test_table2_single_variant_shape;
          Alcotest.test_case "headline goldens" `Slow test_table2_goldens;
        ] );
      ( "report",
        [ Alcotest.test_case "rendering" `Quick test_report_rendering ] );
      ( "latency",
        [
          Alcotest.test_case "rc4 variant smoke" `Slow
            test_latency_variant_smoke;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "policy staircase monotone" `Quick
            test_conformance_staircase;
        ] );
      ( "audit",
        [
          Alcotest.test_case "blame litmus full attribution" `Quick
            test_blame_litmus_full_attribution;
          Alcotest.test_case "blame jobs-deterministic" `Quick
            test_blame_jobs_deterministic;
          Alcotest.test_case "flowgraph deterministic" `Quick
            test_flowgraph_deterministic;
          Alcotest.test_case "flowgraph counts" `Quick test_flowgraph_counts;
        ] );
      ( "calib",
        [ Alcotest.test_case "params" `Quick test_calib_params ] );
      ( "telemetry",
        [
          Alcotest.test_case "pilot forced breach + snapshot" `Quick
            test_telemetry_pilot_breach;
        ] );
      ( "bench-compare",
        [
          Alcotest.test_case "within tolerance" `Quick test_bench_compare_ok;
          Alcotest.test_case "regressions both directions" `Quick
            test_bench_compare_regression;
          Alcotest.test_case "all regressions in one pass" `Quick
            test_bench_compare_reports_all_regressions;
          Alcotest.test_case "skipped metrics and errors" `Quick
            test_bench_compare_skipped_and_errors;
        ] );
    ]
