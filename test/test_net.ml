module Wire = Mitos_net.Wire
module Transport = Mitos_net.Transport
module Client = Mitos_net.Client
module Server = Mitos_net.Server
module Netcluster = Mitos_net.Netcluster
module Loadgen = Mitos_net.Loadgen
module Executor = Mitos_parallel.Executor
module Tag = Mitos_tag.Tag
module Tag_type = Mitos_tag.Tag_type
module W = Mitos_workload

let params = Mitos_experiments.Calib.sensitivity_params ()

(* fresh loopback name per test so failures don't leak registrations
   into each other *)
let fresh_name =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "%s-%d" prefix !n

let with_server ?config ?(params = params) f =
  let service = Server.create ?config ~params () in
  let name = fresh_name "t" in
  let listener = Server.start service (Transport.Memory name) in
  Fun.protect
    ~finally:(fun () -> Server.stop listener)
    (fun () -> f service (Transport.Memory name))

let ok_client = function
  | Ok v -> v
  | Error err -> Alcotest.fail (Client.error_to_string err)

(* -- Wire: QCheck round-trip --------------------------------------------- *)

let gen_tag =
  QCheck.Gen.(
    map2
      (fun ty id -> Tag.make ty id)
      (oneofl Tag_type.all) (int_bound 100_000))

let gen_decide_request =
  QCheck.Gen.(
    map3
      (fun space pollution candidates -> { Wire.space; pollution; candidates })
      (int_bound 64)
      (float_bound_inclusive 1e6)
      (list_size (int_bound 8) (pair gen_tag (int_bound 1000))))

let gen_request =
  QCheck.Gen.(
    oneof
      [
        return Wire.Ping;
        map (fun b -> Wire.Decide b) (list_size (int_bound 5) gen_decide_request);
        map2
          (fun node value -> Wire.Publish { node; value })
          (int_bound 1000) (float_bound_inclusive 1e9);
        return Wire.Read_global;
        map (fun n -> Wire.Read_node n) (int_bound 1000);
        return Wire.Query_stats;
        return Wire.Query_telemetry;
      ])

let gen_decided =
  QCheck.Gen.(
    map3
      (fun tag marginal propagate ->
        {
          Wire.tag;
          marginal;
          verdict =
            (if propagate then Mitos.Decision.Propagate
             else Mitos.Decision.Block);
        })
      gen_tag
      (float_bound_inclusive 1e6)
      bool)

let gen_response =
  QCheck.Gen.(
    oneof
      [
        return Wire.Pong;
        map
          (fun b -> Wire.Decisions b)
          (list_size (int_bound 4) (list_size (int_bound 6) gen_decided));
        map (fun g -> Wire.Published g) (float_bound_inclusive 1e9);
        map (fun g -> Wire.Global g) (float_bound_inclusive 1e9);
        map (fun v -> Wire.Node_value v) (float_bound_inclusive 1e9);
        map
          (fun ((served, decided), (publishes, (nodes, global))) ->
            Wire.Stats { served; decided; publishes; nodes; global })
          (pair
             (pair (int_bound 100000) (int_bound 100000))
             (pair (int_bound 100000)
                (pair (int_bound 64) (float_bound_inclusive 1e9))));
        map (fun s -> Wire.Err s) (string_size (int_bound 80));
      ])

let gen_trace =
  QCheck.Gen.(
    map3
      (fun a b c ->
        {
          Mitos_obs.Propagation.trace_id = Printf.sprintf "%016x%016x" a b;
          span_id = Printf.sprintf "%016x" c;
        })
      (int_bound max_int) (int_bound max_int) (int_bound max_int))

let qcheck_request_roundtrip =
  QCheck.Test.make ~name:"encode/decode request = id" ~count:500
    QCheck.(make gen_request)
    (fun req ->
      match Wire.decode_request_frame (Wire.encode_request ~id:7 req) with
      | Ok (7, None, req') -> req' = req
      | _ -> false)

(* v2 with and without a trace context: the decoded triple returns
   exactly what was sent *)
let qcheck_request_trace_roundtrip =
  QCheck.Test.make ~name:"encode/decode request+trace = id" ~count:500
    QCheck.(make Gen.(pair gen_request (option gen_trace)))
    (fun (req, trace) ->
      match
        Wire.decode_request_frame (Wire.encode_request ?trace ~id:7 req)
      with
      | Ok (7, trace', req') -> req' = req && trace' = trace
      | _ -> false)

(* a v1 peer's frames must keep decoding under the v2 decoder (no
   trace field to read), and a v2 encoder asked for v1 must refuse to
   smuggle a trace into a version that has no field for it *)
let qcheck_v1_frames_decode_under_v2 =
  QCheck.Test.make ~name:"v1 frames decode under v2, trace None" ~count:500
    QCheck.(make gen_request)
    (fun req ->
      match
        Wire.decode_request_frame (Wire.encode_request ~version:1 ~id:3 req)
      with
      | Ok (3, None, req') -> req' = req
      | _ -> false)

let qcheck_response_roundtrip =
  QCheck.Test.make ~name:"encode/decode response = id" ~count:500
    QCheck.(make gen_response)
    (fun resp ->
      match Wire.decode_response_frame (Wire.encode_response ~id:9 resp) with
      | Ok (9, resp') -> resp' = resp
      | _ -> false)

let qcheck_truncation_never_raises =
  QCheck.Test.make ~name:"every truncation is Error Truncated, no raise"
    ~count:200
    QCheck.(make gen_request)
    (fun req ->
      let frame = Wire.encode_request ~id:1 req in
      List.for_all
        (fun len ->
          match Wire.decode_request_frame (String.sub frame 0 len) with
          | Error (Wire.Truncated _) -> true
          | _ -> false)
        (List.init (String.length frame) Fun.id))

(* -- Wire: adversarial decoding ------------------------------------------ *)

let check_error name expect got =
  Alcotest.(check string) name expect
    (match got with
    | Ok _ -> "Ok"
    | Error err -> (
      match (err : Wire.error) with
      | Truncated _ -> "Truncated"
      | Oversized _ -> "Oversized"
      | Bad_version v -> Printf.sprintf "Bad_version %d" v
      | Bad_kind k -> Printf.sprintf "Bad_kind %d" k
      | Corrupt _ -> "Corrupt"))

let test_wire_oversized () =
  (* frame announcing 1 GiB, no body: must be rejected from the length
     prefix alone, before any allocation *)
  let e = Mitos_util.Codec.Enc.create () in
  Mitos_util.Codec.Enc.uint e (1 lsl 30);
  let bomb = Mitos_util.Codec.Enc.contents e in
  (match Wire.unframe bomb ~pos:0 with
  | Error (Wire.Oversized { announced; limit }) ->
    Alcotest.(check int) "announced" (1 lsl 30) announced;
    Alcotest.(check int) "limit" Wire.default_max_frame limit
  | _ -> Alcotest.fail "expected Oversized");
  (* a small max_frame tightens the guard *)
  let frame = Wire.encode_request ~id:1 Wire.Read_global in
  check_error "tight limit" "Oversized"
    (Wire.decode_request_frame ~max_frame:2 frame);
  (* an unterminated length varint is Corrupt, not an infinite loop *)
  check_error "overlong varint" "Corrupt"
    (Wire.unframe (String.make 12 '\xff') ~pos:0
     |> Result.map (fun (b, _) -> b))

let test_wire_bad_version () =
  let frame = Wire.encode_request ~id:3 Wire.Ping in
  match Wire.unframe frame ~pos:0 with
  | Ok (body, _) ->
    let hacked = Bytes.of_string body in
    Bytes.set hacked 0 '\x63' (* version 99 *);
    check_error "version 99" "Bad_version 99"
      (Wire.decode_request (Bytes.to_string hacked))
  | Error _ -> Alcotest.fail "self-made frame must unframe"

let test_wire_bad_kind () =
  (* version 1, id 0, kind 0x42: structurally fine, unknown meaning *)
  check_error "kind 0x42" "Bad_kind 66"
    (Wire.decode_request "\x01\x00\x42")

let test_wire_trailing_garbage () =
  let frame = Wire.encode_request ~id:1 Wire.Ping in
  check_error "bytes after frame" "Corrupt"
    (Wire.decode_request_frame (frame ^ "zz"));
  (* trailing bytes inside the body are a body-level violation *)
  (match Wire.unframe frame ~pos:0 with
  | Ok (body, _) ->
    check_error "bytes after payload" "Corrupt"
      (Wire.decode_request (body ^ "z"))
  | Error _ -> Alcotest.fail "self-made frame must unframe");
  (* an empty buffer is a framing-level Truncated; an empty *body* is
     a body-level Corrupt (the version byte is missing) *)
  check_error "empty buffer" "Truncated" (Wire.decode_request_frame "");
  check_error "empty body" "Corrupt" (Wire.decode_request "")

(* a byte-literal v1 ping frame body (version 1, id 7, kind 0x01):
   the compatibility contract pinned to concrete bytes, independent of
   our own encoder *)
let test_wire_v1_fixture () =
  (match Wire.decode_request "\x01\x07\x01" with
  | Ok (7, None, Wire.Ping) -> ()
  | _ -> Alcotest.fail "v1 ping fixture must decode");
  (* and the v2 form of the same request, with a trace context *)
  let trace =
    {
      Mitos_obs.Propagation.trace_id = String.make 32 'a';
      span_id = String.make 16 'b';
    }
  in
  (match Wire.decode_request (Wire.encode_request_body ~trace ~id:7 Wire.Ping) with
  | Ok (7, Some t, Wire.Ping) ->
    Alcotest.(check string) "trace id survives" trace.trace_id
      t.Mitos_obs.Propagation.trace_id;
    Alcotest.(check string) "span id survives" trace.span_id
      t.Mitos_obs.Propagation.span_id
  | _ -> Alcotest.fail "v2 ping with trace must decode");
  (* asking the encoder for v1 with a trace is a caller bug *)
  Alcotest.(check bool) "v1 + trace rejected" true
    (try
       ignore (Wire.encode_request_body ~version:1 ~trace ~id:1 Wire.Ping);
       false
     with Invalid_argument _ -> true);
  (* a corrupted trace field (invalid hex) is Corrupt, not a crash *)
  let body = Wire.encode_request_body ~trace ~id:7 Wire.Ping in
  let zapped = Bytes.of_string body in
  (* the 'a' run is the trace id; zap one char to non-hex *)
  (match String.index body 'a' with
  | i -> Bytes.set zapped i 'z'
  | exception Not_found -> Alcotest.fail "trace id bytes not found");
  check_error "invalid trace hex" "Corrupt"
    (Wire.decode_request (Bytes.to_string zapped))

let test_wire_error_offsets () =
  (* the reported byte offset points at the failure, not at zero *)
  (match Wire.decode_request_frame "" with
  | Error (Wire.Truncated { offset }) ->
    Alcotest.(check int) "empty buffer fails at 0" 0 offset
  | _ -> Alcotest.fail "expected Truncated");
  let frame = Wire.encode_request ~id:1 Wire.Ping in
  (match Wire.decode_request_frame (String.sub frame 0 2) with
  | Error (Wire.Truncated { offset }) ->
    Alcotest.(check bool) "truncation offset past length prefix" true
      (offset > 0)
  | _ -> Alcotest.fail "expected Truncated");
  match Wire.decode_request_frame (frame ^ "zz") with
  | Error (Wire.Corrupt { offset; _ }) ->
    Alcotest.(check int) "trailing bytes flagged at frame end" 
      (String.length frame) offset
  | _ -> Alcotest.fail "expected Corrupt"

let test_wire_unknown_tag_type () =
  (* candidate with tag-type 200: Corrupt, not Invalid_argument *)
  let e = Mitos_util.Codec.Enc.create () in
  Mitos_util.Codec.Enc.uint e 1 (* version *);
  Mitos_util.Codec.Enc.uint e 5 (* id *);
  Mitos_util.Codec.Enc.uint e 0x02 (* decide *);
  Mitos_util.Codec.Enc.list e
    (fun () ->
      Mitos_util.Codec.Enc.uint e 4 (* space *);
      Mitos_util.Codec.Enc.float e 0.0;
      Mitos_util.Codec.Enc.list e
        (fun () ->
          Mitos_util.Codec.Enc.uint e 200 (* no such tag type *);
          Mitos_util.Codec.Enc.uint e 1;
          Mitos_util.Codec.Enc.uint e 1)
        [ () ])
    [ () ];
  check_error "unknown tag type" "Corrupt"
    (Wire.decode_request (Mitos_util.Codec.Enc.contents e))

(* -- Transport ------------------------------------------------------------ *)

let test_endpoint_strings () =
  let roundtrip s =
    match Transport.endpoint_of_string s with
    | Ok ep -> Transport.endpoint_to_string ep
    | Error msg -> "error: " ^ msg
  in
  Alcotest.(check string) "tcp" "tcp://h:9" (roundtrip "tcp://h:9");
  Alcotest.(check string) "bare" "tcp://h:9" (roundtrip "h:9");
  Alcotest.(check string) "unix" "unix:///tmp/s" (roundtrip "unix:///tmp/s");
  Alcotest.(check string) "mem" "mem://x" (roundtrip "mem://x");
  List.iter
    (fun bad ->
      match Transport.endpoint_of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" bad)
    [ "mem://"; "unix://"; "nope"; "h:notaport"; ":9" ]

let test_loopback_registry () =
  let name = fresh_name "reg" in
  Transport.Loopback.register name (fun body -> body);
  Alcotest.(check bool) "registered" true (Transport.Loopback.registered name);
  Alcotest.(check bool) "double registration rejected" true
    (try
       Transport.Loopback.register name (fun b -> b);
       false
     with Invalid_argument _ -> true);
  Transport.Loopback.unregister name;
  Alcotest.(check bool) "unregistered" false
    (Transport.Loopback.registered name);
  match Transport.connect (Transport.Memory name) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "connect to unregistered name must fail"

(* -- Server + Client over loopback ---------------------------------------- *)

let test_loopback_service () =
  with_server @@ fun service ep ->
  let c = ok_client (Client.connect ep) in
  ok_client (Client.ping c);
  Alcotest.(check (float 0.0)) "empty estimator" 0.0 (ok_client (Client.global c));
  let after = ok_client (Client.publish c ~node:2 7.5) in
  Alcotest.(check (float 0.0)) "publish returns new global" 7.5 after;
  Alcotest.(check (float 0.0)) "read back" 7.5
    (ok_client (Client.read_node c 2));
  let stats = ok_client (Client.stats c) in
  Alcotest.(check int) "publishes counted" 1 stats.Wire.publishes;
  Alcotest.(check int) "requests counted" 5 stats.Wire.served;
  (* out-of-range node: typed remote error, service keeps going *)
  (match Client.publish c ~node:99 1.0 with
  | Error (Client.Remote _) -> ()
  | _ -> Alcotest.fail "expected Remote error");
  ok_client (Client.ping c);
  Client.close c;
  (match Client.ping c with
  | Error Client.Closed -> ()
  | _ -> Alcotest.fail "expected Closed");
  ignore service

let test_loopback_decide_matches_alg2 () =
  with_server @@ fun _service ep ->
  let c = ok_client (Client.connect ep) in
  ignore (ok_client (Client.publish c ~node:0 123.0));
  let candidates =
    [
      (Tag.make Tag_type.Network 1, 5);
      (Tag.make Tag_type.File 2, 17);
      (Tag.make Tag_type.Export_table 3, 2);
    ]
  in
  let req = { Wire.space = 2; pollution = 10.0; candidates } in
  let outcomes = ok_client (Client.decide c [ req; req ]) in
  Alcotest.(check int) "one outcome list per request" 2 (List.length outcomes);
  let expected =
    let count tag =
      match List.find_opt (fun (t, _) -> Tag.equal t tag) candidates with
      | Some (_, n) -> n
      | None -> 0
    in
    (* the server adds its estimator's global to the request's local
       pollution *)
    Mitos.Decision.alg2 params
      { Mitos.Decision.count; pollution = 10.0 +. 123.0 }
      ~space:2 (List.map fst candidates)
  in
  List.iter
    (fun outcome ->
      List.iter2
        (fun (got : Wire.decided) (want : Mitos.Decision.ranked) ->
          Alcotest.(check bool) "same tag" true (Tag.equal got.tag want.tag);
          Alcotest.(check (float 0.0)) "same marginal" want.marginal
            got.marginal;
          Alcotest.(check bool) "same verdict" true
            (got.verdict = want.verdict))
        outcome expected)
    outcomes;
  Client.close c

let test_malformed_body_gets_err_response () =
  with_server @@ fun service ep ->
  ignore service;
  let conn =
    match Transport.connect ep with
    | Ok c -> c
    | Error msg -> Alcotest.fail msg
  in
  (match Transport.send conn "\xde\xad\xbe\xef" with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (match Transport.recv conn with
  | Ok body -> (
    match Wire.decode_response body with
    | Ok (0, Wire.Err _) -> ()
    | _ -> Alcotest.fail "expected Err response with id 0")
  | Error _ -> Alcotest.fail "expected a response body");
  Transport.close conn

(* -- Client retry --------------------------------------------------------- *)

let test_backoff_schedule () =
  Alcotest.(check (list (float 1e-12)))
    "deterministic exponential" [ 0.05; 0.1; 0.2 ]
    (Client.backoff_schedule ~retries:3 ~backoff:0.05);
  Alcotest.(check (list (float 1e-12)))
    "empty for zero retries" []
    (Client.backoff_schedule ~retries:0 ~backoff:0.05)

let test_retry_then_succeed () =
  let name = fresh_name "flaky" in
  let failures_left = ref 2 in
  Transport.Loopback.register name (fun body ->
      if !failures_left > 0 then begin
        decr failures_left;
        failwith "injected fault"
      end
      else
        match Wire.decode_request body with
        | Ok (id, _, Wire.Ping) -> Wire.encode_response_body ~id Wire.Pong
        | _ -> Wire.encode_response_body ~id:0 (Wire.Err "unexpected"));
  Fun.protect
    ~finally:(fun () -> Transport.Loopback.unregister name)
    (fun () ->
      let c = ok_client (Client.connect ~retries:3 (Transport.Memory name)) in
      ok_client (Client.ping c);
      Alcotest.(check int) "two retries spent" 2 (Client.retries_used c);
      Client.close c)

let test_retries_exhausted () =
  let name = fresh_name "dead" in
  Transport.Loopback.register name (fun _ -> failwith "always down");
  Fun.protect
    ~finally:(fun () -> Transport.Loopback.unregister name)
    (fun () ->
      let c = ok_client (Client.connect ~retries:2 (Transport.Memory name)) in
      (match Client.ping c with
      | Error (Client.Retries_exhausted { attempts; _ }) ->
        Alcotest.(check int) "first try + 2 retries" 3 attempts
      | Error err -> Alcotest.fail (Client.error_to_string err)
      | Ok () -> Alcotest.fail "ping cannot succeed");
      Client.close c)

let test_connect_refused () =
  match Client.connect (Transport.Tcp { host = "127.0.0.1"; port = 1 }) with
  | Error (Client.Connect _) -> ()
  | Error err -> Alcotest.fail (Client.error_to_string err)
  | Ok _ -> Alcotest.fail "connect to port 1 must fail"

(* -- Server + Client over TCP --------------------------------------------- *)

let test_tcp_service () =
  let config = { Server.default_config with workers = 2; read_timeout = 2.0 } in
  let service = Server.create ~config ~params () in
  let listener =
    Server.start service (Transport.Tcp { host = "127.0.0.1"; port = 0 })
  in
  Fun.protect
    ~finally:(fun () -> Server.stop listener)
    (fun () ->
      let ep = Server.endpoint listener in
      (match ep with
      | Transport.Tcp { port; _ } ->
        Alcotest.(check bool) "kernel picked a port" true (port > 0)
      | _ -> Alcotest.fail "expected a TCP endpoint");
      (* two concurrent clients on the worker pool *)
      let c1 = ok_client (Client.connect ~timeout:2.0 ep) in
      let c2 = ok_client (Client.connect ~timeout:2.0 ep) in
      ok_client (Client.ping c1);
      ok_client (Client.ping c2);
      ignore (ok_client (Client.publish c1 ~node:0 3.0));
      Alcotest.(check (float 0.0)) "estimator shared across connections" 3.0
        (ok_client (Client.global c2));
      let outcomes =
        ok_client
          (Client.decide c2
             [
               {
                 Wire.space = 1;
                 pollution = 0.0;
                 candidates = [ (Tag.make Tag_type.Network 1, 3) ];
               };
             ])
      in
      Alcotest.(check int) "decided" 1 (List.length outcomes);
      Client.close c1;
      Client.close c2)

(* -- Adversarial frames mid-stream on an established connection ----------- *)

let raw_conn ep =
  match Transport.connect ~timeout:2.0 ep with
  | Ok conn -> conn
  | Error msg -> Alcotest.fail msg

let raw_send conn body =
  match Transport.send conn body with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let raw_roundtrip conn request ~id =
  raw_send conn (Wire.encode_request_body ~id request);
  match Transport.recv conn with
  | Error err -> Alcotest.fail (Wire.error_to_string err)
  | Ok body -> (
    match Wire.decode_response body with
    | Ok (got_id, response) ->
      Alcotest.(check int) "reply id" id got_id;
      response
    | Error err -> Alcotest.fail (Wire.error_to_string err))

let test_corrupt_frame_mid_stream () =
  (* a corrupt body on an established connection must get a typed Err
     and leave both that connection and its siblings serving *)
  let config = { Server.default_config with workers = 2; read_timeout = 2.0 } in
  let service = Server.create ~config ~params () in
  let listener =
    Server.start service (Transport.Tcp { host = "127.0.0.1"; port = 0 })
  in
  Fun.protect
    ~finally:(fun () -> Server.stop listener)
    (fun () ->
      let ep = Server.endpoint listener in
      let sibling = ok_client (Client.connect ~timeout:2.0 ep) in
      let conn = raw_conn ep in
      Fun.protect
        ~finally:(fun () ->
          Transport.close conn;
          Client.close sibling)
        (fun () ->
          (* healthy first: the connection is established and serving *)
          (match raw_roundtrip conn Wire.Ping ~id:7 with
          | Wire.Pong -> ()
          | _ -> Alcotest.fail "expected Pong");
          (* mid-stream corruption: well-framed, body version forced
             invalid — the strict decoder must answer, not act *)
          let bad = Bytes.of_string (Wire.encode_request_body ~id:8 Wire.Ping) in
          Bytes.set bad 0 '\xff';
          raw_send conn (Bytes.to_string bad);
          (match Transport.recv conn with
          | Ok body -> (
            match Wire.decode_response body with
            | Ok (0, Wire.Err _) -> ()
            | Ok (id, _) -> Alcotest.failf "want Err with id 0, got id %d" id
            | Error err -> Alcotest.fail (Wire.error_to_string err))
          | Error err -> Alcotest.fail (Wire.error_to_string err));
          (* the poisoned frame must not poison the stream: the SAME
             connection still serves *)
          (match raw_roundtrip conn Wire.Ping ~id:9 with
          | Wire.Pong -> ()
          | _ -> Alcotest.fail "expected Pong after corrupt frame");
          (* and the sibling connection never noticed *)
          ok_client (Client.ping sibling);
          ignore (ok_client (Client.publish sibling ~node:0 2.0));
          Alcotest.(check (float 0.0)) "sibling still consistent" 2.0
            (ok_client (Client.global sibling))))

let test_oversized_frame_hangs_up () =
  (* an announced frame past the server's bound is unrecoverable at
     the framing layer: one typed Err, then hangup — siblings
     unaffected *)
  let config =
    { Server.default_config with
      workers = 2; read_timeout = 2.0; max_frame = 4096 }
  in
  let service = Server.create ~config ~params () in
  let listener =
    Server.start service (Transport.Tcp { host = "127.0.0.1"; port = 0 })
  in
  Fun.protect
    ~finally:(fun () -> Server.stop listener)
    (fun () ->
      let ep = Server.endpoint listener in
      let sibling = ok_client (Client.connect ~timeout:2.0 ep) in
      let conn = raw_conn ep in
      Fun.protect
        ~finally:(fun () ->
          Transport.close conn;
          Client.close sibling)
        (fun () ->
          (match raw_roundtrip conn Wire.Ping ~id:1 with
          | Wire.Pong -> ()
          | _ -> Alcotest.fail "expected Pong");
          raw_send conn (String.make 5000 'x');
          (match Transport.recv conn with
          | Ok body -> (
            match Wire.decode_response body with
            | Ok (0, Wire.Err _) -> ()
            | Ok _ -> Alcotest.fail "want a typed Err before hangup"
            | Error err -> Alcotest.fail (Wire.error_to_string err))
          | Error err -> Alcotest.fail (Wire.error_to_string err));
          (* the server hung up: the next read finds a closed stream *)
          (match Transport.recv conn with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "server must hang up after oversize");
          (* the sibling's connection survived its neighbour's demise *)
          ok_client (Client.ping sibling)))

let test_connect_failure_classification () =
  Alcotest.(check bool) "refused" true
    (Transport.connect_failure "tcp://127.0.0.1:1: refused connection"
    = `Refused);
  Alcotest.(check bool) "loopback refusal" true
    (Transport.connect_failure "no loopback server named \"gone\"" = `Refused);
  Alcotest.(check bool) "timeout" true
    (Transport.connect_failure "connect timed out after 2.0s" = `Timeout);
  Alcotest.(check bool) "read timeout" true
    (Transport.connect_failure "read timeout" = `Timeout);
  Alcotest.(check bool) "unknown" true
    (Transport.connect_failure "network unreachable" = `Unknown);
  (* and the classifier agrees with a real refusal's message *)
  match Client.connect (Transport.Tcp { host = "127.0.0.1"; port = 1 }) with
  | Error (Client.Connect msg) ->
    Alcotest.(check bool) "live refusal classified" true
      (Transport.connect_failure msg = `Refused)
  | Error err -> Alcotest.fail (Client.error_to_string err)
  | Ok _ -> Alcotest.fail "connect to port 1 must fail"

let test_sharded_estimator_service_equivalent () =
  (* a 4-shard server must answer byte-for-byte like the unsharded
     one. Publishes are integer-valued, so the per-shard partial sums
     are exact in float arithmetic and the shard-grouped fold cannot
     differ from the flat one even bitwise. *)
  let run ~shards =
    with_server
      ~config:
        { Server.default_config with
          nodes = 8; workers = 0; estimator_shards = shards }
      (fun _service ep ->
        let c = ok_client (Client.connect ep) in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            let after_each =
              List.map
                (fun node ->
                  ok_client
                    (Client.publish c ~node (float_of_int ((node * 3) + 1))))
                [ 0; 1; 2; 3; 4; 5; 6; 7 ]
            in
            (* overwrites, including back to zero *)
            let g2 = ok_client (Client.publish c ~node:2 10.0) in
            let g5 = ok_client (Client.publish c ~node:5 0.0) in
            let g = ok_client (Client.global c) in
            let node3 = ok_client (Client.read_node c 3) in
            let outcomes =
              ok_client
                (Client.decide c
                   [
                     {
                       Wire.space = 2;
                       pollution = g;
                       candidates =
                         [
                           (Tag.make Tag_type.Network 1, 3);
                           (Tag.make Tag_type.File 2, 1);
                         ];
                     };
                   ])
            in
            (after_each, g2, g5, g, node3, outcomes)))
  in
  let a1, g2a, g5a, ga, n3a, o1 = run ~shards:1 in
  let a4, g2b, g5b, gb, n3b, o4 = run ~shards:4 in
  Alcotest.(check (list (float 0.0))) "running globals identical" a1 a4;
  Alcotest.(check (float 0.0)) "overwrite global identical" g2a g2b;
  Alcotest.(check (float 0.0)) "zeroing global identical" g5a g5b;
  Alcotest.(check (float 0.0)) "final global identical" ga gb;
  Alcotest.(check (float 0.0)) "per-node read identical" n3a n3b;
  Alcotest.(check bool) "decisions identical" true (o1 = o4)

let test_server_rejects_bad_shards () =
  Alcotest.(check bool) "zero estimator shards rejected" true
    (try
       ignore
         (Server.create
            ~config:{ Server.default_config with estimator_shards = 0 }
            ~params ());
       false
     with Invalid_argument _ -> true)

(* -- Executor -------------------------------------------------------------- *)

let test_executor_inline () =
  let e = Executor.create ~workers:0 () in
  let hits = ref 0 in
  Executor.submit e (fun () -> incr hits);
  Alcotest.(check int) "inline task ran synchronously" 1 !hits;
  Executor.submit e (fun () -> failwith "boom");
  Alcotest.(check int) "failure contained and counted" 1 (Executor.failures e);
  Executor.shutdown e;
  Alcotest.(check bool) "submit after shutdown rejected" true
    (try
       Executor.submit e (fun () -> ());
       false
     with Invalid_argument _ -> true)

let test_executor_parallel_drain () =
  let e = Executor.create ~workers:2 () in
  let hits = Atomic.make 0 in
  for _ = 1 to 100 do
    Executor.submit e (fun () -> Atomic.incr hits)
  done;
  Executor.shutdown e;
  Alcotest.(check int) "all tasks ran before join" 100 (Atomic.get hits);
  Alcotest.(check int) "nothing left queued" 0 (Executor.pending e)

(* -- Netcluster ------------------------------------------------------------ *)

let small_nodes n =
  List.init n (fun i -> W.Netbench.build ~seed:(50 + i) ~chunks:6 ())

let test_netcluster_byte_identical_to_cluster () =
  let sync_period = 16 in
  let inproc =
    let c =
      Mitos_distrib.Cluster.create ~params ~sync_period (small_nodes 3)
    in
    let rounds = Mitos_distrib.Cluster.run c in
    Netcluster.render (Netcluster.report_of_cluster ~rounds c)
  in
  let looped =
    with_server
      ~config:{ Server.default_config with nodes = 3; workers = 0 }
      (fun _service ep ->
        let t =
          Netcluster.create ~params ~sync_period ~endpoint:ep (small_nodes 3)
        in
        Fun.protect
          ~finally:(fun () -> Netcluster.close t)
          (fun () ->
            let rounds = Netcluster.run t in
            Netcluster.render (Netcluster.report_of_net ~rounds t)))
  in
  Alcotest.(check string) "loopback report byte-identical" inproc looped

let test_netcluster_validation () =
  with_server @@ fun _service ep ->
  Alcotest.(check bool) "empty nodes" true
    (try
       ignore (Netcluster.create ~params ~sync_period:1 ~endpoint:ep []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad period" true
    (try
       ignore
         (Netcluster.create ~params ~sync_period:0 ~endpoint:ep
            (small_nodes 1));
       false
     with Invalid_argument _ -> true)

(* -- Loadgen --------------------------------------------------------------- *)

let loadgen_config =
  {
    Loadgen.default_config with
    Loadgen.requests = 200;
    batch = 5;
    publish_every = 50;
  }

(* the request stream is a pure function of the seed: two fresh
   servers observe identical served/decided/published state *)
let test_loadgen_deterministic_stream () =
  let observe () =
    with_server @@ fun _service ep ->
    (match Loadgen.run ~config:loadgen_config ep with
    | Ok r ->
      Alcotest.(check int) "every decide answered" (200 * 5) r.Loadgen.decisions;
      Alcotest.(check int) "no remote errors" 0 r.Loadgen.remote_errors;
      Alcotest.(check int) "no retries" 0 r.Loadgen.retries
    | Error err -> Alcotest.fail (Client.error_to_string err));
    let c = ok_client (Client.connect ep) in
    let stats = ok_client (Client.stats c) in
    Client.close c;
    (stats.Wire.served, stats.Wire.decided, stats.Wire.publishes,
     stats.Wire.global)
  in
  let s1, d1, p1, g1 = observe () in
  let s2, d2, p2, g2 = observe () in
  Alcotest.(check int) "served equal" s1 s2;
  Alcotest.(check int) "decided equal" d1 d2;
  Alcotest.(check int) "publishes equal" p1 p2;
  Alcotest.(check (float 0.0)) "final global bit-equal" g1 g2

(* the tentpole acceptance check: with propagation on, server decide
   spans carry the trace id the client minted, so /tracez can stitch
   one distributed trace across both processes *)
let test_loadgen_trace_propagation_stitches () =
  let obs_server =
    Mitos_obs.Obs.create ~clock:(Mitos_obs.Obs_clock.real ()) ()
  in
  let service = Server.create ~obs:obs_server ~params () in
  let listener =
    Server.start service (Transport.Tcp { host = "127.0.0.1"; port = 0 })
  in
  let obs_client =
    Mitos_obs.Obs.create ~clock:(Mitos_obs.Obs_clock.real ()) ()
  in
  let config =
    { loadgen_config with Loadgen.requests = 100; propagation = true }
  in
  let report =
    Fun.protect
      ~finally:(fun () -> Server.stop listener)
      (fun () ->
        match
          Loadgen.run ~config ~client_timeout:5.0 ~obs:obs_client
            (Server.endpoint listener)
        with
        | Ok r -> r
        | Error err -> Alcotest.fail (Client.error_to_string err))
  in
  let sample =
    match report.Loadgen.trace_id with
    | Some id -> id
    | None -> Alcotest.fail "propagation on but no sample trace id"
  in
  Alcotest.(check bool) "sample id is valid" true
    (Mitos_obs.Propagation.is_valid_trace_id sample);
  (* every server span must carry a client-minted trace id *)
  let stitched = ref 0 and total = ref 0 in
  Array.iter
    (function
      | Mitos_obs.Tracer.Begin { name; args; _ }
        when String.length name >= 7 && String.sub name 0 7 = "server." ->
        incr total;
        if
          List.exists
            (fun (k, v) ->
              k = "trace_id" && Mitos_obs.Propagation.is_valid_trace_id v)
            args
        then incr stitched
      | _ -> ())
    (Mitos_obs.Tracer.events (Mitos_obs.Obs.tracer obs_server));
  Alcotest.(check bool) "server recorded spans" true (!total > 0);
  Alcotest.(check int) "every server span carries a trace id" !total
    !stitched;
  (* the sample id in particular appears on the server side *)
  Alcotest.(check bool) "sample trace id stitches" true
    (let jsonl =
       Mitos_obs.Chrome_trace.to_jsonl (Mitos_obs.Obs.tracer obs_server)
     in
     let n = String.length sample and h = String.length jsonl in
     let rec go i = i + n <= h && (String.sub jsonl i n = sample || go (i + 1)) in
     go 0);
  (* and the render advertises it for /tracez?trace_id= queries *)
  let rendered = Loadgen.render report in
  Alcotest.(check bool) "render prints the sample id" true
    (let needle = "sample trace id" in
     let n = String.length needle and h = String.length rendered in
     let rec go i =
       i + n <= h && (String.sub rendered i n = needle || go (i + 1))
     in
     go 0)

(* propagation must not change what the service computes: same seed,
   same final estimator state with and without it *)
let test_loadgen_propagation_state_identical () =
  let final_global propagation =
    with_server @@ fun _service ep ->
    (match
       Loadgen.run ~config:{ loadgen_config with Loadgen.propagation } ep
     with
    | Ok _ -> ()
    | Error err -> Alcotest.fail (Client.error_to_string err));
    let c = ok_client (Client.connect ep) in
    let stats = ok_client (Client.stats c) in
    Client.close c;
    (stats.Wire.served, stats.Wire.decided, stats.Wire.global)
  in
  let s1, d1, g1 = final_global false in
  let s2, d2, g2 = final_global true in
  Alcotest.(check int) "served equal" s1 s2;
  Alcotest.(check int) "decided equal" d1 d2;
  Alcotest.(check (float 0.0)) "global bit-equal" g1 g2

let test_loadgen_bench_merge () =
  let path = Filename.temp_file "mitos_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sys.remove path;
      let report =
        with_server @@ fun _service ep ->
        match Loadgen.run ~config:loadgen_config ep with
        | Ok r -> r
        | Error err -> Alcotest.fail (Client.error_to_string err)
      in
      Loadgen.merge_into_bench_json ~path ~jobs:1 report;
      (* merging twice must replace, not duplicate *)
      Loadgen.merge_into_bench_json ~path ~jobs:1 report;
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let doc = Mitos_util.Minijson.parse text in
      (match Mitos_util.Minijson.path [ "net_decide_batch"; "batch" ] doc with
      | Some (Mitos_util.Minijson.Num n) ->
        Alcotest.(check int) "batch recorded" 5 (int_of_float n)
      | _ -> Alcotest.fail "net_decide_batch.batch missing");
      (match Mitos_util.Minijson.path [ "schema" ] doc with
      | Some (Mitos_util.Minijson.Str s) ->
        Alcotest.(check string) "schema" "mitos-bench-decisions/1" s
      | _ -> Alcotest.fail "schema missing");
      match Mitos_util.Minijson.path [ "net_decide_batch"; "p50_ns" ] doc with
      | Some (Mitos_util.Minijson.Num _) -> ()
      | _ -> Alcotest.fail "p50_ns missing")

(* -- Wire + service: telemetry federation -------------------------------- *)

module Snapshot = Mitos_obs.Registry.Snapshot
module Fleet = Mitos_obs.Fleet
module Registry = Mitos_obs.Registry

(* snapshots are generated through a live registry so every row is
   well-formed by construction; equality goes through the canonical
   codec because an empty histogram's min/max are nan *)
let gen_snapshot =
  QCheck.Gen.(
    map3
      (fun adds gauge obs ->
        let reg = Registry.create () in
        List.iteri
          (fun i n ->
            Registry.add
              (Registry.counter reg
                 ~labels:[ ("op", Printf.sprintf "op%d" (i mod 3)) ]
                 "requests_total")
              n)
          adds;
        Registry.set_gauge (Registry.gauge reg "occupancy") gauge;
        let h =
          Registry.histogram reg ~lo:1.0 ~growth:2.0 ~buckets:6 "latency_ns"
        in
        List.iter (Mitos_obs.Histogram.observe h) obs;
        Registry.snapshot reg)
      (list_size (int_bound 5) (int_bound 1000))
      (float_bound_inclusive 1e6)
      (list_size (int_bound 10) (float_bound_inclusive 1e5)))

let gen_telemetry =
  QCheck.Gen.(
    map3
      (fun node healthy snapshot ->
        {
          Wire.node;
          healthy;
          health = (if healthy then "status: ok\n" else "status: breach\n");
          snapshot;
        })
      (string_size (int_bound 12))
      bool gen_snapshot)

let qcheck_telemetry_roundtrip =
  QCheck.Test.make ~name:"telemetry response round-trips" ~count:200
    QCheck.(make gen_telemetry)
    (fun r ->
      match
        Wire.decode_response_frame (Wire.encode_response ~id:5 (Wire.Telemetry r))
      with
      | Ok (5, Wire.Telemetry r') ->
        r'.Wire.node = r.Wire.node
        && r'.Wire.healthy = r.Wire.healthy
        && r'.Wire.health = r.Wire.health
        && Snapshot.encode r'.Wire.snapshot = Snapshot.encode r.Wire.snapshot
      | _ -> false)

let qcheck_telemetry_truncation_typed =
  QCheck.Test.make ~name:"truncated telemetry reply is a typed error"
    ~count:50
    QCheck.(make gen_telemetry)
    (fun r ->
      let frame = Wire.encode_response ~id:5 (Wire.Telemetry r) in
      List.for_all
        (fun len ->
          match Wire.decode_response_frame (String.sub frame 0 len) with
          | Error (Wire.Truncated _) -> true
          | _ -> false)
        (List.init (String.length frame) Fun.id))

let test_telemetry_adversarial () =
  let r =
    {
      Wire.node = "n1";
      healthy = true;
      health = "status: ok\n";
      snapshot =
        (let reg = Registry.create () in
         Registry.add (Registry.counter reg "requests_total") 7;
         let h =
           Registry.histogram reg ~lo:1.0 ~growth:2.0 ~buckets:6 "latency_ns"
         in
         Mitos_obs.Histogram.observe h 3.0;
         Registry.snapshot reg);
    }
  in
  let body = Wire.encode_response_body ~id:3 (Wire.Telemetry r) in
  (* every in-body truncation surfaces as Corrupt (the frame length
     was already validated by unframe at this layer), never a raise *)
  for len = 1 to String.length body - 1 do
    match Wire.decode_response (String.sub body 0 len) with
    | Error (Wire.Corrupt _) -> ()
    | Ok _ when len = String.length body -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "truncation at %d decoded" len)
    | Error e ->
      Alcotest.fail
        (Printf.sprintf "truncation at %d: unexpected %s" len
           (Wire.error_to_string e))
  done;
  check_error "trailing garbage" "Corrupt"
    (Wire.decode_response (body ^ "z"));
  (* an oversized frame is refused from the length prefix *)
  check_error "oversized telemetry frame" "Oversized"
    (Wire.decode_response_frame ~max_frame:8
       (Wire.encode_response ~id:3 (Wire.Telemetry r)));
  (* corrupt a value-kind tag: 9 names no instrument kind *)
  let corrupted = Bytes.of_string body in
  let tag_pos =
    (* the first Counter tag byte follows "requests_total" in the
       payload; find the name and skip name/labels/help framing *)
    let rec find i =
      if i + 14 > Bytes.length corrupted then
        Alcotest.fail "counter name not found in payload"
      else if Bytes.sub_string corrupted i 14 = "requests_total" then i + 14
      else find (i + 1)
    in
    (* name, empty label list (1 byte), empty help (1 byte) -> tag *)
    find 0 + 2
  in
  Bytes.set corrupted tag_pos '\x09';
  check_error "unknown value tag" "Corrupt"
    (Wire.decode_response (Bytes.to_string corrupted))

let test_client_telemetry () =
  with_server (fun service endpoint ->
      let client = ok_client (Client.connect endpoint) in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          ok_client (Client.ping client);
          let r = ok_client (Client.telemetry client) in
          Alcotest.(check string) "default node id" "node0" r.Wire.node;
          Alcotest.(check bool) "default probe healthy" true r.Wire.healthy;
          let counter_of op snap =
            List.fold_left
              (fun acc (row : Snapshot.row) ->
                match row.Snapshot.value with
                | Snapshot.Counter c
                  when row.Snapshot.name = "mitos_net_requests_total"
                       && List.assoc_opt "op" row.Snapshot.labels = Some op ->
                  acc + c
                | _ -> acc)
              0 snap
          in
          Alcotest.(check int) "ping visible in snapshot" 1
            (counter_of "ping" r.Wire.snapshot);
          (* the snapshot is cut before the telemetry request's own
             metrics are recorded — the property the federation
             byte-identity below rests on *)
          Alcotest.(check int) "snapshot excludes its own request" 0
            (counter_of "telemetry" r.Wire.snapshot);
          let r2 = ok_client (Client.telemetry client) in
          Alcotest.(check int) "previous telemetry request now visible" 1
            (counter_of "telemetry" r2.Wire.snapshot);
          (* a wired health probe reaches the reply *)
          Server.set_health_probe service (fun () ->
              (false, "status: breach (rule x)\n"));
          let r3 = ok_client (Client.telemetry client) in
          Alcotest.(check bool) "probe verdict in reply" false
            r3.Wire.healthy;
          Alcotest.(check string) "probe body in reply"
            "status: breach (rule x)\n" r3.Wire.health))

(* the tentpole's acceptance property: a 3-node mem:// cluster's
   federated snapshot equals the hand-merged per-node snapshots byte
   for byte. mem:// serves on the caller's domain and the telemetry
   reply excludes its own request, so the wire adds nothing. *)
let test_fleet_federation_byte_identity () =
  let mk i =
    let config =
      { Server.default_config with
        Server.node_id = Printf.sprintf "n%d" i }
    in
    let service = Server.create ~config ~params () in
    let name = fresh_name "fed" in
    let listener = Server.start service (Transport.Memory name) in
    (service, name, listener)
  in
  let members = List.init 3 mk in
  Fun.protect
    ~finally:(fun () -> List.iter (fun (_, _, l) -> Server.stop l) members)
    (fun () ->
      (* distinct deterministic traffic per node *)
      List.iteri
        (fun i (_, name, _) ->
          let c = ok_client (Client.connect (Transport.Memory name)) in
          for _ = 1 to (i + 1) * 3 do
            ok_client (Client.ping c)
          done;
          ignore (ok_client (Client.publish c ~node:0 (float_of_int (i + 1))));
          Client.close c)
        members;
      (* direct per-node snapshots, cut before any scrape *)
      let direct =
        List.map (fun (s, _, _) -> Registry.snapshot (Server.registry s))
          members
      in
      let clients =
        List.map
          (fun (_, name, _) ->
            ok_client (Client.connect (Transport.Memory name)))
          members
      in
      Fun.protect
        ~finally:(fun () -> List.iter Client.close clients)
        (fun () ->
          let fleet =
            Fleet.create
              (List.map2
                 (fun (_, name, _) c ->
                   ( name,
                     fun () ->
                       match Client.telemetry c with
                       | Ok r ->
                         Ok
                           {
                             Fleet.node = r.Wire.node;
                             healthy = r.Wire.healthy;
                             health = r.Wire.health;
                             snapshot = r.Wire.snapshot;
                           }
                       | Error e -> Error (Client.error_to_string e) ))
                 members clients)
          in
          Fleet.scrape fleet ~at:1.0;
          let hand =
            Snapshot.merge
              (List.mapi (fun i s -> (Printf.sprintf "n%d" i, s)) direct)
          in
          Alcotest.(check string) "wire merge byte-identical to hand merge"
            (Snapshot.encode hand)
            (Snapshot.encode (Fleet.merged fleet));
          Alcotest.(check string) "prometheus rendering identical"
            (Snapshot.to_prometheus hand)
            (Snapshot.to_prometheus (Fleet.merged fleet));
          Alcotest.(check bool) "fleet healthy" true (Fleet.healthy fleet);
          (* per-node ids came off the wire, not the configured names *)
          Alcotest.(check (list string)) "self-reported ids"
            [ "n0"; "n1"; "n2" ]
            (List.map (fun v -> v.Fleet.node_id) (Fleet.nodes fleet))))

(* a node whose health probe reports a firing burn-rate alert (what
   serve-decisions --burn-slo renders into /healthz) is attributed by
   name in the fleet rollup: the firing line rides the existing
   telemetry reply, no wire-protocol change *)
let test_fleet_alert_attribution_over_wire () =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    ln = 0 || go 0
  in
  let mk i =
    let config =
      { Server.default_config with
        Server.node_id = Printf.sprintf "n%d" i }
    in
    let service = Server.create ~config ~params () in
    let name = fresh_name "alrt" in
    let listener = Server.start service (Transport.Memory name) in
    (service, name, listener)
  in
  let members = List.init 3 mk in
  Fun.protect
    ~finally:(fun () -> List.iter (fun (_, _, l) -> Server.stop l) members)
    (fun () ->
      (* n1 runs burn-rate rules and has one firing *)
      (match members with
      | [ _; (s1, _, _); _ ] ->
        Server.set_health_probe s1 (fun () ->
            (false, "status: breach\nfiring: hot_path severity=page\n"))
      | _ -> Alcotest.fail "expected three members");
      let clients =
        List.map
          (fun (_, name, _) ->
            ok_client (Client.connect (Transport.Memory name)))
          members
      in
      Fun.protect
        ~finally:(fun () -> List.iter Client.close clients)
        (fun () ->
          let fleet =
            Fleet.create
              (List.map2
                 (fun (_, name, _) c ->
                   ( name,
                     fun () ->
                       match Client.telemetry c with
                       | Ok r ->
                         Ok
                           {
                             Fleet.node = r.Wire.node;
                             healthy = r.Wire.healthy;
                             health = r.Wire.health;
                             snapshot = r.Wire.snapshot;
                           }
                       | Error e -> Error (Client.error_to_string e) ))
                 members clients)
          in
          Fleet.scrape fleet ~at:1.0;
          Alcotest.(check bool) "fleet breached" false (Fleet.healthy fleet);
          (* the firing alert is attributed to n1 and only n1 *)
          Alcotest.(check (list (list string))) "per-node firing sets"
            [ []; [ "hot_path" ]; [] ]
            (List.map
               (fun v -> List.map fst v.Fleet.node_firing)
               (Fleet.nodes fleet));
          let health = Fleet.render_health fleet in
          Alcotest.(check bool) "status line names node + alert" true
            (contains health "status: breach (node n1 alert hot_path)");
          Alcotest.(check bool) "per-node firing line attributed" true
            (contains health "firing: hot_path severity=page node=n1");
          Alcotest.(check bool) "federated gauge labelled with the node" true
            (contains
               (Snapshot.to_prometheus (Fleet.federated fleet))
               "mitos_fleet_alert_firing{alert=\"hot_path\",node=\"n1\"} 2");
          Alcotest.(check bool) "fleet_nodes_firing signal" true
            (List.assoc_opt "fleet_nodes_firing" (Fleet.signals fleet)
            = Some 1.0)))

let () =
  Alcotest.run "mitos_net"
    [
      ( "wire",
        [
          QCheck_alcotest.to_alcotest qcheck_request_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_response_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_truncation_never_raises;
          Alcotest.test_case "oversized" `Quick test_wire_oversized;
          Alcotest.test_case "bad version" `Quick test_wire_bad_version;
          Alcotest.test_case "bad kind" `Quick test_wire_bad_kind;
          Alcotest.test_case "trailing garbage" `Quick
            test_wire_trailing_garbage;
          Alcotest.test_case "unknown tag type" `Quick
            test_wire_unknown_tag_type;
          QCheck_alcotest.to_alcotest qcheck_request_trace_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_v1_frames_decode_under_v2;
          Alcotest.test_case "v1 fixture + v2 trace" `Quick
            test_wire_v1_fixture;
          Alcotest.test_case "error offsets" `Quick test_wire_error_offsets;
          QCheck_alcotest.to_alcotest qcheck_telemetry_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_telemetry_truncation_typed;
          Alcotest.test_case "telemetry adversarial" `Quick
            test_telemetry_adversarial;
        ] );
      ( "transport",
        [
          Alcotest.test_case "endpoint strings" `Quick test_endpoint_strings;
          Alcotest.test_case "loopback registry" `Quick test_loopback_registry;
        ] );
      ( "service",
        [
          Alcotest.test_case "loopback service" `Quick test_loopback_service;
          Alcotest.test_case "decide matches alg2" `Quick
            test_loopback_decide_matches_alg2;
          Alcotest.test_case "malformed body -> Err" `Quick
            test_malformed_body_gets_err_response;
          Alcotest.test_case "tcp service" `Quick test_tcp_service;
          Alcotest.test_case "corrupt frame mid-stream" `Quick
            test_corrupt_frame_mid_stream;
          Alcotest.test_case "oversized frame hangs up" `Quick
            test_oversized_frame_hangs_up;
          Alcotest.test_case "connect failure classification" `Quick
            test_connect_failure_classification;
          Alcotest.test_case "sharded estimator equivalent" `Quick
            test_sharded_estimator_service_equivalent;
          Alcotest.test_case "bad shard count rejected" `Quick
            test_server_rejects_bad_shards;
          Alcotest.test_case "client telemetry" `Quick test_client_telemetry;
          Alcotest.test_case "fleet federation byte identity" `Quick
            test_fleet_federation_byte_identity;
          Alcotest.test_case "fleet alert attribution over wire" `Quick
            test_fleet_alert_attribution_over_wire;
        ] );
      ( "client",
        [
          Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
          Alcotest.test_case "retry then succeed" `Quick test_retry_then_succeed;
          Alcotest.test_case "retries exhausted" `Quick test_retries_exhausted;
          Alcotest.test_case "connect refused" `Quick test_connect_refused;
        ] );
      ( "executor",
        [
          Alcotest.test_case "inline" `Quick test_executor_inline;
          Alcotest.test_case "parallel drain" `Quick
            test_executor_parallel_drain;
        ] );
      ( "netcluster",
        [
          Alcotest.test_case "byte-identical to in-process" `Quick
            test_netcluster_byte_identical_to_cluster;
          Alcotest.test_case "validation" `Quick test_netcluster_validation;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "deterministic stream" `Quick
            test_loadgen_deterministic_stream;
          Alcotest.test_case "trace propagation stitches" `Quick
            test_loadgen_trace_propagation_stitches;
          Alcotest.test_case "propagation state-identical" `Quick
            test_loadgen_propagation_state_identical;
          Alcotest.test_case "bench merge" `Quick test_loadgen_bench_merge;
        ] );
    ]
