(* The domain pool: ordering, determinism, failure propagation, and
   the byte-identical-report guarantee the experiment layer relies
   on. *)

module Pool = Mitos_parallel.Pool
module E = Mitos_experiments

let check = Alcotest.check
let checki = check Alcotest.int
let checkil = check (Alcotest.list Alcotest.int)

(* -- scheduling ------------------------------------------------------- *)

let test_map_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 (fun i -> i) in
      checkil "input order" (List.map (fun x -> x * x) xs)
        (Pool.map pool ~f:(fun x -> x * x) xs);
      checkil "chunk=1" (List.map (fun x -> x + 1) xs)
        (Pool.map ~chunk:1 pool ~f:(fun x -> x + 1) xs);
      checkil "chunk larger than batch" (List.map (fun x -> -x) xs)
        (Pool.map ~chunk:1000 pool ~f:(fun x -> -x) xs))

let test_map_empty_and_singleton () =
  Pool.with_pool ~jobs:3 (fun pool ->
      checkil "empty" [] (Pool.map pool ~f:(fun x -> x) []);
      checkil "singleton" [ 7 ] (Pool.map pool ~f:(fun x -> x + 6) [ 1 ]))

let test_jobs_one_inline () =
  (* jobs=1 must not spawn domains: tasks run in the calling domain,
     so domain-local state is visible across tasks *)
  Pool.with_pool ~jobs:1 (fun pool ->
      checki "jobs" 1 (Pool.jobs pool);
      let acc = ref 0 in
      Pool.iter pool ~f:(fun x -> acc := !acc + x) [ 1; 2; 3; 4 ];
      checki "inline effects" 10 !acc)

let test_mapi_and_map_array () =
  Pool.with_pool ~jobs:4 (fun pool ->
      checkil "mapi" [ 0; 2; 4; 6 ]
        (Pool.mapi pool ~f:(fun i x -> i + x) [ 0; 1; 2; 3 ]);
      check
        (Alcotest.array Alcotest.int)
        "map_array"
        [| 1; 4; 9; 16 |]
        (Pool.map_array pool ~f:(fun x -> x * x) [| 1; 2; 3; 4 |]))

let test_map_reduce_order () =
  (* non-commutative combine: string concat must come out in input
     order regardless of scheduling *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 50 (fun i -> i) in
      let expect =
        List.fold_left ( ^ ) "" (List.map string_of_int xs)
      in
      check Alcotest.string "left fold in input order" expect
        (Pool.map_reduce pool ~map:string_of_int ~combine:( ^ ) ~init:"" xs))

let test_map_seeded_jobs_invariant () =
  let xs = List.init 20 (fun i -> i) in
  let f ~rng x = (x, Mitos_util.Rng.int rng 1_000_000) in
  let at jobs =
    Pool.with_pool ~jobs (fun pool -> Pool.map_seeded pool ~seed:42 ~f xs)
  in
  let r1 = at 1 and r2 = at 2 and r4 = at 4 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "jobs=1 = jobs=2" r1 r2;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "jobs=1 = jobs=4" r1 r4

let test_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (match
         Pool.map pool
           ~f:(fun x -> if x = 13 then failwith "boom" else x)
           (List.init 40 (fun i -> i))
       with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg -> check Alcotest.string "message" "boom" msg);
      (* the pool survives a failed batch *)
      checkil "pool still usable" [ 2; 4 ]
        (Pool.map pool ~f:(fun x -> 2 * x) [ 1; 2 ]))

let test_nested_map_inline () =
  (* a task that maps on its own pool must not deadlock: the inner
     batch runs inline *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let rows =
        Pool.map pool
          ~f:(fun i -> Pool.map pool ~f:(fun j -> (10 * i) + j) [ 1; 2; 3 ])
          [ 1; 2; 3; 4 ]
      in
      check
        (Alcotest.list (Alcotest.list Alcotest.int))
        "nested result"
        [ [ 11; 12; 13 ]; [ 21; 22; 23 ]; [ 31; 32; 33 ]; [ 41; 42; 43 ] ]
        rows)

let test_shutdown_idempotent () =
  let pool = Pool.create ~jobs:3 () in
  checkil "works" [ 1; 2; 3 ] (Pool.map pool ~f:(fun x -> x) [ 1; 2; 3 ]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (match Pool.map pool ~f:(fun x -> x) [ 1 ] with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
  | exception Invalid_argument _ -> ())

let test_map_opt () =
  checkil "None = List.map" [ 2; 4 ]
    (Pool.map_opt None ~f:(fun x -> 2 * x) [ 1; 2 ]);
  Pool.with_pool ~jobs:2 (fun pool ->
      checkil "Some pool = map" [ 2; 4 ]
        (Pool.map_opt (Some pool) ~f:(fun x -> 2 * x) [ 1; 2 ]))

let test_many_small_batches () =
  (* stress the batch handoff: many consecutive submissions must not
     wedge a worker on a stale epoch *)
  Pool.with_pool ~jobs:4 (fun pool ->
      for round = 1 to 200 do
        let n = 1 + (round mod 7) in
        let xs = List.init n (fun i -> i) in
        checkil
          (Printf.sprintf "round %d" round)
          (List.map (fun x -> x + round) xs)
          (Pool.map pool ~f:(fun x -> x + round) xs)
      done)

(* -- sharded executor -------------------------------------------------- *)

module Executor = Mitos_parallel.Executor

(* wait until [cond] holds or a generous deadline passes; the executor
   gives no completion callback, so tests poll a counter *)
let await ?(timeout_s = 10.0) cond =
  let t0 = Unix.gettimeofday () in
  while (not (cond ())) && Unix.gettimeofday () -. t0 < timeout_s do
    Domain.cpu_relax ()
  done;
  cond ()

let test_executor_drains () =
  let ex = Executor.create ~name:"test-drain" ~workers:3 () in
  let hits = Atomic.make 0 in
  for _ = 1 to 100 do
    Executor.submit ex (fun () -> Atomic.incr hits)
  done;
  Alcotest.(check bool) "all tasks ran" true
    (await (fun () -> Atomic.get hits = 100));
  (* pending counts running work too, so the last task's slot clears a
     beat after its effect is visible *)
  Alcotest.(check bool) "nothing pending" true
    (await (fun () -> Executor.pending ex = 0));
  checki "no failures" 0 (Executor.failures ex);
  Executor.shutdown ex;
  Executor.shutdown ex (* idempotent *)

let test_executor_submit_to_routing () =
  let ex = Executor.create ~name:"test-route" ~workers:4 () in
  let hits = Atomic.make 0 in
  (* any shard index is accepted: in-range, beyond the worker count,
     and negative all reduce modulo the shard count *)
  List.iter
    (fun shard -> Executor.submit_to ex ~shard (fun () -> Atomic.incr hits))
    [ 0; 1; 2; 3; 4; 17; -1; -5 ];
  Alcotest.(check bool) "all routed tasks ran" true
    (await (fun () -> Atomic.get hits = 8));
  Executor.shutdown ex

let test_executor_inline () =
  (* workers=0 runs every task inline in the caller, including the
     shard-pinned form *)
  let ex = Executor.create ~name:"test-inline" ~workers:0 () in
  let acc = ref 0 in
  Executor.submit ex (fun () -> acc := !acc + 1);
  Executor.submit_to ex ~shard:5 (fun () -> acc := !acc + 10);
  checki "inline effects immediate" 11 !acc;
  Executor.shutdown ex

let test_executor_failures_counted () =
  let ex = Executor.create ~name:"test-fail" ~workers:2 () in
  let ok = Atomic.make 0 in
  Executor.submit ex (fun () -> failwith "boom");
  Executor.submit ex (fun () -> Atomic.incr ok);
  Executor.submit ex (fun () -> failwith "boom again");
  Executor.submit ex (fun () -> Atomic.incr ok);
  Alcotest.(check bool) "survivors ran" true
    (await (fun () -> Atomic.get ok = 2 && Executor.failures ex = 2));
  checki "failures counted" 2 (Executor.failures ex);
  Executor.shutdown ex

let test_executor_concurrent_submit_stress () =
  (* several domains submitting (mixed routed/unrouted) while workers
     drain and steal: every task must run exactly once *)
  let ex = Executor.create ~name:"test-stress" ~workers:3 () in
  let hits = Atomic.make 0 in
  let per_domain = 2_000 in
  let submitters =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              if i land 1 = 0 then
                Executor.submit ex (fun () -> Atomic.incr hits)
              else
                Executor.submit_to ex ~shard:(d + i) (fun () ->
                    Atomic.incr hits)
            done))
  in
  List.iter Domain.join submitters;
  Alcotest.(check bool) "no lost or duplicated tasks" true
    (await (fun () -> Atomic.get hits = 4 * per_domain));
  checki "exact count" (4 * per_domain) (Atomic.get hits);
  Executor.shutdown ex

(* -- the report determinism contract ---------------------------------- *)

let markdown_of sections =
  String.concat "" (List.map E.Report.to_markdown sections)

let test_matrix_report_identical () =
  let workloads = [ "crypto"; "netbench" ] in
  let seq = markdown_of [ E.Matrix.run ~workloads () ] in
  List.iter
    (fun jobs ->
      let par =
        Pool.with_pool ~jobs (fun pool ->
            markdown_of [ E.Matrix.run ~workloads ~pool () ])
      in
      check Alcotest.string
        (Printf.sprintf "matrix report at jobs=%d" jobs)
        seq par)
    [ 1; 2; 4 ]

let test_validation_report_identical () =
  let seq = markdown_of [ E.Validation.run () ] in
  List.iter
    (fun jobs ->
      let par =
        Pool.with_pool ~jobs (fun pool ->
            markdown_of [ E.Validation.run ~pool () ])
      in
      check Alcotest.string
        (Printf.sprintf "validation report at jobs=%d" jobs)
        seq par)
    [ 1; 2; 4 ]

let test_fig3_report_identical () =
  let seq = markdown_of [ E.Fig3.run () ] in
  let par =
    Pool.with_pool ~jobs:3 (fun pool -> markdown_of [ E.Fig3.run ~pool () ])
  in
  check Alcotest.string "fig3 report" seq par

let () =
  Alcotest.run "mitos_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "empty and singleton" `Quick
            test_map_empty_and_singleton;
          Alcotest.test_case "jobs=1 runs inline" `Quick test_jobs_one_inline;
          Alcotest.test_case "mapi / map_array" `Quick test_mapi_and_map_array;
          Alcotest.test_case "map_reduce folds in input order" `Quick
            test_map_reduce_order;
          Alcotest.test_case "map_seeded independent of jobs" `Quick
            test_map_seeded_jobs_invariant;
          Alcotest.test_case "exception propagates, pool survives" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested map runs inline" `Quick
            test_nested_map_inline;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_shutdown_idempotent;
          Alcotest.test_case "map_opt" `Quick test_map_opt;
          Alcotest.test_case "many small batches" `Quick
            test_many_small_batches;
        ] );
      ( "executor",
        [
          Alcotest.test_case "drains to empty" `Quick test_executor_drains;
          Alcotest.test_case "submit_to routes modulo shards" `Quick
            test_executor_submit_to_routing;
          Alcotest.test_case "workers=0 runs inline" `Quick
            test_executor_inline;
          Alcotest.test_case "failures counted" `Quick
            test_executor_failures_counted;
          Alcotest.test_case "concurrent submit stress" `Quick
            test_executor_concurrent_submit_stress;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "matrix report identical at jobs 1/2/4" `Slow
            test_matrix_report_identical;
          Alcotest.test_case "validation report identical at jobs 1/2/4"
            `Quick test_validation_report_identical;
          Alcotest.test_case "fig3 report identical" `Quick
            test_fig3_report_identical;
        ] );
    ]
