open Mitos_tag

let tag ty i = Tag.make ty i
let net i = tag Tag_type.Network i
let file i = tag Tag_type.File i

(* -- Tag_type --------------------------------------------------------- *)

let test_type_int_roundtrip () =
  List.iter
    (fun ty ->
      Alcotest.(check bool) "of_int . to_int = id" true
        (Tag_type.equal ty (Tag_type.of_int (Tag_type.to_int ty))))
    Tag_type.all;
  Alcotest.(check int) "count" (List.length Tag_type.all) Tag_type.count;
  Alcotest.check_raises "out of range" (Invalid_argument "Tag_type.of_int: 99")
    (fun () -> ignore (Tag_type.of_int 99))

let test_type_string_roundtrip () =
  List.iter
    (fun ty ->
      Alcotest.(check bool) "of_string . to_string = id" true
        (Tag_type.equal ty (Tag_type.of_string (Tag_type.to_string ty))))
    Tag_type.all

let test_type_indices_dense_and_distinct () =
  let indices = List.map Tag_type.to_int Tag_type.all in
  Alcotest.(check (list int)) "dense 0..n-1"
    (List.init Tag_type.count Fun.id)
    (List.sort compare indices)

(* -- Tag --------------------------------------------------------------- *)

let test_tag_equality () =
  Alcotest.(check bool) "equal" true (Tag.equal (net 1) (net 1));
  Alcotest.(check bool) "id differs" false (Tag.equal (net 1) (net 2));
  Alcotest.(check bool) "type differs" false (Tag.equal (net 1) (file 1));
  Alcotest.(check int) "compare eq" 0 (Tag.compare (net 3) (net 3));
  Alcotest.(check bool) "hash consistent" true
    (Tag.hash (net 5) = Tag.hash (net 5))

let test_tag_registry () =
  let reg = Tag.registry () in
  let a = Tag.fresh reg Tag_type.Network in
  let b = Tag.fresh reg Tag_type.Network in
  let c = Tag.fresh reg Tag_type.File in
  Alcotest.(check int) "first network id" 1 (Tag.id a);
  Alcotest.(check int) "second network id" 2 (Tag.id b);
  Alcotest.(check int) "file counter independent" 1 (Tag.id c);
  Alcotest.(check int) "created network" 2 (Tag.created reg Tag_type.Network);
  Alcotest.(check int) "total" 3 (Tag.total_created reg)

let test_tag_codec () =
  let enc = Mitos_util.Codec.Enc.create () in
  Tag.encode enc (tag Tag_type.Export_table 42);
  let dec = Mitos_util.Codec.Dec.of_string (Mitos_util.Codec.Enc.contents enc) in
  Alcotest.(check bool) "roundtrip" true
    (Tag.equal (tag Tag_type.Export_table 42) (Tag.decode dec))

let test_tag_to_string () =
  Alcotest.(check string) "render" "network#7" (Tag.to_string (net 7))

(* -- Provenance -------------------------------------------------------- *)

let test_prov_add_and_order () =
  let p = Provenance.create 3 in
  Alcotest.(check bool) "empty" true (Provenance.is_empty p);
  Alcotest.(check bool) "added" true (Provenance.add p (net 1) = Provenance.Added);
  Alcotest.(check bool) "added2" true (Provenance.add p (net 2) = Provenance.Added);
  Alcotest.(check bool) "mem" true (Provenance.mem p (net 1));
  Alcotest.(check (list string)) "oldest first" [ "network#1"; "network#2" ]
    (List.map Tag.to_string (Provenance.to_list p))

let test_prov_no_duplicates () =
  (* constraint Eq. (7): a byte never holds two copies of one tag *)
  let p = Provenance.create 3 in
  ignore (Provenance.add p (net 1));
  Alcotest.(check bool) "duplicate rejected" true
    (Provenance.add p (net 1) = Provenance.Already_present);
  Alcotest.(check int) "cardinal 1" 1 (Provenance.cardinal p)

let test_prov_fifo_eviction () =
  let p = Provenance.create 2 in
  ignore (Provenance.add p (net 1));
  ignore (Provenance.add p (net 2));
  (match Provenance.add p (net 3) with
  | Provenance.Added_evicting victim ->
    Alcotest.(check string) "oldest evicted" "network#1" (Tag.to_string victim)
  | _ -> Alcotest.fail "expected eviction");
  Alcotest.(check (list string)) "fifo order" [ "network#2"; "network#3" ]
    (List.map Tag.to_string (Provenance.to_list p))

let test_prov_lru_eviction () =
  let p = Provenance.create ~eviction:Provenance.Lru 2 in
  ignore (Provenance.add p (net 1));
  ignore (Provenance.add p (net 2));
  Provenance.touch p (net 1);
  (* now net#2 is least recent *)
  (match Provenance.add p (net 3) with
  | Provenance.Added_evicting victim ->
    Alcotest.(check string) "lru evicted" "network#2" (Tag.to_string victim)
  | _ -> Alcotest.fail "expected eviction");
  Alcotest.(check bool) "net1 kept" true (Provenance.mem p (net 1))

let test_prov_reject () =
  let p = Provenance.create ~eviction:Provenance.Reject 1 in
  ignore (Provenance.add p (net 1));
  Alcotest.(check bool) "rejected" true (Provenance.add p (net 2) = Provenance.Rejected);
  Alcotest.(check bool) "original kept" true (Provenance.mem p (net 1))

let test_prov_remove_clear () =
  let p = Provenance.create 4 in
  ignore (Provenance.add p (net 1));
  ignore (Provenance.add p (file 1));
  Alcotest.(check bool) "removed" true (Provenance.remove p (net 1));
  Alcotest.(check bool) "absent now" false (Provenance.remove p (net 1));
  Alcotest.(check int) "one left" 1 (Provenance.cardinal p);
  let cleared = Provenance.clear p in
  Alcotest.(check int) "clear returns" 1 (List.length cleared);
  Alcotest.(check bool) "empty after clear" true (Provenance.is_empty p)

let test_prov_capacity_validation () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Provenance.create: capacity must be >= 1") (fun () ->
      ignore (Provenance.create 0))

let qcheck_prov_invariants =
  (* random op sequences: cardinal <= cap, mem agrees with to_list,
     no duplicates ever *)
  QCheck.Test.make ~name:"provenance invariants under random ops" ~count:200
    QCheck.(pair (int_range 1 5) (small_list (pair (int_range 0 2) (int_range 1 6))))
    (fun (cap, ops) ->
      let p = Provenance.create cap in
      List.iter
        (fun (op, id) ->
          let t = net id in
          match op with
          | 0 -> ignore (Provenance.add p t)
          | 1 -> ignore (Provenance.remove p t)
          | _ -> Provenance.touch p t)
        ops;
      let l = Provenance.to_list p in
      Provenance.cardinal p = List.length l
      && List.length l <= cap
      && List.length (List.sort_uniq Tag.compare l) = List.length l)

(* -- Tag_stats ---------------------------------------------------------- *)

let test_stats_incr_decr () =
  let s = Tag_stats.create () in
  Tag_stats.incr s (net 1);
  Tag_stats.incr s (net 1);
  Tag_stats.incr s (file 1);
  Alcotest.(check int) "count net1" 2 (Tag_stats.count s (net 1));
  Alcotest.(check int) "total" 3 (Tag_stats.total s);
  Alcotest.(check int) "per type" 2 (Tag_stats.per_type s Tag_type.Network);
  Alcotest.(check int) "distinct" 2 (Tag_stats.distinct s);
  Tag_stats.decr s (net 1);
  Alcotest.(check int) "after decr" 1 (Tag_stats.count s (net 1));
  Tag_stats.decr s (net 1);
  Alcotest.(check int) "distinct drops" 1 (Tag_stats.distinct s);
  Alcotest.(check int) "never seen" 0 (Tag_stats.count s (net 99))

let test_stats_decr_underflow () =
  let s = Tag_stats.create () in
  Alcotest.(check bool) "underflow raises" true
    (try Tag_stats.decr s (net 1); false with Invalid_argument _ -> true)

let test_stats_weighted_total () =
  let s = Tag_stats.create () in
  Tag_stats.incr s (net 1);
  Tag_stats.incr s (net 2);
  Tag_stats.incr s (file 1);
  let o ty = if Tag_type.equal ty Tag_type.Network then 2.0 else 0.5 in
  Alcotest.(check (float 1e-9)) "weighted" 4.5 (Tag_stats.weighted_total s o)

let test_stats_snapshot_and_arrays () =
  let s = Tag_stats.create () in
  Tag_stats.incr s (net 2);
  Tag_stats.incr s (net 1);
  Tag_stats.incr s (net 1);
  let snap = Tag_stats.snapshot s in
  Alcotest.(check (list (pair string int))) "sorted snapshot"
    [ ("network#1", 2); ("network#2", 1) ]
    (List.map (fun (t, n) -> (Tag.to_string t, n)) snap);
  Alcotest.(check int) "counts_array size" 2
    (Array.length (Tag_stats.counts_array s));
  Alcotest.(check int) "per-type array" 2
    (Array.length (Tag_stats.counts_of_type s Tag_type.Network));
  Alcotest.(check int) "other type empty" 0
    (Array.length (Tag_stats.counts_of_type s Tag_type.File))

let test_stats_copy_independent () =
  let s = Tag_stats.create () in
  Tag_stats.incr s (net 1);
  let c = Tag_stats.copy s in
  Tag_stats.incr s (net 1);
  Alcotest.(check int) "copy unchanged" 1 (Tag_stats.count c (net 1));
  Alcotest.(check int) "original updated" 2 (Tag_stats.count s (net 1))

(* -- Shadow -------------------------------------------------------------- *)

let mk_shadow ?(m_prov = 4) () =
  Shadow.create ~mem_capacity:1024 ~num_regs:8 ~m_prov ()

let test_shadow_taint_and_query () =
  let sh = mk_shadow () in
  ignore (Shadow.add_tag_addr sh 10 (net 1));
  ignore (Shadow.add_tag_addr sh 10 (file 1));
  ignore (Shadow.add_tag_reg sh 3 (net 1));
  Alcotest.(check bool) "addr tainted" true (Shadow.is_tainted_addr sh 10);
  Alcotest.(check bool) "reg tainted" true (Shadow.is_tainted_reg sh 3);
  Alcotest.(check bool) "untainted addr" false (Shadow.is_tainted_addr sh 11);
  Alcotest.(check int) "tags of addr" 2 (List.length (Shadow.tags_of_addr sh 10));
  Alcotest.(check bool) "has type" true
    (Shadow.addr_has_type sh 10 Tag_type.File);
  Alcotest.(check int) "tainted bytes" 1 (Shadow.tainted_bytes sh);
  Alcotest.(check int) "tainted regs" 1 (Shadow.tainted_regs sh);
  Alcotest.(check int) "count accounting" 2
    (Tag_stats.count (Shadow.stats sh) (net 1))

let test_shadow_set_replace_semantics () =
  let sh = mk_shadow () in
  ignore (Shadow.add_tag_addr sh 5 (net 1));
  Shadow.set_addr_tags sh 5 [ file 1; file 2 ];
  Alcotest.(check int) "replaced" 0 (Tag_stats.count (Shadow.stats sh) (net 1));
  Alcotest.(check int) "two new" 2 (List.length (Shadow.tags_of_addr sh 5));
  Shadow.set_addr_tags sh 5 [];
  Alcotest.(check bool) "cleared via empty set" false (Shadow.is_tainted_addr sh 5);
  Alcotest.(check int) "stats drained" 0 (Tag_stats.total (Shadow.stats sh))

let test_shadow_union_semantics () =
  let sh = mk_shadow () in
  Shadow.set_addr_tags sh 7 [ net 1 ];
  Shadow.union_into_addr sh 7 [ net 1; file 1 ];
  Alcotest.(check int) "no dup, one new" 2 (List.length (Shadow.tags_of_addr sh 7));
  Alcotest.(check int) "net count still 1" 1
    (Tag_stats.count (Shadow.stats sh) (net 1))

let test_shadow_space_left () =
  let sh = mk_shadow ~m_prov:2 () in
  Alcotest.(check int) "fresh byte" 2 (Shadow.space_left_addr sh 0);
  ignore (Shadow.add_tag_addr sh 0 (net 1));
  Alcotest.(check int) "one used" 1 (Shadow.space_left_addr sh 0);
  Alcotest.(check int) "reg space" 2 (Shadow.space_left_reg sh 0)

let test_shadow_detection_query () =
  let sh = mk_shadow () in
  Shadow.set_addr_tags sh 100 [ net 1 ];
  Shadow.union_into_addr sh 100 [ tag Tag_type.Export_table 1 ];
  Shadow.set_addr_tags sh 101 [ net 1 ];
  Shadow.set_addr_tags sh 102 [ tag Tag_type.Export_table 1 ];
  Alcotest.(check int) "both types" 1
    (Shadow.bytes_with_both sh Tag_type.Network Tag_type.Export_table);
  Alcotest.(check int) "network bytes" 2
    (Shadow.bytes_with_type sh Tag_type.Network)

let test_shadow_footprint_and_reset () =
  let sh = mk_shadow () in
  Alcotest.(check int) "empty footprint" 0 (Shadow.footprint_bytes sh);
  Shadow.set_addr_tags sh 1 [ net 1; file 1 ];
  let fp = Shadow.footprint_bytes sh in
  Alcotest.(check bool) "positive footprint" true (fp > 0);
  Shadow.set_addr_tags sh 2 [ net 1 ];
  Alcotest.(check bool) "grows" true (Shadow.footprint_bytes sh > fp);
  Shadow.reset sh;
  Alcotest.(check int) "reset footprint" 0 (Shadow.footprint_bytes sh);
  Alcotest.(check int) "reset stats" 0 (Tag_stats.total (Shadow.stats sh))

let test_shadow_least_marginal_eviction () =
  let sh =
    Shadow.create ~strategy:Shadow.Least_marginal ~mem_capacity:64
      ~num_regs:4 ~m_prov:2 ()
  in
  (* net#1 becomes the most-copied tag in the system *)
  for a = 0 to 9 do
    ignore (Shadow.add_tag_addr sh a (net 1))
  done;
  ignore (Shadow.add_tag_addr sh 20 (net 1));
  ignore (Shadow.add_tag_addr sh 20 (file 1));
  (* byte 20 is full; a scarce new tag should displace net#1 (11
     copies), not file#1 (1 copy) *)
  ignore (Shadow.add_tag_addr sh 20 (tag Tag_type.Process 1));
  let tags = Shadow.tags_of_addr sh 20 in
  Alcotest.(check bool) "scarce tag admitted" true
    (List.exists (Tag.equal (tag Tag_type.Process 1)) tags);
  Alcotest.(check bool) "scarce resident kept" true
    (List.exists (Tag.equal (file 1)) tags);
  Alcotest.(check bool) "overpropagated tag evicted" false
    (List.exists (Tag.equal (net 1)) tags);
  Alcotest.(check int) "counts follow" 10
    (Tag_stats.count (Shadow.stats sh) (net 1))

let test_shadow_least_marginal_rejects_common_newcomer () =
  let sh =
    Shadow.create ~strategy:Shadow.Least_marginal ~mem_capacity:64
      ~num_regs:4 ~m_prov:1 ()
  in
  for a = 0 to 9 do
    ignore (Shadow.add_tag_addr sh a (net 1))
  done;
  ignore (Shadow.add_tag_addr sh 20 (file 1));
  (* the newcomer is the most-copied tag: it is the one rejected *)
  Alcotest.(check bool) "common newcomer rejected" true
    (Shadow.add_tag_addr sh 20 (net 1) = Provenance.Rejected);
  Alcotest.(check bool) "resident intact" true
    (List.exists (Tag.equal (file 1)) (Shadow.tags_of_addr sh 20))

let test_shadow_paged_backend_equivalent () =
  (* the two storage backends must be observationally identical *)
  let ops sh =
    ignore (Shadow.add_tag_addr sh 0 (net 1));
    ignore (Shadow.add_tag_addr sh 4095 (net 2));
    (* page-boundary crossing *)
    ignore (Shadow.add_tag_addr sh 4096 (net 3));
    Shadow.set_addr_tags sh 10_000 [ file 1; net 1 ];
    Shadow.union_into_addr sh 10_000 [ net 2 ];
    Shadow.clear_addr sh 4095;
    ignore (Shadow.remove_tag_addr sh 10_000 (file 1));
    ( Shadow.tainted_bytes sh,
      Tag_stats.snapshot (Shadow.stats sh),
      List.map Tag.to_string (Shadow.tags_of_addr sh 10_000),
      Shadow.footprint_bytes sh,
      Shadow.bytes_with_type sh Tag_type.Network )
  in
  let hashed =
    ops (Shadow.create ~backend:Shadow.Hashed ~mem_capacity:20_000 ~num_regs:4 ~m_prov:4 ())
  in
  let paged =
    ops (Shadow.create ~backend:Shadow.Paged ~mem_capacity:20_000 ~num_regs:4 ~m_prov:4 ())
  in
  let h1, h2, h3, h4, h5 = hashed and p1, p2, p3, p4, p5 = paged in
  Alcotest.(check int) "tainted bytes" h1 p1;
  Alcotest.(check (list (pair string int))) "stats"
    (List.map (fun (t, n) -> (Tag.to_string t, n)) h2)
    (List.map (fun (t, n) -> (Tag.to_string t, n)) p2);
  Alcotest.(check (list string)) "tags at byte" h3 p3;
  Alcotest.(check int) "footprint model" h4 p4;
  Alcotest.(check int) "type query" h5 p5;
  Alcotest.(check string) "backend name" "paged"
    (Shadow.backend_to_string Shadow.Paged)

let test_shadow_hashed_no_duplicate_bindings () =
  (* regression: Store.add on the Hashed backend must replace the
     binding for a live address, not stack a second one — a stacked
     stale list would resurface after clear_addr *)
  let sh =
    Shadow.create ~backend:Shadow.Hashed ~mem_capacity:1_000 ~num_regs:4
      ~m_prov:4 ()
  in
  (* taint, fully clear via remove_tag (empties the list and drops the
     store entry), then re-taint: the re-add used to Hashtbl.add a
     second binding on some code paths *)
  ignore (Shadow.add_tag_addr sh 7 (net 1));
  ignore (Shadow.remove_tag_addr sh 7 (net 1));
  ignore (Shadow.add_tag_addr sh 7 (file 1));
  ignore (Shadow.add_tag_addr sh 7 (net 2));
  Alcotest.(check (list string)) "single live list"
    [ "file#1"; "network#2" ]
    (List.sort compare (List.map Tag.to_string (Shadow.tags_of_addr sh 7)));
  Shadow.clear_addr sh 7;
  Alcotest.(check (list string)) "clear empties the byte" []
    (List.map Tag.to_string (Shadow.tags_of_addr sh 7));
  Alcotest.(check int) "no phantom tainted bytes" 0 (Shadow.tainted_bytes sh);
  (* iteration must see each address at most once *)
  ignore (Shadow.add_tag_addr sh 7 (net 3));
  let visits = ref 0 in
  Shadow.iter_tainted sh (fun addr _ -> if addr = 7 then incr visits);
  Alcotest.(check int) "one binding per address" 1 !visits

let test_shadow_paged_iteration_and_reset () =
  let sh =
    Shadow.create ~backend:Shadow.Paged ~mem_capacity:20_000 ~num_regs:4
      ~m_prov:4 ()
  in
  List.iter
    (fun a -> ignore (Shadow.add_tag_addr sh a (net 1)))
    [ 0; 4095; 4096; 8191; 19_999 ];
  let seen = ref [] in
  Shadow.iter_tainted sh (fun addr _ -> seen := addr :: !seen);
  Alcotest.(check (list int)) "iteration finds every page"
    [ 0; 4095; 4096; 8191; 19_999 ]
    (List.sort compare !seen);
  Shadow.reset sh;
  Alcotest.(check int) "reset" 0 (Shadow.tainted_bytes sh);
  Alcotest.(check int) "stats drained" 0 (Tag_stats.total (Shadow.stats sh))

let test_shadow_checkpoint_roundtrip () =
  let sh = mk_shadow () in
  Shadow.set_addr_tags sh 5 [ net 1; file 1 ];
  Shadow.set_addr_tags sh 900 [ net 2 ];
  ignore (Shadow.add_tag_reg sh 3 (file 2));
  let restored = Shadow.of_string (Shadow.to_string sh) in
  Alcotest.(check (list string)) "byte lists preserved in order"
    (List.map Tag.to_string (Shadow.tags_of_addr sh 5))
    (List.map Tag.to_string (Shadow.tags_of_addr restored 5));
  Alcotest.(check (list string)) "register lists preserved"
    (List.map Tag.to_string (Shadow.tags_of_reg sh 3))
    (List.map Tag.to_string (Shadow.tags_of_reg restored 3));
  Alcotest.(check int) "counts rebuilt exactly"
    (Tag_stats.total (Shadow.stats sh))
    (Tag_stats.total (Shadow.stats restored));
  Alcotest.(check int) "geometry preserved" (Shadow.m_prov sh)
    (Shadow.m_prov restored);
  (* stable re-serialization *)
  Alcotest.(check string) "canonical encoding" (Shadow.to_string sh)
    (Shadow.to_string restored)

let test_shadow_checkpoint_corruption () =
  let sh = mk_shadow () in
  Shadow.set_addr_tags sh 1 [ net 1 ];
  let s = Shadow.to_string sh in
  Alcotest.(check bool) "bad magic rejected" true
    (try ignore (Shadow.of_string ("XXXX" ^ s)); false
     with Mitos_util.Codec.Malformed _ -> true);
  Alcotest.(check bool) "truncation rejected" true
    (try ignore (Shadow.of_string (String.sub s 0 (String.length s - 2)));
       false
     with Mitos_util.Codec.Malformed _ -> true)

let qcheck_shadow_checkpoint_preserves_state =
  QCheck.Test.make ~name:"checkpoint roundtrip under random ops" ~count:60
    QCheck.(small_list (triple (int_range 0 2) (int_range 0 31) (int_range 1 5)))
    (fun ops ->
      let sh = Shadow.create ~mem_capacity:32 ~num_regs:4 ~m_prov:3 () in
      List.iter
        (fun (op, addr, id) ->
          match op with
          | 0 -> ignore (Shadow.add_tag_addr sh addr (net id))
          | 1 -> Shadow.union_into_addr sh addr [ file id ]
          | _ -> Shadow.clear_addr sh addr)
        ops;
      let restored = Shadow.of_string (Shadow.to_string sh) in
      Shadow.to_string restored = Shadow.to_string sh
      && Tag_stats.snapshot (Shadow.stats restored)
         = Tag_stats.snapshot (Shadow.stats sh))

let test_shadow_bounds () =
  let sh = mk_shadow () in
  Alcotest.(check bool) "oob raises" true
    (try ignore (Shadow.add_tag_addr sh 5000 (net 1)); false
     with Invalid_argument _ -> true)

(* the load-bearing invariant: Tag_stats counts are exactly the number
   of list memberships, under arbitrary interleavings of operations *)
let qcheck_shadow_counts_exact =
  QCheck.Test.make ~name:"shadow counts exactly match memberships" ~count:100
    QCheck.(small_list (triple (int_range 0 3) (int_range 0 31) (int_range 1 4)))
    (fun ops ->
      let sh = Shadow.create ~mem_capacity:32 ~num_regs:4 ~m_prov:2 () in
      List.iter
        (fun (op, addr, id) ->
          let t = net id in
          match op with
          | 0 -> ignore (Shadow.add_tag_addr sh addr t)
          | 1 -> Shadow.set_addr_tags sh addr [ t; file id ]
          | 2 -> Shadow.union_into_addr sh addr [ t ]
          | _ -> Shadow.clear_addr sh addr)
        ops;
      (* recount from the ground truth *)
      let recount = Tag_stats.create () in
      Shadow.iter_tainted sh (fun _addr tags ->
          List.iter (Tag_stats.incr recount) tags);
      let stats = Shadow.stats sh in
      Tag_stats.total stats = Tag_stats.total recount
      && Tag_stats.fold stats ~init:true ~f:(fun acc t n ->
             acc && Tag_stats.count recount t = n))

(* -- sharded shadow store ------------------------------------------------ *)

let test_shadow_shard_accessors () =
  let sh = mk_shadow () in
  Alcotest.(check int) "default unsharded" 1 (Shadow.shards sh);
  let sh4 =
    Shadow.create ~shards:4 ~mem_capacity:1024 ~num_regs:8 ~m_prov:4 ()
  in
  Alcotest.(check int) "four shards" 4 (Shadow.shards sh4);
  Alcotest.(check int) "occupancy arity" 4
    (Array.length (Shadow.shard_occupancy sh4));
  List.iter
    (fun a -> ignore (Shadow.add_tag_addr sh4 a (net (a + 1))))
    [ 0; 17; 123; 512; 900 ];
  Alcotest.(check int) "occupancy sums to tainted bytes"
    (Shadow.tainted_bytes sh4)
    (Array.fold_left ( + ) 0 (Shadow.shard_occupancy sh4));
  Shadow.reset sh4;
  Alcotest.(check (list int)) "reset zeroes every shard" [ 0; 0; 0; 0 ]
    (Array.to_list (Shadow.shard_occupancy sh4));
  Alcotest.(check bool) "zero shards rejected" true
    (try
       ignore (Shadow.create ~shards:0 ~mem_capacity:64 ~num_regs:4 ~m_prov:2 ());
       false
     with Invalid_argument _ -> true);
  (* the paged backend has no sub-tables: one pseudo-shard *)
  let sp =
    Shadow.create ~backend:Shadow.Paged ~mem_capacity:1024 ~num_regs:4
      ~m_prov:2 ()
  in
  Alcotest.(check int) "paged is one shard" 1
    (Array.length (Shadow.shard_occupancy sp))

let test_shadow_default_shards () =
  Alcotest.(check int) "initial default" 1 (Shadow.default_shards ());
  Shadow.set_default_shards 3;
  Fun.protect
    ~finally:(fun () -> Shadow.set_default_shards 1)
    (fun () ->
      Alcotest.(check int) "create inherits the process default" 3
        (Shadow.shards (mk_shadow ()));
      Alcotest.(check int) "explicit ~shards wins" 2
        (Shadow.shards
           (Shadow.create ~shards:2 ~mem_capacity:64 ~num_regs:4 ~m_prov:2 ())));
  Alcotest.(check bool) "invalid default rejected" true
    (try
       Shadow.set_default_shards 0;
       false
     with Invalid_argument _ -> true)

(* the tentpole equivalence: for any op sequence, a sharded store is
   observationally identical to the unsharded hashed store and to the
   paged backend — including the canonical checkpoint encoding, which
   sorts by address and so never sees the shard layout *)
let qcheck_shadow_sharded_equivalent =
  QCheck.Test.make
    ~name:"sharded store equals unsharded and paged observationally"
    ~count:100
    QCheck.(
      pair (int_range 2 6)
        (small_list (triple (int_range 0 3) (int_range 0 31) (int_range 1 4))))
    (fun (shards, ops) ->
      (* QCheck's int shrinker can step below the generator range;
         clamp so a genuine counterexample shrinks instead of dying
         on Shadow.create's shards validation *)
      let shards = max 1 shards in
      let observe sh =
        List.iter
          (fun (op, addr, id) ->
            let t = net id in
            match op with
            | 0 -> ignore (Shadow.add_tag_addr sh addr t)
            | 1 -> Shadow.set_addr_tags sh addr [ t; file id ]
            | 2 -> Shadow.union_into_addr sh addr [ t ]
            | _ -> Shadow.clear_addr sh addr)
          ops;
        ( Shadow.tainted_bytes sh,
          Tag_stats.snapshot (Shadow.stats sh),
          List.init 32 (fun a ->
              List.map Tag.to_string (Shadow.tags_of_addr sh a)),
          Shadow.bytes_with_type sh Tag_type.Network,
          Shadow.to_string sh )
      in
      let mk ?backend ?shards () =
        Shadow.create ?backend ?shards ~mem_capacity:32 ~num_regs:4 ~m_prov:2
          ()
      in
      let sharded = observe (mk ~shards ()) in
      let unsharded = observe (mk ()) in
      let paged = observe (mk ~backend:Shadow.Paged ()) in
      (* the checkpoint encoding embeds the backend kind, so it is
         only byte-comparable within the Hashed backend; the Paged
         twin is compared on the other observations *)
      let sans_checkpoint (t, s, l, b, _) = (t, s, l, b) in
      sharded = unsharded && sans_checkpoint sharded = sans_checkpoint paged)

let test_shadow_sharded_checkpoint_roundtrip () =
  let sh =
    Shadow.create ~shards:4 ~mem_capacity:1024 ~num_regs:8 ~m_prov:4 ()
  in
  Shadow.set_addr_tags sh 5 [ net 1; file 1 ];
  Shadow.set_addr_tags sh 900 [ net 2 ];
  ignore (Shadow.add_tag_reg sh 3 (file 2));
  let restored = Shadow.of_string (Shadow.to_string sh) in
  (* shard layout is a runtime concern, not serialized state: the
     restore uses the process default *)
  Alcotest.(check int) "restored with the process default" 1
    (Shadow.shards restored);
  Alcotest.(check string) "canonical encoding is shard-independent"
    (Shadow.to_string sh) (Shadow.to_string restored);
  Alcotest.(check int) "counts preserved"
    (Tag_stats.total (Shadow.stats sh))
    (Tag_stats.total (Shadow.stats restored))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "mitos_tag"
    [
      ( "tag_type",
        [
          Alcotest.test_case "int roundtrip" `Quick test_type_int_roundtrip;
          Alcotest.test_case "string roundtrip" `Quick test_type_string_roundtrip;
          Alcotest.test_case "dense indices" `Quick test_type_indices_dense_and_distinct;
        ] );
      ( "tag",
        [
          Alcotest.test_case "equality" `Quick test_tag_equality;
          Alcotest.test_case "registry" `Quick test_tag_registry;
          Alcotest.test_case "codec" `Quick test_tag_codec;
          Alcotest.test_case "to_string" `Quick test_tag_to_string;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "add/order" `Quick test_prov_add_and_order;
          Alcotest.test_case "Eq.(7) no duplicates" `Quick test_prov_no_duplicates;
          Alcotest.test_case "fifo eviction" `Quick test_prov_fifo_eviction;
          Alcotest.test_case "lru eviction" `Quick test_prov_lru_eviction;
          Alcotest.test_case "reject" `Quick test_prov_reject;
          Alcotest.test_case "remove/clear" `Quick test_prov_remove_clear;
          Alcotest.test_case "capacity validation" `Quick test_prov_capacity_validation;
          q qcheck_prov_invariants;
        ] );
      ( "tag_stats",
        [
          Alcotest.test_case "incr/decr" `Quick test_stats_incr_decr;
          Alcotest.test_case "underflow" `Quick test_stats_decr_underflow;
          Alcotest.test_case "weighted total" `Quick test_stats_weighted_total;
          Alcotest.test_case "snapshot/arrays" `Quick test_stats_snapshot_and_arrays;
          Alcotest.test_case "copy" `Quick test_stats_copy_independent;
        ] );
      ( "shadow",
        [
          Alcotest.test_case "taint/query" `Quick test_shadow_taint_and_query;
          Alcotest.test_case "replace semantics" `Quick test_shadow_set_replace_semantics;
          Alcotest.test_case "union semantics" `Quick test_shadow_union_semantics;
          Alcotest.test_case "space left" `Quick test_shadow_space_left;
          Alcotest.test_case "detection query" `Quick test_shadow_detection_query;
          Alcotest.test_case "footprint/reset" `Quick test_shadow_footprint_and_reset;
          Alcotest.test_case "least-marginal eviction" `Quick
            test_shadow_least_marginal_eviction;
          Alcotest.test_case "least-marginal rejects common" `Quick
            test_shadow_least_marginal_rejects_common_newcomer;
          Alcotest.test_case "hashed backend: no duplicate bindings" `Quick
            test_shadow_hashed_no_duplicate_bindings;
          Alcotest.test_case "paged backend equivalent" `Quick
            test_shadow_paged_backend_equivalent;
          Alcotest.test_case "paged iteration/reset" `Quick
            test_shadow_paged_iteration_and_reset;
          Alcotest.test_case "checkpoint roundtrip" `Quick
            test_shadow_checkpoint_roundtrip;
          Alcotest.test_case "checkpoint corruption" `Quick
            test_shadow_checkpoint_corruption;
          q qcheck_shadow_checkpoint_preserves_state;
          Alcotest.test_case "bounds" `Quick test_shadow_bounds;
          q qcheck_shadow_counts_exact;
          Alcotest.test_case "shard accessors" `Quick
            test_shadow_shard_accessors;
          Alcotest.test_case "default shards" `Quick
            test_shadow_default_shards;
          q qcheck_shadow_sharded_equivalent;
          Alcotest.test_case "sharded checkpoint roundtrip" `Quick
            test_shadow_sharded_checkpoint_roundtrip;
        ] );
    ]
