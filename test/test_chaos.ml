module Plan = Mitos_chaos.Plan
module Gate = Mitos_chaos.Gate
module Tenantgen = Mitos_chaos.Tenantgen
module Fleetsim = Mitos_chaos.Fleetsim
module Judge = Mitos_chaos.Judge
module Transport = Mitos_net.Transport
module Client = Mitos_net.Client
module Server = Mitos_net.Server
module Attack = Mitos_workload.Attack

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let ok_client = function
  | Ok v -> v
  | Error err -> Alcotest.fail (Client.error_to_string err)

let fresh_name =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "chaos-test-%s-%d" prefix !n

(* -- Plan: parse / render / validate ------------------------------------- *)

let sample_plan_text =
  "kill@t=5s node=2\n\
   restart@t=9s node=2\n\
   # a comment line\n\
   slow@t=8s until=12s node=1 delay=50ms\n\
   partition@t=10s until=18s node=2\n\
   corrupt@rate=0.001\n\
   drop@rate=0.01 node=0 t=2s until=20s\n"

let test_plan_roundtrip () =
  let plan = ok (Plan.parse sample_plan_text) in
  Alcotest.(check int) "events parsed" 6 (List.length plan);
  let canonical = Plan.to_string plan in
  let plan2 = ok (Plan.parse canonical) in
  Alcotest.(check string) "to_string is a parse fixpoint" canonical
    (Plan.to_string plan2);
  Alcotest.(check bool) "parse round-trips structurally" true (plan = plan2);
  (* canonical spelling: every field explicit, durations in seconds *)
  Alcotest.(check string) "canonical slow"
    "slow@t=8s until=12s node=1 delay=0.05s"
    (Plan.event_to_string (List.nth plan 2));
  Alcotest.(check string) "canonical corrupt"
    "corrupt@rate=0.001 node=all t=0s until=inf"
    (Plan.event_to_string (List.nth plan 4))

let test_plan_semicolons_and_durations () =
  let plan = ok (Plan.parse "kill@t=500ms node=0; restart@t=200us node=0") in
  match plan with
  | [ Plan.Kill { at; _ }; Plan.Restart { at = at'; _ } ] ->
    Alcotest.(check (float 1e-9)) "ms suffix" 0.5 at;
    Alcotest.(check (float 1e-9)) "us suffix" 0.0002 at'
  | _ -> Alcotest.fail "expected kill + restart"

let expect_parse_error text =
  match Plan.parse text with
  | Ok _ -> Alcotest.fail ("parse should fail: " ^ text)
  | Error msg -> msg

let test_plan_parse_errors () =
  let contains ~sub msg =
    Alcotest.(check bool)
      (Printf.sprintf "%S mentions %S" msg sub)
      true
      (let n = String.length msg and m = String.length sub in
       let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
       go 0)
  in
  contains ~sub:"unknown fault" (expect_parse_error "explode@t=1s node=0");
  contains ~sub:"line 1" (expect_parse_error "kill@node=0");
  contains ~sub:"rate" (expect_parse_error "corrupt@rate=1.5");
  contains ~sub:"until" (expect_parse_error "slow@t=5s until=2s delay=1ms");
  contains ~sub:"unknown key" (expect_parse_error "kill@t=1s node=0 rate=0.5");
  contains ~sub:"duplicate" (expect_parse_error "kill@t=1s t=2s node=0")

let test_plan_validate () =
  let v ~nodes text =
    Plan.validate ~nodes ~duration:20.0 (ok (Plan.parse text))
  in
  (match v ~nodes:2 "kill@t=5s node=2" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "node out of range must fail");
  (match v ~nodes:2 "restart@t=5s node=1" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "restart without kill must fail");
  (match v ~nodes:2 "kill@t=5s node=1\nkill@t=8s node=1" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double kill must fail");
  (match v ~nodes:2 "kill@t=25s node=1" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "event past the scenario must fail");
  ok (v ~nodes:3 sample_plan_text)

let test_plan_queries () =
  let plan = ok (Plan.parse sample_plan_text) in
  Alcotest.(check bool) "killed inside window" true
    (Plan.killed plan ~node:2 ~at:6.0);
  Alcotest.(check bool) "restart closes the window" false
    (Plan.killed plan ~node:2 ~at:9.5);
  Alcotest.(check bool) "partitioned" true
    (Plan.partitioned plan ~node:2 ~at:11.0);
  Alcotest.(check bool) "down covers both" true (Plan.down plan ~node:2 ~at:11.0);
  Alcotest.(check (float 1e-9)) "slow delay inside" 0.05
    (Plan.slow_delay plan ~node:1 ~at:9.0);
  Alcotest.(check (float 1e-9)) "slow delay outside" 0.0
    (Plan.slow_delay plan ~node:1 ~at:13.0);
  Alcotest.(check (float 1e-9)) "corrupt everywhere" 0.001
    (Plan.rate plan ~kind:`Corrupt ~node:1 ~at:1.0);
  Alcotest.(check (float 1e-9)) "drop only node 0 in window" 0.01
    (Plan.rate plan ~kind:`Drop ~node:0 ~at:5.0);
  Alcotest.(check (float 1e-9)) "drop elsewhere" 0.0
    (Plan.rate plan ~kind:`Drop ~node:1 ~at:5.0);
  let stacked = ok (Plan.parse "corrupt@rate=0.8\ncorrupt@rate=0.8") in
  Alcotest.(check (float 1e-9)) "summed rates cap at 1" 1.0
    (Plan.rate stacked ~kind:`Corrupt ~node:0 ~at:1.0);
  Alcotest.(check bool) "kill+restart expects an alert" true
    (Plan.expects_outage_alert
       (ok (Plan.parse "kill@t=6s node=1\nrestart@t=12s node=1"))
       ~duration:20.0);
  Alcotest.(check bool) "no faults, no alert" false
    (Plan.expects_outage_alert Plan.empty ~duration:20.0);
  Alcotest.(check bool) "heal too late to resolve in time" false
    (Plan.expects_outage_alert
       (ok (Plan.parse "kill@t=6s node=1\nrestart@t=19s node=1"))
       ~duration:20.0)

(* -- Tenantgen ------------------------------------------------------------ *)

let gen_config =
  {
    Tenantgen.default_config with
    Tenantgen.tenants = 50;
    duration = 5.0;
    rate_rps = 200.0;
    attack_rate = 0.05;
    seed = 13;
  }

let test_tenantgen_deterministic () =
  let a = Tenantgen.schedule gen_config in
  let b = Tenantgen.schedule gen_config in
  Alcotest.(check bool) "same seed, same schedule" true (a = b);
  Alcotest.(check bool) "schedule non-trivial" true (Array.length a > 500);
  let sorted = ref true in
  Array.iteri
    (fun i ev ->
      if i > 0 then sorted := !sorted && a.(i - 1).Tenantgen.at <= ev.Tenantgen.at)
    a;
  Alcotest.(check bool) "sorted by time" true !sorted;
  let c = Tenantgen.schedule { gen_config with Tenantgen.seed = 14 } in
  Alcotest.(check bool) "different seed, different schedule" true (a <> c)

let test_tenantgen_covers_variants () =
  let sched = Tenantgen.schedule gen_config in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun ev ->
      match ev.Tenantgen.kind with
      | Tenantgen.Attack (v, _) -> Hashtbl.replace seen v ()
      | _ -> ())
    sched;
  Alcotest.(check int) "all six variants injected"
    (List.length Attack.all_variants)
    (Hashtbl.length seen);
  (* every tenant opens with a publish so its slot is seeded early *)
  let first_kind = Hashtbl.create 64 in
  Array.iter
    (fun ev ->
      if not (Hashtbl.mem first_kind ev.Tenantgen.tenant) then
        Hashtbl.add first_kind ev.Tenantgen.tenant ev.Tenantgen.kind)
    sched;
  Hashtbl.iter
    (fun tenant kind ->
      match kind with
      | Tenantgen.Publish _ -> ()
      | _ -> Alcotest.failf "tenant %d did not open with a publish" tenant)
    first_kind

let test_tenantgen_validate () =
  (match Tenantgen.validate { gen_config with Tenantgen.pareto_alpha = 1.0 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "alpha <= 1 must fail");
  match Tenantgen.validate { gen_config with Tenantgen.attack_rate = 1.5 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "attack rate > 1 must fail"

(* -- Gate: fault windows over a virtual clock ----------------------------- *)

let test_gate_windows () =
  let plan =
    ok
      (Plan.parse
         "corrupt@rate=1 t=1s until=2s\n\
          drop@rate=1 t=3s until=4s\n\
          partition@t=5s until=6s node=0\n\
          slow@t=7s until=8s delay=10ms\n")
  in
  let config =
    { Server.default_config with workers = 0; nodes = 4 }
  in
  let service =
    Server.create ~config ~params:Mitos_experiments.Calib.attack_params ()
  in
  let up = fresh_name "up" in
  let listener = Server.start service (Transport.Memory up) in
  let now = ref 0.0 in
  let gate =
    Gate.create ~node:0 ~name:(fresh_name "gate") ~plan ~seed:1
      ~now:(fun () -> !now)
      ~upstream:(fun () -> Transport.Loopback.handler up)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Gate.close gate;
      Server.stop listener)
    (fun () ->
      let c = ok_client (Client.connect ~retries:0 (Gate.endpoint gate)) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          ok_client (Client.ping c);
          now := 1.5;
          (match Client.ping c with
          | Error (Client.Bad_reply _ | Client.Wire _ | Client.Remote _) -> ()
          | Error err ->
            Alcotest.failf "corrupt window: wanted a typed reject, got %s"
              (Client.error_to_string err)
          | Ok () -> Alcotest.fail "corrupt window must reject");
          now := 2.5;
          ok_client (Client.ping c);
          now := 3.5;
          (match Client.ping c with
          | Error (Client.Retries_exhausted _) -> ()
          | Error err -> Alcotest.fail (Client.error_to_string err)
          | Ok () -> Alcotest.fail "drop window must exhaust");
          now := 5.5;
          (match Client.ping c with
          | Error (Client.Retries_exhausted _) -> ()
          | Error err -> Alcotest.fail (Client.error_to_string err)
          | Ok () -> Alcotest.fail "partition window must refuse");
          now := 6.5;
          ok_client (Client.ping c);
          now := 7.5;
          ok_client (Client.ping c);
          Alcotest.(check (float 1e-9)) "slow window accrued virtual delay" 0.01
            (Gate.take_delay gate);
          Alcotest.(check (float 1e-9)) "take_delay drains" 0.0
            (Gate.take_delay gate);
          let counts = Gate.counts gate in
          Alcotest.(check bool) "corrupt counted" true
            (counts.Gate.corrupt_requests >= 1);
          Alcotest.(check bool) "drop counted" true (counts.Gate.drops >= 1);
          Alcotest.(check bool) "refusal counted" true
            (counts.Gate.refusals >= 1)))

(* -- Fleet + Judge -------------------------------------------------------- *)

let small_gen =
  {
    Tenantgen.default_config with
    Tenantgen.tenants = 120;
    duration = 20.0;
    rate_rps = 150.0;
    attack_rate = 0.003;
    seed = 7;
  }

let small_config = { Fleetsim.default_config with Fleetsim.gen = small_gen }

let kill_plan = "kill@t=6s node=1\nrestart@t=12s node=1\ncorrupt@rate=0.01\n"

let scenario ~name ~plan =
  {
    Judge.scenario_name = name;
    config = small_config;
    plan = ok (Plan.parse plan);
    slo = Judge.default_slo;
  }

let run_scenario s = ok (Judge.run s)

let test_same_seed_byte_identical_report () =
  let s = scenario ~name:"determinism" ~plan:kill_plan in
  let r1 = run_scenario s in
  let r2 = run_scenario s in
  Alcotest.(check string) "same seed, byte-identical JSON report"
    (Judge.to_json r1) (Judge.to_json r2);
  Alcotest.(check bool) "verdict pass" true (r1.Judge.verdict = Judge.Pass);
  Alcotest.(check int) "exit code 0" 0 (Judge.exit_code r1)

let finals report =
  List.map
    (fun s -> (s.Fleetsim.sync_node, s.Fleetsim.final))
    report.Judge.outcome.Fleetsim.syncs

let test_kill_restart_estimator_resync () =
  let faulted = run_scenario (scenario ~name:"faulted" ~plan:kill_plan) in
  let calm = run_scenario (scenario ~name:"calm" ~plan:"") in
  Alcotest.(check bool) "faulted run passes" true
    (faulted.Judge.verdict = Judge.Pass);
  Alcotest.(check bool) "calm run passes" true (calm.Judge.verdict = Judge.Pass);
  Alcotest.(check bool) "kill actually happened" true
    (faulted.Judge.outcome.Fleetsim.kills = 1
    && faulted.Judge.outcome.Fleetsim.restarts = 1
    && faulted.Judge.outcome.Fleetsim.resync_publishes > 0);
  (* the acceptance criterion: after kill + restart + re-sync the
     fleet's estimator state equals the run that never lost it *)
  Alcotest.(check bool) "final globals equal the no-fault run" true
    (finals faulted = finals calm);
  List.iter
    (fun (node, final) ->
      match final with
      | Some _ -> ()
      | None -> Alcotest.failf "node %d unreadable at end" node)
    (finals faulted)

let test_partition_exhaustions_expected () =
  let r =
    run_scenario
      (scenario ~name:"partition" ~plan:"partition@t=6s until=12s node=2\n")
  in
  Alcotest.(check bool) "verdict pass" true (r.Judge.verdict = Judge.Pass);
  let exhaustions = r.Judge.outcome.Fleetsim.exhaustions in
  Alcotest.(check bool) "partitioned tenants did exhaust" true
    (List.length exhaustions > 0);
  List.iter
    (fun e ->
      Alcotest.(check bool) "every exhaustion expected" true
        e.Fleetsim.ex_expected;
      Alcotest.(check int) "on the partitioned node" 2 e.Fleetsim.ex_node)
    exhaustions;
  Alcotest.(check bool) "alert fired and resolved" true
    (r.Judge.outcome.Fleetsim.alerts_fired >= 1
    && r.Judge.outcome.Fleetsim.alerts_resolved >= 1)

let test_recall_and_attacks_attributed () =
  let r = run_scenario (scenario ~name:"attacks" ~plan:"") in
  let attacks = r.Judge.outcome.Fleetsim.attacks in
  Alcotest.(check bool) "attacks were injected" true (List.length attacks > 0);
  List.iter
    (fun a ->
      Alcotest.(check bool) "oracle detects" true a.Fleetsim.oracle_detected;
      Alcotest.(check bool) "fleet-fed policy detects" true a.Fleetsim.detected;
      Alcotest.(check bool) "never taints past the oracle" true
        (a.Fleetsim.tainted_bytes <= a.Fleetsim.oracle_tainted_bytes))
    attacks;
  (* tenant labels reach the audit log for blame attribution *)
  let audit = r.Judge.outcome.Fleetsim.audit in
  let notes =
    Array.to_list (Mitos_obs.Audit.records audit)
    |> List.filter_map (fun rec_ ->
           match rec_.Mitos_obs.Audit.body with
           | Mitos_obs.Audit.Note n -> Some n
           | _ -> None)
  in
  List.iter
    (fun a ->
      let label = Printf.sprintf "tenant=%d" a.Fleetsim.attack_tenant in
      Alcotest.(check bool)
        (Printf.sprintf "audit note attributes %s" label)
        true
        (List.exists
           (fun n ->
             let contains sub s =
               let ns = String.length s and m = String.length sub in
               let rec go i =
                 i + m <= ns && (String.sub s i m = sub || go (i + 1))
               in
               go 0
             in
             contains "chaos attack" n && contains label n)
           notes))
    attacks

let test_judge_violation () =
  let s = scenario ~name:"impossible" ~plan:"" in
  let s =
    { s with Judge.slo = { Judge.default_slo with Judge.max_p99_ns = 1.0 } }
  in
  let r = run_scenario s in
  Alcotest.(check bool) "violation" true (r.Judge.verdict = Judge.Violation);
  Alcotest.(check int) "exit code 1" 1 (Judge.exit_code r);
  let bad =
    List.filter (fun c -> not c.Judge.ok) r.Judge.checks
    |> List.map (fun c -> c.Judge.check_name)
  in
  Alcotest.(check (list string)) "only the latency SLO violated"
    [ "p99_latency" ] bad

let test_presets_resolve () =
  List.iter
    (fun (name, _) ->
      match Judge.preset name with
      | Some s ->
        Alcotest.(check string) "preset name matches" name
          s.Judge.scenario_name
      | None -> Alcotest.failf "preset %s does not resolve" name)
    Judge.presets;
  Alcotest.(check bool) "unknown preset is None" true
    (Judge.preset "no-such" = None)

let () =
  Alcotest.run "chaos"
    [
      ( "plan",
        [
          Alcotest.test_case "round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "semicolons and durations" `Quick
            test_plan_semicolons_and_durations;
          Alcotest.test_case "parse errors" `Quick test_plan_parse_errors;
          Alcotest.test_case "validate" `Quick test_plan_validate;
          Alcotest.test_case "queries" `Quick test_plan_queries;
        ] );
      ( "tenantgen",
        [
          Alcotest.test_case "deterministic" `Quick test_tenantgen_deterministic;
          Alcotest.test_case "covers variants" `Quick
            test_tenantgen_covers_variants;
          Alcotest.test_case "validate" `Quick test_tenantgen_validate;
        ] );
      ( "gate",
        [ Alcotest.test_case "fault windows" `Quick test_gate_windows ] );
      ( "fleet",
        [
          Alcotest.test_case "same seed, byte-identical report" `Quick
            test_same_seed_byte_identical_report;
          Alcotest.test_case "kill/restart estimator re-sync" `Quick
            test_kill_restart_estimator_resync;
          Alcotest.test_case "partition exhaustions expected" `Quick
            test_partition_exhaustions_expected;
          Alcotest.test_case "recall and audit attribution" `Quick
            test_recall_and_attacks_attributed;
          Alcotest.test_case "judge violation" `Quick test_judge_violation;
          Alcotest.test_case "presets resolve" `Quick test_presets_resolve;
        ] );
    ]
