(* Observability: tracing and metrics over a replayed execution.

   Records the netbench workload once, replays it under the MITOS
   policy with an enabled observability context, and prints what the
   instrumentation saw: the Prometheus metrics text (decision-latency
   histogram, per-type IFP verdicts, replay throughput) and the first
   lines of the Chrome trace JSON. The context uses the logical clock,
   so rerunning this example produces byte-identical output — the same
   determinism contract `mitos-cli replay --trace-out --metrics-out`
   relies on.

   Run with: dune exec examples/observability.exe *)

module W = Mitos_workload
module Obs = Mitos_obs.Obs

let () =
  let params =
    Mitos.Params.make ~alpha:1.5 ~beta:2.0 ~tau:0.1 ~tau_scale:5e4
      ~total_tag_space:(1 lsl 30) ~mem_capacity:Mitos_system.Layout.mem_size ()
  in
  (* Record once... *)
  let trace = W.Workload.record (W.Netbench.build ~seed:1 ~chunks:2 ()) in
  (* ...then replay instrumented. One [~obs] argument wires the whole
     stack: engine latency histogram and IFP counters, run-level
     taint gauges, Alg. 1/Alg. 2 timing inside the policy, and the
     replay driver's spans and throughput gauges. *)
  let obs = Obs.create () in
  Mitos.Decision.set_obs (Some obs);
  let engine =
    W.Workload.replay ~obs ~sample_every:256
      ~policy:(Mitos_dift.Policies.mitos params)
      (W.Netbench.build ~seed:1 ~chunks:2 ())
      trace
  in
  Mitos.Decision.set_obs None;

  let counters = Mitos_dift.Engine.counters engine in
  Printf.printf "replayed %d records (%d IFP propagated, %d blocked)\n\n"
    counters.Mitos_dift.Engine.steps
    counters.Mitos_dift.Engine.ifp_propagated
    counters.Mitos_dift.Engine.ifp_blocked;

  print_endline "=== Prometheus exposition (what --metrics-out writes) ===";
  print_string (Obs.prometheus obs);

  print_endline "\n=== Chrome trace (what --trace-out writes) ===";
  let json = Obs.chrome_trace_json obs in
  let lines = String.split_on_char '\n' json in
  List.iteri
    (fun i l -> if i < 1 then print_endline l)
    lines;
  Printf.printf
    "(%d bytes total - load the file written by --trace-out into\n\
     chrome://tracing or https://ui.perfetto.dev)\n"
    (String.length json);

  (* The same data, queryable in-process. *)
  let reg = Obs.registry obs in
  let latency =
    Mitos_obs.Registry.histogram reg "mitos_engine_record_latency_ticks"
  in
  Printf.printf
    "\nrecord latency (logical ticks = clock reads per record):\n\
    \  p50 %.1f   p99 %.1f   max %.0f\n"
    (Mitos_obs.Histogram.quantile latency 0.5)
    (Mitos_obs.Histogram.quantile latency 0.99)
    (Mitos_obs.Histogram.max_value latency)
