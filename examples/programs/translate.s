; Fig. 1 of the paper, as a standalone assembly file for `mitos-cli asm`.
;
; The harness provides: connection 1 (tainted pseudo-random bytes),
; file 1 ("calibration" content), process 1 at 0x10000.
;
; Read 64 tainted bytes, build a lookup table, translate through it,
; send the result back out.

        ; build table[i] = i xor 0x20 at 0x51000
        li   r12, 0
        li   r13, 256
fill:
        bgeu r12, r13, @read
        xori r14, r12, 32
        addi r15, r12, 331776      ; 0x51000
        stb  r14, 0(r15)
        addi r12, r12, 1
        jmp  @fill

read:
        li   r1, 1                 ; connection 1
        li   r2, 327680            ; dst 0x50000
        li   r3, 64
        syscall 1                  ; net_read

        li   r4, 327680            ; src
        li   r5, 335872            ; dst 0x52000
        li   r6, 327744            ; src end
loop:
        bgeu r4, r6, @send
        ldb  r8, 0(r4)
        addi r9, r8, 331776
        ldb  r10, 0(r9)            ; the address dependency
        stb  r10, 0(r5)
        addi r4, r4, 1
        addi r5, r5, 1
        jmp  @loop

send:
        li   r1, 1
        li   r2, 335872
        li   r3, 64
        syscall 2                  ; net_send
        syscall 8                  ; exit
