let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs /. float_of_int n

let stddev xs = sqrt (variance xs)

let total xs = Array.fold_left ( +. ) 0.0 xs

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of [0,100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let median xs = percentile xs 50.0

let mse_pairwise xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    (* E[(X - Y)^2] over unordered pairs equals 2 * n/(n-1) * variance;
       computed directly for clarity at the small sizes we use. *)
    let acc = ref 0.0 and pairs = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let d = xs.(i) -. xs.(j) in
        acc := !acc +. (d *. d);
        incr pairs
      done
    done;
    !acc /. float_of_int !pairs
  end

let jain_index xs =
  let n = Array.length xs in
  if n = 0 then 1.0
  else
    let s = total xs in
    let sq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if sq = 0.0 then 1.0 else s *. s /. (float_of_int n *. sq)

let entropy xs =
  let s = total xs in
  if s <= 0.0 then 0.0
  else
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then acc
        else
          let p = x /. s in
          acc -. (p *. log p))
      0.0 xs

let entropy_normalized xs =
  let n = Array.length xs in
  if n <= 1 then 1.0
  else
    let h = entropy xs in
    let hmax = log (float_of_int n) in
    if hmax = 0.0 then 1.0 else h /. hmax

let gini xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else
    let s = total xs in
    if s <= 0.0 then 0.0
    else begin
      let sorted = Array.copy xs in
      Array.sort Float.compare sorted;
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. (float_of_int ((2 * (i + 1)) - n - 1) *. sorted.(i))
      done;
      !acc /. (float_of_int n *. s)
    end

module Online = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int t.count
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max

  let merge a b =
    if a.count = 0 then { b with count = b.count }
    else if b.count = 0 then { a with count = a.count }
    else begin
      let n = a.count + b.count in
      let delta = b.mean -. a.mean in
      let mean =
        a.mean +. (delta *. float_of_int b.count /. float_of_int n)
      in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.count *. float_of_int b.count
           /. float_of_int n)
      in
      { count = n; mean; m2; min = Float.min a.min b.min; max = Float.max a.max b.max }
    end
end
