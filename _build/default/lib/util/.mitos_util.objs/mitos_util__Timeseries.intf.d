lib/util/timeseries.mli:
