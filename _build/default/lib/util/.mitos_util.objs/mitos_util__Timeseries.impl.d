lib/util/timeseries.ml: Array Buffer Float
