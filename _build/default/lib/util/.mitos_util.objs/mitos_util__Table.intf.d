lib/util/table.mli:
