lib/util/stats.mli:
