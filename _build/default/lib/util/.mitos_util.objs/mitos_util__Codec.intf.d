lib/util/codec.mli:
