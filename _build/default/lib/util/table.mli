(** Plain-text table rendering for experiment reports.

    Produces aligned, boxed ASCII tables like the ones in the paper's
    evaluation section, and the same content as Markdown rows for
    EXPERIMENTS.md. *)

type align = Left | Right | Center

type t

val create : ?aligns:align list -> header:string list -> unit -> t
(** [create ~header ()] starts a table. [aligns] defaults to
    left-aligning every column. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded; longer rows raise
    [Invalid_argument]. *)

val add_float_row : t -> ?fmt:(float -> string) -> string -> float list -> unit
(** [add_float_row t label xs] renders [label] then the formatted
    floats (default ["%.4g"]). *)

val add_separator : t -> unit
(** Inserts a horizontal rule between the rows added before and after. *)

val render : t -> string
(** Boxed ASCII rendering. *)

val render_markdown : t -> string
(** GitHub-flavoured Markdown rendering. *)

val print : t -> unit
(** [render] to stdout, followed by a newline. *)

val fmt_float : float -> string
(** Default float formatter: 4 significant digits. *)

val fmt_times : float -> string
(** Renders a ratio as the paper does, e.g. [1.65x]. *)

val fmt_pct : float -> string
(** Renders a fraction as a percentage, e.g. [0.4 -> "40.0%"]. *)
