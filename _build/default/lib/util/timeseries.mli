(** Time-indexed sample accumulation for the figure reproductions.

    A series is an append-only sequence of [(time, value)] samples with
    helpers to downsample for display and to summarize tails, matching
    how the paper plots marginal costs and decisions over replay time
    (Fig. 7). *)

type t

val create : ?name:string -> unit -> t
val name : t -> string
val add : t -> float -> float -> unit
(** [add t time value] appends a sample; times should be non-decreasing
    but this is not enforced. *)

val length : t -> int
val times : t -> float array
val values : t -> float array
val last : t -> (float * float) option
val iter : t -> (float -> float -> unit) -> unit

val downsample : t -> int -> (float * float) array
(** [downsample t k] returns at most [k] samples spread evenly over the
    series (bucket means of the values, bucket-end times). *)

val window_mean : t -> from_time:float -> float
(** Mean of values with time >= [from_time]; 0 if none. *)

val sparkline : t -> int -> string
(** Unicode sparkline of at most [width] buckets; handy in console
    reports. *)
