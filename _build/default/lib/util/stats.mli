(** Descriptive statistics used throughout the evaluation harness.

    Includes the fairness metrics the paper relies on: the mean squared
    pairwise difference between tag copy counts (the paper's Fig. 8
    fairness measure), Jain's fairness index, and normalized Shannon
    entropy (the paper's information-theoretic motivation for tag
    balancing). *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val variance : float array -> float
(** Population variance; 0 on arrays shorter than 2. *)

val stddev : float array -> float

val total : float array -> float

val min_max : float array -> float * float
(** Raises [Invalid_argument] on the empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation on a
    sorted copy. Raises [Invalid_argument] on the empty array. *)

val median : float array -> float

val mse_pairwise : float array -> float
(** Mean squared difference over all unordered pairs — the paper's tag
    balancing (fairness) measure: lower is fairer. 0 for fewer than two
    samples. *)

val jain_index : float array -> float
(** Jain's fairness index in (0, 1]; 1 means perfectly balanced. 1 on
    the empty array by convention. *)

val entropy : float array -> float
(** Shannon entropy (nats) of the distribution obtained by normalizing
    the non-negative weights. 0 if the total weight is 0. *)

val entropy_normalized : float array -> float
(** Entropy divided by [log n]; in [\[0,1\]]. 1 for n <= 1. *)

val gini : float array -> float
(** Gini coefficient of non-negative values; 0 = perfect equality. *)

(** Online (single-pass, Welford) accumulator. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val merge : t -> t -> t
end
