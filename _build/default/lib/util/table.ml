type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  header : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?aligns ~header () =
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.map (fun _ -> Left) header
  in
  if List.length aligns <> List.length header then
    invalid_arg "Table.create: aligns length mismatch";
  { header; aligns; rows = [] }

let columns t = List.length t.header

let add_row t cells =
  let n = List.length cells in
  let cols = columns t in
  if n > cols then invalid_arg "Table.add_row: too many cells";
  let cells =
    if n = cols then cells else cells @ List.init (cols - n) (fun _ -> "")
  in
  t.rows <- Cells cells :: t.rows

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.4g" x

let fmt_times x = Printf.sprintf "%.2fx" x
let fmt_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let add_float_row t ?(fmt = fmt_float) label xs =
  add_row t (label :: List.map fmt xs)

let add_separator t = t.rows <- Separator :: t.rows

let all_rows t = List.rev t.rows

let widths t =
  let w = Array.of_list (List.map String.length t.header) in
  let update cells =
    List.iteri
      (fun i c -> if i < Array.length w then w.(i) <- max w.(i) (String.length c))
      cells
  in
  List.iter (function Cells c -> update c | Separator -> ()) (all_rows t);
  w

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
      let left = (width - n) / 2 in
      String.make left ' ' ^ s ^ String.make (width - n - left) ' '

let render t =
  let w = widths t in
  let aligns = Array.of_list t.aligns in
  let buf = Buffer.create 256 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun width ->
        Buffer.add_string buf (String.make (width + 2) '-');
        Buffer.add_char buf '+')
      w;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad aligns.(i) w.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  rule ();
  line t.header;
  rule ();
  List.iter (function Cells c -> line c | Separator -> rule ()) (all_rows t);
  rule ();
  Buffer.contents buf

let render_markdown t =
  let buf = Buffer.create 256 in
  let line cells =
    Buffer.add_string buf "| ";
    Buffer.add_string buf (String.concat " | " cells);
    Buffer.add_string buf " |\n"
  in
  line t.header;
  line
    (List.map
       (function Left -> ":--" | Right -> "--:" | Center -> ":-:")
       t.aligns);
  List.iter (function Cells c -> line c | Separator -> ()) (all_rows t);
  Buffer.contents buf

let print t = print_string (render t)
