type t = {
  series_name : string;
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

let create ?(name = "") () =
  { series_name = name; times = Array.make 16 0.0; values = Array.make 16 0.0; len = 0 }

let name t = t.series_name

let ensure_capacity t =
  if t.len = Array.length t.times then begin
    let cap = 2 * Array.length t.times in
    let grow a =
      let b = Array.make cap 0.0 in
      Array.blit a 0 b 0 t.len;
      b
    in
    t.times <- grow t.times;
    t.values <- grow t.values
  end

let add t time value =
  ensure_capacity t;
  t.times.(t.len) <- time;
  t.values.(t.len) <- value;
  t.len <- t.len + 1

let length t = t.len
let times t = Array.sub t.times 0 t.len
let values t = Array.sub t.values 0 t.len

let last t =
  if t.len = 0 then None else Some (t.times.(t.len - 1), t.values.(t.len - 1))

let iter t f =
  for i = 0 to t.len - 1 do
    f t.times.(i) t.values.(i)
  done

let downsample t k =
  if k <= 0 then [||]
  else if t.len <= k then Array.init t.len (fun i -> (t.times.(i), t.values.(i)))
  else begin
    let out = Array.make k (0.0, 0.0) in
    for b = 0 to k - 1 do
      let lo = b * t.len / k in
      let hi = ((b + 1) * t.len / k) - 1 in
      let hi = max lo hi in
      let acc = ref 0.0 in
      for i = lo to hi do
        acc := !acc +. t.values.(i)
      done;
      out.(b) <- (t.times.(hi), !acc /. float_of_int (hi - lo + 1))
    done;
    out
  end

let window_mean t ~from_time =
  let acc = ref 0.0 and n = ref 0 in
  iter t (fun time v ->
      if time >= from_time then begin
        acc := !acc +. v;
        incr n
      end);
  if !n = 0 then 0.0 else !acc /. float_of_int !n

let spark_chars = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                     "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                     "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline t width =
  let samples = downsample t width in
  if Array.length samples = 0 then ""
  else begin
    let vals = Array.map snd samples in
    let lo = Array.fold_left Float.min vals.(0) vals in
    let hi = Array.fold_left Float.max vals.(0) vals in
    let span = hi -. lo in
    let buf = Buffer.create (Array.length vals * 3) in
    Array.iter
      (fun v ->
        let idx =
          if span <= 0.0 then 4
          else
            int_of_float ((v -. lo) /. span *. 8.0)
        in
        let idx = max 0 (min 8 idx) in
        Buffer.add_string buf spark_chars.(idx))
      vals;
    Buffer.contents buf
  end
