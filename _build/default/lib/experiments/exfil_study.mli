(** Exfiltration-tracking case study (second application scenario).

    A secret file is encoded through a lookup table and exfiltrated
    alongside benign traffic; per-sink tag attribution (flow
    tomography) is scored against ground truth: exactly
    [Exfil.secret_len] outbound bytes derive from the secret. A DIFT
    that drops indirect flows attributes zero bytes to the file — the
    leak is invisible — while MITOS recovers the attribution at a
    fraction of propagate-all's shadow traffic. *)

type row = {
  policy : string;
  sink_tainted : int;  (** tainted bytes observed at the exfil sink *)
  file_attributed : int;  (** of which attributed to file tags *)
  shadow_ops : int;
}

val run_policy : string -> Mitos_dift.Policy.t -> row
val run : unit -> Report.section
