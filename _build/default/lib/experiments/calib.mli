(** Calibrated experiment configuration.

    The paper evaluates on a 4 GB guest with provenance lists of 10
    entries, so the tag space is N_R = 4·10¹⁰ — we keep that N_R even
    though the simulated machine only materializes 1 MiB, because N_R
    only enters the model as a normalizer. The paper also scales τ
    ("normalized up to the power of 10⁶"); our pollution numerators
    are larger relative to N_R than theirs, so the equivalent scaling
    constants below were calibrated once (see DESIGN.md) so that the
    paper's τ ∈ {1, 0.1, 0.01} sweep lands in the same qualitative
    regimes: τ = 1 mostly blocking, τ = 0.01 mostly propagating. *)

open Mitos_tag

val n_r : int
(** 4 GiB × M_prov 10. *)

val mem_capacity : int
val netbench_seed : int
val attack_seed : int

val sensitivity_params :
  ?alpha:float -> ?tau:float -> ?u_net:float -> unit -> Mitos.Params.t
(** Defaults: α = 1.5, β = 2, τ = 0.1, u = o = 1, tau_scale = 5·10⁴ —
    used by the Fig. 7/8/9 reproductions on the netbench workload. *)

val attack_params : Mitos.Params.t
(** Table II configuration: τ = 0.01, tau_scale = 10⁵, and the
    security application's semantics weights
    u(netflow) = u(export-table) = 50 (the attack-relevant tag types
    are prioritized, §IV-B "flexibly weight the involved
    tradeoffs"). *)

val attack_engine_config : Mitos_dift.Engine.config
(** Table II routes {e all} flows (direct and indirect) through the
    policy, as in the paper's §V-C generalization. *)

val mitos_all_flows : Mitos.Params.t -> Mitos_dift.Policy.t
(** The Table II MITOS policy: Alg. 2 on every flow. *)

val tag_type_u_boost : Tag_type.t list
(** The types boosted in {!attack_params}. *)
