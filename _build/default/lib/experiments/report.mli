(** Experiment output assembly: each experiment produces a titled
    section of text and tables that the bench harness prints to the
    console and that can be re-rendered as Markdown for
    EXPERIMENTS.md. *)

type section

type t

val create : title:string -> t
val text : t -> string -> unit
val textf : t -> ('a, unit, string, unit) format4 -> 'a
val table : t -> Mitos_util.Table.t -> unit
val finish : t -> section

val title : section -> string
val print : section -> unit
val to_markdown : section -> string
