lib/experiments/report.mli: Mitos_util
