lib/experiments/table2.ml: Calib Engine List Metrics Mitos_dift Mitos_util Mitos_workload Policies Report
