lib/experiments/hw_model.mli: Mitos_dift Report
