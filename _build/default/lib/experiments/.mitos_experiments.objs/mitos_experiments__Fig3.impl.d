lib/experiments/fig3.ml: List Mitos Mitos_util Printf Report
