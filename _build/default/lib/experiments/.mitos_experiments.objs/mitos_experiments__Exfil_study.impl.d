lib/experiments/exfil_study.ml: Calib Engine List Mitos Mitos_dift Mitos_tag Mitos_util Mitos_workload Policies Printf Report Tag Tag_type
