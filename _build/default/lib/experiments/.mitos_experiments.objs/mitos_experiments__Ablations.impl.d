lib/experiments/ablations.ml: Array Calib Engine List Metrics Mitos Mitos_dift Mitos_distrib Mitos_tag Mitos_util Mitos_workload Policies Printf Provenance Report Shadow Tag_stats Tag_type
