lib/experiments/fig9.ml: Array Calib Engine Fig7 List Mitos_dift Mitos_tag Mitos_util Mitos_workload Policies Printf Report Tag_type
