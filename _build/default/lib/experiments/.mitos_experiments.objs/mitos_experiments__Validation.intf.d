lib/experiments/validation.mli: Mitos_dift Report
