lib/experiments/fig8.ml: Calib Engine Fig7 List Mitos Mitos_dift Mitos_util Mitos_workload Policies Printf Report
