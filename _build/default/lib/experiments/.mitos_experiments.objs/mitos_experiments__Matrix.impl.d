lib/experiments/matrix.ml: Calib List Metrics Mitos_dift Mitos_util Mitos_workload Policies Printf Report
