lib/experiments/report.ml: Buffer List Mitos_util Printf
