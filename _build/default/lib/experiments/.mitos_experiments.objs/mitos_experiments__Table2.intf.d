lib/experiments/table2.mli: Mitos_dift Mitos_workload Report
