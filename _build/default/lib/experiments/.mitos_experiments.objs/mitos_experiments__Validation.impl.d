lib/experiments/validation.ml: List Litmus Mitos Mitos_dift Mitos_util Policies Report
