lib/experiments/calib.ml: List Mitos Mitos_dift Mitos_system Mitos_tag Tag_type
