lib/experiments/ablations.mli: Report
