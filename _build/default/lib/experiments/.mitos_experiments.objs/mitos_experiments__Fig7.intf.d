lib/experiments/fig7.mli: Mitos_dift Mitos_replay Mitos_workload Report
