lib/experiments/matrix.mli: Mitos_dift Report
