lib/experiments/exfil_study.mli: Mitos_dift Report
