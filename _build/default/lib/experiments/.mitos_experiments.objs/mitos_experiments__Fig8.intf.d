lib/experiments/fig8.mli: Mitos Mitos_replay Mitos_workload Report
