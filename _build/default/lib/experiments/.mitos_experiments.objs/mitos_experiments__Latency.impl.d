lib/experiments/latency.ml: Calib Engine List Mitos_dift Mitos_tag Mitos_util Mitos_workload Policies Report Tag_type
