lib/experiments/latency.mli: Mitos_dift Mitos_workload Report
