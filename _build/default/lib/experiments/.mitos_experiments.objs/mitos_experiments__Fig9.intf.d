lib/experiments/fig9.mli: Mitos_replay Mitos_workload Report
