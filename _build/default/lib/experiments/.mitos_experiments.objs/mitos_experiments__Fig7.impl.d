lib/experiments/fig7.ml: Array Calib List Metrics Mitos_dift Mitos_replay Mitos_util Mitos_workload Policies Policy Printf Report
