lib/experiments/calib.mli: Mitos Mitos_dift Mitos_tag Tag_type
