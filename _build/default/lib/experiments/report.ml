module Table = Mitos_util.Table

type block = Text of string | Tbl of Table.t

type section = { title : string; blocks : block list }

type t = { t_title : string; mutable rev_blocks : block list }

let create ~title = { t_title = title; rev_blocks = [] }
let text t s = t.rev_blocks <- Text s :: t.rev_blocks
let textf t fmt = Printf.ksprintf (text t) fmt
let table t tbl = t.rev_blocks <- Tbl tbl :: t.rev_blocks
let finish t = { title = t.t_title; blocks = List.rev t.rev_blocks }
let title s = s.title

let print s =
  Printf.printf "\n=== %s ===\n" s.title;
  List.iter
    (function
      | Text line -> print_endline line
      | Tbl tbl -> Table.print tbl)
    s.blocks

let to_markdown s =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "## %s\n\n" s.title);
  List.iter
    (function
      | Text line ->
        Buffer.add_string buf line;
        Buffer.add_string buf "\n\n"
      | Tbl tbl ->
        Buffer.add_string buf (Table.render_markdown tbl);
        Buffer.add_char buf '\n')
    s.blocks;
  Buffer.contents buf
