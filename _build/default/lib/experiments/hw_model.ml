open Mitos_dift
module Table = Mitos_util.Table

type costs = {
  ns_per_shadow_op : float;
  ns_per_decision : float;
  ns_per_scope_check : float;
}

let software_costs =
  { ns_per_shadow_op = 500.0; ns_per_decision = 450.0; ns_per_scope_check = 5.0 }

let hardware_costs =
  { ns_per_shadow_op = 20.0; ns_per_decision = 2.0; ns_per_scope_check = 0.5 }

type estimate = {
  label : string;
  shadow_time_ms : float;
  decision_time_ms : float;
  total_ms : float;
}

let estimate ~label costs (s : Metrics.summary) =
  let ms x = x /. 1e6 in
  let shadow_time_ms = ms (float_of_int s.Metrics.shadow_ops *. costs.ns_per_shadow_op) in
  let decisions = s.Metrics.ifp_propagated + s.Metrics.ifp_blocked in
  let decision_time_ms = ms (float_of_int decisions *. costs.ns_per_decision) in
  let scope_ms = ms (float_of_int s.Metrics.steps *. costs.ns_per_scope_check) in
  {
    label;
    shadow_time_ms;
    decision_time_ms;
    total_ms = shadow_time_ms +. decision_time_ms +. scope_ms;
  }

let run () =
  let r =
    Report.create
      ~title:"Hardware offload model (paper SVI: MITOS in a SoC)"
  in
  let built = Mitos_workload.Netbench.build ~seed:Calib.netbench_seed () in
  let engine =
    Mitos_workload.Workload.run_live
      ~policy:(Policies.mitos (Calib.sensitivity_params ()))
      built
  in
  let summary = Metrics.of_engine engine in
  Report.textf r
    "Inputs (measured on the netbench run under MITOS): %d shadow-list \
     operations, %d IFP decisions, %d instructions."
    summary.Metrics.shadow_ops
    (summary.Metrics.ifp_propagated + summary.Metrics.ifp_blocked)
    summary.Metrics.steps;
  let t =
    Table.create
      ~header:
        [ "implementation"; "shadow traffic (ms)"; "decisions (ms)";
          "total (ms)" ]
      ()
  in
  List.iter
    (fun e ->
      Table.add_row t
        [
          e.label;
          Printf.sprintf "%.2f" e.shadow_time_ms;
          Printf.sprintf "%.2f" e.decision_time_ms;
          Printf.sprintf "%.2f" e.total_ms;
        ])
    [
      estimate ~label:"software (measured costs)" software_costs summary;
      estimate ~label:"SoC offload (SVI sketch)" hardware_costs summary;
    ];
  Report.table r t;
  Report.text r
    "The decision arithmetic is cheap even in software (the O(1) rule); \
     the dominant term is shadow-memory traffic, which is what the \
     paper's reserved-segment-plus-cache design attacks. Offload helps \
     both terms by roughly an order of magnitude, but does not change \
     the asymptotics - which is the point of choosing an O(1) rule in \
     the first place.";
  Report.finish r
