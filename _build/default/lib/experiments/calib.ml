open Mitos_tag

let n_r = 4 * 1024 * 1024 * 1024 * 10
let mem_capacity = Mitos_system.Layout.mem_size
let netbench_seed = 5
let attack_seed = 11

let sensitivity_params ?(alpha = 1.5) ?(tau = 0.1) ?(u_net = 1.0) () =
  Mitos.Params.make ~alpha ~tau ~tau_scale:5e4
    ~u:[ (Tag_type.Network, u_net) ]
    ~total_tag_space:n_r ~mem_capacity ()

let tag_type_u_boost = [ Tag_type.Network; Tag_type.Export_table ]

let attack_params =
  Mitos.Params.make ~tau:0.01 ~tau_scale:1e5
    ~u:(List.map (fun ty -> (ty, 50.0)) tag_type_u_boost)
    ~total_tag_space:n_r ~mem_capacity ()

let attack_engine_config =
  { Mitos_dift.Engine.default_config with route_direct_through_policy = true }

let mitos_all_flows params =
  Mitos_dift.Policies.mitos ~name:"mitos-all-flows" ~handle_direct:true params
