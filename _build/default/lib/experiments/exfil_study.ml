open Mitos_dift
open Mitos_tag
module W = Mitos_workload
module Table = Mitos_util.Table

type row = {
  policy : string;
  sink_tainted : int;
  file_attributed : int;
  shadow_ops : int;
}

let run_policy name policy =
  let built = W.Exfil.build ~seed:19 () in
  let engine = W.Workload.run_live ~policy built in
  let sink = W.Exfil.exfil_sink built in
  let attribution =
    match List.assoc_opt sink (Engine.sink_profile engine) with
    | Some a -> a
    | None -> []
  in
  let total = ref 0 and file = ref 0 in
  List.iter
    (fun (tag, n) ->
      (* a byte with k tags contributes k attribution entries; count
         distinct bytes via the engine counter and file-derived bytes
         via the File rows *)
      if Tag_type.equal (Tag.ty tag) Tag_type.File then file := !file + n;
      total := !total + n)
    attribution;
  {
    policy = name;
    sink_tainted = (Engine.counters engine).Engine.sink_tainted_bytes;
    file_attributed = !file;
    shadow_ops = (Engine.counters engine).Engine.shadow_ops;
  }

let run () =
  let r =
    Report.create
      ~title:"Case study 2: exfiltration tracking (sink attribution)"
  in
  Report.textf r
    "Ground truth: %d of the %d exfiltrated bytes derive from the secret \
     file (table-encoded); %d are benign cover traffic."
    W.Exfil.secret_len
    (W.Exfil.secret_len + W.Exfil.benign_len)
    W.Exfil.benign_len;
  let t =
    Table.create
      ~header:
        [ "policy"; "tainted @ sink"; "file-attributed"; "recall"; "ops" ]
      ()
  in
  List.iter
    (fun (name, policy) ->
      let row = run_policy name policy in
      Table.add_row t
        [
          row.policy;
          string_of_int row.sink_tainted;
          string_of_int row.file_attributed;
          Printf.sprintf "%.0f%%"
            (100.0
            *. float_of_int row.file_attributed
            /. float_of_int W.Exfil.secret_len);
          string_of_int row.shadow_ops;
        ])
    [
      ("faros", Policies.faros);
      ("minos-width", Policies.minos_width);
      ("mitos (default)", Policies.mitos (Calib.sensitivity_params ()));
      ( "mitos (u_file=50)",
        Policies.mitos
          (Mitos.Params.with_u
             (Calib.sensitivity_params ())
             Tag_type.File 50.0) );
      ("propagate-all", Policies.propagate_all);
    ];
  Report.table r t;
  Report.text r
    "Without indirect flows the leak is invisible (0% recall): the \
     encoded bytes carry no file tag at the sink. MITOS under default \
     weights recovers partial attribution (the file tag crosses its \
     propagation threshold midway through the encode); prioritizing the \
     file semantics (u_file=50, the paper's per-type weighting) recovers \
     it fully while still deciding per flow.";
  Report.finish r
