(** A first-order cost model for "MITOS in Hardware" (paper §VI).

    The paper sketches moving the decisioning to a SoC component fed
    from the CPU's commit stage, with tag state in a reserved memory
    segment fronted by dedicated caches. This module quantifies the
    sketch: it takes the {e measured} event counts of a tracked run
    (shadow-list operations, indirect-flow decisions) and per-event
    cost parameters for a software and a hardware implementation, and
    reports the estimated tracking time of each — making explicit
    which term dominates and what the offload can and cannot buy. *)

type costs = {
  ns_per_shadow_op : float;
  ns_per_decision : float;
  ns_per_scope_check : float;  (** control-scope bookkeeping per step *)
}

val software_costs : costs
(** Calibrated from this repository's bechamel microbenchmarks (a
    shadow op ≈ 0.5 µs including hash lookup; an Alg. 2 decision
    ≈ 0.45 µs per candidate). *)

val hardware_costs : costs
(** The §VI sketch: the marginal evaluation is two fixed-point ops in
    dedicated logic (≈ 2 ns), tag traffic hits a specialized cache
    (≈ 20 ns per list operation). *)

type estimate = {
  label : string;
  shadow_time_ms : float;
  decision_time_ms : float;
  total_ms : float;
}

val estimate :
  label:string -> costs -> Mitos_dift.Metrics.summary -> estimate

val run : unit -> Report.section
