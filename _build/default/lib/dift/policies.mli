(** The policy zoo: the paper's two endpoints of the dilemma, the
    heuristics from prior work it discusses (§VII), and MITOS itself. *)

open Mitos_tag

val faros : Policy.t
(** The FAROS baseline (paper Table II row 1): propagate {e every}
    direct flow, {e no} indirect flows — the undertainting endpoint
    for IFPs. *)

val propagate_all : Policy.t
(** RIFLE/GLIFT-style correctness-first: propagate everything — the
    overtainting endpoint. *)

val block_all : Policy.t
(** Degenerate no-tracking policy (sanity baseline). *)

val minos_width : Policy.t
(** Minos-inspired heuristic: address dependencies propagate for
    1-byte accesses and are blocked for word accesses; control
    dependencies are blocked. *)

val probabilistic : seed:int -> p:float -> Policy.t
(** Propagates each indirect candidate independently with probability
    [p]; direct flows always propagate. *)

val pollution_threshold : limit:int -> Policy.t
(** Propagates indirect flows only while the total number of copies in
    the system is below [limit] (a crude global back-pressure
    heuristic). *)

(** A per-decision observation, for the Fig. 7 instrumentation. *)
type observation = {
  step : int;
  tag : Tag.t;
  kind : Policy.flow_kind;
  under : float;  (** undertainting submarginal of Eq. (8) *)
  over : float;  (** overtainting submarginal (includes τ) *)
  propagated : bool;
}

val mitos :
  ?name:string ->
  ?pollution_source:(Tag_stats.t -> float) ->
  ?observe:(observation -> unit) ->
  ?handle_direct:bool ->
  ?recompute:bool ->
  Mitos.Params.t ->
  Policy.t
(** The MITOS policy (Alg. 2 per flow).

    - [pollution_source] overrides where the global pollution estimate
      comes from — exact local statistics by default; distributed
      deployments substitute a stale shared estimate.
    - [observe] is called once per candidate tag with the Eq. (8)
      submarginals and the decision.
    - [handle_direct] (default [false]): when [true], direct flows are
      also routed through Alg. 2 (the paper's Table II configuration,
      §V-C); when [false] direct flows propagate unconditionally and
      only indirect flows are decided.
    - [recompute] (default [true]): the paper's line 9 (pollution
      update between accepted tags); [false] gives the ablation. *)

val mitos_adaptive :
  ?name:string ->
  ?update_period:int ->
  ?handle_direct:bool ->
  Mitos.Adaptive.t ->
  Policy.t
(** MITOS with online τ adaptation: every [update_period] (default
    256) decisions the controller observes the live pollution and
    adjusts τ toward its budget, then Alg. 2 runs under the updated
    parameters. The controller is shared state — read
    [Mitos.Adaptive.tau] during or after the run to see where τ
    settled. *)

val with_confluence_boost :
  ?factor:float ->
  pairs:(Tag_type.t * Tag_type.t) list ->
  Mitos.Params.t ->
  Policy.t
(** The paper's "tag confluence" control (SIV-B1): when a flow's
    candidate set contains tags of both types of a watched pair —
    e.g. netflow and export-table arriving together, the in-memory
    attack's hallmark — the undertainting weights of those types are
    boosted by [factor] (default 25) for that decision, making the
    suspicious combination much harder to block. Direct flows
    propagate unconditionally; indirect flows run Alg. 2 under the
    context-dependent parameters. *)
