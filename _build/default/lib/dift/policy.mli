(** Propagation policies.

    Every time the engine is about to move tags, it builds a
    {!request} and asks the active policy which of the candidate tags
    to write to the destination. Baseline DIFTs and MITOS are all
    instances of this one interface, so the evaluation can swap them
    freely (the paper's FAROS vs. MITOS comparison). *)

open Mitos_tag

(** Which dependency class produced the flow. *)
type flow_kind =
  | Direct_copy  (** copy dependency (mov/load/store data movement) *)
  | Direct_compute  (** computation dependency (ALU results) *)
  | Addr  (** indirect: address dependency *)
  | Ctrl  (** indirect: control dependency (branch scope write) *)
  | Ijump  (** indirect: tainted indirect-jump target *)

val flow_kind_to_string : flow_kind -> string
val is_indirect : flow_kind -> bool

type request = {
  kind : flow_kind;
  candidates : Tag.t list;  (** source tags, oldest first, deduplicated *)
  space : int;  (** free slots in the destination's provenance list *)
  width : int;  (** access width in bytes; 0 when not an access *)
  stats : Tag_stats.t;  (** live copy counts (the control vector [n]) *)
  step : int;  (** machine step, for logging *)
}

type t = {
  name : string;
  select : request -> Tag.t list;
      (** subset of [candidates] to propagate, in insertion order *)
}

val make : name:string -> select:(request -> Tag.t list) -> t
val name : t -> string
val select : t -> request -> Tag.t list
