open Mitos_tag

let glyph_of_fraction f =
  if f <= 0.0 then ' '
  else if f < 0.25 then '.'
  else if f < 0.5 then ':'
  else if f < 1.0 then '*'
  else '#'

let render ?(width = 64) ?bytes_per_cell ?highlight ~base ~len shadow =
  if len <= 0 || width <= 0 then ""
  else begin
    let bucket_size =
      match bytes_per_cell with
      | Some b when b >= 1 -> b
      | Some b -> invalid_arg (Printf.sprintf "Taint_map: bytes_per_cell %d" b)
      | None -> max 1 ((len + width - 1) / width)
    in
    let buf = Buffer.create 512 in
    let pos = ref base in
    while !pos < base + len do
      Buffer.add_string buf (Printf.sprintf "%#08x  " !pos);
      let row_end = min (base + len) (!pos + (bucket_size * width)) in
      while !pos < row_end do
        let bucket_end = min row_end (!pos + bucket_size) in
        let tainted = ref 0 and hit = ref false in
        for a = !pos to bucket_end - 1 do
          if Shadow.is_tainted_addr shadow a then begin
            incr tainted;
            match highlight with
            | Some (ty1, ty2) ->
              if
                Shadow.addr_has_type shadow a ty1
                && Shadow.addr_has_type shadow a ty2
              then hit := true
            | None -> ()
          end
        done;
        let cell =
          if !hit then '!'
          else
            glyph_of_fraction
              (float_of_int !tainted /. float_of_int (bucket_end - !pos))
        in
        Buffer.add_char buf cell;
        pos := bucket_end
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf
  end

let region_tainted shadow ~base ~len =
  let n = ref 0 in
  for a = base to base + len - 1 do
    if Shadow.is_tainted_addr shadow a then incr n
  done;
  !n

let render_regions ?(width = 64) ?bytes_per_cell ?highlight regions shadow =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, base, len) ->
      let tainted = region_tainted shadow ~base ~len in
      if tainted = 0 then
        Buffer.add_string buf
          (Printf.sprintf "-- %s [%#x..%#x): clean --\n" name base (base + len))
      else begin
        Buffer.add_string buf
          (Printf.sprintf "-- %s [%#x..%#x): %d tainted bytes --\n" name base
             (base + len) tainted);
        Buffer.add_string buf
          (render ~width ?bytes_per_cell ?highlight ~base ~len shadow)
      end)
    regions;
  Buffer.contents buf
