open Mitos_tag

type flow_kind = Direct_copy | Direct_compute | Addr | Ctrl | Ijump

let flow_kind_to_string = function
  | Direct_copy -> "copy"
  | Direct_compute -> "compute"
  | Addr -> "addr-dep"
  | Ctrl -> "ctrl-dep"
  | Ijump -> "ijump"

let is_indirect = function
  | Addr | Ctrl | Ijump -> true
  | Direct_copy | Direct_compute -> false

type request = {
  kind : flow_kind;
  candidates : Tag.t list;
  space : int;
  width : int;
  stats : Tag_stats.t;
  step : int;
}

type t = { name : string; select : request -> Tag.t list }

let make ~name ~select = { name; select }
let name t = t.name
let select t request = t.select request
