(** ASCII rendering of the shadow state — the "illuminating the
    information flow" view. Each character cell covers a fixed number
    of bytes; its glyph encodes the tainted fraction of the bucket, and
    buckets containing detection hits (bytes carrying both watched tag
    types) render as ['!']. *)

open Mitos_tag

val render :
  ?width:int ->
  ?bytes_per_cell:int ->
  ?highlight:Tag_type.t * Tag_type.t ->
  base:int ->
  len:int ->
  Shadow.t ->
  string
(** [render ~base ~len shadow] maps [\[base, base+len)] to rows of
    [width] cells (default 64); each cell covers [bytes_per_cell]
    bytes (default: whatever fits the whole range on one row). Glyph
    scale: ' ' (clean), '.', ':', '*', '#' (fully tainted), '!'
    (highlight pair present). Row labels are hex addresses. *)

val render_regions :
  ?width:int ->
  ?bytes_per_cell:int ->
  ?highlight:Tag_type.t * Tag_type.t ->
  (string * int * int) list ->
  Shadow.t ->
  string
(** [(name, base, len)] sections, each rendered under its own
    heading; empty (fully clean) regions are summarized in one line. *)
