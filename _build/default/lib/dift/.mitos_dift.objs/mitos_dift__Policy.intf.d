lib/dift/policy.mli: Mitos_tag Tag Tag_stats
