lib/dift/policy.ml: Mitos_tag Tag Tag_stats
