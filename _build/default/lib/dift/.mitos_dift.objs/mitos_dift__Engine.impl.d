lib/dift/engine.ml: Array Hashtbl Int List Mitos_flow Mitos_isa Mitos_tag Policy Provenance Shadow Tag Tag_stats Tag_type
