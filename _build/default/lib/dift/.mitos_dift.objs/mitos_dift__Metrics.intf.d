lib/dift/metrics.mli: Engine Format Mitos Mitos_tag Mitos_util Shadow
