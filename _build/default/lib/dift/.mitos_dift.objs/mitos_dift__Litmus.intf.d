lib/dift/litmus.mli: Policy
