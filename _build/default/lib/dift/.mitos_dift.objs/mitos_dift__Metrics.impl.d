lib/dift/metrics.ml: Engine Format Mitos Mitos_isa Mitos_tag Mitos_util Policy Printf Shadow Tag_stats Tag_type Unix
