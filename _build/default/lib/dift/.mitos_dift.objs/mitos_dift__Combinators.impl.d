lib/dift/combinators.ml: List Mitos_tag Policy Printf String Tag Tag_type
