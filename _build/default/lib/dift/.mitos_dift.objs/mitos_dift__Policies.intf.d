lib/dift/policies.mli: Mitos Mitos_tag Policy Tag Tag_stats Tag_type
