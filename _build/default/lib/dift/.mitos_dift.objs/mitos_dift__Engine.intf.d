lib/dift/engine.mli: Mitos_isa Mitos_tag Policy Shadow Tag Tag_stats Tag_type
