lib/dift/policies.ml: List Mitos Mitos_tag Mitos_util Policy Printf Tag Tag_stats Tag_type
