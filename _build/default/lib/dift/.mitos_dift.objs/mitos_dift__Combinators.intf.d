lib/dift/combinators.mli: Mitos_tag Policy Tag Tag_type
