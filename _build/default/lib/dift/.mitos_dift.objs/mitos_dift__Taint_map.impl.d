lib/dift/taint_map.ml: Buffer List Mitos_tag Printf Shadow
