lib/dift/litmus.ml: Array Bytes Engine List Mitos_isa Mitos_tag Shadow Tag Tag_type
