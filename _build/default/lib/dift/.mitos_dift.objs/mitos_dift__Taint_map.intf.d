lib/dift/taint_map.mli: Mitos_tag Shadow Tag_type
