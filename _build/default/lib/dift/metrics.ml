open Mitos_tag

type summary = {
  policy : string;
  steps : int;
  wall_seconds : float;
  shadow_ops : int;
  footprint_bytes : int;
  tainted_bytes : int;
  total_copies : int;
  distinct_tags : int;
  ifp_propagated : int;
  ifp_blocked : int;
  dfp_propagated : int;
  ctrl_scopes : int;
  detected_bytes : int;
  fairness : Mitos.Fairness.report;
}

let detection_bytes shadow =
  Shadow.bytes_with_both shadow Tag_type.Network Tag_type.Export_table

let of_engine ?(wall_seconds = 0.0) engine =
  let shadow = Engine.shadow engine in
  let stats = Shadow.stats shadow in
  let c = Engine.counters engine in
  {
    policy = Policy.name (Engine.policy engine);
    steps = c.Engine.steps;
    wall_seconds;
    shadow_ops = c.Engine.shadow_ops;
    footprint_bytes = Shadow.footprint_bytes shadow;
    tainted_bytes = Shadow.tainted_bytes shadow;
    total_copies = Tag_stats.total stats;
    distinct_tags = Tag_stats.distinct stats;
    ifp_propagated = c.Engine.ifp_propagated;
    ifp_blocked = c.Engine.ifp_blocked;
    dfp_propagated = c.Engine.dfp_propagated;
    ctrl_scopes = c.Engine.ctrl_scopes_opened;
    detected_bytes = detection_bytes shadow;
    fairness = Mitos.Fairness.of_stats stats;
  }

let measure_run ?max_steps engine =
  let t0 = Unix.gettimeofday () in
  ignore (Engine.run ?max_steps engine);
  let wall_seconds = Unix.gettimeofday () -. t0 in
  of_engine ~wall_seconds engine

let propagation_rate s =
  let total = s.ifp_propagated + s.ifp_blocked in
  if total = 0 then 1.0 else float_of_int s.ifp_propagated /. float_of_int total

let header =
  [
    "policy"; "steps"; "shadow-ops"; "space(B)"; "tainted"; "copies";
    "ifp+"; "ifp-"; "detected"; "mse";
  ]

let row s =
  [
    s.policy;
    string_of_int s.steps;
    string_of_int s.shadow_ops;
    string_of_int s.footprint_bytes;
    string_of_int s.tainted_bytes;
    string_of_int s.total_copies;
    string_of_int s.ifp_propagated;
    string_of_int s.ifp_blocked;
    string_of_int s.detected_bytes;
    Printf.sprintf "%.3g" s.fairness.Mitos.Fairness.mse;
  ]

type timeline = {
  steps_series : Mitos_util.Timeseries.t;
  copies : Mitos_util.Timeseries.t;
  tainted : Mitos_util.Timeseries.t;
  distinct : Mitos_util.Timeseries.t;
}

let attach_timeline ?(sample_every = 1024) engine =
  if sample_every < 1 then invalid_arg "Metrics.attach_timeline: sample_every";
  let timeline =
    {
      steps_series = Mitos_util.Timeseries.create ~name:"steps" ();
      copies = Mitos_util.Timeseries.create ~name:"copies" ();
      tainted = Mitos_util.Timeseries.create ~name:"tainted" ();
      distinct = Mitos_util.Timeseries.create ~name:"distinct" ();
    }
  in
  let count = ref 0 in
  Engine.on_record engine (fun record ->
      incr count;
      if !count mod sample_every = 0 then begin
        let step = float_of_int record.Mitos_isa.Machine.step in
        let stats = Engine.stats engine in
        Mitos_util.Timeseries.add timeline.steps_series step step;
        Mitos_util.Timeseries.add timeline.copies step
          (float_of_int (Tag_stats.total stats));
        Mitos_util.Timeseries.add timeline.tainted step
          (float_of_int (Shadow.tainted_bytes (Engine.shadow engine)));
        Mitos_util.Timeseries.add timeline.distinct step
          (float_of_int (Tag_stats.distinct stats))
      end);
  timeline

let pp ppf s =
  Format.fprintf ppf
    "%s: steps=%d ops=%d space=%dB tainted=%d copies=%d ifp=+%d/-%d \
     detected=%d"
    s.policy s.steps s.shadow_ops s.footprint_bytes s.tainted_bytes
    s.total_copies s.ifp_propagated s.ifp_blocked s.detected_bytes
