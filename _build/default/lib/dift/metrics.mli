(** Run-level measurement: the quantities the paper's evaluation
    reports, extracted from a finished (or running) engine. *)

open Mitos_tag

type summary = {
  policy : string;
  steps : int;
  wall_seconds : float;  (** measured by {!measure_run} *)
  shadow_ops : int;  (** time-cost proxy (deterministic) *)
  footprint_bytes : int;  (** shadow-memory space (Table II "Space") *)
  tainted_bytes : int;
  total_copies : int;
  distinct_tags : int;
  ifp_propagated : int;
  ifp_blocked : int;
  dfp_propagated : int;
  ctrl_scopes : int;
  detected_bytes : int;
      (** bytes carrying both netflow and export-table tags — the
          paper's in-memory-attack detection metric (Table II) *)
  fairness : Mitos.Fairness.report;
}

val of_engine : ?wall_seconds:float -> Engine.t -> summary

val measure_run : ?max_steps:int -> Engine.t -> summary
(** [Engine.run] under a wall clock. *)

val detection_bytes : Shadow.t -> int
(** [Shadow.bytes_with_both shadow Network Export_table]. *)

val propagation_rate : summary -> float
(** Fraction of IFP candidates propagated; 1 if none were seen. *)

val header : string list
(** Column labels matching {!row}. *)

val row : summary -> string list
(** Render for {!Mitos_util.Table}. *)

val pp : Format.formatter -> summary -> unit

(** {1 Live timelines}

    Sampling of system-level quantities while the engine runs — the
    raw series behind "pollution is (mostly) increasing on time"
    (paper §V-B). *)

type timeline = {
  steps_series : Mitos_util.Timeseries.t;  (** x = machine step *)
  copies : Mitos_util.Timeseries.t;  (** total tag copies *)
  tainted : Mitos_util.Timeseries.t;  (** tainted memory bytes *)
  distinct : Mitos_util.Timeseries.t;  (** live distinct tags *)
}

val attach_timeline : ?sample_every:int -> Engine.t -> timeline
(** Register a sampling hook on the engine (default: every 1024
    processed records). Attach before running. *)
