open Mitos_isa
module Os = Mitos_system.Os
module Rng = Mitos_util.Rng

let runny_payload rng n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    let byte = Char.chr (Rng.int rng 256) in
    let run = 1 + Rng.int rng 8 in
    for _ = 1 to min run (n - Buffer.length buf) do
      Buffer.add_char buf byte
    done
  done;
  Buffer.contents buf

(* Register use: r4 in-ptr, r5 out-ptr, r6 in-end, r8 current byte,
   r9 probe byte, r10 run length, r11 probe ptr, r13 consts. *)
let build ?(input_len = 2048) ~seed () =
  let os = Os.create ~seed () in
  let rng = Rng.create (seed + 3) in
  let conn = Os.open_connection_with os (runny_payload rng input_len) in
  let cg = Codegen.create () in
  let a = Codegen.asm cg in
  Codegen.sys_net_read cg ~conn:(Os.conn_id conn) ~dst:Mem.buf_in
    ~len:input_len;
  Asm.li a 4 Mem.buf_in;
  Asm.li a 5 Mem.buf_out;
  Asm.li a 6 (Mem.buf_in + input_len);
  Codegen.while_lt cg 4 6 (fun () ->
      Asm.loadb a 8 4 0;
      Asm.li a 10 1;
      (* extend the run while the next byte matches *)
      let run_done = Codegen.fresh cg "run_done" in
      let run_top = Codegen.fresh cg "run_top" in
      Asm.label a run_top;
      Asm.bin a Instr.Add 11 4 10;
      Asm.branch a Instr.Geu 11 6 run_done;
      Asm.loadb a 9 11 0;
      Asm.branch a Instr.Ne 9 8 run_done;
      Asm.li a 13 255;
      Asm.branch a Instr.Geu 10 13 run_done;
      Asm.bini a Instr.Add 10 10 1;
      Asm.jmp a run_top;
      Asm.label a run_done;
      (* emit (count, byte); the count is control-dependent taint *)
      Asm.storeb a 10 5 0;
      Asm.storeb a 8 5 1;
      Asm.bini a Instr.Add 5 5 2;
      Asm.bin a Instr.Add 4 4 10);
  (* report the compressed length *)
  Asm.li a 8 Mem.results;
  Asm.emit a (Instr.Store (Instr.W32, 5, 8, 0));
  Codegen.sys_net_send cg ~conn:(Os.conn_id conn) ~src:Mem.buf_out ~len:64;
  Codegen.sys_exit cg;
  {
    Workload.name = "compress";
    description =
      Printf.sprintf "run-length compression of %dB of tainted input"
        input_len;
    program = Codegen.assemble cg;
    os;
  }
