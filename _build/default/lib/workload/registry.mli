(** Name-indexed access to every workload (CLI and test convenience). *)

type entry = {
  name : string;
  summary : string;
  build : seed:int -> Workload.built;
}

val all : entry list
(** Benchmarks plus all six attack variants. *)

val names : string list
val find : string -> entry
(** Raises [Not_found]. *)

val build : string -> seed:int -> Workload.built
(** [build name ~seed] — raises [Not_found] for unknown names. *)
