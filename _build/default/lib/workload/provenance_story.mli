(** The paper's Fig. 2, as a runnable program.

    "This byte came from a network source, was read as part of the
    address space of a process, was written into a file and then was
    read as part of an address space of another process."

    The workload reproduces that life cycle byte-for-byte: network
    payload lands in process A's space, process B reads it across the
    process boundary, writes it to a file, and process C reads the
    file back — so the final copy's provenance list reads
    [network; process-A; file; process-C-or-B...] in arrival order,
    exactly the list in the figure. *)

val final_region : int * int
(** (addr, len) of the byte range holding the fully-accumulated
    provenance. *)

val payload_len : int

val build : seed:int -> unit -> Workload.built
