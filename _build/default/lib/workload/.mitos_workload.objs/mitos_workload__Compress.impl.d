lib/workload/compress.ml: Asm Buffer Char Codegen Instr Mem Mitos_isa Mitos_system Mitos_util Printf Workload
