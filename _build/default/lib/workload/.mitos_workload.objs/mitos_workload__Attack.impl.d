lib/workload/attack.ml: Asm Char Codegen Instr List Mem Mitos_isa Mitos_system Mitos_util Printf String Workload
