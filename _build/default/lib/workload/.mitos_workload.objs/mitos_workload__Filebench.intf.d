lib/workload/filebench.mli: Workload
