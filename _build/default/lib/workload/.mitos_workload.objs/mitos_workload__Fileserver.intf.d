lib/workload/fileserver.mli: Workload
