lib/workload/provenance_story.ml: Codegen Mem Mitos_system Workload
