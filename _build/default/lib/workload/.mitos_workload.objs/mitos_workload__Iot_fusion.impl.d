lib/workload/iot_fusion.ml: Asm Char Codegen Instr Mem Mitos_isa Mitos_system Printf String Workload
