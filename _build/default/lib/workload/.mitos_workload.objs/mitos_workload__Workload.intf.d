lib/workload/workload.mli: Engine Mitos_dift Mitos_isa Mitos_replay Mitos_system Policy
