lib/workload/netbench.ml: Array Asm Char Codegen Instr Mem Mitos_isa Mitos_system Printf String Workload
