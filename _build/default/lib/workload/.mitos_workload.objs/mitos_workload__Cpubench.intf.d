lib/workload/cpubench.mli: Workload
