lib/workload/strings.mli: Workload
