lib/workload/cpubench.ml: Asm Codegen Instr Mem Mitos_isa Mitos_system Printf Workload
