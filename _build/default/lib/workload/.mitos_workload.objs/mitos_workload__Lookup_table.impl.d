lib/workload/lookup_table.ml: Asm Codegen Instr Mem Mitos_isa Mitos_system String Workload
