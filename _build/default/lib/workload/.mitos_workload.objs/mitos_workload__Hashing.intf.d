lib/workload/hashing.mli: Workload
