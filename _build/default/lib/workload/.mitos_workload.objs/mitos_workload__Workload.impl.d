lib/workload/workload.ml: Engine Mitos_dift Mitos_isa Mitos_replay Mitos_system Option
