lib/workload/crypto.mli: Workload
