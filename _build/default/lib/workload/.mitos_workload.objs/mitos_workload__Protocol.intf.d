lib/workload/protocol.mli: Workload
