lib/workload/compress.mli: Workload
