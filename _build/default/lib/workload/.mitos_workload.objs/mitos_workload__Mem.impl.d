lib/workload/mem.ml: Mitos_system
