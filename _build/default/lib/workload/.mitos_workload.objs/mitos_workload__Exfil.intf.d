lib/workload/exfil.mli: Workload
