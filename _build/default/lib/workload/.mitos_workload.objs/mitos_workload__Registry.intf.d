lib/workload/registry.mli: Workload
