lib/workload/netbench.mli: Workload
