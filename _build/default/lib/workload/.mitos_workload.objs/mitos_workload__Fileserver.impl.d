lib/workload/fileserver.ml: Array Asm Buffer Char Codegen Instr List Mem Mitos_isa Mitos_system Mitos_util Printf String Workload
