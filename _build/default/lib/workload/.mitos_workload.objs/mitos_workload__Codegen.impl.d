lib/workload/codegen.ml: Asm Instr Mitos_isa Mitos_system Printf
