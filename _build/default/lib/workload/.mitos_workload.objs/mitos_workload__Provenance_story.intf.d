lib/workload/provenance_story.mli: Workload
