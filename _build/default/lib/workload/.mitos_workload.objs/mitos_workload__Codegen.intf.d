lib/workload/codegen.mli: Asm Instr Mitos_isa Program
