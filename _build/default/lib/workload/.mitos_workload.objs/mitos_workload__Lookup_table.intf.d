lib/workload/lookup_table.mli: Workload
