lib/workload/registry.ml: Attack Compress Cpubench Crypto Exfil Filebench Fileserver Hashing Iot_fusion List Lookup_table Netbench Printf Protocol Provenance_story Strings Workload
