lib/workload/iot_fusion.mli: Workload
