lib/workload/attack.mli: Workload
