lib/workload/filebench.ml: Asm Char Codegen Instr Mem Mitos_isa Mitos_system Mitos_util Printf String Workload
