lib/workload/protocol.ml: Asm Buffer Char Codegen Instr List Mem Mitos_isa Mitos_system Mitos_util Printf String Workload
