lib/workload/strings.ml: Asm Char Codegen Instr Mem Mitos_isa Mitos_system String Workload
