open Mitos_isa
module Os = Mitos_system.Os

let key_len = 8

(* Register use: r4 key ptr, r5 byte index, r6 end, r7 hash, r8 byte,
   r9 slot addr, r10 probe accumulator, r11 tmp. *)
let build ?(keys = 192) ?(table_slots = 256) ~seed () =
  if table_slots land (table_slots - 1) <> 0 then
    invalid_arg "Hashing.build: table_slots must be a power of two";
  let os = Os.create ~seed () in
  let conn = Os.open_connection ~available:(keys * key_len) os in
  let cg = Codegen.create () in
  let a = Codegen.asm cg in
  (* read all keys up front *)
  Codegen.sys_net_read cg ~conn:(Os.conn_id conn) ~dst:Mem.buf_in
    ~len:(keys * key_len);
  (* insertion: for each key, FNV-style hash then store the key's first
     byte at table[hash] (a store through a tainted address) *)
  for k = 0 to keys - 1 do
    let key_base = Mem.buf_in + (k * key_len) in
    Asm.li a 4 key_base;
    Asm.li a 6 (key_base + key_len);
    Asm.li a 7 0x811C;
    Codegen.while_lt cg 4 6 (fun () ->
        Asm.loadb a 8 4 0;
        Asm.bin a Instr.Xor 7 7 8;
        Asm.bini a Instr.Mul 7 7 0x193;
        Asm.bini a Instr.And 7 7 0xFFFFFF;
        Asm.bini a Instr.Add 4 4 1);
    Asm.bini a Instr.And 7 7 (table_slots - 1);
    Asm.bini a Instr.Add 9 7 Mem.table;
    Asm.loadb a 8 4 (-key_len);
    Asm.storeb a 8 9 0
  done;
  (* probe phase: walk the table and fold the occupancy into a digest *)
  Asm.li a 10 0;
  Asm.li a 4 Mem.table;
  Asm.li a 6 (Mem.table + table_slots);
  Codegen.while_lt cg 4 6 (fun () ->
      Asm.loadb a 11 4 0;
      Asm.bin a Instr.Add 10 10 11;
      Asm.bini a Instr.Add 4 4 1);
  Asm.li a 9 Mem.results;
  Asm.emit a (Instr.Store (Instr.W32, 10, 9, 0));
  Codegen.sys_net_send cg ~conn:(Os.conn_id conn) ~src:Mem.results ~len:4;
  Codegen.sys_exit cg;
  {
    Workload.name = "hashing";
    description =
      Printf.sprintf
        "hash-table build over %d tainted keys into %d slots (stores \
         through tainted addresses)"
        keys table_slots;
    program = Codegen.assemble cg;
    os;
  }
