(** An RC4-style stream cipher.

    Encryption is the paper's other headline indirect-flow workload
    ("attacks that use encryption mechanisms ... cannot be tracked
    without tracking indirect flows"). The key schedule permutes a
    state table with key-dependent indices (address dependencies on
    both loads and stores); the keystream is extracted through doubly
    tainted table lookups. *)

val build : ?input_len:int -> seed:int -> unit -> Workload.built
(** Default: 1024 bytes of network input encrypted under a key read
    from a file. *)
