(** String manipulation: strlen over a NUL-terminated tainted string
    (a control-dependent length), case conversion through a lookup
    table (address dependencies), and a copy — the paper's "string
    manipulations" class of indirect-flow operations. *)

val build : ?text:string -> seed:int -> unit -> Workload.built
