(* Conventional buffer placement (within the heap region) shared by
   the workload programs. *)

let buf_in = 0x50000 (* staging buffer for inbound data *)
let table = 0x51000 (* primary lookup table (256 B) *)
let table2 = 0x51800 (* secondary lookup table *)
let buf_out = 0x52000 (* transformed output *)
let key = 0x53000 (* key material *)
let buf_aux = 0x54000 (* scratch *)
let proxy = 0x55000 (* proxy hop buffer *)
let frag = 0x56000 (* fragment reassembly area *)
let results = 0x57000 (* accumulator spill area *)
let noise = 0x58000 (* benign background copy area *)
let victim_base = Mitos_system.Layout.process_base
let victim_size = 0x2000
let kernel_dst = Mitos_system.Layout.kernel_export_base
