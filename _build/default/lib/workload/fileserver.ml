open Mitos_isa
module Os = Mitos_system.Os
module Rng = Mitos_util.Rng

let documents = 3
let doc_len = 96
let docs_base = Mem.buf_aux (* preloaded documents *)
let hdr = Mem.buf_in (* incoming request header *)
let out = Mem.buf_out (* response log (also what gets sent) *)

let doc_content ~seed i =
  let rng = Rng.create (seed + 50 + i) in
  String.init doc_len (fun _ -> Char.chr (Rng.int rng 256))

let request_stream ~seed ~requests =
  let rng = Rng.create (seed + 60) in
  String.init (2 * requests) (fun k ->
      if k mod 2 = 0 then Char.chr (Rng.int rng documents)
      else Char.chr (1 + Rng.int rng doc_len))

let reference_responses ~seed ~requests =
  let docs = Array.init documents (doc_content ~seed) in
  let reqs = request_stream ~seed ~requests in
  let buf = Buffer.create 1024 in
  for r = 0 to requests - 1 do
    let id = Char.code reqs.[2 * r] in
    let len = Char.code reqs.[(2 * r) + 1] in
    Buffer.add_char buf (Char.chr ((0xA0 + id) land 0xFF));
    Buffer.add_char buf (Char.chr len);
    Buffer.add_string buf (String.sub docs.(id) 0 len)
  done;
  Buffer.contents buf

(* Registers: r4 copy src, r6 doc id, r7 req len, r8 tmp byte,
   r9 addr tmp, r10 doc base, r11 copy counter, r12 out ptr
   (persistent), r13 copy bound. *)
let build ?(requests = 24) ~seed () =
  let os = Os.create ~seed () in
  let files =
    List.init documents (fun i -> Os.create_file os (doc_content ~seed i))
  in
  let conn_req =
    Os.open_connection_with os (request_stream ~seed ~requests)
  in
  let conn_resp = Os.open_connection ~available:0 os in
  let cg = Codegen.create () in
  let a = Codegen.asm cg in
  (* preload the documents and the dispatch table *)
  List.iteri
    (fun i file ->
      Codegen.sys_file_read cg ~file:(Os.file_id file)
        ~dst:(docs_base + (i * doc_len))
        ~len:doc_len;
      Asm.li a 9 (Mem.table2 + (4 * i));
      Asm.li a 8 (docs_base + (i * doc_len));
      Asm.storew a 8 9 0)
    files;
  Asm.li a 12 out;
  for _r = 0 to requests - 1 do
    (* read one request header *)
    Codegen.sys_net_read cg ~conn:(Os.conn_id conn_req) ~dst:hdr ~len:2;
    Asm.li a 9 hdr;
    Asm.loadb a 6 9 0;
    Asm.loadb a 7 9 1;
    (* dispatch: document base through the table, indexed by the
       tainted id byte *)
    Asm.bini a Instr.Shl 9 6 2;
    Asm.bini a Instr.Add 9 9 Mem.table2;
    Asm.emit a (Instr.Load (Instr.W32, 10, 9, 0));
    (* response header: status = 0xA0 + id, then the length *)
    Asm.bini a Instr.Add 8 6 0xA0;
    Asm.storeb a 8 12 0;
    Asm.storeb a 7 12 1;
    (* body copy, bounded by the tainted length byte *)
    Asm.li a 11 0;
    Asm.mov a 4 10;
    Asm.bini a Instr.Add 12 12 2;
    Codegen.while_lt cg 11 7 (fun () ->
        Asm.loadb a 8 4 0;
        Asm.storeb a 8 12 0;
        Asm.bini a Instr.Add 4 4 1;
        Asm.bini a Instr.Add 12 12 1;
        Asm.bini a Instr.Add 11 11 1);
    (* send the framed response: start = out ptr - (len + 2) *)
    Asm.bini a Instr.Add 13 7 2;
    Asm.bin a Instr.Sub 2 12 13;
    Asm.li a 1 (Os.conn_id conn_resp);
    Asm.mov a 3 13;
    Asm.syscall a Os.sys_net_send
  done;
  Codegen.sys_exit cg;
  {
    Workload.name = "fileserver";
    description =
      Printf.sprintf
        "file server: %d framed requests dispatched over %d documents"
        requests documents;
    program = Codegen.assemble cg;
    os;
  }
