(** A small file server: request/response over the network.

    Clients send fixed-size requests (a document id byte plus a length
    byte); the server routes each request through a dispatch table
    (address dependency on the tainted document id), reads the
    requested document, frames a response (status byte + length + the
    content) and sends it back. The interesting taint questions are
    the ones real servers pose: which documents left over which
    connection ([Engine.sink_profile]), and can the response framing —
    derived from request bytes — be traced back to the client
    ([Addr]/[Ctrl] flows that a direct-only DIFT loses)? *)

val documents : int
(** 3 documents of 96 bytes each. *)

val doc_len : int

val reference_responses : seed:int -> requests:int -> string
(** The exact byte stream the server should emit, computed by an
    independent OCaml model — ground truth for the machine. *)

val build : ?requests:int -> seed:int -> unit -> Workload.built
(** Default 24 requests. *)
