open Mitos_isa
module Os = Mitos_system.Os
module Rng = Mitos_util.Rng

type variant =
  | Reverse_tcp
  | Reverse_tcp_rc4
  | Reverse_tcp_rc4_dns
  | Reverse_https
  | Reverse_https_proxy
  | Reverse_winhttps

let all_variants =
  [
    Reverse_tcp; Reverse_tcp_rc4; Reverse_tcp_rc4_dns; Reverse_https;
    Reverse_https_proxy; Reverse_winhttps;
  ]

let variant_name = function
  | Reverse_tcp -> "reverse_tcp"
  | Reverse_tcp_rc4 -> "reverse_tcp_rc4"
  | Reverse_tcp_rc4_dns -> "reverse_tcp_rc4_dns"
  | Reverse_https -> "reverse_https"
  | Reverse_https_proxy -> "reverse_https_proxy"
  | Reverse_winhttps -> "reverse_winhttps"

let variant_of_name = function
  | "reverse_tcp" -> Reverse_tcp
  | "reverse_tcp_rc4" -> Reverse_tcp_rc4
  | "reverse_tcp_rc4_dns" -> Reverse_tcp_rc4_dns
  | "reverse_https" -> Reverse_https
  | "reverse_https_proxy" -> Reverse_https_proxy
  | "reverse_winhttps" -> Reverse_winhttps
  | s -> invalid_arg (Printf.sprintf "Attack.variant_of_name: %S" s)

let payload_len = 384
let inject_site = Mem.victim_base + 0x800
let kernel_site = Mem.kernel_dst + 0x100
let injected_region = (kernel_site, payload_len)
let exec_out = Mem.victim_base + 0xC00

(* -- decode-stage emitters ------------------------------------------ *)

(* S2[i] <- (i + key[i&7]) land 255 at Mem.table2. Key is untainted
   (locally generated session key), so the table holds no taint: taint
   can only reach decoder output through indirect flows.
   Registers: r7 i, r15 bound, r11 key addr, r12 key byte, r14 value,
   r9 slot. *)
let emit_sbox_from_key cg =
  let a = Codegen.asm cg in
  Asm.li a 7 0;
  Asm.li a 15 256;
  Codegen.while_lt cg 7 15 (fun () ->
      Asm.bini a Instr.And 11 7 7;
      Asm.bini a Instr.Add 11 11 Mem.key;
      Asm.loadb a 12 11 0;
      Asm.bin a Instr.Add 14 7 12;
      Asm.bini a Instr.And 14 14 255;
      Asm.bini a Instr.Add 9 7 Mem.table2;
      Asm.storeb a 14 9 0;
      Asm.bini a Instr.Add 7 7 1)

(* Shared decoder skeleton: iterate [len] bytes from [src] to [dst]
   with a per-byte body receiving the byte in r8 and the loop index in
   r7; the body must leave the output byte in r8.
   Registers: r4 src ptr, r5 dst ptr, r6 end, r7 index. *)
let emit_byte_loop cg ~src ~dst ~len body =
  let a = Codegen.asm cg in
  Asm.li a 4 src;
  Asm.li a 5 dst;
  Asm.li a 6 (src + len);
  Asm.li a 7 0;
  Codegen.while_lt cg 4 6 (fun () ->
      Asm.loadb a 8 4 0;
      body ();
      Asm.storeb a 8 5 0;
      Asm.bini a Instr.Add 4 4 1;
      Asm.bini a Instr.Add 5 5 1;
      Asm.bini a Instr.Add 7 7 1)

let emit_key_byte cg =
  (* r12 <- key[r7 & 7] (untainted) *)
  let a = Codegen.asm cg in
  Asm.bini a Instr.And 11 7 7;
  Asm.bini a Instr.Add 11 11 Mem.key;
  Asm.loadb a 12 11 0

let emit_substitute cg =
  (* r8 <- S2[r8]: the address-dependency load that drops taint in a
     direct-flow-only DIFT *)
  let a = Codegen.asm cg in
  Asm.bini a Instr.Add 9 8 Mem.table2;
  Asm.loadb a 8 9 0

let emit_decode_rc4 cg ~src ~dst ~len =
  let a = Codegen.asm cg in
  emit_sbox_from_key cg;
  emit_byte_loop cg ~src ~dst ~len (fun () ->
      emit_key_byte cg;
      Asm.bin a Instr.Xor 8 8 12;
      emit_substitute cg)

let emit_decode_https cg ~src ~dst ~len =
  let a = Codegen.asm cg in
  emit_sbox_from_key cg;
  emit_byte_loop cg ~src ~dst ~len (fun () ->
      emit_key_byte cg;
      Asm.bin a Instr.Xor 8 8 12;
      (* even positions are substituted (taint lost without IFP),
         odd positions stay xor-only (taint kept) — the branch is on
         the untainted index so it opens no control scope *)
      Asm.bini a Instr.And 13 7 1;
      Asm.li a 14 0;
      Codegen.if_ cg Instr.Eq 13 14 (fun () -> emit_substitute cg))

let emit_decode_winhttps cg ~src ~dst ~len =
  let a = Codegen.asm cg in
  emit_sbox_from_key cg;
  emit_byte_loop cg ~src ~dst ~len (fun () ->
      (* branch on the tainted payload byte: a control dependency *)
      Asm.li a 14 128;
      Codegen.if_else cg Instr.Ltu 8 14
        (fun () ->
          emit_key_byte cg;
          Asm.bin a Instr.Xor 8 8 12)
        (fun () -> emit_substitute cg))

(* Fragmented DNS-style delivery: 4 header bytes describe where each
   fragment belongs; reassembly stores through a tainted-derived
   destination pointer. *)
let frag_count = 4
let frag_len = payload_len / frag_count
let dns_header = [ 2; 0; 3; 1 ]

(* Registers: r8 slot byte, r5 dst ptr, r4 src ptr, r6 src end,
   r9 data byte, r10 header addr. *)
let emit_dns_reassemble cg =
  let a = Codegen.asm cg in
  List.iteri
    (fun k _ ->
      Asm.li a 10 (Mem.buf_aux + k);
      Asm.loadb a 8 10 0;
      (* r5 <- buf_in + slot * frag_len : tainted destination pointer *)
      Asm.bini a Instr.Mul 8 8 frag_len;
      Asm.bini a Instr.Add 5 8 Mem.buf_in;
      Asm.li a 4 (Mem.frag + (k * frag_len));
      Asm.li a 6 (Mem.frag + ((k + 1) * frag_len));
      Codegen.while_lt cg 4 6 (fun () ->
          Asm.loadb a 9 4 0;
          Asm.storeb a 9 5 0;
          Asm.bini a Instr.Add 4 4 1;
          Asm.bini a Instr.Add 5 5 1))
    dns_header

(* -- benign background ---------------------------------------------- *)

let noise_rounds = 40

let emit_background cg ~config_file ~benign_conn =
  let a = Codegen.asm cg in
  (* The victim reads its configuration: a file tag enters its
     region. *)
  Codegen.sys_file_read cg ~file:(Os.file_id config_file)
    ~dst:Mem.victim_base ~len:128;
  (* Config churn: the tainted buffer is copied around the heap many
     times. An aggressive direct-flow DIFT tracks every copy; MITOS
     backs off once the tag is overpropagated. *)
  for round = 0 to noise_rounds - 1 do
    Codegen.memcpy_bytes cg ~src:Mem.victim_base
      ~dst:(Mem.noise + (round * 128))
      ~len:128
  done;
  (* A benign download translated through a table. *)
  Codegen.fill_table_identity cg ~base:Mem.table ~size:256 ~xor:0x1C;
  for _chunk = 0 to 3 do
    Codegen.sys_net_read cg ~conn:(Os.conn_id benign_conn)
      ~dst:Mem.buf_out ~len:128;
    Asm.li a 4 Mem.buf_out;
    Asm.li a 5 Mem.results;
    Asm.li a 6 (Mem.buf_out + 128);
    Codegen.while_lt cg 4 6 (fun () ->
        Asm.loadb a 8 4 0;
        Asm.bini a Instr.Add 9 8 Mem.table;
        Asm.loadb a 8 9 0;
        Asm.storeb a 8 5 0;
        Asm.bini a Instr.Add 4 4 1;
        Asm.bini a Instr.Add 5 5 1)
  done

(* -- the attack proper ----------------------------------------------- *)

let emit_delivery cg variant ~attack_conn ~dns_conn =
  match variant with
  | Reverse_tcp | Reverse_tcp_rc4 | Reverse_https | Reverse_winhttps ->
    Codegen.sys_net_read cg ~conn:(Os.conn_id attack_conn) ~dst:Mem.buf_in
      ~len:payload_len
  | Reverse_https_proxy ->
    (* extra staging hop through a proxy buffer *)
    Codegen.sys_net_read cg ~conn:(Os.conn_id attack_conn) ~dst:Mem.proxy
      ~len:payload_len;
    Codegen.memcpy_bytes cg ~src:Mem.proxy ~dst:Mem.buf_in ~len:payload_len
  | Reverse_tcp_rc4_dns -> (
    match dns_conn with
    | None -> invalid_arg "Attack: dns variant needs a second connection"
    | Some dns ->
      (* header then alternating fragments over two connections *)
      Codegen.sys_net_read cg ~conn:(Os.conn_id attack_conn)
        ~dst:Mem.buf_aux ~len:frag_count;
      List.iteri
        (fun k _ ->
          let conn = if k mod 2 = 0 then attack_conn else dns in
          Codegen.sys_net_read cg ~conn:(Os.conn_id conn)
            ~dst:(Mem.frag + (k * frag_len))
            ~len:frag_len)
        dns_header;
      emit_dns_reassemble cg)

let emit_decode cg variant =
  match variant with
  | Reverse_tcp ->
    Codegen.memcpy_bytes cg ~src:Mem.buf_in ~dst:Mem.buf_out ~len:payload_len
  | Reverse_tcp_rc4 | Reverse_tcp_rc4_dns ->
    emit_decode_rc4 cg ~src:Mem.buf_in ~dst:Mem.buf_out ~len:payload_len
  | Reverse_https | Reverse_https_proxy ->
    emit_decode_https cg ~src:Mem.buf_in ~dst:Mem.buf_out ~len:payload_len
  | Reverse_winhttps ->
    emit_decode_winhttps cg ~src:Mem.buf_in ~dst:Mem.buf_out ~len:payload_len

(* The "execution" of the injected payload: value-dependent work over
   the injected bytes. Registers: r4 ptr, r6 end, r8 byte, r10 acc,
   r14 const, r5 out ptr. *)
let emit_execution cg =
  let a = Codegen.asm cg in
  Asm.li a 4 kernel_site;
  Asm.li a 6 (kernel_site + payload_len);
  Asm.li a 5 exec_out;
  Asm.li a 10 0;
  Codegen.while_lt cg 4 6 (fun () ->
      Asm.loadb a 8 4 0;
      Asm.li a 14 0x40;
      Codegen.if_ cg Instr.Geu 8 14 (fun () -> Asm.bin a Instr.Add 10 10 8);
      Asm.bini a Instr.And 14 4 63;
      Asm.li a 9 0;
      Codegen.if_ cg Instr.Eq 14 9 (fun () ->
          Asm.storeb a 10 5 0;
          Asm.bini a Instr.Add 5 5 1);
      Asm.bini a Instr.Add 4 4 1)

let build variant ~seed () =
  let os = Os.create ~seed () in
  let rng = Rng.create (seed + 101) in
  let config_file =
    Os.create_file os
      (String.init 128 (fun i -> Char.chr ((i * 31) land 0xFF)))
  in
  let benign_conn = Os.open_connection ~available:512 os in
  let payload =
    String.init payload_len (fun _ -> Char.chr (Rng.int rng 256))
  in
  let attack_conn, dns_conn =
    match variant with
    | Reverse_tcp_rc4_dns ->
      let header =
        String.concat "" (List.map (String.make 1) (List.map Char.chr dns_header))
      in
      let slice k = String.sub payload (k * frag_len) frag_len in
      (* the k-th read lands in frag slot k and is reassembled into
         payload slot dns_header[k], so the k-th delivered fragment
         must be payload slice dns_header[k]; even reads come from the
         attack connection, odd reads from the dns side channel *)
      let delivered = List.map slice dns_header in
      let every_other offset =
        String.concat ""
          (List.filteri (fun k _ -> k mod 2 = offset) delivered)
      in
      let c1 = Os.open_connection_with os (header ^ every_other 0) in
      let c2 = Os.open_connection_with os (every_other 1) in
      (c1, Some c2)
    | _ -> (Os.open_connection_with os payload, None)
  in
  let victim = Os.spawn_process os ~base:Mem.victim_base ~size:Mem.victim_size in
  let cg = Codegen.create () in
  (* 1. local session key (untainted) *)
  Codegen.sys_getrandom cg ~dst:Mem.key ~len:8;
  (* 2-4. benign background activity *)
  emit_background cg ~config_file ~benign_conn;
  (* 5. payload delivery *)
  emit_delivery cg variant ~attack_conn ~dns_conn;
  (* 6. decode *)
  emit_decode cg variant;
  (* 7. inject into the victim process *)
  Codegen.memcpy_bytes cg ~src:Mem.buf_out ~dst:inject_site ~len:payload_len;
  (* 8. reflective load: copy into the kernel linking area and mark *)
  Codegen.memcpy_bytes cg ~src:inject_site ~dst:kernel_site ~len:payload_len;
  Codegen.sys_kernel_mark_export cg ~addr:kernel_site ~len:payload_len;
  (* 9. the payload "runs" *)
  emit_execution cg;
  (* 10. reconnaissance and exfiltration *)
  Codegen.sys_proc_read cg ~pid:(Os.proc_id victim) ~dst:Mem.buf_aux ~len:64;
  Codegen.sys_net_send cg ~conn:(Os.conn_id attack_conn) ~src:exec_out
    ~len:16;
  Codegen.sys_exit cg;
  {
    Workload.name = "attack-" ^ variant_name variant;
    description =
      Printf.sprintf
        "in-memory-only attack (%s): delivery, decode, injection, \
         reflective load, execution"
        (variant_name variant);
    program = Codegen.assemble cg;
    os;
  }
