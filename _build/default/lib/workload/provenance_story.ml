module Os = Mitos_system.Os

let payload_len = 64
let stage_b = Mem.buf_aux (* process B's reading buffer *)
let final = Mem.results (* where the file content is read back *)
let final_region = (final, payload_len)

let build ~seed () =
  let os = Os.create ~seed () in
  let conn = Os.open_connection ~available:payload_len os in
  let spool = Os.create_file os "" in
  (* process A owns the landing zone; its tag marks cross-process
     reads of that region *)
  let proc_a = Os.spawn_process os ~base:Mem.victim_base ~size:payload_len in
  let cg = Codegen.create () in
  (* 1. the byte arrives from the network into process A's space *)
  Codegen.sys_net_read cg ~conn:(Os.conn_id conn) ~dst:Mem.victim_base
    ~len:payload_len;
  (* 2. process B reads A's address space: + process tag *)
  Codegen.sys_proc_read cg ~pid:(Os.proc_id proc_a) ~dst:stage_b
    ~len:payload_len;
  (* 3. B writes the bytes into a file (taint snapshot captured) *)
  Codegen.sys_file_write cg ~file:(Os.file_id spool) ~src:stage_b
    ~len:payload_len;
  (* 4. the file is read back into another address space: + file tag *)
  Codegen.sys_file_read cg ~file:(Os.file_id spool) ~dst:final
    ~len:payload_len;
  Codegen.sys_exit cg;
  {
    Workload.name = "provenance-story";
    description =
      "Fig. 2 life cycle: network -> process read -> file write -> file \
       read-back, accumulating the full provenance list";
    program = Codegen.assemble cg;
    os;
  }
