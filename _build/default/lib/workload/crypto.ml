open Mitos_isa
module Os = Mitos_system.Os
module Rng = Mitos_util.Rng

(* Emit the RC4 key schedule: permute the identity table at
   [Mem.table] under the 8-byte key at [Mem.key].
   Registers: r7 i, r10 j, r8 addr S+i, r9 S[i], r11 key index/addr,
   r12 key byte, r13 addr S+j, r14 S[j], r15 bound. *)
let emit_ksa cg =
  let a = Codegen.asm cg in
  Codegen.fill_table_identity cg ~base:Mem.table ~size:256 ~xor:0;
  Asm.li a 10 0;
  Asm.li a 7 0;
  Asm.li a 15 256;
  Codegen.while_lt cg 7 15 (fun () ->
      Asm.bini a Instr.Add 8 7 Mem.table;
      Asm.loadb a 9 8 0;
      Asm.bin a Instr.Add 10 10 9;
      Asm.bini a Instr.And 11 7 7;
      Asm.bini a Instr.Add 11 11 Mem.key;
      Asm.loadb a 12 11 0;
      Asm.bin a Instr.Add 10 10 12;
      Asm.bini a Instr.And 10 10 255;
      Asm.bini a Instr.Add 13 10 Mem.table;
      Asm.loadb a 14 13 0;
      Asm.storeb a 14 8 0;
      Asm.storeb a 9 13 0;
      Asm.bini a Instr.Add 7 7 1)

(* Emit the PRGA xor loop over [len] bytes from [src] to [dst].
   Registers: r4 src, r5 dst, r6 end, r7 i, r10 j, r8/r9/r11..r15
   as in the KSA. *)
let emit_prga cg ~src ~dst ~len =
  let a = Codegen.asm cg in
  Asm.li a 7 0;
  Asm.li a 10 0;
  Asm.li a 4 src;
  Asm.li a 5 dst;
  Asm.li a 6 (src + len);
  Codegen.while_lt cg 4 6 (fun () ->
      Asm.bini a Instr.Add 7 7 1;
      Asm.bini a Instr.And 7 7 255;
      Asm.bini a Instr.Add 8 7 Mem.table;
      Asm.loadb a 9 8 0;
      Asm.bin a Instr.Add 10 10 9;
      Asm.bini a Instr.And 10 10 255;
      Asm.bini a Instr.Add 13 10 Mem.table;
      Asm.loadb a 14 13 0;
      Asm.storeb a 14 8 0;
      Asm.storeb a 9 13 0;
      Asm.bin a Instr.Add 11 9 14;
      Asm.bini a Instr.And 11 11 255;
      Asm.bini a Instr.Add 11 11 Mem.table;
      Asm.loadb a 12 11 0;
      Asm.loadb a 15 4 0;
      Asm.bin a Instr.Xor 15 15 12;
      Asm.storeb a 15 5 0;
      Asm.bini a Instr.Add 4 4 1;
      Asm.bini a Instr.Add 5 5 1)

let build ?(input_len = 1024) ~seed () =
  let os = Os.create ~seed () in
  let rng = Rng.create (seed + 11) in
  let keyfile =
    Os.create_file os (String.init 8 (fun _ -> Char.chr (Rng.int rng 256)))
  in
  let conn = Os.open_connection ~available:input_len os in
  let cg = Codegen.create () in
  Codegen.sys_file_read cg ~file:(Os.file_id keyfile) ~dst:Mem.key ~len:8;
  Codegen.sys_net_read cg ~conn:(Os.conn_id conn) ~dst:Mem.buf_in
    ~len:input_len;
  emit_ksa cg;
  emit_prga cg ~src:Mem.buf_in ~dst:Mem.buf_out ~len:input_len;
  Codegen.sys_net_send cg ~conn:(Os.conn_id conn) ~src:Mem.buf_out
    ~len:input_len;
  Codegen.sys_exit cg;
  {
    Workload.name = "crypto";
    description =
      Printf.sprintf "RC4-style encryption of %dB under a file-sourced key"
        input_len;
    program = Codegen.assemble cg;
    os;
  }
