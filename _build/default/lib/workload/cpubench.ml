open Mitos_isa
module Os = Mitos_system.Os

(* Register use: r4 state a, r5 state b, r6 loop counter, r7 bound,
   r8 tmp, r9 tmp2, r10 spill ptr. *)
let build ?(iterations = 20_000) ~seed () =
  let os = Os.create ~seed () in
  let cg = Codegen.create () in
  let a = Codegen.asm cg in
  (* Seed the mixer from the sensor (tainted) and load two words. *)
  Codegen.sys_sensor_read cg ~dst:Mem.buf_in ~len:8;
  Asm.li a 8 Mem.buf_in;
  Asm.emit a (Instr.Load (Instr.W32, 4, 8, 0));
  Asm.emit a (Instr.Load (Instr.W32, 5, 8, 4));
  Asm.li a 6 0;
  Asm.li a 7 iterations;
  Codegen.while_lt cg 6 7 (fun () ->
      (* xorshift-style mixing: computation dependencies only *)
      Asm.bini a Instr.Shl 8 4 13;
      Asm.bin a Instr.Xor 4 4 8;
      Asm.bini a Instr.Shr 8 4 7;
      Asm.bin a Instr.Xor 4 4 8;
      Asm.bin a Instr.Add 5 5 4;
      (* occasionally branch on the tainted state *)
      Asm.bini a Instr.And 8 5 0xFF;
      Asm.li a 9 128;
      Codegen.if_ cg Instr.Ltu 8 9 (fun () ->
          Asm.bini a Instr.Add 5 5 0x1234);
      (* spill every 256th iteration *)
      Asm.bini a Instr.And 8 6 0xFF;
      Asm.li a 9 0;
      Codegen.if_ cg Instr.Eq 8 9 (fun () ->
          Asm.li a 10 Mem.results;
          Asm.emit a (Instr.Store (Instr.W32, 5, 10, 0)));
      Asm.bini a Instr.Add 6 6 1);
  Asm.li a 10 Mem.results;
  Asm.emit a (Instr.Store (Instr.W32, 4, 10, 4));
  Asm.emit a (Instr.Store (Instr.W32, 5, 10, 8));
  Codegen.sys_exit cg;
  {
    Workload.name = "cpubench";
    description =
      Printf.sprintf "CPU benchmark: %d iterations of tainted arithmetic"
        iterations;
    program = Codegen.assemble cg;
    os;
  }
