(** The paper's Fig. 1 example: a tainted input string is translated
    through a lookup table. Every output byte is produced by a load
    whose address depends on tainted data — the canonical address
    dependency. A DIFT that does not propagate indirect flows loses
    all taint across the translation. *)

val default_input : string

val build : ?input:string -> seed:int -> unit -> Workload.built
