(** Hash-table construction over tainted keys.

    Hashing is in the paper's list of operations where "indirect flows
    are expected to be the rule rather than the exception": the bucket
    an entry lands in is a function of the (tainted) key, so every
    insertion is a store through a tainted address, and every probe is
    a load through one. A direct-flow-only DIFT sees the stored values
    but has no idea the table {e layout} encodes the keys. *)

val build :
  ?keys:int -> ?table_slots:int -> seed:int -> unit -> Workload.built
(** Default: 192 8-byte keys from the network hashed into a 256-slot
    table, then probed back. *)
