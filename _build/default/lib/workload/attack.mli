(** The in-memory-only attack case study (paper §V-C).

    A payload arrives over the network ("netflow" tags), is decoded in
    place — the decode stage is where the shell variants differ and
    where indirect flows decide whether taint survives — injected into
    a victim process's address space, copied into the kernel
    linking/loading area and marked as export-table data (the
    reflective-DLL-injection step), then "executed".

    Detection (as in FAROS): a byte carrying both a netflow tag and an
    export-table tag. Variants whose decoders are pure table
    substitution lose all netflow taint under a no-indirect-flow DIFT;
    variants that mix xor (computation) stages keep part of it; the
    plain tcp shell keeps everything. The run also contains benign
    background activity (config-file churn, a benign download) so that
    the policies face a realistic tag population.

    The paper's six Metasploit shells map to: *)

type variant =
  | Reverse_tcp  (** plain staging: direct copies only *)
  | Reverse_tcp_rc4  (** substitution decode: netflow survives only
                         via address dependencies *)
  | Reverse_tcp_rc4_dns
      (** fragmented delivery + permuted reassembly + substitution *)
  | Reverse_https  (** alternating substitution / xor decode *)
  | Reverse_https_proxy  (** https plus an extra proxy copy hop *)
  | Reverse_winhttps
      (** value-dependent decode: control + address dependencies *)

val all_variants : variant list
val variant_name : variant -> string
val variant_of_name : string -> variant
(** Raises [Invalid_argument] on unknown names. *)

val payload_len : int
(** Injected payload size in bytes (384). *)

val injected_region : int * int
(** (address, length) of the payload's copy in the kernel
    linking area — ground truth for detection-efficiency metrics. *)

val build : variant -> seed:int -> unit -> Workload.built
