open Mitos_isa
module Os = Mitos_system.Os

let default_input = "This string is tainted and converted via a table"

(* Register use: r4 src ptr, r5 dst ptr, r6 end ptr, r8 byte,
   r9 table index, r10 translated byte. *)
let build ?(input = default_input) ~seed () =
  let os = Os.create ~seed () in
  let conn = Os.open_connection_with os input in
  let len = String.length input in
  let cg = Codegen.create () in
  let a = Codegen.asm cg in
  (* Build the translation table (identity xor 0x20: a case flip). *)
  Codegen.fill_table_identity cg ~base:Mem.table ~size:256 ~xor:0x20;
  (* Read the tainted input. *)
  Codegen.sys_net_read cg ~conn:(Os.conn_id conn) ~dst:Mem.buf_in ~len;
  (* Translate byte by byte through the table. *)
  Asm.li a 4 Mem.buf_in;
  Asm.li a 5 Mem.buf_out;
  Asm.li a 6 (Mem.buf_in + len);
  Codegen.while_lt cg 4 6 (fun () ->
      Asm.loadb a 8 4 0;
      Asm.bini a Instr.Add 9 8 Mem.table;
      Asm.loadb a 10 9 0;
      Asm.storeb a 10 5 0;
      Asm.bini a Instr.Add 4 4 1;
      Asm.bini a Instr.Add 5 5 1);
  (* Ship the converted string back out. *)
  Codegen.sys_net_send cg ~conn:(Os.conn_id conn) ~src:Mem.buf_out ~len;
  Codegen.sys_exit cg;
  {
    Workload.name = "lookup-table";
    description = "Fig. 1 address-dependency example (table translation)";
    program = Codegen.assemble cg;
    os;
  }
