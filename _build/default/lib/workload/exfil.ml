open Mitos_isa
module Os = Mitos_system.Os
module Rng = Mitos_util.Rng

let secret_len = 256
let benign_len = 128

(* The exfiltration connection is the second one opened (id 2); sinks
   are reported under the connection id. *)
let exfil_conn_id = 2
let exfil_sink (_ : Workload.built) = exfil_conn_id

(* Register use: r4 src ptr, r5 dst ptr, r6 end, r8 byte, r9 index. *)
let build ~seed () =
  let os = Os.create ~seed () in
  let rng = Rng.create (seed + 7) in
  let secret =
    Os.create_file os
      (String.init secret_len (fun _ -> Char.chr (Rng.int rng 256)))
  in
  let benign = Os.open_connection ~available:benign_len os in
  let exfil = Os.open_connection ~available:0 os in
  assert (Os.conn_id exfil = exfil_conn_id);
  let cg = Codegen.create () in
  let a = Codegen.asm cg in
  (* encode table *)
  Codegen.fill_table_identity cg ~base:Mem.table ~size:256 ~xor:0x3C;
  (* read the secret and the benign cover traffic *)
  Codegen.sys_file_read cg ~file:(Os.file_id secret) ~dst:Mem.buf_in
    ~len:secret_len;
  Codegen.sys_net_read cg ~conn:(Os.conn_id benign) ~dst:Mem.buf_aux
    ~len:benign_len;
  (* encode the secret through the table: address dependencies *)
  Asm.li a 4 Mem.buf_in;
  Asm.li a 5 Mem.buf_out;
  Asm.li a 6 (Mem.buf_in + secret_len);
  Codegen.while_lt cg 4 6 (fun () ->
      Asm.loadb a 8 4 0;
      Asm.bini a Instr.Add 9 8 Mem.table;
      Asm.loadb a 8 9 0;
      Asm.storeb a 8 5 0;
      Asm.bini a Instr.Add 4 4 1;
      Asm.bini a Instr.Add 5 5 1);
  (* stage the outbound message: encoded secret then benign filler *)
  Codegen.memcpy_bytes cg ~src:Mem.buf_out ~dst:Mem.proxy ~len:secret_len;
  Codegen.memcpy_bytes cg ~src:Mem.buf_aux ~dst:(Mem.proxy + secret_len)
    ~len:benign_len;
  (* ship it *)
  Codegen.sys_net_send cg ~conn:exfil_conn_id ~src:Mem.proxy
    ~len:(secret_len + benign_len);
  Codegen.sys_exit cg;
  {
    Workload.name = "exfil";
    description =
      Printf.sprintf
        "exfiltration of a %dB secret file, table-encoded and interleaved \
         with %dB of benign traffic"
        secret_len benign_len;
    program = Codegen.assemble cg;
    os;
  }
