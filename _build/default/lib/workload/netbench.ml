open Mitos_isa
module Os = Mitos_system.Os

(* Register use inside the per-chunk loop: r4 in-ptr, r5 out-ptr,
   r6 end-ptr, r8 byte, r9 index, r10 checksum, r11 tmp. *)
let build ?(conns = 4) ?(chunks = 48) ?(chunk_len = 256) ~seed () =
  if conns < 1 then invalid_arg "Netbench.build: need at least one connection";
  let os = Os.create ~seed () in
  let connections =
    Array.init conns (fun _ -> Os.open_connection ~tag_per_read:true os)
  in
  let config = Os.create_file os (String.init 128 (fun i -> Char.chr (i * 7 mod 256))) in
  let log = Os.create_file os "" in
  let cg = Codegen.create () in
  let a = Codegen.asm cg in
  (* Translation table and checksum accumulator. *)
  Codegen.fill_table_identity cg ~base:Mem.table ~size:256 ~xor:0x5A;
  Asm.li a 10 0;
  (* Read the configuration file (file-tag source). *)
  Codegen.sys_file_read cg ~file:(Os.file_id config) ~dst:Mem.buf_aux ~len:128;
  for c = 0 to chunks - 1 do
    let conn = connections.(c mod conns) in
    Codegen.sys_net_read cg ~conn:(Os.conn_id conn) ~dst:Mem.buf_in
      ~len:chunk_len;
    Asm.li a 4 Mem.buf_in;
    Asm.li a 5 Mem.buf_out;
    Asm.li a 6 (Mem.buf_in + chunk_len);
    Codegen.while_lt cg 4 6 (fun () ->
        Asm.loadb a 8 4 0;
        (* checksum: computation dependency *)
        Asm.bin a Instr.Add 10 10 8;
        (* value-dependent branch: control dependency *)
        Asm.bini a Instr.And 11 8 1;
        Asm.li a 9 1;
        Codegen.if_ cg Instr.Eq 11 9 (fun () ->
            Asm.bini a Instr.Xor 8 8 0x0F);
        (* table translation: address dependency *)
        Asm.bini a Instr.Add 9 8 Mem.table;
        Asm.loadb a 8 9 0;
        Asm.storeb a 8 5 0;
        Asm.bini a Instr.Add 4 4 1;
        Asm.bini a Instr.Add 5 5 1);
    (* Periodic simulated library load: some processed bytes reach the
       kernel linking area and are marked export-table. *)
    if c mod 8 = 7 then begin
      let kaddr = Mem.kernel_dst + (c * 8) in
      Codegen.memcpy_bytes cg ~src:Mem.buf_out ~dst:kaddr ~len:32;
      Codegen.sys_kernel_mark_export cg ~addr:kaddr ~len:32;
      (* read back export-tagged bytes and use them as table indices:
         export-table tags now compete in the IFP decisions too *)
      Asm.li a 4 kaddr;
      Asm.li a 5 Mem.results;
      Asm.li a 6 (kaddr + 32);
      Codegen.while_lt cg 4 6 (fun () ->
          Asm.loadb a 8 4 0;
          Asm.bini a Instr.Add 9 8 Mem.table;
          Asm.loadb a 8 9 0;
          Asm.storeb a 8 5 0;
          Asm.bini a Instr.Add 4 4 1;
          Asm.bini a Instr.Add 5 5 1)
    end;
    (* Periodic log write. *)
    if c mod 12 = 11 then
      Codegen.sys_file_write cg ~file:(Os.file_id log) ~src:Mem.buf_out
        ~len:64
  done;
  (* Spill the checksum and send it back on the first connection. *)
  Asm.li a 4 Mem.results;
  Asm.emit a (Instr.Store (Instr.W32, 10, 4, 0));
  Codegen.sys_net_send cg
    ~conn:(Os.conn_id connections.(0))
    ~src:Mem.results ~len:4;
  Codegen.sys_exit cg;
  {
    Workload.name = "netbench";
    description =
      Printf.sprintf
        "network benchmark: %d conns x %d chunks x %dB with checksum, \
         table translation and branching"
        conns chunks chunk_len;
    program = Codegen.assemble cg;
    os;
  }
