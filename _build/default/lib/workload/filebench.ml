open Mitos_isa
module Os = Mitos_system.Os

(* Register use: r4 in-ptr, r5 out-ptr, r6 end-ptr, r8 byte, r9 index,
   r10 running xor. *)
let build ?(rounds = 24) ?(block = 256) ~seed () =
  let os = Os.create ~seed () in
  let rng = Mitos_util.Rng.create (seed + 17) in
  let content n =
    String.init n (fun _ -> Char.chr (Mitos_util.Rng.int rng 256))
  in
  let input_a = Os.create_file os (content block) in
  let input_b = Os.create_file os (content block) in
  let output = Os.create_file os "" in
  let cg = Codegen.create () in
  let a = Codegen.asm cg in
  Codegen.fill_table_identity cg ~base:Mem.table ~size:256 ~xor:0xA5;
  Asm.li a 10 0;
  for round = 0 to rounds - 1 do
    let file = if round mod 2 = 0 then input_a else input_b in
    Codegen.sys_file_read cg ~file:(Os.file_id file) ~dst:Mem.buf_in
      ~len:block;
    Asm.li a 4 Mem.buf_in;
    Asm.li a 5 Mem.buf_out;
    Asm.li a 6 (Mem.buf_in + block);
    Codegen.while_lt cg 4 6 (fun () ->
        Asm.loadb a 8 4 0;
        Asm.bin a Instr.Xor 10 10 8;
        (* every other round goes through the table (address deps) *)
        (if round mod 2 = 1 then begin
           Asm.bini a Instr.Add 9 8 Mem.table;
           Asm.loadb a 8 9 0
         end
         else Asm.bini a Instr.Xor 8 8 0x33);
        Asm.storeb a 8 5 0;
        Asm.bini a Instr.Add 4 4 1;
        Asm.bini a Instr.Add 5 5 1);
    Codegen.sys_file_write cg ~file:(Os.file_id output) ~src:Mem.buf_out
      ~len:block;
    (* Read the output back: content round-trips through the OS and
       returns carrying the output file's tag. *)
    if round mod 4 = 3 then
      Codegen.sys_file_read cg ~file:(Os.file_id output) ~dst:Mem.buf_aux
        ~len:block
  done;
  Asm.li a 4 Mem.results;
  Asm.emit a (Instr.Store (Instr.W32, 10, 4, 0));
  Codegen.sys_exit cg;
  {
    Workload.name = "filebench";
    description =
      Printf.sprintf "file-system benchmark: %d rounds of %dB blocks" rounds
        block;
    program = Codegen.assemble cg;
    os;
  }
