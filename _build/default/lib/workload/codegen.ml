open Mitos_isa
module Os = Mitos_system.Os

type t = { asm : Asm.t; mutable next : int }

let create () = { asm = Asm.create (); next = 0 }
let asm t = t.asm

let fresh t stem =
  t.next <- t.next + 1;
  Printf.sprintf "%s_%d" stem t.next

let while_lt t ri rbound body =
  let top = fresh t "while" in
  let done_ = fresh t "wend" in
  Asm.label t.asm top;
  Asm.branch t.asm Instr.Geu ri rbound done_;
  body ();
  Asm.jmp t.asm top;
  Asm.label t.asm done_

let for_up t ri ~from ~bound_reg body =
  Asm.li t.asm ri from;
  while_lt t ri bound_reg (fun () ->
      body ();
      Asm.bini t.asm Instr.Add ri ri 1)

let negate = function
  | Instr.Eq -> Instr.Ne
  | Instr.Ne -> Instr.Eq
  | Instr.Lt -> Instr.Ge
  | Instr.Ge -> Instr.Lt
  | Instr.Ltu -> Instr.Geu
  | Instr.Geu -> Instr.Ltu

let if_ t c r1 r2 body =
  let skip = fresh t "endif" in
  Asm.branch t.asm (negate c) r1 r2 skip;
  body ();
  Asm.label t.asm skip

let if_else t c r1 r2 then_ else_ =
  let else_lbl = fresh t "else" in
  let end_lbl = fresh t "endif" in
  Asm.branch t.asm (negate c) r1 r2 else_lbl;
  then_ ();
  Asm.jmp t.asm end_lbl;
  Asm.label t.asm else_lbl;
  else_ ();
  Asm.label t.asm end_lbl

let sys3 t sysno a b c =
  Asm.li t.asm 1 a;
  Asm.li t.asm 2 b;
  Asm.li t.asm 3 c;
  Asm.syscall t.asm sysno

let sys_net_read t ~conn ~dst ~len = sys3 t Os.sys_net_read conn dst len
let sys_net_send t ~conn ~src ~len = sys3 t Os.sys_net_send conn src len
let sys_file_read t ~file ~dst ~len = sys3 t Os.sys_file_read file dst len
let sys_file_write t ~file ~src ~len = sys3 t Os.sys_file_write file src len
let sys_proc_read t ~pid ~dst ~len = sys3 t Os.sys_proc_read pid dst len
let sys_proc_write t ~pid ~src ~len = sys3 t Os.sys_proc_write pid src len

let sys_kernel_mark_export t ~addr ~len =
  sys3 t Os.sys_kernel_mark_export addr len 0

let sys_getrandom t ~dst ~len = sys3 t Os.sys_getrandom dst len 0
let sys_sensor_read t ~dst ~len = sys3 t Os.sys_sensor_read dst len 0

let sys_exit t =
  Asm.li t.asm 1 0;
  Asm.li t.asm 2 0;
  Asm.li t.asm 3 0;
  Asm.syscall t.asm Os.sys_exit

(* r12 = src ptr, r13 = dst ptr, r14 = end ptr, r15 = byte *)
let memcpy_bytes t ~src ~dst ~len =
  Asm.li t.asm 12 src;
  Asm.li t.asm 13 dst;
  Asm.li t.asm 14 (src + len);
  while_lt t 12 14 (fun () ->
      Asm.loadb t.asm 15 12 0;
      Asm.storeb t.asm 15 13 0;
      Asm.bini t.asm Instr.Add 12 12 1;
      Asm.bini t.asm Instr.Add 13 13 1)

(* r12 = i, r13 = bound, r14 = value, r15 = address *)
let fill_table_identity t ~base ~size ~xor =
  Asm.li t.asm 12 0;
  Asm.li t.asm 13 size;
  while_lt t 12 13 (fun () ->
      Asm.bini t.asm Instr.Xor 14 12 xor;
      Asm.bini t.asm Instr.Add 15 12 base;
      Asm.storeb t.asm 14 15 0;
      Asm.bini t.asm Instr.Add 12 12 1)

let assemble t = Asm.assemble t.asm
