(** The network benchmark (the paper's §V-B sensitivity workload).

    Mimics the PassMark scenario: the guest downloads data over
    several connections and processes it — checksumming (computation
    dependencies), table translation (address dependencies),
    value-dependent branching (control dependencies) — with periodic
    file activity and simulated library loads that produce
    export-table tags. This is the workload behind Figs. 7, 8 and
    9. *)

val build :
  ?conns:int ->
  ?chunks:int ->
  ?chunk_len:int ->
  seed:int ->
  unit ->
  Workload.built
(** Defaults: 4 connections, 48 chunks of 256 bytes. *)
