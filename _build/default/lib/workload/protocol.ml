open Mitos_isa
module Os = Mitos_system.Os
module Rng = Mitos_util.Rng

let default_records = 48
let xlate_xor = 0x6B

let make_message ~records seed =
  let rng = Rng.create (seed + 31) in
  let buf = Buffer.create 512 in
  for _ = 1 to records do
    let ty = Rng.int rng 4 in
    let len = 1 + Rng.int rng 16 in
    Buffer.add_char buf (Char.chr ty);
    Buffer.add_char buf (Char.chr len);
    for _ = 1 to len do
      Buffer.add_char buf (Char.chr (Rng.int rng 256))
    done
  done;
  Buffer.add_char buf '\xff';
  Buffer.contents buf

let message ~seed = make_message ~records:default_records seed

let reference_parse msg =
  let out = Buffer.create 256 in
  let checksum = ref 0 in
  let pos = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let ty = Char.code msg.[!pos] in
    if ty = 0xFF then continue_ := false
    else begin
      let len = Char.code msg.[!pos + 1] in
      let payload = String.sub msg (!pos + 2) len in
      (match ty with
      | 0 -> String.iter (fun c -> checksum := (!checksum + Char.code c) land 0xFFFFFFFF) payload
      | 1 -> Buffer.add_string out payload
      | 2 ->
        String.iter
          (fun c -> Buffer.add_char out (Char.chr (Char.code c lxor xlate_xor)))
          payload
      | _ -> ());
      pos := !pos + 2 + len
    end
  done;
  (Buffer.contents out, !checksum)

(* Register use: r4 msg ptr, r5 out ptr, r6 type, r7 len, r8 byte,
   r9 tmp addr, r10 checksum, r11 handler address, r13 payload end. *)
let build ?(records = default_records) ~seed () =
  let os = Os.create ~seed () in
  let msg = make_message ~records seed in
  let conn = Os.open_connection_with os msg in
  let cg = Codegen.create () in
  let a = Codegen.asm cg in
  (* translation table for type-2 records *)
  Codegen.fill_table_identity cg ~base:Mem.table ~size:256 ~xor:xlate_xor;
  (* jump table: handler instruction indices at table2 + 4*type *)
  List.iteri
    (fun ty label ->
      Asm.li_label a 9 label;
      Asm.li a 12 (Mem.table2 + (4 * ty));
      Asm.storew a 9 12 0)
    [ "h_checksum"; "h_copy"; "h_translate"; "h_skip" ];
  Codegen.sys_net_read cg ~conn:(Os.conn_id conn) ~dst:Mem.buf_in
    ~len:(String.length msg);
  Asm.li a 4 Mem.buf_in;
  Asm.li a 5 Mem.buf_out;
  Asm.li a 10 0;
  Asm.label a "parse";
  Asm.loadb a 6 4 0;
  (* terminator check: a control dependency on the tainted type byte *)
  Asm.li a 9 0xFF;
  Asm.branch a Instr.Eq 6 9 "done";
  Asm.loadb a 7 4 1;
  Asm.bini a Instr.Add 4 4 2;
  (* r13 <- payload end *)
  Asm.bin a Instr.Add 13 4 7;
  (* handler address: an address dependency on the tainted type *)
  Asm.bini a Instr.Shl 9 6 2;
  Asm.bini a Instr.Add 9 9 Mem.table2;
  Asm.emit a (Instr.Load (Instr.W32, 11, 9, 0));
  (* dispatch: a tainted indirect jump *)
  Asm.jr a 11;
  (* type 0: checksum the payload *)
  Asm.label a "h_checksum";
  Codegen.while_lt cg 4 13 (fun () ->
      Asm.loadb a 8 4 0;
      Asm.bin a Instr.Add 10 10 8;
      Asm.bini a Instr.Add 4 4 1);
  Asm.jmp a "parse";
  (* type 1: copy the payload out *)
  Asm.label a "h_copy";
  Codegen.while_lt cg 4 13 (fun () ->
      Asm.loadb a 8 4 0;
      Asm.storeb a 8 5 0;
      Asm.bini a Instr.Add 4 4 1;
      Asm.bini a Instr.Add 5 5 1);
  Asm.jmp a "parse";
  (* type 2: translate the payload through the table *)
  Asm.label a "h_translate";
  Codegen.while_lt cg 4 13 (fun () ->
      Asm.loadb a 8 4 0;
      Asm.bini a Instr.Add 9 8 Mem.table;
      Asm.loadb a 8 9 0;
      Asm.storeb a 8 5 0;
      Asm.bini a Instr.Add 4 4 1;
      Asm.bini a Instr.Add 5 5 1);
  Asm.jmp a "parse";
  (* type 3: skip *)
  Asm.label a "h_skip";
  Asm.mov a 4 13;
  Asm.jmp a "parse";
  Asm.label a "done";
  Asm.li a 9 Mem.results;
  Asm.emit a (Instr.Store (Instr.W32, 10, 9, 0));
  Codegen.sys_net_send cg ~conn:(Os.conn_id conn) ~src:Mem.results ~len:4;
  Codegen.sys_exit cg;
  {
    Workload.name = "protocol";
    description =
      Printf.sprintf
        "TLV protocol parser: %d records dispatched through a jump table \
         indexed by tainted type bytes"
        records;
    program = Codegen.assemble cg;
    os;
  }
