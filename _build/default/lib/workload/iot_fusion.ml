open Mitos_isa
module Os = Mitos_system.Os

(* Register use: r4 ptr, r5 out ptr, r6 end, r7 fused value, r8 byte,
   r9 index/addr, r10 alarm counter, r11 threshold. *)
let build ?(rounds = 32) ?(channels = 4) ~seed () =
  let os = Os.create ~seed () in
  let calibration =
    Os.create_file os (String.init 16 (fun i -> Char.chr (0x10 + i)))
  in
  let uplink = Os.open_connection ~available:0 os in
  let cg = Codegen.create () in
  let a = Codegen.asm cg in
  (* duty-cycle lookup table and calibration constants *)
  Codegen.fill_table_identity cg ~base:Mem.table ~size:256 ~xor:0x55;
  Codegen.sys_file_read cg ~file:(Os.file_id calibration) ~dst:Mem.key
    ~len:16;
  Asm.li a 10 0;
  for round = 0 to rounds - 1 do
    (* sample all channels into the staging buffer *)
    Codegen.sys_sensor_read cg ~dst:Mem.buf_in ~len:channels;
    (* fuse: sum of calibrated readings *)
    Asm.li a 7 0;
    Asm.li a 4 Mem.buf_in;
    Asm.li a 6 (Mem.buf_in + channels);
    Codegen.while_lt cg 4 6 (fun () ->
        Asm.loadb a 8 4 0;
        (* calibrate against the file constants: computation deps *)
        Asm.li a 9 (Mem.key + (round mod 16));
        Asm.loadb a 9 9 0;
        Asm.bin a Instr.Add 8 8 9;
        Asm.bin a Instr.Add 7 7 8;
        Asm.bini a Instr.Add 4 4 1);
    (* threshold alarm: a control dependency on the fused reading *)
    Asm.li a 11 (channels * 160);
    Codegen.if_ cg Instr.Geu 7 11 (fun () ->
        Asm.bini a Instr.Add 10 10 1);
    (* duty-cycle decision via table lookup: address dependency *)
    Asm.bini a Instr.And 9 7 0xFF;
    Asm.bini a Instr.Add 9 9 Mem.table;
    Asm.loadb a 8 9 0;
    Asm.li a 5 (Mem.buf_out + round);
    Asm.storeb a 8 5 0
  done;
  (* report duty cycles and the alarm count upstream *)
  Asm.li a 9 Mem.results;
  Asm.emit a (Instr.Store (Instr.W32, 10, 9, 0));
  Codegen.sys_net_send cg ~conn:(Os.conn_id uplink) ~src:Mem.buf_out
    ~len:rounds;
  Codegen.sys_net_send cg ~conn:(Os.conn_id uplink) ~src:Mem.results ~len:4;
  Codegen.sys_exit cg;
  {
    Workload.name = "iot-fusion";
    description =
      Printf.sprintf
        "IoT sensor hub: %d rounds x %d channels fused, thresholded and \
         duty-cycled"
        rounds channels;
    program = Codegen.assemble cg;
    os;
  }
