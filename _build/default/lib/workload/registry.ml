type entry = {
  name : string;
  summary : string;
  build : seed:int -> Workload.built;
}

let benchmarks =
  [
    {
      name = "lookup-table";
      summary = "Fig. 1 address-dependency example";
      build = (fun ~seed -> Lookup_table.build ~seed ());
    };
    {
      name = "netbench";
      summary = "network benchmark (Figs. 7-9 workload)";
      build = (fun ~seed -> Netbench.build ~seed ());
    };
    {
      name = "cpubench";
      summary = "CPU benchmark";
      build = (fun ~seed -> Cpubench.build ~seed ());
    };
    {
      name = "filebench";
      summary = "file-system benchmark";
      build = (fun ~seed -> Filebench.build ~seed ());
    };
    {
      name = "compress";
      summary = "run-length compression (control deps)";
      build = (fun ~seed -> Compress.build ~seed ());
    };
    {
      name = "crypto";
      summary = "RC4-style encryption (address deps)";
      build = (fun ~seed -> Crypto.build ~seed ());
    };
    {
      name = "strings";
      summary = "string manipulation";
      build = (fun ~seed -> Strings.build ~seed ());
    };
    {
      name = "hashing";
      summary = "hash-table build over tainted keys (store addr deps)";
      build = (fun ~seed -> Hashing.build ~seed ());
    };
    {
      name = "exfil";
      summary = "secret-file exfiltration, table-encoded (sink forensics)";
      build = (fun ~seed -> Exfil.build ~seed ());
    };
    {
      name = "iot-fusion";
      summary = "IoT sensor hub: fusion, thresholds, duty-cycle lookups";
      build = (fun ~seed -> Iot_fusion.build ~seed ());
    };
    {
      name = "provenance-story";
      summary = "Fig. 2 byte life cycle (provenance accumulation)";
      build = (fun ~seed -> Provenance_story.build ~seed ());
    };
    {
      name = "protocol";
      summary = "TLV parser: tainted jump-table dispatch (indirect jumps)";
      build = (fun ~seed -> Protocol.build ~seed ());
    };
    {
      name = "fileserver";
      summary = "request/response file server (sink attribution story)";
      build = (fun ~seed -> Fileserver.build ~seed ());
    };
  ]

let attacks =
  List.map
    (fun variant ->
      {
        name = "attack-" ^ Attack.variant_name variant;
        summary =
          Printf.sprintf "in-memory attack, %s shell"
            (Attack.variant_name variant);
        build = (fun ~seed -> Attack.build variant ~seed ());
      })
    Attack.all_variants

let all = benchmarks @ attacks
let names = List.map (fun e -> e.name) all
let find name = List.find (fun e -> e.name = name) all
let build name ~seed = (find name).build ~seed
