(** CPU benchmark: arithmetic-heavy processing of a small tainted
    seed (the paper mentions running a CPU benchmark with "similar
    behaviors"). Flows are dominated by computation dependencies with
    occasional tainted branches. *)

val build : ?iterations:int -> seed:int -> unit -> Workload.built
(** Default 20_000 iterations. *)
