open Mitos_isa
module Os = Mitos_system.Os

let default_text =
  "The Quick Brown Fox Jumps Over The Lazy Dog 0123456789 \
   And Again THE QUICK BROWN FOX"

(* Register use: r4 ptr, r5 out ptr, r6 length/end, r8 byte, r9 index,
   r10 zero. *)
let build ?(text = default_text) ~seed () =
  let os = Os.create ~seed () in
  let payload = text ^ "\000" in
  let conn = Os.open_connection_with os payload in
  let buf_len = String.length payload in
  let cg = Codegen.create () in
  let a = Codegen.asm cg in
  (* tolower table: identity with A-Z mapped down. *)
  Codegen.fill_table_identity cg ~base:Mem.table ~size:256 ~xor:0;
  Asm.li a 4 (Mem.table + Char.code 'A');
  Asm.li a 6 (Mem.table + Char.code 'Z' + 1);
  Codegen.while_lt cg 4 6 (fun () ->
      Asm.loadb a 8 4 0;
      Asm.bini a Instr.Add 8 8 32;
      Asm.storeb a 8 4 0;
      Asm.bini a Instr.Add 4 4 1);
  Codegen.sys_net_read cg ~conn:(Os.conn_id conn) ~dst:Mem.buf_in
    ~len:buf_len;
  (* strlen: scan for NUL — each iteration's continuation is a control
     dependency on a tainted byte. *)
  Asm.li a 4 Mem.buf_in;
  Asm.li a 10 0;
  let found = Codegen.fresh cg "nul" in
  let scan = Codegen.fresh cg "scan" in
  Asm.label a scan;
  Asm.loadb a 8 4 0;
  Asm.branch a Instr.Eq 8 10 found;
  Asm.bini a Instr.Add 4 4 1;
  Asm.jmp a scan;
  Asm.label a found;
  (* r6 <- length *)
  Asm.li a 8 Mem.buf_in;
  Asm.bin a Instr.Sub 6 4 8;
  (* store the (control-dependent) length *)
  Asm.li a 9 Mem.results;
  Asm.emit a (Instr.Store (Instr.W32, 6, 9, 0));
  (* tolower copy through the table *)
  Asm.li a 4 Mem.buf_in;
  Asm.li a 5 Mem.buf_out;
  Asm.li a 6 (Mem.buf_in + buf_len - 1);
  Codegen.while_lt cg 4 6 (fun () ->
      Asm.loadb a 8 4 0;
      Asm.bini a Instr.Add 9 8 Mem.table;
      Asm.loadb a 8 9 0;
      Asm.storeb a 8 5 0;
      Asm.bini a Instr.Add 4 4 1;
      Asm.bini a Instr.Add 5 5 1);
  (* plain strcpy of the lowered text *)
  Codegen.memcpy_bytes cg ~src:Mem.buf_out ~dst:Mem.buf_aux
    ~len:(buf_len - 1);
  Codegen.sys_net_send cg ~conn:(Os.conn_id conn) ~src:Mem.buf_aux
    ~len:(buf_len - 1);
  Codegen.sys_exit cg;
  {
    Workload.name = "strings";
    description = "strlen + tolower-through-table + strcpy on tainted text";
    program = Codegen.assemble cg;
    os;
  }
