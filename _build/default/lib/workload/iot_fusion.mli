(** IoT sensor fusion.

    The paper motivates DIFT for "various IoT platforms" (and the
    authors' DDIFT workshop paper tracks flows on IoT devices). This
    workload models a sensor hub: several sensor channels are sampled
    ([Sensor] tags), fused with calibration data from a file, compared
    against thresholds (control dependencies on tainted readings), and
    the resulting decision plus a duty-cycle table lookup (address
    dependency) are reported upstream. *)

val build :
  ?rounds:int -> ?channels:int -> seed:int -> unit -> Workload.built
(** Defaults: 32 rounds over 4 channels. *)
