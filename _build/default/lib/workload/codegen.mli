(** Structured code generation on top of the raw assembler.

    Register conventions used by every workload:
    r1-r3 syscall arguments / results, r4-r15 general purpose. The
    combinators generate fresh internal labels, so loops and
    conditionals nest freely. *)

open Mitos_isa

type t

val create : unit -> t
val asm : t -> Asm.t
val fresh : t -> string -> string
(** A fresh label with the given stem. *)

(** {1 Control-flow combinators} *)

val while_lt : t -> int -> int -> (unit -> unit) -> unit
(** [while_lt cg ri rbound body]: run [body] while [ri < rbound]
    (unsigned); does not modify [ri] itself. *)

val for_up : t -> int -> from:int -> bound_reg:int -> (unit -> unit) -> unit
(** [for_up cg ri ~from ~bound_reg body]: [ri] from [from] while
    [ri < bound_reg], incrementing by 1 after each body. *)

val if_ : t -> Instr.cond -> int -> int -> (unit -> unit) -> unit
(** [if_ cg c r1 r2 body]: run [body] when [r1 c r2] holds. *)

val if_else :
  t -> Instr.cond -> int -> int -> (unit -> unit) -> (unit -> unit) -> unit

(** {1 Syscall shorthands (clobber r1-r3)} *)

val sys_net_read : t -> conn:int -> dst:int -> len:int -> unit
(** Immediate arguments; result (bytes read) left in r1. *)

val sys_net_send : t -> conn:int -> src:int -> len:int -> unit
val sys_file_read : t -> file:int -> dst:int -> len:int -> unit
val sys_file_write : t -> file:int -> src:int -> len:int -> unit
val sys_proc_read : t -> pid:int -> dst:int -> len:int -> unit
val sys_proc_write : t -> pid:int -> src:int -> len:int -> unit
val sys_kernel_mark_export : t -> addr:int -> len:int -> unit
val sys_getrandom : t -> dst:int -> len:int -> unit
val sys_sensor_read : t -> dst:int -> len:int -> unit
val sys_exit : t -> unit

(** {1 Data helpers} *)

val memcpy_bytes : t -> src:int -> dst:int -> len:int -> unit
(** Byte-copy loop with immediate addresses/length; clobbers
    r12-r15. *)

val fill_table_identity : t -> base:int -> size:int -> xor:int -> unit
(** Writes [i lxor xor] at [base+i] for i < size (builds lookup
    tables at run time); clobbers r12-r15. *)

val assemble : t -> Program.t
