(** File-system benchmark: read blocks from input files, transform
    them (direct and address-dependent flows), write to an output
    file and read it back — exercising file-tag churn and the taint
    round-trip through OS-persisted content. *)

val build :
  ?rounds:int -> ?block:int -> seed:int -> unit -> Workload.built
(** Defaults: 24 rounds of 256-byte blocks. *)
