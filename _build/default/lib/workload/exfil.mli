(** Data-exfiltration scenario (the confidentiality side of the
    paper's motivation: "keeping track of the flow" of sensitive
    data).

    A secret file is read, encoded through a lookup table (the address
    dependency that defeats direct-flow tracking), interleaved with
    benign downloaded bytes and sent out over a network connection.
    Ground truth: exactly [secret_len] of the exfiltrated bytes derive
    from the secret file, so a DIFT's sink attribution can be scored
    for misses. *)

val secret_len : int
(** 256 bytes. *)

val benign_len : int
(** 128 bytes. *)

val exfil_sink : Workload.built -> int
(** The sink id under which the exfiltration connection's traffic is
    reported by [Engine.sink_profile]. *)

val build : seed:int -> unit -> Workload.built
