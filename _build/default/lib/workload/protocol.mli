(** Network-protocol parsing (TLV dispatch).

    The paper cites network protocol analysis as a DIFT application
    and lists switch statements among the operations where indirect
    flows are the rule. This workload is a type-length-value parser
    whose dispatch is a {e jump table indexed by a tainted type byte}:
    the handler address load is an address dependency and the [jr]
    through it is a tainted indirect jump — the two flow classes no
    other workload exercises together.

    Record types: 0 checksum, 1 copy-out, 2 table-translate, 3 skip;
    0xFF terminates. *)

val message : seed:int -> string
(** The deterministic wire message the connection delivers. *)

val reference_parse : string -> string * int
(** An independent OCaml parser: (copied+translated output bytes,
    checksum) — ground truth for the machine's behaviour. *)

val build : ?records:int -> seed:int -> unit -> Workload.built
(** Default 48 records. *)
