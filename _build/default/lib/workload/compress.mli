(** Run-length compression of tainted input.

    Compression is one of the paper's motivating operations where
    "indirect flows are expected to be the rule rather than the
    exception": the emitted run lengths are derived from comparisons
    of tainted bytes, so without control-dependency propagation the
    output length field is untainted even though it encodes input
    content. *)

val build : ?input_len:int -> seed:int -> unit -> Workload.built
(** Default input: 2048 bytes with realistic run structure. *)
