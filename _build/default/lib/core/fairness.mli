(** Fairness and tag-balancing metrics (paper §IV contribution 3 and
    Fig. 8).

    The paper measures "fairness degree, or taint-balancing
    efficiency, based on the mean square error difference between the
    number of copies of different tags" — lower is more balanced —
    and motivates balancing information-theoretically (a balanced tag
    distribution carries more information, like a fair coin). *)

open Mitos_tag

type report = {
  mse : float;  (** the paper's Fig. 8 metric *)
  jain : float;
  entropy_norm : float;  (** normalized Shannon entropy, in [0,1] *)
  gini : float;
  distinct : int;
  total_copies : int;
  max_copies : int;
  min_copies : int;
}

val of_counts : float array -> report
val of_stats : Tag_stats.t -> report
val of_stats_type : Tag_stats.t -> Tag_type.t -> report
(** Restricted to tags of one type. *)

val improvement : baseline:report -> report -> float
(** Ratio of MSEs ([baseline.mse /. r.mse]); > 1 means the candidate
    is better balanced — the paper reports "up to 2x". [infinity] when
    the candidate MSE is 0 but the baseline's is not; 1 when both are
    0. *)

val pp : Format.formatter -> report -> unit
