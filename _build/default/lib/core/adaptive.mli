(** Online τ adaptation.

    The paper presents τ as an input that "dynamically weights the
    tradeoff between over- and under-tainting" and stresses that MITOS
    "flexibly adapts to different application scenarios and security
    needs". This module makes that concrete: a small multiplicative
    controller that steers τ so the system's memory-pollution fraction
    tracks an operator-chosen budget — propagate as much as the budget
    allows, no more.

    The update on each observation of the pollution fraction [p] is

    [tau <- clamp (tau · exp (gain · (p - target) / target))]

    so τ rises (blocking more) when pollution overshoots the budget and
    falls (propagating more) when there is headroom. *)

type t

val create :
  ?gain:float ->
  ?min_tau:float ->
  ?max_tau:float ->
  target_pollution:float ->
  Params.t ->
  t
(** [target_pollution] is the budgeted fraction of the tag space
    N_R, e.g. [1e-6]. Defaults: gain 0.1, τ clamped to
    [\[1e-6, 1e3\]]. The given params supply the initial τ and every
    other model input. Raises [Invalid_argument] if the target is not
    positive. *)

val params : t -> Params.t
(** Current parameterization (τ reflects the adaptation so far). *)

val tau : t -> float

val observe : t -> pollution:float -> unit
(** Feed the current weighted pollution [P] (not the fraction; the
    division by N_R happens internally). *)

val observations : t -> int
