open Mitos_tag
module Stats = Mitos_util.Stats

type report = {
  mse : float;
  jain : float;
  entropy_norm : float;
  gini : float;
  distinct : int;
  total_copies : int;
  max_copies : int;
  min_copies : int;
}

let of_counts counts =
  let distinct = Array.length counts in
  let total = int_of_float (Stats.total counts) in
  let mn, mx =
    if distinct = 0 then (0.0, 0.0) else Stats.min_max counts
  in
  {
    mse = Stats.mse_pairwise counts;
    jain = Stats.jain_index counts;
    entropy_norm = Stats.entropy_normalized counts;
    gini = Stats.gini counts;
    distinct;
    total_copies = total;
    max_copies = int_of_float mx;
    min_copies = int_of_float mn;
  }

let of_stats stats = of_counts (Tag_stats.counts_array stats)

let of_stats_type stats ty = of_counts (Tag_stats.counts_of_type stats ty)

let improvement ~baseline r =
  if r.mse = 0.0 then if baseline.mse = 0.0 then 1.0 else infinity
  else baseline.mse /. r.mse

let pp ppf r =
  Format.fprintf ppf
    "{mse=%.4g; jain=%.3f; H=%.3f; gini=%.3f; tags=%d; copies=%d}"
    r.mse r.jain r.entropy_norm r.gini r.distinct r.total_copies
