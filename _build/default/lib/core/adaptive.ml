type t = {
  gain : float;
  min_tau : float;
  max_tau : float;
  target : float;
  mutable current : Params.t;
  mutable observations : int;
}

let create ?(gain = 0.1) ?(min_tau = 1e-6) ?(max_tau = 1e3) ~target_pollution
    params =
  if not (target_pollution > 0.0) then
    invalid_arg "Adaptive.create: target_pollution must be positive";
  if not (min_tau > 0.0 && max_tau >= min_tau) then
    invalid_arg "Adaptive.create: bad tau clamp";
  {
    gain;
    min_tau;
    max_tau;
    target = target_pollution;
    current = params;
    observations = 0;
  }

let params t = t.current
let tau t = t.current.Params.tau
let observations t = t.observations

let observe t ~pollution =
  t.observations <- t.observations + 1;
  let n_r = float_of_int t.current.Params.total_tag_space in
  let fraction = Float.max 0.0 pollution /. n_r in
  let error = (fraction -. t.target) /. t.target in
  (* bound a single step so one noisy sample cannot slam the knob *)
  let error = Float.max (-4.0) (Float.min 4.0 error) in
  let tau' =
    Float.min t.max_tau
      (Float.max t.min_tau (tau t *. exp (t.gain *. error)))
  in
  if tau' <> tau t then t.current <- Params.with_tau t.current tau'
