lib/core/decision.mli: Mitos_tag Params Tag Tag_stats
