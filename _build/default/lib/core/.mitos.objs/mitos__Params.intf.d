lib/core/params.mli: Format Mitos_tag Tag_type
