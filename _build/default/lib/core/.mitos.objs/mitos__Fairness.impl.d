lib/core/fairness.ml: Array Format Mitos_tag Mitos_util Tag_stats
