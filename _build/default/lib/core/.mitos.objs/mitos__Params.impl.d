lib/core/params.ml: Array Format List Mitos_tag Printf Tag_type
