lib/core/analysis.mli: Mitos_tag Params Tag_type
