lib/core/analysis.ml: Cost List Mitos_tag Params Tag_type
