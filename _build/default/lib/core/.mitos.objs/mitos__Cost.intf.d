lib/core/cost.mli: Mitos_tag Params Tag_stats Tag_type
