lib/core/decision.ml: Cost Float List Mitos_tag Params Tag Tag_stats
