lib/core/fairness.mli: Format Mitos_tag Tag_stats Tag_type
