lib/core/cost.ml: Float Mitos_tag Params Tag Tag_stats
