lib/core/adaptive.ml: Float Params
