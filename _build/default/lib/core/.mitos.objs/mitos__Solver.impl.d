lib/core/solver.ml: Array Cost Float Mitos_tag Params Tag_type
