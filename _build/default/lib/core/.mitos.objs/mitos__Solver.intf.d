lib/core/solver.mli: Mitos_tag Params Tag_type
