lib/core/adaptive.mli: Params
