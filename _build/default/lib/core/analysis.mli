(** Closed-form operating-point analysis of the decision rule.

    Setting Eq. (8) to zero gives the propagation threshold in closed
    form: a tag of type [t] propagates at an indirect flow iff its
    copy count satisfies

    [n <= n*(t, P) = (u_t / (tau_eff · β · (P/N_R)^(β-1) · o_t))^(1/α)]

    Everything the evaluation section observes — which τ blocks most
    flows, how far a u_t boost shifts a type's propagation, when a
    growing pollution P chokes off a tag — is this one formula read in
    different directions. The functions below expose it and its
    inverses, and are what `Mitos_experiments.Calib`'s constants were
    calibrated against. *)

open Mitos_tag

val crossover_count : Params.t -> Tag_type.t -> pollution:float -> float
(** [n*(t, P)]: the largest (real) copy count at which the marginal is
    still non-positive. [infinity] when the overtainting side is zero
    (τ = 0 or P = 0) — everything propagates. *)

val pollution_ceiling : Params.t -> Tag_type.t -> n:float -> float
(** Inverse in P: the pollution level beyond which a tag with [n]
    copies stops propagating. [infinity] if no finite level blocks it
    (n = 0); 0 when [n = infinity]. *)

val tau_for_threshold :
  Params.t -> Tag_type.t -> n:float -> pollution:float -> float
(** Inverse in τ: the τ (at the params' [tau_scale]) that places the
    threshold exactly at [n] under pollution [P] — the calibration
    computation. Raises [Invalid_argument] for non-positive [n] or
    [pollution]. *)

val u_for_threshold :
  Params.t -> Tag_type.t -> n:float -> pollution:float -> float
(** Inverse in u_t: the importance weight that places the threshold at
    [n] (the Fig. 9 / Table II boost computation). *)

val describe : Params.t -> pollution:float -> (Tag_type.t * float) list
(** The full threshold profile at an operating point: every type's
    [n*]. *)
