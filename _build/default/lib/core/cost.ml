open Mitos_tag

let phi ~alpha n =
  if alpha = 1.0 then (if n <= 0.0 then infinity else -.log n)
  else if n <= 0.0 then
    (* n^(1-alpha)/(alpha-1): for alpha > 1 the kernel diverges to
       +infinity as n -> 0+ (huge undertainting cost => propagate);
       for alpha < 1 it is 0 at n = 0. *)
    if alpha > 1.0 then infinity else 0.0
  else (n ** (1.0 -. alpha)) /. (alpha -. 1.0)

let under_tag p ty n = Params.u p ty *. phi ~alpha:p.Params.alpha n

let under_total p stats =
  Tag_stats.fold stats ~init:0.0 ~f:(fun acc tag n ->
      acc +. under_tag p (Tag.ty tag) (float_of_int n))

let weighted_pollution p stats = Tag_stats.weighted_total stats (Params.o p)

let over_of_pollution p pollution =
  let n_r = float_of_int p.Params.total_tag_space in
  Params.tau_effective p *. n_r *. ((pollution /. n_r) ** p.Params.beta)

let over_total p stats = over_of_pollution p (weighted_pollution p stats)

let total p stats = under_total p stats +. over_total p stats

let under_submarginal p ty ~n =
  if n <= 0.0 then neg_infinity
  else -.(Params.u p ty *. (n ** -.p.Params.alpha))

let over_submarginal p ty ~pollution =
  let n_r = float_of_int p.Params.total_tag_space in
  Params.tau_effective p *. p.Params.beta
  *. ((Float.max 0.0 pollution /. n_r) ** (p.Params.beta -. 1.0))
  *. Params.o p ty

let marginal p ty ~n ~pollution =
  under_submarginal p ty ~n +. over_submarginal p ty ~pollution
