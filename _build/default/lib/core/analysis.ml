open Mitos_tag

(* over-submarginal (Eq. 8 right-hand side) for one more copy *)
let over p ty ~pollution = Cost.over_submarginal p ty ~pollution

let crossover_count p ty ~pollution =
  let o = over p ty ~pollution in
  if o <= 0.0 then infinity
  else (Params.u p ty /. o) ** (1.0 /. p.Params.alpha)

let pollution_ceiling p ty ~n =
  if n <= 0.0 then infinity
  else begin
    (* solve u n^-alpha = tau_eff beta (P/N_R)^(beta-1) o for P *)
    let target = Params.u p ty *. (n ** -.p.Params.alpha) in
    let denom = Params.tau_effective p *. p.Params.beta *. Params.o p ty in
    if denom <= 0.0 then infinity
    else begin
      let frac = (target /. denom) ** (1.0 /. (p.Params.beta -. 1.0)) in
      frac *. float_of_int p.Params.total_tag_space
    end
  end

let tau_for_threshold p ty ~n ~pollution =
  if not (n > 0.0) then invalid_arg "Analysis.tau_for_threshold: n <= 0";
  if not (pollution > 0.0) then
    invalid_arg "Analysis.tau_for_threshold: pollution <= 0";
  let under = Params.u p ty *. (n ** -.p.Params.alpha) in
  let n_r = float_of_int p.Params.total_tag_space in
  let geometry =
    p.Params.beta
    *. ((pollution /. n_r) ** (p.Params.beta -. 1.0))
    *. Params.o p ty
  in
  under /. (geometry *. p.Params.tau_scale)

let u_for_threshold p ty ~n ~pollution =
  if not (n > 0.0) then invalid_arg "Analysis.u_for_threshold: n <= 0";
  over p ty ~pollution *. (n ** p.Params.alpha)

let describe p ~pollution =
  List.map (fun ty -> (ty, crossover_count p ty ~pollution)) Tag_type.all
