(** Memory layout of the simulated system.

    One flat 1 MiB physical memory partitioned into the regions the
    paper's scenarios need. The kernel linking/loading area is where
    FAROS's export-table tags live: bytes written there during
    linking acquire the [Export_table] tag, and the in-memory-attack
    signature is a byte that carries both netflow and export-table
    tags. *)

val mem_size : int
(** Total memory: 1 MiB. *)

val stack_base : int
val stack_size : int

val process_base : int
(** Base of user-process data space; processes are carved from here. *)

val process_size : int

val kernel_export_base : int
(** The kernel linking/loading ("export table") area. *)

val kernel_export_size : int

val heap_base : int
val heap_size : int

val in_kernel_export : int -> bool

val region_of : int -> string
(** Human-readable region name for diagnostics. *)
