open Mitos_tag
module Machine = Mitos_isa.Machine
module Engine = Mitos_dift.Engine
module Rng = Mitos_util.Rng

let sys_net_read = 1
let sys_net_send = 2
let sys_file_read = 3
let sys_file_write = 4
let sys_proc_read = 5
let sys_kernel_mark_export = 6
let sys_getrandom = 7
let sys_exit = 8
let sys_sensor_read = 9
let sys_proc_write = 10

type conn = {
  conn_id : int;
  conn_tag : Tag.t;
  conn_source : int;
  tag_per_read : bool;
  payload : string option; (* None = pseudo-random stream *)
  mutable remaining : int;
  mutable delivered : int;
  conn_rng : Rng.t;
}

type file = {
  file_id : int;
  file_tag : Tag.t;
  file_source : int;
  mutable content : Bytes.t;
}

type proc = { proc_id : int; proc_tag : Tag.t; proc_source : int; base : int; size : int }

type t = {
  registry : Tag.registry;
  rng : Rng.t;
  actions : (int, Engine.source_action) Hashtbl.t;
  mutable next_source : int;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
  files : (int, file) Hashtbl.t;
  mutable next_file : int;
  procs : (int, proc) Hashtbl.t;
  mutable next_proc : int;
  mutable sensor : (Tag.t * int) option; (* tag, source id *)
  mutable net_bytes : int;
  mutable file_bytes : int;
  mutable sent_bytes : int;
}

let create ?(seed = 42) () =
  {
    registry = Tag.registry ();
    rng = Rng.create seed;
    actions = Hashtbl.create 64;
    next_source = 1;
    conns = Hashtbl.create 16;
    next_conn = 1;
    files = Hashtbl.create 16;
    next_file = 1;
    procs = Hashtbl.create 16;
    next_proc = 1;
    sensor = None;
    net_bytes = 0;
    file_bytes = 0;
    sent_bytes = 0;
  }

let registry t = t.registry

let register_action t action =
  let id = t.next_source in
  t.next_source <- id + 1;
  Hashtbl.add t.actions id action;
  id

let clear_source_id = 0 (* source id 0 always means "untainted data" *)

let make_conn ?(tag_per_read = false) t payload remaining =
  let tag = Tag.fresh t.registry Tag_type.Network in
  let source = register_action t (Engine.Taint (tag, `Replace)) in
  let conn =
    {
      conn_id = t.next_conn;
      conn_tag = tag;
      conn_source = source;
      tag_per_read;
      payload;
      remaining;
      delivered = 0;
      conn_rng = Rng.split t.rng;
    }
  in
  t.next_conn <- t.next_conn + 1;
  Hashtbl.add t.conns conn.conn_id conn;
  conn

let open_connection ?(available = max_int) ?tag_per_read t =
  make_conn ?tag_per_read t None available

let open_connection_with t payload =
  make_conn t (Some payload) (String.length payload)

let conn_id c = c.conn_id
let conn_tag c = c.conn_tag
let conn_bytes_delivered c = c.delivered

let create_file t content =
  let tag = Tag.fresh t.registry Tag_type.File in
  (* reads restore the content's captured taint (if the file was
     written during the run) and append the file tag *)
  let source =
    register_action t
      (Engine.Restore { key = t.next_file; extra = Some tag })
  in
  let file =
    { file_id = t.next_file; file_tag = tag; file_source = source;
      content = Bytes.of_string content }
  in
  t.next_file <- t.next_file + 1;
  Hashtbl.add t.files file.file_id file;
  file

let file_id f = f.file_id
let file_tag f = f.file_tag
let file_content _t f = Bytes.to_string f.content

let spawn_process t ~base ~size =
  let tag = Tag.fresh t.registry Tag_type.Process in
  (* cross-process reads carry the source bytes' provenance and append
     the process tag (Fig. 2 accumulation) *)
  let source =
    register_action t (Engine.Copy_within { src = base; extra = Some tag })
  in
  let proc = { proc_id = t.next_proc; proc_tag = tag; proc_source = source; base; size } in
  t.next_proc <- t.next_proc + 1;
  Hashtbl.add t.procs proc.proc_id proc;
  proc

let proc_id p = p.proc_id
let proc_tag p = p.proc_tag
let proc_base p = p.base
let proc_size p = p.size

let get_sensor t =
  match t.sensor with
  | Some pair -> pair
  | None ->
    let tag = Tag.fresh t.registry Tag_type.Sensor in
    let source = register_action t (Engine.Taint (tag, `Replace)) in
    t.sensor <- Some (tag, source);
    (tag, source)

let sensor_tag t = fst (get_sensor t)

let find table id what =
  match Hashtbl.find_opt table id with
  | Some v -> v
  | None -> raise (Machine.Fault (Printf.sprintf "unknown %s id %d" what id))

(* The export-table marker action taints by union with a fresh
   Export_table tag per linking operation. One tag per kernel_mark
   call keeps export-table tags differentiated like FAROS's. *)
let export_mark_source t =
  let tag = Tag.fresh t.registry Tag_type.Export_table in
  register_action t (Engine.Taint (tag, `Union))

let args m = (Machine.get_reg m 1, Machine.get_reg m 2, Machine.get_reg m 3)

let deliver_conn t conn m ~dst ~max_len =
  let len = min max_len conn.remaining in
  let len = max 0 len in
  (if len > 0 then
     match conn.payload with
     | Some payload ->
       Machine.blit_string m dst (String.sub payload conn.delivered len)
     | None -> Machine.write_bytes m dst (Rng.bytes conn.conn_rng len));
  conn.remaining <- conn.remaining - len;
  conn.delivered <- conn.delivered + len;
  t.net_bytes <- t.net_bytes + len;
  Machine.set_reg m 1 len;
  if len > 0 then begin
    let source =
      if conn.tag_per_read then begin
        let tag = Tag.fresh t.registry Tag_type.Network in
        register_action t (Engine.Taint (tag, `Replace))
      end
      else conn.conn_source
    in
    [ Machine.Sys_wrote_mem { addr = dst; len; source };
      Machine.Sys_set_reg { reg = 1 } ]
  end
  else [ Machine.Sys_set_reg { reg = 1 } ]

let handler t m ~sysno =
  if sysno = sys_net_read then begin
    let conn_id, dst, max_len = args m in
    let conn = find t.conns conn_id "connection" in
    deliver_conn t conn m ~dst ~max_len
  end
  else if sysno = sys_net_send then begin
    let conn_id, src, len = args m in
    let _conn = find t.conns conn_id "connection" in
    ignore (Machine.read_bytes m src len);
    t.sent_bytes <- t.sent_bytes + len;
    [ Machine.Sys_read_mem { addr = src; len; sink = conn_id } ]
  end
  else if sysno = sys_file_read then begin
    let file_id, dst, max_len = args m in
    let file = find t.files file_id "file" in
    let len = min max_len (Bytes.length file.content) in
    if len > 0 then Machine.write_bytes m dst (Bytes.sub file.content 0 len);
    t.file_bytes <- t.file_bytes + len;
    Machine.set_reg m 1 len;
    if len > 0 then
      [ Machine.Sys_wrote_mem { addr = dst; len; source = file.file_source };
        Machine.Sys_set_reg { reg = 1 } ]
    else [ Machine.Sys_set_reg { reg = 1 } ]
  end
  else if sysno = sys_file_write then begin
    let file_id, src, len = args m in
    let file = find t.files file_id "file" in
    file.content <- Machine.read_bytes m src len;
    [ Machine.Sys_read_mem { addr = src; len; sink = -file_id };
      Machine.Sys_snapshot_mem { addr = src; len; key = file_id } ]
  end
  else if sysno = sys_proc_read then begin
    let pid, dst, max_len = args m in
    let proc = find t.procs pid "process" in
    let len = min max_len proc.size in
    if len > 0 then
      Machine.write_bytes m dst (Machine.read_bytes m proc.base len);
    Machine.set_reg m 1 len;
    if len > 0 then
      [ Machine.Sys_wrote_mem { addr = dst; len; source = proc.proc_source };
        Machine.Sys_set_reg { reg = 1 } ]
    else [ Machine.Sys_set_reg { reg = 1 } ]
  end
  else if sysno = sys_kernel_mark_export then begin
    let addr, len, _ = args m in
    if
      not
        (Layout.in_kernel_export addr
        && Layout.in_kernel_export (addr + len - 1))
    then
      raise
        (Machine.Fault
           (Printf.sprintf "kernel_mark_export outside kernel area: %d+%d"
              addr len));
    let source = export_mark_source t in
    [ Machine.Sys_wrote_mem { addr; len; source } ]
  end
  else if sysno = sys_getrandom then begin
    let dst, len, _ = args m in
    if len > 0 then Machine.write_bytes m dst (Rng.bytes t.rng len);
    [ Machine.Sys_wrote_mem { addr = dst; len; source = clear_source_id } ]
  end
  else if sysno = sys_proc_write then begin
    let pid, src, len = args m in
    let proc = find t.procs pid "process" in
    let len = min len proc.size in
    if len > 0 then
      Machine.write_bytes m proc.base (Machine.read_bytes m src len);
    Machine.set_reg m 1 len;
    if len > 0 then begin
      (* provenance travels from the written source range *)
      let source =
        register_action t
          (Engine.Copy_within { src; extra = Some proc.proc_tag })
      in
      [ Machine.Sys_wrote_mem { addr = proc.base; len; source };
        Machine.Sys_set_reg { reg = 1 } ]
    end
    else [ Machine.Sys_set_reg { reg = 1 } ]
  end
  else if sysno = sys_exit then [ Machine.Sys_halt ]
  else if sysno = sys_sensor_read then begin
    let dst, len, _ = args m in
    let _, source = get_sensor t in
    if len > 0 then Machine.write_bytes m dst (Rng.bytes t.rng len);
    Machine.set_reg m 1 len;
    [ Machine.Sys_wrote_mem { addr = dst; len; source };
      Machine.Sys_set_reg { reg = 1 } ]
  end
  else raise (Machine.Fault (Printf.sprintf "unknown syscall %d" sysno))

let source_tag t ~source =
  match Hashtbl.find_opt t.actions source with
  | Some action -> action
  | None -> Engine.Clear

let encode_opt_tag enc = function
  | None -> Mitos_util.Codec.Enc.bool enc false
  | Some tag ->
    Mitos_util.Codec.Enc.bool enc true;
    Tag.encode enc tag

let decode_opt_tag dec =
  if Mitos_util.Codec.Dec.bool dec then Some (Tag.decode dec) else None

let encode_action enc = function
  | Engine.Clear -> Mitos_util.Codec.Enc.uint enc 0
  | Engine.Taint (tag, `Replace) ->
    Mitos_util.Codec.Enc.uint enc 1;
    Tag.encode enc tag
  | Engine.Taint (tag, `Union) ->
    Mitos_util.Codec.Enc.uint enc 2;
    Tag.encode enc tag
  | Engine.Copy_within { src; extra } ->
    Mitos_util.Codec.Enc.uint enc 3;
    Mitos_util.Codec.Enc.uint enc src;
    encode_opt_tag enc extra
  | Engine.Restore { key; extra } ->
    Mitos_util.Codec.Enc.uint enc 4;
    Mitos_util.Codec.Enc.int enc key;
    encode_opt_tag enc extra

let decode_action dec =
  match Mitos_util.Codec.Dec.uint dec with
  | 0 -> Engine.Clear
  | 1 -> Engine.Taint (Tag.decode dec, `Replace)
  | 2 -> Engine.Taint (Tag.decode dec, `Union)
  | 3 ->
    let src = Mitos_util.Codec.Dec.uint dec in
    Engine.Copy_within { src; extra = decode_opt_tag dec }
  | 4 ->
    let key = Mitos_util.Codec.Dec.int dec in
    Engine.Restore { key; extra = decode_opt_tag dec }
  | n ->
    raise (Mitos_util.Codec.Malformed (Printf.sprintf "source action %d" n))

let dump_sources t =
  let enc = Mitos_util.Codec.Enc.create () in
  let entries =
    Hashtbl.fold (fun id action acc -> (id, action) :: acc) t.actions []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Mitos_util.Codec.Enc.list enc
    (fun (id, action) ->
      Mitos_util.Codec.Enc.uint enc id;
      encode_action enc action)
    entries;
  Mitos_util.Codec.Enc.contents enc

let source_lookup_of_string data =
  let dec = Mitos_util.Codec.Dec.of_string data in
  let entries =
    Mitos_util.Codec.Dec.list dec (fun dec ->
        let id = Mitos_util.Codec.Dec.uint dec in
        let action = decode_action dec in
        (id, action))
  in
  Mitos_util.Codec.Dec.expect_end dec;
  let table = Hashtbl.create (List.length entries) in
  List.iter (fun (id, action) -> Hashtbl.replace table id action) entries;
  fun ~source ->
    match Hashtbl.find_opt table source with
    | Some action -> action
    | None -> Engine.Clear

let connections t =
  Hashtbl.fold (fun id c acc -> (id, c.conn_tag) :: acc) t.conns []
  |> List.sort compare

let files t =
  Hashtbl.fold (fun id f acc -> (id, f.file_tag) :: acc) t.files []
  |> List.sort compare

let processes t =
  Hashtbl.fold
    (fun id p acc -> (id, p.proc_tag, p.base, p.size) :: acc)
    t.procs []
  |> List.sort compare

let syscall_name n =
  if n = sys_net_read then "net_read"
  else if n = sys_net_send then "net_send"
  else if n = sys_file_read then "file_read"
  else if n = sys_file_write then "file_write"
  else if n = sys_proc_read then "proc_read"
  else if n = sys_proc_write then "proc_write"
  else if n = sys_kernel_mark_export then "kernel_mark_export"
  else if n = sys_getrandom then "getrandom"
  else if n = sys_exit then "exit"
  else if n = sys_sensor_read then "sensor_read"
  else "unknown"

let bytes_from_network t = t.net_bytes
let bytes_from_files t = t.file_bytes
let bytes_sent t = t.sent_bytes
