(** The miniature operating system: syscall semantics and taint
    sources.

    The OS owns the system's resources — network connections, files,
    processes, the kernel linking area — and implements the machine's
    syscall handler. Each resource is bound to a fresh tag from a
    shared registry, so OS activity is what populates the DIFT's tag
    space (the paper: "new tags are born ... due to the continuous
    creation of processes, network connections, etc.").

    Syscall ABI (arguments in r1-r3, result in r1):

    - 1 [net_read]: r1=conn, r2=dst, r3=max_len; r1 <- bytes read.
      Written bytes are tainted [Network] (replace).
    - 2 [net_send]: r1=conn, r2=src, r3=len (taint sink).
    - 3 [file_read]: r1=file, r2=dst, r3=max_len; r1 <- bytes read.
      Tainted [File] (replace).
    - 4 [file_write]: r1=file, r2=src, r3=len (content persisted).
    - 5 [proc_read]: r1=pid, r2=dst, r3=max_len; r1 <- bytes copied
      from the process's region. The source bytes' provenance travels
      with the data, plus the process's tag.
    - 10 [proc_write]: r1=pid, r2=src, r3=len. Writes into the target
      process's region (remote injection); provenance travels with the
      data, plus the {e writing} context's crossing is recorded via the
      target's process tag.
    - 6 [kernel_mark_export]: r1=addr, r2=len. Marks a range of the
      kernel linking area as export-table data: the range gains an
      [Export_table] tag by union — existing taint (e.g. netflow on an
      injected payload) is preserved. Faults outside the kernel area.
    - 7 [getrandom]: r1=dst, r2=len. Untainted bytes (clears taint).
    - 8 [exit]: halts.
    - 9 [sensor_read]: r1=dst, r2=max_len; r1 <- bytes. Tainted
      [Sensor] (replace). *)

open Mitos_tag

val sys_net_read : int
val sys_net_send : int
val sys_file_read : int
val sys_file_write : int
val sys_proc_read : int
val sys_kernel_mark_export : int
val sys_getrandom : int
val sys_exit : int
val sys_sensor_read : int
val sys_proc_write : int

type t

val create : ?seed:int -> unit -> t
(** A fresh OS with its own tag registry and deterministic RNG. *)

val registry : t -> Tag.registry

(** {1 Resource creation (before or during a run)} *)

type conn

val open_connection : ?available:int -> ?tag_per_read:bool -> t -> conn
(** A network connection whose reads deliver pseudo-random payload,
    [available] bytes in total (default: unbounded). With
    [tag_per_read] (default [false]), every [net_read] mints a fresh
    [Network] tag — per-packet provenance, the granularity that makes
    tag balancing meaningful across a download. *)

val open_connection_with : t -> string -> conn
(** A connection delivering exactly the given payload bytes. *)

val conn_id : conn -> int
val conn_tag : conn -> Tag.t
val conn_bytes_delivered : conn -> int

type file

val create_file : t -> string -> file
(** A file with the given initial content. *)

val file_id : file -> int
val file_tag : file -> Tag.t
val file_content : t -> file -> string
(** Current content (reflecting [file_write]s). *)

type proc

val spawn_process : t -> base:int -> size:int -> proc
(** Registers a process owning [base, base+size); reads from it via
    [proc_read] are tainted with its [Process] tag. *)

val proc_id : proc -> int
val proc_tag : proc -> Tag.t
val proc_base : proc -> int
val proc_size : proc -> int

val sensor_tag : t -> Tag.t
(** The ambient sensor source (created lazily on first use). *)

(** {1 Wiring} *)

val handler : t -> Mitos_isa.Machine.syscall_handler
(** Install as the machine's syscall handler. *)

val source_tag : t -> source:int -> Mitos_dift.Engine.source_action
(** Resolve the source ids emitted by {!handler} — pass to
    [Engine.create]. Unknown ids resolve to [Clear]. *)

val dump_sources : t -> string
(** Serialize the current source-id → action table. Source ids are
    minted while the OS runs (per-read tags, export marks), so a trace
    recorded against this OS can only be replayed elsewhere if the
    table travels with it. *)

val source_lookup_of_string :
  string -> source:int -> Mitos_dift.Engine.source_action
(** Rebuild a resolver from {!dump_sources} output. Raises
    [Mitos_util.Codec.Malformed] on corrupt input; unknown ids resolve
    to [Clear]. *)

(** {1 Introspection} *)

val connections : t -> (int * Tag.t) list
(** (id, tag) of every connection opened so far, by id. *)

val files : t -> (int * Tag.t) list
val processes : t -> (int * Tag.t * int * int) list
(** (pid, tag, base, size). *)

val syscall_name : int -> string
(** Human-readable name for a syscall number; "unknown" otherwise. *)

(** {1 Accounting} *)

val bytes_from_network : t -> int
val bytes_from_files : t -> int
val bytes_sent : t -> int
