lib/system/os.mli: Mitos_dift Mitos_isa Mitos_tag Tag
