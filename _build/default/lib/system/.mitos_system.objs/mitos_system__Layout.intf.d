lib/system/layout.mli:
