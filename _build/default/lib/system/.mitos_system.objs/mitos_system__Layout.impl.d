lib/system/layout.ml:
