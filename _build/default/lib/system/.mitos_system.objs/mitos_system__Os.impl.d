lib/system/os.ml: Bytes Hashtbl Int Layout List Mitos_dift Mitos_isa Mitos_tag Mitos_util Printf String Tag Tag_type
