let mem_size = 1 lsl 20
let stack_base = 0x00000
let stack_size = 0x10000
let process_base = 0x10000
let process_size = 0x30000
let kernel_export_base = 0x40000
let kernel_export_size = 0x10000
let heap_base = 0x50000
let heap_size = mem_size - heap_base

let in_kernel_export addr =
  addr >= kernel_export_base && addr < kernel_export_base + kernel_export_size

let region_of addr =
  if addr < 0 || addr >= mem_size then "out-of-range"
  else if addr < process_base then "stack"
  else if addr < kernel_export_base then "process"
  else if addr < heap_base then "kernel-export"
  else "heap"
