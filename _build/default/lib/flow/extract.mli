(** Classification of executed instructions into flow events.

    This is the [is_DFP] / [is_IFP] stage of the paper's architecture
    (Fig. 6): every execution record is mapped to zero or more events
    that the DIFT engine then applies to the shadow state under the
    active propagation policy.

    Direct flows: [Copy] (copy dependencies) and [Compute]
    (computation dependencies) — both replace the destination's
    provenance with the union of the sources'.

    Indirect flows: [Addr_dep] (the address register of a load/store is
    a source for the data moved — the paper's Fig. 4/5), [Branch_point]
    (a conditional branch; if its condition is tainted the engine opens
    a control-dependency scope until the branch's immediate
    post-dominator), and [Indirect_jump].

    Syscall effects map to taint sources/sinks resolved by the OS
    layer. *)

type event =
  | Copy of { srcs : Loc.t list; dsts : Loc.t list }
  | Compute of { srcs : Loc.t list; dsts : Loc.t list }
  | Addr_dep of { addr_srcs : Loc.t list; dsts : Loc.t list }
  | Branch_point of { cond_srcs : Loc.t list; scope_end : int; taken : bool }
  | Indirect_jump of { target_srcs : Loc.t list }
  | Sys_source of { addr : int; len : int; source : int }
  | Sys_sink of { addr : int; len : int; sink : int }
  | Sys_snapshot of { addr : int; len : int; key : int }
  | Sys_clear_reg of int

type t

val create : Mitos_isa.Program.t -> t
(** Precomputes the post-dominator table used for branch scopes. *)

val postdom : t -> Postdom.t

val events_of_record : t -> Mitos_isa.Machine.exec_record -> event list
(** Events are ordered: direct flows first, then indirect, then
    syscall effects — the order the engine must apply them in. *)

val written_locs : Mitos_isa.Machine.exec_record -> Loc.t list
(** All locations the record wrote (register and memory), used to
    apply control-dependency taint to writes inside an open scope. *)

val pp_event : Format.formatter -> event -> unit
