(** Immediate post-dominators at instruction granularity.

    The control-dependency scope of a branch is the set of
    instructions executed between the branch and its immediate
    post-dominator: exactly the instructions whose execution depends
    on the branch outcome. A DIFT that propagates control dependencies
    taints writes inside that region with the branch condition's tags.

    A virtual exit node post-dominates everything; [Halt] and [Jr]
    connect to it (indirect jump targets are statically unknown, so a
    scope crossing a [Jr] conservatively ends there). *)

type t

val compute : Mitos_isa.Program.t -> t

val exit_node : t -> int
(** Index of the virtual exit node (= program length). *)

val ipdom : t -> int -> int
(** [ipdom t i] is the immediate post-dominator of instruction [i];
    possibly [exit_node t]. Instructions that cannot reach the exit
    (e.g. provable infinite loops) report [exit_node t]. *)

val postdominates : t -> int -> int -> bool
(** [postdominates t a b]: does [a] post-dominate [b]? (Walks the
    ipdom chain; [exit_node] post-dominates everything.) *)

val scope_end : t -> int -> int
(** Alias for [ipdom], named for its use: the instruction index where
    a control-taint scope opened by a branch at [i] closes. *)
