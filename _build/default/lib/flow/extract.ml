module Machine = Mitos_isa.Machine
module Instr = Mitos_isa.Instr

type event =
  | Copy of { srcs : Loc.t list; dsts : Loc.t list }
  | Compute of { srcs : Loc.t list; dsts : Loc.t list }
  | Addr_dep of { addr_srcs : Loc.t list; dsts : Loc.t list }
  | Branch_point of { cond_srcs : Loc.t list; scope_end : int; taken : bool }
  | Indirect_jump of { target_srcs : Loc.t list }
  | Sys_source of { addr : int; len : int; source : int }
  | Sys_sink of { addr : int; len : int; sink : int }
  | Sys_snapshot of { addr : int; len : int; key : int }
  | Sys_clear_reg of int

type t = { postdom : Postdom.t }

let create prog = { postdom = Postdom.compute prog }
let postdom t = t.postdom

let sys_events effects =
  List.concat_map
    (function
      | Machine.Sys_wrote_mem { addr; len; source } ->
        [ Sys_source { addr; len; source } ]
      | Machine.Sys_read_mem { addr; len; sink } -> [ Sys_sink { addr; len; sink } ]
      | Machine.Sys_snapshot_mem { addr; len; key } ->
        [ Sys_snapshot { addr; len; key } ]
      | Machine.Sys_set_reg { reg } -> [ Sys_clear_reg reg ]
      | Machine.Sys_halt -> [])
    effects

let events_of_record t (r : Machine.exec_record) =
  match r.instr with
  | Instr.Li (rd, _) -> [ Copy { srcs = []; dsts = [ Loc.Reg rd ] } ]
  | Instr.Mov (rd, rs) ->
    [ Copy { srcs = [ Loc.Reg rs ]; dsts = [ Loc.Reg rd ] } ]
  | Instr.Bin (_, rd, rs1, rs2) ->
    [ Compute { srcs = [ Loc.Reg rs1; Loc.Reg rs2 ]; dsts = [ Loc.Reg rd ] } ]
  | Instr.Bini (_, rd, rs, _) ->
    [ Compute { srcs = [ Loc.Reg rs ]; dsts = [ Loc.Reg rd ] } ]
  | Instr.Load (_, rd, rb, _) ->
    let addr, len =
      match r.mem_read with
      | Some al -> al
      | None -> assert false (* loads always read memory *)
    in
    [
      Copy { srcs = Loc.mem_range addr len; dsts = [ Loc.Reg rd ] };
      Addr_dep { addr_srcs = [ Loc.Reg rb ]; dsts = [ Loc.Reg rd ] };
    ]
  | Instr.Store (_, rs, rb, _) ->
    let addr, len =
      match r.mem_write with
      | Some al -> al
      | None -> assert false (* stores always write memory *)
    in
    let dsts = Loc.mem_range addr len in
    [
      Copy { srcs = [ Loc.Reg rs ]; dsts };
      Addr_dep { addr_srcs = [ Loc.Reg rb ]; dsts };
    ]
  | Instr.Branch (_, rs1, rs2, _) ->
    let taken = match r.taken with Some b -> b | None -> assert false in
    [
      Branch_point
        {
          cond_srcs = [ Loc.Reg rs1; Loc.Reg rs2 ];
          scope_end = Postdom.scope_end t.postdom r.pc;
          taken;
        };
    ]
  | Instr.Jr rs -> [ Indirect_jump { target_srcs = [ Loc.Reg rs ] } ]
  | Instr.Syscall _ -> sys_events r.sys_effects
  | Instr.Jmp _ | Instr.Nop | Instr.Halt -> []

let written_locs (r : Machine.exec_record) =
  let regs =
    match r.reg_write with Some (reg, _) -> [ Loc.Reg reg ] | None -> []
  in
  let mems =
    match r.mem_write with
    | Some (addr, len) -> Loc.mem_range addr len
    | None -> []
  in
  let sys =
    List.concat_map
      (function
        | Machine.Sys_wrote_mem { addr; len; _ } -> Loc.mem_range addr len
        | Machine.Sys_set_reg { reg } -> [ Loc.Reg reg ]
        | Machine.Sys_read_mem _ | Machine.Sys_snapshot_mem _
        | Machine.Sys_halt ->
          [])
      r.sys_effects
  in
  regs @ mems @ sys

let pp_locs ppf locs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
    Loc.pp ppf locs

let pp_event ppf = function
  | Copy { srcs; dsts } ->
    Format.fprintf ppf "copy %a -> %a" pp_locs srcs pp_locs dsts
  | Compute { srcs; dsts } ->
    Format.fprintf ppf "compute %a -> %a" pp_locs srcs pp_locs dsts
  | Addr_dep { addr_srcs; dsts } ->
    Format.fprintf ppf "addr-dep %a -> %a" pp_locs addr_srcs pp_locs dsts
  | Branch_point { cond_srcs; scope_end; taken } ->
    Format.fprintf ppf "branch %a scope-end=%d taken=%b" pp_locs cond_srcs
      scope_end taken
  | Indirect_jump { target_srcs } ->
    Format.fprintf ppf "ijump %a" pp_locs target_srcs
  | Sys_source { addr; len; source } ->
    Format.fprintf ppf "source@%d+%d src=%d" addr len source
  | Sys_sink { addr; len; sink } ->
    Format.fprintf ppf "sink@%d+%d sink=%d" addr len sink
  | Sys_snapshot { addr; len; key } ->
    Format.fprintf ppf "snapshot@%d+%d key=%d" addr len key
  | Sys_clear_reg r -> Format.fprintf ppf "clear r%d" r
