lib/flow/cfg.mli: Format Mitos_isa
