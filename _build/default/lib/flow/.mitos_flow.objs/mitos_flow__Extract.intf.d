lib/flow/extract.mli: Format Loc Mitos_isa Postdom
