lib/flow/loc.ml: Format Int List Printf
