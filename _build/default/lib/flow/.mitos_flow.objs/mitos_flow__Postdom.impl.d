lib/flow/postdom.ml: Array List Mitos_isa Printf
