lib/flow/extract.ml: Format List Loc Mitos_isa Postdom
