lib/flow/cfg.ml: Array Format Hashtbl Int List Mitos_isa
