lib/flow/postdom.mli: Mitos_isa
