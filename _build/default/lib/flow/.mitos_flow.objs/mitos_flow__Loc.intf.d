lib/flow/loc.mli: Format
