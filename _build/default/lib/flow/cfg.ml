module Program = Mitos_isa.Program
module Instr = Mitos_isa.Instr

type block = { id : int; first : int; last : int; succs : int list }

type t = {
  blocks : block array;
  instr_block : int array; (* instruction index -> block id *)
  preds : int list array;
}

let leaders prog =
  let n = Program.length prog in
  let leader = Array.make n false in
  if n > 0 then leader.(0) <- true;
  Array.iteri
    (fun i instr ->
      if Instr.is_control instr then begin
        List.iter
          (fun target -> if target < n then leader.(target) <- true)
          (Instr.branch_targets instr ~next:(i + 1));
        if i + 1 < n then leader.(i + 1) <- true
      end)
    (Program.code prog);
  leader

let build prog =
  let n = Program.length prog in
  if n = 0 then invalid_arg "Cfg.build: empty program";
  let leader = leaders prog in
  let instr_block = Array.make n 0 in
  let block_bounds = ref [] in
  let start = ref 0 in
  for i = 0 to n - 1 do
    if i > 0 && leader.(i) then begin
      block_bounds := (!start, i - 1) :: !block_bounds;
      start := i
    end
  done;
  block_bounds := (!start, n - 1) :: !block_bounds;
  let bounds = Array.of_list (List.rev !block_bounds) in
  Array.iteri
    (fun id (first, last) ->
      for i = first to last do
        instr_block.(i) <- id
      done)
    bounds;
  let blocks =
    Array.mapi
      (fun id (first, last) ->
        let terminator = Program.instr prog last in
        let succ_instrs =
          Instr.branch_targets terminator ~next:(last + 1)
          |> List.filter (fun target -> target < n)
        in
        let succs =
          List.sort_uniq Int.compare (List.map (fun i -> instr_block.(i)) succ_instrs)
        in
        { id; first; last; succs })
      bounds
  in
  let preds = Array.make (Array.length blocks) [] in
  Array.iter
    (fun b -> List.iter (fun s -> preds.(s) <- b.id :: preds.(s)) b.succs)
    blocks;
  { blocks; instr_block; preds }

let blocks t = t.blocks
let block_of_instr t i = t.blocks.(t.instr_block.(i))
let num_blocks t = Array.length t.blocks
let entry t = t.blocks.(0)
let preds t id = t.preds.(id)

let pp ppf t =
  Array.iter
    (fun b ->
      Format.fprintf ppf "B%d [%d..%d] -> %a@." b.id b.first b.last
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        b.succs)
    t.blocks

(* -- dominators and natural loops ----------------------------------- *)

type loop = { header : int; back_edge_from : int; body : int list }

(* Cooper-Harvey-Kennedy on the forward graph, rooted at block 0. *)
let dominators t =
  let n = Array.length t.blocks in
  let order = Array.make n (-1) in
  let sequence = ref [] in
  let visited = Array.make n false in
  let rec dfs b =
    visited.(b) <- true;
    List.iter (fun s -> if not visited.(s) then dfs s) t.blocks.(b).succs;
    sequence := b :: !sequence
  in
  dfs 0;
  let rpo = Array.of_list !sequence in
  Array.iteri (fun pos b -> order.(b) <- pos) rpo;
  let idom = Array.init n (fun i -> if i = 0 then 0 else -1) in
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while order.(!a) > order.(!b) do
        a := idom.(!a)
      done;
      while order.(!b) > order.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> 0 then begin
          let processed =
            List.filter (fun p -> order.(p) >= 0 && idom.(p) >= 0) t.preds.(b)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
            let d = List.fold_left intersect first rest in
            if idom.(b) <> d then begin
              idom.(b) <- d;
              changed := true
            end
        end)
      rpo
  done;
  Array.mapi (fun b d -> if d < 0 then b else d) idom

let dominates idom a b =
  (* does a dominate b? walk b's idom chain *)
  let rec walk x fuel =
    if fuel = 0 then false
    else if x = a then true
    else if x = 0 then a = 0
    else walk idom.(x) (fuel - 1)
  in
  walk b (Array.length idom + 1)

let loops t =
  let idom = dominators t in
  let found = ref [] in
  Array.iter
    (fun b ->
      List.iter
        (fun s ->
          (* back edge: successor dominates the source *)
          if dominates idom s b.id then begin
            (* natural loop body: header + everything that reaches the
               latch without passing the header *)
            let in_body = Hashtbl.create 8 in
            Hashtbl.replace in_body s ();
            let rec pull x =
              if not (Hashtbl.mem in_body x) then begin
                Hashtbl.replace in_body x ();
                List.iter pull t.preds.(x)
              end
            in
            pull b.id;
            let body =
              Hashtbl.fold (fun x () acc -> x :: acc) in_body []
              |> List.sort compare
            in
            found := { header = s; back_edge_from = b.id; body } :: !found
          end)
        b.succs)
    t.blocks;
  List.sort (fun a b -> compare (a.header, a.back_edge_from) (b.header, b.back_edge_from)) !found
