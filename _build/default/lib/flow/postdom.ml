module Program = Mitos_isa.Program
module Instr = Mitos_isa.Instr

type t = { ipdom : int array; exit_node : int }

(* Successors in the forward graph; the virtual exit is node [n]. *)
let successors prog n i =
  if i = n then []
  else
    let instr = Program.instr prog i in
    match instr with
    | Instr.Halt | Instr.Jr _ -> [ n ]
    | _ ->
      let targets = Instr.branch_targets instr ~next:(i + 1) in
      List.map (fun target -> if target >= n then n else target) targets

(* Cooper-Harvey-Kennedy "a simple, fast dominance algorithm", run on
   the reverse graph with the virtual exit as root. *)
let compute prog =
  let n = Program.length prog in
  let num_nodes = n + 1 in
  let exit_node = n in
  let succs = Array.init num_nodes (fun i -> successors prog n i) in
  let preds = Array.make num_nodes [] in
  Array.iteri (fun i ss -> List.iter (fun s -> preds.(s) <- i :: preds.(s)) ss) succs;
  (* Reverse graph: root = exit, edges = reversed. Reverse-postorder of
     the reverse graph = postorder walk from exit over preds. *)
  let order = Array.make num_nodes (-1) in
  (* order.(node) = position in reverse-postorder; -1 = unreachable *)
  let sequence = ref [] in
  let visited = Array.make num_nodes false in
  let rec dfs node =
    visited.(node) <- true;
    List.iter (fun p -> if not visited.(p) then dfs p) preds.(node);
    sequence := node :: !sequence
  in
  dfs exit_node;
  let rpo = Array.of_list !sequence in
  Array.iteri (fun pos node -> order.(node) <- pos) rpo;
  let idom = Array.make num_nodes (-1) in
  idom.(exit_node) <- exit_node;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while order.(!a) > order.(!b) do
        a := idom.(!a)
      done;
      while order.(!b) > order.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun node ->
        if node <> exit_node then begin
          (* predecessors in the reverse graph = successors in forward *)
          let processed =
            List.filter (fun s -> order.(s) >= 0 && idom.(s) >= 0) succs.(node)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(node) <> new_idom then begin
              idom.(node) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  let ipdom =
    Array.init n (fun i -> if idom.(i) < 0 then exit_node else idom.(i))
  in
  { ipdom; exit_node }

let exit_node t = t.exit_node

let ipdom t i =
  if i < 0 || i >= Array.length t.ipdom then
    invalid_arg (Printf.sprintf "Postdom.ipdom: index %d" i);
  t.ipdom.(i)

let postdominates t a b =
  if a = t.exit_node then true
  else begin
    let rec walk node fuel =
      if fuel = 0 then false
      else if node = a then true
      else if node = t.exit_node then false
      else walk (ipdom t node) (fuel - 1)
    in
    walk b (Array.length t.ipdom + 2)
  end

let scope_end = ipdom
