(** Taintable locations: registers and memory bytes. *)

type t = Reg of int | Mem of int  (** [Mem addr] is a single byte *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val mem_range : int -> int -> t list
(** [mem_range addr len] is the byte locations
    [Mem addr; ...; Mem (addr+len-1)]. *)

val is_reg : t -> bool
val is_mem : t -> bool
