(** Control-flow graph over basic blocks.

    Used for program inspection and tests; the control-dependency
    scopes themselves are computed at instruction granularity by
    {!Postdom}. Indirect jumps ([Jr]) have statically unknown targets;
    they are treated as graph exits (conservative for post-dominance:
    a scope opened before a [Jr] ends at the [Jr]). *)

type block = {
  id : int;
  first : int;  (** index of the first instruction *)
  last : int;  (** index of the last instruction (inclusive) *)
  succs : int list;  (** successor block ids *)
}

type t

val build : Mitos_isa.Program.t -> t
val blocks : t -> block array
val block_of_instr : t -> int -> block
(** Block containing the given instruction index. *)

val num_blocks : t -> int
val entry : t -> block
val preds : t -> int -> int list
(** Predecessor block ids. *)

(** A natural loop discovered from a back edge. *)
type loop = {
  header : int;  (** header block id *)
  back_edge_from : int;  (** latch block id *)
  body : int list;  (** block ids, header included, sorted *)
}

val loops : t -> loop list
(** Natural loops (one per back edge [latch -> header] where the
    header dominates the latch), sorted by header. Loops are where
    indirect flows concentrate — table-translation and decoder loops —
    so analyses report per-loop statistics. *)

val dominators : t -> int array
(** Immediate dominator of each block ([0] for the entry, which is its
    own idom); blocks unreachable from the entry map to themselves. *)

val pp : Format.formatter -> t -> unit
