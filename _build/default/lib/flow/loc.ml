type t = Reg of int | Mem of int

let equal a b =
  match (a, b) with
  | Reg x, Reg y -> x = y
  | Mem x, Mem y -> x = y
  | Reg _, Mem _ | Mem _, Reg _ -> false

let compare a b =
  match (a, b) with
  | Reg x, Reg y -> Int.compare x y
  | Mem x, Mem y -> Int.compare x y
  | Reg _, Mem _ -> -1
  | Mem _, Reg _ -> 1

let to_string = function
  | Reg r -> Printf.sprintf "r%d" r
  | Mem a -> Printf.sprintf "[%#x]" a

let pp ppf t = Format.pp_print_string ppf (to_string t)
let mem_range addr len = List.init len (fun i -> Mem (addr + i))
let is_reg = function Reg _ -> true | Mem _ -> false
let is_mem = function Mem _ -> true | Reg _ -> false
