(** Assembled programs: an array of instructions with resolved targets
    and the label map kept for diagnostics. *)

type t

val make : ?labels:(string * int) list -> Instr.t array -> t
(** Validates that every branch/jump target is a legal instruction
    index; raises [Invalid_argument] otherwise. *)

val code : t -> Instr.t array
val length : t -> int
val instr : t -> int -> Instr.t
val label_addr : t -> string -> int
(** Raises [Not_found] for unknown labels. *)

val labels : t -> (string * int) list
val pp : Format.formatter -> t -> unit
(** Disassembly listing with labels. *)

val encode : Mitos_util.Codec.Enc.t -> t -> unit
val decode : Mitos_util.Codec.Dec.t -> t
