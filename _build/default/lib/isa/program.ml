type t = { code : Instr.t array; labels : (string * int) list }

let validate code =
  let n = Array.length code in
  let check_target i target =
    if target < 0 || target >= n then
      invalid_arg
        (Printf.sprintf "Program: instruction %d targets out-of-range %d" i
           target)
  in
  Array.iteri
    (fun i instr ->
      match instr with
      | Instr.Branch (_, _, _, target) | Instr.Jmp target ->
        check_target i target
      | _ -> ())
    code

let make ?(labels = []) code =
  validate code;
  { code; labels }

let code t = t.code
let length t = Array.length t.code

let instr t i =
  if i < 0 || i >= Array.length t.code then
    invalid_arg (Printf.sprintf "Program.instr: index %d" i);
  t.code.(i)

let label_addr t name = List.assoc name t.labels
let labels t = t.labels

let pp ppf t =
  let by_addr = List.map (fun (name, addr) -> (addr, name)) t.labels in
  Array.iteri
    (fun i instr ->
      List.iter
        (fun (addr, name) -> if addr = i then Format.fprintf ppf "%s:@." name)
        by_addr;
      Format.fprintf ppf "  %4d  %a@." i Instr.pp instr)
    t.code

let encode enc t =
  let module E = Mitos_util.Codec.Enc in
  E.array enc (Instr.encode enc) t.code;
  E.list enc
    (fun (name, addr) ->
      E.string enc name;
      E.uint enc addr)
    t.labels

let decode dec =
  let module D = Mitos_util.Codec.Dec in
  let code = D.array dec Instr.decode in
  let labels =
    D.list dec (fun dec ->
        let name = D.string dec in
        let addr = D.uint dec in
        (name, addr))
  in
  make ~labels code
