(** Textual assembly parser — the inverse of {!Program.pp}.

    Accepts the same syntax the disassembler prints, one instruction
    per line, with labels, comments and blank lines:

    {v
      ; translate a buffer through a table
      li r4, 4096
      loop:
        ldb r8, 0(r4)
        addi r9, r8, 8192
        ldb r8, 0(r9)
        stb r8, 1(r4)
        addi r4, r4, 1
        bltu r4, r6, @loop
      halt
    v}

    Branch and jump targets may be written as [@label] or as absolute
    instruction indices ([@12]). [;] and [#] start comments. *)

exception Parse_error of int * string
(** (1-based line, message). *)

val parse : string -> Program.t
(** Raises {!Parse_error} on malformed input and [Invalid_argument]
    for semantic errors (undefined labels, bad targets). *)

val parse_roundtrip_check : Program.t -> bool
(** [parse (Program.pp p) = p] structurally — used by the tests to tie
    parser and printer together. *)
