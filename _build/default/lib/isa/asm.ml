type fixup =
  | Branch_target  (** patch the target field of a branch/jmp *)
  | Imm_value  (** patch the immediate of an [Li] *)

type t = {
  mutable code : Instr.t list; (* reversed *)
  mutable len : int;
  labels : (string, int) Hashtbl.t;
  mutable fixups : (int * string * fixup) list;
  mutable assembled : bool;
}

let create () =
  {
    code = [];
    len = 0;
    labels = Hashtbl.create 16;
    fixups = [];
    assembled = false;
  }

let check_live t = if t.assembled then invalid_arg "Asm: builder already assembled"

let label t name =
  check_live t;
  if Hashtbl.mem t.labels name then
    invalid_arg (Printf.sprintf "Asm.label: duplicate label %S" name);
  Hashtbl.add t.labels name t.len

let here t = t.len

let emit t instr =
  check_live t;
  t.code <- instr :: t.code;
  t.len <- t.len + 1

let li t rd imm = emit t (Instr.Li (rd, imm))
let mov t rd rs = emit t (Instr.Mov (rd, rs))
let bin t op rd rs1 rs2 = emit t (Instr.Bin (op, rd, rs1, rs2))
let bini t op rd rs imm = emit t (Instr.Bini (op, rd, rs, imm))
let loadb t rd rb off = emit t (Instr.Load (Instr.W8, rd, rb, off))
let loadw t rd rb off = emit t (Instr.Load (Instr.W32, rd, rb, off))
let storeb t rs rb off = emit t (Instr.Store (Instr.W8, rs, rb, off))
let storew t rs rb off = emit t (Instr.Store (Instr.W32, rs, rb, off))

let branch t c rs1 rs2 lbl =
  t.fixups <- (t.len, lbl, Branch_target) :: t.fixups;
  emit t (Instr.Branch (c, rs1, rs2, 0))

let jmp t lbl =
  t.fixups <- (t.len, lbl, Branch_target) :: t.fixups;
  emit t (Instr.Jmp 0)

let jr t rs = emit t (Instr.Jr rs)
let syscall t n = emit t (Instr.Syscall n)
let nop t = emit t Instr.Nop
let halt t = emit t Instr.Halt

let li_label t rd lbl =
  t.fixups <- (t.len, lbl, Imm_value) :: t.fixups;
  emit t (Instr.Li (rd, 0))

let assemble t =
  check_live t;
  t.assembled <- true;
  let code = Array.of_list (List.rev t.code) in
  List.iter
    (fun (idx, lbl, kind) ->
      let target =
        match Hashtbl.find_opt t.labels lbl with
        | Some a -> a
        | None -> invalid_arg (Printf.sprintf "Asm: undefined label %S" lbl)
      in
      code.(idx) <-
        (match (code.(idx), kind) with
        | Instr.Branch (c, rs1, rs2, _), Branch_target ->
          Instr.Branch (c, rs1, rs2, target)
        | Instr.Jmp _, Branch_target -> Instr.Jmp target
        | Instr.Li (rd, _), Imm_value -> Instr.Li (rd, target)
        | instr, _ ->
          invalid_arg
            (Printf.sprintf "Asm: fixup on unexpected instruction %s"
               (Instr.to_string instr))))
    t.fixups;
  let labels = Hashtbl.fold (fun name addr acc -> (name, addr) :: acc) t.labels [] in
  Program.make ~labels code
