lib/isa/machine.mli: Bytes Format Instr Mitos_util Program
