lib/isa/parser.ml: Asm Bytes Format Instr List Printf Program String
