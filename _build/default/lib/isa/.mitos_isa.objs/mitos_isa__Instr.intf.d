lib/isa/instr.mli: Format Mitos_util
