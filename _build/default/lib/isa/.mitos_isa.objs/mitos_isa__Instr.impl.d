lib/isa/instr.ml: Format Mitos_util Printf
