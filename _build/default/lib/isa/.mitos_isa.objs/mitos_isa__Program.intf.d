lib/isa/program.mli: Format Instr Mitos_util
