lib/isa/machine.ml: Array Bytes Char Format Instr Int32 List Mitos_util Printf Program String
