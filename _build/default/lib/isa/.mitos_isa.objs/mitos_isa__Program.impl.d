lib/isa/program.ml: Array Format Instr List Mitos_util Printf
