exception Fault of string

type sys_effect =
  | Sys_wrote_mem of { addr : int; len : int; source : int }
  | Sys_read_mem of { addr : int; len : int; sink : int }
  | Sys_snapshot_mem of { addr : int; len : int; key : int }
  | Sys_set_reg of { reg : int }
  | Sys_halt

type exec_record = {
  step : int;
  pc : int;
  instr : Instr.t;
  reg_reads : (int * int) list;
  reg_write : (int * int) option;
  mem_read : (int * int) option;
  mem_write : (int * int) option;
  taken : bool option;
  next_pc : int;
  sys_effects : sys_effect list;
}

type t = {
  prog : Program.t;
  mem : Bytes.t;
  regs : int array;
  mutable pc : int;
  mutable steps : int;
  mutable halted : bool;
  syscall : syscall_handler;
}

and syscall_handler = t -> sysno:int -> sys_effect list

let default_syscall _ ~sysno =
  raise (Fault (Printf.sprintf "unhandled syscall %d" sysno))

let create ?(mem_size = 1 lsl 20) ?(syscall = default_syscall) prog =
  {
    prog;
    mem = Bytes.make mem_size '\000';
    regs = Array.make Instr.num_regs 0;
    pc = 0;
    steps = 0;
    halted = false;
    syscall;
  }

let program t = t.prog
let mem_size t = Bytes.length t.mem
let pc t = t.pc
let steps t = t.steps
let halted t = t.halted

let mask32 v = v land 0xFFFFFFFF

let sign32 v =
  let v = mask32 v in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let get_reg t r = t.regs.(r)
let set_reg t r v = t.regs.(r) <- mask32 v

let check_range t addr len what =
  if addr < 0 || len < 0 || addr + len > Bytes.length t.mem then
    raise (Fault (Printf.sprintf "%s out of range: addr=%d len=%d" what addr len))

let read_byte t addr =
  check_range t addr 1 "read";
  Char.code (Bytes.get t.mem addr)

let write_byte t addr v =
  check_range t addr 1 "write";
  Bytes.set t.mem addr (Char.chr (v land 0xFF))

let read_word t addr =
  check_range t addr 4 "read";
  Int32.to_int (Bytes.get_int32_le t.mem addr) land 0xFFFFFFFF

let write_word t addr v =
  check_range t addr 4 "write";
  Bytes.set_int32_le t.mem addr (Int32.of_int (mask32 v))

let read_bytes t addr len =
  check_range t addr len "read";
  Bytes.sub t.mem addr len

let write_bytes t addr b =
  check_range t addr (Bytes.length b) "write";
  Bytes.blit b 0 t.mem addr (Bytes.length b)

let blit_string t addr s =
  check_range t addr (String.length s) "write";
  Bytes.blit_string s 0 t.mem addr (String.length s)

let eval_binop op a b =
  match op with
  | Instr.Add -> a + b
  | Instr.Sub -> a - b
  | Instr.Mul -> a * b
  | Instr.Divu ->
    if b = 0 then raise (Fault "division by zero");
    mask32 a / mask32 b
  | Instr.Rem ->
    if b = 0 then raise (Fault "remainder by zero");
    mask32 a mod mask32 b
  | Instr.And -> a land b
  | Instr.Or -> a lor b
  | Instr.Xor -> a lxor b
  | Instr.Shl -> a lsl (b land 31)
  | Instr.Shr -> mask32 a lsr (b land 31)

let eval_cond c a b =
  match c with
  | Instr.Eq -> mask32 a = mask32 b
  | Instr.Ne -> mask32 a <> mask32 b
  | Instr.Lt -> sign32 a < sign32 b
  | Instr.Ge -> sign32 a >= sign32 b
  | Instr.Ltu -> mask32 a < mask32 b
  | Instr.Geu -> mask32 a >= mask32 b

let step t =
  if t.halted then None
  else begin
    let pc = t.pc in
    if pc < 0 || pc >= Program.length t.prog then
      raise (Fault (Printf.sprintf "pc out of program: %d" pc));
    let instr = Program.instr t.prog pc in
    let step_no = t.steps in
    let fall_through = pc + 1 in
    let record =
      match instr with
      | Instr.Li (rd, imm) ->
        set_reg t rd imm;
        {
          step = step_no; pc; instr; reg_reads = []; reg_write = Some (rd, t.regs.(rd));
          mem_read = None; mem_write = None; taken = None; next_pc = fall_through;
          sys_effects = [];
        }
      | Instr.Mov (rd, rs) ->
        let v = t.regs.(rs) in
        set_reg t rd v;
        {
          step = step_no; pc; instr; reg_reads = [ (rs, v) ];
          reg_write = Some (rd, t.regs.(rd)); mem_read = None; mem_write = None;
          taken = None; next_pc = fall_through; sys_effects = [];
        }
      | Instr.Bin (op, rd, rs1, rs2) ->
        let a = t.regs.(rs1) and b = t.regs.(rs2) in
        set_reg t rd (eval_binop op a b);
        {
          step = step_no; pc; instr; reg_reads = [ (rs1, a); (rs2, b) ];
          reg_write = Some (rd, t.regs.(rd)); mem_read = None; mem_write = None;
          taken = None; next_pc = fall_through; sys_effects = [];
        }
      | Instr.Bini (op, rd, rs, imm) ->
        let a = t.regs.(rs) in
        set_reg t rd (eval_binop op a imm);
        {
          step = step_no; pc; instr; reg_reads = [ (rs, a) ];
          reg_write = Some (rd, t.regs.(rd)); mem_read = None; mem_write = None;
          taken = None; next_pc = fall_through; sys_effects = [];
        }
      | Instr.Load (w, rd, rb, off) ->
        let base = t.regs.(rb) in
        let addr = base + off in
        let len = Instr.bytes_of_width w in
        let v = match w with Instr.W8 -> read_byte t addr | Instr.W32 -> read_word t addr in
        set_reg t rd v;
        {
          step = step_no; pc; instr; reg_reads = [ (rb, base) ];
          reg_write = Some (rd, t.regs.(rd)); mem_read = Some (addr, len);
          mem_write = None; taken = None; next_pc = fall_through; sys_effects = [];
        }
      | Instr.Store (w, rs, rb, off) ->
        let v = t.regs.(rs) and base = t.regs.(rb) in
        let addr = base + off in
        let len = Instr.bytes_of_width w in
        (match w with
        | Instr.W8 -> write_byte t addr v
        | Instr.W32 -> write_word t addr v);
        {
          step = step_no; pc; instr; reg_reads = [ (rs, v); (rb, base) ];
          reg_write = None; mem_read = None; mem_write = Some (addr, len);
          taken = None; next_pc = fall_through; sys_effects = [];
        }
      | Instr.Branch (c, rs1, rs2, target) ->
        let a = t.regs.(rs1) and b = t.regs.(rs2) in
        let taken = eval_cond c a b in
        {
          step = step_no; pc; instr; reg_reads = [ (rs1, a); (rs2, b) ];
          reg_write = None; mem_read = None; mem_write = None; taken = Some taken;
          next_pc = (if taken then target else fall_through); sys_effects = [];
        }
      | Instr.Jmp target ->
        {
          step = step_no; pc; instr; reg_reads = []; reg_write = None;
          mem_read = None; mem_write = None; taken = None; next_pc = target;
          sys_effects = [];
        }
      | Instr.Jr rs ->
        let target = t.regs.(rs) in
        if target < 0 || target >= Program.length t.prog then
          raise (Fault (Printf.sprintf "indirect jump to %d" target));
        {
          step = step_no; pc; instr; reg_reads = [ (rs, target) ];
          reg_write = None; mem_read = None; mem_write = None; taken = None;
          next_pc = target; sys_effects = [];
        }
      | Instr.Syscall sysno ->
        let args = List.map (fun r -> (r, t.regs.(r))) [ 1; 2; 3 ] in
        let effects = t.syscall t ~sysno in
        if List.exists (function Sys_halt -> true | _ -> false) effects then
          t.halted <- true;
        {
          step = step_no; pc; instr; reg_reads = args;
          reg_write = None; mem_read = None; mem_write = None; taken = None;
          next_pc = fall_through; sys_effects = effects;
        }
      | Instr.Nop ->
        {
          step = step_no; pc; instr; reg_reads = []; reg_write = None;
          mem_read = None; mem_write = None; taken = None; next_pc = fall_through;
          sys_effects = [];
        }
      | Instr.Halt ->
        t.halted <- true;
        {
          step = step_no; pc; instr; reg_reads = []; reg_write = None;
          mem_read = None; mem_write = None; taken = None; next_pc = pc;
          sys_effects = [];
        }
    in
    t.steps <- t.steps + 1;
    if not t.halted then t.pc <- record.next_pc;
    Some record
  end

let run ?(max_steps = 10_000_000) t f =
  let executed = ref 0 in
  let continue_ = ref true in
  while !continue_ && !executed < max_steps do
    match step t with
    | None -> continue_ := false
    | Some record ->
      f record;
      incr executed
  done;
  !executed

let pp_record ppf r =
  Format.fprintf ppf "#%d @%d %a" r.step r.pc Instr.pp r.instr

(* Trace codec *)

let encode_effect enc e =
  let module E = Mitos_util.Codec.Enc in
  match e with
  | Sys_wrote_mem { addr; len; source } ->
    E.uint enc 0; E.uint enc addr; E.uint enc len; E.int enc source
  | Sys_read_mem { addr; len; sink } ->
    E.uint enc 1; E.uint enc addr; E.uint enc len; E.int enc sink
  | Sys_set_reg { reg } -> E.uint enc 2; E.uint enc reg
  | Sys_halt -> E.uint enc 3
  | Sys_snapshot_mem { addr; len; key } ->
    E.uint enc 4; E.uint enc addr; E.uint enc len; E.int enc key

let decode_effect dec =
  let module D = Mitos_util.Codec.Dec in
  match D.uint dec with
  | 0 ->
    let addr = D.uint dec in
    let len = D.uint dec in
    Sys_wrote_mem { addr; len; source = D.int dec }
  | 1 ->
    let addr = D.uint dec in
    let len = D.uint dec in
    Sys_read_mem { addr; len; sink = D.int dec }
  | 2 -> Sys_set_reg { reg = D.uint dec }
  | 3 -> Sys_halt
  | 4 ->
    let addr = D.uint dec in
    let len = D.uint dec in
    Sys_snapshot_mem { addr; len; key = D.int dec }
  | n -> raise (Mitos_util.Codec.Malformed (Printf.sprintf "sys_effect %d" n))

let encode_record enc r =
  let module E = Mitos_util.Codec.Enc in
  E.uint enc r.step;
  E.uint enc r.pc;
  Instr.encode enc r.instr;
  E.list enc
    (fun (reg, v) ->
      E.uint enc reg;
      E.uint enc v)
    r.reg_reads;
  E.option enc
    (fun (reg, v) ->
      E.uint enc reg;
      E.uint enc v)
    r.reg_write;
  E.option enc
    (fun (a, l) ->
      E.uint enc a;
      E.uint enc l)
    r.mem_read;
  E.option enc
    (fun (a, l) ->
      E.uint enc a;
      E.uint enc l)
    r.mem_write;
  E.option enc (E.bool enc) r.taken;
  E.uint enc r.next_pc;
  E.list enc (encode_effect enc) r.sys_effects

let decode_record dec =
  let module D = Mitos_util.Codec.Dec in
  let step = D.uint dec in
  let pc = D.uint dec in
  let instr = Instr.decode dec in
  let pair dec =
    let a = D.uint dec in
    let b = D.uint dec in
    (a, b)
  in
  let reg_reads = D.list dec pair in
  let reg_write = D.option dec pair in
  let mem_read = D.option dec pair in
  let mem_write = D.option dec pair in
  let taken = D.option dec D.bool in
  let next_pc = D.uint dec in
  let sys_effects = D.list dec decode_effect in
  {
    step; pc; instr; reg_reads; reg_write; mem_read; mem_write; taken;
    next_pc; sys_effects;
  }
