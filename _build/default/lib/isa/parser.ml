exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

let strip_comment s =
  let cut c s =
    match String.index_opt s c with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  cut ';' (cut '#' s)

let tokenize line_no s =
  (* commas and load/store parentheses are operand separators *)
  let buf = Bytes.of_string s in
  Bytes.iteri
    (fun i c ->
      match c with
      | ',' | '(' | ')' -> Bytes.set buf i ' '
      | _ -> ())
    buf;
  String.split_on_char ' ' (Bytes.to_string buf)
  |> List.filter (fun t -> t <> "")
  |> fun tokens ->
  (* tolerate the index column Program.pp prints *)
  match tokens with
  | first :: rest when int_of_string_opt first <> None && rest <> [] -> rest
  | _ ->
    ignore line_no;
    tokens

let reg line t =
  if String.length t >= 2 && t.[0] = 'r' then
    match int_of_string_opt (String.sub t 1 (String.length t - 1)) with
    | Some r when r >= 0 && r < Instr.num_regs -> r
    | _ -> fail line "bad register %S" t
  else fail line "expected register, got %S" t

let imm line t =
  match int_of_string_opt t with
  | Some v -> v
  | None -> fail line "expected integer, got %S" t

(* A target is either @label or @index. *)
type target = Tlabel of string | Tabs of int

let target line t =
  if String.length t >= 2 && t.[0] = '@' then begin
    let body = String.sub t 1 (String.length t - 1) in
    match int_of_string_opt body with
    | Some i -> Tabs i
    | None -> Tlabel body
  end
  else fail line "expected @target, got %S" t

let binop_of_mnemonic = function
  | "add" -> Some Instr.Add
  | "sub" -> Some Instr.Sub
  | "mul" -> Some Instr.Mul
  | "divu" -> Some Instr.Divu
  | "rem" -> Some Instr.Rem
  | "and" -> Some Instr.And
  | "or" -> Some Instr.Or
  | "xor" -> Some Instr.Xor
  | "shl" -> Some Instr.Shl
  | "shr" -> Some Instr.Shr
  | _ -> None

let cond_of_mnemonic = function
  | "beq" -> Some Instr.Eq
  | "bne" -> Some Instr.Ne
  | "blt" -> Some Instr.Lt
  | "bge" -> Some Instr.Ge
  | "bltu" -> Some Instr.Ltu
  | "bgeu" -> Some Instr.Geu
  | _ -> None

let ends_with_i m =
  String.length m > 1 && m.[String.length m - 1] = 'i'

let parse text =
  let asm = Asm.create () in
  let emit_branch line c rs1 rs2 = function
    | Tlabel l -> Asm.branch asm c rs1 rs2 l
    | Tabs i ->
      ignore line;
      Asm.emit asm (Instr.Branch (c, rs1, rs2, i))
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s = String.trim (strip_comment raw) in
      if s <> "" then begin
        if String.length s > 1 && s.[String.length s - 1] = ':' then
          Asm.label asm (String.trim (String.sub s 0 (String.length s - 1)))
        else begin
          match tokenize line s with
          | [] -> ()
          | mnemonic :: operands -> (
            let r n = reg line (List.nth operands n) in
            let need k =
              if List.length operands <> k then
                fail line "%s expects %d operands, got %d" mnemonic k
                  (List.length operands)
            in
            match (mnemonic, binop_of_mnemonic mnemonic, cond_of_mnemonic mnemonic) with
            | "li", _, _ ->
              need 2;
              Asm.li asm (r 0) (imm line (List.nth operands 1))
            | "mov", _, _ ->
              need 2;
              Asm.mov asm (r 0) (r 1)
            | "ldb", _, _ ->
              need 3;
              Asm.loadb asm (r 0) (r 2) (imm line (List.nth operands 1))
            | "ldw", _, _ ->
              need 3;
              Asm.loadw asm (r 0) (r 2) (imm line (List.nth operands 1))
            | "stb", _, _ ->
              need 3;
              Asm.storeb asm (r 0) (r 2) (imm line (List.nth operands 1))
            | "stw", _, _ ->
              need 3;
              Asm.storew asm (r 0) (r 2) (imm line (List.nth operands 1))
            | "jmp", _, _ -> (
              need 1;
              match target line (List.nth operands 0) with
              | Tlabel l -> Asm.jmp asm l
              | Tabs i -> Asm.emit asm (Instr.Jmp i))
            | "jr", _, _ ->
              need 1;
              Asm.jr asm (r 0)
            | "syscall", _, _ ->
              need 1;
              Asm.syscall asm (imm line (List.nth operands 0))
            | "nop", _, _ ->
              need 0;
              Asm.nop asm
            | "halt", _, _ ->
              need 0;
              Asm.halt asm
            | _, Some op, _ ->
              need 3;
              Asm.bin asm op (r 0) (r 1) (r 2)
            | _, _, Some c ->
              need 3;
              emit_branch line c (r 0) (r 1) (target line (List.nth operands 2))
            | m, None, None when ends_with_i m -> (
              match binop_of_mnemonic (String.sub m 0 (String.length m - 1)) with
              | Some op ->
                need 3;
                Asm.bini asm op (r 0) (r 1) (imm line (List.nth operands 2))
              | None -> fail line "unknown mnemonic %S" m)
            | m, None, None -> fail line "unknown mnemonic %S" m)
        end
      end)
    lines;
  try Asm.assemble asm
  with Invalid_argument msg -> raise (Parse_error (0, msg))

let parse_roundtrip_check prog =
  let text = Format.asprintf "%a" Program.pp prog in
  let reparsed = parse text in
  Program.code reparsed = Program.code prog
