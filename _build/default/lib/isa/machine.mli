(** The virtual machine that executes programs and reports, for each
    step, exactly what happened — the raw material from which the flow
    extractor classifies direct and indirect dependencies.

    The machine itself knows nothing about taint. Syscalls are
    delegated to a pluggable handler (the mini-OS lives in
    [mitos_system]); the handler's side effects on memory and registers
    are described in the step record so the DIFT layer can account for
    them. *)

exception Fault of string
(** Raised on out-of-range memory access, division by zero, or an
    indirect jump outside the program. *)

(** A memory- or register-level side effect performed by a syscall
    handler. [source] is an opaque identifier the OS layer uses to map
    the effect to a taint source (e.g. a connection id); [-1] means "no
    taint source" (the DIFT layer just clears the range). *)
type sys_effect =
  | Sys_wrote_mem of { addr : int; len : int; source : int }
  | Sys_read_mem of { addr : int; len : int; sink : int }
  | Sys_snapshot_mem of { addr : int; len : int; key : int }
      (** capture the range's shadow state under [key] (e.g. a file's
          content taint at write time), restorable by a later
          [Restore] source action *)
  | Sys_set_reg of { reg : int }
  | Sys_halt

(** Everything observable about one executed instruction. *)
type exec_record = {
  step : int;  (** 0-based execution step *)
  pc : int;  (** index of the executed instruction *)
  instr : Instr.t;
  reg_reads : (int * int) list;  (** (register, value) pairs read *)
  reg_write : (int * int) option;  (** (register, new value) *)
  mem_read : (int * int) option;  (** (address, length) *)
  mem_write : (int * int) option;  (** (address, length) *)
  taken : bool option;  (** for conditional branches *)
  next_pc : int;
  sys_effects : sys_effect list;  (** non-empty only for [Syscall] *)
}

type t

type syscall_handler = t -> sysno:int -> sys_effect list
(** Called when a [Syscall] executes. The handler may read/write
    machine state through the accessors below and must describe its
    memory/register effects in the returned list. *)

val create :
  ?mem_size:int -> ?syscall:syscall_handler -> Program.t -> t
(** Default memory is 1 MiB; the default syscall handler faults. *)

val program : t -> Program.t
val mem_size : t -> int
val pc : t -> int
val steps : t -> int
val halted : t -> bool

val get_reg : t -> int -> int
val set_reg : t -> int -> int -> unit
val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit
val read_word : t -> int -> int
val write_word : t -> int -> int -> unit
val read_bytes : t -> int -> int -> Bytes.t
val write_bytes : t -> int -> Bytes.t -> unit
val blit_string : t -> int -> string -> unit

val step : t -> exec_record option
(** Execute one instruction; [None] once halted. *)

val run : ?max_steps:int -> t -> (exec_record -> unit) -> int
(** Drive to completion (or [max_steps], default 10_000_000), feeding
    every record to the callback; returns the number of steps
    executed. *)

val pp_record : Format.formatter -> exec_record -> unit

val encode_record : Mitos_util.Codec.Enc.t -> exec_record -> unit
val decode_record : Mitos_util.Codec.Dec.t -> exec_record
