(** The instruction set of the tracked virtual machine.

    A deliberately small RISC-style ISA: it is the minimum needed to
    exhibit every flow class the paper cares about —

    - copy dependencies ([Mov], loads, stores),
    - computation dependencies (ALU ops),
    - address dependencies (loads/stores whose address register is
      tainted, the paper's Fig. 4/5),
    - control dependencies (conditional branches on tainted values,
      indirect jumps through tainted registers).

    Registers are numbered [0 .. num_regs-1]; values are 32-bit
    (stored in OCaml ints, masked). Branch/jump targets are absolute
    instruction indices (the assembler resolves labels). *)

val num_regs : int
(** 16. *)

val word_size : int
(** 4 bytes. *)

type binop = Add | Sub | Mul | Divu | Rem | And | Or | Xor | Shl | Shr

type cond = Eq | Ne | Lt | Ge | Ltu | Geu

type width = W8  (** byte *) | W32  (** 32-bit word *)

type t =
  | Li of int * int  (** [Li (rd, imm)]: rd <- imm *)
  | Mov of int * int  (** [Mov (rd, rs)]: rd <- rs (copy dependency) *)
  | Bin of binop * int * int * int
      (** [Bin (op, rd, rs1, rs2)]: rd <- rs1 op rs2 (computation) *)
  | Bini of binop * int * int * int
      (** [Bini (op, rd, rs, imm)]: rd <- rs op imm *)
  | Load of width * int * int * int
      (** [Load (w, rd, rbase, off)]: rd <- mem\[rbase+off\] — an
          address dependency when rbase is tainted *)
  | Store of width * int * int * int
      (** [Store (w, rs, rbase, off)]: mem\[rbase+off\] <- rs *)
  | Branch of cond * int * int * int
      (** [Branch (c, rs1, rs2, target)]: if rs1 c rs2 then pc <-
          target — a control dependency when rs1/rs2 are tainted *)
  | Jmp of int  (** unconditional jump to instruction index *)
  | Jr of int  (** [Jr rs]: pc <- rs (indirect jump) *)
  | Syscall of int  (** OS service; arguments by register convention *)
  | Nop
  | Halt

val bytes_of_width : width -> int

val reads : t -> int list
(** Registers read, in operand order (address registers included). *)

val writes : t -> int option
(** Register written, if any. *)

val is_branch : t -> bool
(** Conditional branches only. *)

val is_control : t -> bool
(** Anything that can divert the pc: branches, jumps, halt. *)

val branch_targets : t -> next:int -> int list
(** Possible successors of this instruction at index [i] given
    fall-through index [next]. [Jr] yields [] (unknown — handled
    conservatively by the CFG); [Halt] yields []. *)

val binop_to_string : binop -> string
val cond_to_string : cond -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val encode : Mitos_util.Codec.Enc.t -> t -> unit
val decode : Mitos_util.Codec.Dec.t -> t
