(** A tiny assembler: emit instructions with symbolic labels, get a
    {!Program.t} with resolved absolute targets.

    Workload generators use this as an embedded DSL:

    {[
      let a = Asm.create () in
      Asm.li a 1 0;
      Asm.label a "loop";
      Asm.bini a Instr.Add 1 1 1;
      Asm.branch a Instr.Lt 1 2 "loop";
      Asm.halt a;
      Asm.assemble a
    ]} *)

type t

val create : unit -> t

val label : t -> string -> unit
(** Define a label at the current position. Duplicate definitions
    raise [Invalid_argument]. *)

val here : t -> int
(** Index of the next instruction to be emitted. *)

val emit : t -> Instr.t -> unit
(** Emit a raw instruction (targets must already be absolute). *)

(** {1 Convenience emitters} *)

val li : t -> int -> int -> unit
val mov : t -> int -> int -> unit
val bin : t -> Instr.binop -> int -> int -> int -> unit
val bini : t -> Instr.binop -> int -> int -> int -> unit
val loadb : t -> int -> int -> int -> unit
(** [loadb a rd rbase off] *)

val loadw : t -> int -> int -> int -> unit
val storeb : t -> int -> int -> int -> unit
(** [storeb a rs rbase off] *)

val storew : t -> int -> int -> int -> unit
val branch : t -> Instr.cond -> int -> int -> string -> unit
(** Conditional branch to a label (may be forward). *)

val jmp : t -> string -> unit
val jr : t -> int -> unit
val syscall : t -> int -> unit
val nop : t -> unit
val halt : t -> unit

val li_label : t -> int -> string -> unit
(** [li_label a rd lbl] loads the (resolved) instruction index of
    [lbl] into [rd] — used to build indirect jumps. *)

val assemble : t -> Program.t
(** Resolves all label references; raises [Invalid_argument] if any
    referenced label is undefined. The builder may not be reused. *)
