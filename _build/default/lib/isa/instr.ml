let num_regs = 16
let word_size = 4

type binop = Add | Sub | Mul | Divu | Rem | And | Or | Xor | Shl | Shr
type cond = Eq | Ne | Lt | Ge | Ltu | Geu
type width = W8 | W32

type t =
  | Li of int * int
  | Mov of int * int
  | Bin of binop * int * int * int
  | Bini of binop * int * int * int
  | Load of width * int * int * int
  | Store of width * int * int * int
  | Branch of cond * int * int * int
  | Jmp of int
  | Jr of int
  | Syscall of int
  | Nop
  | Halt

let bytes_of_width = function W8 -> 1 | W32 -> 4

let reads = function
  | Li _ | Jmp _ | Nop | Halt -> []
  | Mov (_, rs) | Bini (_, _, rs, _) | Jr rs -> [ rs ]
  | Bin (_, _, rs1, rs2) | Branch (_, rs1, rs2, _) -> [ rs1; rs2 ]
  | Load (_, _, rbase, _) -> [ rbase ]
  | Store (_, rs, rbase, _) -> [ rs; rbase ]
  | Syscall _ -> [ 1; 2; 3 ] (* argument-register convention: r1-r3 *)

let writes = function
  | Li (rd, _) | Mov (rd, _) | Bin (_, rd, _, _) | Bini (_, rd, _, _)
  | Load (_, rd, _, _) ->
    Some rd
  | Store _ | Branch _ | Jmp _ | Jr _ | Syscall _ | Nop | Halt -> None

let is_branch = function Branch _ -> true | _ -> false

let is_control = function
  | Branch _ | Jmp _ | Jr _ | Halt -> true
  | _ -> false

let branch_targets t ~next =
  match t with
  | Branch (_, _, _, target) -> [ target; next ]
  | Jmp target -> [ target ]
  | Jr _ | Halt -> []
  | _ -> [ next ]

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Divu -> "divu"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let cond_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"
  | Ltu -> "ltu"
  | Geu -> "geu"

let width_to_string = function W8 -> "b" | W32 -> "w"

let to_string = function
  | Li (rd, imm) -> Printf.sprintf "li r%d, %d" rd imm
  | Mov (rd, rs) -> Printf.sprintf "mov r%d, r%d" rd rs
  | Bin (op, rd, rs1, rs2) ->
    Printf.sprintf "%s r%d, r%d, r%d" (binop_to_string op) rd rs1 rs2
  | Bini (op, rd, rs, imm) ->
    Printf.sprintf "%si r%d, r%d, %d" (binop_to_string op) rd rs imm
  | Load (w, rd, rb, off) ->
    Printf.sprintf "ld%s r%d, %d(r%d)" (width_to_string w) rd off rb
  | Store (w, rs, rb, off) ->
    Printf.sprintf "st%s r%d, %d(r%d)" (width_to_string w) rs off rb
  | Branch (c, rs1, rs2, target) ->
    Printf.sprintf "b%s r%d, r%d, @%d" (cond_to_string c) rs1 rs2 target
  | Jmp target -> Printf.sprintf "jmp @%d" target
  | Jr rs -> Printf.sprintf "jr r%d" rs
  | Syscall n -> Printf.sprintf "syscall %d" n
  | Nop -> "nop"
  | Halt -> "halt"

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Binary codec: opcode byte then operands as varints. *)

let binop_code = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Divu -> 3 | Rem -> 4 | And -> 5
  | Or -> 6 | Xor -> 7 | Shl -> 8 | Shr -> 9

let binop_of_code = function
  | 0 -> Add | 1 -> Sub | 2 -> Mul | 3 -> Divu | 4 -> Rem | 5 -> And
  | 6 -> Or | 7 -> Xor | 8 -> Shl | 9 -> Shr
  | n -> raise (Mitos_util.Codec.Malformed (Printf.sprintf "binop code %d" n))

let cond_code = function
  | Eq -> 0 | Ne -> 1 | Lt -> 2 | Ge -> 3 | Ltu -> 4 | Geu -> 5

let cond_of_code = function
  | 0 -> Eq | 1 -> Ne | 2 -> Lt | 3 -> Ge | 4 -> Ltu | 5 -> Geu
  | n -> raise (Mitos_util.Codec.Malformed (Printf.sprintf "cond code %d" n))

let width_code = function W8 -> 0 | W32 -> 1

let width_of_code = function
  | 0 -> W8
  | 1 -> W32
  | n -> raise (Mitos_util.Codec.Malformed (Printf.sprintf "width code %d" n))

let encode enc t =
  let module E = Mitos_util.Codec.Enc in
  match t with
  | Li (rd, imm) -> E.uint enc 0; E.uint enc rd; E.int enc imm
  | Mov (rd, rs) -> E.uint enc 1; E.uint enc rd; E.uint enc rs
  | Bin (op, rd, rs1, rs2) ->
    E.uint enc 2; E.uint enc (binop_code op); E.uint enc rd; E.uint enc rs1;
    E.uint enc rs2
  | Bini (op, rd, rs, imm) ->
    E.uint enc 3; E.uint enc (binop_code op); E.uint enc rd; E.uint enc rs;
    E.int enc imm
  | Load (w, rd, rb, off) ->
    E.uint enc 4; E.uint enc (width_code w); E.uint enc rd; E.uint enc rb;
    E.int enc off
  | Store (w, rs, rb, off) ->
    E.uint enc 5; E.uint enc (width_code w); E.uint enc rs; E.uint enc rb;
    E.int enc off
  | Branch (c, rs1, rs2, target) ->
    E.uint enc 6; E.uint enc (cond_code c); E.uint enc rs1; E.uint enc rs2;
    E.uint enc target
  | Jmp target -> E.uint enc 7; E.uint enc target
  | Jr rs -> E.uint enc 8; E.uint enc rs
  | Syscall n -> E.uint enc 9; E.uint enc n
  | Nop -> E.uint enc 10
  | Halt -> E.uint enc 11

let decode dec =
  let module D = Mitos_util.Codec.Dec in
  match D.uint dec with
  | 0 ->
    let rd = D.uint dec in
    Li (rd, D.int dec)
  | 1 ->
    let rd = D.uint dec in
    Mov (rd, D.uint dec)
  | 2 ->
    let op = binop_of_code (D.uint dec) in
    let rd = D.uint dec in
    let rs1 = D.uint dec in
    Bin (op, rd, rs1, D.uint dec)
  | 3 ->
    let op = binop_of_code (D.uint dec) in
    let rd = D.uint dec in
    let rs = D.uint dec in
    Bini (op, rd, rs, D.int dec)
  | 4 ->
    let w = width_of_code (D.uint dec) in
    let rd = D.uint dec in
    let rb = D.uint dec in
    Load (w, rd, rb, D.int dec)
  | 5 ->
    let w = width_of_code (D.uint dec) in
    let rs = D.uint dec in
    let rb = D.uint dec in
    Store (w, rs, rb, D.int dec)
  | 6 ->
    let c = cond_of_code (D.uint dec) in
    let rs1 = D.uint dec in
    let rs2 = D.uint dec in
    Branch (c, rs1, rs2, D.uint dec)
  | 7 -> Jmp (D.uint dec)
  | 8 -> Jr (D.uint dec)
  | 9 -> Syscall (D.uint dec)
  | 10 -> Nop
  | 11 -> Halt
  | n -> raise (Mitos_util.Codec.Malformed (Printf.sprintf "opcode %d" n))
