type t = {
  counts : int ref Tag.Table.t;
  per_type_total : int array; (* copies per tag type *)
  per_type_distinct : int array; (* tags of the type with count > 0 *)
  mutable total : int;
}

let create () =
  {
    counts = Tag.Table.create 256;
    per_type_total = Array.make Tag_type.count 0;
    per_type_distinct = Array.make Tag_type.count 0;
    total = 0;
  }

let cell t tag =
  match Tag.Table.find_opt t.counts tag with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Tag.Table.add t.counts tag r;
    r

let incr t tag =
  let r = cell t tag in
  if !r = 0 then begin
    let ti = Tag_type.to_int (Tag.ty tag) in
    t.per_type_distinct.(ti) <- t.per_type_distinct.(ti) + 1
  end;
  incr r;
  let ti = Tag_type.to_int (Tag.ty tag) in
  t.per_type_total.(ti) <- t.per_type_total.(ti) + 1;
  t.total <- t.total + 1

let decr t tag =
  match Tag.Table.find_opt t.counts tag with
  | None | Some { contents = 0 } ->
    invalid_arg
      (Printf.sprintf "Tag_stats.decr: count of %s already zero"
         (Tag.to_string tag))
  | Some r ->
    Stdlib.decr r;
    let ti = Tag_type.to_int (Tag.ty tag) in
    t.per_type_total.(ti) <- t.per_type_total.(ti) - 1;
    t.total <- t.total - 1;
    if !r = 0 then t.per_type_distinct.(ti) <- t.per_type_distinct.(ti) - 1

let count t tag =
  match Tag.Table.find_opt t.counts tag with Some r -> !r | None -> 0

let total t = t.total
let per_type t ty = t.per_type_total.(Tag_type.to_int ty)
let distinct t = Array.fold_left ( + ) 0 t.per_type_distinct
let distinct_of_type t ty = t.per_type_distinct.(Tag_type.to_int ty)

let weighted_total t o =
  let acc = ref 0.0 in
  List.iter
    (fun ty ->
      let n = per_type t ty in
      if n > 0 then acc := !acc +. (o ty *. float_of_int n))
    Tag_type.all;
  !acc

let fold t ~init ~f =
  Tag.Table.fold
    (fun tag r acc -> if !r > 0 then f acc tag !r else acc)
    t.counts init

let counts_array t =
  let l = fold t ~init:[] ~f:(fun acc _ n -> float_of_int n :: acc) in
  Array.of_list l

let counts_of_type t ty =
  let l =
    fold t ~init:[] ~f:(fun acc tag n ->
        if Tag_type.equal (Tag.ty tag) ty then float_of_int n :: acc else acc)
  in
  Array.of_list l

let snapshot t =
  fold t ~init:[] ~f:(fun acc tag n -> (tag, n) :: acc)
  |> List.sort (fun (a, _) (b, _) -> Tag.compare a b)

let copy t =
  let c = create () in
  Tag.Table.iter (fun tag r -> if !r > 0 then Tag.Table.add c.counts tag (ref !r)) t.counts;
  Array.blit t.per_type_total 0 c.per_type_total 0 Tag_type.count;
  Array.blit t.per_type_distinct 0 c.per_type_distinct 0 Tag_type.count;
  c.total <- t.total;
  c

let pp ppf t =
  Format.fprintf ppf "{total=%d; distinct=%d}" t.total (distinct t)
