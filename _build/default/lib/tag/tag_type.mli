(** Tag types (the paper's [t] in the tag ID [{t, i}]).

    MITOS assumes an arbitrary number of heterogeneous tag types —
    network, file, process, etc. — each of which may be weighted
    differently by the undertainting weight [u_t] and the pollution
    weight [o_t]. We fix the set of types the paper and FAROS use; a
    per-type integer index keeps weight lookups O(1). *)

type t =
  | Network  (** bytes arriving from a network connection ("netflow") *)
  | File  (** bytes read from a file *)
  | Process  (** bytes read from another process's address space *)
  | Export_table
      (** bytes written into the kernel linking/loading area — the
          second half of FAROS's in-memory-attack signature *)
  | Pointer  (** pointer-valued data (Slowinska & Bos semantics) *)
  | String_data  (** string/text semantics *)
  | Kernel  (** other kernel-originated data *)
  | Sensor  (** external sensor input (IoT-style deployments) *)

val all : t list
(** Every type, in declaration order. *)

val count : int
(** [List.length all]. *)

val to_int : t -> int
(** Dense index in [\[0, count)], stable across runs. *)

val of_int : int -> t
(** Inverse of [to_int]; raises [Invalid_argument] out of range. *)

val to_string : t -> string
val of_string : string -> t
(** Raises [Invalid_argument] on unknown names. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
