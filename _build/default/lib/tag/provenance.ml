type eviction = Fifo | Lru | Reject

let eviction_to_string = function
  | Fifo -> "fifo"
  | Lru -> "lru"
  | Reject -> "reject"

(* Lists are tiny (M_prov is ~10 in the paper), so a plain OCaml list
   kept oldest-first is both simple and fast enough; all operations are
   O(M_prov). *)
type t = {
  cap : int;
  evict : eviction;
  mutable tags : Tag.t list; (* oldest first / least-recent first *)
  mutable card : int;
}

let create ?(eviction = Fifo) cap =
  if cap < 1 then invalid_arg "Provenance.create: capacity must be >= 1";
  { cap; evict = eviction; tags = []; card = 0 }

let capacity t = t.cap
let eviction t = t.evict
let cardinal t = t.card
let space_left t = t.cap - t.card
let is_empty t = t.card = 0
let is_full t = t.card >= t.cap
let mem t tag = List.exists (Tag.equal tag) t.tags

type add_result =
  | Added
  | Added_evicting of Tag.t
  | Already_present
  | Rejected

let add t tag =
  if mem t tag then Already_present
  else if t.card < t.cap then begin
    t.tags <- t.tags @ [ tag ];
    t.card <- t.card + 1;
    Added
  end
  else
    match t.evict with
    | Reject -> Rejected
    | Fifo | Lru -> (
      match t.tags with
      | [] -> assert false (* card >= cap >= 1 implies non-empty *)
      | victim :: rest ->
        t.tags <- rest @ [ tag ];
        Added_evicting victim)

let remove t tag =
  if mem t tag then begin
    t.tags <- List.filter (fun x -> not (Tag.equal x tag)) t.tags;
    t.card <- t.card - 1;
    true
  end
  else false

let touch t tag =
  match t.evict with
  | Fifo | Reject -> ()
  | Lru ->
    if mem t tag then
      t.tags <- List.filter (fun x -> not (Tag.equal x tag)) t.tags @ [ tag ]

let clear t =
  let present = t.tags in
  t.tags <- [];
  t.card <- 0;
  present

let to_list t = t.tags
let iter t f = List.iter f t.tags
let fold t ~init ~f = List.fold_left f init t.tags
let exists t p = List.exists p t.tags
let copy t = { t with tags = t.tags }

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Tag.pp)
    t.tags
