lib/tag/tag.ml: Array Format Hashtbl Int Mitos_util Printf Set Tag_type
