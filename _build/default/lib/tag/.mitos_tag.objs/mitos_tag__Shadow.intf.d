lib/tag/shadow.mli: Provenance Tag Tag_stats Tag_type
