lib/tag/tag_stats.ml: Array Format List Printf Stdlib Tag Tag_type
