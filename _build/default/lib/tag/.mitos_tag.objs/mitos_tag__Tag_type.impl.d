lib/tag/tag_type.ml: Format Int List Printf
