lib/tag/tag.mli: Format Hashtbl Mitos_util Set Tag_type
