lib/tag/tag_type.mli: Format
