lib/tag/tag_stats.mli: Format Tag Tag_type
