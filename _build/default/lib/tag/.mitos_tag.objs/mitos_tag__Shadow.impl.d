lib/tag/shadow.ml: Array Hashtbl Int List Mitos_util Printf Provenance Tag Tag_stats Tag_type
