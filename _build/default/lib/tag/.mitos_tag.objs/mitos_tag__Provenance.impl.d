lib/tag/provenance.ml: Format List Tag
