lib/tag/provenance.mli: Format Tag
