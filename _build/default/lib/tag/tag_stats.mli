(** Exact copy-count accounting — the control vector [n].

    [n_{t,i}] is the number of taintable objects (bytes / registers)
    whose provenance list currently contains tag [{t,i}]. Every
    insertion and eviction anywhere in the shadow state goes through
    this module, so the counts are exact at all times. The DIFT policy
    reads them to evaluate the paper's marginal cost (Eq. 8):
    [count] supplies the local per-tag value and [weighted_total] /
    [total] supply the global memory-pollution term. *)

type t

val create : unit -> t
val incr : t -> Tag.t -> unit
val decr : t -> Tag.t -> unit
(** Raises [Invalid_argument] if the count would go negative — that
    would indicate an accounting bug elsewhere. *)

val count : t -> Tag.t -> int
(** Current [n_{t,i}]; 0 for never-seen tags. *)

val total : t -> int
(** [sum_t sum_i n_{t,i}] — unweighted pollution numerator. *)

val per_type : t -> Tag_type.t -> int
(** Total copies across all tags of one type. *)

val distinct : t -> int
(** Number of tags with a strictly positive count. *)

val distinct_of_type : t -> Tag_type.t -> int

val weighted_total : t -> (Tag_type.t -> float) -> float
(** [weighted_total t o] is [sum_t o_t sum_i n_{t,i}] — the numerator
    of the paper's overtainting cost (Eq. 4). O(#types), not O(#tags). *)

val fold : t -> init:'a -> f:('a -> Tag.t -> int -> 'a) -> 'a
(** Folds over tags with positive counts. *)

val counts_array : t -> float array
(** Positive counts as floats, unspecified order — input to the
    fairness metrics. *)

val counts_of_type : t -> Tag_type.t -> float array

val snapshot : t -> (Tag.t * int) list
(** Sorted by tag; positive counts only. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit
