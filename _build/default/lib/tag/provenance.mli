(** Bounded provenance lists.

    Each taintable object (memory byte or register) carries a
    provenance list: the tags accumulated during its life, bounded by
    [M_prov] (the paper's provenance list size). A list never holds two
    copies of the same tag — that is constraint Eq. (7) of the paper,
    enforced structurally.

    When a tag is added to a full list, the {!eviction} policy decides
    what happens. The paper (following FAROS) uses FIFO; LRU and
    reject-newcomer are provided for the ablation suggested in the
    paper's §VI ("Scheduling management in the lists"). *)

type eviction =
  | Fifo  (** drop the oldest entry (the paper's/FAROS's behaviour) *)
  | Lru  (** drop the least-recently-confirmed entry; membership hits
             refresh recency *)
  | Reject  (** drop the incoming tag instead *)

val eviction_to_string : eviction -> string

type t

val create : ?eviction:eviction -> int -> t
(** [create cap] makes an empty list with capacity [cap] >= 1. Default
    eviction is [Fifo]. *)

val capacity : t -> int
val eviction : t -> eviction
val cardinal : t -> int
val space_left : t -> int
val is_empty : t -> bool
val is_full : t -> bool
val mem : t -> Tag.t -> bool

(** Result of {!add}. *)
type add_result =
  | Added  (** inserted, room was available *)
  | Added_evicting of Tag.t  (** inserted, displacing the returned tag *)
  | Already_present  (** no-op: Eq. (7) — at most one copy per tag *)
  | Rejected  (** full and the eviction policy is [Reject] *)

val add : t -> Tag.t -> add_result
val remove : t -> Tag.t -> bool
(** [true] if the tag was present. *)

val touch : t -> Tag.t -> unit
(** Refresh recency under [Lru]; no-op otherwise. *)

val clear : t -> Tag.t list
(** Empties the list, returning the tags that were present. *)

val to_list : t -> Tag.t list
(** Oldest first. *)

val iter : t -> (Tag.t -> unit) -> unit
val fold : t -> init:'a -> f:('a -> Tag.t -> 'a) -> 'a
val exists : t -> (Tag.t -> bool) -> bool
val copy : t -> t
val pp : Format.formatter -> t -> unit
