type t = { ty : Tag_type.t; id : int }

let make ty id = { ty; id }
let ty t = t.ty
let id t = t.id
let equal a b = Tag_type.equal a.ty b.ty && a.id = b.id

let compare a b =
  match Tag_type.compare a.ty b.ty with 0 -> Int.compare a.id b.id | c -> c

let hash t = (Tag_type.to_int t.ty * 0x1000003) lxor t.id
let to_string t = Printf.sprintf "%s#%d" (Tag_type.to_string t.ty) t.id
let pp ppf t = Format.pp_print_string ppf (to_string t)

let encode enc t =
  Mitos_util.Codec.Enc.uint enc (Tag_type.to_int t.ty);
  Mitos_util.Codec.Enc.uint enc t.id

let decode dec =
  let ty = Tag_type.of_int (Mitos_util.Codec.Dec.uint dec) in
  let id = Mitos_util.Codec.Dec.uint dec in
  { ty; id }

type registry = { counters : int array }

let registry () = { counters = Array.make Tag_type.count 0 }

let fresh reg ty =
  let idx = Tag_type.to_int ty in
  reg.counters.(idx) <- reg.counters.(idx) + 1;
  { ty; id = reg.counters.(idx) }

let created reg ty = reg.counters.(Tag_type.to_int ty)
let total_created reg = Array.fold_left ( + ) 0 reg.counters

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
