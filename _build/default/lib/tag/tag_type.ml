type t =
  | Network
  | File
  | Process
  | Export_table
  | Pointer
  | String_data
  | Kernel
  | Sensor

let all =
  [ Network; File; Process; Export_table; Pointer; String_data; Kernel; Sensor ]

let count = List.length all

let to_int = function
  | Network -> 0
  | File -> 1
  | Process -> 2
  | Export_table -> 3
  | Pointer -> 4
  | String_data -> 5
  | Kernel -> 6
  | Sensor -> 7

let of_int = function
  | 0 -> Network
  | 1 -> File
  | 2 -> Process
  | 3 -> Export_table
  | 4 -> Pointer
  | 5 -> String_data
  | 6 -> Kernel
  | 7 -> Sensor
  | n -> invalid_arg (Printf.sprintf "Tag_type.of_int: %d" n)

let to_string = function
  | Network -> "network"
  | File -> "file"
  | Process -> "process"
  | Export_table -> "export-table"
  | Pointer -> "pointer"
  | String_data -> "string"
  | Kernel -> "kernel"
  | Sensor -> "sensor"

let of_string = function
  | "network" -> Network
  | "file" -> File
  | "process" -> Process
  | "export-table" -> Export_table
  | "pointer" -> Pointer
  | "string" -> String_data
  | "kernel" -> Kernel
  | "sensor" -> Sensor
  | s -> invalid_arg (Printf.sprintf "Tag_type.of_string: %S" s)

let equal a b = to_int a = to_int b
let compare a b = Int.compare (to_int a) (to_int b)
let pp ppf t = Format.pp_print_string ppf (to_string t)
