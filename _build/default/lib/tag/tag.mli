(** Tag identities — the paper's [{t, i}] pairs.

    A tag is a type plus an integer that differentiates tags of the
    same type (e.g. two network connections get two distinct [Network]
    tags). A {!registry} hands out fresh identifiers per type, as the
    OS layer creates connections, files and processes. *)

type t = { ty : Tag_type.t; id : int }

val make : Tag_type.t -> int -> t
val ty : t -> Tag_type.t
val id : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
(** Renders like [network#3]. *)

val to_string : t -> string

val encode : Mitos_util.Codec.Enc.t -> t -> unit
val decode : Mitos_util.Codec.Dec.t -> t

(** Fresh-identifier allocation, one counter per tag type. *)
type registry

val registry : unit -> registry
val fresh : registry -> Tag_type.t -> t
(** Identifiers start at 1 and increase per type. *)

val created : registry -> Tag_type.t -> int
(** How many tags of this type have been handed out. *)

val total_created : registry -> int

(** Hashtable keyed by tags. *)
module Table : Hashtbl.S with type key = t

(** Ordered set of tags. *)
module Set : Set.S with type elt = t
