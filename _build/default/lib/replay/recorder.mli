(** Recording machine executions into traces. *)

val record :
  ?max_steps:int ->
  ?meta:(string * string) list ->
  Mitos_isa.Machine.t ->
  Trace.t
(** Run the machine to halt (or [max_steps], default 10 million),
    capturing every execution record. *)

val verify_deterministic :
  make_machine:(unit -> Mitos_isa.Machine.t) -> ?max_steps:int -> unit -> bool
(** Record twice from identically-constructed machines and compare
    traces — the property PANDA's record/replay guarantees and our
    experiments rely on. *)
