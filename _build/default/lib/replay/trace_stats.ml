module Machine = Mitos_isa.Machine
module Instr = Mitos_isa.Instr

type t = {
  instructions : int;
  loads : int;
  stores : int;
  branches : int;
  branches_taken : int;
  indirect_jumps : int;
  syscalls : int;
  alu : int;
  moves : int;
  addr_dep_sites : int;
  ctrl_dep_sites : int;
  bytes_read : int;
  bytes_written : int;
  source_bytes : int;
  sink_bytes : int;
  distinct_pcs : int;
  hottest : (int * int) list;
}

let analyze trace =
  let loads = ref 0 and stores = ref 0 in
  let branches = ref 0 and branches_taken = ref 0 in
  let ijumps = ref 0 and syscalls = ref 0 in
  let alu = ref 0 and moves = ref 0 in
  let bytes_read = ref 0 and bytes_written = ref 0 in
  let source_bytes = ref 0 and sink_bytes = ref 0 in
  let pc_counts = Hashtbl.create 1024 in
  Trace.iter trace (fun (r : Machine.exec_record) ->
      Hashtbl.replace pc_counts r.pc
        (1 + Option.value ~default:0 (Hashtbl.find_opt pc_counts r.pc));
      (match r.mem_read with Some (_, len) -> bytes_read := !bytes_read + len | None -> ());
      (match r.mem_write with
      | Some (_, len) -> bytes_written := !bytes_written + len
      | None -> ());
      List.iter
        (function
          | Machine.Sys_wrote_mem { len; _ } -> source_bytes := !source_bytes + len
          | Machine.Sys_read_mem { len; _ } -> sink_bytes := !sink_bytes + len
          | Machine.Sys_snapshot_mem _ | Machine.Sys_set_reg _
          | Machine.Sys_halt ->
            ())
        r.sys_effects;
      match r.instr with
      | Instr.Load _ -> incr loads
      | Instr.Store _ -> incr stores
      | Instr.Branch _ ->
        incr branches;
        if r.taken = Some true then incr branches_taken
      | Instr.Jr _ -> incr ijumps
      | Instr.Syscall _ -> incr syscalls
      | Instr.Bin _ | Instr.Bini _ -> incr alu
      | Instr.Li _ | Instr.Mov _ -> incr moves
      | Instr.Jmp _ | Instr.Nop | Instr.Halt -> ());
  let hottest =
    Hashtbl.fold (fun pc n acc -> (pc, n) :: acc) pc_counts []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
    |> List.filteri (fun i _ -> i < 10)
  in
  {
    instructions = Trace.length trace;
    loads = !loads;
    stores = !stores;
    branches = !branches;
    branches_taken = !branches_taken;
    indirect_jumps = !ijumps;
    syscalls = !syscalls;
    alu = !alu;
    moves = !moves;
    addr_dep_sites = !loads + !stores;
    ctrl_dep_sites = !branches;
    bytes_read = !bytes_read;
    bytes_written = !bytes_written;
    source_bytes = !source_bytes;
    sink_bytes = !sink_bytes;
    distinct_pcs = Hashtbl.length pc_counts;
    hottest;
  }

let to_rows t =
  [
    ("instructions", string_of_int t.instructions);
    ("loads / stores", Printf.sprintf "%d / %d" t.loads t.stores);
    ( "branches (taken)",
      Printf.sprintf "%d (%d)" t.branches t.branches_taken );
    ("indirect jumps", string_of_int t.indirect_jumps);
    ("syscalls", string_of_int t.syscalls);
    ("ALU / moves", Printf.sprintf "%d / %d" t.alu t.moves);
    ( "potential addr deps",
      Printf.sprintf "%d (%.1f%%)" t.addr_dep_sites
        (100.0 *. float_of_int t.addr_dep_sites
        /. float_of_int (max 1 t.instructions)) );
    ( "potential ctrl deps",
      Printf.sprintf "%d (%.1f%%)" t.ctrl_dep_sites
        (100.0 *. float_of_int t.ctrl_dep_sites
        /. float_of_int (max 1 t.instructions)) );
    ("bytes read / written", Printf.sprintf "%d / %d" t.bytes_read t.bytes_written);
    ("source / sink bytes", Printf.sprintf "%d / %d" t.source_bytes t.sink_bytes);
    ("distinct program points", string_of_int t.distinct_pcs);
  ]

let pp ppf t =
  List.iter
    (fun (label, value) -> Format.fprintf ppf "%-26s %s@." label value)
    (to_rows t);
  Format.fprintf ppf "%-26s" "hottest pcs";
  List.iter (fun (pc, n) -> Format.fprintf ppf " %d:%d" pc n) t.hottest;
  Format.pp_print_newline ppf ()

(* -- loop profile ----------------------------------------------------- *)

module Cfg = Mitos_flow.Cfg

type loop_info = {
  header_pc : int;
  first_pc : int;
  last_pc : int;
  iterations : int;
  body_instructions : int;
}

let loop_profile trace =
  let prog = Trace.program trace in
  let cfg = Cfg.build prog in
  let counts = Hashtbl.create 256 in
  Trace.iter trace (fun (r : Machine.exec_record) ->
      Hashtbl.replace counts r.pc
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts r.pc)));
  let count pc = Option.value ~default:0 (Hashtbl.find_opt counts pc) in
  let blocks = Cfg.blocks cfg in
  Cfg.loops cfg
  |> List.map (fun (l : Cfg.loop) ->
         let header = blocks.(l.Cfg.header) in
         let latch = blocks.(l.Cfg.back_edge_from) in
         let first_pc =
           List.fold_left
             (fun acc b -> min acc blocks.(b).Cfg.first)
             header.Cfg.first l.Cfg.body
         in
         let last_pc =
           List.fold_left
             (fun acc b -> max acc blocks.(b).Cfg.last)
             header.Cfg.last l.Cfg.body
         in
         let body_instructions =
           List.fold_left
             (fun acc b ->
               let blk = blocks.(b) in
               let s = ref 0 in
               for pc = blk.Cfg.first to blk.Cfg.last do
                 s := !s + count pc
               done;
               acc + !s)
             0 l.Cfg.body
         in
         {
           header_pc = header.Cfg.first;
           first_pc;
           last_pc;
           iterations = count latch.Cfg.last;
           body_instructions;
         })
  |> List.sort (fun a b -> Int.compare b.body_instructions a.body_instructions)

let syscall_histogram trace =
  let counts = Hashtbl.create 16 in
  Trace.iter trace (fun (r : Machine.exec_record) ->
      match r.instr with
      | Instr.Syscall n ->
        Hashtbl.replace counts n
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts n))
      | _ -> ());
  Hashtbl.fold (fun n c acc -> (n, c) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
