lib/replay/trace.ml: Array Fun List Mitos_isa Mitos_util
