lib/replay/trace_stats.mli: Format Trace
