lib/replay/recorder.ml: Array List Mitos_isa Trace
