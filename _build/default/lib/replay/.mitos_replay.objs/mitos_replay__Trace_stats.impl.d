lib/replay/trace_stats.ml: Array Format Hashtbl Int List Mitos_flow Mitos_isa Option Printf Trace
