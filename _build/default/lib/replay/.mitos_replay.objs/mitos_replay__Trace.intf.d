lib/replay/trace.mli: Mitos_isa
