lib/replay/recorder.mli: Mitos_isa Trace
