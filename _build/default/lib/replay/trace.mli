(** Execution traces: the record/replay substrate.

    The paper's methodology records a system run once (PANDA) and
    replays it under different MITOS parameterizations. A trace
    captures the program, machine geometry and the full sequence of
    execution records; replaying feeds the records to any consumer
    (typically [Engine.process_record]) without re-executing the
    machine, so every policy sees the identical instruction stream. *)

type t

val make :
  ?meta:(string * string) list ->
  program:Mitos_isa.Program.t ->
  mem_size:int ->
  Mitos_isa.Machine.exec_record array ->
  t

val program : t -> Mitos_isa.Program.t
val mem_size : t -> int
val records : t -> Mitos_isa.Machine.exec_record array
val length : t -> int
val meta : t -> (string * string) list
val find_meta : t -> string -> string option

val add_meta : t -> string -> string -> t
(** Functional update; replaces an existing binding of the key. *)

val iter : t -> (Mitos_isa.Machine.exec_record -> unit) -> unit

val to_string : t -> string
(** Compact binary serialization. *)

val of_string : string -> t
(** Raises [Mitos_util.Codec.Malformed] on corrupt input. *)

val save : t -> string -> unit
(** Write to a file path. *)

val load : string -> t
