module Machine = Mitos_isa.Machine
module Program = Mitos_isa.Program
module Codec = Mitos_util.Codec

type t = {
  program : Program.t;
  mem_size : int;
  records : Machine.exec_record array;
  meta : (string * string) list;
}

let make ?(meta = []) ~program ~mem_size records =
  { program; mem_size; records; meta }

let program t = t.program
let mem_size t = t.mem_size
let records t = t.records
let length t = Array.length t.records
let meta t = t.meta
let find_meta t key = List.assoc_opt key t.meta

let add_meta t key value =
  { t with meta = (key, value) :: List.remove_assoc key t.meta }
let iter t f = Array.iter f t.records

let magic = "MITRACE1"

let to_string t =
  let enc = Codec.Enc.create ~initial_size:(4096 + (Array.length t.records * 16)) () in
  Codec.Enc.string enc magic;
  Program.encode enc t.program;
  Codec.Enc.uint enc t.mem_size;
  Codec.Enc.list enc
    (fun (k, v) ->
      Codec.Enc.string enc k;
      Codec.Enc.string enc v)
    t.meta;
  Codec.Enc.array enc (Machine.encode_record enc) t.records;
  Codec.Enc.contents enc

let of_string s =
  let dec = Codec.Dec.of_string s in
  let m = Codec.Dec.string dec in
  if m <> magic then raise (Codec.Malformed "bad trace magic");
  let program = Program.decode dec in
  let mem_size = Codec.Dec.uint dec in
  let meta =
    Codec.Dec.list dec (fun dec ->
        let k = Codec.Dec.string dec in
        let v = Codec.Dec.string dec in
        (k, v))
  in
  let records = Codec.Dec.array dec Machine.decode_record in
  Codec.Dec.expect_end dec;
  { program; mem_size; records; meta }

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
