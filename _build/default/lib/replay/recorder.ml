module Machine = Mitos_isa.Machine

let record ?(max_steps = 10_000_000) ?(meta = []) machine =
  let records = ref [] in
  let n = ref 0 in
  ignore
    (Machine.run ~max_steps machine (fun r ->
         records := r :: !records;
         incr n));
  Trace.make ~meta
    ~program:(Machine.program machine)
    ~mem_size:(Machine.mem_size machine)
    (Array.of_list (List.rev !records))

let verify_deterministic ~make_machine ?max_steps () =
  let t1 = record ?max_steps (make_machine ()) in
  let t2 = record ?max_steps (make_machine ()) in
  Trace.to_string t1 = Trace.to_string t2
