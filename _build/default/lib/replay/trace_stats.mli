(** Offline trace analysis (no shadow state, no policy).

    The record/replay substrate makes a recorded run a first-class
    artifact; this module answers the questions an analyst asks of one
    before choosing a policy: how much of the instruction stream can
    even carry indirect flows, of which kind, and how hot is each
    program point. This is the PANDA-plugin style of tooling the
    paper's workflow assumes. *)

type t = {
  instructions : int;
  (* instruction mix *)
  loads : int;
  stores : int;
  branches : int;
  branches_taken : int;
  indirect_jumps : int;
  syscalls : int;
  alu : int;  (** computation instructions (Bin/Bini) *)
  moves : int;  (** Li/Mov *)
  (* flow opportunities *)
  addr_dep_sites : int;
      (** loads/stores — every one is a potential address dependency *)
  ctrl_dep_sites : int;  (** conditional branches *)
  bytes_read : int;
  bytes_written : int;
  source_bytes : int;  (** bytes written by taint sources *)
  sink_bytes : int;
  distinct_pcs : int;  (** program points actually executed *)
  hottest : (int * int) list;  (** (pc, executions), descending, top 10 *)
}

val analyze : Trace.t -> t
val pp : Format.formatter -> t -> unit
val to_rows : t -> (string * string) list
(** (label, value) pairs for tabular display. *)

(** A natural loop observed in the trace. Loops are where indirect
    flows concentrate (translation and decoder loops), so per-loop
    dynamic counts tell an analyst where policy decisions will
    cluster. *)
type loop_info = {
  header_pc : int;  (** first instruction of the loop header block *)
  first_pc : int;
  last_pc : int;  (** static extent of the loop body *)
  iterations : int;  (** times the back edge was taken (dynamic) *)
  body_instructions : int;  (** dynamic instruction count inside the body *)
}

val loop_profile : Trace.t -> loop_info list
(** Natural loops of the program (via {!Mitos_flow.Cfg.loops}) with
    their dynamic execution counts, busiest first. Loops never entered
    report zero iterations. *)

val syscall_histogram : Trace.t -> (int * int) list
(** (syscall number, invocations), descending by count — the OS
    interaction profile of the run. *)
