lib/distrib/cluster.mli: Estimator Mitos Mitos_dift Mitos_tag Mitos_workload
