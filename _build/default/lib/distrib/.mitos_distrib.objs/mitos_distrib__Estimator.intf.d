lib/distrib/estimator.mli:
