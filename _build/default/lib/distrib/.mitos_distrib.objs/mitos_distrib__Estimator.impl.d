lib/distrib/estimator.ml: Array
