lib/distrib/cluster.ml: Array Engine Estimator Float Int List Metrics Mitos Mitos_dift Mitos_util Mitos_workload Policies Printf
