(** The shared global pollution estimate.

    MITOS's scalability argument (paper §IV-B, property 3) is that the
    undertainting submarginal needs only local information, while the
    overtainting submarginal needs a single global scalar — the memory
    pollution — which "is kept in a globally available variable for
    all potential subsystems". In a distributed deployment that
    variable is synchronized, not read instantaneously; this module
    models it: each node publishes its local weighted pollution on its
    own schedule, and everyone reads the (possibly stale) sum. *)

type t

val create : nodes:int -> t
val publish : t -> node:int -> float -> unit
(** Overwrite the node's published contribution. *)

val global : t -> float
(** Sum of the latest published contributions. *)

val contribution : t -> node:int -> float
val nodes : t -> int
