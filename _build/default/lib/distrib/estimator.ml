type t = { published : float array }

let create ~nodes =
  if nodes < 1 then invalid_arg "Estimator.create: need at least one node";
  { published = Array.make nodes 0.0 }

let publish t ~node value = t.published.(node) <- value
let global t = Array.fold_left ( +. ) 0.0 t.published
let contribution t ~node = t.published.(node)
let nodes t = Array.length t.published
