open Mitos_isa

(* -- Instr ------------------------------------------------------------ *)

let test_instr_reads_writes () =
  Alcotest.(check (list int)) "li reads" [] (Instr.reads (Instr.Li (1, 5)));
  Alcotest.(check (option int)) "li writes" (Some 1) (Instr.writes (Instr.Li (1, 5)));
  Alcotest.(check (list int)) "bin reads" [ 2; 3 ]
    (Instr.reads (Instr.Bin (Instr.Add, 1, 2, 3)));
  Alcotest.(check (list int)) "store reads value+base" [ 4; 5 ]
    (Instr.reads (Instr.Store (Instr.W8, 4, 5, 0)));
  Alcotest.(check (option int)) "store writes no reg" None
    (Instr.writes (Instr.Store (Instr.W8, 4, 5, 0)));
  Alcotest.(check (list int)) "load reads base" [ 5 ]
    (Instr.reads (Instr.Load (Instr.W32, 4, 5, 0)));
  Alcotest.(check (list int)) "syscall args" [ 1; 2; 3 ]
    (Instr.reads (Instr.Syscall 1))

let test_instr_control () =
  Alcotest.(check bool) "branch is branch" true
    (Instr.is_branch (Instr.Branch (Instr.Eq, 0, 0, 0)));
  Alcotest.(check bool) "jmp not branch" false (Instr.is_branch (Instr.Jmp 0));
  Alcotest.(check bool) "jmp is control" true (Instr.is_control (Instr.Jmp 0));
  Alcotest.(check bool) "halt is control" true (Instr.is_control Instr.Halt);
  Alcotest.(check (list int)) "branch targets" [ 7; 4 ]
    (Instr.branch_targets (Instr.Branch (Instr.Eq, 0, 0, 7)) ~next:4);
  Alcotest.(check (list int)) "jr unknown" []
    (Instr.branch_targets (Instr.Jr 3) ~next:4);
  Alcotest.(check (list int)) "fallthrough" [ 4 ]
    (Instr.branch_targets Instr.Nop ~next:4)

let arbitrary_instr =
  let open QCheck.Gen in
  let reg = int_range 0 (Instr.num_regs - 1) in
  let binop =
    oneofl
      [ Instr.Add; Instr.Sub; Instr.Mul; Instr.Divu; Instr.Rem; Instr.And;
        Instr.Or; Instr.Xor; Instr.Shl; Instr.Shr ]
  in
  let cond =
    oneofl [ Instr.Eq; Instr.Ne; Instr.Lt; Instr.Ge; Instr.Ltu; Instr.Geu ]
  in
  let width = oneofl [ Instr.W8; Instr.W32 ] in
  oneof
    [
      map2 (fun rd imm -> Instr.Li (rd, imm)) reg (int_range (-1000000) 1000000);
      map2 (fun rd rs -> Instr.Mov (rd, rs)) reg reg;
      (binop >>= fun op ->
       map3 (fun rd rs1 rs2 -> Instr.Bin (op, rd, rs1, rs2)) reg reg reg);
      (width >>= fun w ->
       map3 (fun rd rb off -> Instr.Load (w, rd, rb, off)) reg reg
         (int_range 0 1000));
      (cond >>= fun c ->
       map3 (fun rs1 rs2 target -> Instr.Branch (c, rs1, rs2, target)) reg reg
         (int_range 0 100));
      map (fun t -> Instr.Jmp t) (int_range 0 100);
      map (fun r -> Instr.Jr r) reg;
      map (fun n -> Instr.Syscall n) (int_range 0 16);
      return Instr.Nop;
      return Instr.Halt;
    ]

let qcheck_instr_codec_roundtrip =
  QCheck.Test.make ~name:"instr codec roundtrip" ~count:500
    (QCheck.make arbitrary_instr) (fun instr ->
      let enc = Mitos_util.Codec.Enc.create () in
      Instr.encode enc instr;
      let dec = Mitos_util.Codec.Dec.of_string (Mitos_util.Codec.Enc.contents enc) in
      Instr.decode dec = instr)

(* -- Asm / Program ----------------------------------------------------- *)

let test_asm_labels () =
  let a = Asm.create () in
  Asm.jmp a "end";
  (* forward reference *)
  Asm.label a "loop";
  Asm.nop a;
  Asm.branch a Instr.Eq 0 0 "loop";
  (* backward reference *)
  Asm.label a "end";
  Asm.halt a;
  let p = Asm.assemble a in
  Alcotest.(check int) "length" 4 (Program.length p);
  (match Program.instr p 0 with
  | Instr.Jmp 3 -> ()
  | i -> Alcotest.failf "expected jmp 3, got %s" (Instr.to_string i));
  (match Program.instr p 2 with
  | Instr.Branch (_, _, _, 1) -> ()
  | i -> Alcotest.failf "expected branch to 1, got %s" (Instr.to_string i));
  Alcotest.(check int) "label lookup" 1 (Program.label_addr p "loop")

let test_asm_li_label () =
  let a = Asm.create () in
  Asm.li_label a 4 "target";
  Asm.halt a;
  Asm.label a "target";
  Asm.nop a;
  let p = Asm.assemble a in
  match Program.instr p 0 with
  | Instr.Li (4, 2) -> ()
  | i -> Alcotest.failf "expected li r4, 2, got %s" (Instr.to_string i)

let test_asm_errors () =
  let a = Asm.create () in
  Asm.label a "x";
  Alcotest.(check bool) "duplicate label" true
    (try Asm.label a "x"; false with Invalid_argument _ -> true);
  let b = Asm.create () in
  Asm.jmp b "nowhere";
  Alcotest.(check bool) "undefined label" true
    (try ignore (Asm.assemble b); false with Invalid_argument _ -> true)

let test_program_validation () =
  Alcotest.(check bool) "bad target rejected" true
    (try ignore (Program.make [| Instr.Jmp 9 |]); false
     with Invalid_argument _ -> true)

let test_program_codec () =
  let a = Asm.create () in
  Asm.li a 1 42;
  Asm.label a "x";
  Asm.branch a Instr.Ne 1 2 "x";
  Asm.halt a;
  let p = Asm.assemble a in
  let enc = Mitos_util.Codec.Enc.create () in
  Program.encode enc p;
  let dec = Mitos_util.Codec.Dec.of_string (Mitos_util.Codec.Enc.contents enc) in
  let p' = Program.decode dec in
  Alcotest.(check bool) "same code" true (Program.code p = Program.code p');
  Alcotest.(check int) "labels kept" 1 (Program.label_addr p' "x")

(* -- Machine ------------------------------------------------------------ *)

let run_program instrs =
  let m = Machine.create ~mem_size:4096 (Program.make (Array.of_list instrs)) in
  ignore (Machine.run m (fun _ -> ()));
  m

let test_machine_arithmetic () =
  let m =
    run_program
      [
        Instr.Li (1, 10); Instr.Li (2, 3);
        Instr.Bin (Instr.Add, 3, 1, 2);
        Instr.Bin (Instr.Sub, 4, 1, 2);
        Instr.Bin (Instr.Mul, 5, 1, 2);
        Instr.Bin (Instr.Divu, 6, 1, 2);
        Instr.Bin (Instr.Rem, 7, 1, 2);
        Instr.Bini (Instr.Xor, 8, 1, 6);
        Instr.Bini (Instr.Shl, 9, 1, 4);
        Instr.Bini (Instr.Shr, 10, 1, 1);
        Instr.Halt;
      ]
  in
  Alcotest.(check int) "add" 13 (Machine.get_reg m 3);
  Alcotest.(check int) "sub" 7 (Machine.get_reg m 4);
  Alcotest.(check int) "mul" 30 (Machine.get_reg m 5);
  Alcotest.(check int) "divu" 3 (Machine.get_reg m 6);
  Alcotest.(check int) "rem" 1 (Machine.get_reg m 7);
  Alcotest.(check int) "xori" 12 (Machine.get_reg m 8);
  Alcotest.(check int) "shl" 160 (Machine.get_reg m 9);
  Alcotest.(check int) "shr" 5 (Machine.get_reg m 10)

let test_machine_masking () =
  let m =
    run_program
      [ Instr.Li (1, -1); Instr.Bini (Instr.Add, 2, 1, 2); Instr.Halt ]
  in
  Alcotest.(check int) "li masks to 32 bits" 0xFFFFFFFF (Machine.get_reg m 1);
  Alcotest.(check int) "wraparound" 1 (Machine.get_reg m 2)

let test_machine_memory () =
  let m =
    run_program
      [
        Instr.Li (1, 0x11223344); Instr.Li (2, 100);
        Instr.Store (Instr.W32, 1, 2, 0);
        Instr.Load (Instr.W8, 3, 2, 0);
        (* little-endian: lowest byte first *)
        Instr.Load (Instr.W8, 4, 2, 3);
        Instr.Load (Instr.W32, 5, 2, 0);
        Instr.Halt;
      ]
  in
  Alcotest.(check int) "byte 0 (LE)" 0x44 (Machine.get_reg m 3);
  Alcotest.(check int) "byte 3 (LE)" 0x11 (Machine.get_reg m 4);
  Alcotest.(check int) "word roundtrip" 0x11223344 (Machine.get_reg m 5)

let test_machine_branches () =
  let m =
    run_program
      [
        Instr.Li (1, 5); Instr.Li (2, 5);
        Instr.Branch (Instr.Eq, 1, 2, 5);
        Instr.Li (3, 111); (* skipped *)
        Instr.Halt;
        Instr.Li (3, 222);
        Instr.Halt;
      ]
  in
  Alcotest.(check int) "taken branch" 222 (Machine.get_reg m 3)

let test_machine_signed_compare () =
  let m =
    run_program
      [
        Instr.Li (1, -1); Instr.Li (2, 1);
        (* signed: -1 < 1 -> branch taken *)
        Instr.Branch (Instr.Lt, 1, 2, 5);
        Instr.Li (3, 0);
        Instr.Halt;
        Instr.Li (3, 1);
        (* unsigned: 0xFFFFFFFF > 1 -> not taken *)
        Instr.Branch (Instr.Ltu, 1, 2, 9);
        Instr.Li (4, 7);
        Instr.Halt;
        Instr.Halt;
      ]
  in
  Alcotest.(check int) "signed lt" 1 (Machine.get_reg m 3);
  Alcotest.(check int) "unsigned not lt" 7 (Machine.get_reg m 4)

let test_machine_jr () =
  let m =
    run_program
      [ Instr.Li (1, 3); Instr.Jr 1; Instr.Li (2, 9); Instr.Halt ]
  in
  Alcotest.(check int) "indirect jump skipped li" 0 (Machine.get_reg m 2)

let test_machine_faults () =
  let fault instrs =
    try
      ignore (run_program instrs);
      false
    with Machine.Fault _ -> true
  in
  Alcotest.(check bool) "div by zero" true
    (fault [ Instr.Li (1, 1); Instr.Li (2, 0); Instr.Bin (Instr.Divu, 3, 1, 2); Instr.Halt ]);
  Alcotest.(check bool) "oob store" true
    (fault [ Instr.Li (1, 100000); Instr.Store (Instr.W8, 0, 1, 0); Instr.Halt ]);
  Alcotest.(check bool) "jr out of program" true
    (fault [ Instr.Li (1, 500); Instr.Jr 1; Instr.Halt ]);
  Alcotest.(check bool) "unhandled syscall" true
    (fault [ Instr.Syscall 1; Instr.Halt ])

let test_machine_step_records () =
  let m =
    Machine.create ~mem_size:256
      (Program.make
         [| Instr.Li (1, 7); Instr.Store (Instr.W8, 1, 2, 5); Instr.Halt |])
  in
  let r1 = Option.get (Machine.step m) in
  Alcotest.(check int) "step number" 0 r1.Machine.step;
  Alcotest.(check (option (pair int int))) "reg write" (Some (1, 7))
    r1.Machine.reg_write;
  let r2 = Option.get (Machine.step m) in
  Alcotest.(check (option (pair int int))) "mem write" (Some (5, 1))
    r2.Machine.mem_write;
  Alcotest.(check (list (pair int int))) "reg reads" [ (1, 7); (2, 0) ]
    r2.Machine.reg_reads;
  let r3 = Option.get (Machine.step m) in
  Alcotest.(check bool) "halt record" true (r3.Machine.instr = Instr.Halt);
  Alcotest.(check bool) "after halt" true (Machine.step m = None);
  Alcotest.(check bool) "halted" true (Machine.halted m)

let test_machine_syscall_handler () =
  let effects_seen = ref [] in
  let handler m ~sysno =
    effects_seen := sysno :: !effects_seen;
    Machine.set_reg m 1 99;
    if sysno = 2 then [ Machine.Sys_halt ]
    else [ Machine.Sys_set_reg { reg = 1 } ]
  in
  let m =
    Machine.create ~mem_size:256 ~syscall:handler
      (Program.make [| Instr.Syscall 1; Instr.Syscall 2; Instr.Li (3, 1) |])
  in
  let n = Machine.run m (fun _ -> ()) in
  Alcotest.(check int) "stopped at sys_halt" 2 n;
  Alcotest.(check int) "handler ran" 99 (Machine.get_reg m 1);
  Alcotest.(check (list int)) "syscall order" [ 2; 1 ] !effects_seen;
  Alcotest.(check int) "halted before li" 0 (Machine.get_reg m 3)

let test_machine_max_steps () =
  let m =
    Machine.create ~mem_size:64 (Program.make [| Instr.Jmp 0 |])
  in
  Alcotest.(check int) "max steps respected" 100
    (Machine.run ~max_steps:100 m (fun _ -> ()))

let test_machine_bulk_memory_ops () =
  let m = Machine.create ~mem_size:64 (Program.make [| Instr.Halt |]) in
  Machine.blit_string m 10 "hello";
  Alcotest.(check string) "blit_string" "hello"
    (Bytes.to_string (Machine.read_bytes m 10 5));
  Machine.write_bytes m 20 (Bytes.of_string "xyz");
  Alcotest.(check string) "write_bytes" "xyz"
    (Bytes.to_string (Machine.read_bytes m 20 3));
  Alcotest.(check bool) "read out of range" true
    (try ignore (Machine.read_bytes m 60 10); false with Machine.Fault _ -> true);
  Alcotest.(check bool) "blit out of range" true
    (try Machine.blit_string m 62 "abc"; false with Machine.Fault _ -> true)

let test_program_pp_listing () =
  let a = Asm.create () in
  Asm.li a 1 5;
  Asm.label a "loop";
  Asm.branch a Instr.Ne 1 2 "loop";
  Asm.halt a;
  let p = Asm.assemble a in
  let listing = Format.asprintf "%a" Program.pp p in
  let contains needle =
    let n = String.length needle and h = String.length listing in
    let rec go i = i + n <= h && (String.sub listing i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "label printed" true (contains "loop:");
  Alcotest.(check bool) "instruction printed" true (contains "li r1, 5");
  Alcotest.(check bool) "branch rendered with target" true (contains "@1")

let test_asm_here () =
  let a = Asm.create () in
  Alcotest.(check int) "empty" 0 (Asm.here a);
  Asm.nop a;
  Asm.nop a;
  Alcotest.(check int) "after two" 2 (Asm.here a);
  ignore (Asm.assemble a);
  Alcotest.(check bool) "builder not reusable" true
    (try Asm.nop a; false with Invalid_argument _ -> true)

let test_pp_record () =
  let m = Machine.create ~mem_size:64 (Program.make [| Instr.Li (1, 9); Instr.Halt |]) in
  let r = Option.get (Machine.step m) in
  Alcotest.(check string) "record rendering" "#0 @0 li r1, 9"
    (Format.asprintf "%a" Machine.pp_record r)

let test_record_codec_roundtrip () =
  let m =
    Machine.create ~mem_size:256
      (Program.make
         [|
           Instr.Li (1, 3); Instr.Store (Instr.W32, 1, 1, 0);
           Instr.Branch (Instr.Eq, 1, 1, 4); Instr.Nop; Instr.Halt;
         |])
  in
  let records = ref [] in
  ignore (Machine.run m (fun r -> records := r :: !records));
  List.iter
    (fun r ->
      let enc = Mitos_util.Codec.Enc.create () in
      Machine.encode_record enc r;
      let dec =
        Mitos_util.Codec.Dec.of_string (Mitos_util.Codec.Enc.contents enc)
      in
      Alcotest.(check bool) "record roundtrip" true
        (Machine.decode_record dec = r))
    !records

(* -- Parser ------------------------------------------------------------- *)

let test_parser_basic_program () =
  let p =
    Parser.parse
      {|
        ; translate one byte
        li r4, 100
        loop:
          ldb r8, 0(r4)     # load
          addi r9, r8, 512
          ldb r8, 0(r9)
          stb r8, 1(r4)
          bltu r4, r6, @loop
        halt
      |}
  in
  Alcotest.(check int) "seven instructions" 7 (Program.length p);
  Alcotest.(check int) "label resolved" 1 (Program.label_addr p "loop");
  (match Program.instr p 5 with
  | Instr.Branch (Instr.Ltu, 4, 6, 1) -> ()
  | i -> Alcotest.failf "bad branch: %s" (Instr.to_string i))

let test_parser_absolute_targets_and_index_column () =
  let p = Parser.parse "   0  li r1, 5\n   1  jmp @0\n   2  halt\n" in
  Alcotest.(check int) "three instructions" 3 (Program.length p);
  match Program.instr p 1 with
  | Instr.Jmp 0 -> ()
  | i -> Alcotest.failf "bad jmp: %s" (Instr.to_string i)

let test_parser_errors () =
  let fails ?(semantic = false) src =
    try
      ignore (Parser.parse src);
      false
    with
    | Parser.Parse_error _ -> true
    | Invalid_argument _ -> semantic
  in
  Alcotest.(check bool) "unknown mnemonic" true (fails "frobnicate r1");
  Alcotest.(check bool) "bad register" true (fails "li r99, 1");
  Alcotest.(check bool) "wrong arity" true (fails "add r1, r2");
  Alcotest.(check bool) "bad target" true (fails "jmp r1");
  Alcotest.(check bool) "undefined label" true
    (fails "jmp @nowhere\nhalt");
  Alcotest.(check bool) "line number reported" true
    (try ignore (Parser.parse "nop\nbogus r1\n"); false
     with Parser.Parse_error (2, _) -> true | _ -> false)

let test_parser_roundtrips_workload_syntax () =
  (* every instruction the printer can emit must parse back *)
  let a = Asm.create () in
  Asm.li a 1 (-5);
  Asm.mov a 2 1;
  Asm.bin a Instr.Mul 3 1 2;
  Asm.bini a Instr.Shr 4 3 2;
  Asm.loadw a 5 4 (-8);
  Asm.storew a 5 4 12;
  Asm.loadb a 6 5 0;
  Asm.storeb a 6 5 1;
  Asm.label a "x";
  Asm.branch a Instr.Geu 1 2 "x";
  Asm.jmp a "x";
  Asm.jr a 6;
  Asm.syscall a 7;
  Asm.nop a;
  Asm.halt a;
  let p = Asm.assemble a in
  Alcotest.(check bool) "printer/parser round trip" true
    (Parser.parse_roundtrip_check p)

let qcheck_parser_roundtrip_random =
  QCheck.Test.make ~name:"parse . pp = id on random valid programs" ~count:100
    (QCheck.make
       QCheck.Gen.(list_size (1 -- 30) arbitrary_instr))
    (fun instrs ->
      (* clamp targets to the program and terminate it *)
      let n = List.length instrs + 1 in
      let fix = function
        | Instr.Branch (c, a, b, t) -> Instr.Branch (c, a, b, t mod n)
        | Instr.Jmp t -> Instr.Jmp (t mod n)
        | i -> i
      in
      let code = Array.of_list (List.map fix instrs @ [ Instr.Halt ]) in
      Parser.parse_roundtrip_check (Program.make code))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "mitos_isa"
    [
      ( "instr",
        [
          Alcotest.test_case "reads/writes" `Quick test_instr_reads_writes;
          Alcotest.test_case "control" `Quick test_instr_control;
          q qcheck_instr_codec_roundtrip;
        ] );
      ( "asm",
        [
          Alcotest.test_case "labels" `Quick test_asm_labels;
          Alcotest.test_case "li_label" `Quick test_asm_li_label;
          Alcotest.test_case "errors" `Quick test_asm_errors;
          Alcotest.test_case "program validation" `Quick test_program_validation;
          Alcotest.test_case "program codec" `Quick test_program_codec;
        ] );
      ( "machine",
        [
          Alcotest.test_case "arithmetic" `Quick test_machine_arithmetic;
          Alcotest.test_case "32-bit masking" `Quick test_machine_masking;
          Alcotest.test_case "memory LE" `Quick test_machine_memory;
          Alcotest.test_case "branches" `Quick test_machine_branches;
          Alcotest.test_case "signed/unsigned compare" `Quick test_machine_signed_compare;
          Alcotest.test_case "indirect jump" `Quick test_machine_jr;
          Alcotest.test_case "faults" `Quick test_machine_faults;
          Alcotest.test_case "step records" `Quick test_machine_step_records;
          Alcotest.test_case "syscall handler" `Quick test_machine_syscall_handler;
          Alcotest.test_case "max steps" `Quick test_machine_max_steps;
          Alcotest.test_case "record codec" `Quick test_record_codec_roundtrip;
          Alcotest.test_case "bulk memory ops" `Quick test_machine_bulk_memory_ops;
          Alcotest.test_case "program listing" `Quick test_program_pp_listing;
          Alcotest.test_case "asm here/reuse" `Quick test_asm_here;
          Alcotest.test_case "pp_record" `Quick test_pp_record;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basic program" `Quick test_parser_basic_program;
          Alcotest.test_case "absolute targets / index column" `Quick
            test_parser_absolute_targets_and_index_column;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "printer round trip" `Quick
            test_parser_roundtrips_workload_syntax;
          q qcheck_parser_roundtrip_random;
        ] );
    ]
