open Mitos_isa
open Mitos_tag
open Mitos_dift

let net i = Tag.make Tag_type.Network i
let exp_tag i = Tag.make Tag_type.Export_table i

(* A tiny OS-free harness: syscall 1 writes 4 bytes at the address in
   r1 and tags them with network#<r2> (replace); syscall 2 marks 4
   bytes at r1 with export-table#1 (union, without writing); syscall 3
   is a sink on 4 bytes at r1. *)
let source_tag ~source =
  if source = 0 then Engine.Clear
  else if source < 100 then Engine.Taint (net source, `Replace)
  else Engine.Taint (exp_tag (source - 100), `Union)

let test_syscall m ~sysno =
  let a1 = Machine.get_reg m 1 and a2 = Machine.get_reg m 2 in
  match sysno with
  | 1 ->
    Machine.write_bytes m a1 (Bytes.make 4 'x');
    [ Machine.Sys_wrote_mem { addr = a1; len = 4; source = a2 } ]
  | 2 -> [ Machine.Sys_wrote_mem { addr = a1; len = 4; source = 100 + a2 } ]
  | 3 -> [ Machine.Sys_read_mem { addr = a1; len = 4; sink = 1 } ]
  | 9 -> [ Machine.Sys_wrote_mem { addr = a1; len = 4; source = 0 } ]
  | _ -> raise (Machine.Fault "unknown syscall")

let build_and_run ?(config = Engine.default_config) ~policy instrs =
  let prog = Program.make (Array.of_list instrs) in
  let machine = Machine.create ~mem_size:4096 ~syscall:test_syscall prog in
  let engine = Engine.create ~config ~policy ~source_tag prog in
  Engine.attach engine machine;
  ignore (Engine.run engine);
  engine

(* taint 4 bytes at 100 with network#1 *)
let taint_prologue =
  [ Instr.Li (1, 100); Instr.Li (2, 1); Instr.Syscall 1 ]

let tags_at engine addr = Shadow.tags_of_addr (Engine.shadow engine) addr

(* -- direct flows ------------------------------------------------------- *)

let test_direct_copy_chain () =
  (* load tainted byte -> store elsewhere: taint follows under faros *)
  let engine =
    build_and_run ~policy:Policies.faros
      (taint_prologue
      @ [
          Instr.Li (4, 100); Instr.Load (Instr.W8, 5, 4, 0);
          Instr.Li (6, 200); Instr.Store (Instr.W8, 5, 6, 0);
          Instr.Halt;
        ])
  in
  Alcotest.(check int) "source tainted" 1 (List.length (tags_at engine 100));
  Alcotest.(check bool) "copy carries tag" true
    (List.exists (Tag.equal (net 1)) (tags_at engine 200))

let test_untainted_overwrite_clears () =
  let engine =
    build_and_run ~policy:Policies.faros
      (taint_prologue
      @ [
          Instr.Li (5, 0); Instr.Li (6, 100);
          Instr.Store (Instr.W8, 5, 6, 0); (* clean store over tainted *)
          Instr.Halt;
        ])
  in
  Alcotest.(check (list string)) "cleared" []
    (List.map Tag.to_string (tags_at engine 100))

let test_compute_unions_tags () =
  (* two differently tainted bytes combined by add *)
  let engine =
    build_and_run ~policy:Policies.faros
      [
        Instr.Li (1, 100); Instr.Li (2, 1); Instr.Syscall 1;
        Instr.Li (1, 104); Instr.Li (2, 2); Instr.Syscall 1;
        Instr.Li (4, 100); Instr.Load (Instr.W8, 5, 4, 0);
        Instr.Li (4, 104); Instr.Load (Instr.W8, 6, 4, 0);
        Instr.Bin (Instr.Add, 7, 5, 6);
        Instr.Li (8, 300); Instr.Store (Instr.W8, 7, 8, 0);
        Instr.Halt;
      ]
  in
  let tags = tags_at engine 300 in
  Alcotest.(check int) "both tags combined" 2 (List.length tags);
  Alcotest.(check bool) "net1 and net2" true
    (List.exists (Tag.equal (net 1)) tags
    && List.exists (Tag.equal (net 2)) tags)

(* -- address dependencies ------------------------------------------------ *)

let addr_dep_program =
  (* translate the tainted byte at 100 through an untainted table at 0 *)
  taint_prologue
  @ [
      Instr.Li (4, 100); Instr.Load (Instr.W8, 5, 4, 0);
      (* r5 holds tainted value 'x' = 0x78; table base 0 *)
      Instr.Load (Instr.W8, 6, 5, 0); (* addr dep: index tainted *)
      Instr.Li (7, 400); Instr.Store (Instr.W8, 6, 7, 0);
      Instr.Halt;
    ]

let test_addr_dep_faros_drops () =
  let engine = build_and_run ~policy:Policies.faros addr_dep_program in
  Alcotest.(check (list string)) "faros loses taint" []
    (List.map Tag.to_string (tags_at engine 400));
  let c = Engine.counters engine in
  Alcotest.(check bool) "ifp opportunities counted" true
    (c.Engine.ifp_blocked > 0);
  Alcotest.(check int) "nothing propagated" 0 c.Engine.ifp_propagated

let test_addr_dep_propagate_all_keeps () =
  let engine = build_and_run ~policy:Policies.propagate_all addr_dep_program in
  Alcotest.(check bool) "taint survives translation" true
    (List.exists (Tag.equal (net 1)) (tags_at engine 400))

let test_minos_width_heuristic () =
  (* byte access: minos propagates *)
  let engine = build_and_run ~policy:Policies.minos_width addr_dep_program in
  Alcotest.(check bool) "byte addr dep propagates" true
    (List.exists (Tag.equal (net 1)) (tags_at engine 400));
  (* word access: blocked *)
  let engine =
    build_and_run ~policy:Policies.minos_width
      (taint_prologue
      @ [
          Instr.Li (4, 100); Instr.Load (Instr.W32, 5, 4, 0);
          Instr.Bini (Instr.And, 5, 5, 0xFC);
          Instr.Load (Instr.W32, 6, 5, 0); (* word load, tainted address *)
          Instr.Li (7, 404); Instr.Store (Instr.W32, 6, 7, 0);
          Instr.Halt;
        ])
  in
  Alcotest.(check (list string)) "word addr dep blocked" []
    (List.map Tag.to_string (tags_at engine 404))

(* -- control dependencies ------------------------------------------------- *)

let ctrl_dep_program =
  (* branch on tainted byte; write inside the branch scope, then after
     the join *)
  taint_prologue
  @ [
      (* 3 *) Instr.Li (4, 100);
      (* 4 *) Instr.Load (Instr.W8, 5, 4, 0);
      (* 5 *) Instr.Li (6, 0);
      (* 6 *) Instr.Branch (Instr.Eq, 5, 6, 9);
      (* 7 *) Instr.Li (7, 1); (* inside scope *)
      (* 8 *) Instr.Jmp 9;
      (* 9: join *) Instr.Li (8, 2); (* after scope *)
      (* 10 *) Instr.Li (9, 500);
      (* 11 *) Instr.Store (Instr.W8, 7, 9, 0);
      (* 12 *) Instr.Store (Instr.W8, 8, 9, 1);
      (* 13 *) Instr.Halt;
    ]

let test_ctrl_dep_scope () =
  let engine = build_and_run ~policy:Policies.propagate_all ctrl_dep_program in
  (* r7 written at pc 7 inside scope of branch at 6 (ipdom = 9) *)
  Alcotest.(check bool) "write in scope tainted" true
    (List.exists (Tag.equal (net 1)) (tags_at engine 500));
  Alcotest.(check (list string)) "write after join untainted" []
    (List.map Tag.to_string (tags_at engine 501));
  Alcotest.(check bool) "scope was opened" true
    ((Engine.counters engine).Engine.ctrl_scopes_opened > 0)

let test_ctrl_dep_disabled () =
  let config = { Engine.default_config with track_ctrl = false } in
  let engine =
    build_and_run ~config ~policy:Policies.propagate_all ctrl_dep_program
  in
  Alcotest.(check (list string)) "no ctrl tracking" []
    (List.map Tag.to_string (tags_at engine 500));
  Alcotest.(check int) "no scopes" 0
    (Engine.counters engine).Engine.ctrl_scopes_opened

let test_untainted_branch_opens_no_scope () =
  let engine =
    build_and_run ~policy:Policies.propagate_all
      [
        Instr.Li (1, 0); Instr.Li (2, 0);
        Instr.Branch (Instr.Eq, 1, 2, 4);
        Instr.Nop; Instr.Li (3, 1); Instr.Halt;
      ]
  in
  Alcotest.(check int) "no scope for clean branch" 0
    (Engine.counters engine).Engine.ctrl_scopes_opened

let test_ijump_scope_expires () =
  let engine =
    build_and_run
      ~config:{ Engine.default_config with ijump_scope_len = 2 }
      ~policy:Policies.propagate_all
      (taint_prologue
      @ [
          (* 3 *) Instr.Li (4, 100);
          (* 4 *) Instr.Load (Instr.W8, 5, 4, 0);
          (* 5 *) Instr.Bini (Instr.And, 5, 5, 0);
          (* 6 *) Instr.Bini (Instr.Add, 5, 5, 8);
          (* r5 = 8, tainted *)
          (* 7 *) Instr.Jr 5;
          (* 8 *) Instr.Li (6, 1); (* within scope ttl *)
          (* 9 *) Instr.Li (7, 2); (* within scope ttl *)
          (* 10 *) Instr.Li (8, 3); (* beyond ttl *)
          (* 11 *) Instr.Li (9, 600);
          (* 12 *) Instr.Store (Instr.W8, 6, 9, 0);
          (* 13 *) Instr.Store (Instr.W8, 8, 9, 1);
          (* 14 *) Instr.Halt;
        ])
  in
  Alcotest.(check bool) "write just after tainted jr is tainted" true
    (List.exists (Tag.equal (net 1)) (tags_at engine 600));
  Alcotest.(check (list string)) "write beyond ttl is clean" []
    (List.map Tag.to_string (tags_at engine 601))

(* -- sources / sinks ------------------------------------------------------- *)

let test_source_union_and_detection () =
  let engine =
    build_and_run ~policy:Policies.faros
      (taint_prologue
      @ [ Instr.Li (1, 100); Instr.Li (2, 1); Instr.Syscall 2; Instr.Halt ])
  in
  let tags = tags_at engine 100 in
  Alcotest.(check int) "net + export" 2 (List.length tags);
  Alcotest.(check int) "detection query" 4
    (Metrics.detection_bytes (Engine.shadow engine))

let test_source_clear () =
  let engine =
    build_and_run ~policy:Policies.faros
      (taint_prologue
      @ [ Instr.Li (1, 100); Instr.Syscall 9; Instr.Halt ])
  in
  Alcotest.(check (list string)) "untainted source clears" []
    (List.map Tag.to_string (tags_at engine 100))

let test_sink_counts_tainted_bytes () =
  let engine =
    build_and_run ~policy:Policies.faros
      (taint_prologue
      @ [ Instr.Li (1, 100); Instr.Syscall 3; Instr.Li (1, 200);
          Instr.Syscall 3; Instr.Halt ])
  in
  Alcotest.(check int) "4 tainted bytes crossed the sink" 4
    (Engine.counters engine).Engine.sink_tainted_bytes

let test_confluence_alerts () =
  let prog =
    Program.make
      (Array.of_list
         (taint_prologue
         @ [ Instr.Li (1, 100); Instr.Li (2, 1); Instr.Syscall 2; Instr.Halt ]))
  in
  let machine = Machine.create ~mem_size:4096 ~syscall:test_syscall prog in
  let engine = Engine.create ~policy:Policies.faros ~source_tag prog in
  Engine.watch_confluence engine Tag_type.Network Tag_type.Export_table;
  Engine.attach engine machine;
  ignore (Engine.run engine);
  let alerts = Engine.alerts engine in
  Alcotest.(check int) "one alert per byte" 4 (List.length alerts);
  (match Engine.first_alert_step engine with
  | Some step ->
    (* the export mark happens at the Syscall 2 instruction: step 5 *)
    Alcotest.(check int) "detection step" 5 step
  | None -> Alcotest.fail "expected an alert");
  (match alerts with
  | a :: _ ->
    Alcotest.(check int) "alert address" 100 a.Engine.alert_addr
  | [] -> ());
  (* alerts deduplicate: no engine output change on re-query *)
  Alcotest.(check int) "stable" 4 (List.length (Engine.alerts engine))

let test_confluence_no_false_alert () =
  let engine =
    build_and_run ~policy:Policies.faros
      (taint_prologue @ [ Instr.Halt ])
  in
  Alcotest.(check (list string)) "no watch, no alerts" []
    (List.map
       (fun a -> string_of_int a.Engine.alert_addr)
       (Engine.alerts engine))

let test_sink_profile () =
  let engine =
    build_and_run ~policy:Policies.faros
      ([
         Instr.Li (1, 100); Instr.Li (2, 1); Instr.Syscall 1;
         Instr.Li (1, 104); Instr.Li (2, 2); Instr.Syscall 1;
       ]
      @ [ (* send 8 bytes spanning both taint regions through sink 1 *)
          Instr.Li (1, 100); Instr.Syscall 3;
          Instr.Li (1, 104); Instr.Syscall 3;
          Instr.Halt ])
  in
  match Engine.sink_profile engine with
  | [ (1, attribution) ] ->
    Alcotest.(check (list (pair string int))) "per-tag attribution"
      [ ("network#1", 4); ("network#2", 4) ]
      (List.map (fun (tag, n) -> (Tag.to_string tag, n)) attribution)
  | other ->
    Alcotest.failf "expected one sink, got %d" (List.length other)

let test_taint_map_rendering () =
  let shadow =
    Shadow.create ~mem_capacity:1024 ~num_regs:4 ~m_prov:4 ()
  in
  (* taint half of one 16-byte bucket fully, plus a detection byte *)
  for a = 0 to 15 do
    Shadow.set_addr_tags shadow a [ net 1 ]
  done;
  Shadow.set_addr_tags shadow 512 [ net 1 ];
  Shadow.union_into_addr shadow 512 [ exp_tag 1 ];
  let map =
    Taint_map.render ~width:16 ~bytes_per_cell:16
      ~highlight:(Tag_type.Network, Tag_type.Export_table)
      ~base:0 ~len:1024 shadow
  in
  let lines = String.split_on_char '\n' (String.trim map) in
  Alcotest.(check int) "4 rows of 16x16-byte buckets" 4 (List.length lines);
  Alcotest.(check bool) "full bucket renders #" true
    (String.contains (List.nth lines 0) '#');
  Alcotest.(check bool) "detection bucket renders !" true
    (String.contains (List.nth lines 2) '!');
  Alcotest.(check string) "empty map" ""
    (Taint_map.render ~base:0 ~len:0 shadow)

let test_taint_map_regions () =
  let shadow =
    Shadow.create ~mem_capacity:1024 ~num_regs:4 ~m_prov:4 ()
  in
  Shadow.set_addr_tags shadow 100 [ net 1 ];
  let out =
    Taint_map.render_regions
      [ ("dirty", 0, 256); ("clean", 256, 256) ]
      shadow
  in
  let has needle =
    let n = String.length needle and h = String.length out in
    let rec go i = i + n <= h && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "dirty region expanded" true (has "dirty");
  Alcotest.(check bool) "clean region summarized" true (has "clean [0x100..0x200): clean")

(* -- policies ---------------------------------------------------------------- *)

let req ~kind ~candidates ~space =
  {
    Policy.kind;
    candidates;
    space;
    width = 1;
    stats = Tag_stats.create ();
    step = 0;
  }

let test_policy_basics () =
  let candidates = [ net 1; net 2 ] in
  Alcotest.(check int) "faros direct" 2
    (List.length
       (Policy.select Policies.faros
          (req ~kind:Policy.Direct_copy ~candidates ~space:4)));
  Alcotest.(check int) "faros indirect" 0
    (List.length
       (Policy.select Policies.faros (req ~kind:Policy.Addr ~candidates ~space:4)));
  Alcotest.(check int) "block_all" 0
    (List.length
       (Policy.select Policies.block_all
          (req ~kind:Policy.Direct_copy ~candidates ~space:4)));
  Alcotest.(check int) "propagate_all" 2
    (List.length
       (Policy.select Policies.propagate_all
          (req ~kind:Policy.Ctrl ~candidates ~space:4)))

let test_policy_probabilistic_extremes () =
  let candidates = [ net 1; net 2; net 3 ] in
  let p0 = Policies.probabilistic ~seed:1 ~p:0.0 in
  let p1 = Policies.probabilistic ~seed:1 ~p:1.0 in
  Alcotest.(check int) "p=0 blocks indirect" 0
    (List.length (Policy.select p0 (req ~kind:Policy.Addr ~candidates ~space:4)));
  Alcotest.(check int) "p=1 propagates" 3
    (List.length (Policy.select p1 (req ~kind:Policy.Addr ~candidates ~space:4)));
  Alcotest.(check int) "direct unaffected" 3
    (List.length (Policy.select p0 (req ~kind:Policy.Direct_copy ~candidates ~space:4)))

let test_policy_threshold () =
  let stats = Tag_stats.create () in
  for _ = 1 to 5 do Tag_stats.incr stats (net 1) done;
  let pol = Policies.pollution_threshold ~limit:3 in
  let request = { (req ~kind:Policy.Addr ~candidates:[ net 2 ] ~space:4) with stats } in
  Alcotest.(check int) "above limit blocks" 0
    (List.length (Policy.select pol request))

let test_policy_mitos_flags () =
  let params =
    Mitos.Params.make ~tau:0.0 ~total_tag_space:1000 ~mem_capacity:100 ()
  in
  let observations = ref 0 in
  let pol = Policies.mitos ~observe:(fun _ -> incr observations) params in
  let candidates = [ net 1; net 2 ] in
  Alcotest.(check int) "tau=0 propagates all indirect" 2
    (List.length (Policy.select pol (req ~kind:Policy.Addr ~candidates ~space:4)));
  Alcotest.(check int) "observer saw both" 2 !observations;
  (* direct flows bypass Alg. 2 unless handle_direct *)
  Alcotest.(check int) "direct bypass" 2
    (List.length
       (Policy.select pol (req ~kind:Policy.Direct_copy ~candidates ~space:4)));
  Alcotest.(check int) "observer not called for direct bypass" 2 !observations;
  let pol_all = Policies.mitos ~handle_direct:true params in
  Alcotest.(check int) "handle_direct routes direct" 2
    (List.length
       (Policy.select pol_all (req ~kind:Policy.Direct_copy ~candidates ~space:4)))

let test_confluence_boost_policy () =
  let params =
    Mitos.Params.make ~alpha:2.0 ~tau:1.0 ~tau_scale:1.0
      ~total_tag_space:10_000 ~mem_capacity:1_000 ()
  in
  let pol =
    Policies.with_confluence_boost ~factor:1000.0
      ~pairs:[ (Tag_type.Network, Tag_type.Export_table) ]
      params
  in
  (* heavy pollution: plain candidates get blocked *)
  let stats = Tag_stats.create () in
  (* boosted under-marginal 1000/10^2 = 10 beats the over-marginal
     (~0.8); unboosted 1/10^2 = 0.01 does not *)
  for _ = 1 to 10 do Tag_stats.incr stats (net 1) done;
  for _ = 1 to 10 do Tag_stats.incr stats (exp_tag 1) done;
  for _ = 1 to 4000 do Tag_stats.incr stats (net 9) done;
  let request candidates =
    { (req ~kind:Policy.Addr ~candidates ~space:8) with stats }
  in
  Alcotest.(check int) "lone netflow tag blocked" 0
    (List.length (Policy.select pol (request [ net 1 ])));
  Alcotest.(check int) "suspicious pair boosted through" 2
    (List.length (Policy.select pol (request [ net 1; exp_tag 1 ])));
  Alcotest.(check int) "direct flows unconditional" 1
    (List.length
       (Policy.select pol
          { (req ~kind:Policy.Direct_copy ~candidates:[ net 9 ] ~space:8) with
            stats }))

let test_combinators () =
  let candidates = [ net 1; net 2; Tag.make Tag_type.File 1 ] in
  let request = req ~kind:Policy.Addr ~candidates ~space:8 in
  let never = Policies.block_all in
  let always = Policies.propagate_all in
  (* intersect *)
  Alcotest.(check int) "always && never = never" 0
    (List.length (Policy.select (Combinators.intersect "x" always never) request));
  Alcotest.(check int) "always && always = always" 3
    (List.length (Policy.select (Combinators.intersect "x" always always) request));
  (* union *)
  Alcotest.(check int) "never || always = always" 3
    (List.length (Policy.select (Combinators.union "x" never always) request));
  Alcotest.(check int) "no duplicates in union" 3
    (List.length (Policy.select (Combinators.union "x" always always) request));
  (* per_type: network blocked, everything else allowed *)
  let pt =
    Combinators.per_type ~default:always [ (Tag_type.Network, never) ]
  in
  (match Policy.select pt request with
  | [ tag ] ->
    Alcotest.(check bool) "only the file tag survives" true
      (Tag_type.equal (Tag.ty tag) Tag_type.File)
  | l -> Alcotest.failf "expected 1 tag, got %d" (List.length l));
  (* per_type honours space *)
  let tight = { request with Policy.space = 1 } in
  Alcotest.(check int) "space bound" 1
    (List.length (Policy.select (Combinators.per_type ~default:always []) tight));
  (* cap_per_flow *)
  Alcotest.(check int) "cap 2" 2
    (List.length (Policy.select (Combinators.cap_per_flow 2 always) request));
  (* logging *)
  let seen = ref 0 in
  let logged =
    Combinators.logging (fun _ chosen -> seen := List.length chosen) always
  in
  Alcotest.(check int) "passthrough" 3 (List.length (Policy.select logged request));
  Alcotest.(check int) "callback saw selection" 3 !seen

let test_combinator_stack_on_workload () =
  (* MITOS restricted by a Minos width rail, with a per-flow cap:
     the stack runs end-to-end and stays within the endpoints *)
  let params = Mitos_experiments.Calib.sensitivity_params ~tau:0.01 () in
  let stack =
    Combinators.cap_per_flow 4
      (Combinators.intersect "mitos&&minos" (Policies.mitos params)
         Policies.minos_width)
  in
  let b = Mitos_workload.Crypto.build ~input_len:256 ~seed:5 () in
  let e = Mitos_workload.Workload.run_live ~policy:stack b in
  let b2 = Mitos_workload.Crypto.build ~input_len:256 ~seed:5 () in
  let minos_only = Mitos_workload.Workload.run_live ~policy:Policies.minos_width b2 in
  Alcotest.(check bool) "stack propagates at most what the rail allows" true
    ((Engine.counters e).Engine.ifp_propagated
    <= (Engine.counters minos_only).Engine.ifp_propagated)

let test_litmus_profiles () =
  let conforms name ~direct ~addr ~ctrl policy =
    match Litmus.check ~direct ~addr ~ctrl policy with
    | [] -> ()
    | failures ->
      Alcotest.failf "%s: %d litmus mismatches (first: %s expected %b got %b)"
        name (List.length failures)
        (match failures with
        | (c, _, _) :: _ -> c.Litmus.case_name
        | [] -> "?")
        (match failures with (_, e, _) :: _ -> e | [] -> false)
        (match failures with (_, _, g) :: _ -> g | [] -> false)
  in
  conforms "faros" ~direct:true ~addr:false ~ctrl:false Policies.faros;
  conforms "propagate-all" ~direct:true ~addr:true ~ctrl:true
    Policies.propagate_all;
  conforms "block-all" ~direct:false ~addr:false ~ctrl:false Policies.block_all;
  conforms "minos (byte accesses)" ~direct:true ~addr:true ~ctrl:false
    Policies.minos_width;
  let tau0 =
    Policies.mitos
      (Mitos.Params.make ~tau:0.0 ~total_tag_space:1000 ~mem_capacity:100 ())
  in
  conforms "mitos tau=0" ~direct:true ~addr:true ~ctrl:true tau0

let test_litmus_detects_misdeclared_profile () =
  (* declaring that faros propagates address deps must fail *)
  Alcotest.(check bool) "mismatches reported" true
    (List.length (Litmus.check ~direct:true ~addr:true ~ctrl:false Policies.faros)
    > 0);
  Alcotest.(check int) "suite covers all cases"
    (List.length Litmus.cases)
    (List.length (Litmus.run Policies.faros))

let qcheck_combinator_laws =
  QCheck.Test.make ~name:"intersect subset / union superset" ~count:100
    QCheck.(
      make
        Gen.(
          pair (int_range 0 3)
            (list_size (1 -- 6) (pair (int_range 0 2) (int_range 1 50)))))
    (fun (kind_i, raw) ->
      let kind =
        List.nth [ Policy.Addr; Policy.Ctrl; Policy.Direct_copy; Policy.Ijump ]
          kind_i
      in
      let candidates =
        List.map
          (fun (ty_i, id) ->
            Tag.make (Tag_type.of_int ty_i) id)
          raw
        |> List.sort_uniq Tag.compare
      in
      let request = req ~kind ~candidates ~space:8 in
      let a = Policies.minos_width and b = Policies.probabilistic ~seed:3 ~p:0.5 in
      let sa = Policy.select a request in
      let inter =
        Policy.select (Combinators.intersect "i" a b) request
      in
      let uni = Policy.select (Combinators.union "u" a b) request in
      let subset xs ys = List.for_all (fun x -> List.exists (Tag.equal x) ys) xs in
      (* note: b is stateful (PRNG) so only laws against a are stable *)
      subset inter sa && subset sa uni
      && List.length (List.sort_uniq Tag.compare uni) = List.length uni)

(* -- replay equivalence ------------------------------------------------------- *)

let test_replay_equals_live () =
  let prog = Program.make (Array.of_list addr_dep_program) in
  let live_machine = Machine.create ~mem_size:4096 ~syscall:test_syscall prog in
  let live = Engine.create ~policy:Policies.propagate_all ~source_tag prog in
  Engine.attach live live_machine;
  ignore (Engine.run live);
  (* record the same program, then replay through a fresh engine *)
  let rec_machine = Machine.create ~mem_size:4096 ~syscall:test_syscall prog in
  let records = ref [] in
  ignore (Machine.run rec_machine (fun r -> records := r :: !records));
  let replayed = Engine.create ~policy:Policies.propagate_all ~source_tag prog in
  Engine.attach_shadow replayed ~mem_size:4096;
  List.iter (Engine.process_record replayed) (List.rev !records);
  let s1 = Metrics.of_engine live and s2 = Metrics.of_engine replayed in
  Alcotest.(check int) "same copies" s1.Metrics.total_copies s2.Metrics.total_copies;
  Alcotest.(check int) "same tainted" s1.Metrics.tainted_bytes s2.Metrics.tainted_bytes;
  Alcotest.(check int) "same ops" s1.Metrics.shadow_ops s2.Metrics.shadow_ops;
  Alcotest.(check int) "same ifp" s1.Metrics.ifp_propagated s2.Metrics.ifp_propagated

(* -- metrics ---------------------------------------------------------------------- *)

let test_metrics_summary () =
  let engine = build_and_run ~policy:Policies.propagate_all addr_dep_program in
  let s = Metrics.of_engine engine in
  Alcotest.(check string) "policy name" "propagate-all" s.Metrics.policy;
  Alcotest.(check bool) "steps counted" true (s.Metrics.steps > 0);
  Alcotest.(check (float 1e-9)) "all propagated" 1.0 (Metrics.propagation_rate s);
  Alcotest.(check int) "row arity matches header"
    (List.length Metrics.header)
    (List.length (Metrics.row s))

let test_counters_consistency () =
  let engine = build_and_run ~policy:Policies.propagate_all ctrl_dep_program in
  let c = Engine.counters engine in
  Alcotest.(check int) "per-type sums match totals"
    (c.Engine.ifp_propagated + c.Engine.ifp_blocked)
    (Array.fold_left ( + ) 0 c.Engine.per_type_propagated
    + Array.fold_left ( + ) 0 c.Engine.per_type_blocked)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "mitos_dift"
    [
      ( "direct",
        [
          Alcotest.test_case "copy chain" `Quick test_direct_copy_chain;
          Alcotest.test_case "overwrite clears" `Quick test_untainted_overwrite_clears;
          Alcotest.test_case "compute unions" `Quick test_compute_unions_tags;
        ] );
      ( "addr-dep",
        [
          Alcotest.test_case "faros drops" `Quick test_addr_dep_faros_drops;
          Alcotest.test_case "propagate-all keeps" `Quick test_addr_dep_propagate_all_keeps;
          Alcotest.test_case "minos width" `Quick test_minos_width_heuristic;
        ] );
      ( "ctrl-dep",
        [
          Alcotest.test_case "scope" `Quick test_ctrl_dep_scope;
          Alcotest.test_case "disabled" `Quick test_ctrl_dep_disabled;
          Alcotest.test_case "clean branch" `Quick test_untainted_branch_opens_no_scope;
          Alcotest.test_case "ijump ttl" `Quick test_ijump_scope_expires;
        ] );
      ( "sources",
        [
          Alcotest.test_case "union + detection" `Quick test_source_union_and_detection;
          Alcotest.test_case "clear" `Quick test_source_clear;
          Alcotest.test_case "sink" `Quick test_sink_counts_tainted_bytes;
        ] );
      ( "forensics",
        [
          Alcotest.test_case "confluence alerts" `Quick test_confluence_alerts;
          Alcotest.test_case "no false alerts" `Quick test_confluence_no_false_alert;
          Alcotest.test_case "sink profile" `Quick test_sink_profile;
          Alcotest.test_case "taint map" `Quick test_taint_map_rendering;
          Alcotest.test_case "taint map regions" `Quick test_taint_map_regions;
        ] );
      ( "policies",
        [
          Alcotest.test_case "basics" `Quick test_policy_basics;
          Alcotest.test_case "probabilistic" `Quick test_policy_probabilistic_extremes;
          Alcotest.test_case "threshold" `Quick test_policy_threshold;
          Alcotest.test_case "mitos flags" `Quick test_policy_mitos_flags;
          Alcotest.test_case "confluence boost" `Quick test_confluence_boost_policy;
          Alcotest.test_case "combinators" `Quick test_combinators;
          Alcotest.test_case "combinator stack on workload" `Quick
            test_combinator_stack_on_workload;
          q qcheck_combinator_laws;
        ] );
      ( "litmus",
        [
          Alcotest.test_case "standard profiles conform" `Quick
            test_litmus_profiles;
          Alcotest.test_case "misdeclared profile caught" `Quick
            test_litmus_detects_misdeclared_profile;
        ] );
      ( "replay",
        [ Alcotest.test_case "replay equals live" `Quick test_replay_equals_live ] );
      ( "metrics",
        [
          Alcotest.test_case "summary" `Quick test_metrics_summary;
          Alcotest.test_case "counters consistency" `Quick test_counters_consistency;
        ] );
    ]
