open Mitos_isa
open Mitos_tag
module Os = Mitos_system.Os
module Layout = Mitos_system.Layout
module Engine = Mitos_dift.Engine

(* -- Layout ------------------------------------------------------------- *)

let test_layout_regions () =
  Alcotest.(check string) "stack" "stack" (Layout.region_of 0x100);
  Alcotest.(check string) "process" "process" (Layout.region_of 0x11000);
  Alcotest.(check string) "kernel" "kernel-export" (Layout.region_of 0x41000);
  Alcotest.(check string) "heap" "heap" (Layout.region_of 0x60000);
  Alcotest.(check string) "oob" "out-of-range" (Layout.region_of (-1));
  Alcotest.(check bool) "in kernel" true (Layout.in_kernel_export 0x40000);
  Alcotest.(check bool) "below kernel" false (Layout.in_kernel_export 0x3FFFF);
  Alcotest.(check bool) "regions cover memory" true
    (Layout.stack_size + Layout.process_size + Layout.kernel_export_size
     + Layout.heap_size
    = Layout.mem_size)

(* -- helpers -------------------------------------------------------------- *)

let run_with_os os instrs =
  let prog = Program.make (Array.of_list instrs) in
  let m = Machine.create ~mem_size:Layout.mem_size ~syscall:(Os.handler os) prog in
  let records = ref [] in
  ignore (Machine.run m (fun r -> records := r :: !records));
  (m, List.rev !records)

let sys3 sysno a b c =
  [ Instr.Li (1, a); Instr.Li (2, b); Instr.Li (3, c); Instr.Syscall sysno ]

(* -- connections ----------------------------------------------------------- *)

let test_net_read_payload () =
  let os = Os.create ~seed:1 () in
  let conn = Os.open_connection_with os "HELLO" in
  let m, _ =
    run_with_os os (sys3 Os.sys_net_read (Os.conn_id conn) 0x60000 16 @ [ Instr.Halt ])
  in
  Alcotest.(check int) "r1 = bytes read" 5 (Machine.get_reg m 1);
  Alcotest.(check string) "payload delivered" "HELLO"
    (Bytes.to_string (Machine.read_bytes m 0x60000 5));
  Alcotest.(check int) "delivered counter" 5 (Os.conn_bytes_delivered conn);
  Alcotest.(check int) "os accounting" 5 (Os.bytes_from_network os)

let test_net_read_eof () =
  let os = Os.create ~seed:1 () in
  let conn = Os.open_connection_with os "AB" in
  let m, _ =
    run_with_os os
      (sys3 Os.sys_net_read (Os.conn_id conn) 0x60000 10
      @ sys3 Os.sys_net_read (Os.conn_id conn) 0x60000 10
      @ [ Instr.Halt ])
  in
  Alcotest.(check int) "second read returns 0" 0 (Machine.get_reg m 1)

let test_net_read_stream_deterministic () =
  let read_stream seed =
    let os = Os.create ~seed () in
    let conn = Os.open_connection ~available:64 os in
    let m, _ =
      run_with_os os
        (sys3 Os.sys_net_read (Os.conn_id conn) 0x60000 64 @ [ Instr.Halt ])
    in
    Bytes.to_string (Machine.read_bytes m 0x60000 64)
  in
  Alcotest.(check string) "same seed same stream" (read_stream 5) (read_stream 5);
  Alcotest.(check bool) "different seed differs" true
    (read_stream 5 <> read_stream 6)

let test_source_actions () =
  let os = Os.create ~seed:1 () in
  let conn = Os.open_connection_with os "XY" in
  let _, records =
    run_with_os os
      (sys3 Os.sys_net_read (Os.conn_id conn) 0x60000 2 @ [ Instr.Halt ])
  in
  let sources =
    List.concat_map
      (fun (r : Machine.exec_record) ->
        List.filter_map
          (function
            | Machine.Sys_wrote_mem { source; _ } -> Some source
            | _ -> None)
          r.Machine.sys_effects)
      records
  in
  match sources with
  | [ source ] -> (
    match Os.source_tag os ~source with
    | Engine.Taint (tag, `Replace) ->
      Alcotest.(check bool) "network tag" true
        (Tag_type.equal (Tag.ty tag) Tag_type.Network);
      Alcotest.(check bool) "matches conn tag" true
        (Tag.equal tag (Os.conn_tag conn))
    | _ -> Alcotest.fail "expected replace-taint action")
  | _ -> Alcotest.fail "expected exactly one source effect"

let test_tag_per_read_mints_fresh_tags () =
  let os = Os.create ~seed:1 () in
  let conn = Os.open_connection ~available:100 ~tag_per_read:true os in
  let _, records =
    run_with_os os
      (sys3 Os.sys_net_read (Os.conn_id conn) 0x60000 10
      @ sys3 Os.sys_net_read (Os.conn_id conn) 0x60000 10
      @ [ Instr.Halt ])
  in
  let tags =
    List.concat_map
      (fun (r : Machine.exec_record) ->
        List.filter_map
          (function
            | Machine.Sys_wrote_mem { source; _ } -> (
              match Os.source_tag os ~source with
              | Engine.Taint (tag, _) -> Some tag
              | Engine.Clear | Engine.Copy_within _ | Engine.Restore _ ->
                None)
            | _ -> None)
          r.Machine.sys_effects)
      records
  in
  match tags with
  | [ a; b ] ->
    Alcotest.(check bool) "distinct tags per read" false (Tag.equal a b)
  | _ -> Alcotest.fail "expected two source effects"

let test_unknown_conn_faults () =
  let os = Os.create ~seed:1 () in
  Alcotest.(check bool) "unknown conn" true
    (try ignore (run_with_os os (sys3 Os.sys_net_read 99 0x60000 4)); false
     with Machine.Fault _ -> true)

(* -- files ------------------------------------------------------------------ *)

let test_file_read_write_roundtrip () =
  let os = Os.create ~seed:1 () in
  let f = Os.create_file os "initial" in
  let m, _ =
    run_with_os os
      (sys3 Os.sys_file_read (Os.file_id f) 0x60000 7
      @ [ (* spill the read length before r1 is clobbered, then
             overwrite memory and write it back to the file *)
          Instr.Li (5, 0x62000); Instr.Store (Instr.W32, 1, 5, 0);
          Instr.Li (4, 0x21); Instr.Li (5, 0x60000);
          Instr.Store (Instr.W8, 4, 5, 0) ]
      @ sys3 Os.sys_file_write (Os.file_id f) 0x60000 7
      @ [ Instr.Halt ])
  in
  Alcotest.(check int) "read length" 7 (Machine.read_word m 0x62000);
  Alcotest.(check string) "content updated" "!nitial" (Os.file_content os f);
  Alcotest.(check int) "file accounting" 7 (Os.bytes_from_files os)

(* -- processes ----------------------------------------------------------------- *)

let test_proc_read () =
  let os = Os.create ~seed:1 () in
  let victim = Os.spawn_process os ~base:0x10000 ~size:16 in
  let m, _ =
    run_with_os os
      ([ Instr.Li (4, 0x5A); Instr.Li (5, 0x10000);
         Instr.Store (Instr.W8, 4, 5, 0) ]
      @ sys3 Os.sys_proc_read (Os.proc_id victim) 0x60000 16
      @ [ Instr.Halt ])
  in
  Alcotest.(check int) "copied bytes" 16 (Machine.get_reg m 1);
  Alcotest.(check int) "content copied" 0x5A (Machine.read_byte m 0x60000);
  Alcotest.(check bool) "process tag type" true
    (Tag_type.equal (Tag.ty (Os.proc_tag victim)) Tag_type.Process);
  (* the registered source action carries provenance from the process's
     region and appends its tag (Fig. 2 accumulation) *)
  (match Os.source_tag os ~source:0 with
  | Engine.Clear -> ()
  | _ -> Alcotest.fail "source 0 must be Clear")

let test_proc_write_remote_injection () =
  (* taint a staging buffer via the network, then proc_write it into a
     victim: provenance must travel and gain the victim's tag *)
  let os = Os.create ~seed:1 () in
  let conn = Os.open_connection_with os "PAYLOAD!" in
  let victim = Os.spawn_process os ~base:0x10000 ~size:8 in
  let prog =
    Program.make
      (Array.of_list
         (sys3 Os.sys_net_read (Os.conn_id conn) 0x60000 8
         @ sys3 Os.sys_proc_write (Os.proc_id victim) 0x60000 8
         @ [ Instr.Halt ]))
  in
  let m = Machine.create ~mem_size:Layout.mem_size ~syscall:(Os.handler os) prog in
  let engine =
    Mitos_dift.Engine.create ~policy:Mitos_dift.Policies.faros
      ~source_tag:(Os.source_tag os) prog
  in
  Mitos_dift.Engine.attach engine m;
  ignore (Mitos_dift.Engine.run engine);
  Alcotest.(check string) "payload landed" "PAYLOAD!"
    (Bytes.to_string (Machine.read_bytes m 0x10000 8));
  let types =
    List.map
      (fun tag -> Tag_type.to_string (Tag.ty tag))
      (Shadow.tags_of_addr (Mitos_dift.Engine.shadow engine) 0x10000)
  in
  Alcotest.(check (list string)) "provenance travelled + process tag"
    [ "network"; "process" ] types

(* -- kernel / misc ---------------------------------------------------------------- *)

let test_kernel_mark_bounds () =
  let os = Os.create ~seed:1 () in
  ignore (run_with_os os
            (sys3 Os.sys_kernel_mark_export Layout.kernel_export_base 16 0
            @ [ Instr.Halt ]));
  Alcotest.(check bool) "outside kernel faults" true
    (try ignore (run_with_os os (sys3 Os.sys_kernel_mark_export 0x60000 16 0));
       false
     with Machine.Fault _ -> true)

let test_kernel_mark_fresh_export_tags () =
  let os = Os.create ~seed:1 () in
  let _, records =
    run_with_os os
      (sys3 Os.sys_kernel_mark_export Layout.kernel_export_base 8 0
      @ sys3 Os.sys_kernel_mark_export Layout.kernel_export_base 8 0
      @ [ Instr.Halt ])
  in
  let tags =
    List.concat_map
      (fun (r : Machine.exec_record) ->
        List.filter_map
          (function
            | Machine.Sys_wrote_mem { source; _ } -> (
              match Os.source_tag os ~source with
              | Engine.Taint (tag, `Union) -> Some tag
              | _ -> None)
            | _ -> None)
          r.Machine.sys_effects)
      records
  in
  match tags with
  | [ a; b ] ->
    Alcotest.(check bool) "export tags" true
      (Tag_type.equal (Tag.ty a) Tag_type.Export_table);
    Alcotest.(check bool) "differentiated per mark" false (Tag.equal a b)
  | _ -> Alcotest.fail "expected two union-taint effects"

let test_getrandom_and_sensor () =
  let os = Os.create ~seed:1 () in
  let m, records =
    run_with_os os
      (sys3 Os.sys_getrandom 0x60000 8 0
      @ sys3 Os.sys_sensor_read 0x61000 8 0
      @ [ Instr.Halt ])
  in
  Alcotest.(check int) "sensor r1" 8 (Machine.get_reg m 1);
  let actions =
    List.concat_map
      (fun (r : Machine.exec_record) ->
        List.filter_map
          (function
            | Machine.Sys_wrote_mem { source; _ } ->
              Some (Os.source_tag os ~source)
            | _ -> None)
          r.Machine.sys_effects)
      records
  in
  (match actions with
  | [ Engine.Clear; Engine.Taint (tag, `Replace) ] ->
    Alcotest.(check bool) "sensor tag" true
      (Tag_type.equal (Tag.ty tag) Tag_type.Sensor);
    Alcotest.(check bool) "matches os sensor tag" true
      (Tag.equal tag (Os.sensor_tag os))
  | _ -> Alcotest.fail "expected clear then sensor taint");
  Alcotest.(check bool) "unknown source resolves to Clear" true
    (Os.source_tag os ~source:424242 = Engine.Clear)

let test_os_introspection () =
  let os = Os.create ~seed:1 () in
  let c1 = Os.open_connection os in
  let _c2 = Os.open_connection os in
  let f = Os.create_file os "x" in
  let p = Os.spawn_process os ~base:0x10000 ~size:64 in
  Alcotest.(check int) "two connections" 2 (List.length (Os.connections os));
  (match Os.connections os with
  | (1, tag) :: _ ->
    Alcotest.(check bool) "tag matches" true (Tag.equal tag (Os.conn_tag c1))
  | _ -> Alcotest.fail "connection 1 missing");
  Alcotest.(check int) "one file" 1 (List.length (Os.files os));
  (match Os.processes os with
  | [ (pid, tag, base, size) ] ->
    Alcotest.(check int) "pid" (Os.proc_id p) pid;
    Alcotest.(check bool) "proc tag" true (Tag.equal tag (Os.proc_tag p));
    Alcotest.(check int) "base" 0x10000 base;
    Alcotest.(check int) "size" 64 size
  | _ -> Alcotest.fail "expected one process");
  ignore f;
  Alcotest.(check string) "syscall name" "net_read"
    (Os.syscall_name Os.sys_net_read);
  Alcotest.(check string) "unknown syscall name" "unknown"
    (Os.syscall_name 999)

let test_exit_halts () =
  let os = Os.create ~seed:1 () in
  let m, _ =
    run_with_os os
      (sys3 Os.sys_exit 0 0 0 @ [ Instr.Li (4, 9); Instr.Halt ])
  in
  Alcotest.(check bool) "halted" true (Machine.halted m);
  Alcotest.(check int) "li never ran" 0 (Machine.get_reg m 4)

let () =
  Alcotest.run "mitos_system"
    [
      ("layout", [ Alcotest.test_case "regions" `Quick test_layout_regions ]);
      ( "network",
        [
          Alcotest.test_case "payload read" `Quick test_net_read_payload;
          Alcotest.test_case "eof" `Quick test_net_read_eof;
          Alcotest.test_case "deterministic stream" `Quick test_net_read_stream_deterministic;
          Alcotest.test_case "source actions" `Quick test_source_actions;
          Alcotest.test_case "tag per read" `Quick test_tag_per_read_mints_fresh_tags;
          Alcotest.test_case "unknown conn" `Quick test_unknown_conn_faults;
        ] );
      ( "files",
        [ Alcotest.test_case "read/write roundtrip" `Quick test_file_read_write_roundtrip ] );
      ( "processes",
        [
          Alcotest.test_case "proc_read" `Quick test_proc_read;
          Alcotest.test_case "proc_write remote injection" `Quick
            test_proc_write_remote_injection;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "mark bounds" `Quick test_kernel_mark_bounds;
          Alcotest.test_case "fresh export tags" `Quick test_kernel_mark_fresh_export_tags;
        ] );
      ( "misc",
        [
          Alcotest.test_case "getrandom/sensor" `Quick test_getrandom_and_sensor;
          Alcotest.test_case "introspection" `Quick test_os_introspection;
          Alcotest.test_case "exit" `Quick test_exit_halts;
        ] );
    ]
