(* Randomized integration testing of the whole DIFT stack.

   Programs are generated from safe templates (memory operands are
   masked into a 4 KiB window, branch targets are always valid, the
   program always terminates via a fuel counter), seeded with taint by
   a syscall prologue, and run under several policies. Checked on
   every run:

   - the machine and engine never crash;
   - the copy-count accounting is exact (recount equals Tag_stats);
   - tainted-byte sets are monotone across policies
     (faros subset of propagate-all);
   - record/replay of the same program is bit-identical in effect. *)

open Mitos_isa
open Mitos_tag
open Mitos_dift
module Rng = Mitos_util.Rng

let mem_mask = 0xFFF (* all accesses within [0, 4096) *)
let num_fuzz_programs = 60

(* syscall 1: taint 16 bytes at r1 with network#r2 *)
let source_tag ~source =
  if source = 0 then Engine.Clear
  else Engine.Taint (Tag.make Tag_type.Network source, `Replace)

let fuzz_syscall m ~sysno:_ =
  let addr = Machine.get_reg m 1 land mem_mask in
  let id = 1 + (Machine.get_reg m 2 land 7) in
  let addr = min addr (4096 - 16) in
  [ Machine.Sys_wrote_mem { addr; len = 16; source = id } ]

(* A random but safe instruction sequence. The fuel register r15
   bounds execution: every loop body decrements it and exits when it
   reaches zero. *)
let random_program rng =
  let cg = Mitos_workload.Codegen.create () in
  let a = Mitos_workload.Codegen.asm cg in
  let reg () = 4 + Rng.int rng 8 (* r4..r11; r12-r15 reserved *) in
  let mask_for_mem r =
    Asm.bini a Instr.And r r mem_mask;
    (* keep word accesses in bounds *)
    Asm.bini a Instr.And r r 0xFF8
  in
  (* taint prologue: a few source syscalls at random spots *)
  for _ = 1 to 1 + Rng.int rng 3 do
    Asm.li a 1 (Rng.int rng 4096);
    Asm.li a 2 (Rng.int rng 8);
    Asm.syscall a 1
  done;
  (* seed registers *)
  for r = 4 to 11 do
    Asm.li a r (Rng.int rng 4096)
  done;
  Asm.li a 15 (50 + Rng.int rng 200) (* fuel *);
  Asm.label a "top";
  let body_len = 3 + Rng.int rng 12 in
  for _ = 1 to body_len do
    match Rng.int rng 8 with
    | 0 ->
      let rd = reg () and rs = reg () in
      Asm.bin a
        (Rng.pick rng [| Instr.Add; Instr.Sub; Instr.Xor; Instr.And; Instr.Or |])
        rd rd rs
    | 1 -> Asm.bini a Instr.Add (reg ()) (reg ()) (Rng.int rng 64)
    | 2 ->
      let rb = reg () in
      mask_for_mem rb;
      Asm.loadb a (reg ()) rb 0
    | 3 ->
      let rb = reg () in
      mask_for_mem rb;
      Asm.storeb a (reg ()) rb 0
    | 4 ->
      let rb = reg () in
      mask_for_mem rb;
      Asm.emit a (Instr.Load (Instr.W32, reg (), rb, 0))
    | 5 ->
      let rb = reg () in
      mask_for_mem rb;
      Asm.emit a (Instr.Store (Instr.W32, reg (), rb, 0))
    | 6 ->
      (* a forward branch over one instruction: always well-formed *)
      let r1 = reg () and r2 = reg () in
      let skip = Mitos_workload.Codegen.fresh cg "skip" in
      Asm.branch a (Rng.pick rng [| Instr.Eq; Instr.Ltu; Instr.Ne |]) r1 r2 skip;
      Asm.bini a Instr.Xor (reg ()) (reg ()) 0x5A;
      Asm.label a skip
    | _ -> Asm.mov a (reg ()) (reg ())
  done;
  (* fuel loop back-edge *)
  Asm.bini a Instr.Sub 15 15 1;
  Asm.li a 14 0;
  Asm.branch a Instr.Ne 15 14 "top";
  Asm.halt a;
  Mitos_workload.Codegen.assemble cg

let machine_for prog = Machine.create ~mem_size:4096 ~syscall:fuzz_syscall prog

let run_policy prog policy =
  let engine = Engine.create ~policy ~source_tag prog in
  Engine.attach engine (machine_for prog);
  ignore (Engine.run ~max_steps:200_000 engine);
  engine

let recount_exact engine =
  let shadow = Engine.shadow engine in
  let recount = Tag_stats.create () in
  Shadow.iter_tainted shadow (fun _ tags -> List.iter (Tag_stats.incr recount) tags);
  for r = 0 to Shadow.num_regs shadow - 1 do
    List.iter (Tag_stats.incr recount) (Shadow.tags_of_reg shadow r)
  done;
  let stats = Engine.stats engine in
  Tag_stats.total recount = Tag_stats.total stats
  && Tag_stats.fold stats ~init:true ~f:(fun acc tag n ->
         acc && Tag_stats.count recount tag = n)

module ISet = Set.Make (Int)

let tainted_set engine =
  let acc = ref ISet.empty in
  Shadow.iter_tainted (Engine.shadow engine) (fun addr _ -> acc := ISet.add addr !acc);
  !acc

let test_fuzz_invariants () =
  let rng = Rng.create 20260704 in
  for i = 1 to num_fuzz_programs do
    let prog = random_program rng in
    let faros = run_policy prog Policies.faros in
    let all = run_policy prog Policies.propagate_all in
    let minos = run_policy prog Policies.minos_width in
    Alcotest.(check bool)
      (Printf.sprintf "program %d: faros counts exact" i)
      true (recount_exact faros);
    Alcotest.(check bool)
      (Printf.sprintf "program %d: propagate-all counts exact" i)
      true (recount_exact all);
    Alcotest.(check bool)
      (Printf.sprintf "program %d: minos counts exact" i)
      true (recount_exact minos);
    Alcotest.(check bool)
      (Printf.sprintf "program %d: faros subset of all" i)
      true
      (ISet.subset (tainted_set faros) (tainted_set all));
    Alcotest.(check bool)
      (Printf.sprintf "program %d: minos subset of all" i)
      true
      (ISet.subset (tainted_set minos) (tainted_set all))
  done

let test_fuzz_replay_determinism () =
  let rng = Rng.create 777 in
  for i = 1 to 15 do
    let prog = random_program rng in
    let record () =
      let m = machine_for prog in
      let records = ref [] in
      ignore (Machine.run ~max_steps:200_000 m (fun r -> records := r :: !records));
      List.rev !records
    in
    let r1 = record () and r2 = record () in
    Alcotest.(check bool)
      (Printf.sprintf "program %d: execution is deterministic" i)
      true (r1 = r2);
    (* replay through an engine matches the live engine *)
    let live = run_policy prog Policies.propagate_all in
    let replayed = Engine.create ~policy:Policies.propagate_all ~source_tag prog in
    Engine.attach_shadow replayed ~mem_size:4096;
    List.iter (Engine.process_record replayed) r1;
    Alcotest.(check int)
      (Printf.sprintf "program %d: replay = live (ops)" i)
      (Engine.counters live).Engine.shadow_ops
      (Engine.counters replayed).Engine.shadow_ops
  done

let test_fuzz_backends_and_checkpoints () =
  let rng = Rng.create 55001 in
  for i = 1 to 15 do
    let prog = random_program rng in
    let run backend =
      let config = { Engine.default_config with shadow_backend = backend } in
      let engine = Engine.create ~config ~policy:Policies.propagate_all ~source_tag prog in
      Engine.attach engine (machine_for prog);
      ignore (Engine.run ~max_steps:200_000 engine);
      engine
    in
    let hashed = run Shadow.Hashed and paged = run Shadow.Paged in
    Alcotest.(check int)
      (Printf.sprintf "program %d: backends agree on ops" i)
      (Engine.counters hashed).Engine.shadow_ops
      (Engine.counters paged).Engine.shadow_ops;
    Alcotest.(check bool)
      (Printf.sprintf "program %d: backends agree on state" i)
      true
      (Tag_stats.snapshot (Engine.stats hashed)
      = Tag_stats.snapshot (Engine.stats paged));
    (* checkpoint the final state and compare the restoration *)
    let restored = Shadow.of_string (Shadow.to_string (Engine.shadow hashed)) in
    Alcotest.(check bool)
      (Printf.sprintf "program %d: checkpoint faithful" i)
      true
      (Tag_stats.snapshot (Shadow.stats restored)
      = Tag_stats.snapshot (Engine.stats hashed))
  done

let test_fuzz_mitos_between_endpoints () =
  let params =
    Mitos.Params.make ~tau:0.5 ~tau_scale:100.0 ~total_tag_space:40_960
      ~mem_capacity:4_096 ()
  in
  let rng = Rng.create 31337 in
  for i = 1 to 20 do
    let prog = random_program rng in
    let faros = run_policy prog Policies.faros in
    let mitos = run_policy prog (Policies.mitos params) in
    let all = run_policy prog Policies.propagate_all in
    Alcotest.(check bool)
      (Printf.sprintf "program %d: mitos counts exact" i)
      true (recount_exact mitos);
    let f = ISet.cardinal (tainted_set faros)
    and m = ISet.cardinal (tainted_set mitos)
    and a = ISet.cardinal (tainted_set all) in
    Alcotest.(check bool)
      (Printf.sprintf "program %d: |faros| <= |mitos| <= |all| (%d/%d/%d)" i f m a)
      true
      (f <= m && m <= a)
  done

(* -- differential testing against an independent reference ------------- *)

(* A second, deliberately independent implementation of direct-flow
   taint tracking: it interprets execution records directly, with its
   own state representation (per-location tag sets), sharing no code
   with Extract/Shadow/Engine. Agreement on random programs is strong
   evidence both are right. *)
module Reference = struct
  module TSet = Set.Make (struct
    type t = Tag.t

    let compare = Tag.compare
  end)

  type t = { regs : TSet.t array; mem : (int, TSet.t) Hashtbl.t }

  let create () = { regs = Array.make 16 TSet.empty; mem = Hashtbl.create 64 }

  let mem_get t a =
    Option.value ~default:TSet.empty (Hashtbl.find_opt t.mem a)

  let mem_set t a s =
    if TSet.is_empty s then Hashtbl.remove t.mem a else Hashtbl.replace t.mem a s

  let step t (r : Machine.exec_record) =
    (match r.instr with
    | Instr.Li (rd, _) -> t.regs.(rd) <- TSet.empty
    | Instr.Mov (rd, rs) -> t.regs.(rd) <- t.regs.(rs)
    | Instr.Bin (_, rd, rs1, rs2) ->
      t.regs.(rd) <- TSet.union t.regs.(rs1) t.regs.(rs2)
    | Instr.Bini (_, rd, rs, _) -> t.regs.(rd) <- t.regs.(rs)
    | Instr.Load (_, rd, _, _) ->
      let addr, len = Option.get r.mem_read in
      let acc = ref TSet.empty in
      for a = addr to addr + len - 1 do
        acc := TSet.union !acc (mem_get t a)
      done;
      t.regs.(rd) <- !acc
    | Instr.Store (_, rs, _, _) ->
      let addr, len = Option.get r.mem_write in
      for a = addr to addr + len - 1 do
        mem_set t a t.regs.(rs)
      done
    | Instr.Branch _ | Instr.Jmp _ | Instr.Jr _ | Instr.Nop | Instr.Halt -> ()
    | Instr.Syscall _ -> ());
    (* syscall effects *)
    List.iter
      (function
        | Machine.Sys_wrote_mem { addr; len; source } ->
          let tags =
            match source_tag ~source with
            | Engine.Taint (tag, `Replace) -> Some (TSet.singleton tag)
            | Engine.Clear -> Some TSet.empty
            | _ -> None
          in
          (match tags with
          | Some s ->
            for a = addr to addr + len - 1 do
              mem_set t a s
            done
          | None -> ())
        | Machine.Sys_set_reg { reg } -> t.regs.(reg) <- TSet.empty
        | Machine.Sys_read_mem _ | Machine.Sys_snapshot_mem _
        | Machine.Sys_halt ->
          ())
      r.sys_effects

  let tainted_map t =
    Hashtbl.fold
      (fun a s acc -> (a, List.map Tag.to_string (TSet.elements s)) :: acc)
      t.mem []
    |> List.sort compare
end

let test_differential_reference_vs_engine () =
  let rng = Rng.create 424243 in
  for i = 1 to 40 do
    let prog = random_program rng in
    (* the engine under FAROS (direct flows only) *)
    let engine = run_policy prog Policies.faros in
    (* the reference interpreter over the recorded trace *)
    let m = machine_for prog in
    let reference = Reference.create () in
    ignore (Machine.run ~max_steps:200_000 m (Reference.step reference));
    let engine_map =
      let acc = ref [] in
      Shadow.iter_tainted (Engine.shadow engine) (fun a tags ->
          acc :=
            (a, List.sort compare (List.map Tag.to_string tags)) :: !acc);
      List.sort compare !acc
    in
    let reference_map =
      List.map
        (fun (a, tags) -> (a, List.sort compare tags))
        (Reference.tainted_map reference)
    in
    Alcotest.(check bool)
      (Printf.sprintf "program %d: engine = reference (%d tainted bytes)" i
         (List.length reference_map))
      true
      (engine_map = reference_map)
  done

let () =
  Alcotest.run "mitos_fuzz"
    [
      ( "fuzz",
        [
          Alcotest.test_case "accounting + monotonicity" `Slow test_fuzz_invariants;
          Alcotest.test_case "replay determinism" `Slow test_fuzz_replay_determinism;
          Alcotest.test_case "mitos between endpoints" `Slow
            test_fuzz_mitos_between_endpoints;
          Alcotest.test_case "backends + checkpoints" `Slow
            test_fuzz_backends_and_checkpoints;
          Alcotest.test_case "differential vs reference interpreter" `Slow
            test_differential_reference_vs_engine;
        ] );
    ]
