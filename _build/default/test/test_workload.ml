open Mitos_isa
open Mitos_tag
open Mitos_dift
module W = Mitos_workload
module Os = Mitos_system.Os
module Rng = Mitos_util.Rng

let run_machine b =
  let m = W.Workload.machine_of b in
  let steps = Machine.run m (fun _ -> ()) in
  (m, steps)

(* -- registry ------------------------------------------------------------ *)

let test_registry_names_unique () =
  let names = W.Registry.names in
  Alcotest.(check int) "no duplicates"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "6 attack variants included" true
    (List.length (List.filter (fun n -> String.length n > 7
                                        && String.sub n 0 7 = "attack-") names)
    = 6)

let test_registry_find () =
  let entry = W.Registry.find "netbench" in
  Alcotest.(check string) "name" "netbench" entry.W.Registry.name;
  Alcotest.(check bool) "unknown raises" true
    (try ignore (W.Registry.find "nope"); false with Not_found -> true)

let test_all_workloads_run_to_halt () =
  List.iter
    (fun name ->
      let b = W.Registry.build name ~seed:21 in
      let m = W.Workload.machine_of b in
      let steps = Machine.run ~max_steps:2_000_000 m (fun _ -> ()) in
      Alcotest.(check bool) (name ^ " halts") true (Machine.halted m);
      Alcotest.(check bool) (name ^ " does work") true (steps > 5))
    W.Registry.names

(* -- lookup table (Fig. 1) ------------------------------------------------- *)

let test_lookup_table_translation_correct () =
  let input = "Taint Me" in
  let b = W.Lookup_table.build ~input ~seed:4 () in
  let m, _ = run_machine b in
  let out = Bytes.to_string (Machine.read_bytes m W.Mem.buf_out (String.length input)) in
  let expected = String.map (fun c -> Char.chr (Char.code c lxor 0x20)) input in
  Alcotest.(check string) "table translation" expected out

let test_lookup_table_taint_contrast () =
  let count_out policy =
    let b = W.Lookup_table.build ~seed:4 () in
    let e = W.Workload.run_live ~policy b in
    let shadow = Engine.shadow e in
    let n = ref 0 in
    for a = W.Mem.buf_out to W.Mem.buf_out + String.length W.Lookup_table.default_input - 1 do
      if Shadow.is_tainted_addr shadow a then incr n
    done;
    !n
  in
  Alcotest.(check int) "faros loses all output taint" 0
    (count_out Policies.faros);
  Alcotest.(check int) "propagate-all keeps all"
    (String.length W.Lookup_table.default_input)
    (count_out Policies.propagate_all)

(* -- strings ----------------------------------------------------------------- *)

let test_strings_strlen_and_tolower () =
  let text = "Hello WORLD" in
  let b = W.Strings.build ~text ~seed:4 () in
  let m, _ = run_machine b in
  Alcotest.(check int) "strlen" (String.length text)
    (Machine.read_word m W.Mem.results);
  let out = Bytes.to_string (Machine.read_bytes m W.Mem.buf_out (String.length text)) in
  Alcotest.(check string) "tolower" (String.lowercase_ascii text) out;
  let copied = Bytes.to_string (Machine.read_bytes m W.Mem.buf_aux (String.length text)) in
  Alcotest.(check string) "strcpy" (String.lowercase_ascii text) copied

(* -- compress ------------------------------------------------------------------ *)

let test_compress_roundtrip () =
  let input_len = 512 in
  let b = W.Compress.build ~input_len ~seed:4 () in
  let m, _ = run_machine b in
  let original = Bytes.to_string (Machine.read_bytes m W.Mem.buf_in input_len) in
  let out_end = Machine.read_word m W.Mem.results in
  let compressed_len = out_end - W.Mem.buf_out in
  Alcotest.(check bool) "even pair encoding" true (compressed_len mod 2 = 0);
  (* decode the RLE stream and compare *)
  let buf = Buffer.create input_len in
  let pos = ref W.Mem.buf_out in
  while !pos < out_end do
    let count = Machine.read_byte m !pos in
    let byte = Machine.read_byte m (!pos + 1) in
    for _ = 1 to count do
      Buffer.add_char buf (Char.chr byte)
    done;
    pos := !pos + 2
  done;
  Alcotest.(check string) "RLE roundtrip" original (Buffer.contents buf);
  Alcotest.(check bool) "actually compresses runs" true
    (compressed_len < input_len)

(* -- crypto: independent RC4 model vs the machine -------------------------------- *)

let rc4_reference key input =
  let s = Array.init 256 Fun.id in
  let j = ref 0 in
  for i = 0 to 255 do
    j := (!j + s.(i) + Char.code key.[i land 7]) land 255;
    let tmp = s.(i) in
    s.(i) <- s.(!j);
    s.(!j) <- tmp
  done;
  let i = ref 0 and j = ref 0 in
  String.map
    (fun c ->
      i := (!i + 1) land 255;
      j := (!j + s.(!i)) land 255;
      let tmp = s.(!i) in
      s.(!i) <- s.(!j);
      s.(!j) <- tmp;
      let k = s.((s.(!i) + s.(!j)) land 255) in
      Char.chr (Char.code c lxor k))
    input

let test_crypto_matches_reference () =
  let input_len = 256 in
  let b = W.Crypto.build ~input_len ~seed:4 () in
  let m, _ = run_machine b in
  let key = Bytes.to_string (Machine.read_bytes m W.Mem.key 8) in
  let input = Bytes.to_string (Machine.read_bytes m W.Mem.buf_in input_len) in
  let out = Bytes.to_string (Machine.read_bytes m W.Mem.buf_out input_len) in
  Alcotest.(check string) "machine RC4 = reference RC4"
    (rc4_reference key input) out;
  Alcotest.(check bool) "ciphertext differs from plaintext" true (out <> input)

(* -- netbench --------------------------------------------------------------------- *)

let test_netbench_tag_population () =
  let b = W.Netbench.build ~seed:5 ~chunks:16 () in
  let e = W.Workload.run_live ~policy:Policies.propagate_all b in
  let stats = Engine.stats e in
  Alcotest.(check bool) "many per-read network tags" true
    (Tag_stats.distinct_of_type stats Tag_type.Network > 4);
  Alcotest.(check bool) "export tags exist" true
    (Tag_stats.distinct_of_type stats Tag_type.Export_table > 0);
  Alcotest.(check bool) "file tags exist" true
    (Tag_stats.distinct_of_type stats Tag_type.File > 0)

(* -- attack ------------------------------------------------------------------------ *)

let attack_payload seed =
  (* replicate Attack.build's payload construction *)
  let rng = Rng.create (seed + 101) in
  String.init W.Attack.payload_len (fun _ -> Char.chr (Rng.int rng 256))

let test_attack_dns_reassembly () =
  let seed = 23 in
  let b = W.Attack.build W.Attack.Reverse_tcp_rc4_dns ~seed () in
  let m, _ = run_machine b in
  let staged =
    Bytes.to_string (Machine.read_bytes m W.Mem.buf_in W.Attack.payload_len)
  in
  Alcotest.(check string) "fragments reassembled in order"
    (attack_payload seed) staged

let test_attack_tcp_payload_reaches_kernel () =
  let seed = 23 in
  let b = W.Attack.build W.Attack.Reverse_tcp ~seed () in
  let m, _ = run_machine b in
  let addr, len = W.Attack.injected_region in
  let injected = Bytes.to_string (Machine.read_bytes m addr len) in
  Alcotest.(check string) "payload injected verbatim (tcp shell)"
    (attack_payload seed) injected

let test_attack_decode_changes_payload () =
  let seed = 23 in
  List.iter
    (fun variant ->
      let b = W.Attack.build variant ~seed () in
      let m, _ = run_machine b in
      let addr, len = W.Attack.injected_region in
      let injected = Bytes.to_string (Machine.read_bytes m addr len) in
      Alcotest.(check bool)
        (W.Attack.variant_name variant ^ " decoder transforms payload")
        true
        (injected <> attack_payload seed))
    [ W.Attack.Reverse_tcp_rc4; W.Attack.Reverse_https; W.Attack.Reverse_winhttps ]

let detection ~policy ?config variant =
  let b = W.Attack.build variant ~seed:23 () in
  let e = W.Workload.run_live ?config ~policy b in
  (Metrics.of_engine e).Metrics.detected_bytes

let mitos_attack_policy () =
  Mitos_experiments.Calib.mitos_all_flows Mitos_experiments.Calib.attack_params

let test_attack_detection_ordering () =
  List.iter
    (fun variant ->
      let faros = detection ~policy:Policies.faros variant in
      let mitos =
        detection ~policy:(mitos_attack_policy ())
          ~config:Mitos_experiments.Calib.attack_engine_config variant
      in
      let all = detection ~policy:Policies.propagate_all variant in
      Alcotest.(check bool)
        (W.Attack.variant_name variant ^ ": faros <= mitos")
        true (faros <= mitos);
      Alcotest.(check bool)
        (W.Attack.variant_name variant ^ ": mitos <= all (within noise)")
        true
        (mitos <= all + 8))
    W.Attack.all_variants

let test_attack_substitution_blinds_faros () =
  Alcotest.(check int) "rc4 shell invisible to direct-only DIFT" 0
    (detection ~policy:Policies.faros W.Attack.Reverse_tcp_rc4);
  Alcotest.(check bool) "tcp shell fully visible" true
    (detection ~policy:Policies.faros W.Attack.Reverse_tcp
    >= W.Attack.payload_len);
  let https = detection ~policy:Policies.faros W.Attack.Reverse_https in
  Alcotest.(check bool) "https shell partially visible" true
    (https > 0 && https < W.Attack.payload_len)

let test_attack_variant_names () =
  List.iter
    (fun v ->
      Alcotest.(check bool) "name roundtrip" true
        (W.Attack.variant_of_name (W.Attack.variant_name v) = v))
    W.Attack.all_variants;
  Alcotest.(check bool) "unknown raises" true
    (try ignore (W.Attack.variant_of_name "zzz"); false
     with Invalid_argument _ -> true)

(* -- codegen combinators --------------------------------------------------------------- *)

let run_raw program =
  let m = Machine.create ~mem_size:65536 program in
  ignore (Machine.run m (fun _ -> ()));
  m

let test_codegen_while_lt () =
  let cg = W.Codegen.create () in
  let a = W.Codegen.asm cg in
  Asm.li a 4 0;
  Asm.li a 5 7;
  Asm.li a 10 0;
  W.Codegen.while_lt cg 4 5 (fun () ->
      Asm.bini a Instr.Add 10 10 3;
      Asm.bini a Instr.Add 4 4 1);
  Asm.halt a;
  let m = run_raw (W.Codegen.assemble cg) in
  Alcotest.(check int) "7 iterations of +3" 21 (Machine.get_reg m 10);
  Alcotest.(check int) "counter at bound" 7 (Machine.get_reg m 4)

let test_codegen_while_lt_zero_iterations () =
  let cg = W.Codegen.create () in
  let a = W.Codegen.asm cg in
  Asm.li a 4 5;
  Asm.li a 5 5;
  Asm.li a 10 0;
  W.Codegen.while_lt cg 4 5 (fun () -> Asm.bini a Instr.Add 10 10 1);
  Asm.halt a;
  Alcotest.(check int) "bound not less: zero iterations" 0
    (Machine.get_reg (run_raw (W.Codegen.assemble cg)) 10)

let test_codegen_for_up () =
  let cg = W.Codegen.create () in
  let a = W.Codegen.asm cg in
  Asm.li a 5 5;
  Asm.li a 10 0;
  W.Codegen.for_up cg 4 ~from:1 ~bound_reg:5 (fun () ->
      Asm.bin a Instr.Add 10 10 4);
  Asm.halt a;
  (* 1 + 2 + 3 + 4 *)
  Alcotest.(check int) "sum 1..4" 10 (Machine.get_reg (run_raw (W.Codegen.assemble cg)) 10)

let test_codegen_if_else () =
  let build cond_val =
    let cg = W.Codegen.create () in
    let a = W.Codegen.asm cg in
    Asm.li a 4 cond_val;
    Asm.li a 5 10;
    W.Codegen.if_else cg Instr.Ltu 4 5
      (fun () -> Asm.li a 10 111)
      (fun () -> Asm.li a 10 222);
    Asm.halt a;
    Machine.get_reg (run_raw (W.Codegen.assemble cg)) 10
  in
  Alcotest.(check int) "then branch" 111 (build 3);
  Alcotest.(check int) "else branch" 222 (build 50)

let test_codegen_if_no_else () =
  let build cond_val =
    let cg = W.Codegen.create () in
    let a = W.Codegen.asm cg in
    Asm.li a 4 cond_val;
    Asm.li a 5 10;
    Asm.li a 10 7;
    W.Codegen.if_ cg Instr.Eq 4 5 (fun () -> Asm.li a 10 99);
    Asm.halt a;
    Machine.get_reg (run_raw (W.Codegen.assemble cg)) 10
  in
  Alcotest.(check int) "taken" 99 (build 10);
  Alcotest.(check int) "skipped" 7 (build 11)

let test_codegen_memcpy_and_fill () =
  let cg = W.Codegen.create () in
  W.Codegen.fill_table_identity cg ~base:0x100 ~size:256 ~xor:0xA5;
  W.Codegen.memcpy_bytes cg ~src:0x100 ~dst:0x900 ~len:256;
  Asm.halt (W.Codegen.asm cg);
  let m = run_raw (W.Codegen.assemble cg) in
  for i = 0 to 255 do
    Alcotest.(check int)
      (Printf.sprintf "table[%d]" i)
      (i lxor 0xA5)
      (Machine.read_byte m (0x100 + i));
    Alcotest.(check int)
      (Printf.sprintf "copy[%d]" i)
      (i lxor 0xA5)
      (Machine.read_byte m (0x900 + i))
  done

(* -- metrics timeline ------------------------------------------------------------------- *)

let test_metrics_timeline () =
  let b = W.Netbench.build ~seed:25 ~chunks:8 () in
  let engine = W.Workload.engine_of ~policy:Policies.propagate_all b in
  let timeline = Metrics.attach_timeline ~sample_every:500 engine in
  Engine.attach engine (W.Workload.machine_of b);
  ignore (Engine.run engine);
  let module TS = Mitos_util.Timeseries in
  Alcotest.(check bool) "samples collected" true (TS.length timeline.Metrics.copies > 10);
  (* copies grow (mostly) over time: last sample >= first *)
  let v = TS.values timeline.Metrics.copies in
  Alcotest.(check bool) "copies accumulate" true (v.(Array.length v - 1) >= v.(0));
  Alcotest.(check int) "aligned series" (TS.length timeline.Metrics.copies)
    (TS.length timeline.Metrics.tainted)

(* -- protocol parser ------------------------------------------------------------------ *)

let test_protocol_parses_correctly () =
  let seed = 14 in
  let b = W.Protocol.build ~seed () in
  let m, _ = run_machine b in
  let expected_out, expected_sum = W.Protocol.reference_parse (W.Protocol.message ~seed) in
  let out =
    Bytes.to_string (Machine.read_bytes m W.Mem.buf_out (String.length expected_out))
  in
  Alcotest.(check string) "machine output = reference parser" expected_out out;
  Alcotest.(check int) "checksum" expected_sum (Machine.read_word m W.Mem.results)

let test_protocol_ijump_flows () =
  let b = W.Protocol.build ~seed:14 () in
  let e = W.Workload.run_live ~policy:Policies.propagate_all b in
  let c = Engine.counters e in
  (* every record dispatch is a tainted indirect jump: scopes open *)
  Alcotest.(check bool) "ijump scopes opened" true (c.Engine.ctrl_scopes_opened > 40);
  (* the output derives from tainted dispatch: faros sees strictly less *)
  let b2 = W.Protocol.build ~seed:14 () in
  let e2 = W.Workload.run_live ~policy:Policies.faros b2 in
  Alcotest.(check bool) "faros taints fewer bytes" true
    ((Metrics.of_engine e2).Metrics.tainted_bytes
    < (Metrics.of_engine e).Metrics.tainted_bytes)

let test_protocol_history_timeline () =
  let b = W.Protocol.build ~seed:14 () in
  let engine = W.Workload.engine_of ~policy:Policies.propagate_all b in
  Engine.record_history engine;
  Engine.attach engine (W.Workload.machine_of b);
  ignore (Engine.run engine);
  (* the first output byte's history: taint arrived via a direct copy
     (or translate addr-dep), traceable to a step *)
  match Engine.taint_history engine W.Mem.buf_out with
  | [] -> Alcotest.fail "expected a taint timeline on the output"
  | first :: _ as arrivals ->
    Alcotest.(check bool) "arrival has a step" true (first.Engine.arr_step > 0);
    Alcotest.(check bool) "network provenance in the timeline" true
      (List.exists
         (fun a -> Tag_type.equal (Tag.ty a.Engine.arr_tag) Tag_type.Network)
         arrivals);
    List.iter
      (fun a ->
        Alcotest.(check bool) "via is labelled" true
          (List.mem a.Engine.arr_via
             [ "source"; "copy"; "compute"; "addr-dep"; "ctrl-dep"; "ijump" ]))
      arrivals

(* -- file server ----------------------------------------------------------------------- *)

let test_fileserver_responses_match_reference () =
  let seed = 33 and requests = 12 in
  let b = W.Fileserver.build ~requests ~seed () in
  let m, _ = run_machine b in
  let expected = W.Fileserver.reference_responses ~seed ~requests in
  let got =
    Bytes.to_string
      (Machine.read_bytes m W.Mem.buf_out (String.length expected))
  in
  Alcotest.(check string) "framed responses byte-exact" expected got

let test_fileserver_sink_attribution () =
  let b = W.Fileserver.build ~requests:12 ~seed:33 () in
  let e = W.Workload.run_live ~policy:Policies.faros b in
  (* the response connection is opened after the request one: id 2 *)
  match Engine.sink_profile e with
  | [ (2, attribution) ] ->
    let file_rows =
      List.filter
        (fun (tag, _) -> Tag_type.equal (Tag.ty tag) Tag_type.File)
        attribution
    in
    Alcotest.(check bool) "several documents attributed" true
      (List.length file_rows >= 2);
    List.iter
      (fun (_, n) ->
        Alcotest.(check bool) "each attributed document moved bytes" true
          (n > 0))
      file_rows
  | other -> Alcotest.failf "expected 1 sink, got %d" (List.length other)

(* -- provenance story (Fig. 2) ------------------------------------------------------- *)

let test_provenance_accumulates_like_fig2 () =
  let b = W.Provenance_story.build ~seed:2 () in
  let e = W.Workload.run_live ~policy:Policies.faros b in
  let shadow = Engine.shadow e in
  let addr, len = W.Provenance_story.final_region in
  for a = addr to addr + len - 1 do
    let types =
      List.map (fun tag -> Tag.ty tag) (Mitos_tag.Shadow.tags_of_addr shadow a)
    in
    Alcotest.(check (list string))
      (Printf.sprintf "byte %#x carries the Fig. 2 history in order" a)
      [ "network"; "process"; "file" ]
      (List.map Tag_type.to_string types)
  done

let test_provenance_snapshot_respects_write_time () =
  (* taint captured at file-write time, not read time: content written
     while clean must read back carrying only the file tag *)
  let os = Mitos_system.Os.create ~seed:3 () in
  let f = Mitos_system.Os.create_file os "" in
  let cg = W.Codegen.create () in
  W.Codegen.sys_getrandom cg ~dst:0x60000 ~len:8;
  W.Codegen.sys_file_write cg ~file:(Mitos_system.Os.file_id f) ~src:0x60000
    ~len:8;
  W.Codegen.sys_file_read cg ~file:(Mitos_system.Os.file_id f) ~dst:0x61000
    ~len:8;
  W.Codegen.sys_exit cg;
  let built =
    {
      W.Workload.name = "snapshot-test";
      description = "";
      program = W.Codegen.assemble cg;
      os;
    }
  in
  let e = W.Workload.run_live ~policy:Policies.faros built in
  let shadow = Engine.shadow e in
  let types =
    List.map (fun t -> Tag_type.to_string (Tag.ty t))
      (Mitos_tag.Shadow.tags_of_addr shadow 0x61000)
  in
  Alcotest.(check (list string)) "clean content gains only the file tag"
    [ "file" ] types

(* -- iot fusion ---------------------------------------------------------------------- *)

let test_iot_fusion_sensor_taint () =
  let b = W.Iot_fusion.build ~rounds:16 ~seed:9 () in
  let e = W.Workload.run_live ~policy:Policies.propagate_all b in
  let stats = Engine.stats e in
  Alcotest.(check bool) "sensor tag live" true
    (Tag_stats.per_type stats Tag_type.Sensor > 0);
  (* the duty-cycle outputs come from table lookups indexed by fused
     sensor data: sensor taint must reach buf_out under full IFP *)
  let shadow = Engine.shadow e in
  let out_with_sensor = ref 0 in
  for a = W.Mem.buf_out to W.Mem.buf_out + 15 do
    if Mitos_tag.Shadow.addr_has_type shadow a Tag_type.Sensor then
      incr out_with_sensor
  done;
  Alcotest.(check int) "all duty cycles sensor-derived" 16 !out_with_sensor;
  (* and is invisible there to a direct-flow-only DIFT *)
  let b = W.Iot_fusion.build ~rounds:16 ~seed:9 () in
  let e = W.Workload.run_live ~policy:Policies.faros b in
  let shadow = Engine.shadow e in
  let visible = ref 0 in
  for a = W.Mem.buf_out to W.Mem.buf_out + 15 do
    if Mitos_tag.Shadow.addr_has_type shadow a Tag_type.Sensor then
      incr visible
  done;
  Alcotest.(check int) "faros sees none of it" 0 !visible

(* -- exfil -------------------------------------------------------------------------- *)

let test_exfil_attribution_ground_truth () =
  let b = W.Exfil.build ~seed:19 () in
  let e = W.Workload.run_live ~policy:Policies.propagate_all b in
  let sink = W.Exfil.exfil_sink b in
  let attribution = List.assoc sink (Engine.sink_profile e) in
  let file_bytes =
    List.fold_left
      (fun acc (tag, n) ->
        if Tag_type.equal (Tag.ty tag) Tag_type.File then acc + n else acc)
      0 attribution
  in
  Alcotest.(check int) "all secret bytes attributed" W.Exfil.secret_len
    file_bytes;
  Alcotest.(check int) "everything outbound tainted"
    (W.Exfil.secret_len + W.Exfil.benign_len)
    (Engine.counters e).Engine.sink_tainted_bytes

let test_exfil_invisible_to_faros () =
  let b = W.Exfil.build ~seed:19 () in
  let e = W.Workload.run_live ~policy:Policies.faros b in
  let attribution =
    Option.value ~default:[]
      (List.assoc_opt (W.Exfil.exfil_sink b) (Engine.sink_profile e))
  in
  Alcotest.(check bool) "no file tag at sink" true
    (List.for_all
       (fun (tag, _) -> not (Tag_type.equal (Tag.ty tag) Tag_type.File))
       attribution)

(* -- adaptive policy ----------------------------------------------------------------- *)

let test_adaptive_policy_steers_tau () =
  let params = Mitos_experiments.Calib.sensitivity_params ~tau:1.0 () in
  (* a generous budget: adaptation should lower tau from the blocking
     regime and propagate more than the fixed-tau run *)
  let controller =
    Mitos.Adaptive.create ~gain:0.5 ~target_pollution:1e-5 params
  in
  let fixed =
    W.Workload.run_live ~policy:(Policies.mitos params)
      (W.Netbench.build ~seed:5 ~chunks:16 ())
  in
  let adaptive =
    W.Workload.run_live
      ~policy:(Policies.mitos_adaptive ~update_period:64 controller)
      (W.Netbench.build ~seed:5 ~chunks:16 ())
  in
  Alcotest.(check bool) "controller actually adapted" true
    (Mitos.Adaptive.observations controller > 0);
  Alcotest.(check bool) "tau moved down" true (Mitos.Adaptive.tau controller < 1.0);
  Alcotest.(check bool) "more propagation under budget headroom" true
    ((Engine.counters adaptive).Engine.ifp_propagated
    > (Engine.counters fixed).Engine.ifp_propagated)

(* -- cross-policy and accounting invariants ---------------------------------------- *)

module ISet = Set.Make (Int)

let tainted_set engine =
  let acc = ref ISet.empty in
  Mitos_tag.Shadow.iter_tainted (Engine.shadow engine) (fun addr _ ->
      acc := ISet.add addr !acc);
  !acc

let test_taint_set_monotonicity () =
  (* an undertainting policy's tainted byte set is contained in the
     overtainting endpoint's, for every workload *)
  List.iter
    (fun name ->
      let run policy =
        tainted_set
          (W.Workload.run_live ~policy (W.Registry.build name ~seed:77))
      in
      let faros = run Policies.faros in
      let minos = run Policies.minos_width in
      let all = run Policies.propagate_all in
      Alcotest.(check bool) (name ^ ": faros subset of all") true
        (ISet.subset faros all);
      Alcotest.(check bool) (name ^ ": minos subset of all") true
        (ISet.subset minos all);
      Alcotest.(check bool) (name ^ ": faros subset of minos") true
        (ISet.subset faros minos))
    [ "lookup-table"; "crypto"; "compress"; "hashing"; "strings" ]

let recount_matches engine =
  let shadow = Engine.shadow engine in
  let recount = Mitos_tag.Tag_stats.create () in
  Mitos_tag.Shadow.iter_tainted shadow (fun _ tags ->
      List.iter (Mitos_tag.Tag_stats.incr recount) tags);
  for r = 0 to Mitos_tag.Shadow.num_regs shadow - 1 do
    List.iter
      (Mitos_tag.Tag_stats.incr recount)
      (Mitos_tag.Shadow.tags_of_reg shadow r)
  done;
  let stats = Engine.stats engine in
  Mitos_tag.Tag_stats.total recount = Mitos_tag.Tag_stats.total stats
  && Mitos_tag.Tag_stats.fold stats ~init:true ~f:(fun acc tag n ->
         acc && Mitos_tag.Tag_stats.count recount tag = n)

let test_invariants_hold_mid_run () =
  (* fault injection: stop the engine at arbitrary points - the count
     invariant must hold at every prefix, not just at halt *)
  let b = W.Crypto.build ~input_len:256 ~seed:17 () in
  let engine = W.Workload.engine_of ~policy:Policies.propagate_all b in
  Engine.attach engine (W.Workload.machine_of b);
  let rng = Rng.create 99 in
  let continue_ = ref true in
  while !continue_ do
    let burst = 1 + Rng.int rng 2000 in
    let executed = Engine.run ~max_steps:burst engine in
    Alcotest.(check bool) "counts exact at interruption point" true
      (recount_matches engine);
    if executed < burst then continue_ := false
  done

let test_invariants_hold_on_partial_replay () =
  (* a truncated trace (crash during replay) leaves consistent state *)
  let b = W.Netbench.build ~seed:18 ~chunks:4 () in
  let trace = W.Workload.record b in
  let records = Mitos_replay.Trace.records trace in
  let engine = W.Workload.engine_of ~policy:Policies.propagate_all b in
  Engine.attach_shadow engine ~mem_size:(Mitos_replay.Trace.mem_size trace);
  let half = Array.length records / 2 in
  Array.iteri
    (fun i r -> if i < half then Engine.process_record engine r)
    records;
  Alcotest.(check bool) "counts exact after partial replay" true
    (recount_matches engine);
  Alcotest.(check int) "exactly half processed" half
    (Engine.counters engine).Engine.steps

let test_shadow_backends_equivalent_on_workload () =
  let run backend =
    let config = { Engine.default_config with shadow_backend = backend } in
    let e =
      W.Workload.run_live ~config ~policy:Policies.propagate_all
        (W.Crypto.build ~input_len:256 ~seed:41 ())
    in
    let s = Metrics.of_engine e in
    (s.Metrics.total_copies, s.Metrics.tainted_bytes, s.Metrics.shadow_ops,
     s.Metrics.footprint_bytes)
  in
  Alcotest.(check bool) "hashed = paged on a full run" true
    (run Mitos_tag.Shadow.Hashed = run Mitos_tag.Shadow.Paged)

let test_engine_counts_exact_after_workloads () =
  (* the control vector n must exactly equal a ground-truth recount of
     list memberships after a full tracked execution *)
  List.iter
    (fun name ->
      let engine =
        W.Workload.run_live ~policy:Policies.propagate_all
          (W.Registry.build name ~seed:13)
      in
      let shadow = Engine.shadow engine in
      let recount = Mitos_tag.Tag_stats.create () in
      Mitos_tag.Shadow.iter_tainted shadow (fun _ tags ->
          List.iter (Mitos_tag.Tag_stats.incr recount) tags);
      (* registers hold taint too *)
      for r = 0 to Mitos_tag.Shadow.num_regs shadow - 1 do
        List.iter
          (Mitos_tag.Tag_stats.incr recount)
          (Mitos_tag.Shadow.tags_of_reg shadow r)
      done;
      let stats = Engine.stats engine in
      Alcotest.(check int) (name ^ ": total copies exact")
        (Mitos_tag.Tag_stats.total recount)
        (Mitos_tag.Tag_stats.total stats);
      Mitos_tag.Tag_stats.fold stats ~init:() ~f:(fun () tag n ->
          Alcotest.(check int)
            (Printf.sprintf "%s: count of %s" name (Tag.to_string tag))
            (Mitos_tag.Tag_stats.count recount tag)
            n))
    [ "netbench"; "crypto"; "attack-reverse_https" ]

(* -- cpubench / filebench --------------------------------------------------------- *)

let test_cpubench_taints_results () =
  let b = W.Cpubench.build ~iterations:2000 ~seed:6 () in
  let e = W.Workload.run_live ~policy:Policies.faros b in
  let shadow = Engine.shadow e in
  (* the spilled state derives from the sensor seed by computation
     only, so even a direct-flow DIFT keeps it tainted *)
  Alcotest.(check bool) "spilled state tainted" true
    (Shadow.is_tainted_addr shadow (W.Mem.results + 4))

let test_hashing_layout_encodes_keys () =
  let b = W.Hashing.build ~keys:64 ~seed:6 () in
  (* under propagate-all the table region is tainted through the
     store-address dependencies; under faros only the stored values
     (direct) carry taint - both taint bytes, but the probe digest's
     taint differs in *why*. Check the table got populated and that
     addr-dep IFPs dominate. *)
  let e = W.Workload.run_live ~policy:Policies.propagate_all b in
  let c = Engine.counters e in
  (* one address-dependency decision per inserted key *)
  Alcotest.(check bool) "store addr-dep per key" true
    (c.Engine.ifp_propagated >= 64);
  let shadow = Engine.shadow e in
  let tainted_slots = ref 0 in
  for a = W.Mem.table to W.Mem.table + 255 do
    if Mitos_tag.Shadow.is_tainted_addr shadow a then incr tainted_slots
  done;
  Alcotest.(check bool) "table slots tainted" true (!tainted_slots > 32)

let test_filebench_roundtrip_through_files () =
  let b = W.Filebench.build ~rounds:8 ~seed:6 () in
  let e = W.Workload.run_live ~policy:Policies.faros b in
  let stats = Engine.stats e in
  Alcotest.(check bool) "multiple file tags live" true
    (Tag_stats.distinct_of_type stats Tag_type.File >= 2)

let () =
  Alcotest.run "mitos_workload"
    [
      ( "registry",
        [
          Alcotest.test_case "unique names" `Quick test_registry_names_unique;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "all run to halt" `Slow test_all_workloads_run_to_halt;
        ] );
      ( "lookup-table",
        [
          Alcotest.test_case "translation" `Quick test_lookup_table_translation_correct;
          Alcotest.test_case "taint contrast" `Quick test_lookup_table_taint_contrast;
        ] );
      ( "strings",
        [ Alcotest.test_case "strlen/tolower/strcpy" `Quick test_strings_strlen_and_tolower ] );
      ( "compress",
        [ Alcotest.test_case "RLE roundtrip" `Quick test_compress_roundtrip ] );
      ( "crypto",
        [ Alcotest.test_case "RC4 reference" `Quick test_crypto_matches_reference ] );
      ( "netbench",
        [ Alcotest.test_case "tag population" `Quick test_netbench_tag_population ] );
      ( "attack",
        [
          Alcotest.test_case "dns reassembly" `Quick test_attack_dns_reassembly;
          Alcotest.test_case "tcp injection" `Quick test_attack_tcp_payload_reaches_kernel;
          Alcotest.test_case "decoders transform" `Quick test_attack_decode_changes_payload;
          Alcotest.test_case "detection ordering" `Slow test_attack_detection_ordering;
          Alcotest.test_case "substitution blinds faros" `Quick test_attack_substitution_blinds_faros;
          Alcotest.test_case "variant names" `Quick test_attack_variant_names;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "while_lt" `Quick test_codegen_while_lt;
          Alcotest.test_case "while_lt zero iterations" `Quick
            test_codegen_while_lt_zero_iterations;
          Alcotest.test_case "for_up" `Quick test_codegen_for_up;
          Alcotest.test_case "if_else" `Quick test_codegen_if_else;
          Alcotest.test_case "if_" `Quick test_codegen_if_no_else;
          Alcotest.test_case "memcpy/fill" `Quick test_codegen_memcpy_and_fill;
        ] );
      ( "metrics timeline",
        [ Alcotest.test_case "sampling" `Quick test_metrics_timeline ] );
      ( "protocol",
        [
          Alcotest.test_case "parses correctly" `Quick test_protocol_parses_correctly;
          Alcotest.test_case "ijump flows" `Quick test_protocol_ijump_flows;
          Alcotest.test_case "history timeline" `Quick test_protocol_history_timeline;
        ] );
      ( "fileserver",
        [
          Alcotest.test_case "responses match reference" `Quick
            test_fileserver_responses_match_reference;
          Alcotest.test_case "sink attribution" `Quick
            test_fileserver_sink_attribution;
        ] );
      ( "provenance (Fig. 2)",
        [
          Alcotest.test_case "accumulation order" `Quick
            test_provenance_accumulates_like_fig2;
          Alcotest.test_case "snapshot at write time" `Quick
            test_provenance_snapshot_respects_write_time;
        ] );
      ( "iot",
        [
          Alcotest.test_case "sensor taint flow" `Quick
            test_iot_fusion_sensor_taint;
        ] );
      ( "exfil",
        [
          Alcotest.test_case "attribution ground truth" `Quick
            test_exfil_attribution_ground_truth;
          Alcotest.test_case "invisible to faros" `Quick
            test_exfil_invisible_to_faros;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "policy steers tau" `Quick
            test_adaptive_policy_steers_tau;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "taint-set monotonicity across policies" `Slow
            test_taint_set_monotonicity;
          Alcotest.test_case "copy counts exact after full runs" `Slow
            test_engine_counts_exact_after_workloads;
          Alcotest.test_case "shadow backends equivalent" `Quick
            test_shadow_backends_equivalent_on_workload;
          Alcotest.test_case "invariants hold mid-run" `Quick
            test_invariants_hold_mid_run;
          Alcotest.test_case "invariants hold on partial replay" `Quick
            test_invariants_hold_on_partial_replay;
        ] );
      ( "other benches",
        [
          Alcotest.test_case "cpubench taint" `Quick test_cpubench_taints_results;
          Alcotest.test_case "hashing layout" `Quick test_hashing_layout_encodes_keys;
          Alcotest.test_case "filebench files" `Quick test_filebench_roundtrip_through_files;
        ] );
    ]
