open Mitos_isa
open Mitos_flow

(* -- Loc ---------------------------------------------------------------- *)

let test_loc_basics () =
  Alcotest.(check bool) "reg eq" true (Loc.equal (Loc.Reg 1) (Loc.Reg 1));
  Alcotest.(check bool) "reg/mem differ" false (Loc.equal (Loc.Reg 1) (Loc.Mem 1));
  Alcotest.(check int) "mem_range length" 4 (List.length (Loc.mem_range 100 4));
  Alcotest.(check bool) "mem_range contents" true
    (Loc.mem_range 100 2 = [ Loc.Mem 100; Loc.Mem 101 ]);
  Alcotest.(check bool) "is_reg" true (Loc.is_reg (Loc.Reg 0));
  Alcotest.(check bool) "is_mem" true (Loc.is_mem (Loc.Mem 0))

(* A diamond:
   0: branch eq r1,r2 -> 3
   1: li r3, 1
   2: jmp 4
   3: li r3, 2
   4: halt            <- join point
*)
let diamond =
  Program.make
    [|
      Instr.Branch (Instr.Eq, 1, 2, 3);
      Instr.Li (3, 1);
      Instr.Jmp 4;
      Instr.Li (3, 2);
      Instr.Halt;
    |]

(* A loop:
   0: li r1, 0
   1: branch geu r1,r2 -> 4     <- loop header
   2: bini add r1, r1, 1
   3: jmp 1
   4: halt
*)
let loop =
  Program.make
    [|
      Instr.Li (1, 0);
      Instr.Branch (Instr.Geu, 1, 2, 4);
      Instr.Bini (Instr.Add, 1, 1, 1);
      Instr.Jmp 1;
      Instr.Halt;
    |]

(* -- Cfg ----------------------------------------------------------------- *)

let test_cfg_diamond () =
  let cfg = Cfg.build diamond in
  Alcotest.(check int) "4 blocks" 4 (Cfg.num_blocks cfg);
  let entry = Cfg.entry cfg in
  Alcotest.(check (list int)) "entry succs" [ 1; 2 ]
    (List.sort compare entry.Cfg.succs);
  let join = Cfg.block_of_instr cfg 4 in
  Alcotest.(check (list int)) "join preds" [ 1; 2 ]
    (List.sort compare (Cfg.preds cfg join.Cfg.id))

let test_cfg_loop () =
  let cfg = Cfg.build loop in
  let header = Cfg.block_of_instr cfg 1 in
  Alcotest.(check bool) "header has two succs" true
    (List.length header.Cfg.succs = 2);
  let body = Cfg.block_of_instr cfg 2 in
  Alcotest.(check (list int)) "body loops back" [ header.Cfg.id ]
    body.Cfg.succs

let test_cfg_block_of_instr () =
  let cfg = Cfg.build diamond in
  let b = Cfg.block_of_instr cfg 1 in
  Alcotest.(check bool) "instr in bounds" true
    (b.Cfg.first <= 1 && 1 <= b.Cfg.last)

(* -- Postdom -------------------------------------------------------------- *)

let test_postdom_diamond () =
  let pd = Postdom.compute diamond in
  Alcotest.(check int) "branch ipdom = join" 4 (Postdom.ipdom pd 0);
  Alcotest.(check int) "then-side flows to jmp" 2 (Postdom.ipdom pd 1);
  Alcotest.(check int) "else-side flows to join" 4 (Postdom.ipdom pd 3);
  Alcotest.(check bool) "join postdominates branch" true
    (Postdom.postdominates pd 4 0);
  Alcotest.(check bool) "then does not postdominate branch" false
    (Postdom.postdominates pd 1 0)

let test_postdom_loop () =
  let pd = Postdom.compute loop in
  (* everything that leaves the loop goes through instruction 4 *)
  Alcotest.(check int) "loop branch ipdom = exit instr" 4 (Postdom.ipdom pd 1);
  Alcotest.(check bool) "halt postdominated by virtual exit" true
    (Postdom.postdominates pd (Postdom.exit_node pd) 4)

let test_postdom_straight_line () =
  let p = Program.make [| Instr.Nop; Instr.Nop; Instr.Halt |] in
  let pd = Postdom.compute p in
  Alcotest.(check int) "0 -> 1" 1 (Postdom.ipdom pd 0);
  Alcotest.(check int) "1 -> 2" 2 (Postdom.ipdom pd 1);
  Alcotest.(check int) "halt -> exit" (Postdom.exit_node pd) (Postdom.ipdom pd 2)

let test_postdom_jr_conservative () =
  let p = Program.make [| Instr.Li (1, 2); Instr.Jr 1; Instr.Halt |] in
  let pd = Postdom.compute p in
  (* Jr has unknown targets: connected to virtual exit *)
  Alcotest.(check int) "jr ipdom is exit" (Postdom.exit_node pd)
    (Postdom.ipdom pd 1)

let test_postdom_infinite_loop () =
  let p = Program.make [| Instr.Jmp 0 |] in
  let pd = Postdom.compute p in
  (* unreachable-from-exit nodes report the exit conservatively *)
  Alcotest.(check int) "infinite loop" (Postdom.exit_node pd)
    (Postdom.ipdom pd 0)

let test_cfg_dominators () =
  let cfg = Cfg.build diamond in
  let idom = Cfg.dominators cfg in
  let entry = (Cfg.entry cfg).Cfg.id in
  let join = (Cfg.block_of_instr cfg 4).Cfg.id in
  Alcotest.(check int) "entry self-dominated" entry idom.(entry);
  Alcotest.(check int) "join dominated by entry" entry idom.(join);
  Alcotest.(check bool) "arms dominated by entry" true
    (idom.((Cfg.block_of_instr cfg 1).Cfg.id) = entry
    && idom.((Cfg.block_of_instr cfg 3).Cfg.id) = entry)

let test_cfg_loops () =
  Alcotest.(check int) "diamond has no loops" 0
    (List.length (Cfg.loops (Cfg.build diamond)));
  let cfg = Cfg.build loop in
  (match Cfg.loops cfg with
  | [ l ] ->
    Alcotest.(check int) "header is the branch block"
      (Cfg.block_of_instr cfg 1).Cfg.id l.Cfg.header;
    Alcotest.(check bool) "body holds header and latch" true
      (List.mem l.Cfg.header l.Cfg.body
      && List.mem l.Cfg.back_edge_from l.Cfg.body);
    Alcotest.(check bool) "exit block outside the body" false
      (List.mem (Cfg.block_of_instr cfg 4).Cfg.id l.Cfg.body)
  | l -> Alcotest.failf "expected 1 loop, got %d" (List.length l));
  (* nested: outer loop 1..8, inner loop 3..5 *)
  let nested =
    Mitos_isa.Program.make
      [|
        Instr.Li (1, 0); (* 0 *)
        Instr.Branch (Instr.Geu, 1, 2, 9); (* 1: outer header *)
        Instr.Li (3, 0); (* 2 *)
        Instr.Branch (Instr.Geu, 3, 4, 7); (* 3: inner header *)
        Instr.Bini (Instr.Add, 3, 3, 1); (* 4 *)
        Instr.Jmp 3; (* 5: inner latch *)
        Instr.Nop; (* 6 (dead) *)
        Instr.Bini (Instr.Add, 1, 1, 1); (* 7 *)
        Instr.Jmp 1; (* 8: outer latch *)
        Instr.Halt; (* 9 *)
      |]
  in
  let cfg = Cfg.build nested in
  let loops = Cfg.loops cfg in
  Alcotest.(check int) "two nested loops" 2 (List.length loops);
  (match loops with
  | [ a; b ] ->
    let outer, inner = if List.length a.Cfg.body > List.length b.Cfg.body then (a, b) else (b, a) in
    Alcotest.(check bool) "inner body inside outer body" true
      (List.for_all (fun blk -> List.mem blk outer.Cfg.body) inner.Cfg.body)
  | _ -> ())

(* Reference implementation: postdominator *sets* by naive fixpoint.
   pdom(exit) = {exit}; pdom(n) = {n} + intersection of pdom over
   successors. The immediate postdominator of n is the element of
   pdom(n)\{n} whose own pdom set is largest (the closest one). *)
module ISet = Set.Make (Int)

let reference_pdoms prog =
  let n = Mitos_isa.Program.length prog in
  let exit_node = n in
  let succs i =
    if i = exit_node then []
    else
      match Mitos_isa.Program.instr prog i with
      | Mitos_isa.Instr.Halt | Mitos_isa.Instr.Jr _ -> [ exit_node ]
      | instr ->
        Mitos_isa.Instr.branch_targets instr ~next:(i + 1)
        |> List.map (fun t -> if t >= n then exit_node else t)
  in
  let universe = ISet.of_list (List.init (n + 1) Fun.id) in
  let pdom = Array.make (n + 1) universe in
  pdom.(exit_node) <- ISet.singleton exit_node;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let inter =
        match succs i with
        | [] -> ISet.empty
        | s :: rest ->
          List.fold_left (fun acc x -> ISet.inter acc pdom.(x)) pdom.(s) rest
      in
      let next = ISet.add i inter in
      if not (ISet.equal next pdom.(i)) then begin
        pdom.(i) <- next;
        changed := true
      end
    done
  done;
  (* nodes with no path to exit (infinite loops) keep vacuous sets;
     compute reachability so callers can exclude them *)
  let reaches_exit = Array.make (n + 1) false in
  reaches_exit.(exit_node) <- true;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if
        (not reaches_exit.(i))
        && List.exists (fun s -> reaches_exit.(s)) (succs i)
      then begin
        reaches_exit.(i) <- true;
        changed := true
      end
    done
  done;
  (pdom, reaches_exit, exit_node)

let random_program rng len =
  let open Mitos_isa.Instr in
  let instrs =
    Array.init (len - 1) (fun _ ->
        match Mitos_util.Rng.int rng 5 with
        | 0 -> Branch (Eq, 0, 1, Mitos_util.Rng.int rng len)
        | 1 -> Jmp (Mitos_util.Rng.int rng len)
        | 2 -> Nop
        | 3 -> Li (2, 7)
        | _ -> Bin (Add, 3, 0, 1))
  in
  Mitos_isa.Program.make (Array.append instrs [| Halt |])

let test_postdom_matches_reference () =
  let rng = Mitos_util.Rng.create 2024 in
  for _ = 1 to 60 do
    let prog = random_program rng (4 + Mitos_util.Rng.int rng 20) in
    let pd = Postdom.compute prog in
    let pdoms, reaches_exit, exit_node = reference_pdoms prog in
    ignore exit_node;
    for i = 0 to Mitos_isa.Program.length prog - 1 do
      let strict = ISet.remove i pdoms.(i) in
      if reaches_exit.(i) then begin
        (* reachable-to-exit: ipdom must be the closest strict
           postdominator *)
        let closest =
          ISet.fold
            (fun x best ->
              match best with
              | None -> Some x
              | Some b ->
                if ISet.cardinal pdoms.(x) > ISet.cardinal pdoms.(b) then
                  Some x
                else best)
            strict None
        in
        match closest with
        | Some expected ->
          Alcotest.(check int)
            (Printf.sprintf "ipdom of %d" i)
            expected (Postdom.ipdom pd i)
        | None -> ()
      end
    done
  done

(* -- Extract --------------------------------------------------------------- *)

let record_for prog idx regs =
  (* execute just instruction [idx] on a machine with given regs *)
  let m = Machine.create ~mem_size:4096 prog in
  List.iteri (fun i v -> Machine.set_reg m i v) regs;
  let rec skip () =
    if Machine.pc m = idx then Option.get (Machine.step m)
    else begin
      ignore (Machine.step m);
      skip ()
    end
  in
  skip ()

let test_extract_direct () =
  let p =
    Program.make
      [| Instr.Mov (2, 1); Instr.Bin (Instr.Add, 3, 1, 2); Instr.Halt |]
  in
  let ex = Extract.create p in
  let r = record_for p 0 [] in
  (match Extract.events_of_record ex r with
  | [ Extract.Copy { srcs = [ Loc.Reg 1 ]; dsts = [ Loc.Reg 2 ] } ] -> ()
  | _ -> Alcotest.fail "mov should be a single copy");
  let r = record_for p 1 [] in
  match Extract.events_of_record ex r with
  | [ Extract.Compute { srcs = [ Loc.Reg 1; Loc.Reg 2 ]; dsts = [ Loc.Reg 3 ] } ] ->
    ()
  | _ -> Alcotest.fail "bin should be a single compute"

let test_extract_load_store () =
  let p =
    Program.make
      [|
        Instr.Load (Instr.W32, 2, 1, 0); Instr.Store (Instr.W8, 2, 1, 4);
        Instr.Halt;
      |]
  in
  let ex = Extract.create p in
  let r = record_for p 0 [ 0; 100 ] in
  (match Extract.events_of_record ex r with
  | [ Extract.Copy { srcs; dsts = [ Loc.Reg 2 ] };
      Extract.Addr_dep { addr_srcs = [ Loc.Reg 1 ]; dsts = [ Loc.Reg 2 ] } ] ->
    Alcotest.(check int) "word load reads 4 bytes" 4 (List.length srcs)
  | _ -> Alcotest.fail "load should be copy + addr-dep");
  let r = record_for p 1 [ 0; 100; 7 ] in
  match Extract.events_of_record ex r with
  | [ Extract.Copy { srcs = [ Loc.Reg 2 ]; dsts = [ Loc.Mem 104 ] };
      Extract.Addr_dep { addr_srcs = [ Loc.Reg 1 ]; dsts = [ Loc.Mem 104 ] } ] ->
    ()
  | _ -> Alcotest.fail "store should be copy + addr-dep at base+off"

let test_extract_branch_scope () =
  let ex = Extract.create diamond in
  let r = record_for diamond 0 [ 0; 1; 2 ] in
  match Extract.events_of_record ex r with
  | [ Extract.Branch_point { cond_srcs; scope_end; taken } ] ->
    Alcotest.(check bool) "cond srcs" true
      (cond_srcs = [ Loc.Reg 1; Loc.Reg 2 ]);
    Alcotest.(check int) "scope ends at ipdom" 4 scope_end;
    Alcotest.(check bool) "not taken (1<>2)" false taken
  | _ -> Alcotest.fail "branch should be a branch point"

let test_extract_ijump_and_empty () =
  let p = Program.make [| Instr.Li (1, 2); Instr.Jr 1; Instr.Halt |] in
  let ex = Extract.create p in
  let r = record_for p 1 [] in
  (match Extract.events_of_record ex r with
  | [ Extract.Indirect_jump { target_srcs = [ Loc.Reg 1 ] } ] -> ()
  | _ -> Alcotest.fail "jr should be indirect jump");
  let r = record_for p 0 [] in
  (* Li produces a clearing copy with no sources *)
  match Extract.events_of_record ex r with
  | [ Extract.Copy { srcs = []; dsts = [ Loc.Reg 1 ] } ] -> ()
  | _ -> Alcotest.fail "li should clear"

let test_extract_syscall_events () =
  let handler _m ~sysno:_ =
    [
      Machine.Sys_wrote_mem { addr = 10; len = 3; source = 5 };
      Machine.Sys_read_mem { addr = 20; len = 2; sink = 1 };
      Machine.Sys_set_reg { reg = 1 };
    ]
  in
  let p = Program.make [| Instr.Syscall 1; Instr.Halt |] in
  let m = Machine.create ~mem_size:256 ~syscall:handler p in
  let ex = Extract.create p in
  let r = Option.get (Machine.step m) in
  match Extract.events_of_record ex r with
  | [ Extract.Sys_source { addr = 10; len = 3; source = 5 };
      Extract.Sys_sink { addr = 20; len = 2; sink = 1 };
      Extract.Sys_clear_reg 1 ] ->
    ()
  | _ -> Alcotest.fail "syscall effects should map in order"

let test_written_locs () =
  let p =
    Program.make [| Instr.Store (Instr.W32, 1, 2, 0); Instr.Halt |]
  in
  let m = Machine.create ~mem_size:256 p in
  Machine.set_reg m 2 32;
  let r = Option.get (Machine.step m) in
  Alcotest.(check int) "4 bytes written" 4
    (List.length (Extract.written_locs r))

let () =
  Alcotest.run "mitos_flow"
    [
      ("loc", [ Alcotest.test_case "basics" `Quick test_loc_basics ]);
      ( "cfg",
        [
          Alcotest.test_case "diamond" `Quick test_cfg_diamond;
          Alcotest.test_case "loop" `Quick test_cfg_loop;
          Alcotest.test_case "block_of_instr" `Quick test_cfg_block_of_instr;
          Alcotest.test_case "dominators" `Quick test_cfg_dominators;
          Alcotest.test_case "natural loops" `Quick test_cfg_loops;
        ] );
      ( "postdom",
        [
          Alcotest.test_case "diamond join" `Quick test_postdom_diamond;
          Alcotest.test_case "loop" `Quick test_postdom_loop;
          Alcotest.test_case "straight line" `Quick test_postdom_straight_line;
          Alcotest.test_case "jr conservative" `Quick test_postdom_jr_conservative;
          Alcotest.test_case "infinite loop" `Quick test_postdom_infinite_loop;
          Alcotest.test_case "matches set-based reference" `Quick
            test_postdom_matches_reference;
        ] );
      ( "extract",
        [
          Alcotest.test_case "direct flows" `Quick test_extract_direct;
          Alcotest.test_case "load/store" `Quick test_extract_load_store;
          Alcotest.test_case "branch scope" `Quick test_extract_branch_scope;
          Alcotest.test_case "ijump/li" `Quick test_extract_ijump_and_empty;
          Alcotest.test_case "syscall events" `Quick test_extract_syscall_events;
          Alcotest.test_case "written locs" `Quick test_written_locs;
        ] );
    ]
