module Trace = Mitos_replay.Trace
module Recorder = Mitos_replay.Recorder
module W = Mitos_workload

let small_workload seed = W.Lookup_table.build ~seed ()

let record_small seed =
  W.Workload.record (small_workload seed)

let test_trace_basics () =
  let trace = record_small 3 in
  Alcotest.(check bool) "has records" true (Trace.length trace > 0);
  Alcotest.(check (option string)) "meta" (Some "lookup-table")
    (Trace.find_meta trace "workload");
  Alcotest.(check (option string)) "missing meta" None
    (Trace.find_meta trace "nope");
  let count = ref 0 in
  Trace.iter trace (fun _ -> incr count);
  Alcotest.(check int) "iter covers all" (Trace.length trace) !count

let test_trace_serialization_roundtrip () =
  let trace = record_small 3 in
  let s = Trace.to_string trace in
  let trace' = Trace.of_string s in
  Alcotest.(check int) "length preserved" (Trace.length trace) (Trace.length trace');
  Alcotest.(check int) "mem size" (Trace.mem_size trace) (Trace.mem_size trace');
  Alcotest.(check bool) "records identical" true
    (Trace.records trace = Trace.records trace');
  Alcotest.(check bool) "program identical" true
    (Mitos_isa.Program.code (Trace.program trace)
    = Mitos_isa.Program.code (Trace.program trace'));
  Alcotest.(check string) "re-serialization stable" s (Trace.to_string trace')

let test_trace_corruption () =
  let trace = record_small 3 in
  let s = Trace.to_string trace in
  let bad_magic = "XXXXXXXX" ^ String.sub s 8 (String.length s - 8) in
  Alcotest.(check bool) "bad magic" true
    (try ignore (Trace.of_string bad_magic); false
     with Mitos_util.Codec.Malformed _ -> true);
  let truncated = String.sub s 0 (String.length s / 2) in
  Alcotest.(check bool) "truncated" true
    (try ignore (Trace.of_string truncated); false
     with Mitos_util.Codec.Malformed _ -> true);
  let trailing = s ^ "junk" in
  Alcotest.(check bool) "trailing bytes" true
    (try ignore (Trace.of_string trailing); false
     with Mitos_util.Codec.Malformed _ -> true)

let test_trace_file_io () =
  let trace = record_small 3 in
  let path = Filename.temp_file "mitos" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save trace path;
      let loaded = Trace.load path in
      Alcotest.(check bool) "file roundtrip" true
        (Trace.to_string trace = Trace.to_string loaded))

let test_recording_deterministic () =
  (* the PANDA property: identically-built workloads record identical
     traces *)
  Alcotest.(check bool) "deterministic" true
    (Recorder.verify_deterministic
       ~make_machine:(fun () -> W.Workload.machine_of (small_workload 9))
       ())

let test_different_seeds_differ () =
  (* netbench payload is seed-derived, so the recorded values differ *)
  let record seed = W.Workload.record (W.Netbench.build ~seed ~chunks:2 ()) in
  let t1 = record 1 and t2 = record 2 in
  Alcotest.(check bool) "different payload -> different trace" true
    (Trace.to_string t1 <> Trace.to_string t2)

let test_max_steps_truncates () =
  let b = small_workload 4 in
  let trace = Recorder.record ~max_steps:50 (W.Workload.machine_of b) in
  Alcotest.(check int) "truncated at 50" 50 (Trace.length trace)

let test_replay_through_engine_matches_live () =
  (* record once, replay through an engine; compare against live run *)
  let policy = Mitos_dift.Policies.propagate_all in
  let live = W.Workload.run_live ~policy (small_workload 7) in
  let b = small_workload 7 in
  let trace = W.Workload.record b in
  let replayed = W.Workload.replay ~policy b trace in
  let s_live = Mitos_dift.Metrics.of_engine live in
  let s_rep = Mitos_dift.Metrics.of_engine replayed in
  Alcotest.(check int) "copies" s_live.Mitos_dift.Metrics.total_copies
    s_rep.Mitos_dift.Metrics.total_copies;
  Alcotest.(check int) "tainted" s_live.Mitos_dift.Metrics.tainted_bytes
    s_rep.Mitos_dift.Metrics.tainted_bytes;
  Alcotest.(check int) "ifp decisions"
    (s_live.Mitos_dift.Metrics.ifp_propagated
    + s_live.Mitos_dift.Metrics.ifp_blocked)
    (s_rep.Mitos_dift.Metrics.ifp_propagated
    + s_rep.Mitos_dift.Metrics.ifp_blocked)

let test_replay_with_dynamic_sources_from_disk () =
  (* netbench mints source ids while running (per-read network tags,
     export marks); a trace saved to disk must carry that table so a
     fresh process can replay it faithfully *)
  let policy = Mitos_dift.Policies.propagate_all in
  let b = W.Netbench.build ~seed:31 ~chunks:4 () in
  let trace = W.Workload.record b in
  let live_like = W.Workload.replay ~policy b trace in
  let path = Filename.temp_file "mitos" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save trace path;
      let loaded = Trace.load path in
      (* deliberately mismatched seed: sources come from the trace *)
      let fresh_b = W.Netbench.build ~seed:999 ~chunks:4 () in
      let replayed = W.Workload.replay ~policy fresh_b loaded in
      let s1 = Mitos_dift.Metrics.of_engine live_like in
      let s2 = Mitos_dift.Metrics.of_engine replayed in
      Alcotest.(check int) "copies survive disk+fresh OS"
        s1.Mitos_dift.Metrics.total_copies s2.Mitos_dift.Metrics.total_copies;
      Alcotest.(check int) "tainted bytes match"
        s1.Mitos_dift.Metrics.tainted_bytes s2.Mitos_dift.Metrics.tainted_bytes;
      Alcotest.(check bool) "sources actually resolved" true
        (s2.Mitos_dift.Metrics.total_copies > 100))

let test_replay_is_repeatable () =
  let b = small_workload 8 in
  let trace = W.Workload.record b in
  let run () =
    let e = W.Workload.replay ~policy:Mitos_dift.Policies.propagate_all b trace in
    Mitos_dift.Metrics.of_engine e
  in
  let s1 = run () and s2 = run () in
  Alcotest.(check int) "identical replays" s1.Mitos_dift.Metrics.shadow_ops
    s2.Mitos_dift.Metrics.shadow_ops

let test_trace_stats () =
  let b = W.Crypto.build ~input_len:128 ~seed:3 () in
  let trace = W.Workload.record b in
  let stats = Mitos_replay.Trace_stats.analyze trace in
  let open Mitos_replay.Trace_stats in
  Alcotest.(check int) "instruction count matches trace" (Trace.length trace)
    stats.instructions;
  Alcotest.(check bool) "loads present" true (stats.loads > 0);
  Alcotest.(check bool) "addr-dep sites = loads + stores" true
    (stats.addr_dep_sites = stats.loads + stats.stores);
  Alcotest.(check bool) "ctrl sites = branches" true
    (stats.ctrl_dep_sites = stats.branches);
  Alcotest.(check bool) "taken <= branches" true
    (stats.branches_taken <= stats.branches);
  Alcotest.(check bool) "hot list bounded" true
    (List.length stats.hottest <= 10);
  (match stats.hottest with
  | (_, top) :: rest ->
    List.iter
      (fun (_, n) -> Alcotest.(check bool) "descending" true (n <= top))
      rest
  | [] -> Alcotest.fail "no hot pcs");
  Alcotest.(check bool) "distinct pcs <= program size" true
    (stats.distinct_pcs
    <= Mitos_isa.Program.length (Trace.program trace));
  Alcotest.(check int) "row arity" 11
    (List.length (Mitos_replay.Trace_stats.to_rows stats))

let test_suspend_resume_tracking () =
  (* split a replay at a scope-free boundary, checkpoint the shadow,
     resume in a fresh engine: the final state must equal an unbroken
     replay *)
  let policy = Mitos_dift.Policies.propagate_all in
  let b = W.Netbench.build ~seed:44 ~chunks:6 () in
  let trace = W.Workload.record b in
  let records = Mitos_replay.Trace.records trace in
  let full = W.Workload.replay ~policy b trace in
  (* first segment *)
  let first = Mitos_dift.Engine.create ~policy
      ~source_tag:(Mitos_system.Os.source_tag b.W.Workload.os)
      b.W.Workload.program
  in
  Mitos_dift.Engine.attach_shadow first ~mem_size:(Mitos_replay.Trace.mem_size trace);
  (* walk forward from the midpoint until no control scope is open *)
  let split = ref (Array.length records / 2) in
  Array.iteri
    (fun i r ->
      if i < !split then Mitos_dift.Engine.process_record first r)
    records;
  while Mitos_dift.Engine.active_scopes first > 0 && !split < Array.length records do
    Mitos_dift.Engine.process_record first records.(!split);
    incr split
  done;
  Alcotest.(check int) "scope-free boundary found" 0
    (Mitos_dift.Engine.active_scopes first);
  (* checkpoint, restore, resume *)
  let snapshot =
    Mitos_tag.Shadow.to_string (Mitos_dift.Engine.shadow first)
  in
  let second = Mitos_dift.Engine.create ~policy
      ~source_tag:(Mitos_system.Os.source_tag b.W.Workload.os)
      b.W.Workload.program
  in
  Mitos_dift.Engine.attach_existing_shadow second
    (Mitos_tag.Shadow.of_string snapshot);
  Array.iteri
    (fun i r ->
      if i >= !split then Mitos_dift.Engine.process_record second r)
    records;
  let stats_of e = Mitos_tag.Tag_stats.snapshot (Mitos_dift.Engine.stats e) in
  Alcotest.(check bool) "resumed state equals unbroken replay" true
    (stats_of second = stats_of full);
  Alcotest.(check int) "tainted bytes equal"
    (Mitos_tag.Shadow.tainted_bytes (Mitos_dift.Engine.shadow full))
    (Mitos_tag.Shadow.tainted_bytes (Mitos_dift.Engine.shadow second))

let test_loop_profile () =
  let b = W.Crypto.build ~input_len:128 ~seed:3 () in
  let trace = W.Workload.record b in
  let loops = Mitos_replay.Trace_stats.loop_profile trace in
  (* crypto has three loops: table fill (256 iters), KSA (256) and the
     PRGA (one per input byte) *)
  Alcotest.(check int) "three loops" 3 (List.length loops);
  let iters =
    List.sort compare
      (List.map (fun l -> l.Mitos_replay.Trace_stats.iterations) loops)
  in
  Alcotest.(check (list int)) "iteration counts" [ 128; 256; 256 ] iters;
  List.iter
    (fun l ->
      Alcotest.(check bool) "body bounds ordered" true
        (l.Mitos_replay.Trace_stats.first_pc
        <= l.Mitos_replay.Trace_stats.last_pc);
      Alcotest.(check bool) "dynamic count positive" true
        (l.Mitos_replay.Trace_stats.body_instructions > 0))
    loops;
  (* straight-line program: no loops *)
  let straight = W.Provenance_story.build ~seed:3 () in
  Alcotest.(check int) "straight-line has no loops" 0
    (List.length
       (Mitos_replay.Trace_stats.loop_profile (W.Workload.record straight)))

let test_syscall_histogram () =
  let b = W.Netbench.build ~seed:7 ~chunks:8 () in
  let trace = W.Workload.record b in
  let hist = Mitos_replay.Trace_stats.syscall_histogram trace in
  let count n = Option.value ~default:0 (List.assoc_opt n hist) in
  Alcotest.(check int) "one read per chunk" 8
    (count Mitos_system.Os.sys_net_read);
  Alcotest.(check int) "one exit" 1 (count Mitos_system.Os.sys_exit);
  (* descending order *)
  let counts = List.map snd hist in
  Alcotest.(check (list int)) "sorted descending"
    (List.sort (fun a b -> compare b a) counts)
    counts

let () =
  Alcotest.run "mitos_replay"
    [
      ( "trace",
        [
          Alcotest.test_case "basics" `Quick test_trace_basics;
          Alcotest.test_case "serialization" `Quick test_trace_serialization_roundtrip;
          Alcotest.test_case "corruption" `Quick test_trace_corruption;
          Alcotest.test_case "file io" `Quick test_trace_file_io;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "deterministic" `Quick test_recording_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_different_seeds_differ;
          Alcotest.test_case "max steps" `Quick test_max_steps_truncates;
        ] );
      ( "replay",
        [
          Alcotest.test_case "matches live" `Quick test_replay_through_engine_matches_live;
          Alcotest.test_case "dynamic sources from disk" `Quick
            test_replay_with_dynamic_sources_from_disk;
          Alcotest.test_case "repeatable" `Quick test_replay_is_repeatable;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "trace stats" `Quick test_trace_stats;
          Alcotest.test_case "loop profile" `Quick test_loop_profile;
          Alcotest.test_case "suspend/resume tracking" `Quick
            test_suspend_resume_tracking;
          Alcotest.test_case "syscall histogram" `Quick test_syscall_histogram;
        ] );
    ]
