test/test_system.ml: Alcotest Array Bytes Instr List Machine Mitos_dift Mitos_isa Mitos_system Mitos_tag Program Shadow Tag Tag_type
