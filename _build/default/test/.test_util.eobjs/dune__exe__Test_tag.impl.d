test/test_tag.ml: Alcotest Array Fun List Mitos_tag Mitos_util Provenance QCheck QCheck_alcotest Shadow String Tag Tag_stats Tag_type
