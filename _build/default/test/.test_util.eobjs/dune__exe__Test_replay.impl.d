test/test_replay.ml: Alcotest Array Filename Fun List Mitos_dift Mitos_isa Mitos_replay Mitos_system Mitos_tag Mitos_util Mitos_workload Option String Sys
