test/test_isa.ml: Alcotest Array Asm Bytes Format Instr List Machine Mitos_isa Mitos_util Option Parser Program QCheck QCheck_alcotest String
