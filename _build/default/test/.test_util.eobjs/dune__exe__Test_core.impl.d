test/test_core.ml: Adaptive Alcotest Analysis Array Cost Decision Fairness Float Gen Hashtbl List Mitos Mitos_tag Option Params QCheck QCheck_alcotest Solver Tag Tag_stats Tag_type
