test/test_flow.ml: Alcotest Array Cfg Extract Fun Instr Int List Loc Machine Mitos_flow Mitos_isa Mitos_util Option Postdom Printf Program Set
