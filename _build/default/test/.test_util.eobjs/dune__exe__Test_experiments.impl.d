test/test_experiments.ml: Alcotest Lazy List Mitos Mitos_dift Mitos_experiments Mitos_util Mitos_workload Printf String
