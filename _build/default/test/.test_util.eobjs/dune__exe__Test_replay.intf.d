test/test_replay.mli:
