test/test_tag.mli:
