test/test_fuzz.ml: Alcotest Array Asm Engine Hashtbl Instr Int List Machine Mitos Mitos_dift Mitos_isa Mitos_tag Mitos_util Mitos_workload Option Policies Printf Set Shadow Tag Tag_stats Tag_type
