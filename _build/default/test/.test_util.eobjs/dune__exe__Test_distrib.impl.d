test/test_distrib.ml: Alcotest List Mitos_dift Mitos_distrib Mitos_experiments Mitos_system Mitos_tag Mitos_workload
