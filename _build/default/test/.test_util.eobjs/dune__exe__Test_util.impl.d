test/test_util.ml: Alcotest Array Bytes Codec Float Gen List Mitos_util QCheck QCheck_alcotest Rng Stats String Table Timeseries
