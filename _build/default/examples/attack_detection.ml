(* The paper's SV-C case study: flagging an in-memory-only attack.

   A payload is delivered over the network, decoded (table
   substitution - indirect flows!), injected into a victim process and
   reflectively loaded into the kernel linking area. Detection = bytes
   carrying both a netflow tag and an export-table tag.

   Run with:
     dune exec examples/attack_detection.exe                 (all shells)
     dune exec examples/attack_detection.exe -- reverse_tcp_rc4 *)

open Mitos_dift
module W = Mitos_workload
module Attack = W.Attack
module Calib = Mitos_experiments.Calib

let watch = (Mitos_tag.Tag_type.Network, Mitos_tag.Tag_type.Export_table)

let run_policy ~policy ?config variant =
  let built = Attack.build variant ~seed:Calib.attack_seed () in
  let engine = W.Workload.engine_of ?config ~policy built in
  Engine.watch_confluence engine (fst watch) (snd watch);
  Engine.attach engine (W.Workload.machine_of built);
  (Metrics.measure_run engine, engine)

let alarm_of engine =
  match Engine.first_alert_step engine with
  | Some step -> Printf.sprintf "step %d" step
  | None -> "never"

let compare_variant variant =
  let faros, faros_engine = run_policy ~policy:Policies.faros variant in
  let mitos, mitos_engine =
    run_policy
      ~policy:(Calib.mitos_all_flows Calib.attack_params)
      ~config:Calib.attack_engine_config variant
  in
  Printf.printf "%-22s  %16s %16s %14s  alarm: %s vs %s\n"
    (Attack.variant_name variant)
    (Printf.sprintf "%d vs %d" faros.Metrics.detected_bytes
       mitos.Metrics.detected_bytes)
    (Printf.sprintf "%d vs %d" faros.Metrics.shadow_ops
       mitos.Metrics.shadow_ops)
    (Printf.sprintf "%dK vs %dK"
       (faros.Metrics.footprint_bytes / 1024)
       (mitos.Metrics.footprint_bytes / 1024))
    (alarm_of faros_engine) (alarm_of mitos_engine);
  (faros, mitos, mitos_engine)

let () =
  let variants =
    if Array.length Sys.argv > 1 then
      [ Attack.variant_of_name Sys.argv.(1) ]
    else Attack.all_variants
  in
  Printf.printf "%-22s  %16s %16s %14s\n" "shell"
    "detected(F vs M)" "ops(F vs M)" "space(F vs M)";
  let rows = List.map compare_variant variants in
  let faros_runs = List.map (fun (f, _, _) -> f) rows
  and mitos_runs = List.map (fun (_, m, _) -> m) rows in
  let total f l = List.fold_left (fun acc s -> acc + f s) 0 l in
  let ratio f num den =
    float_of_int (total f num) /. float_of_int (max 1 (total f den))
  in
  let det s = s.Metrics.detected_bytes
  and ops s = s.Metrics.shadow_ops
  and space s = s.Metrics.footprint_bytes in
  if List.length rows > 1 then begin
    Printf.printf
      "\nAverages: detection %.2fx more bytes, %.2fx fewer shadow ops, \
       %.2fx less shadow memory under MITOS.\n"
      (ratio det mitos_runs faros_runs)
      (ratio ops faros_runs mitos_runs)
      (ratio space faros_runs mitos_runs);
    print_endline
      "(Paper's Table II: 2.67x detection, 1.65x time, 1.11x space.)"
  end;
  (* Forensics view of the last MITOS run: where the taint sits, and
     which sources the exfiltrated bytes came from. *)
  match List.rev rows with
  | (_, _, engine) :: _ ->
    let shadow = Engine.shadow engine in
    print_endline "\nTaint map under MITOS ('!' = netflow+export-table byte):";
    print_string
      (Taint_map.render_regions ~highlight:watch
         [
           ("victim process", W.Mem.victim_base, W.Mem.victim_size);
           ("kernel linking area", Mitos_system.Layout.kernel_export_base, 0x800);
         ]
         shadow);
    print_endline "\nExfiltration attribution (tainted bytes per sink):";
    List.iter
      (fun (sink, attribution) ->
        Printf.printf "  sink %d:\n" sink;
        List.iter
          (fun (tag, n) ->
            Printf.printf "    %-18s %d bytes\n" (Mitos_tag.Tag.to_string tag) n)
          attribution)
      (Engine.sink_profile engine)
  | [] -> ()
