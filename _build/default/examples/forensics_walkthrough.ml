(* A guided forensics session.

   The reverse_tcp_rc4 shell is invisible to a direct-flow-only DIFT;
   under MITOS the incident is not only detected but fully
   reconstructible. This example walks the investigation the way an
   analyst would:

     1. the alarm (when did netflow and export-table taint first meet?)
     2. the scene (taint map of the victim and the kernel linking area)
     3. the history (how did the first flagged byte become tainted?)
     4. the blast radius (what left the machine, attributed by source)
     5. the instrument (which program points carried the flows)

   Run with: dune exec examples/forensics_walkthrough.exe *)

open Mitos_dift
open Mitos_tag
module W = Mitos_workload
module Calib = Mitos_experiments.Calib

let () =
  let variant = W.Attack.Reverse_tcp_rc4 in
  Printf.printf "Incident replay: %s shell, MITOS tracking all flows.\n\n"
    (W.Attack.variant_name variant);
  let built = W.Attack.build variant ~seed:Calib.attack_seed () in
  let engine =
    W.Workload.engine_of ~config:Calib.attack_engine_config
      ~policy:(Calib.mitos_all_flows Calib.attack_params)
      built
  in
  Engine.watch_confluence engine Tag_type.Network Tag_type.Export_table;
  Engine.record_history engine;
  Engine.attach engine (W.Workload.machine_of built);
  ignore (Engine.run engine);

  (* 1. the alarm *)
  (match Engine.alerts engine with
  | [] -> print_endline "no alarm - nothing to investigate."
  | first :: _ as alerts ->
    Printf.printf
      "1. ALARM at step %d: byte %#x (%s region) acquired both netflow \
       and export-table taint; %d bytes flagged in total.\n\n"
      first.Engine.alert_step first.Engine.alert_addr
      (Mitos_system.Layout.region_of first.Engine.alert_addr)
      (List.length alerts);

    (* 2. the scene *)
    print_endline "2. THE SCENE ('!' marks flagged bytes):";
    print_string
      (Taint_map.render_regions
         ~highlight:(Tag_type.Network, Tag_type.Export_table)
         [
           ("victim process", W.Mem.victim_base, W.Mem.victim_size);
           ("kernel linking area", Mitos_system.Layout.kernel_export_base, 0x800);
         ]
         (Engine.shadow engine));
    print_newline ();

    (* 3. the history of the first flagged byte *)
    Printf.printf "3. HISTORY of byte %#x:\n" first.Engine.alert_addr;
    List.iter
      (fun a ->
        Printf.printf "   step %-8d %-16s arrived via %s\n"
          a.Engine.arr_step
          (Tag.to_string a.Engine.arr_tag)
          a.Engine.arr_via)
      (Engine.taint_history engine first.Engine.alert_addr);
    print_newline ();

    (* 4. exfiltration *)
    print_endline "4. EXFILTRATION (tainted bytes per sink, attributed):";
    List.iter
      (fun (sink, attribution) ->
        Printf.printf "   sink %d:\n" sink;
        List.iter
          (fun (tag, n) ->
            Printf.printf "     %-16s %d bytes\n" (Tag.to_string tag) n)
          attribution)
      (Engine.sink_profile engine);
    print_newline ();

    (* 5. the flows' hot spots *)
    print_endline
      "5. HOT SPOTS (program points by indirect-flow decisions):";
    List.iteri
      (fun i (pc, prop, blocked) ->
        if i < 5 then
          Printf.printf "   @%-5d %-24s  +%d propagated, -%d blocked\n" pc
            (Mitos_isa.Instr.to_string
               (Mitos_isa.Program.instr built.W.Workload.program pc))
            prop blocked)
      (Engine.site_profile engine))
