(* Compare every propagation policy on one workload.

   The same recorded execution is replayed under each policy, so the
   instruction stream is identical and only the indirect-flow handling
   differs: the two endpoints of the paper's dilemma (undertainting
   faros, overtainting propagate-all), the prior-work heuristics it
   discusses, and MITOS.

   Run with:
     dune exec examples/policy_comparison.exe               (crypto)
     dune exec examples/policy_comparison.exe -- compress
     dune exec examples/policy_comparison.exe -- attack-reverse_tcp_rc4 *)

open Mitos_dift
module W = Mitos_workload
module Calib = Mitos_experiments.Calib
module Table = Mitos_util.Table

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "crypto" in
  let built =
    try W.Registry.build name ~seed:33
    with Not_found ->
      Printf.eprintf "unknown workload %S; pick one of:\n  %s\n" name
        (String.concat "\n  " W.Registry.names);
      exit 1
  in
  Printf.printf "Workload: %s - %s\n\n" built.W.Workload.name
    built.W.Workload.description;
  let trace = W.Workload.record built in
  (* attack workloads use the Table II security weighting (netflow and
     export-table semantics boosted); benchmarks use the sensitivity
     defaults *)
  let mitos_params =
    if String.length name >= 7 && String.sub name 0 7 = "attack-" then
      Calib.attack_params
    else Calib.sensitivity_params ()
  in
  let policies =
    [
      Policies.block_all;
      Policies.faros;
      Policies.minos_width;
      Policies.probabilistic ~seed:7 ~p:0.5;
      Policies.pollution_threshold ~limit:20_000;
      Policies.mitos mitos_params;
      Policies.propagate_all;
    ]
  in
  let table = Table.create ~header:Metrics.header () in
  List.iter
    (fun policy ->
      let engine = W.Workload.replay ~policy built trace in
      Table.add_row table (Metrics.row (Metrics.of_engine engine)))
    policies;
  Table.print table;
  print_endline
    "\nReading guide: 'ifp+/-' are indirect flows propagated/blocked;\n\
     'detected' counts bytes carrying both netflow and export-table tags\n\
     (non-zero only for attack workloads); 'mse' is the tag-balancing\n\
     fairness metric (lower = more balanced)."
