(* Operating MITOS under a pollution budget.

   tau is not a magic constant - it is an operating point. This example
   runs the network benchmark three ways:

   1. a fixed tau that blocks too much,
   2. a fixed tau that propagates everything,
   3. the adaptive controller steering tau toward a pollution budget,

   and prints the live taint timeline plus the closed-form propagation
   thresholds (Mitos.Analysis) at the final operating point, so you can
   see exactly where each tag type's cutoff landed.

   Run with: dune exec examples/budget_tracking.exe *)

open Mitos_dift
module W = Mitos_workload
module Calib = Mitos_experiments.Calib
module TS = Mitos_util.Timeseries

let budget = 2e-8 (* pollution fraction of N_R *)

let run_one label policy final_params =
  let built = W.Netbench.build ~seed:Calib.netbench_seed () in
  let engine = W.Workload.engine_of ~policy built in
  let timeline = Metrics.attach_timeline ~sample_every:2048 engine in
  Engine.attach engine (W.Workload.machine_of built);
  ignore (Engine.run engine);
  let c = Engine.counters engine in
  let params = final_params () in
  let pollution =
    Mitos.Cost.weighted_pollution params (Engine.stats engine)
  in
  Printf.printf "%-28s ifp +%d/-%d   pollution %.3g of budget %.3g\n" label
    c.Engine.ifp_propagated c.Engine.ifp_blocked
    (pollution /. float_of_int params.Mitos.Params.total_tag_space)
    budget;
  Printf.printf "  copies over time:  %s\n"
    (TS.sparkline timeline.Metrics.copies 48);
  Printf.printf "  tainted bytes:     %s\n\n"
    (TS.sparkline timeline.Metrics.tainted 48);
  (params, pollution)

let () =
  ignore
    (run_one "fixed tau=1 (strict)"
       (Policies.mitos (Calib.sensitivity_params ~tau:1.0 ()))
       (fun () -> Calib.sensitivity_params ~tau:1.0 ()));
  ignore
    (run_one "fixed tau=0.01 (permissive)"
       (Policies.mitos (Calib.sensitivity_params ~tau:0.01 ()))
       (fun () -> Calib.sensitivity_params ~tau:0.01 ()));
  let controller =
    Mitos.Adaptive.create ~gain:0.3 ~target_pollution:budget
      (Calib.sensitivity_params ~tau:1.0 ())
  in
  let params, pollution =
    run_one
      (Printf.sprintf "adaptive (budget %.0e)" budget)
      (Policies.mitos_adaptive ~update_period:128 controller)
      (fun () -> Mitos.Adaptive.params controller)
  in
  Printf.printf "adaptive controller settled at tau = %.4g after %d updates.\n"
    (Mitos.Adaptive.tau controller)
    (Mitos.Adaptive.observations controller);
  print_endline
    "\nClosed-form propagation thresholds n* at the final operating point\n\
     (a tag of the type propagates at an indirect flow while its copy\n\
     count is below n*):";
  List.iter
    (fun (ty, nstar) ->
      Printf.printf "  %-14s %s\n"
        (Mitos_tag.Tag_type.to_string ty)
        (if Float.is_finite nstar then Printf.sprintf "%.1f" nstar
         else "unbounded"))
    (Mitos.Analysis.describe params ~pollution)
