examples/budget_tracking.ml: Engine Float List Metrics Mitos Mitos_dift Mitos_experiments Mitos_tag Mitos_util Mitos_workload Policies Printf
