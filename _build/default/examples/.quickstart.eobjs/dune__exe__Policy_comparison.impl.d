examples/policy_comparison.ml: Array List Metrics Mitos_dift Mitos_experiments Mitos_util Mitos_workload Policies Printf String Sys
