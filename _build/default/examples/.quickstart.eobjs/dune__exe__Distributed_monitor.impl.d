examples/distributed_monitor.ml: Array List Mitos_dift Mitos_distrib Mitos_experiments Mitos_tag Mitos_util Mitos_workload Printf Sys
