examples/distributed_monitor.mli:
