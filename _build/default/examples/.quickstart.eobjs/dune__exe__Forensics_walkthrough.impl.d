examples/forensics_walkthrough.ml: Engine List Mitos_dift Mitos_experiments Mitos_isa Mitos_system Mitos_tag Mitos_workload Printf Tag Tag_type Taint_map
