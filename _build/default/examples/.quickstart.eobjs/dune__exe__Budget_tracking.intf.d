examples/budget_tracking.mli:
