examples/forensics_walkthrough.mli:
