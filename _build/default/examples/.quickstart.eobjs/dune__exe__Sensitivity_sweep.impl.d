examples/sensitivity_sweep.ml: Array List Metrics Mitos Mitos_dift Mitos_experiments Mitos_replay Mitos_util Mitos_workload Policies Printf Sys
