examples/quickstart.mli:
