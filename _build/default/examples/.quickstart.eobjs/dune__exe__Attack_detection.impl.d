examples/attack_detection.ml: Array Engine List Metrics Mitos_dift Mitos_experiments Mitos_system Mitos_tag Mitos_workload Policies Printf Sys Taint_map
