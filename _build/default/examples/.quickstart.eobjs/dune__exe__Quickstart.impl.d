examples/quickstart.ml: Engine List Metrics Mitos Mitos_dift Mitos_system Mitos_tag Mitos_util Mitos_workload Policies Printf String
