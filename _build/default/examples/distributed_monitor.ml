(* MITOS across a distributed system.

   Four nodes each run their own workload under their own DIFT engine;
   the undertainting term of every decision uses exact local counts,
   while the overtainting term reads a shared pollution estimate that
   nodes publish only every SYNC steps - the "globally available
   variable" of the paper's scalability argument (SIV-B).

   Run with:
     dune exec examples/distributed_monitor.exe            (sync = 500)
     dune exec examples/distributed_monitor.exe -- 10000   (stale sync) *)

module Cluster = Mitos_distrib.Cluster
module W = Mitos_workload
module Calib = Mitos_experiments.Calib
module Metrics = Mitos_dift.Metrics
module Table = Mitos_util.Table

let () =
  let sync_period =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 500
  in
  (* a heterogeneous fleet: two download nodes, a file server, a
     compression node *)
  (* a heterogeneous fleet with one compromised machine (node 3) *)
  let nodes =
    [
      W.Crypto.build ~seed:60 ();
      W.Compress.build ~seed:61 ();
      W.Filebench.build ~seed:62 ();
      W.Attack.build W.Attack.Reverse_tcp_rc4 ~seed:63 ();
    ]
  in
  Printf.printf
    "Running %d nodes, publishing pollution every %d steps...\n\n"
    (List.length nodes) sync_period;
  let cluster =
    Cluster.create
      ~watch:(Mitos_tag.Tag_type.Network, Mitos_tag.Tag_type.Export_table)
      ~params:Calib.attack_params ~sync_period nodes
  in
  let rounds = Cluster.run cluster in
  let table =
    Table.create
      ~header:[ "node"; "steps"; "copies"; "ifp+"; "ifp-"; "tainted" ]
      ()
  in
  List.iteri
    (fun i (s : Metrics.summary) ->
      Table.add_row table
        [
          string_of_int i;
          string_of_int s.Metrics.steps;
          string_of_int s.Metrics.total_copies;
          string_of_int s.Metrics.ifp_propagated;
          string_of_int s.Metrics.ifp_blocked;
          string_of_int s.Metrics.tainted_bytes;
        ])
    (Cluster.summaries cluster);
  Table.print table;
  Printf.printf
    "\n%d rounds, %d pollution syncs, global estimate %.1f copies.\n" rounds
    (Cluster.syncs_performed cluster)
    (Mitos_distrib.Estimator.global (Cluster.estimator cluster));
  (match Cluster.first_alert cluster with
  | Some (node, alert) ->
    Printf.printf
      "ALERT: node %d tripped the netflow+export-table wire at step %d \
       (addr %#x) - %d alert bytes cluster-wide.\n"
      node alert.Mitos_dift.Engine.alert_step
      alert.Mitos_dift.Engine.alert_addr
      (List.length (Cluster.alerts cluster))
  | None -> print_endline "no confluence alerts anywhere in the cluster.");
  print_endline
    "Try a much larger sync period: decisions barely change, because the\n\
     single global scalar moves slowly relative to per-flow decisions -\n\
     that is what makes MITOS practical on large distributed systems."
