(* Quickstart: the paper's Fig. 1 scenario end to end.

   A tainted string arrives from the network and is converted through a
   lookup table. Every converted byte is produced by a load whose
   *address* is tainted — an indirect flow. We run the same execution
   under three propagation policies and watch what each one knows about
   the output buffer.

   Run with: dune exec examples/quickstart.exe *)

open Mitos_dift
module W = Mitos_workload

let input = "This string is tainted"

let run_with policy =
  (* Build the workload fresh per run: the OS streams are consumed. *)
  let built = W.Lookup_table.build ~input ~seed:1 () in
  let engine = W.Workload.run_live ~policy built in
  let shadow = Engine.shadow engine in
  let tainted_out = ref 0 in
  for a = W.Mem.buf_out to W.Mem.buf_out + String.length input - 1 do
    if Mitos_tag.Shadow.is_tainted_addr shadow a then incr tainted_out
  done;
  (Metrics.of_engine engine, !tainted_out)

let () =
  Printf.printf "Input (tainted, from the network): %S\n\n" input;
  (* The MITOS policy needs the model inputs of the paper's Table I:
     alpha (fairness), beta (overtainting steepness), tau (the
     under/over trade-off), and the tag-space size N_R. *)
  let params =
    Mitos.Params.make ~alpha:1.5 ~beta:2.0 ~tau:0.1 ~tau_scale:5e4
      ~total_tag_space:(4 * 1024 * 1024 * 1024 * 10)
      ~mem_capacity:Mitos_system.Layout.mem_size ()
  in
  let table =
    Mitos_util.Table.create
      ~header:[ "policy"; "tainted output bytes"; "copies"; "ifp+"; "ifp-" ]
      ()
  in
  List.iter
    (fun policy ->
      let summary, tainted_out = run_with policy in
      Mitos_util.Table.add_row table
        [
          summary.Metrics.policy;
          Printf.sprintf "%d / %d" tainted_out (String.length input);
          string_of_int summary.Metrics.total_copies;
          string_of_int summary.Metrics.ifp_propagated;
          string_of_int summary.Metrics.ifp_blocked;
        ])
    [ Policies.faros; Policies.propagate_all; Policies.mitos params ];
  Mitos_util.Table.print table;
  print_newline ();
  print_endline
    "faros (no indirect flows) loses ALL taint across the table lookup -\n\
     the translated string looks clean even though it is a pure function\n\
     of tainted input. propagate-all keeps everything (and in a big\n\
     system, overtaints). MITOS decides per flow with the Eq. (8)\n\
     marginal: here the tag is young (few copies), so its undertainting\n\
     cost dominates and the flows propagate - while the same policy\n\
     would start blocking once the tag became overpropagated."
