(* Sensitivity analysis at the command line: record the network
   benchmark once, then replay it under a parameter sweep, exactly the
   methodology of the paper's SV-B (record once with PANDA, replay with
   different MITOS inputs).

   Run with:
     dune exec examples/sensitivity_sweep.exe            (tau sweep)
     dune exec examples/sensitivity_sweep.exe -- alpha   (alpha sweep)
     dune exec examples/sensitivity_sweep.exe -- u       (u_netflow sweep) *)

open Mitos_dift
module W = Mitos_workload
module Calib = Mitos_experiments.Calib
module Table = Mitos_util.Table

let replay built trace params =
  let engine = W.Workload.replay ~policy:(Policies.mitos params) built trace in
  Metrics.of_engine engine

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "tau" in
  print_endline "Recording the network benchmark once...";
  let built = W.Netbench.build ~seed:Calib.netbench_seed () in
  let trace = W.Workload.record built in
  Printf.printf "Recorded %d instructions; replaying the %s sweep.\n\n"
    (Mitos_replay.Trace.length trace)
    mode;
  let table =
    Table.create
      ~header:[ mode; "ifp propagated"; "ifp blocked"; "rate"; "copies"; "MSE" ]
      ()
  in
  let sweep =
    match mode with
    | "alpha" ->
      List.map
        (fun alpha ->
          (Printf.sprintf "%g" alpha, Calib.sensitivity_params ~alpha ()))
        [ 0.5; 1.0; 1.5; 2.0; 3.0; 4.0 ]
    | "u" ->
      List.map
        (fun u_net ->
          (Printf.sprintf "%g" u_net, Calib.sensitivity_params ~tau:1.0 ~u_net ()))
        [ 1.0; 2.0; 5.0; 10.0; 25.0; 50.0; 100.0 ]
    | _ ->
      List.map
        (fun tau -> (Printf.sprintf "%g" tau, Calib.sensitivity_params ~tau ()))
        [ 1.0; 0.5; 0.1; 0.05; 0.01 ]
  in
  List.iter
    (fun (label, params) ->
      let s = replay built trace params in
      Table.add_row table
        [
          label;
          string_of_int s.Metrics.ifp_propagated;
          string_of_int s.Metrics.ifp_blocked;
          Printf.sprintf "%.1f%%" (100.0 *. Metrics.propagation_rate s);
          string_of_int s.Metrics.total_copies;
          Printf.sprintf "%.3g" s.Metrics.fairness.Mitos.Fairness.mse;
        ])
    sweep;
  Table.print table
