open Mitos_tag
module Rng = Mitos_util.Rng
module Minijson = Mitos_util.Minijson
module Registry = Mitos_obs.Registry
module Histogram = Mitos_obs.Histogram
module Obs = Mitos_obs.Obs
module Propagation = Mitos_obs.Propagation

type open_loop = {
  rate_rps : float;
  pareto_alpha : float;
  diurnal_amp : float;
  diurnal_period_s : float;
}

let default_open_loop =
  { rate_rps = 500.0; pareto_alpha = 1.5; diurnal_amp = 0.0;
    diurnal_period_s = 60.0 }

type config = {
  requests : int;
  batch : int;
  candidates : int;
  space : int;
  publish_every : int;
  node : int;
  seed : int;
  propagation : bool;
  open_loop : open_loop option;
}

let default_config =
  {
    requests = 5000;
    batch = 10;
    candidates = 6;
    space = 4;
    publish_every = 100;
    node = 0;
    seed = 7;
    propagation = false;
    open_loop = None;
  }

type report = {
  requests : int;
  decisions : int;
  remote_errors : int;
  retries : int;
  elapsed_seconds : float;
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  throughput_rps : float;
  trace_id : string option;
  offered_rps : float option;
  max_lag_ms : float option;
}

let gen_tag rng =
  Tag.make (Rng.pick_list rng Tag_type.all) (Rng.int rng 10_000)

let gen_decide rng cfg : Wire.decide_request =
  let n = 1 + Rng.int rng (max 1 cfg.candidates) in
  let candidates = List.init n (fun _ -> (gen_tag rng, Rng.int rng 64)) in
  {
    space = Rng.int rng (cfg.space + 1);
    pollution = Rng.float rng 1000.0;
    candidates;
  }

let run ?(config = default_config) ?registry ?client_timeout
    ?(obs = Obs.disabled) endpoint =
  if config.requests < 1 then invalid_arg "Loadgen.run: requests must be >= 1";
  if config.batch < 1 then invalid_arg "Loadgen.run: batch must be >= 1";
  (match config.open_loop with
  | Some o when o.rate_rps <= 0.0 ->
    invalid_arg "Loadgen.run: open-loop rate must be positive"
  | Some o when o.pareto_alpha <= 1.0 ->
    invalid_arg "Loadgen.run: open-loop pareto alpha must be > 1"
  | Some o when o.diurnal_period_s <= 0.0 ->
    invalid_arg "Loadgen.run: open-loop diurnal period must be positive"
  | _ -> ());
  let reg = match registry with Some r -> r | None -> Registry.create () in
  let latency =
    Registry.histogram reg ~help:"client-observed round-trip latency"
      ~lo:100.0 ~growth:2.0 ~buckets:32 "mitos_net_client_latency_ns"
  in
  let rng = Rng.create config.seed in
  (* the arrival process draws from its own stream so the decide mix
     stays byte-identical to a closed-loop run of the same seed *)
  let arrival_rng = Rng.create (config.seed lxor 0x4f70656e) in
  let propagation =
    if config.propagation then
      Some (Propagation.create ~seed:config.seed (Obs.clock obs))
    else None
  in
  match
    Client.connect ?timeout:client_timeout ~obs ?propagation ~registry:reg
      endpoint
  with
  | Error _ as e -> e
  | Ok client ->
    let decisions = ref 0 and remote_errors = ref 0 in
    let fatal = ref None in
    let timed thunk =
      let t0 = Unix.gettimeofday () in
      match thunk () with
      | Ok () -> Histogram.observe latency ((Unix.gettimeofday () -. t0) *. 1e9)
      | Error (Client.Remote _) -> incr remote_errors
      | Error err -> fatal := Some err
    in
    let t_start = Unix.gettimeofday () in
    (* Open-loop pacing: arrivals follow a seeded Pareto/diurnal
       schedule independent of service completions. When the service
       falls behind the schedule we issue immediately (never skip) and
       record the lag — the open-loop tell that a closed loop hides. *)
    let next_at = ref t_start in
    let max_lag = ref 0.0 in
    let pace () =
      match config.open_loop with
      | None -> ()
      | Some o ->
        let virt = !next_at -. t_start in
        let shape =
          Float.max 0.1
            (1.0
            +. o.diurnal_amp
               *. sin (2.0 *. Float.pi *. virt /. o.diurnal_period_s))
        in
        let mean = 1.0 /. (o.rate_rps *. shape) in
        let xm = mean *. (o.pareto_alpha -. 1.0) /. o.pareto_alpha in
        next_at := !next_at +. Rng.pareto arrival_rng ~alpha:o.pareto_alpha ~xm;
        let now = Unix.gettimeofday () in
        if now < !next_at then Unix.sleepf (!next_at -. now)
        else max_lag := Float.max !max_lag (now -. !next_at)
    in
    let i = ref 1 in
    while !fatal = None && !i <= config.requests do
      pace ();
      timed (fun () ->
          let batch = List.init config.batch (fun _ -> gen_decide rng config) in
          match Client.decide client batch with
          | Ok _ ->
            decisions := !decisions + config.batch;
            Ok ()
          | Error err -> Error err);
      (* cluster traffic shape: a periodic publish rides along, on top
         of (not instead of) the decide stream *)
      if !fatal = None && config.publish_every > 0
         && !i mod config.publish_every = 0
      then
        timed (fun () ->
            match
              Client.publish client ~node:config.node (Rng.float rng 10.0)
            with
            | Ok _ -> Ok ()
            | Error err -> Error err);
      incr i
    done;
    let elapsed = Unix.gettimeofday () -. t_start in
    let retries = Client.retries_used client in
    let trace_id = Client.last_trace_id client in
    Client.close client;
    (match !fatal with
    | Some err -> Error err
    | None ->
      Ok
        {
          requests = config.requests;
          decisions = !decisions;
          remote_errors = !remote_errors;
          retries;
          elapsed_seconds = elapsed;
          mean_ns = Histogram.mean latency;
          p50_ns = Histogram.quantile latency 0.5;
          p95_ns = Histogram.quantile latency 0.95;
          p99_ns = Histogram.quantile latency 0.99;
          throughput_rps =
            (if elapsed > 0.0 then float_of_int config.requests /. elapsed
             else 0.0);
          trace_id;
          offered_rps =
            (match config.open_loop with
            | None -> None
            | Some _ ->
              let scheduled = !next_at -. t_start in
              Some
                (if scheduled > 0.0 then
                   float_of_int config.requests /. scheduled
                 else 0.0));
          max_lag_ms =
            (match config.open_loop with
            | None -> None
            | Some _ -> Some (!max_lag *. 1e3));
        })

let render r =
  String.concat "\n"
    [
      Printf.sprintf "request frames:    %d (%.0f/s)" r.requests
        r.throughput_rps;
      Printf.sprintf "decision requests: %d" r.decisions;
      Printf.sprintf "remote errors:     %d" r.remote_errors;
      Printf.sprintf "retries:           %d" r.retries;
      "retries exhausted: 0";
      Printf.sprintf "latency ns:        mean=%.0f p50=%.0f p95=%.0f p99=%.0f"
        r.mean_ns r.p50_ns r.p95_ns r.p99_ns;
      Printf.sprintf "elapsed:           %.3fs" r.elapsed_seconds;
      "";
    ]
  ^ (match (r.offered_rps, r.max_lag_ms) with
    (* only present in open-loop mode, so closed-loop output stays
       byte-identical *)
    | Some offered, Some lag ->
      Printf.sprintf "open loop:         offered=%.0f/s max lag=%.1fms\n"
        offered lag
    | _ -> "")
  ^
  (* greppable by the CI trace-stitch assertion; only present with
     propagation on, so existing output stays byte-identical *)
  match r.trace_id with
  | None -> ""
  | Some id -> Printf.sprintf "sample trace id:   %s\n" id

(* -- BENCH_decisions.json merge ---------------------------------------- *)

let render_json ~indent v = Minijson.render ~indent v

let bench_row ~batch r =
  Minijson.Obj
    [
      ("batch", Minijson.Num (float_of_int batch));
      ("requests", Num (float_of_int r.requests));
      ("mean_ns", Num (Float.round r.mean_ns));
      ("p50_ns", Num (Float.round r.p50_ns));
      ("p95_ns", Num (Float.round r.p95_ns));
      ("p99_ns", Num (Float.round r.p99_ns));
      ("requests_per_sec", Num (Float.round r.throughput_rps));
    ]

let merge_into_bench_json ~path ~jobs r =
  let batch =
    if r.requests > 0 then
      max 1 (int_of_float (Float.round
                             (float_of_int r.decisions
                             /. float_of_int r.requests)))
    else 1
  in
  let doc =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Minijson.parse_result text with
      | Ok (Minijson.Obj fields) -> fields
      | Ok _ -> failwith (path ^ ": expected a JSON object")
      | Error msg -> failwith (path ^ ": " ^ msg)
    end
    else
      [
        ("schema", Minijson.Str "mitos-bench-decisions/1");
        ("jobs", Minijson.Num (float_of_int jobs));
      ]
  in
  let row = bench_row ~batch r in
  let doc =
    if List.mem_assoc "net_decide_batch" doc then
      List.map
        (fun (k, v) -> if k = "net_decide_batch" then (k, row) else (k, v))
        doc
    else doc @ [ ("net_decide_batch", row) ]
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (render_json ~indent:0 (Minijson.Obj doc));
      output_string oc "\n")
