(** The multi-domain MITOS decision server.

    Turns the Eq. (8) decisioning core into a service: clients send
    batched {!Wire.Decide} requests carrying candidate tag-sets and
    local counts; the server answers with per-candidate marginals and
    verdicts computed by {!Mitos.Decision.alg2} under its own
    parameters. The server also hosts a {!Mitos_distrib.Estimator} —
    the paper's "globally available" pollution scalar (§IV-B) — which
    cluster nodes feed through {!Wire.Publish} and read back through
    {!Wire.Read_global}; a decide request's effective pollution is the
    client-supplied local value {e plus} the estimator's global sum.

    {b Shape.} One acceptor domain (select + accept, with a stop
    tick), [workers] worker domains draining accepted connections off
    a {!Mitos_parallel.Executor}. Each connection is served by one
    worker at a time: a read-decode-decide-respond loop bounded by a
    per-connection read timeout and the {!Wire.unframe} max-frame
    guard. [workers = 0] serves connections on the acceptor domain.

    On a [Memory] endpoint none of that machinery exists: {!start}
    registers {!handle_body} as a loopback handler and requests run
    synchronously on the caller's domain — the deterministic twin the
    tests and {!Netcluster} use.

    {b Telemetry.} Per-request counters and latency histograms land in
    the supplied {!Mitos_obs.Registry}: [mitos_net_requests_total{op}],
    [mitos_net_decisions_total], [mitos_net_errors_total],
    [mitos_net_connections_total] and [mitos_net_request_ns{op}]
    (whose p50/p95/p99 appear in the Prometheus exposition). *)

type config = {
  workers : int;  (** worker domains; 0 serves on the acceptor *)
  nodes : int;  (** estimator slots for publish/read *)
  estimator_shards : int;
      (** estimator shard count (≥ 1); publishes to different shards
          stop serializing on one lock, and the decide path's global
          read is lock-free at any shard count. 1 keeps the global
          fold bit-identical to the unsharded estimator. *)
  read_timeout : float;  (** per-connection, seconds *)
  max_frame : int;  (** {!Wire.unframe} bound *)
  node_id : string;
      (** the id this node reports in {!Wire.Telemetry} replies — the
          [node] label of its series in a federated exposition *)
}

val default_config : config
(** 4 workers, 16 nodes, 1 estimator shard,
    {!Mitos_obs.Netio.default_timeout} read timeout,
    {!Wire.default_max_frame}, node id ["node0"]. *)

type t
(** The service state: parameters, estimator, counters. Independent of
    any listener — one [t] can serve a loopback name and a TCP port at
    once, and {!handle_body} can be called directly. *)

val create :
  ?config:config ->
  ?registry:Mitos_obs.Registry.t ->
  ?obs:Mitos_obs.Obs.t ->
  params:Mitos.Params.t ->
  unit ->
  t
(** [registry] defaults to a fresh one (get it back with
    {!registry}). [obs] (default {!Mitos_obs.Obs.disabled}) records
    one [server.<op>] span per handled request, stamped with the trace
    context of the originating client when the request carried one;
    give it a real clock so span timestamps line up across processes.
    Keep it disabled where determinism matters — the loopback cluster
    contract does. *)

val registry : t -> Mitos_obs.Registry.t
val estimator : t -> Mitos_distrib.Estimator.t
val config : t -> config
val obs : t -> Mitos_obs.Obs.t

val set_health_probe : t -> (unit -> bool * string) -> unit
(** Wire the node's own SLO verdict into {!Wire.Query_telemetry}
    replies: the probe returns (healthy, rendered /healthz body) and
    is called per telemetry request, on whichever domain serves it —
    it must be safe to call concurrently. The default probe reports
    healthy with a "no SLO rules attached" body. *)

val handle_body : t -> string -> string
(** The whole service as a function: one request frame body in, one
    response frame body out. Decode failures and out-of-range nodes
    become {!Wire.Err} responses (with the request's id when it could
    be parsed, 0 otherwise); this never raises. Safe to call from any
    domain — the estimator serializes internally and counter updates
    are atomic. *)

(** {1 Listeners} *)

type listener

val start : t -> Transport.endpoint -> listener
(** Serve [t] on the endpoint. [Tcp]/[Unix_sock]: bind, listen and
    spawn the acceptor + workers (a TCP port of 0 lets the kernel
    pick; read it back with {!endpoint}). [Memory]: register the
    loopback handler, spawning nothing. Raises [Unix.Unix_error] if
    the address cannot be bound, [Invalid_argument] if the loopback
    name is taken. *)

val endpoint : listener -> Transport.endpoint
(** The endpoint as actually bound. *)

val stop : listener -> unit
(** Graceful shutdown: stop accepting, close the listening socket
    (unlinking a Unix-socket path), let in-flight requests finish,
    join the workers and the acceptor. Idempotent. *)
