(** The MITOS decision-service wire protocol.

    A versioned, length-prefixed binary codec for the request/response
    protocol spoken between {!Client} and {!Server} (and, in cluster
    mode, between nodes and the coordinator). The framing and every
    field use the repo's {!Mitos_util.Codec} LEB128 varints, so
    messages of mostly-small integers stay small; floats are 64-bit
    IEEE, so a pollution value published by a node and re-read by a
    policy is bit-exact — the property behind the loopback cluster's
    byte-identical-to-in-process contract.

    {b Frame layout} (byte-by-byte in DESIGN §11–12):

    {v
    varint  L        length of the body that follows
    -- body (L bytes) --
    byte    version  protocol version: 1 or 2
    varint  id       request id, echoed verbatim in the response
    byte    kind     message discriminator
    [trace]          v2 request bodies only: optional trace context
    ...              per-message payload
    v}

    Version 2 adds an optional trace context to {e request} bodies —
    a presence byte then two length-prefixed lowercase-hex strings
    (32-char trace id, 16-char span id) — so a client span and the
    server worker executing the request share one trace. Response
    bodies are unchanged. Version-1 bodies still decode (the trace is
    [None]); decoders accept both.

    {b Decoding is strict and bounded}: every failure is a typed
    {!error}, never an exception, and no decode path allocates the
    {e announced} size of anything — {!unframe} rejects an announced
    length beyond [max_frame] before touching the payload, and
    in-body strings/lists fail on the first missing byte. Trace ids
    are validated as strictly as every other field. Errors carry the
    byte offset where decoding failed. *)

open Mitos_tag
module Propagation = Mitos_obs.Propagation
module Snapshot = Mitos_obs.Registry.Snapshot

val version : int
(** Current protocol version (2). *)

val min_version : int
(** Oldest version decoders still accept (1). *)

val default_max_frame : int
(** 1 MiB — the default bound {!unframe} enforces on announced frame
    lengths. *)

(** Decode failures. [Truncated] from {!unframe} means "incomplete,
    read more bytes"; every other case is a protocol violation.
    [offset] is the byte position (within the buffer for {!unframe},
    within the body for body decoders) where decoding failed — it
    travels in the [Err] frame the server sends back, which is what
    makes v1/v2 interop bugs debuggable from the client side. *)
type error =
  | Truncated of { offset : int }
      (** input ends before the announced frame does *)
  | Oversized of { announced : int; limit : int }
      (** length prefix beyond [max_frame]; nothing was allocated *)
  | Bad_version of int  (** version byte we do not speak *)
  | Bad_kind of int  (** unknown message discriminator *)
  | Corrupt of { offset : int; msg : string }
      (** anything else: overlong varint, bad bool, unknown tag type,
          invalid trace id, trailing bytes, ... *)

val error_to_string : error -> string

(** {1 Messages} *)

(** One indirect-flow decision to make: the candidate tag-set of the
    flow, each tag with its local count [n_{T,I}], the free provenance
    [space] at the destination, and the client's local contribution to
    the weighted pollution (the server adds its estimator's global —
    see {!Server}). *)
type decide_request = {
  space : int;
  pollution : float;
  candidates : (Tag.t * int) list;
}

(** One per-candidate outcome, mirroring
    {!Mitos.Decision.ranked}: decision-order position, decision-time
    marginal and verdict. *)
type decided = {
  tag : Tag.t;
  marginal : float;
  verdict : Mitos.Decision.verdict;
}

type stats = {
  served : int;  (** request frames handled *)
  decided : int;  (** individual decision requests decided *)
  publishes : int;  (** pollution publishes accepted *)
  nodes : int;  (** estimator slots *)
  global : float;  (** current global pollution sum *)
}

(** A node's full telemetry cut, served to the fleet aggregator: its
    self-reported id, its own SLO verdict (flag + rendered /healthz
    body), and one {!Mitos_obs.Registry.Snapshot} as a compact binary
    body. The snapshot rides the same strict codec as every other
    field — truncated, oversized or internally inconsistent snapshots
    decode to typed {!error}s, never exceptions. *)
type telemetry = {
  node : string;
  healthy : bool;
  health : string;
  snapshot : Snapshot.t;
}

type request =
  | Ping
  | Decide of decide_request list  (** batched *)
  | Publish of { node : int; value : float }
  | Read_global
  | Read_node of int
  | Query_stats
  | Query_telemetry

type response =
  | Pong
  | Decisions of decided list list  (** one list per batched request *)
  | Published of float  (** global sum after the publish *)
  | Global of float
  | Node_value of float
  | Stats of stats
  | Telemetry of telemetry
  | Err of string  (** server-side refusal, e.g. node out of range *)

val request_kind : request -> string
(** Stable lowercase label ("ping", "decide", ...) — used for the
    per-operation metric labels. *)

(** {1 Encoding} *)

val encode_request :
  ?version:int -> ?trace:Propagation.context -> id:int -> request -> string
(** One complete frame, length prefix included. [version] defaults to
    the current version; [?trace] attaches a trace context (v2 only —
    raises [Invalid_argument] if [version < 2] and a trace is given). *)

val encode_response : id:int -> response -> string

val encode_request_body :
  ?version:int -> ?trace:Propagation.context -> id:int -> request -> string
(** The frame body alone — what {!Transport.send} expects (the
    transport adds the length prefix where the medium needs one). *)

val encode_response_body : id:int -> response -> string

val frame : string -> string
(** Prefix an already-encoded body with its varint length — what the
    socket transports put on the wire. *)

(** {1 Decoding} *)

val unframe :
  ?max_frame:int -> string -> pos:int -> (string * int, error) result
(** Extract one frame body from a byte buffer starting at [pos];
    returns the body and the position just past the frame.
    [Error Truncated] when the buffer holds only part of a frame (the
    transport reads more and retries); [Error (Oversized _)] when the
    announced length exceeds [max_frame]. *)

val decode_request :
  string -> (int * Propagation.context option * request, error) result
(** Decode an unframed body to [(id, trace, request)]. The trace is
    [None] for v1 bodies and v2 bodies sent without one. *)

val decode_response : string -> (int * response, error) result

val decode_request_frame :
  ?max_frame:int -> string ->
  (int * Propagation.context option * request, error) result
(** {!unframe} + {!decode_request}, requiring the input to be exactly
    one frame (trailing bytes are [Corrupt]). *)

val decode_response_frame :
  ?max_frame:int -> string -> (int * response, error) result
