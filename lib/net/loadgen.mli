(** Seeded synthetic load for the decision service.

    Drives a {!Client} with a deterministic request mix — mostly
    batched decide requests over random candidate tag-sets, with a
    periodic pollution publish mixed in (the cluster traffic shape) —
    and measures client-observed round-trip latency into a histogram.
    The {e request stream} is a pure function of the seed; the
    latencies of course are not.

    The report lands three ways: a {!render}ed human summary, the
    supplied registry ([mitos_net_client_latency_ns] histogram, whose
    p50/p95/p99 appear in the Prometheus exposition), and optionally a
    ["net_decide_batch"] row merged into [BENCH_decisions.json] so
    [mitos-cli bench compare] gates service-path latency like every
    other benchmarked surface. *)

type config = {
  requests : int;  (** request frames to issue *)
  batch : int;  (** decide requests per frame *)
  candidates : int;  (** max candidate tags per decide request *)
  space : int;  (** max free provenance slots per request *)
  publish_every : int;  (** one publish per this many frames; 0 = never *)
  node : int;  (** estimator slot the publishes target *)
  seed : int;
  propagation : bool;
      (** mint a trace context per roundtrip (seeded with [seed]) and
          send it in the v2 request body *)
}

val default_config : config
(** 5000 requests of batch 10 (50k decisions), up to 6 candidates,
    space up to 4, a publish every 100 frames to node 0, seed 7,
    propagation off. *)

type report = {
  requests : int;  (** frames completed *)
  decisions : int;  (** individual decide requests answered *)
  remote_errors : int;  (** [Err] replies (should be 0) *)
  retries : int;  (** transport retries spent *)
  elapsed_seconds : float;
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  throughput_rps : float;  (** request frames per second *)
  trace_id : string option;
      (** trace id of the final roundtrip, when propagation was on —
          recent enough to still be in a bounded [/tracez] tail *)
}

val run :
  ?config:config ->
  ?registry:Mitos_obs.Registry.t ->
  ?client_timeout:float ->
  ?obs:Mitos_obs.Obs.t ->
  Transport.endpoint ->
  (report, Client.error) result
(** [Error] only when the connection cannot be established or retries
    are exhausted mid-run; [Err] replies are counted, not fatal.
    [obs] (default disabled) is handed to the {!Client} for per-op
    spans; with [config.propagation] set, its clock also seeds the
    trace-id generator. *)

val render : report -> string
(** Human summary; includes the greppable lines
    ["decision requests: N"] and ["retries exhausted: 0|1"] the CI
    smoke job asserts on, plus ["sample trace id: <id>"] when
    propagation was on. *)

val merge_into_bench_json : path:string -> jobs:int -> report -> unit
(** Read the bench JSON at [path] (creating a fresh document when the
    file is missing), replace or append the ["net_decide_batch"]
    object, and rewrite the file deterministically. Raises [Failure]
    on an unparsable existing file. *)
