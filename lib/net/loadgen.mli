(** Seeded synthetic load for the decision service.

    Drives a {!Client} with a deterministic request mix — mostly
    batched decide requests over random candidate tag-sets, with a
    periodic pollution publish mixed in (the cluster traffic shape) —
    and measures client-observed round-trip latency into a histogram.
    The {e request stream} is a pure function of the seed; the
    latencies of course are not.

    The report lands three ways: a {!render}ed human summary, the
    supplied registry ([mitos_net_client_latency_ns] histogram, whose
    p50/p95/p99 appear in the Prometheus exposition), and optionally a
    ["net_decide_batch"] row merged into [BENCH_decisions.json] so
    [mitos-cli bench compare] gates service-path latency like every
    other benchmarked surface. *)

(** Open-loop arrival shaping: request arrival times follow a seeded
    schedule {e independent of service completions} — Pareto
    (heavy-tail) inter-arrivals whose mean tracks a sinusoidal diurnal
    ramp. A service that falls behind the schedule is issued to
    immediately (arrivals are never skipped) and the accumulated lag
    is reported — the open-loop tell of saturation that a closed loop
    hides behind a lower throughput number. *)
type open_loop = {
  rate_rps : float;  (** mean offered request frames per second *)
  pareto_alpha : float;
      (** inter-arrival tail shape (must be > 1; smaller = burstier) *)
  diurnal_amp : float;
      (** rate swings between [(1 ± amp) * rate_rps] over a period *)
  diurnal_period_s : float;  (** seconds per diurnal cycle *)
}

val default_open_loop : open_loop
(** 500 frames/s, alpha 1.5, no diurnal swing over a 60s period. *)

type config = {
  requests : int;  (** request frames to issue *)
  batch : int;  (** decide requests per frame *)
  candidates : int;  (** max candidate tags per decide request *)
  space : int;  (** max free provenance slots per request *)
  publish_every : int;  (** one publish per this many frames; 0 = never *)
  node : int;  (** estimator slot the publishes target *)
  seed : int;
  propagation : bool;
      (** mint a trace context per roundtrip (seeded with [seed]) and
          send it in the v2 request body *)
  open_loop : open_loop option;
      (** [None] (the default) issues back-to-back, closed-loop; the
          arrival schedule draws from its own seeded stream, so the
          decide mix is byte-identical either way *)
}

val default_config : config
(** 5000 requests of batch 10 (50k decisions), up to 6 candidates,
    space up to 4, a publish every 100 frames to node 0, seed 7,
    propagation off, closed-loop. *)

type report = {
  requests : int;  (** frames completed *)
  decisions : int;  (** individual decide requests answered *)
  remote_errors : int;  (** [Err] replies (should be 0) *)
  retries : int;  (** transport retries spent *)
  elapsed_seconds : float;
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  throughput_rps : float;  (** request frames per second *)
  trace_id : string option;
      (** trace id of the final roundtrip, when propagation was on —
          recent enough to still be in a bounded [/tracez] tail *)
  offered_rps : float option;
      (** open-loop mode only: the rate the schedule actually offered *)
  max_lag_ms : float option;
      (** open-loop mode only: worst observed lag behind the arrival
          schedule (0 when the service kept up) *)
}

val run :
  ?config:config ->
  ?registry:Mitos_obs.Registry.t ->
  ?client_timeout:float ->
  ?obs:Mitos_obs.Obs.t ->
  Transport.endpoint ->
  (report, Client.error) result
(** [Error] only when the connection cannot be established or retries
    are exhausted mid-run; [Err] replies are counted, not fatal.
    [obs] (default disabled) is handed to the {!Client} for per-op
    spans; with [config.propagation] set, its clock also seeds the
    trace-id generator. *)

val render : report -> string
(** Human summary; includes the greppable lines
    ["decision requests: N"] and ["retries exhausted: 0|1"] the CI
    smoke job asserts on, plus ["sample trace id: <id>"] when
    propagation was on. *)

val merge_into_bench_json : path:string -> jobs:int -> report -> unit
(** Read the bench JSON at [path] (creating a fresh document when the
    file is missing), replace or append the ["net_decide_batch"]
    object, and rewrite the file deterministically. Raises [Failure]
    on an unparsable existing file. *)
