open Mitos_tag
module Codec = Mitos_util.Codec
module Propagation = Mitos_obs.Propagation
module Snapshot = Mitos_obs.Registry.Snapshot

let version = 2
let min_version = 1
let default_max_frame = 1 lsl 20

type error =
  | Truncated of { offset : int }
  | Oversized of { announced : int; limit : int }
  | Bad_version of int
  | Bad_kind of int
  | Corrupt of { offset : int; msg : string }

let error_to_string = function
  | Truncated { offset } -> Printf.sprintf "truncated frame at byte %d" offset
  | Oversized { announced; limit } ->
    Printf.sprintf "oversized frame: %d bytes announced (limit %d)" announced
      limit
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Bad_kind k -> Printf.sprintf "unknown message kind 0x%02x" k
  | Corrupt { offset; msg } ->
    Printf.sprintf "corrupt frame at byte %d: %s" offset msg

type decide_request = {
  space : int;
  pollution : float;
  candidates : (Tag.t * int) list;
}

type decided = {
  tag : Tag.t;
  marginal : float;
  verdict : Mitos.Decision.verdict;
}

type stats = {
  served : int;
  decided : int;
  publishes : int;
  nodes : int;
  global : float;
}

type telemetry = {
  node : string;
  healthy : bool;
  health : string;
  snapshot : Snapshot.t;
}

type request =
  | Ping
  | Decide of decide_request list
  | Publish of { node : int; value : float }
  | Read_global
  | Read_node of int
  | Query_stats
  | Query_telemetry

type response =
  | Pong
  | Decisions of decided list list
  | Published of float
  | Global of float
  | Node_value of float
  | Stats of stats
  | Telemetry of telemetry
  | Err of string

let request_kind = function
  | Ping -> "ping"
  | Decide _ -> "decide"
  | Publish _ -> "publish"
  | Read_global -> "global"
  | Read_node _ -> "node"
  | Query_stats -> "stats"
  | Query_telemetry -> "telemetry"

(* -- message discriminators ------------------------------------------- *)

let k_ping = 0x01
and k_decide = 0x02
and k_publish = 0x03
and k_global = 0x04
and k_node = 0x05
and k_stats = 0x06
and k_telemetry = 0x07

let k_pong = 0x81
and k_decisions = 0x82
and k_published = 0x83
and k_global_is = 0x84
and k_node_value = 0x85
and k_stats_reply = 0x86
and k_telemetry_reply = 0x87
and k_err = 0xFF

(* -- field codecs ------------------------------------------------------ *)

let enc_tag e tag =
  Codec.Enc.uint e (Tag_type.to_int (Tag.ty tag));
  Codec.Enc.uint e (Tag.id tag)

let dec_tag d =
  let ty_int = Codec.Dec.uint d in
  let ty =
    try Tag_type.of_int ty_int
    with Invalid_argument _ ->
      raise (Codec.Malformed (Printf.sprintf "unknown tag type %d" ty_int))
  in
  Tag.make ty (Codec.Dec.uint d)

let enc_decide_request e (r : decide_request) =
  Codec.Enc.uint e r.space;
  Codec.Enc.float e r.pollution;
  Codec.Enc.list e
    (fun (tag, count) ->
      enc_tag e tag;
      Codec.Enc.uint e count)
    r.candidates

let dec_decide_request d =
  let space = Codec.Dec.uint d in
  let pollution = Codec.Dec.float d in
  let candidates =
    Codec.Dec.list d (fun d ->
        let tag = dec_tag d in
        (tag, Codec.Dec.uint d))
  in
  { space; pollution; candidates }

let enc_decided e (r : decided) =
  enc_tag e r.tag;
  Codec.Enc.float e r.marginal;
  Codec.Enc.bool e (r.verdict = Mitos.Decision.Propagate)

let dec_decided d =
  let tag = dec_tag d in
  let marginal = Codec.Dec.float d in
  let verdict =
    if Codec.Dec.bool d then Mitos.Decision.Propagate else Mitos.Decision.Block
  in
  { tag; marginal; verdict }

(* -- framing ----------------------------------------------------------- *)

let frame body =
  let e = Codec.Enc.create ~initial_size:(String.length body + 4) () in
  Codec.Enc.uint e (String.length body);
  Codec.Enc.contents e ^ body

let unframe ?(max_frame = default_max_frame) buf ~pos =
  (* hand-rolled varint read so an incomplete prefix is Truncated, not
     an exception, and an oversized announcement never reaches the
     String.sub below *)
  let len = String.length buf in
  let rec length_prefix pos shift acc =
    if pos >= len then Error (Truncated { offset = pos })
    else if shift > Sys.int_size then
      Error (Corrupt { offset = pos; msg = "frame length varint too long" })
    else
      let b = Char.code buf.[pos] in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then Ok (acc, pos + 1)
      else length_prefix (pos + 1) (shift + 7) acc
  in
  match length_prefix pos 0 0 with
  | Error _ as e -> e
  | Ok (announced, body_pos) ->
    if announced < 0 || announced > max_frame then
      Error (Oversized { announced; limit = max_frame })
    else if body_pos + announced > len then Error (Truncated { offset = len })
    else Ok (String.sub buf body_pos announced, body_pos + announced)

(* -- trace context ----------------------------------------------------- *)

let enc_trace e (ctx : Propagation.context) =
  Codec.Enc.string e ctx.trace_id;
  Codec.Enc.string e ctx.span_id

(* Strict like every other field: ids must be exactly 32/16 lowercase
   hex chars, so a hostile peer cannot smuggle arbitrary bytes into
   span args or /tracez queries through the trace field. *)
let dec_trace d =
  let trace_id = Codec.Dec.string d in
  if not (Propagation.is_valid_trace_id trace_id) then
    raise (Codec.Malformed (Printf.sprintf "invalid trace id %S" trace_id));
  let span_id = Codec.Dec.string d in
  if not (Propagation.is_valid_span_id span_id) then
    raise (Codec.Malformed (Printf.sprintf "invalid span id %S" span_id));
  { Propagation.trace_id; span_id }

(* -- bodies ------------------------------------------------------------ *)

(* [has_trace]: v2 *request* bodies carry an optional trace context
   between kind and payload; response bodies never do (the client
   already knows the context it sent). v1 request bodies have no trace
   field either — encoding a context at version 1 is a caller bug. *)
let body ?(version = version) ?trace ~has_trace ~id kind payload =
  if version < 2 && trace <> None then
    invalid_arg "Wire: trace context requires protocol version >= 2";
  let e = Codec.Enc.create () in
  Codec.Enc.uint e version;
  Codec.Enc.uint e id;
  Codec.Enc.uint e kind;
  if version >= 2 && has_trace then Codec.Enc.option e (enc_trace e) trace;
  payload e;
  Codec.Enc.contents e

let encode_request_body ?version ?trace ~id req =
  let body ~id kind payload =
    body ?version ?trace ~has_trace:true ~id kind payload
  in
  (match req with
    | Ping -> body ~id k_ping (fun _ -> ())
    | Decide batch ->
      body ~id k_decide (fun e -> Codec.Enc.list e (enc_decide_request e) batch)
    | Publish { node; value } ->
      body ~id k_publish (fun e ->
          Codec.Enc.uint e node;
          Codec.Enc.float e value)
    | Read_global -> body ~id k_global (fun _ -> ())
    | Read_node node -> body ~id k_node (fun e -> Codec.Enc.uint e node)
    | Query_stats -> body ~id k_stats (fun _ -> ())
    | Query_telemetry -> body ~id k_telemetry (fun _ -> ()))

let encode_response_body ~id resp =
  let body ~id kind payload = body ~has_trace:false ~id kind payload in
  (match resp with
    | Pong -> body ~id k_pong (fun _ -> ())
    | Decisions batches ->
      body ~id k_decisions (fun e ->
          Codec.Enc.list e (fun one -> Codec.Enc.list e (enc_decided e) one)
            batches)
    | Published g -> body ~id k_published (fun e -> Codec.Enc.float e g)
    | Global g -> body ~id k_global_is (fun e -> Codec.Enc.float e g)
    | Node_value v -> body ~id k_node_value (fun e -> Codec.Enc.float e v)
    | Stats s ->
      body ~id k_stats_reply (fun e ->
          Codec.Enc.uint e s.served;
          Codec.Enc.uint e s.decided;
          Codec.Enc.uint e s.publishes;
          Codec.Enc.uint e s.nodes;
          Codec.Enc.float e s.global)
    | Telemetry r ->
      body ~id k_telemetry_reply (fun e ->
          Codec.Enc.string e r.node;
          Codec.Enc.bool e r.healthy;
          Codec.Enc.string e r.health;
          Snapshot.write e r.snapshot)
    | Err msg -> body ~id k_err (fun e -> Codec.Enc.string e msg))

let encode_request ?version ?trace ~id req =
  frame (encode_request_body ?version ?trace ~id req)

let encode_response ~id resp = frame (encode_response_body ~id resp)

let decode_body which ~read_trace decode_payload s =
  let d = Codec.Dec.of_string s in
  match
    let v = Codec.Dec.uint d in
    if v < min_version || v > version then Error (Bad_version v)
    else
      let id = Codec.Dec.uint d in
      let kind = Codec.Dec.uint d in
      let trace =
        if read_trace && v >= 2 then Codec.Dec.option d dec_trace else None
      in
      match decode_payload d kind with
      | None -> Error (Bad_kind kind)
      | Some msg ->
        Codec.Dec.expect_end d;
        Ok (id, trace, msg)
  with
  | result -> result
  | exception Codec.Malformed msg ->
    Error
      (Corrupt
         { offset = Codec.Dec.pos d;
           msg = Printf.sprintf "%s: %s" which msg })

let decode_request s =
  decode_body "request" ~read_trace:true
    (fun d kind ->
      if kind = k_ping then Some Ping
      else if kind = k_decide then
        Some (Decide (Codec.Dec.list d dec_decide_request))
      else if kind = k_publish then
        let node = Codec.Dec.uint d in
        let value = Codec.Dec.float d in
        Some (Publish { node; value })
      else if kind = k_global then Some Read_global
      else if kind = k_node then Some (Read_node (Codec.Dec.uint d))
      else if kind = k_stats then Some Query_stats
      else if kind = k_telemetry then Some Query_telemetry
      else None)
    s

let decode_response s =
  match
    decode_body "response" ~read_trace:false
      (fun d kind ->
      if kind = k_pong then Some Pong
      else if kind = k_decisions then
        Some (Decisions (Codec.Dec.list d (fun d -> Codec.Dec.list d dec_decided)))
      else if kind = k_published then Some (Published (Codec.Dec.float d))
      else if kind = k_global_is then Some (Global (Codec.Dec.float d))
      else if kind = k_node_value then Some (Node_value (Codec.Dec.float d))
      else if kind = k_stats_reply then
        let served = Codec.Dec.uint d in
        let decided = Codec.Dec.uint d in
        let publishes = Codec.Dec.uint d in
        let nodes = Codec.Dec.uint d in
        let global = Codec.Dec.float d in
        Some (Stats { served; decided; publishes; nodes; global })
      else if kind = k_telemetry_reply then
        let node = Codec.Dec.string d in
        let healthy = Codec.Dec.bool d in
        let health = Codec.Dec.string d in
        let snapshot = Snapshot.read d in
        Some (Telemetry { node; healthy; health; snapshot })
      else if kind = k_err then Some (Err (Codec.Dec.string d))
      else None)
      s
  with
  | Ok (id, _trace, resp) -> Ok (id, resp)
  | Error _ as e -> e

let exactly_one_frame ?max_frame decode s =
  match unframe ?max_frame s ~pos:0 with
  | Error _ as e -> e
  | Ok (body, pos) ->
    if pos <> String.length s then
      Error
        (Corrupt
           { offset = pos;
             msg = Printf.sprintf "%d bytes after frame" (String.length s - pos) })
    else decode body

let decode_request_frame ?max_frame s =
  exactly_one_frame ?max_frame decode_request s

let decode_response_frame ?max_frame s =
  exactly_one_frame ?max_frame decode_response s
