(** Pluggable frame transport for the decision service.

    A transport moves opaque {!Wire} frame bodies between a client and
    a server. Two families exist:

    - {b Sockets} ([Tcp]/[Unix_sock]): real kernel sockets through
      {!Mitos_obs.Netio}, with the shared [?timeout] convention
      applied to connect/read/write. What production and the CI smoke
      job use.
    - {b Loopback} ([Memory]): a process-local registry of named
      servers. [send] invokes the server's handler {e synchronously on
      the calling domain} and queues the response; [recv] pops it.
      No domains, no sockets, no buffering nondeterminism — a
      networked run over loopback is a deterministic function of its
      inputs, which is what lets {!Netcluster} promise byte-identical
      output to the in-process cluster.

    Frames on sockets are delimited exactly as {!Wire.unframe}
    expects (varint length + body); the loopback carries whole bodies
    and never splits them. *)

type endpoint =
  | Tcp of { host : string; port : int }
  | Unix_sock of string  (** Unix-domain socket path *)
  | Memory of string  (** loopback server name *)

val endpoint_to_string : endpoint -> string
(** ["tcp://host:port"], ["unix:///path"], ["mem://name"]. *)

val endpoint_of_string : string -> (endpoint, string) result
(** Accepts the three forms above; a bare ["host:port"] means TCP. *)

(** {1 Client connections} *)

type conn

val connect :
  ?timeout:float -> ?max_frame:int -> endpoint -> (conn, string) result
(** [Error] with a one-line message on refusal/timeout/unknown
    loopback name. The message distinguishes refusal from timeout
    (see {!Mitos_obs.Netio.connect_tcp} and {!connect_failure}) so a
    caller can tell a killed node from a slow one. [timeout] defaults
    to {!Mitos_obs.Netio.default_timeout} and governs every subsequent
    [send]/[recv] on the connection. *)

val connect_failure : string -> [ `Refused | `Timeout | `Unknown ]
(** Classify a connect (or retry-exhaustion "last") error message:
    [`Refused] when the peer actively turned the connection away — a
    TCP reset, or a loopback name with no registered server, i.e. the
    node is {e dead}; [`Timeout] when nothing answered within the
    timeout — the node is {e slow or partitioned}; [`Unknown]
    otherwise. Total over arbitrary strings. *)

val send : conn -> string -> (unit, string) result
(** Send one frame body (the transport adds the length prefix). On
    loopback this runs the server handler before returning. *)

val recv : conn -> (string, Wire.error) result
(** Receive one frame body. [Error Truncated] means the peer closed
    (or, on loopback, nothing was sent); [Corrupt] covers socket-level
    read failures and timeouts. *)

val close : conn -> unit
(** Idempotent. *)

val peer : conn -> string
(** Human-readable peer address, for error messages. *)

val of_fd :
  ?max_frame:int -> peer:string -> Unix.file_descr -> conn
(** Wrap an already-connected socket (the {!Server} accept path) in
    the same framed [send]/[recv] interface clients use. *)

(** {1 Loopback registry}

    Used by {!Server.start} when given a [Memory] endpoint; exposed so
    tests can plug bare handlers in. *)

module Loopback : sig
  val register : string -> (string -> string) -> unit
  (** [register name handler] installs a frame-body handler. Raises
      [Invalid_argument] if [name] is taken. *)

  val unregister : string -> unit
  val registered : string -> bool

  val handler : string -> (string -> string) option
  (** The installed handler, if any (the registry serializes lookups
      on a mutex; the handler itself runs outside it). *)
end
