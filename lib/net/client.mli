(** Blocking decision-service client with bounded, deterministic
    retry.

    One {!t} wraps one {!Transport} connection and issues one request
    at a time: encode, send, receive, match the echoed id. On a
    transport failure the client reconnects and retries up to
    [retries] times, sleeping a {e jitter-free} exponential backoff
    between attempts ([backoff * 2^attempt] seconds — deterministic so
    test runs and paired experiment arms behave identically; see
    {!backoff_schedule}). Retrying is safe because every request in
    the protocol is either read-only or idempotent-enough for the
    estimator semantics (a re-published value overwrites itself).

    Loopback connections never sleep between retries — a loopback
    failure is deterministic, so waiting cannot help. *)

type error =
  | Connect of string  (** could not (re)establish the connection *)
  | Closed  (** {!close} was called *)
  | Wire of Wire.error  (** undecodable response *)
  | Remote of string  (** server answered [Err] *)
  | Bad_reply of string  (** wrong id or response type for the request *)
  | Retries_exhausted of { attempts : int; last : string }
      (** every attempt failed; [last] describes the final one *)

val error_to_string : error -> string

type t

val connect :
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?max_frame:int ->
  ?obs:Mitos_obs.Obs.t ->
  ?propagation:Mitos_obs.Propagation.t ->
  ?registry:Mitos_obs.Registry.t ->
  Transport.endpoint ->
  (t, error) result
(** [timeout] per the {!Mitos_obs.Netio} convention (default 5s);
    [retries] additional attempts after the first failure (default 3);
    [backoff] base delay in seconds (default 0.05). [obs] (default
    {!Mitos_obs.Obs.disabled}) records one [client.<op>] span per
    roundtrip; [propagation] additionally mints a trace context per
    roundtrip, stamps it on the span and sends it in the v2 request
    body so the server's span carries the same trace id. [registry]
    surfaces retry behavior as counters — one
    [mitos_net_retries_total] increment per transport-level retry and
    one [mitos_net_retries_exhausted_total] per roundtrip that burned
    the whole budget — so the chaos judge (and [watch], through the
    exposition) can assert on retry pressure instead of scraping
    logs. Clients sharing a registry share the counters. *)

val last_trace_id : t -> string option
(** Trace id of the most recent roundtrip, when propagation is on. *)

val backoff_schedule : retries:int -> backoff:float -> float list
(** The exact delays a failing request sleeps through, in order —
    exposed so tests can assert determinism: [[backoff * 2^0;
    backoff * 2^1; ...]], [retries] entries. *)

val retries_used : t -> int
(** Transport-level attempts beyond the first, summed over the
    client's lifetime (the loadgen's "retries" column). *)

(** {1 Operations} *)

val ping : t -> (unit, error) result

val decide :
  t -> Wire.decide_request list -> (Wire.decided list list, error) result
(** One batched decision round-trip; the result lists are positionally
    aligned with the request list. *)

val publish : t -> node:int -> float -> (float, error) result
(** Returns the global sum after the publish. *)

val global : t -> (float, error) result
val read_node : t -> int -> (float, error) result
val stats : t -> (Wire.stats, error) result

val telemetry : t -> (Wire.telemetry, error) result
(** One {!Wire.Query_telemetry} roundtrip: the node's id, its own SLO
    verdict, and its full registry snapshot — the fleet aggregator's
    fetch primitive. *)

val close : t -> unit
(** Idempotent; subsequent operations return [Error Closed]. *)
