type error =
  | Connect of string
  | Closed
  | Wire of Wire.error
  | Remote of string
  | Bad_reply of string
  | Retries_exhausted of { attempts : int; last : string }

let error_to_string = function
  | Connect msg -> "connect failed: " ^ msg
  | Closed -> "client closed"
  | Wire err -> Wire.error_to_string err
  | Remote msg -> "server error: " ^ msg
  | Bad_reply msg -> "unexpected reply: " ^ msg
  | Retries_exhausted { attempts; last } ->
    Printf.sprintf "all %d attempts failed; last: %s" attempts last

module Obs = Mitos_obs.Obs
module Propagation = Mitos_obs.Propagation
module Registry = Mitos_obs.Registry

type t = {
  endpoint : Transport.endpoint;
  timeout : float option;
  retries : int;
  backoff : float;
  max_frame : int;
  obs : Obs.t;
  prop : Propagation.t option;
  retries_ctr : Registry.counter option;
  exhausted_ctr : Registry.counter option;
  mutable conn : Transport.conn option;
  mutable next_id : int;
  mutable retries_used : int;
  mutable last_trace : string option;
  mutable closed : bool;
}

let backoff_schedule ~retries ~backoff =
  List.init (max 0 retries) (fun i -> backoff *. (2.0 ** float_of_int i))

let retries_used t = t.retries_used

let reconnect t =
  match
    Transport.connect ?timeout:t.timeout ~max_frame:t.max_frame t.endpoint
  with
  | Ok conn ->
    t.conn <- Some conn;
    Ok conn
  | Error msg ->
    t.conn <- None;
    Error msg

let connect ?timeout ?(retries = 3) ?(backoff = 0.05)
    ?(max_frame = Wire.default_max_frame) ?(obs = Obs.disabled) ?propagation
    ?registry endpoint =
  if retries < 0 then invalid_arg "Client.connect: negative retries";
  let counter name help =
    Option.map (fun reg -> Registry.counter reg ~help name) registry
  in
  let t =
    {
      endpoint;
      timeout;
      retries;
      backoff;
      max_frame;
      obs;
      prop = propagation;
      retries_ctr =
        counter "mitos_net_retries_total"
          "transport-level client retries (attempts beyond the first)";
      exhausted_ctr =
        counter "mitos_net_retries_exhausted_total"
          "roundtrips that failed every attempt of the retry budget";
      conn = None;
      next_id = 1;
      retries_used = 0;
      last_trace = None;
      closed = false;
    }
  in
  match reconnect t with Ok _ -> Ok t | Error msg -> Error (Connect msg)

let last_trace_id t = t.last_trace

let close t =
  if not t.closed then begin
    t.closed <- true;
    Option.iter Transport.close t.conn;
    t.conn <- None
  end

(* One attempt: (re)use the connection, send, receive, decode, match
   the id. Transport-level failures come back as [Error msg] so the
   retry loop can distinguish them from protocol-level failures
   ([Ok (Error _)]), which retrying cannot fix. *)
let attempt t ?trace req =
  let id = t.next_id in
  match
    match t.conn with Some c -> Ok c | None -> reconnect t
  with
  | Error msg -> Error msg
  | Ok conn -> (
    match Transport.send conn (Wire.encode_request_body ?trace ~id req) with
    | Error msg -> Error msg
    | Ok () -> (
      match Transport.recv conn with
      | Error (Wire.Truncated _) ->
        Error (Transport.peer conn ^ ": closed early")
      | Error (Wire.Corrupt { msg = "read timeout"; _ }) ->
        Error (Transport.peer conn ^ ": read timeout")
      | Error err -> Ok (Error (Wire err))
      | Ok body -> (
        t.next_id <- id + 1;
        match Wire.decode_response body with
        | Error err -> Ok (Error (Wire err))
        | Ok (reply_id, _) when reply_id <> id ->
          Ok
            (Error
               (Bad_reply
                  (Printf.sprintf "response id %d for request %d" reply_id id)))
        | Ok (_, Wire.Err msg) -> Ok (Error (Remote msg))
        | Ok (_, resp) -> Ok (Ok resp))))

let drop_conn t =
  Option.iter Transport.close t.conn;
  t.conn <- None

let is_mem t = match t.endpoint with Transport.Memory _ -> true | _ -> false

let roundtrip t req =
  if t.closed then Error Closed
  else begin
    (* One trace context per logical roundtrip: retries of the same
       request reuse it, so the server-side span of whichever attempt
       succeeded stitches to this client span. *)
    let trace = Option.map Propagation.fresh t.prop in
    Option.iter (fun (c : Propagation.context) ->
        t.last_trace <- Some c.trace_id)
      trace;
    let rec go attempt_no =
      match attempt t ?trace req with
      | Ok (Ok resp) -> Ok resp
      | Ok (Error _ as protocol_failure) -> protocol_failure
      | Error msg ->
        drop_conn t;
        if attempt_no > t.retries then begin
          Option.iter Registry.incr t.exhausted_ctr;
          Error (Retries_exhausted { attempts = attempt_no; last = msg })
        end
        else begin
          t.retries_used <- t.retries_used + 1;
          Option.iter Registry.incr t.retries_ctr;
          if not (is_mem t) then
            Unix.sleepf (t.backoff *. (2.0 ** float_of_int (attempt_no - 1)));
          go (attempt_no + 1)
        end
    in
    let args =
      match trace with None -> [] | Some c -> Propagation.to_args c
    in
    Obs.with_span t.obs ~args ("client." ^ Wire.request_kind req) (fun () ->
        go 1)
  end

let bad_reply expected = Error (Bad_reply ("want " ^ expected))

let ping t =
  match roundtrip t Wire.Ping with
  | Ok Wire.Pong -> Ok ()
  | Ok _ -> bad_reply "pong"
  | Error _ as e -> e

let decide t batch =
  match roundtrip t (Wire.Decide batch) with
  | Ok (Wire.Decisions outcomes) ->
    if List.length outcomes = List.length batch then Ok outcomes
    else
      Error
        (Bad_reply
           (Printf.sprintf "%d decision lists for %d requests"
              (List.length outcomes) (List.length batch)))
  | Ok _ -> bad_reply "decisions"
  | Error _ as e -> e

let publish t ~node value =
  match roundtrip t (Wire.Publish { node; value }) with
  | Ok (Wire.Published g) -> Ok g
  | Ok _ -> bad_reply "published"
  | Error _ as e -> e

let global t =
  match roundtrip t Wire.Read_global with
  | Ok (Wire.Global g) -> Ok g
  | Ok _ -> bad_reply "global"
  | Error _ as e -> e

let read_node t node =
  match roundtrip t (Wire.Read_node node) with
  | Ok (Wire.Node_value v) -> Ok v
  | Ok _ -> bad_reply "node value"
  | Error _ as e -> e

let stats t =
  match roundtrip t Wire.Query_stats with
  | Ok (Wire.Stats s) -> Ok s
  | Ok _ -> bad_reply "stats"
  | Error _ as e -> e

let telemetry t =
  match roundtrip t Wire.Query_telemetry with
  | Ok (Wire.Telemetry r) -> Ok r
  | Ok _ -> bad_reply "telemetry"
  | Error _ as e -> e
