module Netio = Mitos_obs.Netio
module Registry = Mitos_obs.Registry
module Histogram = Mitos_obs.Histogram
module Obs = Mitos_obs.Obs
module Tracer = Mitos_obs.Tracer
module Propagation = Mitos_obs.Propagation
module Estimator = Mitos_distrib.Estimator
module Executor = Mitos_parallel.Executor

type config = {
  workers : int;
  nodes : int;
  estimator_shards : int;
  read_timeout : float;
  max_frame : int;
  node_id : string;
}

let default_config =
  {
    workers = 4;
    nodes = 16;
    estimator_shards = 1;
    read_timeout = Netio.default_timeout;
    max_frame = Wire.default_max_frame;
    node_id = "node0";
  }

(* per-operation metric handles, resolved once at create time *)
type op_metrics = { requests : Registry.counter; latency : Histogram.t }

type t = {
  config : config;
  params : Mitos.Params.t;
  reg : Registry.t;
  obs : Obs.t;
  (* Worker domains handle requests concurrently but the tracer is
     single-writer; completed server spans are recorded under this. *)
  trace_mu : Mutex.t;
  est : Estimator.t;
  per_op : (string * op_metrics) list;
  decisions_total : Registry.counter;
  errors_total : Registry.counter;
  connections_total : Registry.counter;
  served : int Atomic.t;
  decided : int Atomic.t;
  publishes : int Atomic.t;
  (* What Query_telemetry reports as the node's own SLO verdict;
     replaced by [set_health_probe] when a health watchdog is wired
     in. Read on whichever worker domain serves the request, so
     probes must be safe to call from any domain. *)
  mutable health_probe : unit -> bool * string;
}

let op_labels =
  [ "ping"; "decide"; "publish"; "global"; "node"; "stats"; "telemetry" ]

let create ?(config = default_config) ?registry ?(obs = Obs.disabled) ~params
    () =
  if config.workers < 0 then invalid_arg "Server.create: negative workers";
  if config.nodes < 1 then invalid_arg "Server.create: nodes must be >= 1";
  if config.estimator_shards < 1 then
    invalid_arg "Server.create: estimator_shards must be >= 1";
  let reg = match registry with Some r -> r | None -> Registry.create () in
  let per_op =
    List.map
      (fun op ->
        ( op,
          {
            requests =
              Registry.counter reg ~help:"decision-service requests handled"
                ~labels:[ ("op", op) ] "mitos_net_requests_total";
            latency =
              Registry.histogram reg
                ~help:"decision-service request handling latency"
                ~labels:[ ("op", op) ] ~lo:100.0 ~growth:2.0 ~buckets:32
                "mitos_net_request_ns";
          } ))
      op_labels
  in
  {
    config;
    params;
    reg;
    obs;
    trace_mu = Mutex.create ();
    est =
      Estimator.create ~shards:config.estimator_shards ~nodes:config.nodes ();
    per_op;
    decisions_total =
      Registry.counter reg ~help:"individual indirect-flow decisions served"
        "mitos_net_decisions_total";
    errors_total =
      Registry.counter reg ~help:"malformed frames and refused requests"
        "mitos_net_errors_total";
    connections_total =
      Registry.counter reg ~help:"connections accepted"
        "mitos_net_connections_total";
    served = Atomic.make 0;
    decided = Atomic.make 0;
    publishes = Atomic.make 0;
    health_probe = (fun () -> (true, "status: ok (no SLO rules attached)\n"));
  }

let registry t = t.reg
let estimator t = t.est
let set_health_probe t probe = t.health_probe <- probe
let config t = t.config
let obs t = t.obs

let rec atomic_add cell n =
  let seen = Atomic.get cell in
  if not (Atomic.compare_and_set cell seen (seen + n)) then atomic_add cell n

(* -- request semantics -------------------------------------------------- *)

let decide_one t (req : Wire.decide_request) =
  let count tag =
    match
      List.find_opt (fun (c, _) -> Mitos_tag.Tag.equal c tag) req.candidates
    with
    | Some (_, n) -> n
    | None -> 0
  in
  let env =
    { Mitos.Decision.count; pollution = req.pollution +. Estimator.global t.est }
  in
  let ranked =
    Mitos.Decision.alg2 t.params env ~space:req.space
      (List.map fst req.candidates)
  in
  List.map
    (fun (r : Mitos.Decision.ranked) ->
      { Wire.tag = r.tag; marginal = r.marginal; verdict = r.verdict })
    ranked

let handle_request t (req : Wire.request) : Wire.response =
  match req with
  | Ping -> Pong
  | Decide batch ->
    let outcomes = List.map (decide_one t) batch in
    let n = List.length batch in
    atomic_add t.decided n;
    Registry.add t.decisions_total n;
    Decisions outcomes
  | Publish { node; value } ->
    if node < 0 || node >= t.config.nodes then begin
      Registry.incr t.errors_total;
      Err (Printf.sprintf "publish: node %d out of range [0,%d)" node
             t.config.nodes)
    end
    else begin
      Estimator.publish t.est ~node value;
      atomic_add t.publishes 1;
      Published (Estimator.global t.est)
    end
  | Read_global -> Global (Estimator.global t.est)
  | Read_node node ->
    if node < 0 || node >= t.config.nodes then begin
      Registry.incr t.errors_total;
      Err (Printf.sprintf "node %d out of range [0,%d)" node t.config.nodes)
    end
    else Node_value (Estimator.contribution t.est ~node)
  | Query_stats ->
    Stats
      {
        served = Atomic.get t.served;
        decided = Atomic.get t.decided;
        publishes = Atomic.get t.publishes;
        nodes = t.config.nodes;
        global = Estimator.global t.est;
      }
  | Query_telemetry ->
    (* the snapshot is cut before this request's own per-op counter
       and latency are recorded (handle_body updates them after the
       response is built), so answering telemetry does not perturb
       the snapshot being answered — the property the federation
       byte-identity test leans on *)
    let healthy, health = t.health_probe () in
    Telemetry
      {
        node = t.config.node_id;
        healthy;
        health;
        snapshot = Registry.snapshot t.reg;
      }

(* Record a completed server span carrying the client's trace context,
   if the server has an enabled obs. Tracer writes are serialized
   under [trace_mu] because worker domains handle requests
   concurrently; the span is recorded with explicit timestamps after
   the work, so the critical section is just the buffer append. *)
let record_span t ~trace ~ts0 ~ts1 op =
  if Obs.enabled t.obs then begin
    let args =
      match trace with
      | Some ctx -> Propagation.to_args ctx
      | None -> []
    in
    Mutex.lock t.trace_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.trace_mu)
      (fun () ->
        Tracer.complete (Obs.tracer t.obs) ~args ~ts0 ~ts1 ("server." ^ op))
  end

let handle_body t body =
  let t0 = Unix.gettimeofday () in
  let obs_ts0 = if Obs.enabled t.obs then Obs.now t.obs else 0 in
  match Wire.decode_request body with
  | Error err ->
    Registry.incr t.errors_total;
    Wire.encode_response_body ~id:0 (Err (Wire.error_to_string err))
  | Ok (id, trace, req) ->
    atomic_add t.served 1;
    let resp =
      match handle_request t req with
      | resp -> resp
      | exception exn ->
        Registry.incr t.errors_total;
        Wire.Err ("internal error: " ^ Printexc.to_string exn)
    in
    let op = Wire.request_kind req in
    (match List.assoc_opt op t.per_op with
    | Some m ->
      Registry.incr m.requests;
      Histogram.observe m.latency ((Unix.gettimeofday () -. t0) *. 1e9)
    | None -> ());
    record_span t ~trace ~ts0:obs_ts0
      ~ts1:(if Obs.enabled t.obs then Obs.now t.obs else 0)
      op;
    Wire.encode_response_body ~id resp

(* -- listeners ----------------------------------------------------------- *)

type sock_listener = {
  sock : Unix.file_descr;
  stopping : bool Atomic.t;
  mutable acceptor : unit Domain.t option;
  exec : Executor.t;
  unlink_path : string option;
}

type impl = Mem of string | Sock of sock_listener

type listener = {
  owner : t;
  bound : Transport.endpoint;
  impl : impl;
  mutable stopped : bool;
}

let endpoint l = l.bound

(* One connection: read frames, answer them, until the peer closes,
   times out, sends garbage the stream cannot recover from, or the
   listener stops. *)
let serve_conn t stopping fd peer =
  Netio.set_timeouts ~timeout:t.config.read_timeout fd;
  let conn = Transport.of_fd ~max_frame:t.config.max_frame ~peer fd in
  let rec loop () =
    if not (Atomic.get stopping) then
      match Transport.recv conn with
      | Ok body -> (
        match Transport.send conn (handle_body t body) with
        | Ok () -> loop ()
        | Error _ -> ())
      | Error (Truncated _) -> () (* peer closed *)
      | Error err ->
        (* framing is unrecoverable: answer once, then hang up *)
        Registry.incr t.errors_total;
        ignore
          (Transport.send conn
             (Wire.encode_response_body ~id:0
                (Err (Wire.error_to_string err))))
  in
  Fun.protect ~finally:(fun () -> Transport.close conn) loop

let accept_loop t sl =
  while not (Atomic.get sl.stopping) do
    match Unix.select [ sl.sock ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept sl.sock with
      | client, addr ->
        Registry.incr t.connections_total;
        let peer =
          match addr with
          | Unix.ADDR_INET (a, p) ->
            Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
          | Unix.ADDR_UNIX p -> if p = "" then "unix-peer" else p
        in
        Executor.submit sl.exec (fun () -> serve_conn t sl.stopping client peer)
      | exception Unix.Unix_error _ -> () (* racing stop; loop re-checks *))
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error (EBADF, _, _) -> Atomic.set sl.stopping true
  done

let start t ep =
  match ep with
  | Transport.Memory name ->
    Transport.Loopback.register name (handle_body t);
    { owner = t; bound = ep; impl = Mem name; stopped = false }
  | Tcp { host; port } ->
    let sock, bound_port = Netio.listen_tcp ~host ~port () in
    let sl =
      {
        sock;
        stopping = Atomic.make false;
        acceptor = None;
        exec = Executor.create ~name:"mitos-net" ~workers:t.config.workers ();
        unlink_path = None;
      }
    in
    sl.acceptor <- Some (Domain.spawn (fun () -> accept_loop t sl));
    {
      owner = t;
      bound = Tcp { host; port = bound_port };
      impl = Sock sl;
      stopped = false;
    }
  | Unix_sock path ->
    let sock = Netio.listen_unix path in
    let sl =
      {
        sock;
        stopping = Atomic.make false;
        acceptor = None;
        exec = Executor.create ~name:"mitos-net" ~workers:t.config.workers ();
        unlink_path = Some path;
      }
    in
    sl.acceptor <- Some (Domain.spawn (fun () -> accept_loop t sl));
    { owner = t; bound = ep; impl = Sock sl; stopped = false }

let stop l =
  if not l.stopped then begin
    l.stopped <- true;
    match l.impl with
    | Mem name -> Transport.Loopback.unregister name
    | Sock sl ->
      Atomic.set sl.stopping true;
      (match sl.acceptor with Some d -> Domain.join d | None -> ());
      Netio.close_quietly sl.sock;
      Executor.shutdown sl.exec;
      Option.iter (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ())
        sl.unlink_path
  end
