module Netio = Mitos_obs.Netio

type endpoint =
  | Tcp of { host : string; port : int }
  | Unix_sock of string
  | Memory of string

let endpoint_to_string = function
  | Tcp { host; port } -> Printf.sprintf "tcp://%s:%d" host port
  | Unix_sock path -> "unix://" ^ path
  | Memory name -> "mem://" ^ name

let strip_prefix ~prefix s =
  let pl = String.length prefix in
  if String.length s >= pl && String.sub s 0 pl = prefix then
    Some (String.sub s pl (String.length s - pl))
  else None

let host_port s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "no port in %S (want host:port)" s)
  | Some colon -> (
    let host = String.sub s 0 colon in
    let port_s = String.sub s (colon + 1) (String.length s - colon - 1) in
    match int_of_string_opt port_s with
    | Some port when host <> "" && port >= 0 -> Ok (Tcp { host; port })
    | _ -> Error (Printf.sprintf "bad host:port in %S" s))

let endpoint_of_string s =
  match strip_prefix ~prefix:"mem://" s with
  | Some name when name <> "" -> Ok (Memory name)
  | Some _ -> Error "empty loopback name in mem:// endpoint"
  | None -> (
    match strip_prefix ~prefix:"unix://" s with
    | Some path when path <> "" -> Ok (Unix_sock path)
    | Some _ -> Error "empty path in unix:// endpoint"
    | None -> (
      match strip_prefix ~prefix:"tcp://" s with
      | Some rest -> host_port rest
      | None -> host_port s))

(* -- connect-failure classification ------------------------------------- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let connect_failure msg =
  if contains ~sub:"refused connection" msg
     || contains ~sub:"no loopback server named" msg
  then `Refused
  else if contains ~sub:"timed out" msg || contains ~sub:"read timeout" msg
  then `Timeout
  else `Unknown

(* -- loopback registry -------------------------------------------------- *)

module Loopback = struct
  let lock = Mutex.create ()
  let table : (string, string -> string) Hashtbl.t = Hashtbl.create 8

  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

  let register name handler =
    locked (fun () ->
        if Hashtbl.mem table name then
          invalid_arg
            (Printf.sprintf "Transport.Loopback.register: %S is taken" name);
        Hashtbl.replace table name handler)

  let unregister name = locked (fun () -> Hashtbl.remove table name)
  let registered name = locked (fun () -> Hashtbl.mem table name)
  let handler name = locked (fun () -> Hashtbl.find_opt table name)
end

(* -- connections -------------------------------------------------------- *)

type sock_state = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes read but not yet consumed as frames *)
  mutable consumed : int;  (* frames already handed out of [buf] *)
  max_frame : int;
}

type kind =
  | Sock of sock_state
  | Mem of {
      name : string;
      handler : string -> string;
      pending : string Queue.t;
      mem_max_frame : int;
    }

type conn = { kind : kind; peer : string; mutable closed : bool }

let peer c = c.peer

let connect ?timeout ?(max_frame = Wire.default_max_frame) ep =
  match ep with
  | Memory name -> (
    match Loopback.handler name with
    | None -> Error (Printf.sprintf "no loopback server named %S" name)
    | Some handler ->
      Ok
        {
          kind =
            Mem { name; handler; pending = Queue.create ();
                  mem_max_frame = max_frame };
          peer = endpoint_to_string ep;
          closed = false;
        })
  | Tcp { host; port } -> (
    match Netio.connect_tcp ?timeout ~host ~port () with
    | Error _ as e -> e
    | Ok fd ->
      Ok
        {
          kind = Sock { fd; buf = Buffer.create 512; consumed = 0; max_frame };
          peer = endpoint_to_string ep;
          closed = false;
        })
  | Unix_sock path -> (
    match Netio.connect_unix ?timeout path with
    | Error _ as e -> e
    | Ok fd ->
      Ok
        {
          kind = Sock { fd; buf = Buffer.create 512; consumed = 0; max_frame };
          peer = endpoint_to_string ep;
          closed = false;
        })

let send c body =
  if c.closed then Error (c.peer ^ ": connection closed")
  else
    match c.kind with
    | Mem m -> (
      match m.handler body with
      | reply ->
        Queue.add reply m.pending;
        Ok ()
      | exception exn ->
        Error
          (Printf.sprintf "%s: handler raised %s" c.peer
             (Printexc.to_string exn)))
    | Sock s -> (
      match Netio.write_all s.fd (Wire.frame body) with
      | () -> Ok ()
      | exception Exit -> Error (c.peer ^ ": peer stopped reading")
      | exception Unix.Unix_error (err, _, _) ->
        Error (Printf.sprintf "%s: %s" c.peer (Unix.error_message err)))

(* Pull one frame out of the socket buffer, reading more as needed.
   The buffer is compacted once consumed frames pass 64 KiB so a
   long-lived connection does not grow without bound. *)
let recv_sock s =
  let chunk = Bytes.create 8192 in
  let rec go () =
    match
      Wire.unframe ~max_frame:s.max_frame (Buffer.contents s.buf)
        ~pos:s.consumed
    with
    | Ok (body, pos) ->
      s.consumed <- pos;
      if s.consumed > 65536 then begin
        let rest =
          let all = Buffer.contents s.buf in
          String.sub all s.consumed (String.length all - s.consumed)
        in
        Buffer.clear s.buf;
        Buffer.add_string s.buf rest;
        s.consumed <- 0
      end;
      Ok body
    | Error (Truncated _) -> (
      match Unix.read s.fd chunk 0 (Bytes.length chunk) with
      | 0 ->
        (* EOF mid-frame (or before one); the offset is how much of a
           frame we were left holding *)
        Error (Wire.Truncated { offset = Buffer.length s.buf - s.consumed })
      | n ->
        Buffer.add_subbytes s.buf chunk 0 n;
        go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        Error (Wire.Corrupt { offset = 0; msg = "read timeout" })
      | exception Unix.Unix_error (err, _, _) ->
        Error (Wire.Corrupt { offset = 0; msg = Unix.error_message err }))
    | Error _ as e -> e
  in
  go ()

let recv c =
  if c.closed then
    Error (Wire.Corrupt { offset = 0; msg = c.peer ^ ": connection closed" })
  else
    match c.kind with
    | Mem m -> (
      match Queue.take_opt m.pending with
      | None -> Error (Wire.Truncated { offset = 0 })
      | Some frame ->
        if String.length frame > m.mem_max_frame then
          Error
            (Wire.Oversized
               { announced = String.length frame; limit = m.mem_max_frame })
        else Ok frame)
    | Sock s -> recv_sock s

let of_fd ?(max_frame = Wire.default_max_frame) ~peer fd =
  {
    kind = Sock { fd; buf = Buffer.create 512; consumed = 0; max_frame };
    peer;
    closed = false;
  }

let close c =
  if not c.closed then begin
    c.closed <- true;
    match c.kind with
    | Mem m -> Queue.clear m.pending
    | Sock s -> Netio.close_quietly s.fd
  end
