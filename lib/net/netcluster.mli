(** The wire-backed twin of {!Mitos_distrib.Cluster}.

    Same deployment model — every node runs its own workload and
    engine, decides under its own exact local counts, and reads the
    shared global pollution scalar — but the scalar lives in a
    {!Server}'s estimator reached through a {!Client} instead of a
    shared in-process array: nodes [Publish] on their sync cadence and
    the policies' pollution source issues [Read_global] per decision.

    {b Determinism contract.} Over a [Memory] (loopback) endpoint this
    module replays {!Mitos_distrib.Cluster.run} {e exactly}: the
    round-robin order, the sync cadence, the publish-on-halt, and the
    staleness sampling every 97 rounds are the same code shape, the
    loopback invokes the server handler synchronously on the calling
    domain, and floats cross the wire as 64-bit IEEE images — so the
    decisions, the counters, and hence {!render}ed {!report}s are
    byte-identical to the in-process cluster on the same seeds and
    sync period, at any [--jobs]. The CI cluster-diff job asserts
    this. Over TCP the semantics are the same but timing-dependent
    staleness makes no byte promise.

    Wire failures mid-run raise [Failure] — a lost coordinator has no
    deterministic recovery. *)

type t

val create :
  ?config:Mitos_dift.Engine.config ->
  ?client_timeout:float ->
  ?index_base:int ->
  params:Mitos.Params.t ->
  sync_period:int ->
  endpoint:Transport.endpoint ->
  Mitos_workload.Workload.built list ->
  t
(** Connect one client per node to the decision server at [endpoint]
    (whose estimator must have at least as many slots as there are
    nodes — publishes fail otherwise). [index_base] offsets the
    estimator slots the nodes publish to — a multi-process deployment
    gives each [mitos-cli node] process its own slot range; default 0.
    Raises [Failure] if a connection cannot be established,
    [Invalid_argument] on an empty node list or [sync_period < 1]. *)

val run : ?max_rounds:int -> t -> int
(** Round-robin until every node halts; returns rounds executed. *)

val num_nodes : t -> int
val total_propagated : t -> int
val total_blocked : t -> int
val syncs_performed : t -> int
val mean_staleness : t -> float

val close : t -> unit
(** Close the node clients. *)

(** {1 Reports}

    One deterministic record renderable from either implementation —
    the artifact the byte-identity check diffs. No wall times, no
    transport names, nothing environment-dependent. *)

type node_row = {
  node : int;
  steps : int;
  node_propagated : int;
  node_blocked : int;
  pollution : float;  (** exact local contribution at the end *)
}

type report = {
  nodes : int;
  sync_period : int;
  rounds : int;
  propagated : int;
  blocked : int;
  syncs : int;
  mean_staleness_pct : float;
  global : float;  (** global pollution after the final publishes *)
  per_node : node_row list;
}

val report_of_cluster : rounds:int -> Mitos_distrib.Cluster.t -> report
val report_of_net : rounds:int -> t -> report

val render : report -> string
(** Canonical text rendering (floats through
    {!Mitos_obs.Registry.fmt_value}); byte-comparable. *)
