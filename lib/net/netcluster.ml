open Mitos_dift
module Workload = Mitos_workload.Workload
module Cluster = Mitos_distrib.Cluster
module Estimator = Mitos_distrib.Estimator

type node = {
  index : int;
  engine : Engine.t;
  node_params : Mitos.Params.t;
  client : Client.t;
  mutable halted : bool;
  mutable steps_since_sync : int;
}

type t = {
  nodes : node array;
  sync_period : int;
  mutable syncs : int;
  staleness_samples : Mitos_util.Stats.Online.t;
}

let wire_fail op = function
  | Ok v -> v
  | Error err ->
    failwith (Printf.sprintf "Netcluster: %s failed: %s" op
                (Client.error_to_string err))

let exact_contribution node =
  Mitos.Cost.weighted_pollution node.node_params (Engine.stats node.engine)

let sync t node =
  ignore
    (wire_fail "publish"
       (Client.publish node.client ~node:node.index (exact_contribution node)));
  node.steps_since_sync <- 0;
  t.syncs <- t.syncs + 1

let create ?(config = Engine.default_config) ?client_timeout ?(index_base = 0)
    ~params ~sync_period ~endpoint builts =
  if sync_period < 1 then
    invalid_arg "Netcluster.create: sync_period must be >= 1";
  if builts = [] then invalid_arg "Netcluster.create: need at least one node";
  if index_base < 0 then invalid_arg "Netcluster.create: negative index_base";
  let nodes =
    List.mapi
      (fun i built ->
        let index = index_base + i in
        let client =
          match Client.connect ?timeout:client_timeout endpoint with
          | Ok c -> c
          | Error err ->
            failwith
              (Printf.sprintf "Netcluster: node %d cannot reach %s: %s" index
                 (Transport.endpoint_to_string endpoint)
                 (Client.error_to_string err))
        in
        (* same policy shape as Cluster, with the estimator read moved
           over the wire *)
        let pollution_source _stats =
          wire_fail "read_global" (Client.global client)
        in
        let policy =
          Policies.mitos
            ~name:(Printf.sprintf "mitos-node%d" index)
            ~pollution_source params
        in
        let engine = Workload.engine_of ~config ~policy built in
        Engine.attach engine (Workload.machine_of built);
        {
          index;
          engine;
          node_params = params;
          client;
          halted = false;
          steps_since_sync = 0;
        })
      builts
    |> Array.of_list
  in
  { nodes; sync_period; syncs = 0;
    staleness_samples = Mitos_util.Stats.Online.create () }

let num_nodes t = Array.length t.nodes

let staleness t =
  let exact_total = ref 0.0 and drift = ref 0.0 in
  Array.iter
    (fun node ->
      let exact = exact_contribution node in
      let published =
        wire_fail "read_node" (Client.read_node node.client node.index)
      in
      exact_total := !exact_total +. exact;
      drift := !drift +. Float.abs (exact -. published))
    t.nodes;
  if !exact_total <= 0.0 then 0.0 else !drift /. !exact_total

(* mirrors Cluster.staleness_sample_period — the byte-identity
   contract needs the two run loops to sample on the same rounds *)
let staleness_sample_period = 97

let run ?(max_rounds = 10_000_000) t =
  let rounds = ref 0 in
  let live = ref (Array.length t.nodes) in
  while !live > 0 && !rounds < max_rounds do
    if !rounds mod staleness_sample_period = 0 then
      Mitos_util.Stats.Online.add t.staleness_samples (staleness t);
    Array.iter
      (fun node ->
        if not node.halted then begin
          if Engine.step node.engine then begin
            node.steps_since_sync <- node.steps_since_sync + 1;
            if node.steps_since_sync >= t.sync_period then sync t node
          end
          else begin
            node.halted <- true;
            sync t node;
            decr live
          end
        end)
      t.nodes;
    incr rounds
  done;
  !rounds

let total_propagated t =
  Array.fold_left
    (fun acc n -> acc + (Engine.counters n.engine).Engine.ifp_propagated)
    0 t.nodes

let total_blocked t =
  Array.fold_left
    (fun acc n -> acc + (Engine.counters n.engine).Engine.ifp_blocked)
    0 t.nodes

let syncs_performed t = t.syncs
let mean_staleness t = Mitos_util.Stats.Online.mean t.staleness_samples
let close t = Array.iter (fun n -> Client.close n.client) t.nodes

(* -- reports ------------------------------------------------------------ *)

type node_row = {
  node : int;
  steps : int;
  node_propagated : int;
  node_blocked : int;
  pollution : float;
}

type report = {
  nodes : int;
  sync_period : int;
  rounds : int;
  propagated : int;
  blocked : int;
  syncs : int;
  mean_staleness_pct : float;
  global : float;
  per_node : node_row list;
}

let row_of_engine ~index ~pollution engine =
  let c = Engine.counters engine in
  {
    node = index;
    steps = c.Engine.steps;
    node_propagated = c.Engine.ifp_propagated;
    node_blocked = c.Engine.ifp_blocked;
    pollution;
  }

let report_of_cluster ~rounds c =
  let engines = Cluster.engines c in
  {
    nodes = Cluster.num_nodes c;
    sync_period = Cluster.sync_period c;
    rounds;
    propagated = Cluster.total_propagated c;
    blocked = Cluster.total_blocked c;
    syncs = Cluster.syncs_performed c;
    mean_staleness_pct = 100.0 *. Cluster.mean_staleness c;
    global = Estimator.global (Cluster.estimator c);
    per_node =
      List.init (Array.length engines) (fun i ->
          row_of_engine ~index:i
            ~pollution:(Cluster.local_pollution c ~node:i)
            engines.(i));
  }

let report_of_net ~rounds t =
  {
    nodes = num_nodes t;
    sync_period = t.sync_period;
    rounds;
    propagated = total_propagated t;
    blocked = total_blocked t;
    syncs = syncs_performed t;
    mean_staleness_pct = 100.0 *. mean_staleness t;
    global =
      (match t.nodes with
      | [||] -> 0.0
      | nodes -> wire_fail "read_global" (Client.global nodes.(0).client));
    per_node =
      List.init (Array.length t.nodes) (fun i ->
          row_of_engine ~index:t.nodes.(i).index
            ~pollution:(exact_contribution t.nodes.(i))
            t.nodes.(i).engine);
  }

let render r =
  let f = Mitos_obs.Registry.fmt_value in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "cluster: nodes=%d sync_period=%d rounds=%d\n" r.nodes
       r.sync_period r.rounds);
  Buffer.add_string b
    (Printf.sprintf "ifp: propagated=%d blocked=%d\n" r.propagated r.blocked);
  Buffer.add_string b
    (Printf.sprintf "sync: publishes=%d mean_staleness_pct=%s global=%s\n"
       r.syncs
       (f r.mean_staleness_pct)
       (f r.global));
  List.iter
    (fun row ->
      Buffer.add_string b
        (Printf.sprintf "node %d: steps=%d propagated=%d blocked=%d pollution=%s\n"
           row.node row.steps row.node_propagated row.node_blocked
           (f row.pollution)))
    r.per_node;
  Buffer.contents b
