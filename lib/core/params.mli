(** MITOS model inputs (the starred rows of the paper's Table I).

    - [alpha]: fairness degree of the undertainting cost (α ≥ 0;
      α → ∞ approaches max-min fair tag balancing; α = 1 is the
      logarithmic limit).
    - [beta]: steepness of the overtainting cost (the paper keeps
      β ≥ 2 so the penalty is at least quadratic and twice
      differentiable).
    - [tau]: weight of the over- vs. under-tainting trade-off. τ = 0
      disables the overtainting cost (everything propagates).
    - [tau_scale]: the paper normalizes "all τ values up to the power
      of 10⁶" because the pollution fraction P/N_R is minuscule; the
      evaluation's τ ∈ {1, 0.1, 0.01} only bites after that scaling.
      Our default is 10⁴, matching our smaller simulated memories
      (N_R ≈ 10⁷ rather than 4·10¹⁰) so that the same τ values land in
      the same operating regime as the paper's.
    - [u]: per-tag-type undertainting weights (importance).
    - [o]: per-tag-type pollution weights.
    - [total_tag_space]: N_R = R·M_prov.
    - [mem_capacity]: R, the per-tag copy cap of constraint Eq. (7).

    The paper's defaults (§V): α = 1.5, β = 2, τ = 1, u_t = o_t = 1. *)

open Mitos_tag

type t = private {
  alpha : float;
  beta : float;
  tau : float;
  tau_scale : float;
  u : float array;  (** indexed by [Tag_type.to_int] *)
  o : float array;
  total_tag_space : int;  (** N_R *)
  mem_capacity : int;  (** R *)
}

val make :
  ?alpha:float ->
  ?beta:float ->
  ?tau:float ->
  ?tau_scale:float ->
  ?u:(Tag_type.t * float) list ->
  ?o:(Tag_type.t * float) list ->
  total_tag_space:int ->
  mem_capacity:int ->
  unit ->
  t
(** Unlisted tag types get weight 1. Raises [Invalid_argument] on
    invalid inputs (see {!validate}). *)

val default : total_tag_space:int -> mem_capacity:int -> t
(** The paper's evaluation defaults. *)

val of_shadow_dims : m_prov:int -> mem_capacity:int -> num_regs:int -> t
(** Defaults sized for a shadow memory with the given dimensions. *)

val u : t -> Tag_type.t -> float
val o : t -> Tag_type.t -> float

val with_alpha : t -> float -> t
val with_beta : t -> float -> t
val with_tau : t -> float -> t
val with_tau_scale : t -> float -> t
val with_u : t -> Tag_type.t -> float -> t
val with_o : t -> Tag_type.t -> float -> t

val tau_effective : t -> float
(** [tau *. tau_scale]. *)

val equal : t -> t -> bool
(** Structural equality on every field (weight arrays compared
    element-wise). Lets caches — {!Cost.Fast} notably — detect
    whether a rebuilt parameterization actually changed. *)

val validate :
  alpha:float -> beta:float -> tau:float -> tau_scale:float ->
  u:float array -> o:float array -> total_tag_space:int ->
  mem_capacity:int -> (unit, string) result
(** Requires α > 0, β ≥ 1, τ ≥ 0, positive scale/space/capacity and
    positive weights. *)

val pp : Format.formatter -> t -> unit
