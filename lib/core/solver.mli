(** Offline solvers for the relaxed Problem 1 (paper §IV-B).

    The online rule (Alg. 1/2) is a distributed gradient method; these
    solvers compute reference solutions of the *static* problem — a
    fixed population of tags with per-type weights — so that tests and
    ablations can check how close the online rule lands:

    minimize [Σ_j u_j φ_α(n_j) + tau_eff · N_R · (P/N_R)^β],
    [P = Σ_j o_j n_j], subject to [Σ_j n_j ≤ N_R] (Eq. 6) and
    [0 ≤ n_j ≤ R] (Eq. 7).

    - {!solve_kkt}: stationarity + bisection (fast, exact for the
      relaxed convex problem);
    - {!solve_gradient}: projected gradient descent (slow, used to
      cross-check KKT);
    - {!solve_greedy_integer}: the +1-at-a-time greedy the online
      Alg. 2 implements, run to convergence;
    - {!solve_brute_force}: exhaustive integer search for tiny
      instances (the NP-hard Problem 1 itself).
*)

open Mitos_tag

(** One tag population entry. *)
type item = { ty : Tag_type.t; cap : int  (** per-tag cap; usually R *) }

val item : ?cap:int -> Params.t -> Tag_type.t -> item
(** Defaults the cap to the params' [mem_capacity]. *)

val objective : Params.t -> item array -> float array -> float
(** Relaxed objective value at the point [n]. *)

val gradient : Params.t -> item array -> float array -> float array

val solve_kkt : Params.t -> item array -> float array
(** Optimal relaxed allocation. The stationarity condition
    [u_j n_j^(-α) = g(P)·o_j + λ] with
    [g(P) = tau_eff·β·(P/N_R)^(β-1)] gives
    [n_j = (u_j / (g·o_j + λ))^(1/α)] clamped to [\[0, cap\]]; [P] is
    found by bisection (the map is monotone) and [λ ≥ 0] by an outer
    bisection when Eq. (6) binds. *)

val solve_gradient :
  ?iterations:int -> ?step:float -> Params.t -> item array -> float array

val solve_greedy_integer :
  ?max_total:int -> Params.t -> item array -> int array
(** Repeatedly grant +1 to the item with the most negative marginal
    until no marginal is negative or capacity runs out. *)

val solve_brute_force : max_n:int -> Params.t -> item array -> int array
(** Exhaustive search over [{0..max_n}^k]; raises [Invalid_argument]
    if the search space exceeds ~10⁷ points. *)

(** {1 Exact integer solver}

    Problem 1 itself — the NP-hard integer program — solved by branch
    and bound: variables are fixed one at a time, and each subtree is
    bounded below by the KKT optimum of its continuous relaxation
    (valid because relaxing can only decrease the optimum). Practical
    for the tag-population sizes a decision point actually sees. *)

type bb_stats = {
  nodes_explored : int;
  nodes_pruned : int;
  optimum : float;
}

val solve_branch_and_bound :
  ?node_limit:int -> Params.t -> item array -> int array * bb_stats
(** Exact integer optimum (to the relaxation-guided search's
    precision). [node_limit] (default 200_000) bounds the search;
    raises [Invalid_argument] if exceeded — the NP-hardness showing
    up. *)

(** {1 Profiling hooks} *)

val set_obs : Mitos_obs.Obs.t option -> unit
(** Route solver timing into an observability context: each solve
    becomes a tracer span ([solver.kkt], [solver.gradient],
    [solver.greedy], [solver.branch-and-bound]) tagged with the item
    count, and branch-and-bound node totals land in
    [mitos_solver_bb_nodes_total] / [mitos_solver_bb_pruned_total].
    Module-global, like {!Decision.set_obs}; [None] (the default)
    restores the zero-cost path. *)
