open Mitos_tag

type t = {
  alpha : float;
  beta : float;
  tau : float;
  tau_scale : float;
  u : float array;
  o : float array;
  total_tag_space : int;
  mem_capacity : int;
}

let validate ~alpha ~beta ~tau ~tau_scale ~u ~o ~total_tag_space ~mem_capacity =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if not (alpha > 0.0) then fail "alpha must be > 0 (got %g)" alpha
  else if not (beta >= 1.0) then fail "beta must be >= 1 (got %g)" beta
  else if not (tau >= 0.0) then fail "tau must be >= 0 (got %g)" tau
  else if not (tau_scale > 0.0) then fail "tau_scale must be > 0 (got %g)" tau_scale
  else if Array.length u <> Tag_type.count then fail "u has wrong arity"
  else if Array.length o <> Tag_type.count then fail "o has wrong arity"
  else if Array.exists (fun x -> not (x > 0.0)) u then fail "u weights must be > 0"
  else if Array.exists (fun x -> not (x > 0.0)) o then fail "o weights must be > 0"
  else if total_tag_space < 1 then fail "total_tag_space must be >= 1"
  else if mem_capacity < 1 then fail "mem_capacity must be >= 1"
  else Ok ()

let weights_of_list l =
  let a = Array.make Tag_type.count 1.0 in
  List.iter (fun (ty, w) -> a.(Tag_type.to_int ty) <- w) l;
  a

let make ?(alpha = 1.5) ?(beta = 2.0) ?(tau = 1.0) ?(tau_scale = 1e4) ?(u = [])
    ?(o = []) ~total_tag_space ~mem_capacity () =
  let u = weights_of_list u and o = weights_of_list o in
  match
    validate ~alpha ~beta ~tau ~tau_scale ~u ~o ~total_tag_space ~mem_capacity
  with
  | Ok () -> { alpha; beta; tau; tau_scale; u; o; total_tag_space; mem_capacity }
  | Error msg -> invalid_arg ("Params.make: " ^ msg)

let default ~total_tag_space ~mem_capacity =
  make ~total_tag_space ~mem_capacity ()

let of_shadow_dims ~m_prov ~mem_capacity ~num_regs =
  make
    ~total_tag_space:((mem_capacity + num_regs) * m_prov)
    ~mem_capacity ()

let u t ty = t.u.(Tag_type.to_int ty)
let o t ty = t.o.(Tag_type.to_int ty)

let rebuild t ~alpha ~beta ~tau ~tau_scale ~u ~o =
  match
    validate ~alpha ~beta ~tau ~tau_scale ~u ~o
      ~total_tag_space:t.total_tag_space ~mem_capacity:t.mem_capacity
  with
  | Ok () -> { t with alpha; beta; tau; tau_scale; u; o }
  | Error msg -> invalid_arg ("Params: " ^ msg)

let with_alpha t alpha =
  rebuild t ~alpha ~beta:t.beta ~tau:t.tau ~tau_scale:t.tau_scale ~u:t.u ~o:t.o

let with_beta t beta =
  rebuild t ~alpha:t.alpha ~beta ~tau:t.tau ~tau_scale:t.tau_scale ~u:t.u ~o:t.o

let with_tau t tau =
  rebuild t ~alpha:t.alpha ~beta:t.beta ~tau ~tau_scale:t.tau_scale ~u:t.u ~o:t.o

let with_tau_scale t tau_scale =
  rebuild t ~alpha:t.alpha ~beta:t.beta ~tau:t.tau ~tau_scale ~u:t.u ~o:t.o

let with_weight arr ty w =
  let a = Array.copy arr in
  a.(Tag_type.to_int ty) <- w;
  a

let with_u t ty w =
  rebuild t ~alpha:t.alpha ~beta:t.beta ~tau:t.tau ~tau_scale:t.tau_scale
    ~u:(with_weight t.u ty w) ~o:t.o

let with_o t ty w =
  rebuild t ~alpha:t.alpha ~beta:t.beta ~tau:t.tau ~tau_scale:t.tau_scale
    ~u:t.u ~o:(with_weight t.o ty w)

let tau_effective t = t.tau *. t.tau_scale

let equal a b =
  a.alpha = b.alpha && a.beta = b.beta && a.tau = b.tau
  && a.tau_scale = b.tau_scale && a.u = b.u && a.o = b.o
  && a.total_tag_space = b.total_tag_space
  && a.mem_capacity = b.mem_capacity

let pp ppf t =
  Format.fprintf ppf
    "{alpha=%g; beta=%g; tau=%g (x%g); N_R=%d; R=%d}" t.alpha t.beta t.tau
    t.tau_scale t.total_tag_space t.mem_capacity
