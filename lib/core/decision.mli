(** The MITOS decisioning rules: Algorithm 1 and Algorithm 2.

    Both are first-order (gradient) criteria over the relaxed cost:
    a tag involved in an indirect flow is propagated iff its marginal
    cost (Eq. 8) is non-positive (Lemma 2). Algorithm 2 generalizes to
    several candidate tags and a destination provenance list with only
    [A] free slots: marginals are computed for every candidate, sorted
    increasingly, and tags are propagated greedily while space remains
    and marginals stay non-positive, updating the pollution estimate
    after each accepted propagation (the paper's line 9). *)

open Mitos_tag

type verdict = Propagate | Block

val verdict_to_string : verdict -> string

(** Inputs to a decision, bundled so policies and experiments can log
    them. [count] is the current [n_{T,I}] lookup; [pollution] the
    (possibly stale, in distributed deployments) weighted pollution
    [P = Σ o_t n_{t,i}]. *)
type env = { count : Tag.t -> int; pollution : float }

val of_stats : Params.t -> Tag_stats.t -> env
(** Exact local environment derived from live statistics. *)

val marginal : Params.t -> env -> Tag.t -> float
(** Eq. (8) for one tag under the environment. *)

val submarginals : Params.t -> env -> Tag.t -> float * float
(** (undertainting, overtainting) parts of Eq. (8) — the series
    plotted in the paper's Fig. 7(a). *)

val alg1 : Params.t -> env -> Tag.t -> verdict
(** Algorithm 1: single tag, sufficient space. *)

(** One per-tag outcome of an Algorithm 2 pass. *)
type ranked = {
  tag : Tag.t;
  marginal : float;  (** marginal at decision time (after updates) *)
  verdict : verdict;
}

val alg2 : Params.t -> env -> space:int -> Tag.t list -> ranked list
(** Algorithm 2: returns one entry per candidate, in the order they
    were considered (increasing initial marginal). At most [space]
    entries carry [Propagate]. The pollution term is re-evaluated
    after each accepted propagation, as in the paper's line 9; the
    initial sort order is preserved because the overtainting
    submarginal shifts all remaining candidates of equal [o_t]
    equally (and candidates are re-ranked lazily otherwise). *)

val alg2_accepted : Params.t -> env -> space:int -> Tag.t list -> Tag.t list
(** Just the tags to propagate, in acceptance order. *)

val alg2_no_recompute :
  Params.t -> env -> space:int -> Tag.t list -> ranked list
(** Ablation: Algorithm 2 with line 9 disabled — marginals are
    evaluated once against the initial pollution. *)

(** {1 Table-backed fast path}

    The same algorithms over {!Cost.Fast}: no float [**] on the hot
    path, bit-identical marginals and verdicts (property-tested).
    A [fast] value owns an unsynchronized pollution cache — create
    one per engine/domain; {!Policies.mitos} does this internally. *)

type fast = Cost.Fast.t

val fast : ?table_size:int -> Params.t -> fast
val fast_params : fast -> Params.t

val fast_update : fast -> Params.t -> fast
(** {!Cost.Fast.update}: cheap when only the overtainting side (τ)
    changed. *)

val marginal_fast : fast -> env -> Tag.t -> float
(** {!marginal} via table reads — bit-identical to the direct
    formula. *)

val alg1_fast : fast -> env -> Tag.t -> verdict
(** {!alg1} via table reads. *)

val alg2_fast : fast -> env -> space:int -> Tag.t list -> ranked list
(** {!alg2} via table reads; within the greedy pass the pollution
    power factor is recomputed only when an accepted propagation
    actually moves the pollution. *)

val alg2_fast_accepted : fast -> env -> space:int -> Tag.t list -> Tag.t list

val alg2_fast_no_recompute :
  fast -> env -> space:int -> Tag.t list -> ranked list

val alg2_paper : Params.t -> env -> space:int -> Tag.t list -> ranked list
(** The literal transcription of the paper's Algorithm 2: the while
    loop stops at the {e first} candidate whose (recomputed) marginal
    is positive, blocking everything ranked after it. With homogeneous
    pollution weights this coincides with {!alg2} (the recomputation
    shifts all remaining candidates equally, preserving the order);
    with heterogeneous [o_t] the early break can block a later
    candidate that {!alg2} would still accept. *)

(** {1 Profiling hooks}

    Decision latency is the paper's O(1)-per-decision systems claim
    (§IV-B); the probe lets a run validate it continuously. *)

val set_obs : Mitos_obs.Obs.t option -> unit
(** Route per-decision timing into an observability context: {!alg1}
    and {!alg2}/{!alg2_no_recompute} latencies (clock ticks) land in
    the [mitos_alg1_latency_ticks] / [mitos_alg2_latency_ticks]
    histograms, and Alg. 2 batch sizes in [mitos_alg2_candidates].

    The probe is module-global (decisions are made deep inside
    policies, far from where the context is created); [None] — the
    default — restores the zero-cost path. Passing a disabled context
    is equivalent to [None]. Interleaving two instrumented runs
    mingles their decision metrics; set and clear around a run.

    The probe cell is an [Atomic]: engines running on a domain pool
    all observe a [set_obs] from any domain safely. Concurrent
    instrumented engines share the same histograms, so counts may
    lose increments under contention — acceptable for sampling
    metrics; set the probe around sequential runs when exact counts
    matter. *)

val set_audit : Mitos_obs.Audit.t option -> unit
(** Route every decision into an audit flight recorder: {!alg1},
    {!alg2} and their table-backed fast variants each append one
    [Decision] record — algorithm name, the ambient flow context (see
    [Mitos_obs.Audit.set_context]), the space and pollution the
    decision saw, and per candidate the {!submarginals} split,
    decision-time marginal and verdict.

    Same contract and caveats as {!set_obs}: module-global [Atomic]
    cell, [None]/disabled recorder restores the one-atomic-load
    disabled path, and the recorder itself is not synchronized — set
    it around a sequential run, not across a domain pool. *)

val audit : unit -> Mitos_obs.Audit.t option
(** The currently installed recorder, if any — policies use this to
    stamp flow context onto the shared recorder before deciding. *)
