(** The MITOS cost function (paper §IV-A).

    Total cost (Eq. 2):
    [c(n) = c_under(n) + tau · c_over(n)] with

    - undertainting, α-fair (Eq. 3):
      [c_under(n) = Σ_t u_t Σ_i n_{t,i}^(1-α) / (α-1)]
      (the [log] limit at α = 1);
    - overtainting, β-steep (Eq. 4):
      [c_over(n) = (Σ_t o_t Σ_i n_{t,i} / N_R)^β].

    Normalization: because P/N_R is minuscule, the paper scales τ by
    10⁶ in the evaluation. We fold that into
    [tau_eff = tau · tau_scale] and additionally express the
    overtainting cost as [tau_eff · N_R · (P/N_R)^β] so that its
    derivative with respect to one more copy is exactly the paper's
    Eq. (8) over-submarginal [tau_eff · β · (P/N_R)^(β-1)] (times
    [o_t], which Eq. (8) leaves implicit because the evaluation uses
    o_t = 1). All functions take the relaxed, real-valued [n]. *)

open Mitos_tag

val phi : alpha:float -> float -> float
(** [phi ~alpha n] is the per-tag undertainting kernel
    [n^(1-alpha)/(alpha-1)], or [-log n] at α = 1; [infinity] at
    [n <= 0] for α > 1 (and [neg_infinity]... see below: at n = 0 the
    kernel diverges in the direction that makes propagation free). *)

val under_tag : Params.t -> Tag_type.t -> float -> float
(** [u_t · phi(n)] — one tag's contribution to the undertainting
    cost. *)

val under_total : Params.t -> Tag_stats.t -> float
(** Sum over all live tags (Eq. 3). *)

val weighted_pollution : Params.t -> Tag_stats.t -> float
(** [P = Σ_t o_t Σ_i n_{t,i}]. *)

val over_of_pollution : Params.t -> float -> float
(** [over_of_pollution p P] = [tau_eff · N_R · (P/N_R)^β]. Includes
    the τ weighting. *)

val over_total : Params.t -> Tag_stats.t -> float

val total : Params.t -> Tag_stats.t -> float
(** Eq. (2). *)

val under_submarginal : Params.t -> Tag_type.t -> n:float -> float
(** [-u_t · n^(-α)] — the (negative) undertainting part of Eq. (8).
    At [n = 0] this is [neg_infinity]: the first copy of a tag is
    always worth propagating. *)

val over_submarginal : Params.t -> Tag_type.t -> pollution:float -> float
(** [tau_eff · β · (P/N_R)^(β-1) · o_t] — the (non-negative)
    overtainting part of Eq. (8). *)

val marginal : Params.t -> Tag_type.t -> n:float -> pollution:float -> float
(** Eq. (8): [under_submarginal + over_submarginal] — the marginal
    cost of giving this tag one more copy. *)

(** {1 Decision fast path}

    Eq. (8) costs two float [**] per evaluation on the per-record hot
    path. [Fast] removes both while staying {e bit-identical} to the
    direct formulas above:

    - the undertainting submarginal is tabulated per tag type for
      integer copy counts [n ∈ \[0, table_size)] (the engine only ever
      asks about integer counts), falling back to the exact formula
      beyond the table;
    - the overtainting submarginal's power factor
      [g(P) = tau_eff · β · (P/N_R)^(β-1)] is cached keyed on the
      pollution value — within an Alg. 2 pass pollution only changes
      when a propagation is accepted, so the greedy loop's
      re-evaluations collapse to one multiply.

    A [Fast.t] carries an unsynchronized cache: give each engine (or
    domain) its own instance. *)

module Fast : sig
  type t

  val default_table_size : int
  (** 4096 — covers per-tag copy counts far beyond what the
      benchmarks reach, at ~32 KiB per instance. *)

  val create : ?table_size:int -> Params.t -> t

  val params : t -> Params.t

  val table_size : t -> int

  val update : t -> Params.t -> t
  (** Rebind to new parameters. If the undertainting side is
      unchanged (same [alpha] and [u]) the table is reused and only
      the pollution cache is dropped — cheap enough for the adaptive
      controller's periodic τ updates. *)

  val under_submarginal : t -> Mitos_tag.Tag_type.t -> n:int -> float
  (** Table read for [n] in range; exact formula beyond. Equals
      [Cost.under_submarginal ~n:(float_of_int n)] bit-for-bit. *)

  val over_submarginal : t -> Mitos_tag.Tag_type.t -> pollution:float -> float

  val marginal : t -> Mitos_tag.Tag_type.t -> n:int -> pollution:float -> float
  (** Eq. (8), bit-identical to {!Cost.marginal}. *)
end
