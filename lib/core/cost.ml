open Mitos_tag

let phi ~alpha n =
  if alpha = 1.0 then (if n <= 0.0 then infinity else -.log n)
  else if n <= 0.0 then
    (* n^(1-alpha)/(alpha-1): for alpha > 1 the kernel diverges to
       +infinity as n -> 0+ (huge undertainting cost => propagate);
       for alpha < 1 it is 0 at n = 0. *)
    if alpha > 1.0 then infinity else 0.0
  else (n ** (1.0 -. alpha)) /. (alpha -. 1.0)

let under_tag p ty n = Params.u p ty *. phi ~alpha:p.Params.alpha n

let under_total p stats =
  Tag_stats.fold stats ~init:0.0 ~f:(fun acc tag n ->
      acc +. under_tag p (Tag.ty tag) (float_of_int n))

let weighted_pollution p stats = Tag_stats.weighted_total stats (Params.o p)

let over_of_pollution p pollution =
  let n_r = float_of_int p.Params.total_tag_space in
  Params.tau_effective p *. n_r *. ((pollution /. n_r) ** p.Params.beta)

let over_total p stats = over_of_pollution p (weighted_pollution p stats)

let total p stats = under_total p stats +. over_total p stats

let under_submarginal p ty ~n =
  if n <= 0.0 then neg_infinity
  else -.(Params.u p ty *. (n ** -.p.Params.alpha))

let over_submarginal p ty ~pollution =
  let n_r = float_of_int p.Params.total_tag_space in
  Params.tau_effective p *. p.Params.beta
  *. ((Float.max 0.0 pollution /. n_r) ** (p.Params.beta -. 1.0))
  *. Params.o p ty

let marginal p ty ~n ~pollution =
  under_submarginal p ty ~n +. over_submarginal p ty ~pollution

(* -- decision fast path ---------------------------------------------- *)

module Fast = struct
  (* Eq. 8 on the per-record hot path costs two float [**] per
     evaluation. Both are avoidable: [n] is always an integer copy
     count, so the undertainting side tabulates exactly; and within
     an Alg. 2 pass the pollution only moves when a propagation is
     accepted, so the overtainting side's power factor
     g(P) = tau_eff * beta * (P/N_R)^(beta-1) caches on the pollution
     value. Every table and cache entry is produced by the exact same
     float expression as the direct formula, so results are
     bit-identical, not approximate.

     The pollution cache is intentionally unsynchronized: a [t] is
     owned by one policy instance on one domain. Share one [t] across
     domains and the cache can pair a [g] with the wrong pollution —
     create one per engine instead (they are cheap). *)

  type t = {
    params : Params.t;
    under : float array array;  (* [ty][n] = under_submarginal, n < size *)
    mutable cached_pollution : float;
    mutable cached_g : float;
  }

  let default_table_size = 4096

  let g_factor p pollution =
    let n_r = float_of_int p.Params.total_tag_space in
    Params.tau_effective p *. p.Params.beta
    *. ((Float.max 0.0 pollution /. n_r) ** (p.Params.beta -. 1.0))

  let create ?(table_size = default_table_size) (p : Params.t) =
    if table_size < 1 then
      invalid_arg "Cost.Fast.create: table_size must be >= 1";
    let under =
      Array.init Tag_type.count (fun tyi ->
          let ty = Tag_type.of_int tyi in
          Array.init table_size (fun n ->
              under_submarginal p ty ~n:(float_of_int n)))
    in
    (* nan never compares equal to a query, so the first lookup
       populates the cache *)
    { params = p; under; cached_pollution = nan; cached_g = nan }

  let params t = t.params

  let table_size t = Array.length t.under.(0)

  (* [with_tau]-style refreshes (the adaptive controller every few
     hundred decisions) keep the u/alpha side intact; reuse the table
     and only drop the pollution cache. *)
  let update t (p : Params.t) =
    if
      p.Params.alpha = t.params.Params.alpha
      && (p.Params.u == t.params.Params.u || p.Params.u = t.params.Params.u)
    then { t with params = p; cached_pollution = nan; cached_g = nan }
    else create ~table_size:(table_size t) p

  let under_submarginal t ty ~n =
    let row = Array.unsafe_get t.under (Tag_type.to_int ty) in
    if n >= 0 && n < Array.length row then Array.unsafe_get row n
    else under_submarginal t.params ty ~n:(float_of_int n)

  let over_submarginal t ty ~pollution =
    if pollution <> t.cached_pollution then begin
      t.cached_g <- g_factor t.params pollution;
      t.cached_pollution <- pollution
    end;
    t.cached_g *. Params.o t.params ty

  let marginal t ty ~n ~pollution =
    under_submarginal t ty ~n +. over_submarginal t ty ~pollution
end
