open Mitos_tag

type verdict = Propagate | Block

let verdict_to_string = function Propagate -> "propagate" | Block -> "block"

type env = { count : Tag.t -> int; pollution : float }

(* -- observability probe -------------------------------------------- *)

(* Resolved once in [set_obs]; the disabled path is one ref read and a
   pointer compare per decision. *)
type probe = {
  obs : Mitos_obs.Obs.t;
  alg1_latency : Mitos_obs.Histogram.t;
  alg2_latency : Mitos_obs.Histogram.t;
  alg2_candidates : Mitos_obs.Histogram.t;
}

(* An [Atomic] rather than a plain ref: engines running inside a
   domain pool all read this on every decision, and a plain ref has
   no publication guarantee for the probe record installed by
   [set_obs] from another domain. Reads stay one atomic load on the
   disabled path. *)
let probe : probe option Atomic.t = Atomic.make None

let set_obs = function
  | None -> Atomic.set probe None
  | Some obs ->
    if not (Mitos_obs.Obs.enabled obs) then Atomic.set probe None
    else begin
      let module R = Mitos_obs.Registry in
      let registry = Mitos_obs.Obs.registry obs in
      Atomic.set probe
        (Some
          {
            obs;
            alg1_latency =
              R.histogram registry
                ~help:"Alg. 1 single-tag decision latency in clock ticks"
                "mitos_alg1_latency_ticks";
            alg2_latency =
              R.histogram registry
                ~help:"Alg. 2 batch decision latency in clock ticks"
                "mitos_alg2_latency_ticks";
            alg2_candidates =
              R.histogram registry
                ~help:"candidate tags per Alg. 2 invocation"
                "mitos_alg2_candidates";
          })
    end

let timed pick_hist f =
  match Atomic.get probe with
  | None -> f ()
  | Some p -> Mitos_obs.Obs.time p.obs (pick_hist p) f

(* -- audit probe ----------------------------------------------------- *)

(* Same shape as [probe]: a module-global [Atomic] holding the
   installed decision flight recorder. The disabled path is one
   atomic load per decision; record construction (tag rendering,
   submarginal split) happens only when a recorder is installed. *)
let audit_probe : Mitos_obs.Audit.t option Atomic.t = Atomic.make None

let set_audit = function
  | None -> Atomic.set audit_probe None
  | Some recorder ->
    Atomic.set audit_probe
      (if Mitos_obs.Audit.enabled recorder then Some recorder else None)

let audit () = Atomic.get audit_probe

let of_stats p stats =
  { count = Tag_stats.count stats; pollution = Cost.weighted_pollution p stats }

let marginal p env tag =
  Cost.marginal p (Tag.ty tag)
    ~n:(float_of_int (env.count tag))
    ~pollution:env.pollution

let submarginals p env tag =
  let ty = Tag.ty tag in
  ( Cost.under_submarginal p ty ~n:(float_of_int (env.count tag)),
    Cost.over_submarginal p ty ~pollution:env.pollution )

(* The recorded overtainting part is [m - under], not a fresh
   [over_submarginal] read: within Alg. 2's greedy pass the pollution
   (and with it the overtainting term) moves after each acceptance,
   and the audit log must show the split the verdict actually used. *)
let audit_tag p env tag m v =
  let under =
    Cost.under_submarginal p (Tag.ty tag)
      ~n:(float_of_int (env.count tag))
  in
  {
    Mitos_obs.Audit.tag = Tag.to_string tag;
    under;
    over = m -. under;
    marginal = m;
    verdict =
      (match v with
      | Propagate -> Mitos_obs.Audit.Propagate
      | Block -> Mitos_obs.Audit.Block);
  }

let alg1 p env tag =
  timed
    (fun pr -> pr.alg1_latency)
    (fun () ->
      let m = marginal p env tag in
      let v = if m <= 0.0 then Propagate else Block in
      (match Atomic.get audit_probe with
      | None -> ()
      | Some recorder ->
        Mitos_obs.Audit.record_decision recorder ~algorithm:"alg1" ~space:1
          ~pollution:env.pollution
          [ audit_tag p env tag m v ]);
      v)

type ranked = { tag : Tag.t; marginal : float; verdict : verdict }

let audit_ranked p env ~algorithm ~space ranked =
  match Atomic.get audit_probe with
  | None -> ()
  | Some recorder ->
    Mitos_obs.Audit.record_decision recorder ~algorithm ~space
      ~pollution:env.pollution
      (List.map (fun r -> audit_tag p env r.tag r.marginal r.verdict) ranked)

let run_alg2 ~recompute p env ~space candidates =
  if space < 0 then invalid_arg "Decision.alg2: negative space";
  (match Atomic.get probe with
  | None -> ()
  | Some pr ->
    Mitos_obs.Histogram.observe pr.alg2_candidates
      (float_of_int (List.length candidates)));
  (* Line 1-2: marginals for all candidates, sorted increasingly. *)
  let initial =
    List.map (fun tag -> (tag, marginal p env tag)) candidates
    |> List.stable_sort (fun (_, a) (_, b) -> Float.compare a b)
  in
  (* Lines 3-10: greedy pass. Each accepted propagation adds o_t to
     the pollution, shifting subsequent overtainting submarginals. *)
  let pollution = ref env.pollution in
  let props = ref 0 in
  List.map
    (fun (tag, initial_marginal) ->
      let m =
        if recompute then
          Cost.marginal p (Tag.ty tag)
            ~n:(float_of_int (env.count tag))
            ~pollution:!pollution
        else initial_marginal
      in
      if !props < space && m <= 0.0 then begin
        incr props;
        pollution := !pollution +. Params.o p (Tag.ty tag);
        { tag; marginal = m; verdict = Propagate }
      end
      else { tag; marginal = m; verdict = Block })
    initial

let alg2 p env ~space candidates =
  timed
    (fun pr -> pr.alg2_latency)
    (fun () ->
      let ranked = run_alg2 ~recompute:true p env ~space candidates in
      audit_ranked p env ~algorithm:"alg2" ~space ranked;
      ranked)

let alg2_accepted p env ~space candidates =
  alg2 p env ~space candidates
  |> List.filter_map (fun r ->
         match r.verdict with Propagate -> Some r.tag | Block -> None)

let alg2_no_recompute p env ~space candidates =
  timed
    (fun pr -> pr.alg2_latency)
    (fun () ->
      let ranked = run_alg2 ~recompute:false p env ~space candidates in
      audit_ranked p env ~algorithm:"alg2-no-recompute" ~space ranked;
      ranked)

(* -- table-backed fast path ------------------------------------------ *)

type fast = Cost.Fast.t

let fast ?table_size p = Cost.Fast.create ?table_size p
let fast_params = Cost.Fast.params
let fast_update = Cost.Fast.update

let marginal_fast f env tag =
  Cost.Fast.marginal f (Tag.ty tag) ~n:(env.count tag)
    ~pollution:env.pollution

let alg1_fast f env tag =
  timed
    (fun pr -> pr.alg1_latency)
    (fun () ->
      let m = marginal_fast f env tag in
      let v = if m <= 0.0 then Propagate else Block in
      (match Atomic.get audit_probe with
      | None -> ()
      | Some recorder ->
        Mitos_obs.Audit.record_decision recorder ~algorithm:"alg1-fast"
          ~space:1 ~pollution:env.pollution
          [ audit_tag (Cost.Fast.params f) env tag m v ]);
      v)

(* Mirrors [run_alg2] step for step; because the table and the
   pollution cache reproduce Eq. 8 bit-for-bit, the sort keys, the
   greedy pass and hence the verdicts are identical to the direct
   formula's. *)
let run_alg2_fast ~recompute f env ~space candidates =
  if space < 0 then invalid_arg "Decision.alg2_fast: negative space";
  (match Atomic.get probe with
  | None -> ()
  | Some pr ->
    Mitos_obs.Histogram.observe pr.alg2_candidates
      (float_of_int (List.length candidates)));
  let initial =
    List.map (fun tag -> (tag, marginal_fast f env tag)) candidates
    |> List.stable_sort (fun (_, a) (_, b) -> Float.compare a b)
  in
  let p = Cost.Fast.params f in
  let pollution = ref env.pollution in
  let props = ref 0 in
  List.map
    (fun (tag, initial_marginal) ->
      let m =
        if recompute then
          Cost.Fast.marginal f (Tag.ty tag) ~n:(env.count tag)
            ~pollution:!pollution
        else initial_marginal
      in
      if !props < space && m <= 0.0 then begin
        incr props;
        pollution := !pollution +. Params.o p (Tag.ty tag);
        { tag; marginal = m; verdict = Propagate }
      end
      else { tag; marginal = m; verdict = Block })
    initial

let alg2_fast f env ~space candidates =
  timed
    (fun pr -> pr.alg2_latency)
    (fun () ->
      let ranked = run_alg2_fast ~recompute:true f env ~space candidates in
      audit_ranked (Cost.Fast.params f) env ~algorithm:"alg2-fast" ~space
        ranked;
      ranked)

let alg2_fast_no_recompute f env ~space candidates =
  timed
    (fun pr -> pr.alg2_latency)
    (fun () ->
      let ranked = run_alg2_fast ~recompute:false f env ~space candidates in
      audit_ranked (Cost.Fast.params f) env
        ~algorithm:"alg2-fast-no-recompute" ~space ranked;
      ranked)

let alg2_fast_accepted f env ~space candidates =
  alg2_fast f env ~space candidates
  |> List.filter_map (fun r ->
         match r.verdict with Propagate -> Some r.tag | Block -> None)

let alg2_paper p env ~space candidates =
  if space < 0 then invalid_arg "Decision.alg2_paper: negative space";
  let initial =
    List.map (fun tag -> (tag, marginal p env tag)) candidates
    |> List.stable_sort (fun (_, a) (_, b) -> Float.compare a b)
  in
  let pollution = ref env.pollution in
  let props = ref 0 in
  let broken = ref false in
  List.map
    (fun (tag, _) ->
      let m =
        Cost.marginal p (Tag.ty tag)
          ~n:(float_of_int (env.count tag))
          ~pollution:!pollution
      in
      if (not !broken) && !props < space && m <= 0.0 then begin
        incr props;
        pollution := !pollution +. Params.o p (Tag.ty tag);
        { tag; marginal = m; verdict = Propagate }
      end
      else begin
        (* the paper's while loop exits on the first positive marginal
           (or when space runs out) and never reconsiders *)
        broken := true;
        { tag; marginal = m; verdict = Block }
      end)
    initial
