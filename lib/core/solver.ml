open Mitos_tag

type item = { ty : Tag_type.t; cap : int }

(* -- observability probe -------------------------------------------- *)

(* Atomic for the same reason as [Decision.probe]: solver calls can
   run on pool domains while the CLI installs the context from the
   main one. *)
let probe : Mitos_obs.Obs.t option Atomic.t = Atomic.make None

let set_obs = function
  | Some obs when Mitos_obs.Obs.enabled obs -> Atomic.set probe (Some obs)
  | Some _ | None -> Atomic.set probe None

let solver_span name ~items f =
  match Atomic.get probe with
  | None -> f ()
  | Some obs ->
    Mitos_obs.Obs.with_span obs
      ~args:[ ("items", string_of_int items) ]
      name f

let item ?cap p ty =
  { ty; cap = (match cap with Some c -> c | None -> p.Params.mem_capacity) }

let objective p items n =
  let under = ref 0.0 and pollution = ref 0.0 in
  Array.iteri
    (fun j it ->
      under := !under +. Cost.under_tag p it.ty n.(j);
      pollution := !pollution +. (Params.o p it.ty *. n.(j)))
    items;
  !under +. Cost.over_of_pollution p !pollution

let pollution_of p items n =
  let acc = ref 0.0 in
  Array.iteri (fun j it -> acc := !acc +. (Params.o p it.ty *. n.(j))) items;
  !acc

let gradient p items n =
  let pollution = pollution_of p items n in
  Array.mapi
    (fun j it -> Cost.marginal p it.ty ~n:n.(j) ~pollution)
    items

(* g(P) = tau_eff * beta * (P/N_R)^(beta-1): the common factor of the
   overtainting submarginal. *)
let g_of p pollution =
  let n_r = float_of_int p.Params.total_tag_space in
  Params.tau_effective p *. p.Params.beta
  *. ((Float.max 0.0 pollution /. n_r) ** (p.Params.beta -. 1.0))

(* n_j(g, lambda) from stationarity, clamped to [0, cap]. *)
let n_of_multipliers p it ~g ~lambda =
  let denom = (g *. Params.o p it.ty) +. lambda in
  let n =
    if denom <= 0.0 then float_of_int it.cap
    else (Params.u p it.ty /. denom) ** (1.0 /. p.Params.alpha)
  in
  Float.min (float_of_int it.cap) (Float.max 0.0 n)

(* For fixed lambda, find the fixed point P = sum_j o_j n_j(g(P), lambda).
   The RHS is non-increasing in P, so bisection on f(P) = RHS - P works. *)
let solve_for_lambda p items lambda =
  let rhs pollution =
    let g = g_of p pollution in
    let acc = ref 0.0 in
    Array.iter
      (fun it ->
        acc := !acc +. (Params.o p it.ty *. n_of_multipliers p it ~g ~lambda))
      items;
    !acc
  in
  let hi0 = rhs 0.0 in
  if hi0 <= 1e-12 then 0.0
  else begin
    let lo = ref 0.0 and hi = ref hi0 in
    (* f(lo) = rhs(0) - 0 >= 0; f(hi) = rhs(hi0) - hi0 <= 0 since rhs
       is non-increasing. *)
    for _ = 1 to 200 do
      let mid = 0.5 *. (!lo +. !hi) in
      if rhs mid -. mid >= 0.0 then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

let allocation_for_lambda p items lambda =
  let pollution = solve_for_lambda p items lambda in
  let g = g_of p pollution in
  Array.map (fun it -> n_of_multipliers p it ~g ~lambda) items

let solve_kkt p items =
  solver_span "solver.kkt" ~items:(Array.length items) @@ fun () ->
  if Array.length items = 0 then [||]
  else begin
    let n0 = allocation_for_lambda p items 0.0 in
    let total = Array.fold_left ( +. ) 0.0 n0 in
    let budget = float_of_int p.Params.total_tag_space in
    if total <= budget then n0
    else begin
      (* Eq. (6) binds: raise lambda until the total meets the budget. *)
      let total_at lambda =
        Array.fold_left ( +. ) 0.0 (allocation_for_lambda p items lambda)
      in
      let lo = ref 0.0 and hi = ref 1.0 in
      while total_at !hi > budget && !hi < 1e18 do
        hi := !hi *. 2.0
      done;
      for _ = 1 to 200 do
        let mid = 0.5 *. (!lo +. !hi) in
        if total_at mid > budget then lo := mid else hi := mid
      done;
      allocation_for_lambda p items !hi
    end
  end

(* Clamp to the boxes [1e-9, cap]; the simplex constraint is handled
   by rescaling in the gradient loop. *)
let project items n =
  Array.mapi
    (fun j x -> Float.min (float_of_int items.(j).cap) (Float.max 1e-9 x))
    n

let solve_gradient ?(iterations = 20_000) ?(step = 0.05) p items =
  solver_span "solver.gradient" ~items:(Array.length items) @@ fun () ->
  let k = Array.length items in
  let n = Array.make k 1.0 in
  let budget = float_of_int p.Params.total_tag_space in
  for _ = 1 to iterations do
    let grad = gradient p items n in
    Array.iteri
      (fun j g ->
        (* Diagonal preconditioning keeps the step meaningful across
           the very curved alpha-fair kernel. *)
        let scale = Float.max 1.0 n.(j) in
        n.(j) <- n.(j) -. (step *. g *. scale))
      grad;
    let n' = project items n in
    Array.blit n' 0 n 0 k;
    let total = Array.fold_left ( +. ) 0.0 n in
    if total > budget then
      Array.iteri (fun j x -> n.(j) <- x *. budget /. total) n
  done;
  n

let solve_greedy_integer ?max_total p items =
  solver_span "solver.greedy" ~items:(Array.length items) @@ fun () ->
  let k = Array.length items in
  let n = Array.make k 0 in
  let budget =
    match max_total with Some m -> m | None -> p.Params.total_tag_space
  in
  let total = ref 0 in
  let continue_ = ref true in
  while !continue_ && !total < budget do
    let pollution =
      pollution_of p items (Array.map float_of_int n)
    in
    let best = ref (-1) and best_m = ref 0.0 in
    Array.iteri
      (fun j it ->
        if n.(j) < it.cap then begin
          let m =
            Cost.marginal p it.ty ~n:(float_of_int n.(j)) ~pollution
          in
          if m <= 0.0 && (!best < 0 || m < !best_m) then begin
            best := j;
            best_m := m
          end
        end)
      items;
    if !best < 0 then continue_ := false
    else begin
      n.(!best) <- n.(!best) + 1;
      incr total
    end
  done;
  n

(* -- exact integer solver (branch and bound) ------------------------ *)

type bb_stats = { nodes_explored : int; nodes_pruned : int; optimum : float }

(* Relaxed optimum over the suffix [from..k-1] given the pollution and
   copy budget already consumed by the fixed prefix. Mirrors solve_kkt
   but with offsets; used as the subtree lower bound. *)
let relaxed_suffix p items ~from ~pollution_offset ~budget =
  let k = Array.length items in
  if from >= k then ([||], 0.0)
  else begin
    let rhs lambda pollution_free =
      let g = g_of p (pollution_offset +. pollution_free) in
      let acc = ref 0.0 in
      for j = from to k - 1 do
        acc :=
          !acc +. (Params.o p items.(j).ty *. n_of_multipliers p items.(j) ~g ~lambda)
      done;
      !acc
    in
    let solve_p lambda =
      let hi0 = rhs lambda 0.0 in
      if hi0 <= 1e-12 then 0.0
      else begin
        let lo = ref 0.0 and hi = ref hi0 in
        for _ = 1 to 100 do
          let mid = 0.5 *. (!lo +. !hi) in
          if rhs lambda mid -. mid >= 0.0 then lo := mid else hi := mid
        done;
        0.5 *. (!lo +. !hi)
      end
    in
    let allocation lambda =
      let pfree = solve_p lambda in
      let g = g_of p (pollution_offset +. pfree) in
      Array.init (k - from) (fun i ->
          n_of_multipliers p items.(from + i) ~g ~lambda)
    in
    let total alloc = Array.fold_left ( +. ) 0.0 alloc in
    let alloc =
      let a0 = allocation 0.0 in
      if total a0 <= budget then a0
      else begin
        let lo = ref 0.0 and hi = ref 1.0 in
        while total (allocation !hi) > budget && !hi < 1e18 do
          hi := !hi *. 2.0
        done;
        for _ = 1 to 100 do
          let mid = 0.5 *. (!lo +. !hi) in
          if total (allocation mid) > budget then lo := mid else hi := mid
        done;
        allocation !hi
      end
    in
    (* objective of the suffix, including the over-cost *difference*
       attributable to the suffix on top of the fixed pollution *)
    let under = ref 0.0 and pfree = ref 0.0 in
    Array.iteri
      (fun i n ->
        let it = items.(from + i) in
        under := !under +. Cost.under_tag p it.ty n;
        pfree := !pfree +. (Params.o p it.ty *. n))
      alloc;
    ( alloc,
      !under
      +. Cost.over_of_pollution p (pollution_offset +. !pfree)
      -. Cost.over_of_pollution p pollution_offset )
  end

let relaxed_suffix_bound p items ~from ~pollution_offset ~budget =
  snd (relaxed_suffix p items ~from ~pollution_offset ~budget)

let solve_branch_and_bound ?(node_limit = 200_000) p items =
  solver_span "solver.branch-and-bound" ~items:(Array.length items)
  @@ fun () ->
  let k = Array.length items in
  let budget_total = float_of_int p.Params.total_tag_space in
  (* incumbent from the greedy heuristic *)
  let best = Array.map float_of_int (solve_greedy_integer p items) in
  let best_val = ref (objective p items best) in
  let explored = ref 0 and pruned = ref 0 in
  let current = Array.make k 0.0 in
  (* prefix cost/pollution helpers *)
  let rec branch d ~under_fixed ~pollution_fixed ~used =
    incr explored;
    if !explored > node_limit then
      invalid_arg "Solver.solve_branch_and_bound: node limit exceeded";
    if d = k then begin
      let v = under_fixed +. Cost.over_of_pollution p pollution_fixed in
      if v < !best_val then begin
        best_val := v;
        Array.blit current 0 best 0 k
      end
    end
    else begin
      let it = items.(d) in
      let budget = budget_total -. used in
      let bound_with v =
        (* lower bound of the subtree with n_d = v *)
        let under = under_fixed +. Cost.under_tag p it.ty v in
        let pollution = pollution_fixed +. (Params.o p it.ty *. v) in
        under
        +. Cost.over_of_pollution p pollution
        +. relaxed_suffix_bound p items ~from:(d + 1)
             ~pollution_offset:pollution ~budget:(budget -. v)
      in
      let try_value v =
        if v < 0.0 || v > float_of_int it.cap || v > budget then `Infeasible
        else begin
          let bound = bound_with v in
          if bound >= !best_val -. 1e-9 then begin
            incr pruned;
            `Pruned
          end
          else begin
            current.(d) <- v;
            branch (d + 1)
              ~under_fixed:(under_fixed +. Cost.under_tag p it.ty v)
              ~pollution_fixed:(pollution_fixed +. (Params.o p it.ty *. v))
              ~used:(used +. v);
            `Explored
          end
        end
      in
      (* centre the search on this variable's component of the relaxed
         optimum of the whole remaining subproblem, and walk outward *)
      let centre =
        let alloc, _ =
          relaxed_suffix p items ~from:d ~pollution_offset:pollution_fixed
            ~budget
        in
        if Array.length alloc = 0 then 0.0
        else
          Float.round
            (Float.min (float_of_int it.cap) (Float.max 0.0 alloc.(0)))
      in
      ignore (try_value centre);
      (* the bound is convex in v but its minimum need not sit exactly
         at the relaxed centre; tolerate a few consecutive prunes
         before declaring a direction exhausted *)
      let patience = 4 in
      let rec walk dir step misses =
        if misses < patience then begin
          let v = centre +. (dir *. step) in
          match try_value v with
          | `Explored -> walk dir (step +. 1.0) 0
          | `Pruned -> walk dir (step +. 1.0) (misses + 1)
          | `Infeasible -> ()
        end
      in
      walk 1.0 1.0 0;
      walk (-1.0) 1.0 0
    end
  in
  branch 0 ~under_fixed:0.0 ~pollution_fixed:0.0 ~used:0.0;
  (match Atomic.get probe with
  | None -> ()
  | Some obs ->
    let module R = Mitos_obs.Registry in
    let registry = Mitos_obs.Obs.registry obs in
    R.add
      (R.counter registry ~help:"branch-and-bound nodes explored"
         "mitos_solver_bb_nodes_total")
      !explored;
    R.add
      (R.counter registry ~help:"branch-and-bound nodes pruned"
         "mitos_solver_bb_pruned_total")
      !pruned);
  ( Array.map int_of_float best,
    { nodes_explored = !explored; nodes_pruned = !pruned; optimum = !best_val }
  )

let solve_brute_force ~max_n p items =
  let k = Array.length items in
  let points = float_of_int (max_n + 1) ** float_of_int k in
  if points > 1e7 then
    invalid_arg "Solver.solve_brute_force: search space too large";
  let best = Array.make k 0 in
  let best_val = ref infinity in
  let current = Array.make k 0 in
  let rec go j =
    if j = k then begin
      let total = Array.fold_left ( + ) 0 current in
      if total <= p.Params.total_tag_space then begin
        let v = objective p items (Array.map float_of_int current) in
        if v < !best_val then begin
          best_val := v;
          Array.blit current 0 best 0 k
        end
      end
    end
    else
      for v = 0 to min max_n items.(j).cap do
        current.(j) <- v;
        go (j + 1)
      done
  in
  go 0;
  best
