open Mitos_dift
module Workload = Mitos_workload.Workload

type node = {
  index : int;
  engine : Engine.t;
  node_params : Mitos.Params.t;
  mutable halted : bool;
  mutable steps_since_sync : int;
}

type t = {
  nodes : node array;
  est : Estimator.t;
  sync_period : int;
  mutable syncs : int;
  staleness_samples : Mitos_util.Stats.Online.t;
}

let exact_contribution _t node =
  Mitos.Cost.weighted_pollution node.node_params (Engine.stats node.engine)

let sync t node =
  Estimator.publish t.est ~node:node.index (exact_contribution t node);
  node.steps_since_sync <- 0;
  t.syncs <- t.syncs + 1

let create_heterogeneous ?(config = Engine.default_config) ?watch ?topology
    ?(shards = 1) ~sync_period pairs =
  if sync_period < 1 then invalid_arg "Cluster.create: sync_period must be >= 1";
  if pairs = [] then invalid_arg "Cluster.create: need at least one node";
  let node_count = List.length pairs in
  let est = Estimator.create ~shards ~nodes:node_count () in
  (* neighbourhood visibility: None = complete graph (global scalar) *)
  let neighbours =
    match topology with
    | None -> None
    | Some edges ->
      let adj = Array.make node_count [] in
      List.iter
        (fun (a, b) ->
          if a < 0 || a >= node_count || b < 0 || b >= node_count then
            invalid_arg
              (Printf.sprintf "Cluster: edge (%d,%d) out of range" a b);
          if not (List.mem b adj.(a)) then adj.(a) <- b :: adj.(a);
          if not (List.mem a adj.(b)) then adj.(b) <- a :: adj.(b))
        edges;
      Some adj
  in
  let nodes =
    List.mapi
      (fun index (built, node_params) ->
        (* Every node's policy reads the shared (or neighbourhood)
           estimate instead of its local statistics. *)
        let pollution_source _stats =
          match neighbours with
          | None -> Estimator.global est
          | Some adj ->
            List.fold_left
              (fun acc n -> acc +. Estimator.contribution est ~node:n)
              (Estimator.contribution est ~node:index)
              adj.(index)
        in
        let policy =
          Policies.mitos
            ~name:(Printf.sprintf "mitos-node%d" index)
            ~pollution_source node_params
        in
        let engine = Workload.engine_of ~config ~policy built in
        (match watch with
        | Some (ty1, ty2) -> Engine.watch_confluence engine ty1 ty2
        | None -> ());
        Engine.attach engine (Workload.machine_of built);
        { index; engine; node_params; halted = false; steps_since_sync = 0 })
      pairs
    |> Array.of_list
  in
  {
    nodes;
    est;
    sync_period;
    syncs = 0;
    staleness_samples = Mitos_util.Stats.Online.create ();
  }

let create ?config ?watch ?shards ~params ~sync_period builts =
  create_heterogeneous ?config ?watch ?shards ~sync_period
    (List.map (fun built -> (built, params)) builts)

let num_nodes t = Array.length t.nodes
let estimator t = t.est
let sync_period t = t.sync_period

let staleness t =
  let exact_total = ref 0.0 and drift = ref 0.0 in
  Array.iter
    (fun node ->
      let exact = exact_contribution t node in
      let published = Estimator.contribution t.est ~node:node.index in
      exact_total := !exact_total +. exact;
      drift := !drift +. Float.abs (exact -. published))
    t.nodes;
  if !exact_total <= 0.0 then 0.0 else !drift /. !exact_total

let staleness_sample_period = 97 (* rounds; off the sync cadence *)

let run ?(max_rounds = 10_000_000) t =
  let rounds = ref 0 in
  let live = ref (Array.length t.nodes) in
  while !live > 0 && !rounds < max_rounds do
    if !rounds mod staleness_sample_period = 0 then
      Mitos_util.Stats.Online.add t.staleness_samples (staleness t);
    Array.iter
      (fun node ->
        if not node.halted then begin
          if Engine.step node.engine then begin
            node.steps_since_sync <- node.steps_since_sync + 1;
            if node.steps_since_sync >= t.sync_period then sync t node
          end
          else begin
            node.halted <- true;
            (* final publish so the last state is visible cluster-wide *)
            sync t node;
            decr live
          end
        end)
      t.nodes;
    incr rounds
  done;
  !rounds

let engines t = Array.map (fun n -> n.engine) t.nodes

let summaries t =
  Array.to_list (Array.map (fun n -> Metrics.of_engine n.engine) t.nodes)

let total_propagated t =
  Array.fold_left
    (fun acc n -> acc + (Engine.counters n.engine).Engine.ifp_propagated)
    0 t.nodes

let total_blocked t =
  Array.fold_left
    (fun acc n -> acc + (Engine.counters n.engine).Engine.ifp_blocked)
    0 t.nodes

let syncs_performed t = t.syncs

let local_pollution t ~node = exact_contribution t t.nodes.(node)

let mean_staleness t = Mitos_util.Stats.Online.mean t.staleness_samples

let alerts t =
  Array.to_list t.nodes
  |> List.concat_map (fun node ->
         List.map (fun a -> (node.index, a)) (Engine.alerts node.engine))
  |> List.sort (fun (_, a) (_, b) ->
         Int.compare a.Engine.alert_step b.Engine.alert_step)

let first_alert t = match alerts t with [] -> None | a :: _ -> Some a
