(** A multi-node MITOS deployment.

    Every node runs its own workload under its own DIFT engine with a
    MITOS policy; the undertainting term uses the node's exact local
    counts, while the overtainting term reads the shared (stale)
    global pollution from an {!Estimator}. Nodes publish their local
    pollution every [sync_period] engine steps — [sync_period = 1]
    approximates an idealized instantaneous global view; large periods
    model gossip/aggregation delay in a real distributed system.

    Execution interleaves nodes round-robin, one step each per round,
    so cross-node interleaving is deterministic. *)

type t

val create :
  ?config:Mitos_dift.Engine.config ->
  ?watch:Mitos_tag.Tag_type.t * Mitos_tag.Tag_type.t ->
  ?shards:int ->
  params:Mitos.Params.t ->
  sync_period:int ->
  Mitos_workload.Workload.built list ->
  t
(** [watch] arms every node's engine with a confluence alarm (see
    [Engine.watch_confluence]) — cluster-wide intrusion detection.
    [shards] (default 1) shards the estimator; the report stays
    byte-identical only across runs with the same shard count (the
    global fold groups per shard — see {!Estimator}). *)

val create_heterogeneous :
  ?config:Mitos_dift.Engine.config ->
  ?watch:Mitos_tag.Tag_type.t * Mitos_tag.Tag_type.t ->
  ?topology:(int * int) list ->
  ?shards:int ->
  sync_period:int ->
  (Mitos_workload.Workload.built * Mitos.Params.t) list ->
  t
(** Per-node parameterizations — the paper's "different application
    scenarios and security needs" across subsystems: each node decides
    under its own α/τ/weights. [topology] additionally restricts
    pollution visibility to a neighbourhood: with edges given
    (undirected, node indices), each node's overtainting term reads
    its own exact pollution plus the published contributions of its
    direct neighbours only — a gossip-style partial view instead of
    the global scalar (the default, a complete graph). The pollution
    each node publishes is weighted by its own [o_t]. Raises
    [Invalid_argument] on out-of-range endpoints. *)

val num_nodes : t -> int
val estimator : t -> Estimator.t
val sync_period : t -> int

val run : ?max_rounds:int -> t -> int
(** Round-robin until every node halts (or [max_rounds]); returns the
    number of rounds executed. *)

val engines : t -> Mitos_dift.Engine.t array
val summaries : t -> Mitos_dift.Metrics.summary list

val total_propagated : t -> int
val total_blocked : t -> int
val syncs_performed : t -> int

val local_pollution : t -> node:int -> float
(** The node's exact current weighted pollution (what it would publish
    right now). *)

val alerts : t -> (int * Mitos_dift.Engine.alert) list
(** (node, alert) pairs across the cluster, ordered by alert step —
    which machine tripped the wire, and when. Empty without [watch]. *)

val first_alert : t -> (int * Mitos_dift.Engine.alert) option

val staleness : t -> float
(** Instantaneous: mean absolute difference between each node's exact
    contribution and its published one, normalized by the exact global
    pollution — 0 when perfectly synchronized. (After a completed
    {!run} this is 0 because nodes publish on halt.) *)

val mean_staleness : t -> float
(** Mean of {!staleness} sampled periodically {e during} the run — the
    quantity that actually degrades with the sync period. *)
