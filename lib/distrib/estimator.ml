type t = { published : float array; lock : Mitos_obs.Contended.t }

let create ~nodes =
  if nodes < 1 then invalid_arg "Estimator.create: need at least one node";
  { published = Array.make nodes 0.0; lock = Mitos_obs.Contended.create "estimator" }

let locked t f = Mitos_obs.Contended.with_lock t.lock f

let publish t ~node value = locked t (fun () -> t.published.(node) <- value)
let global t = locked t (fun () -> Array.fold_left ( +. ) 0.0 t.published)
let contribution t ~node = locked t (fun () -> t.published.(node))
let nodes t = Array.length t.published
