(* Sharded publish slots: each node's contribution lives in an Atomic
   cell; nodes are partitioned into contiguous shards, each guarded by
   its own instrumented lock that also maintains a cached left-fold of
   its range. [global] folds the shard sums in fixed index order and
   never takes a lock, so with one shard it degenerates to exactly the
   legacy left fold over all nodes. *)

type shard = {
  lock : Mitos_obs.Contended.t;
  lo : int;
  hi : int;  (* exclusive *)
  sum : float Atomic.t;  (* left fold of cells.(lo..hi-1), refreshed on publish *)
}

type t = {
  cells : float Atomic.t array;
  shards : shard array;
  quot : int;  (* nodes / shards: small shards hold [quot] nodes *)
  rem : int;  (* nodes mod shards: the first [rem] shards hold one extra *)
}

let create ?(shards = 1) ~nodes () =
  if nodes < 1 then invalid_arg "Estimator.create: need at least one node";
  if shards < 1 then invalid_arg "Estimator.create: need at least one shard";
  let shards = min shards nodes in
  let quot = nodes / shards and rem = nodes mod shards in
  let lo_of s = (s * quot) + min s rem in
  {
    cells = Array.init nodes (fun _ -> Atomic.make 0.0);
    shards =
      Array.init shards (fun s ->
          {
            lock =
              Mitos_obs.Contended.create
                (Printf.sprintf "estimator_shard_%d" s);
            lo = lo_of s;
            hi = lo_of (s + 1);
            sum = Atomic.make 0.0;
          });
    quot;
    rem;
  }

let shards t = Array.length t.shards

let shard_of_node t node =
  let big = t.rem * (t.quot + 1) in
  if node < big then node / (t.quot + 1) else t.rem + ((node - big) / t.quot)

let refold t shard =
  let acc = ref 0.0 in
  for i = shard.lo to shard.hi - 1 do
    acc := !acc +. Atomic.get t.cells.(i)
  done;
  Atomic.set shard.sum !acc

let publish t ~node value =
  if node < 0 || node >= Array.length t.cells then
    invalid_arg "Estimator.publish: node out of range";
  let shard = t.shards.(shard_of_node t node) in
  Mitos_obs.Contended.with_lock shard.lock (fun () ->
      Atomic.set t.cells.(node) value;
      refold t shard)

let global t =
  let acc = ref 0.0 in
  Array.iter (fun shard -> acc := !acc +. Atomic.get shard.sum) t.shards;
  !acc

let contribution t ~node = Atomic.get t.cells.(node)
let nodes t = Array.length t.cells

let shard_stats t =
  Array.to_list t.shards
  |> List.map (fun s ->
         (Mitos_obs.Contended.name s.lock, Mitos_obs.Contended.stats s.lock))
