(** The shared global pollution estimate.

    MITOS's scalability argument (paper §IV-B, property 3) is that the
    undertainting submarginal needs only local information, while the
    overtainting submarginal needs a single global scalar — the memory
    pollution — which "is kept in a globally available variable for
    all potential subsystems". In a distributed deployment that
    variable is synchronized, not read instantaneously; this module
    models it: each node publishes its local weighted pollution on its
    own schedule, and everyone reads the (possibly stale) sum.

    {b Sharding.} Nodes are partitioned into [shards] contiguous
    index ranges. Each node's latest contribution lives in a lock-free
    [Atomic] cell; each shard owns an instrumented lock (named
    [estimator_shard_<i>] for the {!Mitos_obs.Contended} aggregate)
    and a cached left-fold of its range, refreshed under that lock on
    every {!publish}. {!global} folds the shard sums in fixed shard
    index order without locking, so concurrent readers never serialize
    against writers, and with [shards = 1] the result is bit-identical
    to the historical single-lock left fold over all nodes — the
    jobs=1 degeneration the determinism suites rely on.

    {b Concurrency.} {!publish} serializes only with publishes to the
    same shard. {!global} and {!contribution} are lock-free reads of a
    (possibly slightly stale but always internally consistent) shard
    snapshot: a shard sum is always a complete fold computed under the
    shard lock, never a torn partial. *)

type t

val create : ?shards:int -> nodes:int -> unit -> t
(** [shards] defaults to 1 and is clamped to [nodes]. *)

val publish : t -> node:int -> float -> unit
(** Overwrite the node's published contribution and refresh its
    shard's cached sum. *)

val global : t -> float
(** Sum of the latest published contributions: the per-shard cached
    sums folded in shard index order, lock-free. *)

val contribution : t -> node:int -> float
val nodes : t -> int

val shards : t -> int
val shard_of_node : t -> int -> int

val shard_stats : t -> (string * Mitos_obs.Contended.stats) list
(** Per-shard lock stats, in shard index order — the per-instance view
    of what {!Mitos_obs.Contended.aggregate} reports globally. *)
