(** The shared global pollution estimate.

    MITOS's scalability argument (paper §IV-B, property 3) is that the
    undertainting submarginal needs only local information, while the
    overtainting submarginal needs a single global scalar — the memory
    pollution — which "is kept in a globally available variable for
    all potential subsystems". In a distributed deployment that
    variable is synchronized, not read instantaneously; this module
    models it: each node publishes its local weighted pollution on its
    own schedule, and everyone reads the (possibly stale) sum.

    {b Concurrency.} All operations serialize on an internal mutex:
    a coordinator ([Mitos_net]) serves {!publish}/{!global} from
    server worker domains while local readers poll, so publishes must
    never tear and {!global} must always fold a consistent snapshot
    (the concurrent QCheck test in [test_distrib] exercises exactly
    this). The critical sections are a handful of array reads — the
    lock is uncontended in the in-process {!Cluster}. *)

type t

val create : nodes:int -> t
val publish : t -> node:int -> float -> unit
(** Overwrite the node's published contribution. *)

val global : t -> float
(** Sum of the latest published contributions. *)

val contribution : t -> node:int -> float
val nodes : t -> int
