(** Shadow state: per-byte and per-register provenance lists.

    The paper assumes "for each byte in the main memory, register bank
    and Ethernet card memory, a provenance list of tags". We store
    lists sparsely (hash table keyed by byte address) because most
    bytes are untainted most of the time; registers get a dense array,
    one list per register (FAROS-style register granularity).

    All mutations flow through this module so that {!Tag_stats} stays
    exact: the control vector [n] read by the MITOS policy is always
    the true number of list memberships. *)

type t

(** What happens when a tag arrives at a full provenance list.

    [Structural] delegates to the list's own value-blind policy
    (FIFO — the paper's and FAROS's choice — LRU, or rejecting the
    newcomer). [Least_marginal] implements the scheduling the paper's
    §VI defers to future work: evict the co-resident tag whose copy
    count is highest — by Eq. (8) the tag whose marginal undertainting
    benefit per copy is lowest — so scarce (informative) tags survive
    list pressure. *)
type eviction_strategy =
  | Structural of Provenance.eviction
  | Least_marginal

val strategy_to_string : eviction_strategy -> string

(** Storage backend for the per-byte lists — the paper: "a shadow
    memory, whose implementation depends on the DIFT system, e.g.
    hashmap or duplicated memory".

    [Hashed] stores only tainted bytes in a hash table — compact when
    taint is sparse (the common case), with hashing cost per access.
    [Paged] mirrors memory with lazily-allocated 4 KiB page tables —
    constant-time access, proportional-to-touched-pages footprint (the
    "duplicated memory" end of the spectrum). Behaviour is identical;
    only cost differs (see the microbenchmarks). *)
type backend = Hashed | Paged

val backend_to_string : backend -> string

val create :
  ?strategy:eviction_strategy ->
  ?backend:backend ->
  ?shards:int ->
  mem_capacity:int ->
  num_regs:int ->
  m_prov:int ->
  unit ->
  t
(** [mem_capacity] is the paper's [R] (taintable bytes), [m_prov] the
    provenance list bound [M_prov]. Defaults: [Structural Fifo],
    [Hashed]. [shards] (default {!default_shards}) splits the [Hashed]
    backend into that many independent sub-tables, keyed by a
    deterministic multiplicative hash of the byte address — semantics
    are identical at any shard count (per-address state is
    independent); only which hash table an address lands in changes.
    The [Paged] backend ignores it (pages already shard naturally). *)

val backend : t -> backend

val shards : t -> int
(** Sub-table count of the [Hashed] backend; 1 for [Paged]. *)

val shard_occupancy : t -> int array
(** Tainted-byte count per shard, in shard index order; sums to
    {!tainted_bytes}. For [Paged], a single-element array. *)

val set_default_shards : int -> unit
(** Process-wide default for {!create}'s [shards] (initially 1) — the
    hook the [--shards] CLI flag uses so every engine built downstream
    shards its shadow without plumbing a parameter through each
    experiment. Set it once at startup, before building engines. *)

val default_shards : unit -> int

(** A provenance-list eviction: [victim] was removed from the list at
    [at] to make room for [incoming] — taint silently lost behind the
    policy's back, which is exactly what audit trails need to see. *)
type evict_event = {
  at : [ `Mem of int | `Reg of int ];
  victim : Tag.t;
  incoming : Tag.t;
}

val on_evict : t -> (evict_event -> unit) option -> unit
(** Install (or clear, with [None]) the eviction observer. At most one
    observer; [None] (the default) costs nothing on the mutation
    path. Fires for both structural ([Provenance.Added_evicting]) and
    least-marginal (explicit removal) evictions. *)

val stats : t -> Tag_stats.t
val mem_capacity : t -> int
val m_prov : t -> int
val num_regs : t -> int

val total_tag_space : t -> int
(** The paper's [N_R = R * M_prov] (registers included). *)

val pollution : t -> o:(Tag_type.t -> float) -> float
(** [sum_t o_t sum_i n_{t,i} / N_R] — the global memory-pollution
    fraction entering the overtainting cost. *)

(** {1 Single-tag operations} *)

val add_tag_addr : t -> int -> Tag.t -> Provenance.add_result
val add_tag_reg : t -> int -> Tag.t -> Provenance.add_result
val remove_tag_addr : t -> int -> Tag.t -> bool
val clear_addr : t -> int -> unit
val clear_reg : t -> int -> unit

(** {1 Bulk operations used by flow propagation} *)

val tags_of_addr : t -> int -> Tag.t list
(** Oldest first; [] when untainted. *)

val tags_of_reg : t -> int -> Tag.t list

val set_addr_tags : t -> int -> Tag.t list -> unit
(** Replace semantics (direct copy): destination's list becomes the
    given tags, truncated to the oldest [M_prov] of them. *)

val set_reg_tags : t -> int -> Tag.t list -> unit

val union_into_addr : t -> int -> Tag.t list -> unit
(** Union semantics (computation): add each tag, honouring capacity
    and eviction. *)

val union_into_reg : t -> int -> Tag.t list -> unit

val space_left_addr : t -> int -> int
val space_left_reg : t -> int -> int

(** {1 Queries} *)

val is_tainted_addr : t -> int -> bool
val is_tainted_reg : t -> int -> bool
val addr_has_type : t -> int -> Tag_type.t -> bool
val tainted_bytes : t -> int
(** Number of memory bytes with a non-empty list. *)

val tainted_regs : t -> int

val bytes_with_both : t -> Tag_type.t -> Tag_type.t -> int
(** Detection query: bytes whose list holds tags of both types — the
    FAROS in-memory-attack signature is
    [bytes_with_both shadow Network Export_table]. *)

val bytes_with_type : t -> Tag_type.t -> int

val footprint_bytes : t -> int
(** Estimated shadow-memory footprint in bytes: per-tracked-byte
    overhead plus per-list-entry cost. This is the paper's "space"
    metric for Table II. *)

val iter_tainted : t -> (int -> Tag.t list -> unit) -> unit
(** Iterate over tainted memory bytes (unspecified order). *)

val reset : t -> unit
(** Drop all taint; counts return to zero. *)

(** {1 Checkpointing}

    Serialize the full shadow state — geometry, every byte's and
    register's provenance list (order preserved) — so a long tracking
    session can be suspended and resumed, or a state of interest
    archived next to its trace. Counts are rebuilt on restore and are
    exact by construction. *)

val to_string : t -> string

val of_string : string -> t
(** Raises [Mitos_util.Codec.Malformed] on corrupt input. *)
