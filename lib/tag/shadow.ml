type eviction_strategy =
  | Structural of Provenance.eviction
  | Least_marginal

let strategy_to_string = function
  | Structural e -> Provenance.eviction_to_string e
  | Least_marginal -> "least-marginal"

type backend = Hashed | Paged

let backend_to_string = function Hashed -> "hashed" | Paged -> "paged"

(* Byte-address -> provenance store. The two implementations trade
   lookup cost against footprint; see the .mli. *)
module Store = struct
  let page_bits = 12
  let page_size = 1 lsl page_bits

  type t =
    | Hash of (int, Provenance.t) Hashtbl.t array
        (* one sub-table per shard; an address's shard is a pure
           function of the address, so concurrent workers touching
           disjoint shards never collide on one table *)
    | Pages of Provenance.t option array option array

  (* Knuth multiplicative mix before the shard reduction: byte
     addresses arrive sequentially, and the low bits alone would pin
     whole buffers to one shard. Pure integer arithmetic — the same
     address lands in the same shard on every run and every machine. *)
  let shard_of_addr n addr = if n = 1 then 0 else (addr * 0x9E3779B1) lsr 16 mod n

  let create backend ~capacity ~shards =
    match backend with
    | Hashed ->
      let per_table = max 64 (4096 / shards) in
      Hash (Array.init shards (fun _ -> Hashtbl.create per_table))
    | Paged ->
      Pages (Array.make ((capacity + page_size - 1) / page_size) None)

  let table tables addr = tables.(shard_of_addr (Array.length tables) addr)

  let find t addr =
    match t with
    | Hash tables -> Hashtbl.find_opt (table tables addr) addr
    | Pages pages -> (
      match pages.(addr lsr page_bits) with
      | None -> None
      | Some page -> page.(addr land (page_size - 1)))

  let add t addr prov =
    match t with
    (* replace, not add: a re-add for a live address must never stack
       a shadowed duplicate binding (the paged backend overwrites, so
       the two backends now agree) *)
    | Hash tables -> Hashtbl.replace (table tables addr) addr prov
    | Pages pages ->
      let pi = addr lsr page_bits in
      let page =
        match pages.(pi) with
        | Some page -> page
        | None ->
          let page = Array.make page_size None in
          pages.(pi) <- Some page;
          page
      in
      page.(addr land (page_size - 1)) <- Some prov

  let remove t addr =
    match t with
    | Hash tables -> Hashtbl.remove (table tables addr) addr
    | Pages pages -> (
      match pages.(addr lsr page_bits) with
      | None -> ()
      | Some page -> page.(addr land (page_size - 1)) <- None)

  (* shard 0..N-1 in index order, each sub-table in its own (stable
     for a fixed insertion history) order — deterministic for the
     deterministic replay pipelines, like the single table was *)
  let iter t f =
    match t with
    | Hash tables -> Array.iter (fun h -> Hashtbl.iter f h) tables
    | Pages pages ->
      Array.iteri
        (fun pi page ->
          match page with
          | None -> ()
          | Some page ->
            Array.iteri
              (fun slot prov ->
                match prov with
                | Some prov -> f ((pi lsl page_bits) lor slot) prov
                | None -> ())
              page)
        pages

  let fold t f init =
    let acc = ref init in
    iter t (fun addr prov -> acc := f addr prov !acc);
    !acc

  let shards = function Hash tables -> Array.length tables | Pages _ -> 1

  let shard_occupancy t =
    let live h =
      Hashtbl.fold
        (fun _ p acc -> if Provenance.is_empty p then acc else acc + 1)
        h 0
    in
    match t with
    | Hash tables -> Array.map live tables
    | Pages _ ->
      [|
        fold t (fun _ p acc -> if Provenance.is_empty p then acc else acc + 1) 0;
      |]

  let reset t =
    match t with
    | Hash tables -> Array.iter Hashtbl.reset tables
    | Pages pages -> Array.fill pages 0 (Array.length pages) None
end

type evict_event = {
  at : [ `Mem of int | `Reg of int ];
  victim : Tag.t;
  incoming : Tag.t;
}

type t = {
  mem : Store.t;
  store_backend : backend;
  regs : Provenance.t array;
  stats : Tag_stats.t;
  mem_capacity : int;
  m_prov : int;
  strategy : eviction_strategy;
  list_eviction : Provenance.eviction;
  mutable evict_hook : (evict_event -> unit) option;
}

(* Process default for the Hashed backend's shard count, so the CLI's
   --shards flag reaches every Shadow.create in the experiment
   pipelines without threading a parameter through each one. *)
let default_shards_cell = ref 1

let set_default_shards n =
  if n < 1 then invalid_arg "Shadow.set_default_shards: shards < 1";
  default_shards_cell := n

let default_shards () = !default_shards_cell

let create ?(strategy = Structural Provenance.Fifo) ?(backend = Hashed) ?shards
    ~mem_capacity ~num_regs ~m_prov () =
  if mem_capacity < 1 then invalid_arg "Shadow.create: mem_capacity < 1";
  if m_prov < 1 then invalid_arg "Shadow.create: m_prov < 1";
  let shards =
    match shards with
    | None -> !default_shards_cell
    | Some n ->
      if n < 1 then invalid_arg "Shadow.create: shards < 1";
      n
  in
  let list_eviction =
    match strategy with
    | Structural e -> e
    (* under Least_marginal the shadow evicts explicitly before the
       list ever overflows, so the structural policy is irrelevant *)
    | Least_marginal -> Provenance.Fifo
  in
  {
    mem = Store.create backend ~capacity:mem_capacity ~shards;
    store_backend = backend;
    regs =
      Array.init num_regs (fun _ ->
          Provenance.create ~eviction:list_eviction m_prov);
    stats = Tag_stats.create ();
    mem_capacity;
    m_prov;
    strategy;
    list_eviction;
    evict_hook = None;
  }

let backend t = t.store_backend
let shards t = Store.shards t.mem
let shard_occupancy t = Store.shard_occupancy t.mem
let on_evict t hook = t.evict_hook <- hook

let stats t = t.stats
let mem_capacity t = t.mem_capacity
let m_prov t = t.m_prov
let num_regs t = Array.length t.regs
let total_tag_space t = (t.mem_capacity + num_regs t) * t.m_prov

let pollution t ~o =
  Tag_stats.weighted_total t.stats o /. float_of_int (total_tag_space t)

let check_addr t addr =
  if addr < 0 || addr >= t.mem_capacity then
    invalid_arg (Printf.sprintf "Shadow: address %d out of range" addr)

let prov_of_addr t addr =
  check_addr t addr;
  match Store.find t.mem addr with
  | Some p -> p
  | None ->
    let p = Provenance.create ~eviction:t.list_eviction t.m_prov in
    Store.add t.mem addr p;
    p

let drop_if_empty t addr p =
  if Provenance.is_empty p then Store.remove t.mem addr

let fire_evict t ~at ~victim ~incoming =
  match t.evict_hook with
  | None -> ()
  | Some hook -> hook { at; victim; incoming }

let account t ~at (result : Provenance.add_result) tag =
  (match result with
  | Provenance.Added -> Tag_stats.incr t.stats tag
  | Provenance.Added_evicting victim ->
    Tag_stats.incr t.stats tag;
    Tag_stats.decr t.stats victim;
    fire_evict t ~at ~victim ~incoming:tag
  | Provenance.Already_present | Provenance.Rejected -> ());
  result

(* Under Least_marginal, a full list makes room by dropping the member
   with the most copies system-wide (smallest per-copy undertainting
   benefit) — unless the newcomer itself is the most-copied, in which
   case it is the one rejected. *)
let add_with_strategy t ~at p tag =
  match t.strategy with
  | Structural _ -> account t ~at (Provenance.add p tag) tag
  | Least_marginal ->
    if Provenance.is_full p && not (Provenance.mem p tag) then begin
      let victim =
        Provenance.fold p ~init:tag ~f:(fun worst candidate ->
            if Tag_stats.count t.stats candidate > Tag_stats.count t.stats worst
            then candidate
            else worst)
      in
      if Tag.equal victim tag then Provenance.Rejected
      else begin
        ignore (Provenance.remove p victim);
        Tag_stats.decr t.stats victim;
        match account t ~at (Provenance.add p tag) tag with
        | Provenance.Added ->
          fire_evict t ~at ~victim ~incoming:tag;
          Provenance.Added_evicting victim
        | other -> other
      end
    end
    else account t ~at (Provenance.add p tag) tag

let add_tag_addr t addr tag =
  add_with_strategy t ~at:(`Mem addr) (prov_of_addr t addr) tag

let add_tag_reg t r tag = add_with_strategy t ~at:(`Reg r) t.regs.(r) tag

let remove_tag_addr t addr tag =
  check_addr t addr;
  match Store.find t.mem addr with
  | None -> false
  | Some p ->
    let removed = Provenance.remove p tag in
    if removed then Tag_stats.decr t.stats tag;
    drop_if_empty t addr p;
    removed

let clear_prov t p =
  List.iter (Tag_stats.decr t.stats) (Provenance.clear p)

let clear_addr t addr =
  check_addr t addr;
  match Store.find t.mem addr with
  | None -> ()
  | Some p ->
    clear_prov t p;
    Store.remove t.mem addr

let clear_reg t r = clear_prov t t.regs.(r)

let tags_of_addr t addr =
  check_addr t addr;
  match Store.find t.mem addr with
  | None -> []
  | Some p -> Provenance.to_list p

let tags_of_reg t r = Provenance.to_list t.regs.(r)

let set_prov_tags t ~at p tags =
  clear_prov t p;
  List.iter (fun tag -> ignore (add_with_strategy t ~at p tag)) tags

let set_addr_tags t addr tags =
  match tags with
  | [] -> clear_addr t addr
  | _ -> set_prov_tags t ~at:(`Mem addr) (prov_of_addr t addr) tags

let set_reg_tags t r tags = set_prov_tags t ~at:(`Reg r) t.regs.(r) tags

let union_into_addr t addr tags =
  match tags with
  | [] -> ()
  | _ ->
    let p = prov_of_addr t addr in
    List.iter (fun tag -> ignore (add_with_strategy t ~at:(`Mem addr) p tag)) tags

let union_into_reg t r tags =
  List.iter
    (fun tag -> ignore (add_with_strategy t ~at:(`Reg r) t.regs.(r) tag))
    tags

let space_left_addr t addr =
  check_addr t addr;
  match Store.find t.mem addr with
  | None -> t.m_prov
  | Some p -> Provenance.space_left p

let space_left_reg t r = Provenance.space_left t.regs.(r)

let is_tainted_addr t addr =
  check_addr t addr;
  match Store.find t.mem addr with
  | None -> false
  | Some p -> not (Provenance.is_empty p)

let is_tainted_reg t r = not (Provenance.is_empty t.regs.(r))

let addr_has_type t addr ty =
  List.exists (fun tag -> Tag_type.equal (Tag.ty tag) ty) (tags_of_addr t addr)

let tainted_bytes t =
  Store.fold t.mem
    (fun _ p acc -> if Provenance.is_empty p then acc else acc + 1)
    0

let tainted_regs t =
  Array.fold_left
    (fun acc p -> if Provenance.is_empty p then acc else acc + 1)
    0 t.regs

let bytes_with_both t ty1 ty2 =
  Store.fold t.mem
    (fun _ p acc ->
      let has ty = Provenance.exists p (fun tag -> Tag_type.equal (Tag.ty tag) ty) in
      if has ty1 && has ty2 then acc + 1 else acc)
    0

let bytes_with_type t ty =
  Store.fold t.mem
    (fun _ p acc ->
      if Provenance.exists p (fun tag -> Tag_type.equal (Tag.ty tag) ty) then
        acc + 1
      else acc)
    0

(* Footprint model: a hash-table slot (key + pointer + bucket overhead)
   per tracked byte plus a fixed cost per provenance entry. The
   constants approximate a C implementation (FAROS uses 16-byte list
   nodes); absolute values matter less than comparability between
   policies. *)
let bytes_per_slot = 24
let bytes_per_entry = 16

let footprint_bytes t =
  Store.fold t.mem
    (fun _ p acc -> acc + bytes_per_slot + (bytes_per_entry * Provenance.cardinal p))
    0

let iter_tainted t f =
  Store.iter t.mem (fun addr p ->
      if not (Provenance.is_empty p) then f addr (Provenance.to_list p))

let reset t =
  Store.iter t.mem (fun _ p -> clear_prov t p);
  Store.reset t.mem;
  Array.iter (fun p -> clear_prov t p) t.regs

(* -- checkpointing --------------------------------------------------- *)

let checkpoint_magic = "MITSHDW1"

let encode_strategy enc = function
  | Structural Provenance.Fifo -> Mitos_util.Codec.Enc.uint enc 0
  | Structural Provenance.Lru -> Mitos_util.Codec.Enc.uint enc 1
  | Structural Provenance.Reject -> Mitos_util.Codec.Enc.uint enc 2
  | Least_marginal -> Mitos_util.Codec.Enc.uint enc 3

let decode_strategy dec =
  match Mitos_util.Codec.Dec.uint dec with
  | 0 -> Structural Provenance.Fifo
  | 1 -> Structural Provenance.Lru
  | 2 -> Structural Provenance.Reject
  | 3 -> Least_marginal
  | n ->
    raise (Mitos_util.Codec.Malformed (Printf.sprintf "shadow strategy %d" n))

let to_string t =
  let module E = Mitos_util.Codec.Enc in
  let enc = E.create ~initial_size:4096 () in
  E.string enc checkpoint_magic;
  E.uint enc t.mem_capacity;
  E.uint enc (Array.length t.regs);
  E.uint enc t.m_prov;
  encode_strategy enc t.strategy;
  E.uint enc (match t.store_backend with Hashed -> 0 | Paged -> 1);
  (* memory entries: count then (addr, tags) pairs *)
  let entries =
    Store.fold t.mem
      (fun addr p acc ->
        if Provenance.is_empty p then acc
        else (addr, Provenance.to_list p) :: acc)
      []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  E.list enc
    (fun (addr, tags) ->
      E.uint enc addr;
      E.list enc (Tag.encode enc) tags)
    entries;
  E.array enc
    (fun p -> E.list enc (Tag.encode enc) (Provenance.to_list p))
    t.regs;
  E.contents enc

let of_string data =
  let module D = Mitos_util.Codec.Dec in
  let dec = D.of_string data in
  if D.string dec <> checkpoint_magic then
    raise (Mitos_util.Codec.Malformed "bad shadow checkpoint magic");
  let mem_capacity = D.uint dec in
  let num_regs = D.uint dec in
  let m_prov = D.uint dec in
  let strategy = decode_strategy dec in
  let backend =
    match D.uint dec with
    | 0 -> Hashed
    | 1 -> Paged
    | n -> raise (Mitos_util.Codec.Malformed (Printf.sprintf "backend %d" n))
  in
  let t = create ~strategy ~backend ~mem_capacity ~num_regs ~m_prov () in
  let entries =
    D.list dec (fun dec ->
        let addr = D.uint dec in
        let tags = D.list dec Tag.decode in
        (addr, tags))
  in
  List.iter
    (fun (addr, tags) ->
      if List.length tags > m_prov then
        raise (Mitos_util.Codec.Malformed "provenance list exceeds M_prov");
      (* lists are within capacity, so adds never evict and the exact
         order is reproduced *)
      List.iter (fun tag -> ignore (add_tag_addr t addr tag)) tags)
    entries;
  let regs = D.array dec (fun dec -> D.list dec Tag.decode) in
  if Array.length regs <> num_regs then
    raise (Mitos_util.Codec.Malformed "register count mismatch");
  Array.iteri
    (fun r tags -> List.iter (fun tag -> ignore (add_tag_reg t r tag)) tags)
    regs;
  D.expect_end dec;
  t
