open Mitos_dift
module Machine = Mitos_isa.Machine
module Os = Mitos_system.Os
module Layout = Mitos_system.Layout
module Trace = Mitos_replay.Trace

type built = {
  name : string;
  description : string;
  program : Mitos_isa.Program.t;
  os : Os.t;
}

let machine_of b =
  Machine.create ~mem_size:Layout.mem_size ~syscall:(Os.handler b.os) b.program

let engine_of ?config ~policy b =
  Engine.create ?config ~policy ~source_tag:(Os.source_tag b.os) b.program

(* Engine-level instruments plus the run-level metrics sampler: one
   [?obs] argument wires the whole stack; [?audit] threads the
   decision flight recorder alongside. *)
let instrument_engine ?sample_every ?observe ?audit obs engine =
  Engine.instrument ?sample_every ?audit engine obs;
  if Mitos_obs.Obs.enabled obs then
    Metrics.attach_sampler ?sample_every
      ~registry:(Mitos_obs.Obs.registry obs) ?observe engine

let wire ?sample_every ?observe ?obs ?audit engine =
  match (obs, audit) with
  | None, None -> ()
  | Some obs, _ -> instrument_engine ?sample_every ?observe ?audit obs engine
  | None, Some _ ->
    instrument_engine ?sample_every ?observe ?audit Mitos_obs.Obs.disabled
      engine

let run_live ?config ?max_steps ?obs ?sample_every ?observe ?audit ~policy b =
  let engine = engine_of ?config ~policy b in
  wire ?sample_every ?observe ?obs ?audit engine;
  Engine.attach engine (machine_of b);
  ignore (Engine.run ?max_steps engine);
  engine

let sources_key = "sources"

let record ?max_steps b =
  let trace =
    Mitos_replay.Recorder.record ?max_steps
      ~meta:[ ("workload", b.name) ]
      (machine_of b)
  in
  (* Source ids are minted while the OS runs (per-read tags, export
     marks), so the id -> action table must travel with the trace for
     the recording to be replayable against a fresh OS. *)
  Trace.add_meta trace sources_key (Os.dump_sources b.os)

let source_tag_of_trace trace =
  Option.map Os.source_lookup_of_string (Trace.find_meta trace sources_key)

let replay_engine ?config ?obs ?sample_every ?observe ?audit ~policy b trace =
  let source_tag =
    match source_tag_of_trace trace with
    | Some lookup -> lookup
    | None -> Os.source_tag b.os
  in
  let engine = Engine.create ?config ~policy ~source_tag b.program in
  wire ?sample_every ?observe ?obs ?audit engine;
  Engine.attach_shadow engine ~mem_size:(Trace.mem_size trace);
  engine

let replay ?config ?obs ?sample_every ?observe ?audit ~policy b trace =
  let engine =
    replay_engine ?config ?obs ?sample_every ?observe ?audit ~policy b trace
  in
  ignore
    (Mitos_replay.Driver.run ?obs trace ~f:(Engine.process_record engine));
  engine
