(** Workload plumbing: a built workload bundles the assembled program
    with the OS instance holding its resources (connections, files,
    processes). Building is deterministic in the seed, so recording
    the same workload twice yields byte-identical traces. *)

open Mitos_dift

type built = {
  name : string;
  description : string;
  program : Mitos_isa.Program.t;
  os : Mitos_system.Os.t;
}

val machine_of : built -> Mitos_isa.Machine.t
(** A fresh machine (full {!Mitos_system.Layout.mem_size} memory) wired
    to the workload's OS. *)

val engine_of : ?config:Engine.config -> policy:Policy.t -> built -> Engine.t
(** An engine for this workload's program and taint sources (not yet
    attached to a machine or shadow). *)

val run_live :
  ?config:Engine.config ->
  ?max_steps:int ->
  ?obs:Mitos_obs.Obs.t ->
  ?sample_every:int ->
  ?observe:(Metrics.sample -> unit) ->
  ?audit:Mitos_obs.Audit.t ->
  policy:Policy.t ->
  built ->
  Engine.t
(** Execute the workload under the policy, returning the finished
    engine. [obs] instruments the engine (see {!Engine.instrument});
    [sample_every] is its sampling period; [observe] additionally
    receives every {!Metrics.attach_sampler} sample (the health
    watchdog's feed — only called when [obs] is enabled); [audit]
    threads a decision flight recorder through the run (with or
    without [obs]). *)

val record : ?max_steps:int -> built -> Mitos_replay.Trace.t
(** Record an execution trace (the PANDA step). The workload's OS
    streams are consumed; build a fresh workload for another
    recording. The trace embeds the OS's source-id → tag table, so it
    is replayable on its own (including from disk). *)

val replay :
  ?config:Engine.config ->
  ?obs:Mitos_obs.Obs.t ->
  ?sample_every:int ->
  ?observe:(Metrics.sample -> unit) ->
  ?audit:Mitos_obs.Audit.t ->
  policy:Policy.t ->
  built ->
  Mitos_replay.Trace.t ->
  Engine.t
(** Replay a recorded trace under a policy. Taint sources resolve
    through the table embedded in the trace (falling back to the given
    workload's live OS for traces recorded before that table
    existed). The record loop goes through {!Mitos_replay.Driver.run},
    so with [obs] the run additionally produces replay spans and
    throughput metrics on top of the engine instrumentation. *)

val replay_engine :
  ?config:Engine.config ->
  ?obs:Mitos_obs.Obs.t ->
  ?sample_every:int ->
  ?observe:(Metrics.sample -> unit) ->
  ?audit:Mitos_obs.Audit.t ->
  policy:Policy.t ->
  built ->
  Mitos_replay.Trace.t ->
  Engine.t
(** The setup half of {!replay}: the wired engine with its shadow
    attached, before any record has been processed. Lets a caller
    (the telemetry pilot) publish the engine's {!Engine.progress} to
    an exposition server and {e then} drive the replay, so scrapes
    observe it mid-run. Drive it with {!Mitos_replay.Driver.run}. *)
