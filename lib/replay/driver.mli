(** The instrumented replay loop.

    [run] feeds every record of a trace to a consumer (typically
    [Engine.process_record]) exactly like [Trace.iter], but threads an
    observability context through the loop: the whole replay becomes a
    [replay] tracer span with one nested span per [chunk] records, and
    the registry receives record totals, elapsed ticks and a
    throughput gauge. With a disabled context the loop degenerates to
    a plain iteration — no clock reads, no per-record overhead. *)

val run :
  ?obs:Mitos_obs.Obs.t ->
  ?chunk:int ->
  Trace.t ->
  f:(Mitos_isa.Machine.exec_record -> unit) ->
  int
(** [run ?obs ?chunk trace ~f] applies [f] to every record in order
    and returns the number of records replayed. [chunk] (default 8192,
    must be positive) is the granularity of the nested [replay.chunk]
    spans and of the throughput samples.

    Registry series (when [obs] is enabled):
    - [mitos_replay_records_total] — records replayed;
    - [mitos_replay_elapsed_ticks] — clock ticks for the whole loop;
    - [mitos_replay_records_per_sec] — records per second under the
      real clock; under the logical clock the same formula yields
      records per million ticks (documented, deterministic).

    All three are refreshed after every chunk, so a live [/metrics]
    scrape mid-replay reads current progress rather than zeros; the
    final values are those of the completed loop. *)
