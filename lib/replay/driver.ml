module Obs = Mitos_obs.Obs
module Tracer = Mitos_obs.Tracer
module Registry = Mitos_obs.Registry

let plain trace ~f =
  Trace.iter trace f;
  Trace.length trace

let instrumented obs ~chunk trace ~f =
  let registry = Obs.registry obs in
  let tracer = Obs.tracer obs in
  let records_total =
    Registry.counter registry ~help:"records replayed"
      "mitos_replay_records_total"
  in
  let elapsed_gauge =
    Registry.gauge registry ~help:"replay loop duration in clock ticks"
      "mitos_replay_elapsed_ticks"
  in
  let throughput_gauge =
    Registry.gauge registry
      ~help:
        "records per second (real clock) or per million ticks (logical \
         clock)"
      "mitos_replay_records_per_sec"
  in
  let records = Trace.records trace in
  let n = Array.length records in
  let t0 = Obs.now obs in
  Tracer.span_begin tracer
    ~args:[ ("records", string_of_int n) ]
    "replay";
  (* Progress instruments are refreshed once per chunk (not once at the
     end) so a live [/metrics] scrape mid-replay sees current figures;
     the per-chunk refresh settles on the same final values. *)
  let refresh done_so_far =
    let elapsed = Obs.now obs - t0 in
    Registry.set_gauge elapsed_gauge (float_of_int elapsed);
    Registry.set_gauge throughput_gauge
      (if elapsed = 0 then 0.0
       else float_of_int done_so_far /. (float_of_int elapsed /. 1e6))
  in
  let i = ref 0 in
  while !i < n do
    let first = !i in
    let stop = min n (first + chunk) in
    Tracer.span_begin tracer
      ~args:[ ("first", string_of_int first) ]
      "replay.chunk";
    while !i < stop do
      f records.(!i);
      incr i
    done;
    Tracer.span_end tracer;
    Registry.add records_total (stop - first);
    refresh stop
  done;
  Tracer.span_end tracer;
  refresh n;
  n

let run ?(obs = Obs.disabled) ?(chunk = 8192) trace ~f =
  if chunk < 1 then invalid_arg "Driver.run: chunk must be positive";
  if Obs.enabled obs then instrumented obs ~chunk trace ~f
  else plain trace ~f
