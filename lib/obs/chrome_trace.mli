(** Render a {!Tracer} buffer in the Chrome [trace_event] JSON format,
    loadable in [chrome://tracing] and {{:https://ui.perfetto.dev}
    Perfetto}.

    Span begins/ends become ["B"]/["E"] phase events, instants ["i"],
    counter samples ["C"] (drawn as stacked counter tracks). The [ts]
    field carries the tracer clock's raw tick value: microseconds
    under {!Obs_clock.real}, logical ticks under {!Obs_clock.logical}
    (the viewer's time axis is then "clock reads", which is what makes
    the export byte-deterministic).

    Rendering is deterministic: fields are emitted in a fixed order
    and numbers through one canonical formatter. Call
    {!Tracer.finish} first so every span is closed. *)

val to_json : ?pid:int -> ?tid:int -> Tracer.t -> string
(** The standard wrapper object
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. [pid]/[tid]
    default to 1. *)

val to_jsonl : ?pid:int -> ?tid:int -> Tracer.t -> string
(** One event object per line (no wrapper) — grep/jq-friendly, and
    valid input for Perfetto's JSON importer, which accepts a bare
    event array. *)
