(** A metrics registry: named counters, gauges and log-bucketed
    histograms with deterministic text exposition.

    Instruments are get-or-create, keyed by [(name, labels)] — asking
    twice for the same key returns the same instrument, so
    instrumentation sites can resolve their handles eagerly (one hash
    lookup at setup) and then update through the returned value with
    no per-event lookup cost.

    Exposition is deterministic: instruments are rendered sorted by
    name then labels, floats are printed through one canonical
    formatter, and nothing in the output depends on hash order or wall
    time. Two runs that record the same values render byte-identical
    Prometheus text and JSON — the property the determinism tests
    assert.

    Concurrency: instrument creation and exposition serialize on an
    internal mutex, so the {!Server} exposition domain can render
    [/metrics] while the run keeps resolving handles. A scrape copies
    every instrument's current value into a plain snapshot under that
    lock and renders the Prometheus/JSON text with the lock released —
    lock hold is bounded by the instrument count, never by string
    formatting, and each exposition is one point-in-time cut.
    Instrument {e updates} (through the returned handles) stay
    lock-free; updates racing a snapshot may be missed by that render
    but are never lost from the instrument. *)

type t
type counter
type gauge

val create : unit -> t

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Raises [Invalid_argument] if the key exists as a different
    instrument kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?lo:float ->
  ?growth:float ->
  ?buckets:int ->
  string ->
  Histogram.t
(** The bucket layout arguments are honoured on creation and ignored
    on later lookups of the same key. *)

(** {1 Snapshots}

    One point-in-time cut of a registry as plain data: the federation
    unit. A snapshot has a compact binary codec (the payload of the
    wire protocol's telemetry op), an exact merge, and the same
    deterministic renderers the live registry uses — fleet percentiles
    are computed from merged buckets, never by averaging per-node
    percentiles. *)
module Snapshot : sig
  (** Raw histogram parts: finite upper bounds ([counts] has one more
      entry, the [+inf] overflow bucket), plus exact sum/min/max. *)
  type hist = {
    bounds : float array;
    counts : int array;
    sum : float;
    min_value : float;
    max_value : float;
  }

  type value = Counter of int | Gauge of float | Hist of hist

  type row = {
    name : string;
    labels : (string * string) list;  (** sorted by key *)
    help : string;
    value : value;
  }

  type t = row list
  (** Always sorted by name then labels — every producer in this
      module returns sorted rows, so renders are deterministic. *)

  val sort_rows : row list -> t

  val to_histogram : hist -> Histogram.t
  (** Rebuild a live histogram from the copied parts —
      {!Histogram.quantile} on it reports exactly what the source
      histogram would. Raises [Invalid_argument] on inconsistent
      parts. *)

  val of_histogram : Histogram.t -> hist

  val relabel : node:string -> t -> t
  (** Add (or overwrite) a [node="<id>"] label on every row — how the
      federated exposition keeps per-node series apart. *)

  val merge : (string * t) list -> t
  (** Merge per-node snapshots ([(node_id, snapshot)] pairs) into one
      fleet snapshot: counters with equal [(name, labels)] sum;
      histograms with equal keys and identical bucket layouts merge
      bucket-wise ({!Histogram.merge} semantics); gauges — and any
      kind/layout clash — fall back to per-node rows labelled
      [node="<id>"]. Result is sorted; independent of input order up
      to that sort. *)

  val write : Mitos_util.Codec.Enc.t -> t -> unit
  (** Append the binary form: row count then per-row name, labels,
      help and value, all in {!Mitos_util.Codec} varint encoding
      (floats bit-exact) — merging a decoded snapshot equals merging
      the original. *)

  val read : Mitos_util.Codec.Dec.t -> t
  (** Decode and canonicalize (labels normalized, rows re-sorted).
      Raises [Mitos_util.Codec.Malformed] on truncated or inconsistent
      input — including histogram parts that could not have come from
      a real histogram (length mismatch, non-increasing bounds). *)

  val encode : t -> string
  val decode : string -> t
  (** {!read} on a standalone string, requiring it to be consumed
      exactly. Raises [Mitos_util.Codec.Malformed]. *)

  val to_prometheus : t -> string
  (** Identical format to the registry-level {!to_prometheus}. *)

  val to_json : t -> string
  (** Identical format to the registry-level {!to_json}. *)
end

val snapshot : t -> Snapshot.t
(** One point-in-time cut of every instrument, taken under the
    creation lock (values copied, no formatting). *)

val to_prometheus : t -> string
(** Prometheus text exposition format v0.0.4: [# HELP]/[# TYPE]
    headers per metric family, [_bucket]/[_sum]/[_count] series with
    cumulative [le] bounds for histograms, plus estimated
    p50/p95/p99 summary-style series ([{quantile="0.5"}] etc., from
    {!Histogram.quantile}) so dashboards get latency percentiles
    without re-deriving them from the buckets. Equals
    [Snapshot.to_prometheus (snapshot t)]. *)

val to_json : t -> string
(** One JSON object: [{"counters": {...}, "gauges": {...},
    "histograms": {...}}], keys sorted, histogram objects carrying
    count/sum/min/max/buckets. *)

(** {1 Rendering helpers}

    Shared with the other exporters so every emitted number and string
    goes through one canonical formatter. *)

val fmt_value : float -> string
(** Integer-valued floats without a fractional part, otherwise
    [%.9g]; non-finite values in Prometheus spelling ([NaN], [+Inf],
    [-Inf]). *)

val json_string : string -> string
(** JSON-quoted and escaped. *)

val escape_label : string -> string
(** Prometheus label-value escaping: backslash, double quote and
    newline become backslash-escaped two-character sequences;
    everything else is verbatim. Injective (the QCheck round-trip test
    inverts it), so distinct label values never collide in the
    exposition. *)
