(** A metrics registry: named counters, gauges and log-bucketed
    histograms with deterministic text exposition.

    Instruments are get-or-create, keyed by [(name, labels)] — asking
    twice for the same key returns the same instrument, so
    instrumentation sites can resolve their handles eagerly (one hash
    lookup at setup) and then update through the returned value with
    no per-event lookup cost.

    Exposition is deterministic: instruments are rendered sorted by
    name then labels, floats are printed through one canonical
    formatter, and nothing in the output depends on hash order or wall
    time. Two runs that record the same values render byte-identical
    Prometheus text and JSON — the property the determinism tests
    assert.

    Concurrency: instrument creation and exposition serialize on an
    internal mutex, so the {!Server} exposition domain can render
    [/metrics] while the run keeps resolving handles. A scrape copies
    every instrument's current value into a plain snapshot under that
    lock and renders the Prometheus/JSON text with the lock released —
    lock hold is bounded by the instrument count, never by string
    formatting, and each exposition is one point-in-time cut.
    Instrument {e updates} (through the returned handles) stay
    lock-free; updates racing a snapshot may be missed by that render
    but are never lost from the instrument. *)

type t
type counter
type gauge

val create : unit -> t

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Raises [Invalid_argument] if the key exists as a different
    instrument kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?lo:float ->
  ?growth:float ->
  ?buckets:int ->
  string ->
  Histogram.t
(** The bucket layout arguments are honoured on creation and ignored
    on later lookups of the same key. *)

val to_prometheus : t -> string
(** Prometheus text exposition format v0.0.4: [# HELP]/[# TYPE]
    headers per metric family, [_bucket]/[_sum]/[_count] series with
    cumulative [le] bounds for histograms, plus estimated
    p50/p95/p99 summary-style series ([{quantile="0.5"}] etc., from
    {!Histogram.quantile}) so dashboards get latency percentiles
    without re-deriving them from the buckets. *)

val to_json : t -> string
(** One JSON object: [{"counters": {...}, "gauges": {...},
    "histograms": {...}}], keys sorted, histogram objects carrying
    count/sum/min/max/buckets. *)

(** {1 Rendering helpers}

    Shared with the other exporters so every emitted number and string
    goes through one canonical formatter. *)

val fmt_value : float -> string
(** Integer-valued floats without a fractional part, otherwise
    [%.9g]; non-finite values in Prometheus spelling ([NaN], [+Inf],
    [-Inf]). *)

val json_string : string -> string
(** JSON-quoted and escaped. *)

val escape_label : string -> string
(** Prometheus label-value escaping: backslash, double quote and
    newline become backslash-escaped two-character sequences;
    everything else is verbatim. Injective (the QCheck round-trip test
    inverts it), so distinct label values never collide in the
    exposition. *)
