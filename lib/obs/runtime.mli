(** Runtime telemetry: OCaml GC counters and {!Contended} lock stats
    sampled into registry gauges ([mitos_gc_*], [mitos_lock_*]).

    Sampling is pull-based: nothing lands in the registry until
    {!sample} (or a {!start}ed background sampler) runs. Keep these
    gauges out of deterministic exposition paths — the oneshot
    telemetry diff in CI compares /metrics byte-for-byte across
    --jobs, and GC word counts are anything but deterministic. Only
    long-running serving paths and the profiler should sample. *)

val sample_gc : Registry.t -> unit
(** Gauges from [Gc.quick_stat], labelled with the calling domain. *)

val export_locks : Registry.t -> unit
(** Gauges from [Contended.aggregate], labelled [lock="<name>"]. *)

val sample : Registry.t -> unit
(** {!sample_gc} plus {!export_locks}. *)

val signals : unit -> (string * float) list
(** Health-rule signals ["lock_<name>_contention"]: contended share of
    acquisitions per lock, in [0, 1]. *)

type sampler

val start : ?period:float -> Registry.t -> sampler
(** Background sampling domain; default period 0.1 s. *)

val stop : sampler -> unit
(** Stops and joins the sampler. *)
