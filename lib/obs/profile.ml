type row = { stack : string list; self : int; total : int; count : int }

(* Frame names feed a semicolon-separated collapsed-stack line;
   flamegraph.pl splits on ';' and on the final ' ', so both are
   replaced. *)
let sanitize_frame name =
  String.map (function ';' | ' ' -> '_' | c -> c) name

let fold ?root tracer =
  let tbl : (string list, int * int * int) Hashtbl.t = Hashtbl.create 64 in
  let add stack self total =
    let stack = match root with None -> stack | Some r -> stack @ [ r ] in
    let s0, t0, c0 =
      Option.value (Hashtbl.find_opt tbl stack) ~default:(0, 0, 0)
    in
    Hashtbl.replace tbl stack (s0 + self, t0 + total, c0 + 1)
  in
  (* Stack of open frames, innermost first: name, begin ts, time
     attributed to children so far. *)
  let open_frames = ref [] in
  Array.iter
    (fun ev ->
      match (ev : Tracer.event) with
      | Begin { name; ts; _ } ->
        open_frames := (sanitize_frame name, ts, ref 0) :: !open_frames
      | End { ts } -> (
        match !open_frames with
        | [] -> ()
        | (name, ts0, children) :: rest ->
          open_frames := rest;
          let total = max 0 (ts - ts0) in
          let self = max 0 (total - !children) in
          (match rest with
          | (_, _, parent_children) :: _ ->
            parent_children := !parent_children + total
          | [] -> ());
          let stack = name :: List.map (fun (n, _, _) -> n) rest in
          add stack self total)
      | Instant _ | Counter _ -> ())
    (Tracer.events tracer);
  Hashtbl.fold
    (fun stack (self, total, count) acc ->
      { stack; self; total; count } :: acc)
    tbl []
  (* [stack] is innermost-first here; render flips it. Sort by the
     rendered (root-first) frame list for deterministic output. *)
  |> List.map (fun r -> { r with stack = List.rev r.stack })
  |> List.sort (fun a b -> compare a.stack b.stack)

let render_rows ?(scale = 1) rows =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      if r.self * scale > 0 then
        Buffer.add_string buf
          (Printf.sprintf "%s %d\n" (String.concat ";" r.stack) (r.self * scale)))
    rows;
  Buffer.contents buf

let collapse ?root ?scale tracer = render_rows ?scale (fold ?root tracer)

let top ?(n = 10) rows =
  List.sort (fun a b -> compare b.self a.self) rows
  |> List.filteri (fun i _ -> i < n)
