(** Span tracer: nestable begin/end spans, instants and counter
    samples on a shared clock, buffered in bounded memory.

    The buffer is bounded: once [capacity] events have been retained,
    further events are *dropped* (and counted in {!dropped}) rather
    than overwritten — bounded memory is the contract that lets
    tracing stay enabled on million-step replays, and keep-oldest
    makes the retained prefix deterministic. The one exception is the
    {!span_end} of a span whose begin was retained: it is always
    appended (memory overshoots capacity by at most the nesting
    depth), so the event stream stays well-nested. A span whose begin
    was dropped drops its end too.

    Unbalanced usage is tolerated: an {!span_end} with no open span is
    counted in {!unmatched_ends} and otherwise ignored; spans still
    open at {!finish} are closed in LIFO order at the then-current
    tick. Exporters (see {!Chrome_trace}) therefore always see a
    well-nested event stream. *)

type event =
  | Begin of { name : string; ts : int; args : (string * string) list }
  | End of { ts : int }
  | Instant of { name : string; ts : int; args : (string * string) list }
  | Counter of { name : string; ts : int; values : (string * float) list }

type t

val create : ?capacity:int -> clock:Obs_clock.t -> unit -> t
(** Default capacity: 65536 events. Raises [Invalid_argument] on a
    non-positive capacity. *)

val span_begin : t -> ?args:(string * string) list -> string -> unit
val span_end : t -> unit

val with_span : t -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Ends the span even if the function raises. *)

val complete : t -> ?args:(string * string) list -> ts0:int -> ts1:int -> string -> unit
(** Record an already-finished span with explicit begin/end ticks —
    for work measured elsewhere (e.g. a server worker that timed its
    handler) and recorded after the fact. Must not be interleaved with
    an open [span_begin] from another caller: appends Begin and End
    adjacently, so call it only between top-level spans. *)

val instant : t -> ?args:(string * string) list -> string -> unit

val counter : t -> string -> (string * float) list -> unit
(** Record a named set of counter values at the current tick (rendered
    as a stacked counter track by trace viewers). *)

val depth : t -> int
(** Currently open spans. *)

val finish : t -> unit
(** Close every open span. Idempotent; call before exporting. *)

val events : t -> event array
(** Retained events, oldest first. *)

val length : t -> int
val dropped : t -> int
val unmatched_ends : t -> int
