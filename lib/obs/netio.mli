(** Shared socket/timeout plumbing.

    One home for the Unix-socket boilerplate that every networked
    piece of the repo needs — the {!Server} exposition fetch side,
    [mitos-cli watch], and the [Mitos_net] wire client/server. The
    module owns the single [?timeout] convention: every blocking
    operation takes [?timeout] in seconds, defaulting to
    {!default_timeout}, applied as [SO_RCVTIMEO]/[SO_SNDTIMEO] on the
    descriptor.

    All [Error] returns carry a one-line human message; nothing here
    raises for expected network failures. *)

val default_timeout : float
(** 5 seconds — what every [?timeout] in the repo defaults to. *)

val resolve : string -> Unix.inet_addr
(** Numeric address or hostname. Raises [Failure] with a one-line
    message on an unresolvable host. *)

val set_timeouts : ?timeout:float -> Unix.file_descr -> unit
(** Apply [SO_RCVTIMEO]/[SO_SNDTIMEO]. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string; raises [Exit] if the peer stops
    accepting bytes, [Unix.Unix_error] on socket errors. *)

val read_to_eof : Unix.file_descr -> string
(** Drain the descriptor until EOF. *)

val close_quietly : Unix.file_descr -> unit
(** [Unix.close], swallowing [Unix_error] (idempotent teardown). *)

val connect_tcp :
  ?timeout:float -> host:string -> port:int -> unit ->
  (Unix.file_descr, string) result
(** Resolve, create, apply timeouts and connect. [Error] on an
    unresolvable host, refusal or timeout — the descriptor is closed
    on every failure path. The message distinguishes the failure
    class: ["... refused connection (...)"] when the peer answered
    with a reset (nobody listening — a killed node), ["... timed out
    (...)"] when nothing answered within the timeout (a slow or
    partitioned node), ["... unreachable (...)"] otherwise. *)

val connect_unix :
  ?timeout:float -> string -> (Unix.file_descr, string) result
(** Same contract for a Unix-domain socket path. *)

val listen_tcp :
  ?backlog:int -> host:string -> port:int -> unit ->
  Unix.file_descr * int
(** Bind ([SO_REUSEADDR]) and listen; returns the descriptor and the
    bound port (useful with [port:0]). Raises [Unix.Unix_error] if the
    address cannot be bound, [Failure] on an unresolvable host. *)

val listen_unix : ?backlog:int -> string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket path, unlinking any stale
    socket file first. *)
