type stats = {
  acquisitions : int;
  contended : int;
  wait_ns_total : int;
  wait_ns_max : int;
  hold_ns_total : int;
  hold_ns_max : int;
}

type t = {
  name : string;
  mu : Mutex.t;
  acquisitions : int Atomic.t;
  contended_n : int Atomic.t;
  wait_total : int Atomic.t;
  wait_max : int Atomic.t;
  hold_total : int Atomic.t;
  hold_max : int Atomic.t;
  (* Written only by the current holder, under [mu]. *)
  mutable locked_at : int;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let atomic_max a v =
  let rec go () =
    let cur = Atomic.get a in
    if v > cur && not (Atomic.compare_and_set a cur v) then go ()
  in
  go ()

(* All Contended mutexes ever created, for aggregate export. The list
   is append-only and small (one entry per lock site), so a plain
   mutex suffices. *)
let tracked : t list ref = ref []
let tracked_mu = Mutex.create ()

let create name =
  let t =
    {
      name;
      mu = Mutex.create ();
      acquisitions = Atomic.make 0;
      contended_n = Atomic.make 0;
      wait_total = Atomic.make 0;
      wait_max = Atomic.make 0;
      hold_total = Atomic.make 0;
      hold_max = Atomic.make 0;
      locked_at = 0;
    }
  in
  Mutex.lock tracked_mu;
  tracked := t :: !tracked;
  Mutex.unlock tracked_mu;
  t

let lock t =
  Atomic.incr t.acquisitions;
  if not (Mutex.try_lock t.mu) then begin
    Atomic.incr t.contended_n;
    let t0 = now_ns () in
    Mutex.lock t.mu;
    let waited = now_ns () - t0 in
    Atomic.fetch_and_add t.wait_total waited |> ignore;
    atomic_max t.wait_max waited
  end;
  t.locked_at <- now_ns ()

let end_hold t =
  let held = now_ns () - t.locked_at in
  Atomic.fetch_and_add t.hold_total held |> ignore;
  atomic_max t.hold_max held

let unlock t =
  end_hold t;
  Mutex.unlock t.mu

let with_lock t f =
  lock t;
  Fun.protect ~finally:(fun () -> unlock t) f

(* Condition interop: the wait releases [mu], so the current hold
   segment ends here and a fresh one starts when the wait returns.
   The reacquisition counts as an acquisition (contended if we had to
   queue behind the signaler's critical section is not observable, so
   it is counted as uncontended). *)
let wait t cond =
  end_hold t;
  Condition.wait cond t.mu;
  Atomic.incr t.acquisitions;
  t.locked_at <- now_ns ()

let mutex t = t.mu
let name t = t.name

let stats t =
  {
    acquisitions = Atomic.get t.acquisitions;
    contended = Atomic.get t.contended_n;
    wait_ns_total = Atomic.get t.wait_total;
    wait_ns_max = Atomic.get t.wait_max;
    hold_ns_total = Atomic.get t.hold_total;
    hold_ns_max = Atomic.get t.hold_max;
  }

let all () =
  Mutex.lock tracked_mu;
  let l = !tracked in
  Mutex.unlock tracked_mu;
  List.rev l

(* Sum per name: several Registry instances all call their lock
   "registry"; the export wants one series per lock site, not per
   instance. *)
let aggregate () =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun t ->
      let s = stats t in
      match Hashtbl.find_opt tbl t.name with
      | None -> Hashtbl.add tbl t.name s
      | Some prev ->
        Hashtbl.replace tbl t.name
          {
            acquisitions = prev.acquisitions + s.acquisitions;
            contended = prev.contended + s.contended;
            wait_ns_total = prev.wait_ns_total + s.wait_ns_total;
            wait_ns_max = max prev.wait_ns_max s.wait_ns_max;
            hold_ns_total = prev.hold_ns_total + s.hold_ns_total;
            hold_ns_max = max prev.hold_ns_max s.hold_ns_max;
          })
    (all ());
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
