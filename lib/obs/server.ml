type payload = { status : int; content_type : string; body : string }

let text ?(status = 200) body =
  { status; content_type = "text/plain; charset=utf-8"; body }

let json ?(status = 200) body =
  { status; content_type = "application/json"; body }

let prometheus ?(status = 200) body =
  { status; content_type = "text/plain; version=0.0.4"; body }

type route = {
  path : string;
  file : string;
  describe : string;
  payload : (string * string) list -> payload;
}

let route ?(describe = "") ~file path payload =
  { path; file; describe; payload = (fun _query -> payload ()) }

let route_q ?(describe = "") ~file path payload = { path; file; describe; payload }

(* -- HTTP plumbing --------------------------------------------------- *)

let status_reason = function
  | 200 -> "OK"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let write_all = Netio.write_all

let respond fd p =
  let head =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n"
      p.status (status_reason p.status) p.content_type
      (String.length p.body)
  in
  write_all fd (head ^ p.body)

(* Read until the end of the request head (we never read bodies: the
   only supported method is GET), a size bound, or EOF. *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 4096 in
  let rec seen_terminator () =
    let s = Buffer.contents buf in
    let rec find i =
      i + 3 < String.length s
      && (String.sub s i 4 = "\r\n\r\n" || find (i + 1))
    in
    String.length s >= 4 && find 0
  and go () =
    if Buffer.length buf > 65536 || seen_terminator () then
      Buffer.contents buf
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Buffer.contents buf
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        Buffer.contents buf
  in
  go ()

(* "a=1&b=2" → [("a","1"); ("b","2")]. No percent-decoding: route
   payloads that care (e.g. /tracez?trace_id=) match hex ids, which
   never need escaping. Keys without '=' get the empty value. *)
let parse_query s =
  String.split_on_char '&' s
  |> List.filter_map (fun kv ->
         if kv = "" then None
         else
           match String.index_opt kv '=' with
           | None -> Some (kv, "")
           | Some eq ->
             Some
               ( String.sub kv 0 eq,
                 String.sub kv (eq + 1) (String.length kv - eq - 1) ))

(* First request line → (method, path, query pairs). *)
let parse_request head =
  match String.index_opt head '\r' with
  | None -> None
  | Some eol -> (
    let line = String.sub head 0 eol in
    match String.split_on_char ' ' line with
    | meth :: target :: _ ->
      let path, query =
        match String.index_opt target '?' with
        | Some q ->
          ( String.sub target 0 q,
            parse_query
              (String.sub target (q + 1) (String.length target - q - 1)) )
        | None -> (target, [])
      in
      Some (meth, path, query)
    | _ -> None)

let index_payload routes _query =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "mitos telemetry endpoints:\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-16s %s\n" r.path r.describe))
    routes;
  text (Buffer.contents buf)

let handle routes fd =
  let head = read_head fd in
  let reply =
    match parse_request head with
    | None -> text ~status:500 "malformed request\n"
    | Some (meth, _, _) when meth <> "GET" ->
      text ~status:405 "only GET is supported\n"
    | Some (_, path, query) -> (
      match List.find_opt (fun r -> r.path = path) routes with
      | None -> text ~status:404 (Printf.sprintf "no route %s\n" path)
      | Some r -> (
        try r.payload query
        with exn ->
          text ~status:500 (Printf.sprintf "%s\n" (Printexc.to_string exn))))
  in
  try respond fd reply with Exit | Unix.Unix_error _ -> ()

(* -- server loop ----------------------------------------------------- *)

type t = {
  sock : Unix.file_descr;
  bound_host : string;
  bound_port : int;
  stopping : bool Atomic.t;
  mutable domain : unit Domain.t option;
}

(* One accept-and-serve loop on the server domain. [select] with a
   short timeout doubles as the stop poll: [stop] flips the flag and
   the loop notices within [tick]. *)
let serve_loop t routes =
  let tick = 0.1 in
  let routes_with_index =
    { path = "/"; file = "index.txt"; describe = "this index";
      payload = index_payload routes }
    :: routes
  in
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.sock ] [] [] tick with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept t.sock with
        | client, _ ->
          Netio.set_timeouts client;
          Fun.protect
            ~finally:(fun () -> Netio.close_quietly client)
            (fun () ->
              (* a client dying mid-request must not kill the server *)
              try handle routes_with_index client
              with Unix.Unix_error _ | Exit -> ())
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          ())
      | exception Unix.Unix_error (EINTR, _, _) -> ());
      loop ()
    end
  in
  (try loop () with Unix.Unix_error ((EBADF | EINVAL), _, _) -> ());
  try Unix.close t.sock with Unix.Unix_error _ -> ()

let start ?(host = "127.0.0.1") ?(port = 0) routes =
  let sock, bound_port = Netio.listen_tcp ~host ~port () in
  let t =
    { sock; bound_host = host; bound_port; stopping = Atomic.make false;
      domain = None }
  in
  t.domain <- Some (Domain.spawn (fun () -> serve_loop t routes));
  t

let port t = t.bound_port
let addr t = Printf.sprintf "%s:%d" t.bound_host t.bound_port

let stop t =
  if not (Atomic.exchange t.stopping true) then
    match t.domain with
    | None -> ()
    | Some d ->
      t.domain <- None;
      Domain.join d

(* -- offline twin ---------------------------------------------------- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (EEXIST, _, _) -> ()
  end

let oneshot ~dir routes =
  mkdir_p dir;
  List.map
    (fun r ->
      let path = Filename.concat dir r.file in
      let p = r.payload [] in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc p.body);
      (r.file, path))
    routes

(* -- client ---------------------------------------------------------- *)

let parse_url url =
  let rest =
    let prefix = "http://" in
    if
      String.length url >= String.length prefix
      && String.sub url 0 (String.length prefix) = prefix
    then String.sub url (String.length prefix) (String.length url - String.length prefix)
    else url
  in
  let authority, path =
    match String.index_opt rest '/' with
    | Some slash ->
      ( String.sub rest 0 slash,
        String.sub rest slash (String.length rest - slash) )
    | None -> (rest, "/")
  in
  match String.rindex_opt authority ':' with
  | None -> Error (Printf.sprintf "no port in %S (want host:port)" url)
  | Some colon -> (
    let host = String.sub authority 0 colon in
    let port_s =
      String.sub authority (colon + 1) (String.length authority - colon - 1)
    in
    match int_of_string_opt port_s with
    | Some port when host <> "" -> Ok (host, port, path)
    | _ -> Error (Printf.sprintf "bad host:port in %S" url))

let fetch ?timeout ~host ~port ~path () =
  match Netio.connect_tcp ?timeout ~host ~port () with
  | Error _ as e -> e
  | Ok sock -> (
    let finally () = Netio.close_quietly sock in
    match
      Fun.protect ~finally (fun () ->
          write_all sock
            (Printf.sprintf
               "GET %s HTTP/1.0\r\nHost: %s\r\nConnection: close\r\n\r\n"
               path host);
          Netio.read_to_eof sock)
    with
    | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "%s:%d unreachable (%s)" host port
           (Unix.error_message err))
    | exception Exit -> Error (Printf.sprintf "%s:%d closed early" host port)
    | raw -> (
      (* "HTTP/1.0 200 OK\r\nheaders...\r\n\r\nbody" *)
      let split_head_body () =
        let rec find i =
          if i + 3 < String.length raw then
            if String.sub raw i 4 = "\r\n\r\n" then Some i else find (i + 1)
          else None
        in
        find 0
      in
      match split_head_body () with
      | None -> Error "malformed HTTP response (no header terminator)"
      | Some sep -> (
        let head = String.sub raw 0 sep in
        let body =
          String.sub raw (sep + 4) (String.length raw - sep - 4)
        in
        let status_line =
          match String.index_opt head '\r' with
          | Some eol -> String.sub head 0 eol
          | None -> head
        in
        match String.split_on_char ' ' status_line with
        | _http :: code :: _ -> (
          match int_of_string_opt code with
          | Some status -> Ok (status, body)
          | None -> Error ("malformed status line: " ^ status_line))
        | _ -> Error ("malformed status line: " ^ status_line))))

let fetch_url ?timeout url =
  match parse_url url with
  | Error _ as e -> e
  | Ok (host, port, path) -> fetch ?timeout ~host ~port ~path ()
