type event =
  | Begin of { name : string; ts : int; args : (string * string) list }
  | End of { ts : int }
  | Instant of { name : string; ts : int; args : (string * string) list }
  | Counter of { name : string; ts : int; values : (string * float) list }

type t = {
  clock : Obs_clock.t;
  capacity : int;
  mutable buf : event array;
  mutable len : int;
  mutable open_spans : bool list;  (* retained? — innermost first *)
  mutable dropped : int;
  mutable unmatched_ends : int;
}

let dummy = End { ts = 0 }

let create ?(capacity = 65536) ~clock () =
  if capacity < 1 then invalid_arg "Tracer.create: capacity must be positive";
  {
    clock;
    capacity;
    buf = Array.make (min capacity 1024) dummy;
    len = 0;
    open_spans = [];
    dropped = 0;
    unmatched_ends = 0;
  }

(* Unconditional append: used for events we are committed to keeping.
   The array only ever grows to capacity + open-span depth, so memory
   stays bounded. *)
let append t ev =
  if t.len = Array.length t.buf then begin
    let buf = Array.make (max 8 (2 * t.len)) dummy in
    Array.blit t.buf 0 buf 0 t.len;
    t.buf <- buf
  end;
  t.buf.(t.len) <- ev;
  t.len <- t.len + 1

(* Append subject to the capacity bound (keep-oldest). *)
let push t ev =
  if t.len < t.capacity then begin
    append t ev;
    true
  end
  else begin
    t.dropped <- t.dropped + 1;
    false
  end

let span_begin t ?(args = []) name =
  let retained = push t (Begin { name; ts = Obs_clock.now t.clock; args }) in
  t.open_spans <- retained :: t.open_spans

let span_end t =
  match t.open_spans with
  | [] -> t.unmatched_ends <- t.unmatched_ends + 1
  | retained :: rest ->
    t.open_spans <- rest;
    (* The matching Begin made it into the buffer, so its End must
       too, even past capacity — exports stay well-nested. A span
       whose Begin was dropped drops its End silently as well. *)
    if retained then append t (End { ts = Obs_clock.now t.clock })

let complete t ?(args = []) ~ts0 ~ts1 name =
  (* A retrospective span with explicit timestamps: Begin and End land
     together, so open_spans bookkeeping is not involved. Capacity
     applies to the pair — if the Begin is dropped the End is too. *)
  if push t (Begin { name; ts = ts0; args }) then append t (End { ts = ts1 })

let with_span t ?args name f =
  span_begin t ?args name;
  Fun.protect ~finally:(fun () -> span_end t) f

let instant t ?(args = []) name =
  ignore (push t (Instant { name; ts = Obs_clock.now t.clock; args }))

let counter t name values =
  ignore (push t (Counter { name; ts = Obs_clock.now t.clock; values }))

let depth t = List.length t.open_spans

let finish t =
  while t.open_spans <> [] do
    span_end t
  done

let events t = Array.sub t.buf 0 t.len
let length t = t.len
let dropped t = t.dropped
let unmatched_ends t = t.unmatched_ends
