type t = {
  enabled : bool;
  clock : Obs_clock.t;
  tracer : Tracer.t;
  registry : Registry.t;
}

let make ~enabled ~trace_capacity ~clock =
  {
    enabled;
    clock;
    tracer = Tracer.create ~capacity:trace_capacity ~clock ();
    registry = Registry.create ();
  }

let disabled =
  make ~enabled:false ~trace_capacity:1 ~clock:(Obs_clock.of_fun (fun () -> 0))

let create ?(trace_capacity = 65536) ?clock () =
  let clock =
    match clock with Some c -> c | None -> Obs_clock.logical ()
  in
  make ~enabled:true ~trace_capacity ~clock

let enabled t = t.enabled
let clock t = t.clock
let tracer t = t.tracer
let registry t = t.registry
let now t = Obs_clock.now t.clock

let with_span t ?args name f =
  if t.enabled then Tracer.with_span t.tracer ?args name f else f ()

let time t hist f =
  if t.enabled then begin
    let t0 = now t in
    Fun.protect
      ~finally:(fun () -> Histogram.observe hist (float_of_int (now t - t0)))
      f
  end
  else f ()

let finish t = Tracer.finish t.tracer

let chrome_trace_json t =
  finish t;
  Chrome_trace.to_json t.tracer

let chrome_trace_jsonl t =
  finish t;
  Chrome_trace.to_jsonl t.tracer

let prometheus t = Registry.to_prometheus t.registry
let metrics_json t = Registry.to_json t.registry

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
