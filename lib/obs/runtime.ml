let domain_label () =
  [ ("domain", string_of_int (Domain.self () :> int)) ]

let sample_gc reg =
  let s = Gc.quick_stat () in
  let labels = domain_label () in
  let g name help v =
    Registry.set_gauge (Registry.gauge reg ~help ~labels name) v
  in
  g "mitos_gc_minor_collections" "Minor GC collections" (float_of_int s.minor_collections);
  g "mitos_gc_major_collections" "Major GC collections" (float_of_int s.major_collections);
  g "mitos_gc_minor_words" "Words allocated in the minor heap" s.minor_words;
  g "mitos_gc_promoted_words" "Words promoted minor to major" s.promoted_words;
  g "mitos_gc_major_words" "Words allocated in the major heap" s.major_words;
  g "mitos_gc_heap_words" "Major heap size in words" (float_of_int s.heap_words);
  g "mitos_gc_top_heap_words" "Peak major heap size in words" (float_of_int s.top_heap_words)

let export_locks reg =
  List.iter
    (fun (name, (s : Contended.stats)) ->
      let labels = [ ("lock", name) ] in
      let g metric help v =
        Registry.set_gauge (Registry.gauge reg ~help ~labels metric) (float_of_int v)
      in
      g "mitos_lock_acquisitions_total" "Lock acquisitions" s.acquisitions;
      g "mitos_lock_contended_total" "Acquisitions that found the lock held" s.contended;
      g "mitos_lock_wait_ns_total" "Total ns spent waiting for the lock" s.wait_ns_total;
      g "mitos_lock_wait_ns_max" "Longest single wait in ns" s.wait_ns_max;
      g "mitos_lock_hold_ns_total" "Total ns the lock was held" s.hold_ns_total;
      g "mitos_lock_hold_ns_max" "Longest single hold in ns" s.hold_ns_max)
    (Contended.aggregate ())

let sample reg =
  sample_gc reg;
  export_locks reg

(* Health-rule signals: one contention-share signal per lock name.
   Signal names must be stable identifiers, so lock names are
   sanitized to [a-z0-9_]. *)
let sanitize name =
  String.map
    (function ('a' .. 'z' | '0' .. '9' | '_') as c -> c | _ -> '_')
    (String.lowercase_ascii name)

let signals () =
  List.map
    (fun (name, (s : Contended.stats)) ->
      let share =
        if s.acquisitions = 0 then 0.0
        else float_of_int s.contended /. float_of_int s.acquisitions
      in
      ("lock_" ^ sanitize name ^ "_contention", share))
    (Contended.aggregate ())

type sampler = { stop_flag : bool Atomic.t; domain : unit Domain.t }

let start ?(period = 0.1) reg =
  let stop_flag = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        while not (Atomic.get stop_flag) do
          sample reg;
          Unix.sleepf period
        done)
  in
  { stop_flag; domain }

let stop s =
  Atomic.set s.stop_flag true;
  Domain.join s.domain
