type context = { trace_id : string; span_id : string }

type t = { mutable state : int64; clock : Obs_clock.t }

(* splitmix64: a tiny, well-mixed PRNG. Each [next] also folds in the
   current clock tick so ids differ between runs on the real clock but
   stay reproducible on a logical clock with a fixed seed. *)
let golden = 0x9e3779b97f4a7c15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let create ?(seed = 0) clock = { state = Int64.of_int seed; clock }

let next t =
  let tick = Int64.of_int (Obs_clock.now t.clock) in
  t.state <- Int64.add t.state golden;
  mix64 (Int64.logxor t.state (Int64.mul tick golden))

let hex16 v = Printf.sprintf "%016Lx" v

let fresh t =
  let hi = next t and lo = next t in
  let span = next t in
  { trace_id = hex16 hi ^ hex16 lo; span_id = hex16 span }

let child t parent = { parent with span_id = hex16 (next t) }

let is_hex s =
  String.for_all
    (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
    s

let is_valid_trace_id s = String.length s = 32 && is_hex s
let is_valid_span_id s = String.length s = 16 && is_hex s

let to_args ctx = [ ("trace_id", ctx.trace_id); ("span_id", ctx.span_id) ]
