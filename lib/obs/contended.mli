(** Instrumented mutex: a [Mutex.t] wrapper that counts acquisitions,
    contended acquisitions (the fast-path [try_lock] failed), and
    total/max wait and hold nanoseconds, so the known hot locks
    (executor queue, estimator slots, registry exposition) answer
    "where does the time go" with numbers instead of guesses.

    The uncontended fast path adds one atomic increment, a [try_lock]
    and two clock reads over a bare mutex. Counter updates are atomic,
    so [stats] may be read from any domain at any time; values are
    monotonic but mutually unsynchronized (a reader can observe an
    acquisition before its hold time lands).

    Every mutex created here is kept on a global list for
    {!aggregate}, so create them per lock *site* (at module or
    structure init), not per operation. *)

type t

type stats = {
  acquisitions : int;
  contended : int;  (** acquisitions that found the lock held *)
  wait_ns_total : int;
  wait_ns_max : int;
  hold_ns_total : int;
  hold_ns_max : int;
}

val create : string -> t
(** [create name] — [name] keys the aggregate export; reuse the same
    name for locks that should report as one series. *)

val lock : t -> unit
val unlock : t -> unit
val with_lock : t -> (unit -> 'a) -> 'a

val wait : t -> Condition.t -> unit
(** [wait t cond] is [Condition.wait cond (mutex t)] with hold
    accounting split around the wait: the current hold segment ends,
    and the reacquisition on wakeup starts a new one. *)

val mutex : t -> Mutex.t
(** The underlying mutex, for [Condition.signal]-style interop. Do not
    lock it directly — accounting would be skipped. *)

val name : t -> string
val stats : t -> stats

val all : unit -> t list
(** Every instrumented mutex created so far, in creation order. *)

val aggregate : unit -> (string * stats) list
(** Stats summed per name, sorted by name. *)
