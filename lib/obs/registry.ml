type counter = int ref
type gauge = float ref

type kind =
  | Counter of counter
  | Gauge of gauge
  | Hist of Histogram.t

type metric = {
  name : string;
  labels : (string * string) list;  (* sorted by key *)
  help : string;
  kind : kind;
}

(* [lock] serializes structural access to the table: instrument
   creation and the exposition fold. It exists for the exposition
   server, which renders from its own domain while the instrumented
   run keeps resolving handles. Instrument *updates* stay lock-free:
   they go through the handles returned here, never through the
   table. The lock is a {!Contended} mutex so exposition-vs-creation
   contention shows up in the lock metrics it itself exports. *)
type t = {
  tbl : (string * (string * string) list, metric) Hashtbl.t;
  lock : Contended.t;
}

let create () = { tbl = Hashtbl.create 64; lock = Contended.create "registry" }

let locked t f = Contended.with_lock t.lock f

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let find_or_add t ~name ~labels ~help make =
  let labels = norm_labels labels in
  let key = (name, labels) in
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some m -> m.kind
      | None ->
        let kind = make () in
        Hashtbl.add t.tbl key { name; labels; help; kind };
        kind)

let wrong_kind name want got =
  invalid_arg
    (Printf.sprintf "Registry: %s already registered as a %s, wanted a %s"
       name (kind_name got) want)

let counter t ?(help = "") ?(labels = []) name =
  match find_or_add t ~name ~labels ~help (fun () -> Counter (ref 0)) with
  | Counter c -> c
  | other -> wrong_kind name "counter" other

let incr c = Stdlib.incr c
let add c n = c := !c + n
let counter_value c = !c

let gauge t ?(help = "") ?(labels = []) name =
  match find_or_add t ~name ~labels ~help (fun () -> Gauge (ref 0.0)) with
  | Gauge g -> g
  | other -> wrong_kind name "gauge" other

let set_gauge g v = g := v
let gauge_value g = !g

let histogram t ?(help = "") ?(labels = []) ?lo ?growth ?buckets name =
  match
    find_or_add t ~name ~labels ~help (fun () ->
        Hist (Histogram.create ?lo ?growth ?buckets ()))
  with
  | Hist h -> h
  | other -> wrong_kind name "histogram" other

(* -- rendering ------------------------------------------------------ *)

module Codec = Mitos_util.Codec

(* Canonical number rendering: integers without a fractional part,
   everything else through %.9g; non-finite values in Prometheus
   spelling. Purely value-determined, so exposition is reproducible. *)
let fmt_value v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels ?extra labels =
  let labels = match extra with Some kv -> labels @ [ kv ] | None -> labels in
  match labels with
  | [] -> ""
  | kvs ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) kvs)
    ^ "}"

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_number v =
  if Float.is_nan v || v = infinity || v = neg_infinity then "null"
  else fmt_value v

(* -- snapshots ------------------------------------------------------- *)

(* A scrape copies every metric's current value into this plain data
   under the lock — integers, floats and (small) bucket arrays, no
   string formatting — and every exposition renders from the copy with
   the lock released. Lock hold time is bounded by the metric count,
   not by text size, and each exposition is a single point-in-time cut
   instead of values read one by one as the text is built.

   The same plain data is the unit of telemetry federation: it has a
   compact binary codec (shipped in [Wire.Telemetry] bodies), an exact
   bucket-wise merge, and deterministic renderers — so a fleet
   aggregator reconstructs percentiles from merged buckets instead of
   averaging per-node percentiles. *)
module Snapshot = struct
  type hist = {
    bounds : float array;
    counts : int array;
    sum : float;
    min_value : float;
    max_value : float;
  }

  type value = Counter of int | Gauge of float | Hist of hist

  type row = {
    name : string;
    labels : (string * string) list;  (* sorted by key *)
    help : string;
    value : value;
  }

  type nonrec t = row list

  let value_kind_name = function
    | Counter _ -> "counter"
    | Gauge _ -> "gauge"
    | Hist _ -> "histogram"

  let compare_row a b =
    match String.compare a.name b.name with
    | 0 -> compare a.labels b.labels
    | c -> c

  let sort_rows rows = List.sort compare_row rows

  let hist_count h = Array.fold_left ( + ) 0 h.counts

  (* Rebuild a live histogram from the copied parts; quantiles and
     cumulative buckets derived from it are exactly what the source
     histogram would report, because {!Histogram.quantile} depends
     only on these fields. Raises [Invalid_argument] on inconsistent
     parts (the codec turns that into [Malformed]). *)
  let to_histogram h =
    Histogram.of_buckets ~bounds:h.bounds ~counts:h.counts ~sum:h.sum
      ~min_value:h.min_value ~max_value:h.max_value

  let of_histogram h =
    {
      bounds = Histogram.bounds h;
      counts = Array.map snd (Histogram.buckets h);
      sum = Histogram.sum h;
      min_value = Histogram.min_value h;
      max_value = Histogram.max_value h;
    }

  let hist_merge a b = of_histogram (Histogram.merge (to_histogram a) (to_histogram b))

  let quantiles h =
    let live = to_histogram h in
    List.map (fun q -> (q, Histogram.quantile live q)) [ 0.5; 0.95; 0.99 ]

  let cumulative h =
    let acc = ref 0 in
    Array.mapi
      (fun i c ->
        acc := !acc + c;
        ( (if i = Array.length h.bounds then infinity else h.bounds.(i)),
          !acc ))
      h.counts

  let raw_buckets h =
    Array.mapi
      (fun i c ->
        ((if i = Array.length h.bounds then infinity else h.bounds.(i)), c))
      h.counts

  (* -- relabelling / merging ---------------------------------------- *)

  let with_node node r =
    {
      r with
      labels =
        norm_labels
          (("node", node) :: List.filter (fun (k, _) -> k <> "node") r.labels);
    }

  let relabel ~node rows = sort_rows (List.map (with_node node) rows)

  let merge parts =
    (* group occurrences of each (name, labels) series across nodes,
       in first-appearance order; [order] is only a grouping aid — the
       result is re-sorted, so output never depends on input order *)
    let groups = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun (node, rows) ->
        List.iter
          (fun r ->
            let key = (r.name, r.labels) in
            match Hashtbl.find_opt groups key with
            | Some occ -> Hashtbl.replace groups key ((node, r) :: occ)
            | None ->
              order := key :: !order;
              Hashtbl.replace groups key [ (node, r) ])
          rows)
      parts;
    let emit key =
      let occurrences = List.rev (Hashtbl.find groups key) in
      match occurrences with
      | [] -> []
      | (_, first) :: _ -> (
        (* counters and layout-compatible histograms fold across
           nodes; gauges are point-in-time per-node readings, so they
           keep a [node] label instead of pretending a sum means
           anything. A kind or bucket-layout clash falls back to
           per-node labelling too — the fleet view degrades to
           node-scoped series rather than failing the scrape. *)
        let mergeable =
          match first.value with
          | Counter _ ->
            List.for_all
              (fun (_, r) ->
                match r.value with Counter _ -> true | _ -> false)
              occurrences
          | Hist h0 ->
            List.for_all
              (fun (_, r) ->
                match r.value with
                | Hist h -> h.bounds = h0.bounds
                | _ -> false)
              occurrences
          | Gauge _ -> false
        in
        if not mergeable then
          List.map (fun (node, r) -> with_node node r) occurrences
        else
          match first.value with
          | Counter _ ->
            let total =
              List.fold_left
                (fun acc (_, r) ->
                  match r.value with Counter c -> acc + c | _ -> acc)
                0 occurrences
            in
            [ { first with value = Counter total } ]
          | Hist _ ->
            let merged =
              List.fold_left
                (fun acc (_, r) ->
                  match (acc, r.value) with
                  | None, Hist h -> Some h
                  | Some m, Hist h -> Some (hist_merge m h)
                  | acc, _ -> acc)
                None occurrences
            in
            (match merged with
            | Some h -> [ { first with value = Hist h } ]
            | None -> [])
          | Gauge _ -> assert false)
    in
    sort_rows (List.concat_map emit (List.rev !order))

  (* -- binary codec -------------------------------------------------- *)

  let write_value e = function
    | Counter c ->
      Codec.Enc.uint e 0;
      Codec.Enc.int e c
    | Gauge g ->
      Codec.Enc.uint e 1;
      Codec.Enc.float e g
    | Hist h ->
      Codec.Enc.uint e 2;
      Codec.Enc.array e (Codec.Enc.float e) h.bounds;
      Codec.Enc.array e (Codec.Enc.uint e) h.counts;
      Codec.Enc.float e h.sum;
      Codec.Enc.float e h.min_value;
      Codec.Enc.float e h.max_value

  let write_row e r =
    Codec.Enc.string e r.name;
    Codec.Enc.list e
      (fun (k, v) ->
        Codec.Enc.string e k;
        Codec.Enc.string e v)
      r.labels;
    Codec.Enc.string e r.help;
    write_value e r.value

  let write e rows = Codec.Enc.list e (write_row e) rows

  let read_value d =
    match Codec.Dec.uint d with
    | 0 -> Counter (Codec.Dec.int d)
    | 1 -> Gauge (Codec.Dec.float d)
    | 2 ->
      let bounds = Codec.Dec.array d Codec.Dec.float in
      let counts = Codec.Dec.array d Codec.Dec.uint in
      let sum = Codec.Dec.float d in
      let min_value = Codec.Dec.float d in
      let max_value = Codec.Dec.float d in
      let h = { bounds; counts; sum; min_value; max_value } in
      (* a hostile snapshot must not survive as an unrenderable row *)
      (match to_histogram h with
      | _ -> ()
      | exception Invalid_argument msg -> raise (Codec.Malformed msg));
      Hist h
    | k -> raise (Codec.Malformed (Printf.sprintf "unknown snapshot value kind %d" k))

  let read_row d =
    let name = Codec.Dec.string d in
    let labels =
      Codec.Dec.list d (fun d ->
          let k = Codec.Dec.string d in
          (k, Codec.Dec.string d))
    in
    let help = Codec.Dec.string d in
    { name; labels = norm_labels labels; help; value = read_value d }

  (* Re-sorting on read makes decode canonical: whatever order the
     peer sent, the decoded snapshot renders deterministically. *)
  let read d = sort_rows (Codec.Dec.list d read_row)

  let encode rows =
    let e = Codec.Enc.create () in
    write e rows;
    Codec.Enc.contents e

  let decode s =
    let d = Codec.Dec.of_string s in
    let rows = read d in
    Codec.Dec.expect_end d;
    rows

  (* -- rendering ----------------------------------------------------- *)

  let to_prometheus rows =
    let buf = Buffer.create 1024 in
    let seen_header = Hashtbl.create 16 in
    List.iter
      (fun m ->
        if not (Hashtbl.mem seen_header m.name) then begin
          Hashtbl.add seen_header m.name ();
          if m.help <> "" then
            Buffer.add_string buf
              (Printf.sprintf "# HELP %s %s\n" m.name m.help);
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s %s\n" m.name (value_kind_name m.value))
        end;
        match m.value with
        | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" m.name (render_labels m.labels) c)
        | Gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" m.name (render_labels m.labels)
               (fmt_value g))
        | Hist h ->
          Array.iter
            (fun (ub, cum) ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" m.name
                   (render_labels ~extra:("le", fmt_value ub) m.labels)
                   cum))
            (cumulative h);
          (* estimated quantiles alongside the raw buckets, in the
             summary-style series (bare name, "quantile" label) *)
          List.iter
            (fun (q, estimate) ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" m.name
                   (render_labels ~extra:("quantile", fmt_value q) m.labels)
                   (fmt_value estimate)))
            (quantiles h);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" m.name (render_labels m.labels)
               (fmt_value h.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" m.name (render_labels m.labels)
               (hist_count h)))
      rows;
    Buffer.contents buf

  let series_key m = m.name ^ render_labels m.labels

  let to_json rows =
    let of_kind want =
      List.filter (fun m -> value_kind_name m.value = want) rows
    in
    let obj fields = "{" ^ String.concat "," fields ^ "}" in
    let counters =
      of_kind "counter"
      |> List.map (fun m ->
             match m.value with
             | Counter c ->
               Printf.sprintf "%s:%d" (json_string (series_key m)) c
             | _ -> assert false)
    in
    let gauges =
      of_kind "gauge"
      |> List.map (fun m ->
             match m.value with
             | Gauge g ->
               Printf.sprintf "%s:%s" (json_string (series_key m))
                 (json_number g)
             | _ -> assert false)
    in
    let histograms =
      of_kind "histogram"
      |> List.map (fun m ->
             match m.value with
             | Hist h ->
               let buckets =
                 raw_buckets h |> Array.to_list
                 |> List.map (fun (ub, c) ->
                        Printf.sprintf "[%s,%d]"
                          (if ub = infinity then json_string "+Inf"
                           else fmt_value ub)
                          c)
               in
               Printf.sprintf "%s:%s"
                 (json_string (series_key m))
                 (obj
                    [
                      Printf.sprintf "\"count\":%d" (hist_count h);
                      Printf.sprintf "\"sum\":%s" (json_number h.sum);
                      Printf.sprintf "\"min\":%s" (json_number h.min_value);
                      Printf.sprintf "\"max\":%s" (json_number h.max_value);
                      Printf.sprintf "\"buckets\":[%s]"
                        (String.concat "," buckets);
                    ])
             | _ -> assert false)
    in
    obj
      [
        Printf.sprintf "\"counters\":%s" (obj counters);
        Printf.sprintf "\"gauges\":%s" (obj gauges);
        Printf.sprintf "\"histograms\":%s" (obj histograms);
      ]
end

let snapshot t : Snapshot.t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ m acc ->
          let value =
            match m.kind with
            | Counter c -> Snapshot.Counter !c
            | Gauge g -> Snapshot.Gauge !g
            | Hist h -> Snapshot.Hist (Snapshot.of_histogram h)
          in
          { Snapshot.name = m.name; labels = m.labels; help = m.help; value }
          :: acc)
        t.tbl [])
  |> Snapshot.sort_rows

let to_prometheus t = Snapshot.to_prometheus (snapshot t)
let to_json t = Snapshot.to_json (snapshot t)
