type counter = int ref
type gauge = float ref

type kind =
  | Counter of counter
  | Gauge of gauge
  | Hist of Histogram.t

type metric = {
  name : string;
  labels : (string * string) list;  (* sorted by key *)
  help : string;
  kind : kind;
}

(* [lock] serializes structural access to the table: instrument
   creation and the exposition fold. It exists for the exposition
   server, which renders from its own domain while the instrumented
   run keeps resolving handles. Instrument *updates* stay lock-free:
   they go through the handles returned here, never through the
   table. The lock is a {!Contended} mutex so exposition-vs-creation
   contention shows up in the lock metrics it itself exports. *)
type t = {
  tbl : (string * (string * string) list, metric) Hashtbl.t;
  lock : Contended.t;
}

let create () = { tbl = Hashtbl.create 64; lock = Contended.create "registry" }

let locked t f = Contended.with_lock t.lock f

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let find_or_add t ~name ~labels ~help make =
  let labels = norm_labels labels in
  let key = (name, labels) in
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some m -> m.kind
      | None ->
        let kind = make () in
        Hashtbl.add t.tbl key { name; labels; help; kind };
        kind)

let wrong_kind name want got =
  invalid_arg
    (Printf.sprintf "Registry: %s already registered as a %s, wanted a %s"
       name (kind_name got) want)

let counter t ?(help = "") ?(labels = []) name =
  match find_or_add t ~name ~labels ~help (fun () -> Counter (ref 0)) with
  | Counter c -> c
  | other -> wrong_kind name "counter" other

let incr c = Stdlib.incr c
let add c n = c := !c + n
let counter_value c = !c

let gauge t ?(help = "") ?(labels = []) name =
  match find_or_add t ~name ~labels ~help (fun () -> Gauge (ref 0.0)) with
  | Gauge g -> g
  | other -> wrong_kind name "gauge" other

let set_gauge g v = g := v
let gauge_value g = !g

let histogram t ?(help = "") ?(labels = []) ?lo ?growth ?buckets name =
  match
    find_or_add t ~name ~labels ~help (fun () ->
        Hist (Histogram.create ?lo ?growth ?buckets ()))
  with
  | Hist h -> h
  | other -> wrong_kind name "histogram" other

(* -- rendering ------------------------------------------------------ *)

(* A scrape copies every metric's current value into this plain data
   under the lock — integers, floats and (small) bucket arrays, no
   string formatting — and both expositions render from the copy with
   the lock released. Lock hold time is bounded by the metric count,
   not by text size, and each exposition is a single point-in-time cut
   instead of values read one by one as the text is built. *)
type snapshot_value =
  | Counter_v of int
  | Gauge_v of float
  | Hist_v of {
      cumulative : (float * int) array;
      raw : (float * int) array;
      quantiles : (float * float) list;  (* (q, estimate) *)
      sum : float;
      count : int;
      min_value : float;
      max_value : float;
    }

type snapshot_row = {
  s_name : string;
  s_labels : (string * string) list;
  s_help : string;
  s_value : snapshot_value;
}

let value_kind_name = function
  | Counter_v _ -> "counter"
  | Gauge_v _ -> "gauge"
  | Hist_v _ -> "histogram"

let snapshot t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ m acc ->
          let s_value =
            match m.kind with
            | Counter c -> Counter_v !c
            | Gauge g -> Gauge_v !g
            | Hist h ->
              Hist_v
                {
                  cumulative = Histogram.cumulative_buckets h;
                  raw = Histogram.buckets h;
                  quantiles =
                    List.map
                      (fun q -> (q, Histogram.quantile h q))
                      [ 0.5; 0.95; 0.99 ];
                  sum = Histogram.sum h;
                  count = Histogram.count h;
                  min_value = Histogram.min_value h;
                  max_value = Histogram.max_value h;
                }
          in
          { s_name = m.name; s_labels = m.labels; s_help = m.help; s_value }
          :: acc)
        t.tbl [])
  |> List.sort (fun a b ->
         match String.compare a.s_name b.s_name with
         | 0 -> compare a.s_labels b.s_labels
         | c -> c)

(* Canonical number rendering: integers without a fractional part,
   everything else through %.9g; non-finite values in Prometheus
   spelling. Purely value-determined, so exposition is reproducible. *)
let fmt_value v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels ?extra labels =
  let labels = match extra with Some kv -> labels @ [ kv ] | None -> labels in
  match labels with
  | [] -> ""
  | kvs ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) kvs)
    ^ "}"

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun m ->
      if not (Hashtbl.mem seen_header m.s_name) then begin
        Hashtbl.add seen_header m.s_name ();
        if m.s_help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" m.s_name m.s_help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" m.s_name
             (value_kind_name m.s_value))
      end;
      match m.s_value with
      | Counter_v c ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" m.s_name (render_labels m.s_labels) c)
      | Gauge_v g ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" m.s_name (render_labels m.s_labels)
             (fmt_value g))
      | Hist_v h ->
        Array.iter
          (fun (ub, cum) ->
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" m.s_name
                 (render_labels ~extra:("le", fmt_value ub) m.s_labels)
                 cum))
          h.cumulative;
        (* estimated quantiles alongside the raw buckets, in the
           summary-style series (bare name, "quantile" label) *)
        List.iter
          (fun (q, estimate) ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" m.s_name
                 (render_labels ~extra:("quantile", fmt_value q) m.s_labels)
                 (fmt_value estimate)))
          h.quantiles;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" m.s_name (render_labels m.s_labels)
             (fmt_value h.sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" m.s_name
             (render_labels m.s_labels) h.count))
    (snapshot t);
  Buffer.contents buf

(* -- JSON ----------------------------------------------------------- *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_number v =
  if Float.is_nan v || v = infinity || v = neg_infinity then "null"
  else fmt_value v

let series_key m =
  m.s_name ^ render_labels m.s_labels

let to_json t =
  let metrics = snapshot t in
  let of_kind want =
    List.filter (fun m -> value_kind_name m.s_value = want) metrics
  in
  let obj fields = "{" ^ String.concat "," fields ^ "}" in
  let counters =
    of_kind "counter"
    |> List.map (fun m ->
           match m.s_value with
           | Counter_v c ->
             Printf.sprintf "%s:%d" (json_string (series_key m)) c
           | _ -> assert false)
  in
  let gauges =
    of_kind "gauge"
    |> List.map (fun m ->
           match m.s_value with
           | Gauge_v g ->
             Printf.sprintf "%s:%s" (json_string (series_key m))
               (json_number g)
           | _ -> assert false)
  in
  let histograms =
    of_kind "histogram"
    |> List.map (fun m ->
           match m.s_value with
           | Hist_v h ->
             let buckets =
               h.raw |> Array.to_list
               |> List.map (fun (ub, c) ->
                      Printf.sprintf "[%s,%d]"
                        (if ub = infinity then json_string "+Inf"
                         else fmt_value ub)
                        c)
             in
             Printf.sprintf "%s:%s"
               (json_string (series_key m))
               (obj
                  [
                    Printf.sprintf "\"count\":%d" h.count;
                    Printf.sprintf "\"sum\":%s" (json_number h.sum);
                    Printf.sprintf "\"min\":%s" (json_number h.min_value);
                    Printf.sprintf "\"max\":%s" (json_number h.max_value);
                    Printf.sprintf "\"buckets\":[%s]"
                      (String.concat "," buckets);
                  ])
           | _ -> assert false)
  in
  obj
    [
      Printf.sprintf "\"counters\":%s" (obj counters);
      Printf.sprintf "\"gauges\":%s" (obj gauges);
      Printf.sprintf "\"histograms\":%s" (obj histograms);
    ]
