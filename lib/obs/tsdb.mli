(** Bounded-retention in-process time-series store: the sample
    substrate the burn-rate alert engine ({!Alerts}) judges over.

    A store holds one {!Mitos_util.Timeseries} ring per signal name,
    all sharing the store's retention policy (sample capacity plus
    optional max age — DESIGN §15). On top of the retained samples it
    derives the windowed series the SRE-style alert math needs:
    [rate]/[increase] with counter-reset handling, nearest-rank
    [window_quantile], and bucketed range [query] for the [/query]
    endpoint.

    {b Determinism.} Every derived figure is a pure function of the
    retained [(time, value)] samples; iteration is oldest-first in
    ring order, quantiles are nearest-rank over a total order, and
    bucketing is arithmetic on the sample times — no wall clock, no
    ambient state. Feeding the same stream reproduces every answer
    byte-for-byte (numbers render via {!Registry.fmt_value}).

    {b Monotone time.} Retained times are non-decreasing: a sample
    stamped earlier than the newest already-stored time is clamped
    forward to it. Combined with the ring's keep-newest eviction this
    gives the invariants the QCheck suite pins: times monotone, a
    counter's [rate] non-negative, and the newest sample never
    evicted. *)

type t

val create : ?capacity:int -> ?max_age:float -> unit -> t
(** Per-series retention: at most [capacity] samples (default 8192),
    dropping samples older than [max_age] behind the newest (default
    [infinity]). Raises [Invalid_argument] on non-positive values. *)

val capacity : t -> int
val max_age : t -> float

val add : t -> string -> at:float -> float -> unit
(** Append one sample to the named series (created on first use). *)

val observe : t -> at:float -> (string * float) list -> unit
(** Fold one snapshot of signals at time [at] and count one
    observation. *)

val observations : t -> int
val last_at : t -> float
(** Newest sample time seen, [nan] before the first. *)

val series : t -> string -> Mitos_util.Timeseries.t option
val names : t -> string list
(** First-observation order. *)

val latest : t -> string -> (float * float) option

(** {1 Windowed derivations}

    All windows are trailing: they cover samples with
    [at - window <= time <= at]. *)

val window_fold :
  t -> string -> at:float -> window:float -> init:'a ->
  f:('a -> float -> float -> 'a) -> 'a
(** Fold [f acc time value] over the window's samples, oldest first;
    [init] for an unknown series or an empty window. *)

val window_count : t -> string -> at:float -> window:float -> int
val window_mean : t -> string -> at:float -> window:float -> float
(** 0 when the window is empty. *)

val increase : t -> string -> at:float -> window:float -> float
(** Counter increase over the window: the sum of consecutive-sample
    deltas, where a decrease counts as a counter reset (the new value
    is the delta). Never negative; 0 with fewer than two samples. *)

val rate : t -> string -> at:float -> window:float -> float
(** [increase] per time unit over the span actually covered by the
    window's samples; 0 with fewer than two samples. Never negative. *)

val window_quantile : t -> string -> at:float -> window:float -> float -> float
(** Nearest-rank quantile of the window's values ([q] in [0..1]);
    [nan] when the window is empty. *)

val query : t -> string -> from:float -> step:float -> (float * float) array
(** The [/query] primitive: retained samples with [time >= from]. With
    [step <= 0] the raw samples; otherwise per-bucket means stamped at
    bucket-end times ([from + (k+1)*step]), empty buckets skipped. *)

val query_json : t -> string -> from:float -> step:float -> string
(** [query] as one canonical JSON object
    [{"from":…,"samples":[[t,v],…],"signal":…,"step":…}] (keys
    sorted, numbers via {!Registry.fmt_value}, non-finite values as
    strings). *)
