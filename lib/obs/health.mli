(** Run-health watchdog: declarative SLO rules evaluated over the
    signals the run periodically reports.

    The paper's whole premise is steering the under-/over-tainting
    trade-off {e during} execution; this module is the live judgment
    call. Callers feed it named scalar signals at sampling points
    (the CLI wires over-taint ratio vs. the propagate-all bound,
    decision latency p50/p99 from the registry histograms, the
    provenance-eviction rate and tag-space occupancy — see
    [Mitos_experiments.Telemetry.standard_signals]); each signal is
    folded into a {!Mitos_util.Timeseries}, every rule is re-evaluated
    per observation, and breach transitions are recorded (and, when a
    tracer is linked, emitted as Chrome-trace instant events
    cross-linked like audit records).

    Rule grammar (one rule per [--slo] flag):
    {[ [NAME:]SIGNAL(<=|<|>=|>)BOUND ]}
    e.g. [over_taint:over_taint_ratio<=0.9] or
    [decision_p99_ticks<=64]. A rule with no [NAME:] prefix is named
    after its signal. A rule over a signal that has received no
    samples yet is {e pending}, not breached.

    Determinism: evaluation depends only on the observed
    [(at, value)] stream — no wall clock — so a run driven by
    deterministic sample times renders a byte-identical report. *)

type cmp = Le | Lt | Ge | Gt

type rule = {
  rule_name : string;
  signal : string;
  cmp : cmp;
  bound : float;
}

val rule : ?name:string -> signal:string -> cmp:cmp -> bound:float -> unit -> rule
(** [name] defaults to [signal]. *)

val cmp_to_string : cmp -> string
val rule_to_string : rule -> string
(** [NAME:SIGNAL<=BOUND] (name omitted when equal to the signal),
    bound via {!Registry.fmt_value} — parseable by {!parse_rule}. *)

val parse_rule : string -> (rule, string) result

val holds : cmp -> float -> float -> bool
(** [holds cmp value bound] — does [value cmp bound] hold? Shared with
    the burn-rate alert engine ({!Alerts}), whose objectives reuse the
    rule comparison grammar. *)

(** A rule transitioning into violation at observation time [at]. *)
type breach = { breach_rule : rule; value : float; at : float }

type t

val create :
  ?window:float -> ?capacity:int -> ?max_age:float -> rules:rule list ->
  unit -> t
(** [window] selects what a rule judges: [0.0] (the default) judges
    the latest sample of the signal; a positive window judges the mean
    of samples with [time >= at - window] (via
    {!Mitos_util.Timeseries.window_mean}). Raises [Invalid_argument]
    on a negative window. [capacity]/[max_age] bound each signal's
    retained samples (forwarded to {!Mitos_util.Timeseries.create};
    the generous Timeseries defaults apply when omitted), so a
    long-lived server's watchdog stops growing without bound. *)

val rules : t -> rule list

val link_tracer : t -> Tracer.t -> unit
(** Subsequent breach transitions additionally emit a tracer instant
    named ["slo_breach"] carrying the rule and observed value. *)

val observe : t -> at:float -> (string * float) list -> unit
(** Fold one snapshot of signals (time [at], non-decreasing across
    calls) and re-evaluate every rule. Unknown signal names create new
    series; rules over signals absent from this snapshot judge their
    existing series. *)

val signals : t -> (string * Mitos_util.Timeseries.t) list
(** The folded series, in first-observation order. *)

val current_breaches : t -> (rule * float) list
(** Rules violated as of the last {!observe}, with the value that
    violated them; [] when healthy. *)

val breaches : t -> breach list
(** Every ok→breach transition so far, oldest first. *)

val healthy : t -> bool
(** No rule currently in breach (vacuously true with no rules or no
    observations). *)

val status_code : t -> int
(** HTTP status for [/healthz]: 200 when {!healthy}, 503 otherwise. *)

val render : t -> string
(** The [/healthz] body: the verdict line, one [breaching: NAME] line
    per currently breaching rule (so a failure is attributable from
    the probe alone), then one [ok]/[BREACH]/[pending] line per rule
    with its judged value, then breach-history and sample counters.
    Deterministic (fixed order, canonical numbers). *)

val breaching_lines : t -> string
(** Just the [breaching: NAME] lines (empty when healthy) — for
    callers composing a verdict body that interleaves other judgment
    layers (see [Mitos_experiments.Telemetry]). *)

val render_detail : t -> string
(** Everything {!render} prints after the verdict and breaching
    lines. [render t = verdict ^ breaching_lines t ^ render_detail t]. *)

val to_json : t -> string
(** The same verdict as one JSON object (rules, current values,
    breach history) — embedded in [/snapshot.json]. *)
