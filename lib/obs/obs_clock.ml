type t = unit -> int

let real () =
  let t0 = Unix.gettimeofday () in
  fun () -> int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)

let logical ?(start = 0) () =
  let next = ref start in
  fun () ->
    let v = !next in
    incr next;
    v

let of_fun f = f
let now t = t ()
