(** Span-tracer profiler: folds the tracer's begin/end events into
    collapsed-stack rows (the flamegraph.pl input format — one line
    per distinct stack, "frame;frame;frame <self-weight>").

    Self time is a span's duration minus the durations of its direct
    children; weights are in clock ticks (µs on the real clock) unless
    scaled. Call [Tracer.finish] first so every span is closed. *)

type row = {
  stack : string list;  (** root-first frame names *)
  self : int;  (** ticks not covered by child spans *)
  total : int;  (** ticks including children *)
  count : int;  (** completed spans folded into this row *)
}

val fold : ?root:string -> Tracer.t -> row list
(** Distinct stacks, deterministically sorted. [?root] prepends a
    synthetic root frame — used to merge client and server tracers
    into one flamegraph. Frame names have [';'] and [' '] replaced
    with ['_']. *)

val render_rows : ?scale:int -> row list -> string
(** Collapsed-stack text; weights multiplied by [scale] (default 1);
    zero-weight rows are omitted. *)

val collapse : ?root:string -> ?scale:int -> Tracer.t -> string
(** [render_rows ?scale (fold ?root tracer)]. *)

val top : ?n:int -> row list -> row list
(** Heaviest rows by self time, at most [n] (default 10). *)
