(** Time sources for the observability layer.

    Every timestamp the tracer and the timing histograms record comes
    from one of these clocks, expressed as an integer number of
    *ticks*:

    - the {!real} clock reports microseconds elapsed since the clock
      was created (wall time, monotonic for our purposes) — use it
      when the absolute numbers matter (overhead benchmarks, live
      profiling);
    - the {!logical} clock reports a counter that advances by one per
      query — durations become "number of clock reads", which is
      fully deterministic, so traces and metrics rendered from a
      seeded run are byte-identical across runs (the property the
      determinism tests and the CLI default rely on);
    - {!of_fun} adapts any external tick source (e.g. an engine's
      shadow-op counter), letting durations be measured in units of
      deterministic work. *)

type t

val real : unit -> t
(** Microseconds since creation. *)

val logical : ?start:int -> unit -> t
(** Deterministic counter: the first query returns [start] (default 0)
    and every query advances it by one. *)

val of_fun : (unit -> int) -> t
(** Wrap an arbitrary tick source. The source should be
    non-decreasing. *)

val now : t -> int
(** Current tick count. *)
