let json_string = Registry.json_string
let fmt_value = Registry.fmt_value

let args_obj args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_string k ^ ":" ^ json_string v) args)
  ^ "}"

let values_obj values =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           json_string k ^ ":"
           ^ (if Float.is_nan v || Float.abs v = infinity then "0"
              else fmt_value v))
         values)
  ^ "}"

let event_json ~pid ~tid (ev : Tracer.event) =
  let common ph ts = Printf.sprintf "\"ph\":%s,\"ts\":%d,\"pid\":%d,\"tid\":%d" (json_string ph) ts pid tid in
  match ev with
  | Tracer.Begin { name; ts; args } ->
    let base = Printf.sprintf "{\"name\":%s,%s" (json_string name) (common "B" ts) in
    if args = [] then base ^ "}"
    else Printf.sprintf "%s,\"args\":%s}" base (args_obj args)
  | Tracer.End { ts } -> Printf.sprintf "{%s}" (common "E" ts)
  | Tracer.Instant { name; ts; args } ->
    let base =
      Printf.sprintf "{\"name\":%s,%s,\"s\":\"t\"" (json_string name)
        (common "i" ts)
    in
    if args = [] then base ^ "}"
    else Printf.sprintf "%s,\"args\":%s}" base (args_obj args)
  | Tracer.Counter { name; ts; values } ->
    Printf.sprintf "{\"name\":%s,%s,\"args\":%s}" (json_string name)
      (common "C" ts) (values_obj values)

let to_json ?(pid = 1) ?(tid = 1) tracer =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  Array.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (event_json ~pid ~tid ev))
    (Tracer.events tracer);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let to_jsonl ?(pid = 1) ?(tid = 1) tracer =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun ev ->
      Buffer.add_string buf (event_json ~pid ~tid ev);
      Buffer.add_char buf '\n')
    (Tracer.events tracer);
  Buffer.contents buf
