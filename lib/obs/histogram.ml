type t = {
  bounds : float array;  (* upper bounds of buckets 0..n-2; last is +inf *)
  counts : int array;
  mutable total : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create ?(lo = 1.0) ?(growth = 2.0) ?(buckets = 32) () =
  if lo <= 0.0 then invalid_arg "Histogram.create: lo must be positive";
  if growth <= 1.0 then invalid_arg "Histogram.create: growth must exceed 1";
  if buckets < 2 then invalid_arg "Histogram.create: need at least 2 buckets";
  let bounds = Array.init (buckets - 1) (fun i -> lo *. (growth ** float_of_int i)) in
  {
    bounds;
    counts = Array.make buckets 0;
    total = 0;
    sum = 0.0;
    min_v = nan;
    max_v = nan;
  }

let num_buckets t = Array.length t.counts

(* Smallest bucket whose upper bound is >= v; the overflow bucket when
   v exceeds every bound. *)
let bucket_index t v =
  let n = Array.length t.bounds in
  if n = 0 || v <= t.bounds.(0) then 0
  else if v > t.bounds.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    (* invariant: bounds(lo) < v <= bounds(hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v <= t.bounds.(mid) then hi := mid else lo := mid
    done;
    !hi
  end

let observe t v =
  let i = bucket_index t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. v;
  if t.total = 1 then begin
    t.min_v <- v;
    t.max_v <- v
  end
  else begin
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let count t = t.total
let sum t = t.sum
let min_value t = t.min_v
let max_value t = t.max_v
let mean t = if t.total = 0 then nan else t.sum /. float_of_int t.total

let upper_bound t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Histogram.upper_bound: bucket out of range";
  if i = Array.length t.bounds then infinity else t.bounds.(i)

let bucket_count t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Histogram.bucket_count: bucket out of range";
  t.counts.(i)

let buckets t = Array.mapi (fun i c -> (upper_bound t i, c)) t.counts

let cumulative_buckets t =
  let acc = ref 0 in
  Array.mapi
    (fun i c ->
      acc := !acc + c;
      (upper_bound t i, !acc))
    t.counts

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q outside [0,1]";
  if t.total = 0 then nan
  else if q = 0.0 then t.min_v
  else if q = 1.0 then t.max_v
  else begin
    let target = q *. float_of_int t.total in
    let n = Array.length t.counts in
    let rec find i cum =
      if i >= n - 1 then n - 1
      else begin
        let cum' = cum + t.counts.(i) in
        if float_of_int cum' >= target then i else find (i + 1) cum'
      end
    in
    let i = find 0 0 in
    let below = ref 0 in
    for j = 0 to i - 1 do
      below := !below + t.counts.(j)
    done;
    if i = n - 1 then t.max_v (* overflow bucket: no finite upper bound *)
    else begin
      let lo_bound = if i = 0 then Float.min 0.0 t.min_v else t.bounds.(i - 1) in
      let hi_bound = t.bounds.(i) in
      let in_bucket = t.counts.(i) in
      let frac =
        if in_bucket = 0 then 0.0
        else (target -. float_of_int !below) /. float_of_int in_bucket
      in
      let est = lo_bound +. (frac *. (hi_bound -. lo_bound)) in
      Float.min t.max_v (Float.max t.min_v est)
    end
  end

let bounds t = Array.copy t.bounds

let same_layout a b = a.bounds = b.bounds

let of_buckets ~bounds ~counts ~sum ~min_value ~max_value =
  if Array.length counts <> Array.length bounds + 1 then
    invalid_arg "Histogram.of_buckets: need one more count than bounds";
  if Array.length counts < 2 then
    invalid_arg "Histogram.of_buckets: need at least 2 buckets";
  Array.iteri
    (fun i b ->
      if not (Float.is_finite b) || b <= 0.0 then
        invalid_arg "Histogram.of_buckets: bounds must be finite and positive";
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Histogram.of_buckets: bounds must be strictly increasing")
    bounds;
  let total =
    Array.fold_left
      (fun acc c ->
        if c < 0 then invalid_arg "Histogram.of_buckets: negative count";
        acc + c)
      0 counts
  in
  {
    bounds = Array.copy bounds;
    counts = Array.copy counts;
    total;
    sum;
    min_v = (if total = 0 then nan else min_value);
    max_v = (if total = 0 then nan else max_value);
  }

(* Bucket-wise sum: exact for counts/total/sum, and min/max combine
   exactly too, so quantiles of the merge come from real merged
   buckets — never from averaging per-part percentiles. *)
let merge a b =
  if not (same_layout a b) then
    invalid_arg "Histogram.merge: bucket layouts differ";
  let counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts in
  let min_v =
    if a.total = 0 then b.min_v
    else if b.total = 0 then a.min_v
    else Float.min a.min_v b.min_v
  in
  let max_v =
    if a.total = 0 then b.max_v
    else if b.total = 0 then a.max_v
    else Float.max a.max_v b.max_v
  in
  {
    bounds = Array.copy a.bounds;
    counts;
    total = a.total + b.total;
    sum = a.sum +. b.sum;
    min_v;
    max_v;
  }

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.sum <- 0.0;
  t.min_v <- nan;
  t.max_v <- nan
