(** Fleet telemetry federation: scrape a configured set of nodes,
    merge their registry snapshots exactly, and roll their health up
    into one worst-of-fleet verdict.

    Transport-agnostic by layering: a node is a name plus a [fetch]
    thunk returning that node's {!report} (self-reported id, health
    verdict, and one {!Registry.Snapshot}). The wire-protocol fetcher
    lives in [Mitos_net] (a [Query_telemetry] roundtrip); tests drive
    in-process thunks directly.

    {b Merge semantics} (DESIGN §14): counters sum; histograms with
    identical bucket layouts merge bucket-wise, so fleet p50/p95/p99
    are computed from merged buckets — never by averaging per-node
    percentiles; gauges (and any kind/layout clash) keep per-node
    rows labelled [node="<id>"].

    {b Determinism.} Scraping is caller-driven: {!scrape} takes an
    explicit time, nodes are visited in configured order, and every
    rendered surface sorts its keys — over [mem://] transports the
    federated snapshot and [/fleet.json] are byte-deterministic.

    {b Staleness.} A node is {e fresh} while its last successful
    scrape is at most [stale_after] behind the latest scrape time;
    stale and never-seen nodes drop out of the merge and force the
    fleet verdict to breach. Reachability is stricter than freshness:
    a node whose latest scrape {e attempt} failed is down immediately
    (its last snapshot keeps merging until it goes stale). *)

type report = {
  node : string;  (** the node's self-reported id *)
  healthy : bool;  (** the node's own SLO verdict *)
  health : string;  (** its rendered /healthz body *)
  snapshot : Registry.Snapshot.t;
}

type fetch = unit -> (report, string) result

type t

val default_rules : Health.rule list
(** [fleet_unreachable<=0]. *)

val create :
  ?stale_after:float -> ?health:Health.t -> ?alerts:Alerts.t ->
  (string * fetch) list -> t
(** [stale_after] defaults to 60 (same unit as the [at] values given
    to {!scrape}). [health] is the fleet-level watchdog fed by
    {!scrape}; give it {!default_rules} plus operator rules over the
    fleet signals. [alerts] is a fleet-level burn-rate engine fed the
    same signals — its firing set forces the fleet verdict to breach
    and its routes are appended to {!routes}. Raises
    [Invalid_argument] on an empty node list or a non-positive
    [stale_after]. *)

val parse_firing : string -> (string * Alerts.severity) list
(** The [firing: NAME severity=SEV] lines of a rendered /healthz body
    (what [Mitos_experiments.Telemetry.health_verdict] splices in),
    in body order — how a node's firing alerts travel to the fleet
    without a wire-protocol change. Unparseable lines are skipped. *)

val scrape : t -> at:float -> unit
(** One scrape round: fetch every node in configured order, update
    last-seen/failure state, recompute the merged snapshot from fresh
    reports and feed the fleet signals ([fleet_nodes], [fleet_up],
    [fleet_unreachable], [fleet_requests_total], [fleet_node_skew],
    [fleet_nodes_firing], plus [fleet_decision_p99_ns] and
    [fleet_over_taint_ratio] when the underlying series exist) into
    the fleet watchdog and the fleet alert engine. [at] must be
    non-decreasing across calls. *)

val merged : t -> Registry.Snapshot.t
(** The fleet rollup as of the last {!scrape}: fresh per-node
    snapshots merged with {!Registry.Snapshot.merge}. *)

val federated : t -> Registry.Snapshot.t
(** The node-labelled union: every fresh node's snapshot relabelled
    with [node="<id>"], plus [mitos_fleet_node_up{node}],
    [mitos_fleet_scrapes_total] and one
    [mitos_fleet_alert_firing{alert,node}] gauge per firing alert a
    fresh node reports (value = severity rank, 1 ticket / 2 page) —
    what the federated [/metrics] renders. *)

val signals : t -> (string * float) list
(** The fleet signals computed by the last {!scrape}. *)

val scrapes : t -> int
val stale_after : t -> float
val health : t -> Health.t option
val alerts : t -> Alerts.t option

(** One node as the fleet sees it: [nan] for figures the node's
    snapshot does not carry. *)
type node_view = {
  name : string;  (** configured name (e.g. the endpoint) *)
  node_id : string;  (** self-reported id; [name] before first contact *)
  up : bool;  (** the latest scrape attempt on this node succeeded *)
  node_healthy : bool;
  last_seen : float;
  stale : bool;  (** seen at least once, but not within [stale_after] *)
  failures : int;
  last_error : string option;
  node_requests_total : int;
  request_rate : float;  (** requests/sec between the last two scrapes *)
  decide_p99_ns : float;
  occupancy : float;  (** summed shadow-shard occupancy gauges *)
  node_firing : (string * Alerts.severity) list;
      (** alerts the node reports firing ({!parse_firing} of its
          health body) *)
}

val nodes : t -> node_view list
(** In configured order. *)

val healthy : t -> bool
(** Worst-of-fleet: false when any node is unreachable/stale or in
    breach of its own SLOs, a fleet-level rule is breached, or a
    fleet-level alert is firing. *)

val status_code : t -> int
(** 200/503 from {!healthy} — the fleet [/healthz] status. *)

val render_health : t -> string
(** The fleet [/healthz] body: a status line naming the first
    offending node (with [alert NAME] attribution when the node's
    breach is a firing burn-rate alert), one line per node — each
    followed by indented [firing: NAME severity=SEV node=ID] lines —
    then the fleet watchdog's report and the fleet alert engine's
    firing set. Deterministic. *)

val fleet_json : t -> string
(** [/fleet.json]: fleet verdict, merged snapshot, per-node rollup
    (in configured order, each with its full snapshot) and the last
    fleet signals. Keys sorted at every level. *)

val routes : t -> Server.route list
(** [/metrics] (federated, node-labelled), [/fleet.json], [/healthz]
    (worst-of-fleet), plus the fleet alert engine's
    [/alerts]/[/query]/[/alertz] when one is attached — servable by
    {!Server.start} or {!Server.oneshot}. *)
