(** In-process HTTP exposition server.

    A dependency-free (Unix stdlib only) HTTP/1.0 server that any
    long-running invocation can start to make its telemetry scrapeable
    while it runs: [GET /metrics] for Prometheus, [/healthz] for the
    SLO verdict, [/snapshot.json], [/tracez], [/auditz] for the
    in-memory rings (routes are supplied by the caller — see
    [Mitos_experiments.Telemetry] for the standard set).

    {b Hot-path contract.} The server runs on its own domain; the
    instrumented run never blocks on it. A route's [payload] thunk is
    called on the server domain at request time, so thunks must only
    {e read} run state — registry exposition takes the registry's
    creation mutex (never held by instrument updates), ring reads are
    lock-free best-effort snapshots. The run pays nothing per request.

    {b Determinism.} A live scrape observes whatever the run has done
    so far and is inherently racy; the deterministic twin is
    {!oneshot}, which evaluates every route once on the calling domain
    (after the run, when state is quiescent) and writes the payloads
    to files — what tests and CI diff.

    Requests are served sequentially (one connection at a time): the
    intended clients are a scraper and a human with [curl], and a
    sequential loop keeps the server at zero shared mutable state. *)

type payload = {
  status : int;  (** HTTP status code, e.g. 200, 503 *)
  content_type : string;
  body : string;
}

val text : ?status:int -> string -> payload
(** [text/plain; charset=utf-8], status 200 by default. *)

val json : ?status:int -> string -> payload
(** [application/json], status 200 by default. *)

val prometheus : ?status:int -> string -> payload
(** [text/plain; version=0.0.4] — the Prometheus exposition content
    type. *)

type route = {
  path : string;  (** exact match, e.g. "/metrics"; query strings are
                      stripped before matching *)
  file : string;  (** file name used by {!oneshot}, e.g. "metrics.prom" *)
  describe : string;  (** one line for the index page *)
  payload : (string * string) list -> payload;
      (** evaluated per request with the parsed query-string pairs
          (empty for {!oneshot}); exceptions become a 500 *)
}

val route : ?describe:string -> file:string -> string -> (unit -> payload) -> route
(** A query-insensitive route: the thunk runs whatever the query says. *)

val route_q :
  ?describe:string -> file:string -> string ->
  ((string * string) list -> payload) -> route
(** A query-aware route: the payload receives the query pairs in
    request order, keys and values verbatim (no percent-decoding).
    {!oneshot} evaluates it with an empty query. *)

type t

val start : ?host:string -> ?port:int -> route list -> t
(** Bind, listen and serve on a fresh domain. [host] defaults to
    ["127.0.0.1"]; [port] 0 (the default) lets the kernel pick a free
    port — read it back with {!port}. A [GET /] index listing the
    routes is always served. Raises [Unix.Unix_error] if the address
    cannot be bound, [Failure] on an unresolvable host. *)

val port : t -> int
(** The bound port (useful with [port:0]). *)

val addr : t -> string
(** ["HOST:PORT"] as bound. *)

val stop : t -> unit
(** Close the listening socket and join the server domain.
    Idempotent. In-flight requests finish; queued connections are
    dropped. *)

val oneshot : dir:string -> route list -> (string * string) list
(** The offline twin: evaluate every route's payload once, in list
    order, on the calling domain, and write each body to
    [dir/<file>] (creating [dir] if needed). Returns
    [(file, path_written)] pairs in route order. Payload thunks that
    raise propagate — offline evaluation has no 500 to hide behind. *)

(** {1 Client}

    The matching fetch side, used by [mitos-cli watch], the CI smoke
    probe and the server's own tests. *)

val parse_url : string -> (string * int * string, string) result
(** [parse_url "http://host:port/path"] → [(host, port, path)]. The
    scheme is optional ([host:port/path] works); the path defaults to
    ["/"]. *)

val fetch :
  ?timeout:float -> host:string -> port:int -> path:string -> unit ->
  (int * string, string) result
(** One HTTP/1.0 GET. [Ok (status, body)] on any well-formed response
    (including non-200); [Error] with a one-line message on connection
    refusal, timeout (default 5s) or a malformed response. Never
    raises. *)

val fetch_url : ?timeout:float -> string -> (int * string, string) result
(** {!parse_url} + {!fetch}. *)
