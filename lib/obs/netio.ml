let default_timeout = 5.0

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
      failwith (Printf.sprintf "cannot resolve host %S" host)
    | { Unix.h_addr_list; _ } -> h_addr_list.(0))

let set_timeouts ?(timeout = default_timeout) fd =
  Unix.setsockopt_float fd SO_RCVTIMEO timeout;
  Unix.setsockopt_float fd SO_SNDTIMEO timeout

let write_all fd s =
  let len = String.length s in
  let bytes = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd bytes !off (len - !off) in
    if n = 0 then raise Exit;
    off := !off + n
  done

let read_to_eof fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 8192 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
  in
  drain ();
  Buffer.contents buf

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Refusal (nobody listening — the port answered with RST) and
   timeout (nothing answered at all — host gone, packets dropped) are
   different diagnoses: a killed node refuses, a slow or partitioned
   one times out. The chaos judge, and any operator reading the
   one-line error, needs the distinction, so each failure class gets
   its own stable verb. *)
let connect_sock ?timeout ~describe sock addr =
  match
    set_timeouts ?timeout sock;
    Unix.connect sock addr
  with
  | () -> Ok sock
  | exception Unix.Unix_error (err, _, _) ->
    close_quietly sock;
    let verb =
      match err with
      | Unix.ECONNREFUSED -> "refused connection"
      | Unix.ETIMEDOUT | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINPROGRESS ->
        "timed out"
      | _ -> "unreachable"
    in
    Error (Printf.sprintf "%s %s (%s)" describe verb (Unix.error_message err))

let connect_tcp ?timeout ~host ~port () =
  match resolve host with
  | exception Failure msg -> Error msg
  | addr ->
    connect_sock ?timeout
      ~describe:(Printf.sprintf "%s:%d" host port)
      (Unix.socket PF_INET SOCK_STREAM 0)
      (ADDR_INET (addr, port))

let connect_unix ?timeout path =
  connect_sock ?timeout ~describe:path
    (Unix.socket PF_UNIX SOCK_STREAM 0)
    (ADDR_UNIX path)

let listen_on ?(backlog = 16) sock addr =
  (try
     Unix.setsockopt sock SO_REUSEADDR true;
     Unix.bind sock addr;
     Unix.listen sock backlog
   with exn ->
     close_quietly sock;
     raise exn);
  sock

let listen_tcp ?backlog ~host ~port () =
  let addr = resolve host in
  let sock =
    listen_on ?backlog (Unix.socket PF_INET SOCK_STREAM 0)
      (ADDR_INET (addr, port))
  in
  let bound_port =
    match Unix.getsockname sock with
    | ADDR_INET (_, p) -> p
    | ADDR_UNIX _ -> port
  in
  (sock, bound_port)

let listen_unix ?backlog path =
  (try if Sys.file_exists path then Sys.remove path
   with Sys_error _ -> ());
  listen_on ?backlog (Unix.socket PF_UNIX SOCK_STREAM 0) (ADDR_UNIX path)
