(** The observability context: one value bundling a clock, a span
    {!Tracer} and a metrics {!Registry}, threaded through the DIFT
    pipeline (engine, core decisioning, replay driver, CLI).

    The central contract is the *disabled path*: instrumentation sites
    hold an [Obs.t] unconditionally and guard their work with
    {!enabled} (a single immutable bool read) or keep resolved
    instrument handles only when enabled. {!disabled} is the shared
    no-op instance — code instrumented against it performs no clock
    reads, no buffering and no metric updates, which is what keeps the
    engine's replay hot path within the ≤5% disabled-overhead budget.

    Enabled contexts default to the {!Obs_clock.logical} clock, so the
    resulting trace and metrics exports are byte-deterministic for a
    deterministic run; pass [clock:(Obs_clock.real ())] for wall-time
    profiling. *)

type t

val disabled : t
(** The no-op instance. {!enabled} is [false]; its tracer and registry
    exist (so accessors total) but are never written to by guarded
    instrumentation sites. *)

val create :
  ?trace_capacity:int -> ?clock:Obs_clock.t -> unit -> t
(** An enabled context. [trace_capacity] bounds the tracer buffer
    (default 65536 events); [clock] defaults to a fresh
    {!Obs_clock.logical}. *)

val enabled : t -> bool
val clock : t -> Obs_clock.t
val tracer : t -> Tracer.t
val registry : t -> Registry.t

val now : t -> int
(** [Obs_clock.now (clock t)]. *)

val with_span : t -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Runs the function inside a tracer span when enabled; just runs it
    when disabled. *)

val time : t -> Histogram.t -> (unit -> 'a) -> 'a
(** Runs the function and observes its duration (in clock ticks) into
    the histogram when enabled; just runs it when disabled. *)

val finish : t -> unit
(** Close any open tracer spans (before exporting). *)

val chrome_trace_json : t -> string
(** {!Tracer.finish} + {!Chrome_trace.to_json}. *)

val chrome_trace_jsonl : t -> string
val prometheus : t -> string
(** {!Registry.to_prometheus}. *)

val metrics_json : t -> string
(** {!Registry.to_json}. *)

val write_file : string -> string -> unit
(** [write_file path contents] — tiny helper shared by the CLI and
    examples. *)
